(* Steensgaard points-to analysis in egglog (§6.1).

   Generates a synthetic pointer program, runs the five-rule egglog
   analysis, validates it against a hand-written Steensgaard, and shows
   why the Datalog encodings struggle (the eqrel blow-up).

   Run with:  dune exec examples/pointsto_analysis.exe *)

module P = Pointsto

let () =
  print_endline "== the whole analysis, as egglog rules ==";
  print_endline (String.trim P.Egglog_enc.program_text);

  let program = P.Progen.generate ~size:8 ~seed:42 () in
  Printf.printf "\n== a synthetic program with %d instructions (first 12) ==\n"
    (Array.length program.P.Ir.insts);
  Array.iteri
    (fun i inst -> if i < 12 then Format.printf "  %a@." P.Ir.pp_inst inst)
    program.P.Ir.insts;

  let t0 = Egglog.Telemetry.now () in
  let eng, report = P.Egglog_enc.analyze program in
  Printf.printf "\negglog: fixpoint after %d iterations in %.4fs\n"
    (List.length report.Egglog.Engine.iterations)
    (Egglog.Telemetry.now () -. t0);

  let egglog_sites = P.Egglog_enc.var_sites program eng in
  let reference_sites = P.Reference.var_sites program (P.Reference.analyze program) in
  Printf.printf "matches the hand-written Steensgaard: %b\n" (egglog_sites = reference_sites);

  print_endline "\nsome points-to sets (variable -> allocation sites):";
  let shown = ref 0 in
  Array.iteri
    (fun v sites ->
      if sites <> [] && !shown < 8 then begin
        incr shown;
        Printf.printf "  v%-3d -> {%s}\n" v (String.concat ", " (List.map (Printf.sprintf "h%d") sites))
      end)
    egglog_sites;

  print_endline "\n== the same analysis in Datalog (Fig. 8's baselines) ==";
  List.iter
    (fun (name, flavor) ->
      let r = P.Datalog_enc.analyze flavor ~timeout_s:10.0 program in
      match r.P.Datalog_enc.outcome with
      | Minidatalog.Timeout -> Printf.printf "  %-10s timed out (10s)\n" name
      | Minidatalog.Fixpoint iters ->
        Printf.printf "  %-10s %.3fs (%d iterations, vpt has %d tuples%s)\n" name
          r.P.Datalog_enc.seconds iters
          (P.Datalog_enc.vpt_size r)
          (if P.Datalog_enc.var_sites r = reference_sites then "" else ", UNSOUND"))
    [ ("eqrel", P.Datalog_enc.Eqrel); ("cclyzer++", P.Datalog_enc.Cclyzer);
      ("patched", P.Datalog_enc.Patched) ]
