module E = Egglog

type session = {
  s_name : string;
  s_engine : E.Engine.t;
  mutable s_durable : E.Durable.t option;
  mutable s_last_used : float;
  mutable s_requests : int;
  (* private (unregistered) histogram: this session's request latency,
     never mixed into the global registry snapshot *)
  s_hist : E.Telemetry.histogram;
}

(* A name whose journal failed to recover is quarantined, not recreated:
   handing out a fresh empty session under a name with (unreadable)
   durable history would silently fork that history. *)
type entry = Live of session | Quarantined of string

type t = {
  data_dir : string option;
  max_sessions : int;
  checkpoint_every : int option;
  make_engine : unit -> E.Engine.t;
  table : (string, entry) Hashtbl.t;
  (* eviction counts keyed by session name; kept across re-opens so the
     metrics reply can attribute churn to the name, not the incarnation *)
  evictions : (string, int) Hashtbl.t;
}

let c_opened = E.Telemetry.counter "server.sessions_opened"
let c_recovered = E.Telemetry.counter "server.sessions_recovered"
let c_evicted = E.Telemetry.counter "server.sessions_evicted"

let note_eviction t name =
  E.Telemetry.bump c_evicted 1;
  Hashtbl.replace t.evictions name
    (1 + Option.value (Hashtbl.find_opt t.evictions name) ~default:0)

let evictions_of t name = Option.value (Hashtbl.find_opt t.evictions name) ~default:0

let create ~data_dir ~max_sessions ~checkpoint_every ~make_engine =
  {
    data_dir;
    max_sessions;
    checkpoint_every;
    make_engine;
    table = Hashtbl.create 16;
    evictions = Hashtbl.create 16;
  }

let journal_path t name =
  Option.map (fun dir -> Filename.concat dir (name ^ ".journal")) t.data_dir

let live_count t =
  Hashtbl.fold (fun _ e acc -> match e with Live _ -> acc + 1 | Quarantined _ -> acc) t.table 0

let live_names t =
  List.sort String.compare
    (Hashtbl.fold
       (fun name e acc -> match e with Live _ -> name :: acc | Quarantined _ -> acc)
       t.table [])

let recover_one t name path now =
  let engine = t.make_engine () in
  match E.Durable.recover engine ~journal_path:path ~checkpoint_every:t.checkpoint_every with
  | durable, report ->
    let s =
      {
        s_name = name;
        s_engine = engine;
        s_durable = Some durable;
        s_last_used = now;
        s_requests = 0;
        s_hist = E.Telemetry.hist_create ();
      }
    in
    Hashtbl.replace t.table name (Live s);
    E.Telemetry.bump c_recovered 1;
    Ok report
  | exception
      (( E.Journal.Journal_error _ | E.Serialize.Load_error _ | E.Engine.Egglog_error _
       | Sys_error _ | Failure _ ) as e) ->
    let msg = Printexc.to_string e in
    Hashtbl.replace t.table name (Quarantined msg);
    Error msg

let recover_existing t =
  match t.data_dir with
  | None -> []
  | Some dir ->
    let files = try Sys.readdir dir with Sys_error _ -> [||] in
    let names =
      Array.to_list files
      |> List.filter_map (fun f -> Filename.chop_suffix_opt ~suffix:".journal" f)
      |> List.filter Protocol.valid_session_name
      |> List.sort String.compare
    in
    let now = E.Telemetry.now () in
    List.map
      (fun name ->
        (name, recover_one t name (Filename.concat dir (name ^ ".journal")) now))
      names

(* Attach a journal to a session that already holds state: the journal
   starts a fresh generation, so a checkpoint must land immediately —
   recovery loads the checkpoint, then replays the (empty) tail. *)
let make_durable t s =
  match journal_path t s.s_name with
  | None ->
    Protocol.reject Protocol.Unsupported
      "durable sessions need the daemon started with --data-dir"
  | Some path ->
    let durable =
      E.Durable.attach s.s_engine ~journal_path:path ~checkpoint_every:t.checkpoint_every
    in
    E.Durable.checkpoint durable;
    s.s_durable <- Some durable

let open_new t ~name ~durable ~now =
  if live_count t >= t.max_sessions then
    Protocol.reject Protocol.Session_limit "session table full (%d live sessions)"
      t.max_sessions;
  match journal_path t name with
  | Some path when Sys.file_exists path -> (
    (* a name with durable history always comes back durable *)
    match recover_one t name path now with
    | Ok _ -> (
      match Hashtbl.find_opt t.table name with
      | Some (Live s) -> s
      | _ -> Protocol.reject Protocol.Internal "recovery of %s lost the session" name)
    | Error msg -> Protocol.reject Protocol.Recovery_failed "session %s: %s" name msg)
  | _ ->
    let s =
      {
        s_name = name;
        s_engine = t.make_engine ();
        s_durable = None;
        s_last_used = now;
        s_requests = 0;
        s_hist = E.Telemetry.hist_create ();
      }
    in
    if durable then make_durable t s;
    Hashtbl.replace t.table name (Live s);
    E.Telemetry.bump c_opened 1;
    s

let lookup t ~name ~durable ~now =
  match Hashtbl.find_opt t.table name with
  | Some (Quarantined msg) ->
    Protocol.reject Protocol.Recovery_failed "session %s: %s" name msg
  | Some (Live s) ->
    if durable && s.s_durable = None then make_durable t s;
    s.s_last_used <- now;
    s
  | None -> open_new t ~name ~durable ~now

(* Closing tries to fold the journal tail into a checkpoint first — purely
   an optimization of the next recovery; the journal alone already holds
   the full committed history, so a failed checkpoint (e.g. inside an open
   push scope) downgrades to a plain close. *)
let close_session s =
  match s.s_durable with
  | None -> ()
  | Some d ->
    (try if E.Engine.scope_depth s.s_engine = 0 then E.Durable.checkpoint d
     with E.Journal.Journal_error _ -> ());
    E.Durable.close d;
    s.s_durable <- None

let close t ~name =
  match Hashtbl.find_opt t.table name with
  | Some (Live s) ->
    close_session s;
    Hashtbl.remove t.table name;
    true
  | Some (Quarantined _) | None -> false

let session_bytes (s : session) = E.Engine.modeled_bytes s.s_engine

let total_bytes t =
  Hashtbl.fold
    (fun _ e acc -> match e with Live s -> acc + session_bytes s | Quarantined _ -> acc)
    t.table 0

(* Shed the biggest holders first under global memory pressure. Deterministic
   victim order: modeled bytes descending, then name ascending — modeled
   bytes are a pure function of session contents, so the same state sheds the
   same sessions. The requester ([keep]) is never evicted out from under its
   own request; durable victims checkpoint first (close_session), so their
   state stays recoverable. *)
let evict_largest t ~keep ~target_bytes =
  let victims =
    Hashtbl.fold
      (fun name e acc ->
        match e with
        | Live s when name <> keep -> (name, s, session_bytes s) :: acc
        | Live _ | Quarantined _ -> acc)
      t.table []
    |> List.sort (fun (na, _, ba) (nb, _, bb) ->
           if ba <> bb then compare bb ba else String.compare na nb)
  in
  let evicted = ref [] in
  List.iter
    (fun (name, s, _) ->
      if total_bytes t > target_bytes then begin
        close_session s;
        Hashtbl.remove t.table name;
        note_eviction t name;
        evicted := name :: !evicted
      end)
    victims;
  List.rev !evicted

let evict_idle t ~now ~idle_timeout =
  let victims =
    Hashtbl.fold
      (fun name e acc ->
        match e with
        | Live s when now -. s.s_last_used > idle_timeout -> (name, s) :: acc
        | Live _ | Quarantined _ -> acc)
      t.table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.map
    (fun (name, s) ->
      close_session s;
      Hashtbl.remove t.table name;
      note_eviction t name;
      name)
    victims

let drain t =
  List.iter (fun name -> ignore (close t ~name)) (live_names t)


(* ---- per-session attribution for the metrics reply ---- *)

type session_stat = {
  st_requests : int;
  st_bytes : int;
  st_durable : bool;
  st_evictions : int;
  st_latency : E.Telemetry.hist_snap;
}

let note_latency t ~name dt =
  match Hashtbl.find_opt t.table name with
  | Some (Live s) -> E.Telemetry.hist_record s.s_hist dt
  | Some (Quarantined _) | None -> ()

let per_session_stats t =
  Hashtbl.fold
    (fun name e acc ->
      match e with
      | Quarantined _ -> acc
      | Live s ->
        ( name,
          {
            st_requests = s.s_requests;
            st_bytes = session_bytes s;
            st_durable = s.s_durable <> None;
            st_evictions = evictions_of t name;
            st_latency = E.Telemetry.hist_snap_of s.s_hist;
          } )
        :: acc)
    t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let quarantined_names t =
  List.sort String.compare
    (Hashtbl.fold
       (fun name e acc -> match e with Quarantined _ -> name :: acc | Live _ -> acc)
       t.table [])
