(** The daemon: a single-threaded [select] event loop speaking the JSONL
    protocol over stdio and/or a Unix-domain socket.

    Robustness is the architecture:

    - {b Fault containment.} Every request executes inside
      {!Egglog.Engine.with_transaction} under mandatory node/time budgets
      (client limits are clamped to the server caps, never trusted): a
      failed, malformed or over-budget request is rolled back and answered
      with a typed error reply — it can neither corrupt its session nor
      kill the connection, and other sessions never observe it.
    - {b Admission control.} Framed requests pass a bounded queue; when it
      is full they are shed immediately with an [overload] reply carrying
      [retry_after_ms] — the daemon never stalls a connection to hide
      overload, and queued work stays bounded so latency does too.
    - {b Backpressure both ways.} Over-long frames get a [too-large] reply
      (input is discarded to the next newline); a client that stops
      reading until the reply buffer exceeds its cap is disconnected
      rather than allowed to pin server memory.
    - {b Graceful drain.} {!request_drain} (wired to SIGTERM by the CLI)
      finishes the in-flight request, sheds the queue with
      [shutting-down] replies, flushes, checkpoints + closes every
      durable session, closes connections and removes the socket file;
      {!run} then returns so the process can exit 0.
    - {b Durability.} Sessions opened with [durable] journal each
      committed request (after commit, fsync'd before the reply — a
      crash loses at most unacknowledged work) and are recovered on the
      next start. See {!Session}.

    - {b Memory governance.} Budgets are enforced against the engine's
      deterministic modeled byte count ({!Egglog.Engine.modeled_bytes}),
      never [Gc] statistics: per-request [memory_limit]s are clamped by the
      per-session [session_memory_quota]; a session whose retained footprint
      would exceed its quota gets a [quota] reject and a rollback; and when
      the sum over all live sessions exceeds [memory_headroom], admission
      first checkpoint-then-evicts the largest idle sessions and, if still
      over, sheds the request with an [overload] reply. A real
      [Out_of_memory] (or [Stack_overflow]) mid-request is caught, the
      transaction rolled back, and the client gets a [memory] reply — the
      daemon and every other session survive.

    Server-side fault injection points (see {!Egglog.Fault}):
    ["server.request.executed"] (crash after commit, before the journal
    append), ["server.request.journaled"] (crash after the fsync, before
    the reply), ["server.reply.drop"] (drop the connection halfway
    through a reply; the daemon survives), ["server.reply.slow"] (dribble
    the reply one byte per tick — a slow client in the other direction),
    ["server.memory.pressure"] (treat the global headroom cap as zero for
    one request: forces eviction + overload shedding), ["server.oom"]
    (raise [Out_of_memory] inside the request transaction; the daemon
    must roll back and reply, not die).

    {b Observability.} Every request gets a [trace_id] (echoed in its
    reply and stamped on every trace event it emits); request latency
    lands in a deterministic log-bucketed histogram globally and per
    session; [metrics] reports per-session breakdowns and, with
    [{"format":"prometheus"}], text exposition; the always-on flight
    recorder (see {!Egglog.Telemetry}) is dumped to
    [<data-dir>/flightrec-<ts>.jsonl] on crashes, [Out_of_memory],
    recovery quarantine and drain, and on demand via [dump-flightrec]. *)

type config = {
  socket_path : string option;
  use_stdio : bool;
  data_dir : string option;  (** enables durable sessions *)
  max_sessions : int;
  queue_limit : int;  (** admission queue bound *)
  retry_after_ms : int;  (** hint carried by overload sheds *)
  max_input_bytes : int;  (** per-frame and per-program size cap *)
  max_output_bytes : int;  (** per-connection pending-reply cap *)
  node_limit_cap : int;  (** hard per-request node budget (and default) *)
  time_limit_cap_ms : int;  (** hard per-request wall-clock budget (and default) *)
  max_jobs : int;  (** cap on per-request search parallelism *)
  session_node_quota : int option;  (** max tuples a session may retain *)
  session_memory_quota : int option;
      (** max modeled bytes a session may retain; also clamps per-request
          [memory_limit]s *)
  memory_headroom : int option;
      (** global cap on the summed modeled bytes of all live sessions;
          beyond it, largest-first eviction then [overload] shedding *)
  idle_timeout_s : float option;  (** evict sessions idle longer than this *)
  checkpoint_every : int option;  (** journal checkpoint cadence *)
  slow_log_ms : int option;
      (** requests at or above this duration append a JSONL entry (program,
          budgets, phase breakdown, flight-recorder tail) to
          [<data-dir>/slowlog.jsonl] — stderr without a data dir *)
}

val default_config : config

type t

val create : config -> t
(** Validate the configuration, create the data directory, recover any
    journaled sessions (failures quarantine the session, they do not
    prevent startup), bind the socket. @raise Failure on an unusable
    configuration (no transport, unbindable socket). *)

val recovery_log : t -> string list
(** Human-readable per-session recovery outcomes from {!create}. *)

val run : t -> unit
(** Serve until {!request_drain}. Returns after a complete drain. *)

val request_drain : t -> unit
(** Async-signal-safe: flip the drain flag. The loop notices at the next
    iteration boundary (in-flight work finishes first). *)

val draining : t -> bool
