(** Admission control: a bounded FIFO of accepted-but-not-yet-executed
    requests. The serve loop reads and frames greedily, so a burst of
    pipelined requests all pass through {!offer} before any executes; once
    the queue is full, {!offer} refuses and the caller sheds the request
    with an explicit overload reply instead of stalling the connection.
    Single-threaded (the serve loop owns it) — no locking. *)

type 'a t

val create : limit:int -> 'a t
(** @raise Invalid_argument when [limit < 1]. *)

val offer : 'a t -> 'a -> bool
(** Enqueue; [false] means full — shed. *)

val take : 'a t -> 'a option
val drain : 'a t -> 'a list
(** Empty the queue, FIFO order (graceful shutdown: shed the backlog). *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val limit : 'a t -> int
