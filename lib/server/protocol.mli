(** The daemon's wire protocol: JSON Lines. One request object per line in,
    one reply object per line out, replies carry the request's [id] back.
    See docs/SERVER.md for the full grammar and the error taxonomy.

    A request is
    {[ {"id": <int|string>, "op": "<op>", ...op-specific fields} ]}
    and every reply is either
    {[ {"id": ..., "ok": true, ...result fields} ]}
    or
    {[ {"id": ..., "ok": false,
        "error": {"kind": "<kind>", "message": "...",
                  "retry_after_ms"?: <int>}} ]}

    Every failure an op can hit maps to a typed [error_kind]: a client
    never sees a dead connection in place of a diagnosis, and the kinds
    are stable strings a client can dispatch on. *)

module Json = Egglog.Telemetry.Json

(** Why a request was refused or failed. The daemon's contract: every
    [Failure], engine error, budget stop or internal invariant violation
    surfaces as exactly one of these — never a closed connection. *)
type error_kind =
  | Malformed_frame  (** not JSON, not an object, or missing/ill-typed fields *)
  | Too_large  (** frame or program exceeds the size limit *)
  | Parse_error  (** the program text does not parse *)
  | Engine_error  (** the engine rejected or failed the program *)
  | Budget  (** a run tripped its node or time budget; request rolled back *)
  | Deadline  (** the request exceeded its wall-clock deadline between commands *)
  | Quota
      (** the session's node or modeled-byte quota would be exceeded;
          request rolled back *)
  | Memory
      (** the process ran out of memory (or overflowed the stack) executing
          the request; the transaction was rolled back and the daemon lives *)
  | Overload
      (** admission queue full or global memory headroom exhausted; retry
          after [retry_after_ms] *)
  | Session_limit  (** session table full *)
  | Bad_session  (** invalid session name *)
  | Shutting_down  (** daemon is draining *)
  | Recovery_failed  (** the session's journal could not be recovered *)
  | Unsupported  (** unknown op, or an op the configuration cannot serve *)
  | Internal  (** anything else; the session was rolled back *)

val kind_to_string : error_kind -> string

exception Reject of { kind : error_kind; message : string; retry_after_ms : int option }
(** The one exception the request pipeline uses for typed refusals. *)

val reject : ?retry_after_ms:int -> error_kind -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [reject kind fmt ...] raises {!Reject}. *)

type op =
  | Ping
  | Hello
  | Open_session of { durable : bool }
  | Run of {
      program : string;
      node_limit : int option;
      time_limit_ms : int option;
      memory_limit : int option;  (** modeled-byte budget for the request *)
      jobs : int option;
    }
  | Dump
  | Stats
  | Close_session
  | Metrics of { prometheus : bool }
      (** [format] field: ["json"] (default) or ["prometheus"] *)
  | Dump_flightrec  (** snapshot the flight-recorder ring on demand *)

type request = { rq_id : Json.t; rq_session : string option; rq_op : op }

val parse_request : string -> request
(** Parse one frame. @raise Reject with [Malformed_frame] on anything that
    is not a well-formed request object (the [id], when present and
    well-typed, is still recovered so the error reply can carry it — pull
    it out with {!frame_id} before reporting). *)

val frame_id : string -> Json.t
(** Best-effort extraction of the [id] of a (possibly malformed) frame, so
    error replies can echo it; [Null] when unrecoverable. *)

val needs_session : op -> bool
(** True for ops that address a session ([run], [dump], …). *)

val valid_session_name : string -> bool
(** [A-Za-z0-9_-], 1–64 chars — session names become journal file names,
    so nothing resembling a path ever gets through. *)

val ok_reply : id:Json.t -> (string * Json.t) list -> string
(** One reply line (no trailing newline). When called under
    [Telemetry.with_trace_id] — i.e. from the daemon's request executor —
    the reply carries a ["trace_id"] field matching the tag on every
    trace event the request emitted. Same for {!error_reply}. *)

val error_reply : id:Json.t -> kind:error_kind -> message:string -> ?retry_after_ms:int -> unit -> string

val reject_reply : id:Json.t -> exn -> string
(** Render a {!Reject} (or any other exception, as [Internal]) as a reply
    line. Never raises. *)
