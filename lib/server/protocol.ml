module Json = Egglog.Telemetry.Json

type error_kind =
  | Malformed_frame
  | Too_large
  | Parse_error
  | Engine_error
  | Budget
  | Deadline
  | Quota
  | Memory
  | Overload
  | Session_limit
  | Bad_session
  | Shutting_down
  | Recovery_failed
  | Unsupported
  | Internal

let kind_to_string = function
  | Malformed_frame -> "malformed-frame"
  | Too_large -> "too-large"
  | Parse_error -> "parse-error"
  | Engine_error -> "engine-error"
  | Budget -> "budget"
  | Deadline -> "deadline"
  | Quota -> "quota"
  | Memory -> "memory"
  | Overload -> "overload"
  | Session_limit -> "session-limit"
  | Bad_session -> "bad-session"
  | Shutting_down -> "shutting-down"
  | Recovery_failed -> "recovery-failed"
  | Unsupported -> "unsupported"
  | Internal -> "internal"

exception Reject of { kind : error_kind; message : string; retry_after_ms : int option }

let reject ?retry_after_ms kind fmt =
  Format.kasprintf (fun message -> raise (Reject { kind; message; retry_after_ms })) fmt

type op =
  | Ping
  | Hello
  | Open_session of { durable : bool }
  | Run of {
      program : string;
      node_limit : int option;
      time_limit_ms : int option;
      memory_limit : int option;
      jobs : int option;
    }
  | Dump
  | Stats
  | Close_session
  | Metrics of { prometheus : bool }
  | Dump_flightrec

type request = { rq_id : Json.t; rq_session : string option; rq_op : op }

let malformed fmt = reject Malformed_frame fmt

(* ---- field accessors over a parsed frame ---- *)

let opt_field obj name =
  match Json.member name obj with Some Json.Null | None -> None | Some v -> Some v

let str_field obj name =
  match opt_field obj name with
  | None -> None
  | Some (Json.Str s) -> Some s
  | Some _ -> malformed "field %S must be a string" name

let int_field obj name =
  match opt_field obj name with
  | None -> None
  | Some (Json.Int i) -> Some i
  | Some _ -> malformed "field %S must be an integer" name

let pos_field obj name =
  match int_field obj name with
  | Some i when i <= 0 -> malformed "field %S must be positive" name
  | v -> v

let bool_field obj name =
  match opt_field obj name with
  | None -> None
  | Some (Json.Bool b) -> Some b
  | Some _ -> malformed "field %S must be a boolean" name

let id_field obj =
  match opt_field obj "id" with
  | None -> Json.Null
  | Some ((Json.Int _ | Json.Str _) as v) -> v
  | Some _ -> malformed "field \"id\" must be an integer or a string"

let frame_id line =
  match Json.parse line with
  | exception Json.Parse_error _ -> Json.Null
  | obj -> (
    match opt_field obj "id" with
    | Some ((Json.Int _ | Json.Str _) as v) -> v
    | Some _ | None -> Json.Null)

let valid_session_name s =
  let n = String.length s in
  n >= 1 && n <= 64
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       s

let parse_request line =
  let obj =
    match Json.parse line with
    | Json.Obj _ as o -> o
    | _ -> malformed "frame is not a JSON object"
    | exception Json.Parse_error msg -> malformed "frame is not JSON: %s" msg
  in
  let rq_id = id_field obj in
  let rq_session = str_field obj "session" in
  (match rq_session with
   | Some s when not (valid_session_name s) ->
     reject Bad_session "invalid session name %S (want [A-Za-z0-9_-]{1,64})" s
   | Some _ | None -> ());
  let rq_op =
    match str_field obj "op" with
    | None -> malformed "missing field \"op\""
    | Some "ping" -> Ping
    | Some "hello" -> Hello
    | Some "open-session" ->
      Open_session { durable = Option.value (bool_field obj "durable") ~default:false }
    | Some "run" ->
      let program =
        match str_field obj "program" with
        | Some p -> p
        | None -> malformed "op \"run\" needs a \"program\" string"
      in
      Run
        {
          program;
          node_limit = pos_field obj "node_limit";
          time_limit_ms = pos_field obj "time_limit_ms";
          memory_limit = pos_field obj "memory_limit";
          jobs =
            (match int_field obj "jobs" with
             | Some j when j < 0 -> malformed "field \"jobs\" must be non-negative"
             | v -> v);
        }
    | Some "dump" -> Dump
    | Some "stats" -> Stats
    | Some "close-session" -> Close_session
    | Some "metrics" -> (
      match str_field obj "format" with
      | None | Some "json" -> Metrics { prometheus = false }
      | Some "prometheus" -> Metrics { prometheus = true }
      | Some f -> malformed "unknown metrics format %S (want \"json\" or \"prometheus\")" f)
    | Some "dump-flightrec" -> Dump_flightrec
    | Some op -> reject Unsupported "unknown op %S" op
  in
  { rq_id; rq_session; rq_op }

let needs_session = function
  | Ping | Hello | Metrics _ | Dump_flightrec -> false
  | Open_session _ | Run _ | Dump | Stats | Close_session -> true

(* Replies carry the ambient trace id the daemon assigned to the request
   being answered (absent outside the daemon's execute wrapper), so a
   client can quote the id that tags the request's span in traces,
   flight-recorder dumps and the slow-request log. *)
let trace_field () =
  match Egglog.Telemetry.current_trace_id () with
  | None -> []
  | Some tid -> [ ("trace_id", Json.Str tid) ]

let ok_reply ~id fields =
  Json.to_string (Json.Obj (("id", id) :: ("ok", Json.Bool true) :: (trace_field () @ fields)))

let error_reply ~id ~kind ~message ?retry_after_ms () =
  let err =
    [ ("kind", Json.Str (kind_to_string kind)); ("message", Json.Str message) ]
    @ match retry_after_ms with Some ms -> [ ("retry_after_ms", Json.Int ms) ] | None -> []
  in
  Json.to_string
    (Json.Obj
       (("id", id) :: ("ok", Json.Bool false) :: (trace_field () @ [ ("error", Json.Obj err) ])))

let reject_reply ~id e =
  match e with
  | Reject { kind; message; retry_after_ms } ->
    error_reply ~id ~kind ~message ?retry_after_ms ()
  | e -> error_reply ~id ~kind:Internal ~message:(Printexc.to_string e) ()
