type 'a t = { limit : int; q : 'a Queue.t }

let create ~limit =
  if limit < 1 then invalid_arg "Admission.create: limit must be >= 1";
  { limit; q = Queue.create () }

let offer t x =
  if Queue.length t.q >= t.limit then false
  else begin
    Queue.add x t.q;
    true
  end

let take t = Queue.take_opt t.q

let drain t =
  let xs = List.of_seq (Queue.to_seq t.q) in
  Queue.clear t.q;
  xs

let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q
let limit t = t.limit
