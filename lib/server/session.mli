(** The session registry: named, isolated engine instances.

    Each session owns its {!Egglog.Engine.t} (and optionally a
    {!Egglog.Durable.t} journal under the daemon's data directory), so no
    request can observe or corrupt another session's state. Sessions are
    created on first use; a session whose name has a journal file in the
    data directory is {e always} recovered as durable, whatever the
    request said — a name with durable history can never be silently
    shadowed by an ephemeral session.

    Lifecycle: open (attach or recover) → serve requests → idle eviction
    (checkpoint + close the journal; the name stays recoverable) or
    explicit close → drain at shutdown (checkpoint + close everything).
    A journal that fails to recover quarantines the name: requests get a
    [recovery-failed] reply rather than a fresh session silently forking
    the durable history. *)

module E = Egglog

type session = {
  s_name : string;
  s_engine : E.Engine.t;
  mutable s_durable : E.Durable.t option;
  mutable s_last_used : float;  (** Telemetry.now of the last request *)
  mutable s_requests : int;
  s_hist : E.Telemetry.histogram;
      (** request latency, private to this session (unregistered) *)
}

type t

val create :
  data_dir:string option ->
  max_sessions:int ->
  checkpoint_every:int option ->
  make_engine:(unit -> E.Engine.t) ->
  t

val recover_existing : t -> (string * (E.Durable.recovery_report, string) result) list
(** Scan the data directory for [*.journal] files and recover each into a
    live durable session; failures quarantine the name. Returns what
    happened per name (sorted). Call once at startup. *)

val lookup : t -> name:string -> durable:bool -> now:float -> session
(** Get-or-open. Opening a new name beyond [max_sessions] live sessions,
    an invalid configuration ([durable] without a data dir) or a
    quarantined name raises {!Protocol.Reject}. [durable:true] on a live
    ephemeral session upgrades it (journal attached, then an immediate
    checkpoint captures the current state). *)

val close : t -> name:string -> bool
(** Checkpoint (when possible) and close the session's journal, drop the
    session. False when the name is not live. A durable name remains
    recoverable from its journal. *)

val evict_idle : t -> now:float -> idle_timeout:float -> string list
(** Close every live session idle longer than [idle_timeout] seconds;
    returns the evicted names. *)

val session_bytes : session -> int
(** Modeled footprint of the session's engine ({!E.Engine.modeled_bytes}). *)

val total_bytes : t -> int
(** Sum of {!session_bytes} over every live session — what the daemon's
    global memory headroom is enforced against. Deterministic (modeled, not
    measured). *)

val evict_largest : t -> keep:string -> target_bytes:int -> string list
(** Checkpoint-then-evict live sessions, largest modeled footprint first
    (ties broken by name), until {!total_bytes} is within [target_bytes] or
    no candidate remains. The session named [keep] is never evicted (it is
    the one serving the current request). Returns the evicted names;
    durable victims remain recoverable from their journals. *)

val drain : t -> unit
(** Shutdown path: checkpoint + close every live session. *)

val live_count : t -> int

val live_names : t -> string list
(** Sorted. *)

val quarantined_names : t -> string list
(** Sorted names whose journals failed to recover. *)

(** {2 Per-session attribution}

    The daemon's [metrics] reply reports each session from its own state —
    request count, private latency histogram, modeled bytes, eviction
    churn — never from the global telemetry registry, so one session's
    activity cannot pollute another's numbers. *)

type session_stat = {
  st_requests : int;
  st_bytes : int;  (** modeled bytes, {!session_bytes} *)
  st_durable : bool;
  st_evictions : int;  (** times this {e name} has been evicted *)
  st_latency : E.Telemetry.hist_snap;
}

val note_latency : t -> name:string -> float -> unit
(** Record one request duration into the named session's private
    histogram; no-op when the name is not live. *)

val per_session_stats : t -> (string * session_stat) list
(** Sorted by name; live sessions only. *)

val evictions_of : t -> string -> int

val journal_path : t -> string -> string option
(** Where the name's journal lives (None without a data dir). *)
