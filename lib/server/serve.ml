module E = Egglog
module Json = Protocol.Json

type config = {
  socket_path : string option;
  use_stdio : bool;
  data_dir : string option;
  max_sessions : int;
  queue_limit : int;
  retry_after_ms : int;
  max_input_bytes : int;
  max_output_bytes : int;
  node_limit_cap : int;
  time_limit_cap_ms : int;
  max_jobs : int;
  session_node_quota : int option;
  session_memory_quota : int option;
  memory_headroom : int option;
  idle_timeout_s : float option;
  checkpoint_every : int option;
  slow_log_ms : int option;
}

let default_config =
  {
    socket_path = None;
    use_stdio = false;
    data_dir = None;
    max_sessions = 64;
    queue_limit = 64;
    retry_after_ms = 50;
    max_input_bytes = 4 * 1024 * 1024;
    max_output_bytes = 16 * 1024 * 1024;
    node_limit_cap = 1_000_000;
    time_limit_cap_ms = 10_000;
    max_jobs = 4;
    session_node_quota = None;
    session_memory_quota = None;
    memory_headroom = None;
    idle_timeout_s = None;
    checkpoint_every = Some 64;
    slow_log_ms = None;
  }

type conn = {
  c_id : int;
  c_in : Unix.file_descr;
  c_out : Unix.file_descr;
  c_keep_fds : bool;  (* stdio: the fds belong to the process, never close *)
  c_rbuf : Buffer.t;  (* read, not yet framed *)
  c_wbuf : Buffer.t;  (* replies not yet written *)
  mutable c_woff : int;  (* prefix of c_wbuf already on the wire *)
  mutable c_skip : bool;  (* discarding an oversized frame up to its newline *)
  mutable c_eof : bool;
  mutable c_dribble : bool;  (* fault "server.reply.slow": one byte per tick *)
  mutable c_gone : bool;
}

type t = {
  cfg : config;
  sessions : Session.t;
  queue : (int * Protocol.request) Admission.t;
  conns : (int, conn) Hashtbl.t;
  mutable next_conn_id : int;
  listener : Unix.file_descr option;
  drain_flag : bool Atomic.t;
  mutable recovery : string list;
  mutable last_sweep : float;
  mutable next_trace : int;  (* monotonically increasing trace-id suffix *)
  (* phase breakdown of the last run this tick, for the slow-request log *)
  mutable last_phases : (float * float * float) option;
}

let c_conns = E.Telemetry.counter "server.conns_opened"
let c_requests = E.Telemetry.counter "server.requests"
let c_replies = E.Telemetry.counter "server.replies"
let c_errors = E.Telemetry.counter "server.error_replies"
let c_sheds = E.Telemetry.counter "server.sheds"
let c_slow_drops = E.Telemetry.counter "server.slow_client_drops"
let c_slow_requests = E.Telemetry.counter "server.slow_requests"
let c_flightrec_dumps = E.Telemetry.counter "server.flightrec_dumps"
let h_request = E.Telemetry.histogram "server.request_s"

(* ---- flight recorder dumps ----

   The ring (see Telemetry) is always capturing while the daemon runs;
   these helpers persist it at the moments that need a post-mortem:
   fatal faults, Out_of_memory, recovery quarantine, SIGTERM drain, and
   the on-demand dump-flightrec op. *)

let flightrec_path ~dir =
  let ts = int_of_float (Unix.gettimeofday () *. 1000.) in
  let rec fresh ts =
    let path = Filename.concat dir (Printf.sprintf "flightrec-%d.jsonl" ts) in
    if Sys.file_exists path then fresh (ts + 1) else path
  in
  fresh ts

let dump_flightrec ~data_dir ~reason =
  let dir = Option.value data_dir ~default:"." in
  let path = flightrec_path ~dir in
  match E.Telemetry.flightrec_dump ~path with
  | 0 -> None
  | n ->
    E.Telemetry.bump c_flightrec_dumps 1;
    E.Telemetry.instant "server.flightrec.dump"
      [ ("reason", Json.Str reason); ("path", Json.Str path); ("events", Json.Int n) ];
    Some (path, n)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ---- lifecycle ---- *)

let create cfg =
  if cfg.socket_path = None && not cfg.use_stdio then
    failwith "serve: no transport (need a socket path or stdio)";
  Option.iter mkdir_p cfg.data_dir;
  let sessions =
    Session.create ~data_dir:cfg.data_dir ~max_sessions:cfg.max_sessions
      ~checkpoint_every:cfg.checkpoint_every
      ~make_engine:(fun () -> E.Engine.create ())
  in
  let recovery =
    List.map
      (fun (name, outcome) ->
        match outcome with
        | Ok (r : E.Durable.recovery_report) ->
          Printf.sprintf "recovered session %s (%d replayed%s)" name r.E.Durable.rc_replayed
            (if r.E.Durable.rc_torn then ", torn tail dropped" else "")
        | Error msg -> Printf.sprintf "quarantined session %s: %s" name msg)
      (Session.recover_existing sessions)
  in
  let listener =
    Option.map
      (fun path ->
        if Sys.file_exists path then
          (try Sys.remove path
           with Sys_error msg -> failwith (Printf.sprintf "serve: cannot replace %s: %s" path msg));
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.bind fd (Unix.ADDR_UNIX path)
         with Unix.Unix_error (e, _, _) ->
           Unix.close fd;
           failwith (Printf.sprintf "serve: cannot bind %s: %s" path (Unix.error_message e)));
        Unix.listen fd 16;
        Unix.set_nonblock fd;
        fd)
      cfg.socket_path
  in
  let t =
    {
      cfg;
      sessions;
      queue = Admission.create ~limit:cfg.queue_limit;
      conns = Hashtbl.create 16;
      next_conn_id = 0;
      listener;
      drain_flag = Atomic.make false;
      recovery;
      last_sweep = E.Telemetry.now ();
      next_trace = 0;
      last_phases = None;
    }
  in
  (* a quarantined journal is exactly the post-mortem case the recorder
     exists for: persist whatever recovery left in the ring *)
  if List.exists (fun line -> String.length line >= 11 && String.sub line 0 11 = "quarantined") recovery
  then ignore (dump_flightrec ~data_dir:cfg.data_dir ~reason:"quarantine");
  if cfg.use_stdio then begin
    Unix.set_nonblock Unix.stdin;
    let conn =
      {
        c_id = t.next_conn_id;
        c_in = Unix.stdin;
        c_out = Unix.stdout;
        c_keep_fds = true;
        c_rbuf = Buffer.create 256;
        c_wbuf = Buffer.create 256;
        c_woff = 0;
        c_skip = false;
        c_eof = false;
        c_dribble = false;
        c_gone = false;
      }
    in
    t.next_conn_id <- t.next_conn_id + 1;
    Hashtbl.replace t.conns conn.c_id conn
  end;
  t

let recovery_log t = t.recovery
let request_drain t = Atomic.set t.drain_flag true
let draining t = Atomic.get t.drain_flag

(* ---- connection plumbing ---- *)

let close_conn t conn =
  if not conn.c_gone then begin
    conn.c_gone <- true;
    Hashtbl.remove t.conns conn.c_id;
    if not conn.c_keep_fds then begin
      (try Unix.close conn.c_in with Unix.Unix_error _ -> ());
      if conn.c_out <> conn.c_in then
        try Unix.close conn.c_out with Unix.Unix_error _ -> ()
    end
  end

let pending conn = Buffer.length conn.c_wbuf - conn.c_woff

let try_flush t conn =
  if not conn.c_gone then begin
    (try
       while pending conn > 0 do
         let len = if conn.c_dribble then 1 else min 65536 (pending conn) in
         let chunk = Buffer.sub conn.c_wbuf conn.c_woff len in
         let n = Unix.write_substring conn.c_out chunk 0 len in
         conn.c_woff <- conn.c_woff + n;
         if conn.c_dribble then raise_notrace Exit
       done
     with
    | Exit -> ()
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | Unix.Unix_error _ -> close_conn t conn);
    if (not conn.c_gone) && pending conn = 0 then begin
      Buffer.clear conn.c_wbuf;
      conn.c_woff <- 0
    end
  end

let enqueue_reply t conn line =
  if not conn.c_gone then begin
    E.Telemetry.bump c_replies 1;
    if E.Fault.would_crash "server.reply.drop" then begin
      (* the injected failure: half a reply, then a vanished peer — the
         daemon must shrug, not die on EPIPE *)
      let half = String.sub line 0 (String.length line / 2) in
      (try ignore (Unix.write_substring conn.c_out half 0 (String.length half))
       with Unix.Unix_error _ -> ());
      close_conn t conn
    end
    else begin
      if E.Fault.would_crash "server.reply.slow" then conn.c_dribble <- true;
      Buffer.add_string conn.c_wbuf line;
      Buffer.add_char conn.c_wbuf '\n';
      if pending conn > t.cfg.max_output_bytes then begin
        (* client stopped reading; cut it loose rather than buffer forever *)
        E.Telemetry.bump c_slow_drops 1;
        close_conn t conn
      end
      else try_flush t conn
    end
  end

let enqueue_error t conn ~id ~kind ?retry_after_ms message =
  E.Telemetry.bump c_errors 1;
  enqueue_reply t conn (Protocol.error_reply ~id ~kind ~message ?retry_after_ms ())

(* ---- request execution ---- *)

let now () = E.Telemetry.now ()

let hello_reply t ~id =
  let cfg = t.cfg in
  Protocol.ok_reply ~id
    [
      ("server", Json.Str "egglog-serve");
      ("protocol", Json.Int 1);
      ( "limits",
        Json.Obj
          [
            ("max_input_bytes", Json.Int cfg.max_input_bytes);
            ("node_limit_cap", Json.Int cfg.node_limit_cap);
            ("time_limit_cap_ms", Json.Int cfg.time_limit_cap_ms);
            ("max_jobs", Json.Int cfg.max_jobs);
            ("queue_limit", Json.Int cfg.queue_limit);
            ( "session_node_quota",
              match cfg.session_node_quota with Some q -> Json.Int q | None -> Json.Null );
            ( "session_memory_quota",
              match cfg.session_memory_quota with Some q -> Json.Int q | None -> Json.Null );
            ( "memory_headroom",
              match cfg.memory_headroom with Some h -> Json.Int h | None -> Json.Null );
          ] );
      ("sessions", Json.List (List.map (fun n -> Json.Str n) (Session.live_names t.sessions)));
    ]

let exec_run t (sess : Session.session) ~id ~program ~node_limit ~time_limit_ms ~memory_limit
    ~jobs =
  let cfg = t.cfg in
  let node_budget = min (Option.value node_limit ~default:cfg.node_limit_cap) cfg.node_limit_cap in
  let time_ms = min (Option.value time_limit_ms ~default:cfg.time_limit_cap_ms) cfg.time_limit_cap_ms in
  let total_s = float_of_int time_ms /. 1000. in
  (* The request's modeled-byte budget, clamped by the per-session quota:
     like the node budget, the quota is the server's and requests only
     tighten it. *)
  let mem_budget =
    match (memory_limit, cfg.session_memory_quota) with
    | Some m, Some q -> Some (min m q)
    | Some m, None -> Some m
    | None, q -> q
  in
  (* [max_jobs] caps every fan-out phase of the request's runs — search,
     apply and rebuild all draw from the same domain budget. *)
  let jobs =
    match jobs with None -> 1 | Some 0 -> cfg.max_jobs | Some j -> min j cfg.max_jobs
  in
  let cmds = E.Frontend.parse_program ~max_bytes:cfg.max_input_bytes program in
  let eng = sess.Session.s_engine in
  let deadline = now () +. total_s in
  (* Clamp the limits a program asks for to the request budget — the budget
     is the server's, programs only tighten it. *)
  let clamp_spec (sp : E.Ast.run_spec) remaining =
    {
      sp with
      E.Ast.run_node_limit =
        Some (match sp.E.Ast.run_node_limit with Some n -> min n node_budget | None -> node_budget);
      run_time_limit =
        Some
          (match sp.E.Ast.run_time_limit with
           | Some s -> Float.min s remaining
           | None -> remaining);
      run_memory_limit =
        (match (sp.E.Ast.run_memory_limit, mem_budget) with
         | Some m, Some b -> Some (min m b)
         | Some m, None -> Some m
         | None, b -> b);
      run_jobs =
        (match sp.E.Ast.run_jobs with
         | None -> Some jobs
         | Some 0 -> Some jobs
         | Some j -> Some (min j jobs));
    }
  in
  let outputs, reports =
    E.Engine.with_transaction eng (fun () ->
      (* injected allocation failure: must roll back and reply, never die *)
      if E.Fault.would_crash "server.oom" then raise Out_of_memory;
      let result =
        E.Engine.collect_reports eng (fun () ->
          List.concat_map
            (fun cmd ->
              let remaining = deadline -. now () in
              if remaining <= 0. then
                Protocol.reject Protocol.Deadline
                  "request exceeded its %d ms deadline; rolled back" time_ms;
              E.Engine.set_session_limits ~node_limit:node_budget ~time_limit:remaining
                ?memory_limit:mem_budget ~jobs eng ();
              let cmd =
                match cmd with
                | E.Ast.Run sp -> E.Ast.Run (clamp_spec sp remaining)
                | c -> c
              in
              E.Engine.run_command eng cmd)
            cmds)
      in
      (* a budgeted stop is partial work: roll the whole request back so the
         session never holds a half-applied program *)
      (match
         List.find_opt
           (fun (r : E.Engine.run_report) ->
             match r.E.Engine.stop_reason with
             | E.Engine.Node_limit _ | E.Engine.Time_limit _ | E.Engine.Memory_limit _ ->
               true
             | _ -> false)
           (snd result)
       with
      | Some r ->
        Protocol.reject Protocol.Budget "run stopped by %s; request rolled back"
          (E.Engine.describe_stop_reason r.E.Engine.stop_reason)
      | None -> ());
      (match cfg.session_node_quota with
      | Some q when E.Engine.total_rows eng > q ->
        Protocol.reject Protocol.Quota
          "session would hold %d tuples, quota is %d; request rolled back"
          (E.Engine.total_rows eng) q
      | _ -> ());
      (match cfg.session_memory_quota with
      | Some q when E.Engine.modeled_bytes eng > q ->
        Protocol.reject Protocol.Quota
          "session would hold %d modeled bytes, quota is %d; request rolled back"
          (E.Engine.modeled_bytes eng) q
      | _ -> ());
      result)
  in
  (* committed — journal the request before acknowledging it *)
  (match sess.Session.s_durable with
  | Some d ->
    E.Fault.hit "server.request.executed";
    List.iter (E.Durable.append_committed d) cmds;
    E.Fault.hit "server.request.journaled"
  | None -> ());
  sess.Session.s_requests <- sess.Session.s_requests + 1;
  t.last_phases <-
    Some
      (List.fold_left
         (fun acc (r : E.Engine.run_report) ->
           List.fold_left
             (fun (s, a, rb) (it : E.Engine.iteration_stat) ->
               ( s +. it.E.Engine.it_search_seconds,
                 a +. it.E.Engine.it_apply_seconds,
                 rb +. it.E.Engine.it_rebuild_seconds ))
             acc r.E.Engine.iterations)
         (0., 0., 0.) reports);
  let iterations =
    List.fold_left
      (fun acc (r : E.Engine.run_report) -> acc + List.length r.E.Engine.iterations)
      0 reports
  in
  Protocol.ok_reply ~id
    [
      ("outputs", Json.List (List.map (fun s -> Json.Str s) outputs));
      ("rows", Json.Int (E.Engine.total_rows eng));
      ("classes", Json.Int (E.Engine.n_classes eng));
      ("iterations", Json.Int iterations);
    ]

(* Global admission control: when the modeled footprint of all live sessions
   exceeds the headroom cap, shed the largest idle sessions
   (checkpoint-then-evict, deterministic victim order) and, if the footprint
   is still over the cap, refuse the request with a retry hint rather than
   letting the daemon grow without bound. The requester's own session is
   never evicted from under its request. The fault "server.memory.pressure"
   forces a zero cap so tests can exercise eviction and the overload reply
   without allocating real memory. *)
let enforce_headroom t ~keep =
  let cap =
    if E.Fault.would_crash "server.memory.pressure" then Some 0 else t.cfg.memory_headroom
  in
  match cap with
  | None -> ()
  | Some cap ->
    if Session.total_bytes t.sessions > cap then begin
      let evicted = Session.evict_largest t.sessions ~keep ~target_bytes:cap in
      if evicted <> [] then
        E.Telemetry.instant "server.memory.pressure"
          [
            ("evicted", Json.List (List.map (fun n -> Json.Str n) evicted));
            ("headroom_bytes", Json.Int cap);
          ];
      let still = Session.total_bytes t.sessions in
      if still > cap then
        Protocol.reject Protocol.Overload ~retry_after_ms:t.cfg.retry_after_ms
          "global memory headroom exhausted (%d modeled bytes, cap %d)" still cap
    end

let session_fields (sess : Session.session) =
  [
    ("session", Json.Str sess.Session.s_name);
    ("durable", Json.Bool (sess.Session.s_durable <> None));
    ("rows", Json.Int (E.Engine.total_rows sess.Session.s_engine));
  ]

(* ---- metrics rendering ---- *)

let memory_json t =
  (* modeled bytes are the governed quantity; Gc numbers ride along as
     telemetry-only backstop (see docs/INTERNALS.md) *)
  let gc = Gc.quick_stat () in
  let word_bytes = Sys.word_size / 8 in
  let opt_int = function Some v -> Json.Int v | None -> Json.Null in
  Json.Obj
    [
      ("modeled_bytes", Json.Int (Session.total_bytes t.sessions));
      ("live_sessions", Json.Int (Session.live_count t.sessions));
      ("session_memory_quota", opt_int t.cfg.session_memory_quota);
      ("memory_headroom", opt_int t.cfg.memory_headroom);
      ("top_heap_bytes", Json.Int (gc.Gc.top_heap_words * word_bytes));
      ("heap_bytes", Json.Int (gc.Gc.heap_words * word_bytes));
    ]

(* Each session reported from its own state (request count, private
   latency histogram, modeled bytes, eviction churn) — never from the
   global telemetry registry, so sessions cannot pollute each other. *)
let sessions_json t =
  Json.Obj
    (List.map
       (fun (name, (st : Session.session_stat)) ->
         ( name,
           Json.Obj
             [
               ("requests", Json.Int st.Session.st_requests);
               ("modeled_bytes", Json.Int st.Session.st_bytes);
               ("durable", Json.Bool st.Session.st_durable);
               ("evictions", Json.Int st.Session.st_evictions);
               ("latency", E.Telemetry.hist_snap_to_json st.Session.st_latency);
             ] ))
       (Session.per_session_stats t.sessions))

let prometheus_text t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (E.Telemetry.prometheus_of_snapshot (E.Telemetry.snapshot ()));
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let gc = Gc.quick_stat () in
  let word_bytes = Sys.word_size / 8 in
  line "# TYPE egglog_server_modeled_bytes gauge";
  line "egglog_server_modeled_bytes %d" (Session.total_bytes t.sessions);
  line "# TYPE egglog_server_live_sessions gauge";
  line "egglog_server_live_sessions %d" (Session.live_count t.sessions);
  line "# TYPE egglog_server_heap_bytes gauge";
  line "egglog_server_heap_bytes %d" (gc.Gc.heap_words * word_bytes);
  line "# TYPE egglog_server_top_heap_bytes gauge";
  line "egglog_server_top_heap_bytes %d" (gc.Gc.top_heap_words * word_bytes);
  (* per-session series; session names are [A-Za-z0-9_-] so the label
     value never needs escaping *)
  let stats = Session.per_session_stats t.sessions in
  line "# TYPE egglog_session_requests_total counter";
  List.iter
    (fun (name, (st : Session.session_stat)) ->
      line "egglog_session_requests_total{session=%S} %d" name st.Session.st_requests)
    stats;
  line "# TYPE egglog_session_modeled_bytes gauge";
  List.iter
    (fun (name, (st : Session.session_stat)) ->
      line "egglog_session_modeled_bytes{session=%S} %d" name st.Session.st_bytes)
    stats;
  line "# TYPE egglog_session_evictions_total counter";
  List.iter
    (fun (name, (st : Session.session_stat)) ->
      line "egglog_session_evictions_total{session=%S} %d" name st.Session.st_evictions)
    stats;
  line "# TYPE egglog_session_request_seconds summary";
  List.iter
    (fun (name, (st : Session.session_stat)) ->
      let hs = st.Session.st_latency in
      if hs.E.Telemetry.hs_count > 0 then begin
        line "egglog_session_request_seconds{session=%S,quantile=\"0.5\"} %.12g" name
          (E.Telemetry.hist_snap_quantile hs 0.5);
        line "egglog_session_request_seconds{session=%S,quantile=\"0.99\"} %.12g" name
          (E.Telemetry.hist_snap_quantile hs 0.99)
      end;
      line "egglog_session_request_seconds_count{session=%S} %d" name hs.E.Telemetry.hs_count;
      line "egglog_session_request_seconds_sum{session=%S} %.12g" name hs.E.Telemetry.hs_sum)
    stats;
  Buffer.contents buf

let op_name = function
  | Protocol.Ping -> "ping"
  | Protocol.Hello -> "hello"
  | Protocol.Open_session _ -> "open-session"
  | Protocol.Run _ -> "run"
  | Protocol.Dump -> "dump"
  | Protocol.Stats -> "stats"
  | Protocol.Close_session -> "close-session"
  | Protocol.Metrics _ -> "metrics"
  | Protocol.Dump_flightrec -> "dump-flightrec"

(* One JSONL entry per offending request: everything needed to replay or
   diagnose it — program, budgets, phase breakdown, recent trace tail. *)
let slow_log_write t (rq : Protocol.request) ~tid ~dur_s =
  E.Telemetry.bump c_slow_requests 1;
  let tail =
    let events = E.Telemetry.flightrec_events () in
    let skip = max 0 (List.length events - 16) in
    List.filteri (fun i _ -> i >= skip) events
    |> List.filter_map (fun l -> try Some (Json.parse l) with Json.Parse_error _ -> None)
  in
  let budgets_and_program =
    match rq.Protocol.rq_op with
    | Protocol.Run { program; node_limit; time_limit_ms; memory_limit; jobs } ->
      let opt = function Some v -> Json.Int v | None -> Json.Null in
      [
        ("program", Json.Str program);
        ( "budgets",
          Json.Obj
            [
              ("node_limit", opt node_limit);
              ("time_limit_ms", opt time_limit_ms);
              ("memory_limit", opt memory_limit);
              ("jobs", opt jobs);
            ] );
      ]
    | _ -> []
  in
  let phases =
    match t.last_phases with
    | Some (s, a, r) ->
      [
        ( "phases",
          Json.Obj
            [
              ("search_s", Json.Float s);
              ("apply_s", Json.Float a);
              ("rebuild_s", Json.Float r);
            ] );
      ]
    | None -> []
  in
  let entry =
    Json.Obj
      ([
         ("ts", Json.Float (Unix.gettimeofday ()));
         ("trace_id", Json.Str tid);
         ("id", rq.Protocol.rq_id);
         ( "session",
           match rq.Protocol.rq_session with Some s -> Json.Str s | None -> Json.Null );
         ("op", Json.Str (op_name rq.Protocol.rq_op));
         ("dur_ms", Json.Float (dur_s *. 1000.));
       ]
      @ budgets_and_program @ phases
      @ [ ("flightrec_tail", Json.List tail) ])
  in
  let line = Json.to_string entry in
  match t.cfg.data_dir with
  | Some dir -> (
    let path = Filename.concat dir "slowlog.jsonl" in
    try
      Out_channel.with_open_gen
        [ Open_append; Open_creat; Open_wronly ]
        0o644 path
        (fun oc ->
          Out_channel.output_string oc line;
          Out_channel.output_char oc '\n')
    with Sys_error _ -> ())
  | None -> prerr_endline ("slow-request: " ^ line)

let next_trace_id t =
  let n = t.next_trace in
  t.next_trace <- n + 1;
  Printf.sprintf "t-%06d" n

let execute t (rq : Protocol.request) =
  let id = rq.Protocol.rq_id in
  E.Telemetry.bump c_requests 1;
  t.last_phases <- None;
  let tid = next_trace_id t in
  E.Telemetry.with_trace_id tid @@ fun () ->
  let t_start = now () in
  let reply =
  E.Telemetry.span "server.request" (fun () ->
    match
      (match rq.Protocol.rq_op with
      | Protocol.Ping -> Protocol.ok_reply ~id []
      | Protocol.Hello -> hello_reply t ~id
      | Protocol.Metrics { prometheus } ->
        if prometheus then Protocol.ok_reply ~id [ ("prometheus", Json.Str (prometheus_text t)) ]
        else
          Protocol.ok_reply ~id
            [
              ("metrics", E.Telemetry.snapshot_to_json (E.Telemetry.snapshot ()));
              ("sessions", sessions_json t);
              ( "quarantined",
                Json.List
                  (List.map (fun n -> Json.Str n) (Session.quarantined_names t.sessions)) );
              ("memory", memory_json t);
            ]
      | Protocol.Dump_flightrec ->
        let parsed =
          List.filter_map
            (fun l -> try Some (Json.parse l) with Json.Parse_error _ -> None)
            (E.Telemetry.flightrec_events ())
        in
        let path =
          match t.cfg.data_dir with
          | None -> Json.Null
          | Some _ -> (
            match dump_flightrec ~data_dir:t.cfg.data_dir ~reason:"on-demand" with
            | Some (p, _) -> Json.Str p
            | None -> Json.Null)
        in
        Protocol.ok_reply ~id [ ("events", Json.List parsed); ("path", path) ]
      | op ->
        let name =
          match rq.Protocol.rq_session with
          | Some n -> n
          | None -> Protocol.reject Protocol.Malformed_frame "this op needs a \"session\" field"
        in
        (match op with
        | Protocol.Ping | Protocol.Hello | Protocol.Metrics _ | Protocol.Dump_flightrec ->
          assert false
        | Protocol.Close_session ->
          Protocol.ok_reply ~id
            [ ("closed", Json.Bool (Session.close t.sessions ~name)) ]
        | Protocol.Open_session { durable } ->
          let sess = Session.lookup t.sessions ~name ~durable ~now:(now ()) in
          Protocol.ok_reply ~id (session_fields sess)
        | Protocol.Run { program; node_limit; time_limit_ms; memory_limit; jobs } ->
          enforce_headroom t ~keep:name;
          let sess = Session.lookup t.sessions ~name ~durable:false ~now:(now ()) in
          exec_run t sess ~id ~program ~node_limit ~time_limit_ms ~memory_limit ~jobs
        | Protocol.Dump ->
          let sess = Session.lookup t.sessions ~name ~durable:false ~now:(now ()) in
          Protocol.ok_reply ~id
            [ ("dump", Json.Str (E.Serialize.dump_string sess.Session.s_engine)) ]
        | Protocol.Stats ->
          let sess = Session.lookup t.sessions ~name ~durable:false ~now:(now ()) in
          Protocol.ok_reply ~id
            (session_fields sess
            @ [
                ("classes", Json.Int (E.Engine.n_classes sess.Session.s_engine));
                ("requests", Json.Int sess.Session.s_requests);
                ("scope_depth", Json.Int (E.Engine.scope_depth sess.Session.s_engine));
              ])))
    with
    | reply -> reply
    | exception (E.Fault.Crash _ as e) -> raise e  (* simulated crash: die loudly *)
    | exception ((Out_of_memory | Stack_overflow) as e) ->
      (* the allocator (or the stack) gave out mid-request. with_transaction
         already restored the session's pre-request state on the way up;
         compact to actually return freed memory, then answer with a typed
         error — the daemon and every other session live on. *)
      (try Gc.compact () with Out_of_memory -> ());
      ignore (dump_flightrec ~data_dir:t.cfg.data_dir ~reason:"out-of-memory");
      E.Telemetry.bump c_errors 1;
      Protocol.error_reply ~id ~kind:Protocol.Memory
        ~message:
          (Printf.sprintf "%s while executing the request; session rolled back"
             (match e with Out_of_memory -> "out of memory" | _ -> "stack overflow"))
        ()
    | exception E.Engine.Egglog_error msg ->
      E.Telemetry.bump c_errors 1;
      Protocol.error_reply ~id ~kind:Protocol.Engine_error ~message:msg ()
    | exception E.Frontend.Syntax_error msg ->
      E.Telemetry.bump c_errors 1;
      Protocol.error_reply ~id ~kind:Protocol.Parse_error ~message:msg ()
    | exception Sexpr.Parse_error { line; col; message } ->
      E.Telemetry.bump c_errors 1;
      Protocol.error_reply ~id ~kind:Protocol.Parse_error
        ~message:(Printf.sprintf "%d:%d: %s" line col message)
        ()
    | exception E.Frontend.Input_too_large { bytes; limit } ->
      E.Telemetry.bump c_errors 1;
      Protocol.error_reply ~id ~kind:Protocol.Too_large
        ~message:(Printf.sprintf "program is %d bytes, limit is %d" bytes limit)
        ()
    | exception e ->
      (* reject_reply renders Reject as its typed kind, anything else as
         internal — either way the client gets a diagnosis, not a hangup *)
      E.Telemetry.bump c_errors 1;
      Protocol.reject_reply ~id e)
  in
  let dur_s = now () -. t_start in
  E.Telemetry.hist_record h_request dur_s;
  (match rq.Protocol.rq_session with
  | Some name -> Session.note_latency t.sessions ~name dur_s
  | None -> ());
  (match t.cfg.slow_log_ms with
  | Some thr when dur_s *. 1000. >= float_of_int thr -> slow_log_write t rq ~tid ~dur_s
  | _ -> ());
  reply

(* ---- framing ---- *)

let is_blank line = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') line

let handle_frame t conn line =
  if not (is_blank line) then begin
    if String.length line > t.cfg.max_input_bytes then begin
      enqueue_error t conn ~id:(Protocol.frame_id line) ~kind:Protocol.Too_large
        (Printf.sprintf "frame is %d bytes, limit is %d" (String.length line)
           t.cfg.max_input_bytes)
    end
    else
      match Protocol.parse_request line with
      | exception Protocol.Reject { kind; message; retry_after_ms } ->
        enqueue_error t conn ~id:(Protocol.frame_id line) ~kind ?retry_after_ms message
      | rq ->
        let id = rq.Protocol.rq_id in
        if draining t then
          enqueue_error t conn ~id ~kind:Protocol.Shutting_down "daemon is draining"
        else if not (Protocol.needs_session rq.Protocol.rq_op) then
          (* control-plane ops answer immediately, ahead of the queue *)
          enqueue_reply t conn (execute t rq)
        else if Admission.offer t.queue (conn.c_id, rq) then ()
        else begin
          E.Telemetry.bump c_sheds 1;
          enqueue_error t conn ~id ~kind:Protocol.Overload
            ~retry_after_ms:t.cfg.retry_after_ms
            (Printf.sprintf "admission queue full (%d queued)" (Admission.limit t.queue))
        end
  end

(* Split off completed lines; keep the incomplete tail buffered. An
   oversized tail gets its too-large reply immediately and is discarded up
   to the next newline, so a hostile client cannot balloon the buffer. *)
let extract_frames t conn =
  let data = Buffer.contents conn.c_rbuf in
  Buffer.clear conn.c_rbuf;
  let n = String.length data in
  let frames = ref [] in
  let pos = ref 0 in
  let continue = ref true in
  while !continue do
    match String.index_from_opt data !pos '\n' with
    | Some nl ->
      let line = String.sub data !pos (nl - !pos) in
      pos := nl + 1;
      if conn.c_skip then conn.c_skip <- false else frames := line :: !frames
    | None ->
      let rest = n - !pos in
      if conn.c_skip then () (* still discarding the oversized frame *)
      else if rest > t.cfg.max_input_bytes then begin
        enqueue_error t conn ~id:Json.Null ~kind:Protocol.Too_large
          (Printf.sprintf "frame exceeds %d bytes" t.cfg.max_input_bytes);
        conn.c_skip <- true
      end
      else Buffer.add_substring conn.c_rbuf data !pos rest;
      continue := false
  done;
  List.rev !frames

let read_conn t conn =
  let buf = Bytes.create 65536 in
  (match Unix.read conn.c_in buf 0 (Bytes.length buf) with
  | 0 -> conn.c_eof <- true
  | n -> Buffer.add_subbytes conn.c_rbuf buf 0 n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> conn.c_eof <- true);
  List.iter (handle_frame t conn) (extract_frames t conn)

let accept_new t listener =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true listener with
    | fd, _ ->
      Unix.set_nonblock fd;
      let conn =
        {
          c_id = t.next_conn_id;
          c_in = fd;
          c_out = fd;
          c_keep_fds = false;
          c_rbuf = Buffer.create 256;
          c_wbuf = Buffer.create 256;
          c_woff = 0;
          c_skip = false;
          c_eof = false;
          c_dribble = false;
          c_gone = false;
        }
      in
      t.next_conn_id <- t.next_conn_id + 1;
      Hashtbl.replace t.conns conn.c_id conn;
      E.Telemetry.bump c_conns 1
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

(* ---- the loop ---- *)

let all_conns t = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []

let tick t =
  let conns = all_conns t in
  let reads =
    (match t.listener with Some fd when not (draining t) -> [ fd ] | _ -> [])
    @ List.filter_map (fun c -> if c.c_eof || c.c_gone then None else Some c.c_in) conns
  in
  let writes = List.filter_map (fun c -> if pending c > 0 then Some c.c_out else None) conns in
  let timeout =
    if not (Admission.is_empty t.queue) then 0.
    else if List.exists (fun c -> c.c_dribble && pending c > 0) conns then 0.002
    else 0.05
  in
  let r, w, _ =
    try Unix.select reads writes [] timeout
    with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  (match t.listener with
  | Some fd when List.memq fd r -> accept_new t fd
  | _ -> ());
  List.iter (fun c -> if (not c.c_gone) && List.memq c.c_in r then read_conn t c) conns;
  (* execute exactly one queued request per tick: a pipelined burst hits
     admission together and sheds deterministically, and the loop gets back
     to the sockets between requests *)
  (match Admission.take t.queue with
  | Some (conn_id, rq) -> (
    match Hashtbl.find_opt t.conns conn_id with
    | Some conn -> enqueue_reply t conn (execute t rq)
    | None -> () (* client is gone; its request dies with it *))
  | None -> ());
  List.iter
    (fun c ->
      if (not c.c_gone) && (List.memq c.c_out w || (c.c_dribble && pending c > 0)) then
        try_flush t c)
    conns;
  (* reap connections that are done *)
  List.iter
    (fun c ->
      if (not c.c_gone) && c.c_eof && pending c = 0 && Buffer.length c.c_rbuf = 0 then begin
        (* stdin EOF in pipe mode means "that was the whole job": drain *)
        if c.c_keep_fds && t.listener = None then request_drain t;
        close_conn t c
      end)
    conns;
  match t.cfg.idle_timeout_s with
  | Some idle when now () -. t.last_sweep > 1.0 ->
    t.last_sweep <- now ();
    ignore (Session.evict_idle t.sessions ~now:(now ()) ~idle_timeout:idle)
  | _ -> ()

let drain_now t =
  (* shed everything still queued, with an explicit reason *)
  List.iter
    (fun (conn_id, (rq : Protocol.request)) ->
      match Hashtbl.find_opt t.conns conn_id with
      | Some conn ->
        enqueue_error t conn ~id:rq.Protocol.rq_id ~kind:Protocol.Shutting_down
          "daemon is draining"
      | None -> ())
    (Admission.drain t.queue);
  (* bounded flush: best effort, never a hang *)
  let deadline = now () +. 2.0 in
  let unflushed () = List.filter (fun c -> pending c > 0) (all_conns t) in
  let rec flush_loop () =
    match unflushed () with
    | [] -> ()
    | cs when now () < deadline ->
      (match Unix.select [] (List.map (fun c -> c.c_out) cs) [] 0.05 with
      | _, w, _ ->
        List.iter (fun c -> if List.memq c.c_out w || c.c_dribble then try_flush t c) cs
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      flush_loop ()
    | _ -> ()
  in
  flush_loop ();
  Session.drain t.sessions;
  List.iter (fun c -> close_conn t c) (all_conns t);
  (match t.listener with Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ()) | None -> ());
  Option.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) t.cfg.socket_path

let run t =
  E.Telemetry.instant "server.start"
    [
      ("sessions", Json.Int (Session.live_count t.sessions));
      ("recovery", Json.List (List.map (fun s -> Json.Str s) t.recovery));
    ];
  (try
     while not (draining t) do
       tick t
     done
   with e ->
     (* fatal: persist the recorder before dying so the crash leaves a
        post-mortem artifact (the ring tail carries the crashing
        request's trace id). The exception still propagates — exit codes
        and fault semantics are unchanged. *)
     ignore (dump_flightrec ~data_dir:t.cfg.data_dir ~reason:"crash");
     (* the CLI's error ladder also dumps the ring on Fault.Crash as a
        batch-mode fallback, and telemetry teardown still flushes counters
        into the ring on the way out; capture is done — turn the recorder
        off so the daemon path writes exactly one artifact *)
     E.Telemetry.flightrec_configure ~capacity:0;
     raise e);
  drain_now t;
  E.Telemetry.instant "server.stop" [];
  (* drain is a deliberate stopping point too: keep the tail around for
     whoever asks "what was it doing just before the SIGTERM?" *)
  if t.cfg.data_dir <> None then
    ignore (dump_flightrec ~data_dir:t.cfg.data_dir ~reason:"drain")
