type t = {
  mutable parent : int array;
  mutable size : int array;
  mutable n : int;
  mutable dirty : int list;
  mutable n_classes : int;
}

let create () = { parent = Array.make 16 0; size = Array.make 16 1; n = 0; dirty = []; n_classes = 0 }

let grow uf =
  let cap = Array.length uf.parent in
  if uf.n >= cap then begin
    let cap' = 2 * cap in
    let parent = Array.make cap' 0 and size = Array.make cap' 1 in
    Array.blit uf.parent 0 parent 0 uf.n;
    Array.blit uf.size 0 size 0 uf.n;
    uf.parent <- parent;
    uf.size <- size
  end

let make_set uf =
  grow uf;
  let id = uf.n in
  uf.parent.(id) <- id;
  uf.size.(id) <- 1;
  uf.n <- uf.n + 1;
  uf.n_classes <- uf.n_classes + 1;
  id

let size uf = uf.n

let rec find uf i =
  let p = uf.parent.(i) in
  if p = i then i
  else begin
    let root = find uf p in
    uf.parent.(i) <- root;
    root
  end

let union uf a b =
  let ra = find uf a and rb = find uf b in
  if ra = rb then ra
  else begin
    let winner, loser = if uf.size.(ra) >= uf.size.(rb) then (ra, rb) else (rb, ra) in
    uf.parent.(loser) <- winner;
    uf.size.(winner) <- uf.size.(winner) + uf.size.(loser);
    uf.dirty <- loser :: uf.dirty;
    uf.n_classes <- uf.n_classes - 1;
    winner
  end

let equiv uf a b = find uf a = find uf b
let is_canonical uf i = uf.parent.(i) = i

(* Class size at a root, without path compression: safe to call from
   reader domains while the structure is frozen. Meaningful only when [i]
   is canonical (size slots of losers are stale by design). *)
let root_size uf i = uf.size.(i)
let dirty uf = uf.dirty
let has_dirty uf = uf.dirty <> []
let clear_dirty uf = uf.dirty <- []
let n_classes uf = uf.n_classes

let copy uf =
  {
    parent = Array.copy uf.parent;
    size = Array.copy uf.size;
    n = uf.n;
    dirty = uf.dirty;
    n_classes = uf.n_classes;
  }
