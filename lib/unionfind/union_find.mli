(** Union-find (disjoint sets) over dense integer ids, with path compression
    and union by size (§3.3; Tarjan 1975).

    Two egglog-specific extras beyond the textbook structure:
    - unions are recorded in a {e merge log} so the rebuilding procedure
      (§4.2) can find ids whose table occurrences may be stale;
    - [union] reports which id won, because egglog keeps databases
      canonical and callers must re-canonicalize the loser's occurrences. *)

type t

val create : unit -> t

val make_set : t -> int
(** Allocate a fresh id, its own canonical representative. *)

val size : t -> int
(** Number of ids ever allocated. *)

val find : t -> int -> int
(** Canonical representative (with path compression). *)

val union : t -> int -> int -> int
(** Merge the two classes; returns the surviving representative.
    No-op (returning the shared root) when already equal. *)

val equiv : t -> int -> int -> bool

val is_canonical : t -> int -> bool

val root_size : t -> int -> int
(** Class size at a canonical id, read without path compression (safe from
    reader domains while the structure is frozen). {!union} picks winners
    by exactly this size — callers modelling a union off-thread must use
    the same comparison ([size a >= size b] keeps [a]). Stale for
    non-canonical ids. *)

val dirty : t -> int list
(** Ids dethroned by unions since the last {!clear_dirty}: every id here was
    a canonical representative that lost a union. *)

val has_dirty : t -> bool
val clear_dirty : t -> unit

val n_classes : t -> int
(** Number of distinct equivalence classes among allocated ids. *)

val copy : t -> t
(** Snapshot for push/pop support. *)
