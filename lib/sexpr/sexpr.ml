type t =
  | Atom of string
  | String of string
  | Int of int
  | Rational of Rat.t
  | List of t list

exception Parse_error of { line : int; col : int; message : string }

type lexer = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let error lx message = raise (Parse_error { line = lx.line; col = lx.col; message })
let at_end lx = lx.pos >= String.length lx.src
let peek lx = if at_end lx then '\000' else lx.src.[lx.pos]

let advance lx =
  if not (at_end lx) then begin
    if lx.src.[lx.pos] = '\n' then begin
      lx.line <- lx.line + 1;
      lx.col <- 1
    end
    else lx.col <- lx.col + 1;
    lx.pos <- lx.pos + 1
  end

let rec skip_trivia lx =
  match peek lx with
  | ' ' | '\t' | '\n' | '\r' ->
    advance lx;
    skip_trivia lx
  | ';' ->
    while (not (at_end lx)) && peek lx <> '\n' do
      advance lx
    done;
    skip_trivia lx
  | _ -> ()

let is_delim c =
  match c with ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' | '\000' -> true | _ -> false

let read_string lx =
  advance lx;
  let buf = Buffer.create 16 in
  let rec go () =
    if at_end lx then error lx "unterminated string literal"
    else begin
      match peek lx with
      | '"' -> advance lx
      | '\\' ->
        advance lx;
        (* the full repertoire the printer ([%S]) can emit, so every printed
           string reads back: n t r b backslash double-quote, decimal ddd *)
        (match peek lx with
         | 'n' ->
           Buffer.add_char buf '\n';
           advance lx
         | 't' ->
           Buffer.add_char buf '\t';
           advance lx
         | 'r' ->
           Buffer.add_char buf '\r';
           advance lx
         | 'b' ->
           Buffer.add_char buf '\b';
           advance lx
         | '\\' ->
           Buffer.add_char buf '\\';
           advance lx
         | '"' ->
           Buffer.add_char buf '"';
           advance lx
         | '0' .. '9' ->
           let digit () =
             if at_end lx then error lx "unterminated \\ddd escape"
             else
               match peek lx with
               | '0' .. '9' as d ->
                 advance lx;
                 Char.code d - Char.code '0'
               | c -> error lx (Printf.sprintf "bad digit %c in \\ddd escape" c)
           in
           let d1 = digit () in
           let d2 = digit () in
           let d3 = digit () in
           let code = (100 * d1) + (10 * d2) + d3 in
           if code > 255 then error lx (Printf.sprintf "escape \\%03d out of range" code);
           Buffer.add_char buf (Char.chr code)
         | c -> error lx (Printf.sprintf "bad escape \\%c" c));
        go ()
      | c ->
        Buffer.add_char buf c;
        advance lx;
        go ()
    end
  in
  go ();
  Buffer.contents buf

let is_digit c = c >= '0' && c <= '9'

(* A token is numeric when it looks like -?digits(/digits | .digits)?
   and nothing else; otherwise it is a symbol (so "-", "+", "1+" stay
   symbols, matching egglog's lexing of operator names). A token that is
   lexically numeric but has no value — an integer literal outside the
   native int range, or a zero denominator — is a positioned parse error,
   never an uncaught [Failure]/[Division_by_zero]. *)
let classify_atom lx tok =
  let len = String.length tok in
  let start = if len > 0 && (tok.[0] = '-' || tok.[0] = '+') then 1 else 0 in
  if start >= len || not (is_digit tok.[start]) then Atom tok
  else begin
    let rec digits i = if i < len && is_digit tok.[i] then digits (i + 1) else i in
    let i = digits start in
    if i = len then begin
      match int_of_string_opt tok with
      | Some n -> Int n
      | None -> error lx (Printf.sprintf "integer literal out of range: %s" tok)
    end
    else if tok.[i] = '/' && i + 1 < len && digits (i + 1) = len then begin
      try Rational (Rat.of_string tok)
      with Division_by_zero -> error lx (Printf.sprintf "zero denominator in %s" tok)
    end
    else if tok.[i] = '.' && i + 1 < len && digits (i + 1) = len then Rational (Rat.of_string tok)
    else Atom tok
  end

let read_atom lx =
  let start = lx.pos in
  while not (is_delim (peek lx)) do
    advance lx
  done;
  classify_atom lx (String.sub lx.src start (lx.pos - start))

(* Deep enough for any reasonable program, shallow enough that adversarial
   input (the daemon's wire frames) cannot blow the OCaml stack: the parser
   recurses a handful of frames per level. *)
let max_depth = 2000

let rec read_expr ~depth lx =
  skip_trivia lx;
  if at_end lx then error lx "unexpected end of input";
  match peek lx with
  | '\000' -> error lx "NUL byte in input"
  | '(' ->
    if depth >= max_depth then
      error lx (Printf.sprintf "nesting deeper than %d" max_depth);
    advance lx;
    let items = ref [] in
    let rec go () =
      skip_trivia lx;
      if at_end lx then error lx "unclosed parenthesis";
      match peek lx with
      | ')' -> advance lx
      | '\000' -> error lx "NUL byte in input"
      | _ ->
        items := read_expr ~depth:(depth + 1) lx :: !items;
        go ()
    in
    go ();
    List (List.rev !items)
  | ')' -> error lx "unexpected ')'"
  | '"' -> String (read_string lx)
  | _ -> read_atom lx

let read_expr lx = read_expr ~depth:0 lx

let parse_string src =
  let lx = { src; pos = 0; line = 1; col = 1 } in
  let items = ref [] in
  let rec go () =
    skip_trivia lx;
    if not (at_end lx) then begin
      items := read_expr lx :: !items;
      go ()
    end
  in
  go ();
  List.rev !items

let parse_one src =
  match parse_string src with
  | [ e ] -> e
  | es ->
    raise
      (Parse_error
         { line = 1; col = 1; message = Printf.sprintf "expected 1 expression, found %d" (List.length es) })

let needs_quoting s = s = "" || String.exists is_delim s

let rec pp fmt e =
  match e with
  | Atom s -> Format.pp_print_string fmt s
  | String s -> Format.fprintf fmt "%S" s
  | Int i -> Format.pp_print_int fmt i
  | Rational r -> Rat.pp fmt r
  | List items ->
    Format.fprintf fmt "(@[<hov 1>%a@])"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
      items

let to_string e = Format.asprintf "%a" pp e

let rec equal a b =
  match (a, b) with
  | Atom x, Atom y -> String.equal x y
  | String x, String y -> String.equal x y
  | Int x, Int y -> x = y
  | Rational x, Rational y -> Rat.equal x y
  | List xs, List ys -> (try List.for_all2 equal xs ys with Invalid_argument _ -> false)
  | (Atom _ | String _ | Int _ | Rational _ | List _), _ -> false

let () = ignore needs_quoting
