(** The backing map of one egglog function (§5.1): canonical argument tuples
    to an output row. Rows carry the timestamp of their last insertion or
    modification, which drives semi-naïve evaluation (§4.3).

    A stamp-ordered append log makes "rows new since stamp s" iteration
    O(delta) instead of O(table) — the point of semi-naïve delta atoms.

    Tables are pure storage; merge-aware insertion and canonicalization live
    in {!Database}, which owns the union-find. *)

type row = { mutable value : Value.t; mutable stamp : int }

type t

val create : Schema.func -> t
val func : t -> Schema.func
val length : t -> int

val version : t -> int
(** Bumped on every mutation; lets query-side caches validate reuse. *)

val log_length : t -> int
(** Entries ever appended to the timestamp log (inserts + re-stamps). Its
    growth over an iteration is the frontier semi-naïve evaluation scans
    next round — the "delta size" reported by telemetry. *)

val get : t -> Value.t array -> row option
(** Keys must already be canonical. *)

val set_raw : t -> Value.t array -> Value.t -> stamp:int -> [ `Inserted | `Updated | `Unchanged ]
(** Insert or overwrite without consulting merge behaviour. Bumps the row
    stamp on insert and on value change (not when unchanged). *)

val remove : t -> Value.t array -> unit
val iter : (Value.t array -> row -> unit) -> t -> unit
val fold : (Value.t array -> row -> 'a -> 'a) -> t -> 'a -> 'a

val iter_range : t -> lo:int -> hi:int -> (Value.t array -> row -> unit) -> unit
(** Visit rows whose current stamp s satisfies [lo <= s < hi]. When [lo > 0]
    this walks only the stamp-ordered log tail (each surviving row exactly
    once); [lo = 0] falls back to a full scan filtered by [hi]. *)

val copy : t -> t
(** Deep copy (for push/pop). *)
