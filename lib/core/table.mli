(** The backing map of one egglog function (§5.1): canonical argument tuples
    to an output row. Rows carry the timestamp of their last insertion or
    modification, which drives semi-naïve evaluation (§4.3).

    A stamp-ordered append log makes "rows new since stamp s" iteration
    O(delta) instead of O(table) — the point of semi-naïve delta atoms.

    Tables are pure storage; merge-aware insertion and canonicalization live
    in {!Database}, which owns the union-find. *)

type row = {
  mutable value : Value.t;
  mutable stamp : int;
  mutable first_log : int;
      (** Log position of the first entry carrying the row's current stamp —
          the position where range walks report it. Maintained internally;
          [min_int] stamps mark tombstoned (removed) records. *)
}

type t

val create : Schema.func -> t
val func : t -> Schema.func
val length : t -> int

val version : t -> int
(** Bumped on every mutation; lets query-side caches validate reuse. *)

val uid : t -> int
(** Globally unique identity of this table incarnation. Fresh on [create]
    {e and} on [copy], so caches keyed by uid can never confuse two tables
    for the same function across push/pop or transaction rollback — version
    counters alone can coincide between incarnations. *)

val removals : t -> int
(** Rows ever removed from this incarnation. An unchanged count between two
    observations means no row disappeared in between, so an index built at
    the first observation can be patched forward instead of rebuilt. *)

val value_updates : t -> int
(** In-place output overwrites of existing rows. An unchanged count means
    every surviving row's output is what it was when an index was built. *)

val entries_since : t -> int -> int
(** [entries_since t lo] = number of log entries with stamp >= [lo]: an
    upper bound on the delta a semi-naïve variant will scan (re-stamped
    rows appear once per re-stamp). O(log n). *)

val log_length : t -> int
(** Entries ever appended to the timestamp log (inserts + re-stamps). Its
    growth over an iteration is the frontier semi-naïve evaluation scans
    next round — the "delta size" reported by telemetry. *)

val modeled_bytes : t -> int
(** Deterministic modeled footprint in bytes: per-row overhead plus
    {!Value.modeled_bytes} of every key element and output, plus a fixed
    cost per timestamp-log entry. Maintained incrementally (O(1) query),
    a pure function of the mutation history — never of the allocator —
    so memory budgets built on it trip reproducibly. *)

val get : t -> Value.t array -> row option
(** Keys must already be canonical. *)

val set_raw : t -> Value.t array -> Value.t -> stamp:int -> [ `Inserted | `Updated | `Unchanged ]
(** Insert or overwrite without consulting merge behaviour. Bumps the row
    stamp on insert and on value change (not when unchanged). *)

val remove : t -> Value.t array -> unit
val iter : (Value.t array -> row -> unit) -> t -> unit
val fold : (Value.t array -> row -> 'a -> 'a) -> t -> 'a -> 'a

val rows_array : t -> (Value.t array * Value.t) array
(** Current (key, output) pairs in exactly {!iter} order — the feed for the
    sharded rebuild scan, which partitions the index space across domains
    but must report stale rows in serial-iteration order. A point-in-time
    snapshot: do not mutate the table while worker domains read it. *)

val iter_range : t -> lo:int -> hi:int -> (Value.t array -> row -> unit) -> unit
(** Visit rows whose current stamp s satisfies [lo <= s < hi]. When [lo > 0]
    this walks only the stamp-ordered log tail (each surviving row exactly
    once); [lo = 0] falls back to a full scan filtered by [hi]. *)

val iter_delta : t -> lo:int -> hi:int -> (Value.t array -> row -> unit) -> unit
(** Exactly {!iter_range} — same rows, same values, same order — but the
    log walk checks entry currency through the logged row pointer (two
    loads and two compares per entry) instead of hashing every key into
    the data map plus a dedupe table. This is the scan the compiled join
    kernels use; {!iter_range} stays the hash-validated reference the
    interpreter runs, and the differential suite holds the two equal. *)

val iter_log_suffix : t -> from:int -> (Value.t array -> row -> unit) -> unit
(** Visit each surviving row that was logged at position >= [from], exactly
    once. This is the feed for incremental index maintenance: a structure
    built when the log had length [from] learns exactly these rows. *)

val column_distincts : t -> int array
(** Distinct-value count per column (argument columns, then the output), for
    cardinality estimation. Cached against [version]. *)

val copy : t -> t
(** Deep copy (for push/pop). *)

(** {2 Typed column readers}

    Construction-time-specialized accessors for the plan compiler
    ({!Plan_compile}): the key-position-vs-output branch and the column's
    representation are resolved once, when a compiled closure is built,
    instead of per row inside the join's innermost loop. *)

val column_ty : Schema.func -> int -> Ty.t
(** Type of column [i]: argument type when [i < arity], return type for the
    output column. *)

val reader : Schema.func -> int -> Value.t array -> row -> Value.t
(** [reader f i] reads column [i] of a row: a direct key load when
    [i < arity f], the output cell otherwise — no position test per row. *)

val int_reader : Schema.func -> int -> (Value.t array -> row -> int) option
(** Unboxed reader for columns whose every cell carries an integer payload
    ([i64] → [VInt], [bool] → [VBool], sorts → [VId]): within one such
    column, equality is integer equality on the payload. [None] for types
    that need structural comparison. *)
