(** Deterministic fault injection for the durability subsystem.

    The engine, journal and checkpoint writer call {!hit} at named injection
    points; a test harness arms a schedule deciding at which occurrence of
    which point the process "dies" ({!Crash} is raised, SIGKILL-style — the
    in-memory state is then discarded and recovery from disk is exercised).
    When nothing is armed a hit is a single mutable-flag check, so the
    instrumentation is free in production.

    Points currently wired in:
    - ["journal.append.before"] — record not yet written
    - ["journal.append.torn"] — half a record written, never synced
    - ["journal.append.synced"] — record durable, caller not yet notified
    - ["checkpoint.before"] — nothing written
    - ["checkpoint.unrenamed"] — temp file durable, final name absent
    - ["checkpoint.renamed"] — checkpoint durable, journal not yet reset
    - ["checkpoint.before-reset"] — alias window before the journal reset
    - ["engine.iteration"] — between rule-application iterations of a run
    - ["engine.apply.staged"] — mid-apply on the parallel staged path,
      with some rules' traces committed and the rest still pending (only
      fires at jobs > 1; staged buffers are plain data dropped on unwind,
      so transaction rollback must restore the pre-command state)
    - ["engine.top-action"] — before a top-level action executes

    Server-side points (the daemon, see [Egglog_server.Serve]):
    - ["server.request.executed"] — request committed, journal not yet
      appended (a crash here loses the request on recovery)
    - ["server.request.journaled"] — journal fsync'd, reply not yet sent
      (a crash here recovers the request; the client just never heard)
    - ["server.reply.drop"] — non-fatal via {!would_crash}: half a reply is
      written, then the connection drops; the daemon must survive
    - ["server.reply.slow"] — non-fatal via {!would_crash}: the reply
      dribbles out one byte per loop tick (a pathologically slow client) *)

exception Crash of string
(** Simulated process death at the named point. Must never be caught and
    "handled": tests catch it only to discard the engine and recover. *)

val arm : (string -> bool) -> unit
(** Install a schedule: called at every hit with the point name; returning
    [true] crashes there. Hit counting is active while armed. *)

val arm_nth : string -> int -> unit
(** Crash at the [n]-th occurrence (1-based) of the named point. *)

val arm_counting : unit -> unit
(** Record hit counts without ever crashing (to discover a run's points). *)

val disarm : unit -> unit
(** Disable injection and clear counters and the schedule. *)

val hit : string -> unit
(** Consult the schedule; raise {!Crash} if it fires. No-op when disarmed. *)

val would_crash : string -> bool
(** Like {!hit} but returns the verdict instead of raising, so the caller
    can first produce a deliberately partial side effect (e.g. a torn
    journal record) and then call {!crash}. Counts as a hit. *)

val crash : string -> 'a
(** Raise {!Crash} unconditionally. *)

val hit_counts : unit -> (string * int) list
(** Occurrences per point since last {!arm}/{!disarm}, sorted by name. *)
