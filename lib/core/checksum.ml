let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force table in
  let c = ref 0xffffffff in
  String.iter (fun ch -> c := t.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8)) s;
  !c lxor 0xffffffff

let to_hex c = Printf.sprintf "%08x" (c land 0xffffffff)

let of_hex s =
  match int_of_string_opt ("0x" ^ s) with
  | Some c when c >= 0 && c <= 0xffffffff -> Some c
  | Some _ | None -> None
