(** The durability controller: ties an {!Engine} to a write-ahead
    {!Journal} and periodic {!Serialize} checkpoints, and recovers the pair
    after a crash.

    {2 Protocol}

    Every journal-worthy command goes through {!run_command}: it executes
    (transactionally — see {!Engine.run_command}), and only once it has
    {e committed} is its concrete syntax appended to the journal and
    fsync'd. A command that fails is rolled back and never journaled; a
    crash between commit and append loses at most that one command (it was
    never acknowledged as durable). After [checkpoint_every] committed
    commands, a checkpoint lands atomically and the journal is reset to a
    new, empty generation.

    {2 Recovery guarantee}

    {!recover} on a fresh engine — newest valid checkpoint, then journal
    replay — reproduces a state whose {!Serialize.dump} is byte-identical
    to an uninterrupted run of the same committed command prefix. A torn
    trailing journal record (crash mid-append) is dropped with a warning,
    never an error. Caveats: [(include ...)] is journaled by name, so the
    file must still exist at recovery; runs under a wall-clock [:time-limit]
    or the Backoff scheduler stop at a time-dependent point, so their
    replayed prefix is only guaranteed equivalent when the run saturates or
    hits a deterministic limit. *)

type t

val attach : Engine.t -> journal_path:string -> checkpoint_every:int option -> t
(** Start journaling a (fresh or pre-loaded) engine to a {e new} journal.
    Refuses (with {!Journal.Journal_error}) to overwrite an existing journal
    file — recover it or remove it first. *)

type recovery_report = {
  rc_checkpoint : int option;  (** checkpoint generation restored, if any *)
  rc_replayed : int;  (** journal entries replayed on top of it *)
  rc_committed : int;  (** total committed commands after recovery *)
  rc_torn : bool;  (** a torn trailing record was dropped *)
  rc_warnings : string list;  (** human-readable recovery notes *)
}

val recover :
  Engine.t -> journal_path:string -> checkpoint_every:int option -> t * recovery_report
(** Rebuild state into a {e fresh} engine: load the journal's checkpoint
    generation (replaying its declaration program, then loading its data
    dump), replay the journal tail, and return a controller ready for more
    commands. Handles every crash window: a torn trailing record is
    truncated; a checkpoint that landed whose journal reset did not is
    detected by sequence number (the stale journal is discarded); a
    checkpoint temp file that never renamed is simply ignored.
    @raise Journal.Journal_error if the journal is unreadable or its
    checkpoint generation is missing/corrupt (the journal alone cannot
    reproduce state that was folded into a checkpoint). *)

val run_command : t -> Ast.command -> string list
(** Execute, then journal on commit (read-only print commands are executed
    but not journaled). May trigger a checkpoint; checkpointing is deferred
    while a [(push)] scope is open. *)

val run_program : t -> Ast.command list -> string list

val append_committed : t -> Ast.command -> unit
(** Journal a command the caller has {e already executed and committed} on
    [engine t] — the server's request path, where atomicity spans a whole
    request: every command of a request is journaled only once the request
    as a unit commits, so a rolled-back request leaves no journal trace.
    Read-only commands are skipped as in {!run_command}; may trigger a
    checkpoint. *)

val checkpoint : t -> unit
(** Force a checkpoint now. @raise Journal.Journal_error inside an open
    [(push)] scope. *)

val engine : t -> Engine.t
val committed : t -> int
(** Journal-worthy commands committed since the journal's genesis. *)

val close : t -> unit

val journal_worthy : Ast.command -> bool
