exception Crash of string

let enabled = ref false
let schedule : (string -> bool) ref = ref (fun _ -> false)
let counts : (string, int) Hashtbl.t = Hashtbl.create 16

let reset_state () =
  schedule := (fun _ -> false);
  Hashtbl.reset counts

let arm f =
  reset_state ();
  schedule := f;
  enabled := true

let arm_nth point n =
  let seen = ref 0 in
  arm (fun p ->
      if String.equal p point then begin
        incr seen;
        !seen = n
      end
      else false)

let arm_counting () = arm (fun _ -> false)

let disarm () =
  enabled := false;
  reset_state ()

let crash point = raise (Crash point)

let record point =
  Hashtbl.replace counts point (1 + Option.value (Hashtbl.find_opt counts point) ~default:0)

let would_crash point =
  if not !enabled then false
  else begin
    record point;
    !schedule point
  end

let hit point = if !enabled then if would_crash point then crash point

let hit_counts () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
