(** Runtime values. Ids are members of uninterpreted sorts (the paper's
    uninterpreted constants [n ∈ N]); everything else is an interpreted
    constant. Sets are kept sorted and deduplicated so structural equality
    is set equality. *)

type t =
  | VUnit
  | VBool of bool
  | VInt of int
  | VRat of Rat.t
  | VStr of Symbol.t
  | VId of int
  | VSet of t list  (** invariant: strictly sorted by {!compare} *)
  | VVec of t list  (** ordered container, duplicates allowed *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val mk_set : t list -> t
(** Sort and deduplicate. *)

val map_symbols : (Symbol.t -> Symbol.t) -> t -> t
(** Rewrite every {!VStr} through [f], re-canonicalizing any [VSet] whose
    elements changed (the mapping may reorder ids). Returns the argument
    physically unchanged when nothing maps. *)

val set_elements : t -> t list
(** @raise Invalid_argument when not a [VSet]. *)

val modeled_bytes : t -> int
(** Deterministic modeled size of the value in bytes. A pure function of the
    value's structure (never of allocator or GC state), so byte budgets built
    on it are reproducible run-to-run and across [--jobs] settings. *)

val type_of : sort_of_id:(int -> Ty.t) -> t -> Ty.t
(** Runtime type; id sorts are resolved through the database callback. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Hashtable over value-array keys (the backing maps of egglog functions). *)
module Key_tbl : Hashtbl.S with type key = t array
