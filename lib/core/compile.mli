(** Compilation of rules: flatten nested patterns into function atoms
    (§4.2's [flatten]), infer variable types, plan a generic-join variable
    order, and schedule primitive guards at the earliest point their inputs
    are bound (the relational e-matching of §5.1's query engine). *)

exception Error of string
(** Static error: unknown symbol, type mismatch, unbound variable, … *)

exception Unsat
(** The query can never match (e.g. two distinct literals equated); callers
    treat this as an empty match set rather than an error. *)

type arg = A_var of int | A_const of Value.t

type atom = {
  a_func : Schema.func;
  a_args : arg array;  (** length arity+1; the last entry is the output *)
}

type prim_app = {
  p_prim : Primitives.prim;
  p_args : arg array;
  p_out : arg;  (** variable to bind/check, or constant to check *)
}

type cquery = {
  n_vars : int;
  var_names : string array;  (** names for user variables, "$n" for internals *)
  var_tys : Ty.t array;
  atoms : atom array;
  order : int array;  (** join variable order (variables covered by atoms) *)
  var_depth : int array;  (** var -> 1+position in [order]; 0 when prim-computed *)
  schedule : prim_app list array;  (** length [Array.length order + 1] *)
  name_args : (string * arg) list;
      (** user variable name -> surviving variable or constant after
          resolving the query's equalities *)
}

type cexpr =
  | C_var of int
  | C_const of Value.t
  | C_func of Schema.func * cexpr array
  | C_prim of Primitives.prim * cexpr array

type caction =
  | C_set of Schema.func * cexpr array * cexpr
  | C_union of cexpr * cexpr
  | C_let of int * cexpr
  | C_do of cexpr
  | C_panic of string
  | C_delete of Schema.func * cexpr array

type crule = {
  cr_name : string;
  cr_query : cquery;
  cr_actions : caction array;
  cr_slots : int;  (** query vars + action lets *)
}

type env = { find_func : string -> Schema.func option }

val compile_query : env -> Ast.fact list -> cquery

type atom_card = {
  ac_rows : int;  (** current row count of the atom's table *)
  ac_distinct : int array;  (** distinct values per column (args, then output) *)
}
(** Per-atom cardinality statistics, supplied by the runtime (see
    {!Database.table_stats}). *)

val replan : cquery -> cards:atom_card array -> cquery
(** Recompute the join variable order with a greedy cost model: at each step
    bind the variable whose cheapest covering atom enumerates the fewest
    values (row count divided by the distinct counts of bound/constant
    columns, capped by the distinct count of the variable's own column).
    Ties break toward variables covered by more atoms, then toward the
    smaller variable index, so the result is deterministic. Atom and
    variable numbering are preserved — only [order], [var_depth] and
    [schedule] change — so compiled actions remain valid. *)

val reorder : cquery -> order:int array -> cquery
(** Rebuild the plan with an explicit variable order (must be a permutation
    of the query's join variables). Used by differential tests to check
    that every ordering produces the same matches. *)

val pp_plan : ?cards:atom_card array -> ?lowering:string -> Format.formatter -> cquery -> unit
(** Deterministic textual plan dump: atoms, variable order (with cost
    estimates when [cards] is given), the primitive schedule, and — when
    [lowering] is given — whether the plan compiled to closures or fell
    back to the interpreter (see {!Join.describe_lowering}). *)

val compile_rule : env -> name:string -> Ast.rule -> crule

val compile_top_actions : env -> Ast.action list -> caction array * int
(** Actions with no surrounding query (top-level commands). *)

val compile_closed_expr : env -> ?expected:Ty.t -> Ast.expr -> cexpr * Ty.t

val compile_merge_expr : env -> Schema.func -> Ast.expr -> cexpr
(** Compile a [:merge] body; slots 0 and 1 are [old] and [new]. *)
