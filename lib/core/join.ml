exception Internal_error of { in_func : Symbol.t option; detail : string }

let internal ?in_func fmt =
  Format.kasprintf (fun detail -> raise (Internal_error { in_func; detail })) fmt

let c_scanned = Telemetry.counter "join.tuples_scanned"
let c_trie_builds = Telemetry.counter "join.trie_builds"

(* Value-based histogram (depths, not durations): buckets are
   byte-identical at any --jobs count because the set of tries built is
   scheduling-independent. *)
let h_trie_depth = Telemetry.histogram "join.trie_depth"
let c_index_builds = Telemetry.counter "join.index_builds"
let c_cache_hits = Telemetry.counter "join.cache_hits"
let c_cache_misses = Telemetry.counter "join.cache_misses"
let c_cache_lookups = Telemetry.counter "join.cache_lookups"
let c_index_patched = Telemetry.counter "join.index_patched"
let c_yielded = Telemetry.counter "join.matches_yielded"

module VTbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type trie = Leaf | Node of trie VTbl.t

type stamp_range = { lo : int; hi : int }

let all_rows = { lo = 0; hi = max_int }

(* Per-position row checks derived from an atom's argument pattern. The
   analysis itself lives in {!Plan_compile.shape_atom}, shared with the
   plan compiler so the two evaluators (and the cache keys derived from
   checks + sources) can never disagree on an atom's read set. *)
type check = Plan_compile.check =
  | Check_const of int * Value.t  (* position must equal the literal *)
  | Check_same of int * int  (* position must equal an earlier position *)

type atom_plan = {
  ap_table : Table.t;
  ap_checks : check list;
  ap_sources : int array;  (* row positions feeding the trie path, in order *)
  ap_vars : int array;  (* the query var at each path level *)
}

let resolve_table db (f : Schema.func) : Table.t =
  match Database.find_func db f.Schema.name with
  | Some t -> t
  | None ->
    internal ~in_func:f.Schema.name "no table for function %s (popped scope?)"
      (Symbol.name f.Schema.name)

let plan_of_shape db (sh : Plan_compile.shape) : atom_plan =
  {
    ap_table = resolve_table db sh.Plan_compile.sh_func;
    ap_checks = sh.Plan_compile.sh_checks;
    ap_sources = sh.Plan_compile.sh_sources;
    ap_vars = sh.Plan_compile.sh_vars;
  }

let plan_atom db (q : Compile.cquery) (atom : Compile.atom) : atom_plan =
  plan_of_shape db (Plan_compile.shape_atom q atom)

let row_passes (plan : atom_plan) key (row : Table.row) =
  let cell i = if i < Array.length key then key.(i) else row.Table.value in
  List.for_all
    (function
      | Check_const (i, v) -> Value.equal (cell i) v
      | Check_same (i, j) -> Value.equal (cell i) (cell j))
    plan.ap_checks

(* Insert one passing row's path into a trie rooted at [root]. Idempotent:
   re-inserting a row walks the same path, so the patch path can feed rows
   it may have seen before. *)
let trie_add_row (plan : atom_plan) root ~depth key (row : Table.row) =
  let cell i = if i < Array.length key then key.(i) else row.Table.value in
  let node = ref root in
  for level = 0 to depth - 1 do
    let v = cell plan.ap_sources.(level) in
    if level = depth - 1 then VTbl.replace !node v Leaf
    else begin
      match VTbl.find_opt !node v with
      | Some (Node t) -> node := t
      | Some Leaf -> assert false
      | None ->
        let t = VTbl.create 8 in
        VTbl.replace !node v (Node t);
        node := t
    end
  done

let build_trie ?(scan = Table.iter_range) (plan : atom_plan) (range : stamp_range) : trie =
  let depth = Array.length plan.ap_sources in
  Telemetry.bump c_trie_builds 1;
  Telemetry.observe "join.trie_depth" (float_of_int depth);
  Telemetry.hist_record h_trie_depth (float_of_int depth);
  let scanned = ref 0 in
  let result =
  if depth = 0 then begin
    (* Fully ground atom: Leaf iff some row passes the checks. *)
    let found = ref false in
    (try
       scan plan.ap_table ~lo:range.lo ~hi:range.hi (fun key row ->
           incr scanned;
           if row_passes plan key row then begin
             found := true;
             raise Exit
           end)
     with Exit -> ());
    if !found then Leaf else Node (VTbl.create 0)
  end
  else begin
    let root = VTbl.create 64 in
    scan plan.ap_table ~lo:range.lo ~hi:range.hi (fun key row ->
        incr scanned;
        if row_passes plan key row then trie_add_row plan root ~depth key row);
    Node root
  end
  in
  Telemetry.bump c_scanned !scanned;
  result

exception Found

(* The memo holds both kinds of built structure. Full-table entries
   (lo = 0, hi = max_int) live in the persistent tier, validated against
   the table's version and patched forward when the table only grew.
   Delta and windowed entries go to the scratch tier, cleared each
   iteration. *)
type built = B_trie of trie | B_index of Value.t array list Value.Key_tbl.t

(* Structured cache key. The old scheme concatenated ints and printed
   values with ad-hoc delimiters into one string, which both allowed
   collisions (values may contain any delimiter) and could not tell two
   incarnations of a table apart (push/pop restores an older table whose
   version counter may coincide with the cached one). Comparing fields —
   with [Value.equal] for check constants and the table's globally unique
   [uid] for identity — removes both failure modes. *)
type cache_key = {
  k_kind : int;  (* 0 = trie, 1 = index *)
  k_table : int;  (* Table.uid of the incarnation the entry was built over *)
  k_sources : int array;
  k_checks : check list;
  k_lo : int;
  k_hi : int;
  k_proj : int array;  (* index keys only; [||] for tries *)
  k_rest : int array;
}

module KTbl = Hashtbl.Make (struct
  type t = cache_key

  let equal_check c1 c2 =
    match (c1, c2) with
    | Check_const (i, v), Check_const (j, w) -> i = j && Value.equal v w
    | Check_same (i, j), Check_same (i', j') -> i = i' && j = j'
    | Check_const _, Check_same _ | Check_same _, Check_const _ -> false

  let equal a b =
    a.k_kind = b.k_kind && a.k_table = b.k_table && a.k_lo = b.k_lo && a.k_hi = b.k_hi
    && a.k_sources = b.k_sources && a.k_proj = b.k_proj && a.k_rest = b.k_rest
    && List.compare_lengths a.k_checks b.k_checks = 0
    && List.for_all2 equal_check a.k_checks b.k_checks

  let hash k =
    let h = ref (((k.k_kind * 31) + k.k_table) * 31 + k.k_lo) in
    let mix x = h := ((!h * 31) + x) land max_int in
    mix (k.k_hi land 0xffff);
    Array.iter mix k.k_sources;
    Array.iter mix k.k_proj;
    Array.iter mix k.k_rest;
    List.iter
      (function
        | Check_const (i, v) -> mix ((i * 65599) + Value.hash v)
        | Check_same (i, j) -> mix ((i * 65599) + j + 1))
      k.k_checks;
    !h
end)

(* A persistent entry remembers the mutation counters at build time so a
   later lookup can tell "the table only grew" (patch the new rows in)
   apart from "rows were removed or rewritten" (rebuild). *)
type pentry = {
  mutable pe_built : built;
  mutable pe_version : int;
  mutable pe_log_len : int;
  mutable pe_removals : int;
  mutable pe_value_updates : int;
}

(* [frozen] puts the cache in read-only mode for the parallel search
   phase: lookups still serve valid hits (concurrent hashtable reads with
   no writer are safe), but misses and stale entries build privately and
   are NOT stored or patched — storing would race other domains, and
   [patch_trie]/[patch_index] mutate the shared structure in place. The
   engine pre-builds the full-range entries serially before fanning out,
   so frozen misses are normally just the small per-variant delta
   structures. *)
type cache = { persistent : pentry KTbl.t; scratch : built KTbl.t; mutable frozen : bool }

let new_cache () : cache =
  { persistent = KTbl.create 64; scratch = KTbl.create 64; frozen = false }

let set_frozen cache frozen = cache.frozen <- frozen
let clear_scratch cache = KTbl.reset cache.scratch

let clear_all cache =
  KTbl.reset cache.persistent;
  KTbl.reset cache.scratch

let mk_key kind (plan : atom_plan) (range : stamp_range) ~proj ~rest =
  {
    k_kind = kind;
    k_table = Table.uid plan.ap_table;
    (* an index is fully determined by proj + rest + checks + window; its
       source layout varies with the plan's variable order, so keying on it
       would needlessly duplicate identical indexes across replans *)
    k_sources = (if kind = 1 then [||] else plan.ap_sources);
    k_checks = plan.ap_checks;
    k_lo = range.lo;
    k_hi = range.hi;
    k_proj = proj;
    k_rest = rest;
  }

let is_full range = range.lo = 0 && range.hi = max_int

(* Does the structure depend on the output column? Sources cover every cell
   an index projects (proj/rest are drawn from them), so sources + checks
   are the complete read set. When the answer is no, in-place output
   overwrites cannot invalidate the structure. *)
let reads_value (plan : atom_plan) =
  let vpos = Schema.arity (Table.func plan.ap_table) in
  Array.exists (fun s -> s = vpos) plan.ap_sources
  || List.exists
       (function
         | Check_const (i, _) -> i = vpos
         | Check_same (i, j) -> i = vpos || j = vpos)
       plan.ap_checks

let patchable (pe : pentry) table ~plan =
  Table.removals table = pe.pe_removals
  && (Table.value_updates table = pe.pe_value_updates || not (reads_value plan))

let refresh (pe : pentry) table built =
  pe.pe_built <- built;
  pe.pe_version <- Table.version table;
  pe.pe_log_len <- Table.log_length table;
  pe.pe_removals <- Table.removals table;
  pe.pe_value_updates <- Table.value_updates table

let store_persistent c key table built =
  KTbl.replace c.persistent key
    {
      pe_built = built;
      pe_version = Table.version table;
      pe_log_len = Table.log_length table;
      pe_removals = Table.removals table;
      pe_value_updates = Table.value_updates table;
    }

(* Fold the rows logged since the cached build into an existing trie.
   Under the patchability conditions the suffix holds only fresh inserts
   (or re-stamps of rows whose read cells are unchanged), and trie
   insertion is idempotent, so the result equals a from-scratch build. *)
let patch_trie (plan : atom_plan) (trie : trie) ~from : trie =
  let depth = Array.length plan.ap_sources in
  let scanned = ref 0 in
  let result =
    if depth = 0 then begin
      match trie with
      | Leaf -> Leaf  (* already satisfied; growth cannot unsatisfy it *)
      | Node _ as empty ->
        let found = ref false in
        (try
           Table.iter_log_suffix plan.ap_table ~from (fun key row ->
               incr scanned;
               if row_passes plan key row then begin
                 found := true;
                 raise Exit
               end)
         with Exit -> ());
        if !found then Leaf else empty
    end
    else begin
      match trie with
      | Leaf -> assert false
      | Node root ->
        Table.iter_log_suffix plan.ap_table ~from (fun key row ->
            incr scanned;
            if row_passes plan key row then trie_add_row plan root ~depth key row);
        trie
    end
  in
  Telemetry.bump c_scanned !scanned;
  result

let cached_trie ?scan cache plan range =
  match cache with
  | None -> build_trie ?scan plan range
  | Some c when c.frozen ->
    Telemetry.bump c_cache_lookups 1;
    let key = mk_key 0 plan range ~proj:[||] ~rest:[||] in
    let hit =
      if is_full range then
        match KTbl.find_opt c.persistent key with
        | Some { pe_built = B_trie trie; pe_version; _ }
          when pe_version = Table.version plan.ap_table ->
          Some trie
        | _ -> None
      else
        match KTbl.find_opt c.scratch key with Some (B_trie trie) -> Some trie | _ -> None
    in
    (match hit with
    | Some trie ->
      Telemetry.bump c_cache_hits 1;
      trie
    | None ->
      Telemetry.bump c_cache_misses 1;
      build_trie ?scan plan range)
  | Some c ->
    Telemetry.bump c_cache_lookups 1;
    let table = plan.ap_table in
    let key = mk_key 0 plan range ~proj:[||] ~rest:[||] in
    if is_full range then begin
      let rebuild existing =
        Telemetry.bump c_cache_misses 1;
        let trie = build_trie ?scan plan range in
        (match existing with
         | Some pe -> refresh pe table (B_trie trie)
         | None -> store_persistent c key table (B_trie trie));
        trie
      in
      match KTbl.find_opt c.persistent key with
      | Some ({ pe_built = B_trie trie; _ } as pe) ->
        if pe.pe_version = Table.version table then begin
          Telemetry.bump c_cache_hits 1;
          trie
        end
        else if patchable pe table ~plan then begin
          let trie = patch_trie plan trie ~from:pe.pe_log_len in
          refresh pe table (B_trie trie);
          Telemetry.bump c_cache_hits 1;
          Telemetry.bump c_index_patched 1;
          trie
        end
        else rebuild (Some pe)
      | Some pe -> rebuild (Some pe)
      | None -> rebuild None
    end
    else begin
      match KTbl.find_opt c.scratch key with
      | Some (B_trie trie) ->
        Telemetry.bump c_cache_hits 1;
        trie
      | Some (B_index _) | None ->
        Telemetry.bump c_cache_misses 1;
        let trie = build_trie ?scan plan range in
        KTbl.replace c.scratch key (B_trie trie);
        trie
    end

(* Hash index over an atom: projected shared-variable values -> the values
   of the atom's remaining variables, one entry per passing row. *)
let build_index ?(scan = Table.iter_range) (plan : atom_plan) (range : stamp_range)
    ~(proj : int array) ~(rest : int array) =
  Telemetry.bump c_index_builds 1;
  let scanned = ref 0 in
  let index : Value.t array list Value.Key_tbl.t = Value.Key_tbl.create 64 in
  scan plan.ap_table ~lo:range.lo ~hi:range.hi (fun key row ->
      incr scanned;
      if row_passes plan key row then begin
        let cell i = if i < Array.length key then key.(i) else row.Table.value in
        let k = Array.map cell proj in
        let v = Array.map cell rest in
        let existing = try Value.Key_tbl.find index k with Not_found -> [] in
        Value.Key_tbl.replace index k (v :: existing)
      end);
  Telemetry.bump c_scanned !scanned;
  index

(* Fold logged-since rows into an existing hash index. Distinct passing
   rows always produce distinct (k, v) cell vectors (every key column is
   either a source cell or pinned by a check), so duplicates can only come
   from re-stamped rows — and those occur only when [dedupe] is set. *)
let patch_index (plan : atom_plan) index ~from ~(proj : int array) ~(rest : int array) ~dedupe =
  let scanned = ref 0 in
  Table.iter_log_suffix plan.ap_table ~from (fun key row ->
      incr scanned;
      if row_passes plan key row then begin
        let cell i = if i < Array.length key then key.(i) else row.Table.value in
        let k = Array.map cell proj in
        let v = Array.map cell rest in
        let existing = try Value.Key_tbl.find index k with Not_found -> [] in
        let duplicate =
          dedupe
          && List.exists
               (fun e -> Array.length e = Array.length v && Array.for_all2 Value.equal e v)
               existing
        in
        if not duplicate then Value.Key_tbl.replace index k (v :: existing)
      end);
  Telemetry.bump c_scanned !scanned

let cached_index ?scan cache plan range ~proj ~rest =
  match cache with
  | None -> build_index ?scan plan range ~proj ~rest
  | Some c when c.frozen ->
    Telemetry.bump c_cache_lookups 1;
    let key = mk_key 1 plan range ~proj ~rest in
    let hit =
      if is_full range then
        match KTbl.find_opt c.persistent key with
        | Some { pe_built = B_index idx; pe_version; _ }
          when pe_version = Table.version plan.ap_table ->
          Some idx
        | _ -> None
      else
        match KTbl.find_opt c.scratch key with Some (B_index idx) -> Some idx | _ -> None
    in
    (match hit with
    | Some idx ->
      Telemetry.bump c_cache_hits 1;
      idx
    | None ->
      Telemetry.bump c_cache_misses 1;
      build_index ?scan plan range ~proj ~rest)
  | Some c ->
    Telemetry.bump c_cache_lookups 1;
    let table = plan.ap_table in
    let key = mk_key 1 plan range ~proj ~rest in
    if is_full range then begin
      let rebuild existing =
        Telemetry.bump c_cache_misses 1;
        let idx = build_index ?scan plan range ~proj ~rest in
        (match existing with
         | Some pe -> refresh pe table (B_index idx)
         | None -> store_persistent c key table (B_index idx));
        idx
      in
      match KTbl.find_opt c.persistent key with
      | Some ({ pe_built = B_index idx; _ } as pe) ->
        if pe.pe_version = Table.version table then begin
          Telemetry.bump c_cache_hits 1;
          idx
        end
        else if patchable pe table ~plan then begin
          let dedupe = Table.value_updates table <> pe.pe_value_updates in
          patch_index plan idx ~from:pe.pe_log_len ~proj ~rest ~dedupe;
          refresh pe table (B_index idx);
          Telemetry.bump c_cache_hits 1;
          Telemetry.bump c_index_patched 1;
          idx
        end
        else rebuild (Some pe)
      | Some pe -> rebuild (Some pe)
      | None -> rebuild None
    end
    else begin
      match KTbl.find_opt c.scratch key with
      | Some (B_index idx) ->
        Telemetry.bump c_cache_hits 1;
        idx
      | Some (B_trie _) | None ->
        Telemetry.bump c_cache_misses 1;
        let idx = build_index plan range ~proj ~rest in
        KTbl.replace c.scratch key (B_index idx);
        idx
    end

(* Prims as a flat, statically classified checklist: every join variable is
   bound before they run, so outputs either bind (computed vars) or check.
   Shared with the plan compiler so both evaluators classify identically. *)
let static_prim_plan = Plan_compile.classify_prims

let run_static_prims (env : Value.t array) prim_plan =
  List.for_all
    (fun ((p : Compile.prim_app), binds) ->
      let args =
        Array.map (function Compile.A_const v -> v | Compile.A_var v -> env.(v)) p.p_args
      in
      match p.p_prim.Primitives.impl args with
      | None -> false
      | Some result ->
        if binds then begin
          (match p.p_out with
           | Compile.A_var v -> env.(v) <- result
           | Compile.A_const _ -> assert false);
          true
        end
        else begin
          match p.p_out with
          | Compile.A_const c -> Value.equal c result
          | Compile.A_var v -> Value.equal env.(v) result
        end)
    prim_plan

(* Fast path: a single-atom query needs no trie at all — scan the table
   (or just the log tail for delta ranges), filter, bind, run the primitive
   schedule. This covers the bulk of rewrite rules (single-pattern
   left-hand sides). *)
let search_single_atom (q : Compile.cquery) (plan : atom_plan) (range : stamp_range) callback =
  let env : Value.t array = Array.make q.Compile.n_vars Value.VUnit in
  (* Every join variable is bound from the row before the primitives run,
     so whether a primitive output checks or binds is static. *)
  let prim_plan = static_prim_plan q [ plan.ap_vars ] in
  let scanned = ref 0 in
  Table.iter_range plan.ap_table ~lo:range.lo ~hi:range.hi (fun key row ->
      incr scanned;
      if row_passes plan key row then begin
        let cell i = if i < Array.length key then key.(i) else row.Table.value in
        Array.iteri (fun level src -> env.(plan.ap_vars.(level)) <- cell src) plan.ap_sources;
        if run_static_prims env prim_plan then callback env
      end);
  Telemetry.bump c_scanned !scanned

(* Driver choice and index layout for the two-atom fast path, factored
   out so [prebuild] computes exactly the layout [search_two_atoms] will
   ask for. Depends only on the plans, ranges and table lengths — all
   stable while the database is frozen. *)
let two_atom_layout (q : Compile.cquery) (plans : atom_plan array) (ranges : stamp_range array) =
  let driver =
    if ranges.(0).lo > ranges.(1).lo then 0
    else if ranges.(1).lo > ranges.(0).lo then 1
    else if Table.length plans.(0).ap_table <= Table.length plans.(1).ap_table then 0
    else 1
  in
  let other = 1 - driver in
  let dplan = plans.(driver) and oplan = plans.(other) in
  let in_driver = Array.make q.Compile.n_vars false in
  Array.iter (fun v -> in_driver.(v) <- true) dplan.ap_vars;
  (* positions in the *other* atom's row for shared and private vars *)
  let shared = ref [] and rest = ref [] in
  Array.iteri
    (fun level v ->
      let src = oplan.ap_sources.(level) in
      if in_driver.(v) then shared := (v, src) :: !shared else rest := (v, src) :: !rest)
    oplan.ap_vars;
  (* canonicalize by column position: the index layout then depends only on
     which variables are shared, not on the current plan's variable order,
     so one cached index survives replans and serves every ordering *)
  let by_src (_, s1) (_, s2) = Int.compare s1 s2 in
  let shared = Array.of_list (List.sort by_src !shared)
  and rest = Array.of_list (List.sort by_src !rest) in
  (driver, other, shared, rest)

(* Fast path for two-atom queries: scan a driver atom (prefer the delta
   side), probe a hash index on the other atom keyed by the shared
   variables. Cheaper constants than the generic trie join, and the index
   is shared across rules/variants via the cache. *)
let search_two_atoms ?cache (q : Compile.cquery) (plans : atom_plan array)
    (ranges : stamp_range array) callback =
  let driver, other, shared, rest = two_atom_layout q plans ranges in
  let dplan = plans.(driver) and oplan = plans.(other) in
  let proj = Array.map snd shared and rest_pos = Array.map snd rest in
  let index = cached_index cache oplan ranges.(other) ~proj ~rest:rest_pos in
  let prim_plan = static_prim_plan q [ dplan.ap_vars; oplan.ap_vars ] in
  let env = Array.make q.Compile.n_vars Value.VUnit in
  let probe_key = Array.make (Array.length shared) Value.VUnit in
  let scanned = ref 0 in
  Table.iter_range dplan.ap_table ~lo:ranges.(driver).lo ~hi:ranges.(driver).hi
    (fun key row ->
      incr scanned;
      if row_passes dplan key row then begin
        let cell i = if i < Array.length key then key.(i) else row.Table.value in
        Array.iteri (fun level src -> env.(dplan.ap_vars.(level)) <- cell src) dplan.ap_sources;
        Array.iteri (fun i (v, _) -> probe_key.(i) <- env.(v)) shared;
        match Value.Key_tbl.find_opt index probe_key with
        | None -> ()
        | Some entries ->
          List.iter
            (fun (rest_vals : Value.t array) ->
              Array.iteri (fun i (v, _) -> env.(v) <- rest_vals.(i)) rest;
              if run_static_prims env prim_plan then callback env)
            entries
      end);
  Telemetry.bump c_scanned !scanned

(* Count yields only when telemetry is on: the wrapper closure would
   otherwise cost an allocation per search even with everything off. *)
let count_yields callback =
  if Telemetry.is_enabled () then (fun env ->
    Telemetry.bump c_yielded 1;
    callback env)
  else callback

(* Dispatch with the yield counter already applied: shared between the
   interpreter entry point [search] and the compiled-plan interpreter
   fallback (which must not re-wrap the callback). *)
let search_dispatch db ?cache ~fast_paths (q : Compile.cquery) ~(ranges : stamp_range array)
    callback =
  let n_atoms = Array.length q.atoms in
  let plans = Array.map (plan_atom db q) q.atoms in
  if fast_paths && n_atoms = 1 && Array.length plans.(0).ap_sources > 0 then
    search_single_atom q plans.(0) ranges.(0) callback
  else if
    fast_paths
    && n_atoms = 2
    && Array.length plans.(0).ap_sources > 0
    && Array.length plans.(1).ap_sources > 0
  then search_two_atoms ?cache q plans ranges callback
  else begin
  let tries = Array.init n_atoms (fun i -> cached_trie cache plans.(i) ranges.(i)) in
  let unsat =
    Array.exists (function Node t -> VTbl.length t = 0 | Leaf -> false) tries
  in
  if not unsat then begin
    let n_steps = Array.length q.order in
    (* Atoms participating at each depth (their cursor is intersected). *)
    let parts_for_depth =
      Array.init n_steps (fun d ->
          let v = q.order.(d) in
          let acc = ref [] in
          for ai = n_atoms - 1 downto 0 do
            if Array.exists (Int.equal v) plans.(ai).ap_vars then acc := ai :: !acc
          done;
          !acc)
    in
    let cursors = Array.copy tries in
    let env : Value.t option array = Array.make q.n_vars None in
    let eval_arg = function
      | Compile.A_const v -> v
      | Compile.A_var v -> (
        match env.(v) with
        | Some x -> x
        | None -> internal "unbound variable in primitive argument")
    in
    (* Run the primitives scheduled at a depth. Returns the computed vars to
       undo, or None on guard failure (partial bindings already undone). *)
    let run_prims prims =
      let rec go acc = function
        | [] -> Some acc
        | (p : Compile.prim_app) :: rest -> (
          let args = Array.map eval_arg p.p_args in
          match p.p_prim.Primitives.impl args with
          | None ->
            List.iter (fun v -> env.(v) <- None) acc;
            None
          | Some result -> (
            match p.p_out with
            | Compile.A_const c ->
              if Value.equal c result then go acc rest
              else begin
                List.iter (fun v -> env.(v) <- None) acc;
                None
              end
            | Compile.A_var v -> (
              match env.(v) with
              | Some existing ->
                if Value.equal existing result then go acc rest
                else begin
                  List.iter (fun u -> env.(u) <- None) acc;
                  None
                end
              | None ->
                env.(v) <- Some result;
                go (v :: acc) rest)))
      in
      go [] prims
    in
    let emit () =
      let binding =
        Array.mapi
          (fun i o ->
            match o with
            | Some v -> v
            | None -> internal "unbound variable %s at emit" q.var_names.(i))
          env
      in
      callback binding
    in
    let rec solve d =
      match run_prims q.schedule.(d) with
      | None -> ()
      | Some undo ->
        (if d = n_steps then emit ()
         else begin
           let v = q.order.(d) in
           let parts = parts_for_depth.(d) in
           match parts with
           | [] -> internal "join variable %s covered by no atom" q.var_names.(v)
           | _ ->
             (* Iterate the smallest candidate set, probe the others. *)
             let node_table ai =
               match cursors.(ai) with
               | Node t -> t
               | Leaf ->
                 internal ~in_func:q.atoms.(ai).a_func.Schema.name "trie cursor exhausted"
             in
             let smallest =
               List.fold_left
                 (fun best ai ->
                   match best with
                   | None -> Some ai
                   | Some b ->
                     if VTbl.length (node_table ai) < VTbl.length (node_table b) then Some ai
                     else best)
                 None parts
             in
             let smallest = Option.get smallest in
             let saved = List.map (fun ai -> (ai, cursors.(ai))) parts in
             VTbl.iter
               (fun value _child ->
                 let ok =
                   List.for_all
                     (fun ai ->
                       ai = smallest
                       ||
                       match VTbl.find_opt (node_table ai) value with
                       | Some _ -> true
                       | None -> false)
                     parts
                 in
                 if ok then begin
                   List.iter
                     (fun ai ->
                       match VTbl.find_opt (node_table ai) value with
                       | Some child -> cursors.(ai) <- child
                       | None -> assert false)
                     parts;
                   (* restore cursors before the next candidate *)
                   env.(v) <- Some value;
                   solve (d + 1);
                   env.(v) <- None;
                   List.iter (fun (ai, c) -> cursors.(ai) <- c) saved
                 end)
               (node_table smallest)
         end);
        List.iter (fun u -> env.(u) <- None) undo
    in
    solve 0
  end
  end

let search db ?cache ?(fast_paths = true) (q : Compile.cquery) ~(ranges : stamp_range array)
    callback =
  if Array.length ranges <> Array.length q.atoms then
    invalid_arg "Join.search: ranges arity mismatch";
  search_dispatch db ?cache ~fast_paths q ~ranges (count_yields callback)

(* Serially warm the cache entries a subsequent [search] with the same
   query/ranges would want, so that a frozen (parallel) search finds them
   as read-only hits. Only full-range entries are warmed: they go to the
   persistent tier and are the expensive ones; windowed/delta structures
   are cheap and built privately by each task. Mirrors the dispatch in
   [search] exactly. *)
let prebuild db ?cache ?(fast_paths = true) (q : Compile.cquery) ~(ranges : stamp_range array) =
  match cache with
  | None -> ()
  | Some c when c.frozen -> ()
  | Some _ ->
    let n_atoms = Array.length q.atoms in
    if Array.length ranges <> n_atoms then invalid_arg "Join.prebuild: ranges arity mismatch";
    let plans = Array.map (plan_atom db q) q.atoms in
    if fast_paths && n_atoms = 1 && Array.length plans.(0).ap_sources > 0 then ()
    else if
      fast_paths
      && n_atoms = 2
      && Array.length plans.(0).ap_sources > 0
      && Array.length plans.(1).ap_sources > 0
    then begin
      let _driver, other, shared, rest = two_atom_layout q plans ranges in
      if is_full ranges.(other) then
        ignore
          (cached_index cache plans.(other) ranges.(other) ~proj:(Array.map snd shared)
             ~rest:(Array.map snd rest))
    end
    else
      Array.iteri
        (fun i plan -> if is_full ranges.(i) then ignore (cached_trie cache plan ranges.(i)))
        plans

let exists db (q : Compile.cquery) =
  let ranges = Array.make (Array.length q.atoms) all_rows in
  try
    search db q ~ranges (fun _ -> raise Found);
    false
  with Found -> true

(* ------------------------------------------------------------------ *)
(* Compiled plans                                                      *)
(* ------------------------------------------------------------------ *)

(* A plan lowered to a tree of specialized closures (see {!Plan_compile}).
   Compilation resolves everything that depends only on the plan — column
   readers, hoisted checks, binding loops, primitive impl pointers, the
   per-depth atom participation of the generic join — and leaves only
   table resolution, cache probes and per-search state to run time. The
   lowering mirrors [search_dispatch]'s fast-path conditions exactly, and
   every compiled evaluator requests the same cache entries, bumps the
   same counters and emits matches in the same order as the interpreter,
   so output stays byte-identical between the two modes (and at any
   --jobs count: compilation happens in the engine's serial pre-phase). *)

let c_compiled_plans = Telemetry.counter "join.compiled_plans"
let c_interp_fallbacks = Telemetry.counter "join.interp_fallbacks"

type compiled_run =
  Database.t -> cache option -> stamp_range array -> (Value.t array -> unit) -> unit

type compiled = {
  cp_n_atoms : int;
  cp_descr : string;
  cp_compiled : bool;  (* false: interpreter fallback *)
  cp_run : compiled_run;
}

(* Single-atom scan: filter, binder and primitive checklist all compiled;
   per-search state is just the environment and the prim runner's private
   argument buffers. *)
let compile_single (q : Compile.cquery) (sh : Plan_compile.shape) : compiled_run =
  let f = sh.Plan_compile.sh_func in
  let filter = Plan_compile.compile_filter f sh.Plan_compile.sh_checks in
  let binder =
    Plan_compile.compile_binder f ~vars:sh.Plan_compile.sh_vars
      ~sources:sh.Plan_compile.sh_sources
  in
  let bind = binder.Plan_compile.bind in
  let prims =
    Plan_compile.compile_prims (Plan_compile.classify_prims q [ sh.Plan_compile.sh_vars ])
  in
  let n_vars = q.Compile.n_vars in
  fun db _cache ranges callback ->
    let table = resolve_table db f in
    let env = Array.make n_vars Value.VUnit in
    let run_prims = prims () in
    let scanned = ref 0 in
    Table.iter_delta table ~lo:ranges.(0).lo ~hi:ranges.(0).hi (fun key row ->
        incr scanned;
        if filter key row then begin
          bind env key row;
          if run_prims env then callback env
        end);
    Telemetry.bump c_scanned !scanned

(* One orientation (driver choice) of the two-atom fast path, fully
   compiled. The driver itself is picked per search — it depends on the
   delta windows and current table lengths — by the exact rule of
   [two_atom_layout], so both orientations are compiled up front. *)
type two_orient = {
  to_dfunc : Schema.func;
  to_ofunc : Schema.func;
  to_oshape : Plan_compile.shape;  (* rebuilt into an atom_plan for the cache *)
  to_filter_d : Plan_compile.filter;
  to_bind_d : Value.t array -> Value.t array -> Table.row -> unit;
  to_proj : int array;  (* other-row positions of shared vars, sorted *)
  to_rest_pos : int array;
  to_shared_vars : int array;  (* env slot feeding each probe-key cell *)
  to_rest_vars : int array;  (* env slot written from each index entry cell *)
  to_prims : unit -> Value.t array -> bool;
}

let compile_two_orient (q : Compile.cquery) (shapes : Plan_compile.shape array) ~driver :
    two_orient =
  let other = 1 - driver in
  let dsh = shapes.(driver) and osh = shapes.(other) in
  let in_driver = Array.make q.Compile.n_vars false in
  Array.iter (fun v -> in_driver.(v) <- true) dsh.Plan_compile.sh_vars;
  let shared = ref [] and rest = ref [] in
  Array.iteri
    (fun level v ->
      let src = osh.Plan_compile.sh_sources.(level) in
      if in_driver.(v) then shared := (v, src) :: !shared else rest := (v, src) :: !rest)
    osh.Plan_compile.sh_vars;
  let by_src (_, s1) (_, s2) = Int.compare s1 s2 in
  let shared = Array.of_list (List.sort by_src !shared)
  and rest = Array.of_list (List.sort by_src !rest) in
  let binder =
    Plan_compile.compile_binder dsh.Plan_compile.sh_func ~vars:dsh.Plan_compile.sh_vars
      ~sources:dsh.Plan_compile.sh_sources
  in
  {
    to_dfunc = dsh.Plan_compile.sh_func;
    to_ofunc = osh.Plan_compile.sh_func;
    to_oshape = osh;
    to_filter_d = Plan_compile.compile_filter dsh.Plan_compile.sh_func dsh.Plan_compile.sh_checks;
    to_bind_d = binder.Plan_compile.bind;
    to_proj = Array.map snd shared;
    to_rest_pos = Array.map snd rest;
    to_shared_vars = Array.map fst shared;
    to_rest_vars = Array.map fst rest;
    to_prims =
      Plan_compile.compile_prims
        (Plan_compile.classify_prims q
           [ dsh.Plan_compile.sh_vars; osh.Plan_compile.sh_vars ]);
  }

let compile_two (q : Compile.cquery) (shapes : Plan_compile.shape array) : compiled_run =
  let orients = [| compile_two_orient q shapes ~driver:0; compile_two_orient q shapes ~driver:1 |] in
  let n_vars = q.Compile.n_vars in
  fun db cache ranges callback ->
    let t0 = resolve_table db shapes.(0).Plan_compile.sh_func
    and t1 = resolve_table db shapes.(1).Plan_compile.sh_func in
    (* the driver rule of [two_atom_layout], verbatim *)
    let driver =
      if ranges.(0).lo > ranges.(1).lo then 0
      else if ranges.(1).lo > ranges.(0).lo then 1
      else if Table.length t0 <= Table.length t1 then 0
      else 1
    in
    let o = orients.(driver) in
    let dtable = if driver = 0 then t0 else t1 and otable = if driver = 0 then t1 else t0 in
    let oplan =
      {
        ap_table = otable;
        ap_checks = o.to_oshape.Plan_compile.sh_checks;
        ap_sources = o.to_oshape.Plan_compile.sh_sources;
        ap_vars = o.to_oshape.Plan_compile.sh_vars;
      }
    in
    let index =
      cached_index ~scan:Table.iter_delta cache oplan ranges.(1 - driver) ~proj:o.to_proj
        ~rest:o.to_rest_pos
    in
    let env = Array.make n_vars Value.VUnit in
    let probe_key = Array.make (Array.length o.to_proj) Value.VUnit in
    let run_prims = o.to_prims () in
    let nshared = Array.length o.to_shared_vars and nrest = Array.length o.to_rest_vars in
    let scanned = ref 0 in
    Table.iter_delta dtable ~lo:ranges.(driver).lo ~hi:ranges.(driver).hi (fun key row ->
        incr scanned;
        if o.to_filter_d key row then begin
          o.to_bind_d env key row;
          for i = 0 to nshared - 1 do
            probe_key.(i) <- env.(o.to_shared_vars.(i))
          done;
          match Value.Key_tbl.find_opt index probe_key with
          | None -> ()
          | Some entries ->
            List.iter
              (fun (rest_vals : Value.t array) ->
                for i = 0 to nrest - 1 do
                  env.(o.to_rest_vars.(i)) <- rest_vals.(i)
                done;
                if run_prims env then callback env)
              entries
        end);
    Telemetry.bump c_scanned !scanned

(* Generic trie join as a chain of per-depth closures built once: depth d's
   step captures its variable, participating-atom array, compiled primitive
   runner and the next step. Per-search state (cursors, environment, the
   emit target) travels in a state record, so one compiled plan is safe to
   search concurrently. Candidate iteration, smallest-cursor choice and
   cursor save/restore replicate the interpreter exactly — including
   hashtable iteration order, since both modes draw tries from the same
   cache (or build them by the same insertion sequence). *)
type gstate = {
  gs_cursors : trie array;
  gs_env : Value.t option array;
  gs_emit : Value.t array -> unit;
}

let compile_generic (q : Compile.cquery) (shapes : Plan_compile.shape array) : compiled_run =
  let n_atoms = Array.length q.Compile.atoms in
  let n_steps = Array.length q.Compile.order in
  let parts_for_depth =
    Array.init n_steps (fun d ->
        let v = q.Compile.order.(d) in
        let acc = ref [] in
        for ai = n_atoms - 1 downto 0 do
          if Array.exists (Int.equal v) shapes.(ai).Plan_compile.sh_vars then acc := ai :: !acc
        done;
        Array.of_list !acc)
  in
  let depth_prims = Array.map Plan_compile.compile_depth_prims q.Compile.schedule in
  let emit st =
    let binding =
      Array.mapi
        (fun i o ->
          match o with
          | Some v -> v
          | None -> internal "unbound variable %s at emit" q.Compile.var_names.(i))
        st.gs_env
    in
    st.gs_emit binding
  in
  (* Build the step chain bottom-up so step d can capture step (d+1). *)
  let steps = Array.make (n_steps + 1) (fun (_ : gstate) -> ()) in
  for d = n_steps downto 0 do
    let prims = depth_prims.(d) in
    let body =
      if d = n_steps then emit
      else begin
        let v = q.Compile.order.(d) in
        let parts = parts_for_depth.(d) in
        let np = Array.length parts in
        if np = 0 then
          internal "join variable %s covered by no atom" q.Compile.var_names.(v);
        let in_func = q.Compile.atoms.(parts.(0)).Compile.a_func.Schema.name in
        let next = steps.(d + 1) in
        fun st ->
          let cursors = st.gs_cursors in
          let node_table ai =
            match cursors.(ai) with
            | Node t -> t
            | Leaf -> internal ~in_func "trie cursor exhausted"
          in
          (* first strictly-smallest candidate set, as the interpreter *)
          let smallest = ref parts.(0) in
          for k = 1 to np - 1 do
            if VTbl.length (node_table parts.(k)) < VTbl.length (node_table !smallest) then
              smallest := parts.(k)
          done;
          let sm = !smallest in
          let saved = Array.map (fun ai -> cursors.(ai)) parts in
          VTbl.iter
            (fun value _child ->
              let ok = ref true and k = ref 0 in
              while !ok && !k < np do
                let ai = parts.(!k) in
                if ai <> sm && not (VTbl.mem (node_table ai) value) then ok := false;
                incr k
              done;
              if !ok then begin
                for k = 0 to np - 1 do
                  let ai = parts.(k) in
                  match VTbl.find_opt (node_table ai) value with
                  | Some child -> cursors.(ai) <- child
                  | None -> assert false
                done;
                st.gs_env.(v) <- Some value;
                next st;
                st.gs_env.(v) <- None;
                for k = 0 to np - 1 do
                  cursors.(parts.(k)) <- saved.(k)
                done
              end)
            (node_table sm)
      end
    in
    steps.(d) <-
      (fun st ->
        match prims st.gs_env with
        | None -> ()
        | Some undo ->
          body st;
          List.iter (fun u -> st.gs_env.(u) <- None) undo)
  done;
  let step0 = steps.(0) in
  fun db cache ranges callback ->
    let plans = Array.map (plan_of_shape db) shapes in
    let tries =
      Array.init n_atoms (fun i -> cached_trie ~scan:Table.iter_delta cache plans.(i) ranges.(i))
    in
    let unsat = Array.exists (function Node t -> VTbl.length t = 0 | Leaf -> false) tries in
    if not unsat then
      step0
        {
          gs_cursors = Array.copy tries;
          gs_env = Array.make q.Compile.n_vars None;
          gs_emit = callback;
        }

let compile_plan ?(fast_paths = true) (q : Compile.cquery) : compiled =
  let n_atoms = Array.length q.Compile.atoms in
  let shapes = Array.map (Plan_compile.shape_atom q) q.Compile.atoms in
  let arity i = Array.length shapes.(i).Plan_compile.sh_sources in
  let binder_descr i = if arity i <= 4 then "specialized" else "generic binder" in
  let mk descr run =
    Telemetry.bump c_compiled_plans 1;
    { cp_n_atoms = n_atoms; cp_descr = descr; cp_compiled = true; cp_run = run }
  in
  if n_atoms = 0 then begin
    (* Atomless (pure primitive) queries stay on the interpreter: there is
       no per-tuple loop to specialize. *)
    Telemetry.bump c_interp_fallbacks 1;
    {
      cp_n_atoms = 0;
      cp_descr = "interpreter (no atoms)";
      cp_compiled = false;
      cp_run =
        (fun db cache ranges callback ->
          search_dispatch db ?cache ~fast_paths q ~ranges callback);
    }
  end
  else if fast_paths && n_atoms = 1 && arity 0 > 0 then
    mk
      (Printf.sprintf "compiled single-atom (arity %d, %s)" (arity 0) (binder_descr 0))
      (compile_single q shapes.(0))
  else if fast_paths && n_atoms = 2 && arity 0 > 0 && arity 1 > 0 then
    mk
      (Printf.sprintf "compiled two-atom (arities %d+%d, %s/%s)" (arity 0) (arity 1)
         (binder_descr 0) (binder_descr 1))
      (compile_two q shapes)
  else mk (Printf.sprintf "compiled generic (%d atoms)" n_atoms) (compile_generic q shapes)

let compiled_descr cp = cp.cp_descr
let is_compiled cp = cp.cp_compiled

(* Lowering class without building closures (and without touching the
   compiled-plans counters): what [--explain-plans] prints. *)
let describe_lowering ?(fast_paths = true) (q : Compile.cquery) : string =
  let n_atoms = Array.length q.Compile.atoms in
  let arity i = Array.length (Plan_compile.shape_atom q q.Compile.atoms.(i)).Plan_compile.sh_sources in
  let binder_descr i = if arity i <= 4 then "specialized" else "generic binder" in
  if n_atoms = 0 then "interpreter (no atoms)"
  else if fast_paths && n_atoms = 1 && arity 0 > 0 then
    Printf.sprintf "compiled single-atom (arity %d, %s)" (arity 0) (binder_descr 0)
  else if fast_paths && n_atoms = 2 && arity 0 > 0 && arity 1 > 0 then
    Printf.sprintf "compiled two-atom (arities %d+%d, %s/%s)" (arity 0) (arity 1)
      (binder_descr 0) (binder_descr 1)
  else Printf.sprintf "compiled generic (%d atoms)" n_atoms

let search_compiled db ?cache (cp : compiled) ~(ranges : stamp_range array) callback =
  if Array.length ranges <> cp.cp_n_atoms then
    invalid_arg "Join.search_compiled: ranges arity mismatch";
  cp.cp_run db cache ranges (count_yields callback)
