exception Internal_error of { in_func : Symbol.t option; detail : string }

let internal ?in_func fmt =
  Format.kasprintf (fun detail -> raise (Internal_error { in_func; detail })) fmt

let c_scanned = Telemetry.counter "join.tuples_scanned"
let c_trie_builds = Telemetry.counter "join.trie_builds"
let c_index_builds = Telemetry.counter "join.index_builds"
let c_cache_hits = Telemetry.counter "join.cache_hits"
let c_cache_misses = Telemetry.counter "join.cache_misses"
let c_yielded = Telemetry.counter "join.matches_yielded"

module VTbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type trie = Leaf | Node of trie VTbl.t

type stamp_range = { lo : int; hi : int }

let all_rows = { lo = 0; hi = max_int }

(* Per-position row checks derived from an atom's argument pattern. *)
type check =
  | Check_const of int * Value.t  (* position must equal the literal *)
  | Check_same of int * int  (* position must equal an earlier position *)

type atom_plan = {
  ap_table : Table.t;
  ap_checks : check list;
  ap_sources : int array;  (* row positions feeding the trie path, in order *)
  ap_vars : int array;  (* the query var at each path level *)
}

let plan_atom db (q : Compile.cquery) (atom : Compile.atom) : atom_plan =
  let table =
    match Database.find_func db atom.a_func.Schema.name with
    | Some t -> t
    | None ->
      internal ~in_func:atom.a_func.Schema.name "no table for function %s (popped scope?)"
        (Symbol.name atom.a_func.Schema.name)
  in
  let n = Array.length atom.a_args in
  let first_pos : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let checks = ref [] in
  for i = 0 to n - 1 do
    match atom.a_args.(i) with
    | Compile.A_const v -> checks := Check_const (i, v) :: !checks
    | Compile.A_var var -> (
      match Hashtbl.find_opt first_pos var with
      | None -> Hashtbl.add first_pos var i
      | Some j -> checks := Check_same (i, j) :: !checks)
  done;
  let distinct = Hashtbl.fold (fun var pos acc -> (var, pos) :: acc) first_pos [] in
  let sorted =
    List.sort (fun (v1, _) (v2, _) -> Stdlib.compare q.var_depth.(v1) q.var_depth.(v2)) distinct
  in
  {
    ap_table = table;
    ap_checks = List.rev !checks;
    ap_sources = Array.of_list (List.map snd sorted);
    ap_vars = Array.of_list (List.map fst sorted);
  }

let row_passes (plan : atom_plan) key (row : Table.row) =
  let cell i = if i < Array.length key then key.(i) else row.Table.value in
  List.for_all
    (function
      | Check_const (i, v) -> Value.equal (cell i) v
      | Check_same (i, j) -> Value.equal (cell i) (cell j))
    plan.ap_checks

let build_trie (plan : atom_plan) (range : stamp_range) : trie =
  let depth = Array.length plan.ap_sources in
  Telemetry.bump c_trie_builds 1;
  Telemetry.observe "join.trie_depth" (float_of_int depth);
  let scanned = ref 0 in
  let result =
  if depth = 0 then begin
    (* Fully ground atom: Leaf iff some row passes the checks. *)
    let found = ref false in
    (try
       Table.iter_range plan.ap_table ~lo:range.lo ~hi:range.hi (fun key row ->
           incr scanned;
           if row_passes plan key row then begin
             found := true;
             raise Exit
           end)
     with Exit -> ());
    if !found then Leaf else Node (VTbl.create 0)
  end
  else begin
    let root = VTbl.create 64 in
    Table.iter_range plan.ap_table ~lo:range.lo ~hi:range.hi (fun key row ->
        incr scanned;
        if row_passes plan key row then begin
          let cell i = if i < Array.length key then key.(i) else row.Table.value in
          let node = ref root in
          for level = 0 to depth - 1 do
            let v = cell plan.ap_sources.(level) in
            if level = depth - 1 then VTbl.replace !node v Leaf
            else begin
              match VTbl.find_opt !node v with
              | Some (Node t) -> node := t
              | Some Leaf -> assert false
              | None ->
                let t = VTbl.create 8 in
                VTbl.replace !node v (Node t);
                node := t
            end
          done
        end);
    Node root
  end
  in
  Telemetry.bump c_scanned !scanned;
  result

exception Found

(* The memo holds both kinds of built structure. Full-table entries
   (lo = 0, hi = max_int) live in the persistent tier, validated against
   the table version, so indexes over tables that did not change survive
   across iterations (input relations are indexed exactly once). Delta and
   windowed entries go to the scratch tier, cleared each iteration. *)
type built = B_trie of trie | B_index of Value.t array list Value.Key_tbl.t

type cache = {
  persistent : (string, int * built) Hashtbl.t;  (* key -> table version, built *)
  scratch : (string, built) Hashtbl.t;
}

let new_cache () : cache = { persistent = Hashtbl.create 64; scratch = Hashtbl.create 64 }

let clear_scratch cache = Hashtbl.reset cache.scratch

let cache_find cache ~full ~table key =
  if full then begin
    match Hashtbl.find_opt cache.persistent key with
    | Some (version, built) when version = Table.version table -> Some built
    | Some _ | None -> None
  end
  else Hashtbl.find_opt cache.scratch key

let cache_store cache ~full ~table key built =
  if full then Hashtbl.replace cache.persistent key (Table.version table, built)
  else Hashtbl.replace cache.scratch key built

let cache_key (atom : Compile.atom) (plan : atom_plan) (range : stamp_range) =
  let buf = Buffer.create 32 in
  Buffer.add_string buf (string_of_int (atom.a_func.Schema.name :> int));
  Buffer.add_char buf '|';
  Array.iter (fun s -> Buffer.add_string buf (string_of_int s); Buffer.add_char buf ',') plan.ap_sources;
  Buffer.add_char buf '|';
  List.iter
    (function
      | Check_const (i, v) ->
        Buffer.add_string buf (Printf.sprintf "c%d=%s;" i (Value.to_string v))
      | Check_same (i, j) -> Buffer.add_string buf (Printf.sprintf "s%d=%d;" i j))
    plan.ap_checks;
  Buffer.add_string buf (Printf.sprintf "|%d:%d" range.lo range.hi);
  Buffer.contents buf

let is_full range = range.lo = 0 && range.hi = max_int

let cached_trie cache atom plan range =
  match cache with
  | None -> build_trie plan range
  | Some c -> (
    let key = "t" ^ cache_key atom plan range in
    let full = is_full range in
    match cache_find c ~full ~table:plan.ap_table key with
    | Some (B_trie trie) ->
      Telemetry.bump c_cache_hits 1;
      trie
    | Some (B_index _) | None ->
      Telemetry.bump c_cache_misses 1;
      let trie = build_trie plan range in
      cache_store c ~full ~table:plan.ap_table key (B_trie trie);
      trie)

(* Hash index over an atom: projected shared-variable values -> the values
   of the atom's remaining variables, one entry per passing row. *)
let build_index (plan : atom_plan) (range : stamp_range) ~(proj : int array) ~(rest : int array) =
  Telemetry.bump c_index_builds 1;
  let scanned = ref 0 in
  let index : Value.t array list Value.Key_tbl.t = Value.Key_tbl.create 64 in
  Table.iter_range plan.ap_table ~lo:range.lo ~hi:range.hi (fun key row ->
      incr scanned;
      if row_passes plan key row then begin
        let cell i = if i < Array.length key then key.(i) else row.Table.value in
        let k = Array.map cell proj in
        let v = Array.map cell rest in
        let existing = try Value.Key_tbl.find index k with Not_found -> [] in
        Value.Key_tbl.replace index k (v :: existing)
      end);
  Telemetry.bump c_scanned !scanned;
  index

let cached_index cache atom plan range ~proj ~rest =
  match cache with
  | None -> build_index plan range ~proj ~rest
  | Some c -> (
    let key =
      Printf.sprintf "i%s#%s#%s" (cache_key atom plan range)
        (String.concat "," (Array.to_list (Array.map string_of_int proj)))
        (String.concat "," (Array.to_list (Array.map string_of_int rest)))
    in
    let full = is_full range in
    match cache_find c ~full ~table:plan.ap_table key with
    | Some (B_index idx) ->
      Telemetry.bump c_cache_hits 1;
      idx
    | Some (B_trie _) | None ->
      Telemetry.bump c_cache_misses 1;
      let idx = build_index plan range ~proj ~rest in
      cache_store c ~full ~table:plan.ap_table key (B_index idx);
      idx)

(* Fast path: a single-atom query needs no trie at all — scan the table
   (or just the log tail for delta ranges), filter, bind, run the primitive
   schedule. This covers the bulk of rewrite rules (single-pattern
   left-hand sides). *)
let search_single_atom (q : Compile.cquery) (plan : atom_plan) (range : stamp_range) callback =
  let n_vars = q.Compile.n_vars in
  let env : Value.t array = Array.make n_vars Value.VUnit in
  let all_prims = Array.to_list q.Compile.schedule |> List.concat in
  (* Every join variable is bound from the row before the primitives run,
     so whether a primitive output checks or binds is static. *)
  let is_join_var = Array.make n_vars false in
  Array.iter (fun v -> is_join_var.(v) <- true) plan.ap_vars;
  let prim_binds =
    List.map
      (fun (p : Compile.prim_app) ->
        match p.p_out with
        | Compile.A_var v when not is_join_var.(v) ->
          is_join_var.(v) <- true;
          (p, true)
        | Compile.A_var _ | Compile.A_const _ -> (p, false))
      all_prims
  in
  let eval_arg = function Compile.A_const v -> v | Compile.A_var v -> env.(v) in
  let scanned = ref 0 in
  Table.iter_range plan.ap_table ~lo:range.lo ~hi:range.hi (fun key row ->
      incr scanned;
      if row_passes plan key row then begin
        let cell i = if i < Array.length key then key.(i) else row.Table.value in
        Array.iteri (fun level src -> env.(plan.ap_vars.(level)) <- cell src) plan.ap_sources;
        let ok =
          List.for_all
            (fun ((p : Compile.prim_app), binds) ->
              let args = Array.map eval_arg p.p_args in
              match p.p_prim.Primitives.impl args with
              | None -> false
              | Some result ->
                if binds then begin
                  (match p.p_out with
                   | Compile.A_var v -> env.(v) <- result
                   | Compile.A_const _ -> assert false);
                  true
                end
                else begin
                  match p.p_out with
                  | Compile.A_const c -> Value.equal c result
                  | Compile.A_var v -> Value.equal env.(v) result
                end)
            prim_binds
        in
        if ok then callback env
      end);
  Telemetry.bump c_scanned !scanned

(* Prims as a flat, statically classified checklist: every join variable is
   bound before they run, so outputs either bind (computed vars) or check. *)
let static_prim_plan (q : Compile.cquery) (atom_vars : int array list) =
  let bound = Array.make q.Compile.n_vars false in
  List.iter (fun vars -> Array.iter (fun v -> bound.(v) <- true) vars) atom_vars;
  List.map
    (fun (p : Compile.prim_app) ->
      match p.p_out with
      | Compile.A_var v when not bound.(v) ->
        bound.(v) <- true;
        (p, true)
      | Compile.A_var _ | Compile.A_const _ -> (p, false))
    (Array.to_list q.Compile.schedule |> List.concat)

let run_static_prims (env : Value.t array) prim_plan =
  List.for_all
    (fun ((p : Compile.prim_app), binds) ->
      let args =
        Array.map (function Compile.A_const v -> v | Compile.A_var v -> env.(v)) p.p_args
      in
      match p.p_prim.Primitives.impl args with
      | None -> false
      | Some result ->
        if binds then begin
          (match p.p_out with
           | Compile.A_var v -> env.(v) <- result
           | Compile.A_const _ -> assert false);
          true
        end
        else begin
          match p.p_out with
          | Compile.A_const c -> Value.equal c result
          | Compile.A_var v -> Value.equal env.(v) result
        end)
    prim_plan

(* Fast path for two-atom queries: scan a driver atom (prefer the delta
   side), probe a hash index on the other atom keyed by the shared
   variables. Cheaper constants than the generic trie join, and the index
   is shared across rules/variants via the cache. *)
let search_two_atoms ?cache (q : Compile.cquery) (plans : atom_plan array)
    (ranges : stamp_range array) callback =
  let driver =
    if ranges.(0).lo > ranges.(1).lo then 0
    else if ranges.(1).lo > ranges.(0).lo then 1
    else if Table.length plans.(0).ap_table <= Table.length plans.(1).ap_table then 0
    else 1
  in
  let other = 1 - driver in
  let dplan = plans.(driver) and oplan = plans.(other) in
  let in_driver = Array.make q.Compile.n_vars false in
  Array.iter (fun v -> in_driver.(v) <- true) dplan.ap_vars;
  (* positions in the *other* atom's row for shared and private vars *)
  let shared = ref [] and rest = ref [] in
  Array.iteri
    (fun level v ->
      let src = oplan.ap_sources.(level) in
      if in_driver.(v) then shared := (v, src) :: !shared else rest := (v, src) :: !rest)
    oplan.ap_vars;
  let shared = Array.of_list (List.rev !shared) and rest = Array.of_list (List.rev !rest) in
  let proj = Array.map snd shared and rest_pos = Array.map snd rest in
  let index = cached_index cache q.atoms.(other) oplan ranges.(other) ~proj ~rest:rest_pos in
  let prim_plan = static_prim_plan q [ dplan.ap_vars; oplan.ap_vars ] in
  let env = Array.make q.Compile.n_vars Value.VUnit in
  let probe_key = Array.make (Array.length shared) Value.VUnit in
  let scanned = ref 0 in
  Table.iter_range dplan.ap_table ~lo:ranges.(driver).lo ~hi:ranges.(driver).hi
    (fun key row ->
      incr scanned;
      if row_passes dplan key row then begin
        let cell i = if i < Array.length key then key.(i) else row.Table.value in
        Array.iteri (fun level src -> env.(dplan.ap_vars.(level)) <- cell src) dplan.ap_sources;
        Array.iteri (fun i (v, _) -> probe_key.(i) <- env.(v)) shared;
        match Value.Key_tbl.find_opt index probe_key with
        | None -> ()
        | Some entries ->
          List.iter
            (fun (rest_vals : Value.t array) ->
              Array.iteri (fun i (v, _) -> env.(v) <- rest_vals.(i)) rest;
              if run_static_prims env prim_plan then callback env)
            entries
      end);
  Telemetry.bump c_scanned !scanned

let search db ?cache ?(fast_paths = true) (q : Compile.cquery) ~(ranges : stamp_range array)
    callback =
  let n_atoms = Array.length q.atoms in
  if Array.length ranges <> n_atoms then invalid_arg "Join.search: ranges arity mismatch";
  (* Count yields only when telemetry is on: the wrapper closure would
     otherwise cost an allocation per search even with everything off. *)
  let callback =
    if Telemetry.is_enabled () then (fun env ->
      Telemetry.bump c_yielded 1;
      callback env)
    else callback
  in
  let plans = Array.map (plan_atom db q) q.atoms in
  if fast_paths && n_atoms = 1 && Array.length plans.(0).ap_sources > 0 then
    search_single_atom q plans.(0) ranges.(0) callback
  else if
    fast_paths
    && n_atoms = 2
    && Array.length plans.(0).ap_sources > 0
    && Array.length plans.(1).ap_sources > 0
  then search_two_atoms ?cache q plans ranges callback
  else begin
  let tries = Array.init n_atoms (fun i -> cached_trie cache q.atoms.(i) plans.(i) ranges.(i)) in
  let unsat =
    Array.exists (function Node t -> VTbl.length t = 0 | Leaf -> false) tries
  in
  if not unsat then begin
    let n_steps = Array.length q.order in
    (* Atoms participating at each depth (their cursor is intersected). *)
    let parts_for_depth =
      Array.init n_steps (fun d ->
          let v = q.order.(d) in
          let acc = ref [] in
          for ai = n_atoms - 1 downto 0 do
            if Array.exists (Int.equal v) plans.(ai).ap_vars then acc := ai :: !acc
          done;
          !acc)
    in
    let cursors = Array.copy tries in
    let env : Value.t option array = Array.make q.n_vars None in
    let eval_arg = function
      | Compile.A_const v -> v
      | Compile.A_var v -> (
        match env.(v) with
        | Some x -> x
        | None -> internal "unbound variable in primitive argument")
    in
    (* Run the primitives scheduled at a depth. Returns the computed vars to
       undo, or None on guard failure (partial bindings already undone). *)
    let run_prims prims =
      let rec go acc = function
        | [] -> Some acc
        | (p : Compile.prim_app) :: rest -> (
          let args = Array.map eval_arg p.p_args in
          match p.p_prim.Primitives.impl args with
          | None ->
            List.iter (fun v -> env.(v) <- None) acc;
            None
          | Some result -> (
            match p.p_out with
            | Compile.A_const c ->
              if Value.equal c result then go acc rest
              else begin
                List.iter (fun v -> env.(v) <- None) acc;
                None
              end
            | Compile.A_var v -> (
              match env.(v) with
              | Some existing ->
                if Value.equal existing result then go acc rest
                else begin
                  List.iter (fun u -> env.(u) <- None) acc;
                  None
                end
              | None ->
                env.(v) <- Some result;
                go (v :: acc) rest)))
      in
      go [] prims
    in
    let emit () =
      let binding =
        Array.mapi
          (fun i o ->
            match o with
            | Some v -> v
            | None -> internal "unbound variable %s at emit" q.var_names.(i))
          env
      in
      callback binding
    in
    let rec solve d =
      match run_prims q.schedule.(d) with
      | None -> ()
      | Some undo ->
        (if d = n_steps then emit ()
         else begin
           let v = q.order.(d) in
           let parts = parts_for_depth.(d) in
           match parts with
           | [] -> internal "join variable %s covered by no atom" q.var_names.(v)
           | _ ->
             (* Iterate the smallest candidate set, probe the others. *)
             let node_table ai =
               match cursors.(ai) with
               | Node t -> t
               | Leaf ->
                 internal ~in_func:q.atoms.(ai).a_func.Schema.name "trie cursor exhausted"
             in
             let smallest =
               List.fold_left
                 (fun best ai ->
                   match best with
                   | None -> Some ai
                   | Some b ->
                     if VTbl.length (node_table ai) < VTbl.length (node_table b) then Some ai
                     else best)
                 None parts
             in
             let smallest = Option.get smallest in
             let saved = List.map (fun ai -> (ai, cursors.(ai))) parts in
             VTbl.iter
               (fun value _child ->
                 let ok =
                   List.for_all
                     (fun ai ->
                       ai = smallest
                       ||
                       match VTbl.find_opt (node_table ai) value with
                       | Some _ -> true
                       | None -> false)
                     parts
                 in
                 if ok then begin
                   List.iter
                     (fun ai ->
                       match VTbl.find_opt (node_table ai) value with
                       | Some child -> cursors.(ai) <- child
                       | None -> assert false)
                     parts;
                   (* restore cursors before the next candidate *)
                   env.(v) <- Some value;
                   solve (d + 1);
                   env.(v) <- None;
                   List.iter (fun (ai, c) -> cursors.(ai) <- c) saved
                 end)
               (node_table smallest)
         end);
        List.iter (fun u -> env.(u) <- None) undo
    in
    solve 0
  end
  end

let exists db (q : Compile.cquery) =
  let ranges = Array.make (Array.length q.atoms) all_rows in
  try
    search db q ~ranges (fun _ -> raise Found);
    false
  with Found -> true
