(** Explanation support: why are two ids equal?

    The paper lists proof generation as future work (§7, citing the
    proof-producing congruence closure of Nieuwenhuis & Oliveras 2005);
    this module implements the classic {e proof forest}: every union
    records an edge labelled with its justification, and an explanation
    is the path between the two ids through their common ancestor. *)

type reason =
  | Asserted  (** a top-level [union] or [set] *)
  | Rule of string  (** fired by the named rule *)
  | Congruence of Symbol.t  (** functional-dependency repair of this function *)

type step = { from_id : int; to_id : int; why : reason }

type t

val create : unit -> t

val record : t -> int -> int -> reason -> unit
(** Remember that the two ids were made equal for this reason. *)

val explain : t -> int -> int -> step list option
(** A chain of recorded steps connecting the ids ([Some []] when they are
    identical); [None] when no recorded chain connects them. *)

val n_edges : t -> int
(** Number of recorded union edges (each {!record} of distinct ids adds
    exactly one, rerooting included); feeds the modeled memory footprint. *)

val edges_in_class : t -> member:int -> find:(int -> int) -> step list
(** All recorded union events whose endpoints are in the given class —
    the construction trace of the e-class. *)

val copy : t -> t
val pp_reason : Format.formatter -> reason -> unit
