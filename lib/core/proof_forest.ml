type reason = Asserted | Rule of string | Congruence of Symbol.t

type step = { from_id : int; to_id : int; why : reason }

(* Each id has at most one labelled parent edge; [record] re-roots one
   side's tree so the new edge can be added (Nelson-Oppen style). *)
type t = { mutable parent : (int * reason) array; mutable n_edges : int }

let no_parent = (-1, Asserted)

let create () = { parent = Array.make 64 no_parent; n_edges = 0 }

let ensure t id =
  if id >= Array.length t.parent then begin
    let cap = max (2 * Array.length t.parent) (id + 1) in
    let bigger = Array.make cap no_parent in
    Array.blit t.parent 0 bigger 0 (Array.length t.parent);
    t.parent <- bigger
  end

let parent_of t id = if id < Array.length t.parent then t.parent.(id) else no_parent

(* Reverse all parent pointers on the path from [id] to its root, making
   [id] the root of its proof tree. *)
let reroot t id =
  let rec collect acc id =
    match parent_of t id with
    | -1, _ -> acc
    | p, why -> collect ((id, p, why) :: acc) p
  in
  let path = collect [] id in
  (* path is root-first; flip each edge *)
  List.iter
    (fun (child, par, why) ->
      ensure t par;
      t.parent.(par) <- (child, why))
    path;
  ensure t id;
  t.parent.(id) <- no_parent

let record t a b why =
  if a <> b then begin
    ensure t a;
    ensure t b;
    reroot t a;
    (* Rerooting flips edges without changing their count, and [a] is a
       root afterwards, so this always adds exactly one edge. *)
    t.parent.(a) <- (b, why);
    t.n_edges <- t.n_edges + 1
  end

let n_edges t = t.n_edges

let path_to_root t id =
  let rec go acc id =
    match parent_of t id with
    | -1, _ -> List.rev ((id, no_parent) :: acc)
    | p, why -> go ((id, (p, why)) :: acc) p
  in
  go [] id

let explain t a b =
  if a = b then Some []
  else begin
    let pa = path_to_root t a and pb = path_to_root t b in
    (* find the last common node of the two root-paths *)
    let nodes_b = List.map fst pb in
    let rec first_common = function
      | [] -> None
      | (n, _) :: rest -> if List.mem n nodes_b then Some n else first_common rest
    in
    match first_common pa with
    | None -> None
    | Some lca ->
      (* steps along a root-path until the lca, in order *)
      let rec until_lca = function
        | (n, (p, why)) :: rest when n <> lca -> { from_id = n; to_id = p; why } :: until_lca rest
        | _ -> []
      in
      let a_to_lca = until_lca pa in
      let b_to_lca = until_lca pb in
      let lca_to_b =
        List.rev_map (fun s -> { from_id = s.to_id; to_id = s.from_id; why = s.why }) b_to_lca
      in
      Some (a_to_lca @ lca_to_b)
  end

let edges_in_class t ~member ~find =
  let root = find member in
  let acc = ref [] in
  Array.iteri
    (fun i (p, why) ->
      if p >= 0 && find i = root then acc := { from_id = i; to_id = p; why } :: !acc)
    t.parent;
  List.rev !acc

let copy t = { parent = Array.copy t.parent; n_edges = t.n_edges }

let pp_reason fmt = function
  | Asserted -> Format.pp_print_string fmt "asserted"
  | Rule name -> Format.fprintf fmt "rule %s" name
  | Congruence f -> Format.fprintf fmt "congruence of %s" (Symbol.name f)
