exception Egglog_error of string

let error fmt = Format.kasprintf (fun s -> raise (Egglog_error s)) fmt

(* Run-loop telemetry: bumped live from the hot loops (one branch when
   disabled), snapshotted by --stats and the bench harness. *)
let c_iterations = Telemetry.counter "engine.iterations"
let c_plans_built = Telemetry.counter "join.plans_built"
let c_replans = Telemetry.counter "join.replans"
let c_matches = Telemetry.counter "engine.matches_applied"
let c_new = Telemetry.counter "engine.tuples_inserted"
let c_dup = Telemetry.counter "engine.matches_deduplicated"
let c_bans = Telemetry.counter "scheduler.bans"
let c_domains = Telemetry.counter "search.domains_used"
let c_pressure_bans = Telemetry.counter "scheduler.pressure_bans"

(* Parallel apply/rebuild gauges and outcome counters. The domains-used
   gauges mirror [search.domains_used]; the staged-commit split records how
   often optimistic traces survived validation versus fell back to the
   serial applier (fallbacks are correct, just slower). *)
let c_apply_domains = Telemetry.counter "apply.domains_used"
let c_rebuild_domains = Telemetry.counter "rebuild.domains_used"
let c_staged_commits = Telemetry.counter "apply.staged_commits"
let c_staged_fallbacks = Telemetry.counter "apply.staged_fallbacks"

(* Memory gauges (recorded as max-counters so the bench telemetry schema is
   unchanged): the modeled footprint drives budgets; the real heap high-water
   mark is telemetry-only — never a budget input, because it depends on
   allocator and GC state and would make stops nondeterministic. *)
let c_mem_modeled = Telemetry.counter "memory.modeled_bytes_peak"
let c_mem_top_heap = Telemetry.counter "memory.top_heap_bytes"

(* Distribution sketches for the evaluation's where-does-time-go story:
   per-iteration phase durations and per-rule apply behaviour land in
   log-bucketed histograms (see Telemetry), giving deterministic
   quantiles in bench envelopes. [engine.rule_matches] is value-based
   (match-list lengths), so its buckets are byte-identical at any
   --jobs count. *)
let h_search = Telemetry.histogram "engine.search_s"
let h_apply = Telemetry.histogram "engine.apply_s"
let h_rebuild = Telemetry.histogram "engine.rebuild_s"
let h_rule_matches = Telemetry.histogram "engine.rule_matches"

type scheduler = Simple | Backoff of { match_limit : int; ban_length : int }

let backoff_default = Backoff { match_limit = 1000; ban_length = 5 }

type iteration_stat = {
  it_index : int;
  it_seconds : float;
  it_rows : int;
  it_classes : int;
  it_changed : bool;
  it_search_seconds : float;
  it_apply_seconds : float;
  it_rebuild_seconds : float;
  it_matches : int;
  it_delta_rows : int;  (* tuples (re)stamped this iteration: the next semi-naïve frontier *)
}

type stop_reason =
  | Saturated  (* an iteration changed nothing and no rule was banned *)
  | Iteration_limit  (* ran the requested number of iterations *)
  | Node_limit of int  (* total tuples when the budget tripped *)
  | Time_limit of float  (* elapsed seconds when the budget tripped *)
  | Memory_limit of int  (* modeled database bytes when the budget tripped *)
  | Until_satisfied  (* the :until facts became derivable *)

type rule_stat = {
  rs_rule : string;
  rs_matches : int;  (* matches applied during this run *)
  rs_inserted : int;  (* tuples inserted / unions performed by its actions *)
  rs_deduplicated : int;  (* matches whose actions changed nothing *)
  rs_bans : int;  (* times the scheduler banned the rule during this run *)
  rs_bytes : int;  (* modeled byte growth attributable to the rule's actions *)
}

type run_report = {
  iterations : iteration_stat list;
  stop_reason : stop_reason;
  rule_stats : rule_stat list;
  total_seconds : float;
  jobs : int;  (* resolved domain count (>= 1) used by search/apply/rebuild *)
  peak_memory_bytes : int;  (* max modeled database bytes observed during the run *)
}

type rt_rule = {
  rr_name : string;
  rr_ruleset : string;  (* "" = the default ruleset *)
  rr_rule : Compile.crule;
  mutable rr_last_stamp : int;
  mutable rr_times_banned : int;
  mutable rr_banned_until : int;
  mutable rr_plan_sig : string;  (* size-bucket signature the cached plans were built for *)
  mutable rr_plans : Compile.cquery array;  (* n_atoms delta variants + the full plan *)
  mutable rr_compiled : Join.compiled array;
      (* closure-compiled twin of rr_plans, rebuilt with it; [||] when the
         engine runs with compiled plans disabled *)
}

type snapshot = {
  sn_db : Database.t;
  sn_rules : rt_rule list;
  sn_rule_states : (int * int * int) list;  (* last_stamp, times_banned, banned_until *)
  sn_iteration : int;
  sn_decl_log : Ast.command list;
}

type t = {
  mutable db : Database.t;
  mutable rules : rt_rule list;  (* in declaration order *)
  mutable merge_exprs : (Symbol.t, Compile.cexpr) Hashtbl.t;
  mutable default_exprs : (Symbol.t, Compile.cexpr) Hashtbl.t;
  mutable stack : snapshot list;
  seminaive : bool;
  fast_paths : bool;
  index_caching : bool;
  compiled_plans : bool;  (* lower plans to closures (--no-compiled-plans disables) *)
  scheduler : scheduler;
  mutable iteration : int;
  mutable rule_counter : int;
  run_cap : int;  (* iteration bound for (run) without a limit *)
  mutable default_node_limit : int option;  (* session-wide budget (CLI --node-limit) *)
  mutable default_time_limit : float option;  (* session-wide budget (CLI --time-limit) *)
  mutable default_memory_limit : int option;  (* session-wide budget (CLI --memory-limit) *)
  pressure_tiers : float * float;  (* fractions of the memory limit that trigger tier 1/2 *)
  mutable default_jobs : int;  (* search-phase domains (CLI --jobs); 0 = one per core *)
  join_cache : Join.cache;
  mutable current_reason : Proof_forest.reason;  (* justification for unions *)
  mutable rulesets : string list;  (* declared named rulesets *)
  mutable decl_log : Ast.command list;  (* reversed; see [decl_commands] *)
  mutable report_sink : run_report list ref option;
      (* when set, every run_iterations pushes its report (see
         [collect_reports] — the server's budget-stop detector) *)
}

let database eng = eng.db

let compile_env eng : Compile.env =
  {
    Compile.find_func =
      (fun name ->
        match Database.find_func eng.db (Symbol.intern name) with
        | Some table -> Some (Table.func table)
        | None -> None);
  }

(* ------------------------------------------------------------------ *)
(* Evaluation of compiled expressions and actions                      *)
(* ------------------------------------------------------------------ *)

let table_of eng (f : Schema.func) =
  match Database.find_func eng.db f.Schema.name with
  | Some t -> t
  | None -> error "function %s is not declared (popped scope?)" (Symbol.name f.Schema.name)

(* ------------------------------------------------------------------ *)
(* Cost-based plan cache                                               *)
(* ------------------------------------------------------------------ *)

let atom_cards eng (q : Compile.cquery) : Compile.atom_card array =
  Array.map
    (fun (atom : Compile.atom) ->
      let table = table_of eng atom.Compile.a_func in
      let rows, distinct = Database.table_stats eng.db table in
      { Compile.ac_rows = rows; ac_distinct = distinct })
    q.Compile.atoms

(* Replace an atom's statistics with its semi-naïve delta: [rows] becomes
   the frontier size and every distinct count is capped by it (a window of
   k rows cannot hold more than k distinct values in any column). *)
let delta_card (c : Compile.atom_card) rows =
  { Compile.ac_rows = rows; ac_distinct = Array.map (fun d -> min d (max 1 rows)) c.Compile.ac_distinct }

(* log2 size bucket: statistics "shift" (and plans are recomputed) only
   when a cardinality crosses a power-of-two boundary. *)
let bucket n =
  if n <= 0 then 0
  else begin
    let b = ref 0 and m = ref n in
    while !m > 1 do
      incr b;
      m := !m lsr 1
    done;
    !b + 1
  end

(* The per-rule plan cache key: for each atom, the size bucket of the full
   table and of the rule's current delta window. The schema and variable
   structure are fixed per compiled rule, so buckets are all that can
   shift. *)
let plan_signature eng (q : Compile.cquery) ~low =
  let buf = Buffer.create 32 in
  Array.iter
    (fun (atom : Compile.atom) ->
      let table = table_of eng atom.Compile.a_func in
      Buffer.add_string buf (string_of_int (bucket (Table.length table)));
      Buffer.add_char buf '.';
      Buffer.add_string buf (string_of_int (bucket (Table.entries_since table low)));
      Buffer.add_char buf ';')
    q.Compile.atoms;
  Buffer.contents buf

(* Cached cost-based plans for one rule: slot [j < n_atoms] is the
   semi-naïve variant whose atom [j] is the delta, slot [n_atoms] the
   full-range plan. Rebuilt only when the size-bucket signature shifts. *)
(* Lower freshly (re)planned queries to closures. Runs only in the serial
   pre-phase (plans_for), so the compiled-plans counters are bumped
   identically at any jobs count. Slots may share one compiled object —
   compiled evaluators keep all mutable state per search, so concurrent
   variants are safe. *)
let compile_plans eng (plans : Compile.cquery array) : Join.compiled array =
  if not eng.compiled_plans then [||]
  else Array.map (Join.compile_plan ~fast_paths:eng.fast_paths) plans

let plans_for eng (r : rt_rule) : Compile.cquery array =
  let q = r.rr_rule.Compile.cr_query in
  let n_atoms = Array.length q.Compile.atoms in
  if n_atoms = 0 || Array.length q.Compile.order <= 1 then begin
    if Array.length r.rr_plans = 0 then begin
      r.rr_plans <- Array.make (n_atoms + 1) q;
      if eng.compiled_plans then
        r.rr_compiled <-
          Array.make (n_atoms + 1) (Join.compile_plan ~fast_paths:eng.fast_paths q)
    end;
    r.rr_plans
  end
  else begin
    let low = r.rr_last_stamp in
    let signature = plan_signature eng q ~low in
    if signature <> r.rr_plan_sig || Array.length r.rr_plans = 0 then begin
      if Array.length r.rr_plans > 0 then Telemetry.bump c_replans 1;
      let cards = atom_cards eng q in
      let deltas =
        Array.map
          (fun (atom : Compile.atom) ->
            Table.entries_since (table_of eng atom.Compile.a_func) low)
          q.Compile.atoms
      in
      let plans =
        Array.init (n_atoms + 1) (fun j ->
            if j = n_atoms then Compile.replan q ~cards
            else begin
              let cards' =
                Array.mapi (fun i c -> if i = j then delta_card c deltas.(i) else c) cards
              in
              Compile.replan q ~cards:cards'
            end)
      in
      Telemetry.bump c_plans_built (n_atoms + 1);
      r.rr_plans <- plans;
      r.rr_compiled <- compile_plans eng plans;
      r.rr_plan_sig <- signature
    end;
    r.rr_plans
  end

let rec eval_expr eng (slots : Value.t array) (e : Compile.cexpr) : Value.t =
  match e with
  | Compile.C_var i -> slots.(i)
  | Compile.C_const v -> v
  | Compile.C_func (f, args) -> (
    let vals = Array.map (eval_expr eng slots) args in
    let table = table_of eng f in
    match Database.lookup eng.db table vals with
    | Some v -> v
    | None ->
      let v =
        match f.Schema.default with
        | Schema.Default_fresh -> (
          match f.Schema.ret_ty with
          | Ty.Sort s -> Database.fresh_id eng.db s
          | _ -> error "internal error: Default_fresh on base-type function")
        | Schema.Default_expr _ ->
          eval_expr eng [||] (Hashtbl.find eng.default_exprs f.Schema.name)
        | Schema.Default_panic ->
          error "function %s is not defined on %s" (Symbol.name f.Schema.name)
            (String.concat " " (Array.to_list (Array.map Value.to_string vals)))
      in
      Database.set eng.db table vals v;
      Database.canon eng.db v)
  | Compile.C_prim (p, args) -> (
    let vals = Array.map (fun a -> Database.canon eng.db (eval_expr eng slots a)) args in
    match p.Primitives.impl vals with
    | Some v -> v
    | None ->
      error "primitive %s failed on %s" p.Primitives.pname
        (String.concat " " (Array.to_list (Array.map Value.to_string vals))))

let exec_action eng (slots : Value.t array) (a : Compile.caction) =
  match a with
  | Compile.C_set (f, args, value) ->
    let vals = Array.map (eval_expr eng slots) args in
    let v = eval_expr eng slots value in
    Database.set eng.db (table_of eng f) vals v
  | Compile.C_union (e1, e2) ->
    let v1 = eval_expr eng slots e1 and v2 = eval_expr eng slots e2 in
    ignore (Database.union eng.db ~reason:eng.current_reason v1 v2)
  | Compile.C_let (slot, e) -> slots.(slot) <- eval_expr eng slots e
  | Compile.C_do e -> ignore (eval_expr eng slots e)
  | Compile.C_panic msg -> error "panic: %s" msg
  | Compile.C_delete (f, args) ->
    let vals = Array.map (eval_expr eng slots) args in
    Database.remove eng.db (table_of eng f) vals

let create ?(seminaive = true) ?(scheduler = Simple) ?(fast_paths = true)
    ?(index_caching = true) ?(compiled_plans = true) ?node_limit ?time_limit ?memory_limit
    ?(pressure_tiers = (0.7, 0.85)) ?(jobs = 1) () =
  if jobs < 0 then error "jobs must be non-negative (0 = one per core), got %d" jobs;
  (let t1, t2 = pressure_tiers in
   if not (t1 > 0.0 && t1 <= t2 && t2 <= 1.0) then
     error "pressure tiers must satisfy 0 < tier1 <= tier2 <= 1, got %.2f/%.2f" t1 t2);
  let eng =
    {
      db = Database.create ();
      rules = [];
      merge_exprs = Hashtbl.create 16;
      default_exprs = Hashtbl.create 16;
      stack = [];
      seminaive;
      fast_paths;
      index_caching;
      compiled_plans;
      scheduler;
      iteration = 0;
      rule_counter = 0;
      run_cap = 1000;
      default_node_limit = node_limit;
      default_time_limit = time_limit;
      default_memory_limit = memory_limit;
      pressure_tiers;
      default_jobs = jobs;
      join_cache = Join.new_cache ();
      current_reason = Proof_forest.Asserted;
      rulesets = [];
      decl_log = [];
      report_sink = None;
    }
  in
  Database.set_merge_hook eng.db (fun func old_v new_v ->
      match Hashtbl.find_opt eng.merge_exprs func.Schema.name with
      | Some ce -> eval_expr eng [| old_v; new_v |] ce
      | None -> error "internal error: missing merge expression for %s" (Symbol.name func.Schema.name));
  eng

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let rec resolve_ty eng (t : Ast.tyexpr) : Ty.t =
  match t with
  | Ast.T_set inner -> Ty.Set (resolve_ty eng inner)
  | Ast.T_vec inner -> Ty.Vec (resolve_ty eng inner)
  | Ast.T_name name -> (
    match name with
    | "i64" -> Ty.Int
    | "Unit" | "unit" -> Ty.Unit
    | "bool" | "Bool" -> Ty.Bool
    | "String" -> Ty.String
    | "Rational" -> Ty.Rational
    | _ ->
      if Database.is_sort eng.db (Symbol.intern name) then Ty.Sort (Symbol.intern name)
      else error "unknown type %s" name)

(* The declaration log records every committed schema-shaping operation
   (sorts, functions, rules, rulesets) as a replayable command, at the level
   of the primitive typed-API entry points: sugar (datatype, relation,
   rewrite, define) is logged desugared, so replaying the log into a fresh
   engine reproduces the schema, the rule set and the deterministic
   auto-naming counters exactly. Checkpoints persist this log alongside the
   data dump (a {!Serialize.dump} carries no declarations). *)
let log_decl eng cmd = eng.decl_log <- cmd :: eng.decl_log
let decl_commands eng = List.rev eng.decl_log
let scope_depth eng = List.length eng.stack

let declare_sort eng name =
  let sym = Symbol.intern name in
  if Database.is_sort eng.db sym then error "sort %s is already declared" name;
  Database.declare_sort eng.db sym;
  log_decl eng (Ast.Decl_sort name)

let wrap_compile f = try f () with Compile.Error msg -> raise (Egglog_error msg)

let declare_function eng (decl : Ast.function_decl) =
  wrap_compile (fun () ->
      let arg_tys = Array.of_list (List.map (resolve_ty eng) decl.arg_tys) in
      let ret_ty = resolve_ty eng decl.ret_ty in
      let name = Symbol.intern decl.fname in
      let merge =
        match decl.merge with
        | Ast.Merge_expr e -> Schema.Merge_expr e
        | Ast.Merge_default ->
          if Ty.is_sort ret_ty then Schema.Merge_union
          else if Ty.equal ret_ty Ty.Unit then Schema.Merge_union (* never conflicts *)
          else Schema.Merge_panic
      in
      let default =
        match decl.default with
        | Some e -> Schema.Default_expr e
        | None ->
          if Ty.is_sort ret_ty then Schema.Default_fresh
          else if Ty.equal ret_ty Ty.Unit then Schema.Default_expr (Ast.Lit Value.VUnit)
          else Schema.Default_panic
      in
      let func =
        {
          Schema.name;
          arg_tys;
          ret_ty;
          merge;
          default;
          cost = Option.value decl.cost ~default:1;
          is_relation = Ty.equal ret_ty Ty.Unit;
        }
      in
      (try Database.declare_func eng.db func
       with Invalid_argument msg -> error "%s" msg);
      let env = compile_env eng in
      (match merge with
       | Schema.Merge_expr e -> Hashtbl.replace eng.merge_exprs name (Compile.compile_merge_expr env func e)
       | Schema.Merge_union | Schema.Merge_panic -> ());
      (match default with
       | Schema.Default_expr e ->
         let ce, _ = Compile.compile_closed_expr env ~expected:ret_ty e in
         Hashtbl.replace eng.default_exprs name ce
       | Schema.Default_fresh | Schema.Default_panic -> ());
      log_decl eng (Ast.Decl_function decl))

let declare_relation eng name arg_tys =
  declare_function eng
    {
      Ast.fname = name;
      arg_tys;
      ret_ty = Ast.T_name "Unit";
      merge = Ast.Merge_default;
      default = None;
      cost = None;
    }

let declare_datatype eng name variants =
  declare_sort eng name;
  List.iter
    (fun (cname, args) ->
      declare_function eng
        {
          Ast.fname = cname;
          arg_tys = args;
          ret_ty = Ast.T_name name;
          merge = Ast.Merge_default;
          default = None;
          cost = None;
        })
    variants

let add_rule eng (rule : Ast.rule) =
  wrap_compile (fun () ->
      let name =
        match rule.Ast.rule_name with
        | Some n -> n
        | None ->
          eng.rule_counter <- eng.rule_counter + 1;
          Printf.sprintf "rule_%d" eng.rule_counter
      in
      let crule = Compile.compile_rule (compile_env eng) ~name rule in
      let ruleset = Option.value rule.Ast.ruleset ~default:"" in
      if ruleset <> "" && not (List.mem ruleset eng.rulesets) then
        error "unknown ruleset %s (declare it with (ruleset %s))" ruleset ruleset;
      let rt =
        {
          rr_name = name;
          rr_ruleset = ruleset;
          rr_rule = crule;
          rr_last_stamp = 0;
          rr_times_banned = 0;
          rr_banned_until = 0;
          rr_plan_sig = "";
          rr_plans = [||];
          rr_compiled = [||];
        }
      in
      eng.rules <- eng.rules @ [ rt ];
      log_decl eng (Ast.Add_rule rule))

let declare_ruleset eng name =
  if List.mem name eng.rulesets then error "ruleset %s is already declared" name;
  eng.rulesets <- name :: eng.rulesets;
  log_decl eng (Ast.Decl_ruleset name)

let rewrite_counter = ref 0

let add_rewrite eng ?(conds = []) ?ruleset lhs rhs =
  incr rewrite_counter;
  let v = Printf.sprintf "__rewrite_%d" !rewrite_counter in
  add_rule eng
    {
      Ast.rule_name = None;
      query = conds @ [ Ast.Eq (Ast.Var v, lhs) ];
      actions = [ Ast.Union (Ast.Var v, rhs) ];
      ruleset;
    }

(* ------------------------------------------------------------------ *)
(* Typed fact API                                                      *)
(* ------------------------------------------------------------------ *)

let find_table_exn eng name =
  match Database.find_func eng.db (Symbol.intern name) with
  | Some t -> t
  | None -> error "unknown function %s" name

let eval_call eng name args =
  let table = find_table_exn eng name in
  eval_expr eng (Array.of_list args)
    (Compile.C_func
       (Table.func table, Array.of_list (List.mapi (fun i _ -> Compile.C_var i) args)))

let set_fact eng name args value =
  Database.set eng.db (find_table_exn eng name) (Array.of_list args) value

let union_values eng a b = Database.union eng.db a b
let rebuild eng = Database.rebuild eng.db

let lookup_fact eng name args =
  Database.lookup eng.db (find_table_exn eng name) (Array.of_list args)

let check_facts eng facts =
  wrap_compile (fun () ->
      Database.rebuild eng.db;
      match Compile.compile_query (compile_env eng) facts with
      | q ->
        (* one-shot query: replan against current statistics, no caching *)
        let q =
          if Array.length q.Compile.atoms = 0 then q
          else Compile.replan q ~cards:(atom_cards eng q)
        in
        Join.exists eng.db q
      | exception Compile.Unsat -> false)

(* Deterministic dump of every rule's cost-based plan against current table
   statistics: the full-range plan in detail plus the chosen variable order
   of each semi-naïve delta variant. Read-only (statistics queries only). *)
let explain_plans eng : string =
  let buf = Buffer.create 256 in
  List.iter
    (fun r ->
      let q = r.rr_rule.Compile.cr_query in
      let n_atoms = Array.length q.Compile.atoms in
      let ruleset = if r.rr_ruleset = "" then "default" else r.rr_ruleset in
      Buffer.add_string buf (Printf.sprintf "rule %s (ruleset %s)\n" r.rr_name ruleset);
      let lowering_of plan =
        if eng.compiled_plans then Join.describe_lowering ~fast_paths:eng.fast_paths plan
        else "interpreter (compiled plans disabled)"
      in
      if n_atoms = 0 then Buffer.add_string buf "  (no atoms)\n"
      else begin
        let cards = atom_cards eng q in
        let full = Compile.replan q ~cards in
        let dump =
          Format.asprintf "%a" (Compile.pp_plan ~cards ~lowering:(lowering_of full)) full
        in
        List.iter
          (fun line -> Buffer.add_string buf ("  " ^ line ^ "\n"))
          (String.split_on_char '\n' dump);
        let low = r.rr_last_stamp in
        for j = 0 to n_atoms - 1 do
          let delta = Table.entries_since (table_of eng q.Compile.atoms.(j).Compile.a_func) low in
          let cards' = Array.mapi (fun i c -> if i = j then delta_card c delta else c) cards in
          let variant = Compile.replan q ~cards:cards' in
          Buffer.add_string buf
            (Printf.sprintf "  delta[%d] (%d rows) order:%s  [%s]\n" j delta
               (String.concat ""
                  (List.map
                     (fun v -> " " ^ q.Compile.var_names.(v))
                     (Array.to_list variant.Compile.order)))
               (lowering_of variant))
        done
      end)
    eng.rules;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The run loop                                                        *)
(* ------------------------------------------------------------------ *)

let describe_stop_reason = function
  | Saturated -> "saturated"
  | Iteration_limit -> "iteration limit"
  | Node_limit n -> Printf.sprintf "node limit, %d tuples" n
  | Time_limit s -> Printf.sprintf "time limit after %.2fs" s
  | Memory_limit b -> Printf.sprintf "memory limit, %d modeled bytes" b
  | Until_satisfied -> "until condition satisfied"

(* Raised cooperatively inside the run loop when a budget trips. Never
   escapes run_iterations. *)
exception Stop_run of stop_reason

(* The search units of one rule: (plan slot, per-atom stamp ranges) pairs,
   in ascending variant order. One full-range unit when semi-naïve doesn't
   apply; otherwise the m delta variants — atom j sees rows new since the
   rule last ran, the others see everything. A match whose rows are new in
   k atoms is found k times; egglog actions are idempotent (set/union), so
   the duplicates are harmless, and the scheme lets every variant reuse
   the same cached full-table tries (only the tiny delta trie differs). *)
let rule_variants eng (r : rt_rule) : (int * Join.stamp_range array) list =
  let n_atoms = Array.length r.rr_rule.Compile.cr_query.Compile.atoms in
  let low = r.rr_last_stamp in
  if (not eng.seminaive) || low = 0 || n_atoms = 0 then
    [ (n_atoms, Array.make n_atoms Join.all_rows) ]
  else
    List.init n_atoms (fun j ->
        ( j,
          Array.init n_atoms (fun i ->
              if i = j then { Join.lo = low; hi = max_int } else Join.all_rows) ))

(* Search one variant; matches come back in reversed discovery order (the
   natural cons order). Read-only over the database and the frozen cache,
   so variants can run on worker domains. *)
let search_variant eng ?cache (plans : Compile.cquery array)
    (compiled : Join.compiled array) ((j, ranges) : int * Join.stamp_range array) :
    Value.t array list =
  let acc = ref [] in
  let emit b = acc := Array.copy b :: !acc in
  if j < Array.length compiled then Join.search_compiled eng.db ?cache compiled.(j) ~ranges emit
  else Join.search eng.db ?cache ~fast_paths:eng.fast_paths plans.(j) ~ranges emit;
  !acc

(* Merge per-variant results (ascending variant order, each in reversed
   discovery order) into one rule's match list. [vm @ acc] over ascending
   variants reproduces exactly the order the old single-accumulator serial
   loop produced — rev(last variant) ++ ... ++ rev(first variant) — which
   is what keeps parallel runs bit-identical to serial ones. *)
let merge_variant_matches per_variant =
  List.fold_left (fun acc vm -> vm @ acc) [] per_variant

(* Fresh symbols interned by primitives during the (frozen-database) search
   phase carry provisional ids (see {!Symbol.begin_speculative}); rewrite
   them to real ids in a canonical order — ascending variant, then row
   discovery order, then within a row the primitive schedule order (the
   order a serial evaluation first computes each value) — so id assignment
   is identical at any jobs count. Buffers are freshly allocated per
   variant, so in-place mutation is safe. *)
let resolve_variant_matches (plan : Compile.cquery) (rows : Value.t array list) :
    Value.t array list =
  if not (Symbol.speculating ()) then rows
  else begin
    let prim_slots =
      List.concat_map
        (List.filter_map (fun (p : Compile.prim_app) ->
             match p.Compile.p_out with
             | Compile.A_var i -> Some i
             | Compile.A_const _ -> None))
        (Array.to_list plan.Compile.schedule)
    in
    let resolve_row row =
      List.iter
        (fun i ->
          if i < Array.length row then row.(i) <- Value.map_symbols Symbol.resolve row.(i))
        prim_slots;
      Array.iteri (fun i v -> row.(i) <- Value.map_symbols Symbol.resolve v) row
    in
    (* buffers hold reversed discovery order; resolve in discovery order *)
    List.iter resolve_row (List.rev rows);
    rows
  end

let search_matches eng ?cache (r : rt_rule) : Value.t array list =
  let cache = if eng.index_caching then cache else None in
  let plans = plans_for eng r in
  let compiled = r.rr_compiled in
  merge_variant_matches
    (List.map
       (fun ((j, _) as v) ->
         resolve_variant_matches plans.(j) (search_variant eng ?cache plans compiled v))
       (rule_variants eng r))

let apply_match eng (r : rt_rule) (binding : Value.t array) =
  eng.current_reason <- Proof_forest.Rule r.rr_name;
  let crule = r.rr_rule in
  let slots = Array.make crule.Compile.cr_slots Value.VUnit in
  Array.blit binding 0 slots 0 (Array.length binding);
  (* Re-canonicalize: earlier matches in this application phase may have
     unioned ids that appear in this binding. *)
  for i = 0 to Array.length binding - 1 do
    slots.(i) <- Database.canon eng.db slots.(i)
  done;
  Array.iter (exec_action eng slots) crule.Compile.cr_actions

let any_banned eng = List.exists (fun r -> r.rr_banned_until > eng.iteration) eng.rules

type phase_times = {
  mutable ph_search : float;
  mutable ph_apply : float;
  mutable ph_rebuild : float;
  mutable ph_matches : int;
  mutable ph_delta : int;
}

(* Per-rule accounting across one run. [ra_inserted] counts database change
   events (inserts + unions) attributable to the rule's actions;
   [ra_deduplicated] counts matches whose actions changed nothing — the
   semi-naïve duplicates and already-derived facts. *)
type rule_acc = {
  mutable ra_matches : int;
  mutable ra_inserted : int;
  mutable ra_deduplicated : int;
  mutable ra_bytes : int;  (* modeled byte growth from the rule's apply phases *)
}

let rule_acc_for tbl name =
  match Hashtbl.find_opt tbl name with
  | Some acc -> acc
  | None ->
    let acc = { ra_matches = 0; ra_inserted = 0; ra_deduplicated = 0; ra_bytes = 0 } in
    Hashtbl.replace tbl name acc;
    acc

(* Re-raise join invariant failures with the rule that triggered them. *)
let with_rule_context (r : rt_rule) f =
  try f ()
  with Join.Internal_error { in_func; detail } ->
    let where =
      match in_func with
      | Some fn -> Printf.sprintf " (function %s)" (Symbol.name fn)
      | None -> ""
    in
    error "internal error in rule %s%s: %s" r.rr_name where detail

let no_budget_check ~within_iteration:_ = ()

(* ------------------------------------------------------------------ *)
(* Parallel apply: optimistic staged traces                            *)
(* ------------------------------------------------------------------ *)

(* The apply phase parallelizes by optimistic staging: worker domains
   evaluate matches against the frozen post-search database, recording
   every read performed and every effect that would be applied as an
   event trace. The caller then replays matches in exactly the serial
   discovery order: each trace is validated — every recorded read must
   still produce the recorded value against the live database (plus the
   trace's own simulated effects), every modeled union winner must still
   win, and every id the evaluation relied on must still be canonical —
   and commits through the ordinary [Database] mutators. Any mismatch,
   or a construct staging cannot model (user merge expressions, panics),
   falls back to the serial [apply_match] for that match. Either way a
   match's effects are byte-identical to what the serial loop would have
   done at that point, so union-find structure, timestamps, fresh ids
   and interned symbols come out identical at any jobs count. *)

(* Worker-allocated fresh ids are placeholders from a disjoint high range
   (mirroring Symbol's speculative ids); validation substitutes the ids
   the serial allocation order will actually produce. *)
let stage_ph_base = 0x2000_0000

type sev =
  | SE_lookup of Table.t * Value.t array * Value.t option  (* observed read *)
  | SE_fresh of Symbol.t * int  (* sort, placeholder (after validation: predicted id) *)
  | SE_set of Table.t * Value.t array * Value.t * Value.t option * int option
      (* key, new value, prior row value, modeled merge-union winner *)
  | SE_union of Value.t * Value.t * int option  (* modeled winner; None = already equal *)
  | SE_delete of Table.t * Value.t array
  | SE_prim of Primitives.prim * Value.t array * Value.t
      (* a primitive call whose arguments or result carried provisional
         content (placeholder ids / provisional symbols): validation
         re-runs it with the real values and compares, which both checks
         that the provisional numbering leaked nothing order-dependent
         into the result and interns any fresh strings for real at
         exactly the position the serial evaluation would *)

type staged_match = {
  sm_evs : sev list;  (* evaluation order *)
  sm_ids : int list;  (* every snapshot id the evaluation relied on *)
}

exception Stage_bail

type stage_ctx = {
  sc_eng : t;
  mutable sc_evs : sev list;  (* reversed *)
  sc_overlay : (int, Value.t option Value.Key_tbl.t) Hashtbl.t;  (* Table.uid -> staged rows *)
  sc_uparent : (int, int) Hashtbl.t;  (* staged unions: loser -> winner *)
  sc_usize : (int, int) Hashtbl.t;  (* staged class sizes at staged winners *)
  sc_ids : (int, unit) Hashtbl.t;
  mutable sc_fresh : int;  (* placeholders handed out *)
}

let sc_record sc ev = sc.sc_evs <- ev :: sc.sc_evs

let sc_note_id sc i =
  if i < stage_ph_base && not (Hashtbl.mem sc.sc_ids i) then Hashtbl.replace sc.sc_ids i ()

let rec sc_find sc i =
  match Hashtbl.find_opt sc.sc_uparent i with Some p -> sc_find sc p | None -> i

(* Worker-side canonicalization: inputs are canonical w.r.t. the frozen
   union-find (the iteration rebuilt before searching), so only staged
   unions apply — but every id is noted, because validation must confirm
   it was not dethroned by an earlier committed match before trusting
   this trace. Never touches the real union-find (no path compression
   off-thread). *)
let rec sc_canon sc (v : Value.t) =
  match v with
  | Value.VId i ->
    sc_note_id sc i;
    let r = sc_find sc i in
    sc_note_id sc r;
    Value.VId r
  | Value.VSet xs -> Value.mk_set (List.map (sc_canon sc) xs)
  | Value.VVec xs -> Value.VVec (List.map (sc_canon sc) xs)
  | Value.VUnit | Value.VBool _ | Value.VInt _ | Value.VRat _ | Value.VStr _ -> v

let sc_size sc i =
  match Hashtbl.find_opt sc.sc_usize i with
  | Some s -> s
  | None -> if i >= stage_ph_base then 1 else Database.class_size sc.sc_eng.db i

(* Mirror Union_find.union's winner rule (larger class wins, ties keep
   the first argument's root) on the staged view. *)
let sc_union sc a b =
  if a = b then None
  else begin
    let sa = sc_size sc a and sb = sc_size sc b in
    let winner, loser = if sa >= sb then (a, b) else (b, a) in
    Hashtbl.replace sc.sc_uparent loser winner;
    Hashtbl.replace sc.sc_usize winner (sa + sb);
    Some winner
  end

let sc_overlay_tbl sc table =
  let uid = Table.uid table in
  match Hashtbl.find_opt sc.sc_overlay uid with
  | Some t -> t
  | None ->
    let t = Value.Key_tbl.create 8 in
    Hashtbl.replace sc.sc_overlay uid t;
    t

(* Staged read: the overlay shadows the frozen base table ([Some] =
   staged row, [None] = staged delete); base rows only need the staged
   unions applied on the way out. *)
let sc_get sc table key =
  match Value.Key_tbl.find_opt (sc_overlay_tbl sc table) key with
  | Some (Some v) -> Some (sc_canon sc v)
  | Some None -> None
  | None -> (
    match Table.get table key with
    | Some row -> Some (sc_canon sc row.Table.value)
    | None -> None)

(* Provisional content: placeholder ids and provisional symbols have
   nondeterministic numeric values, which a primitive could observe
   through comparisons or ordering. A primitive call touching any is
   recorded for a validation-time re-run with the real values. *)
let rec value_unstable (v : Value.t) =
  match v with
  | Value.VId i -> i >= stage_ph_base
  | Value.VStr s -> Symbol.is_speculative s
  | Value.VSet xs | Value.VVec xs -> List.exists value_unstable xs
  | Value.VUnit | Value.VBool _ | Value.VInt _ | Value.VRat _ -> false

(* Staged evaluation: mirrors [eval_expr]/[exec_action] step for step —
   same evaluation order, same canonicalization points — but records
   events instead of mutating. *)
let rec stage_expr sc (slots : Value.t array) (e : Compile.cexpr) : Value.t =
  match e with
  | Compile.C_var i -> slots.(i)
  | Compile.C_const v -> v
  | Compile.C_func (f, args) -> (
    let vals = Array.map (stage_expr sc slots) args in
    let table = table_of sc.sc_eng f in
    let key = Array.map (sc_canon sc) vals in
    match sc_get sc table key with
    | Some v ->
      sc_record sc (SE_lookup (table, key, Some v));
      v
    | None ->
      sc_record sc (SE_lookup (table, key, None));
      let v =
        match f.Schema.default with
        | Schema.Default_fresh -> (
          match f.Schema.ret_ty with
          | Ty.Sort s ->
            let ph = stage_ph_base + sc.sc_fresh in
            sc.sc_fresh <- sc.sc_fresh + 1;
            sc_record sc (SE_fresh (s, ph));
            Value.VId ph
          | _ -> raise Stage_bail)
        | Schema.Default_expr _ ->
          stage_expr sc [||] (Hashtbl.find sc.sc_eng.default_exprs f.Schema.name)
        | Schema.Default_panic -> raise Stage_bail
      in
      stage_set sc table key v;
      sc_canon sc v)
  | Compile.C_prim (p, args) -> (
    let vals = Array.map (fun a -> sc_canon sc (stage_expr sc slots a)) args in
    match p.Primitives.impl vals with
    | Some v ->
      (* Stable real inputs give a stable result (primitives are pure);
         anything provisional gets re-checked with real values at
         validation time. *)
      if Array.exists value_unstable vals || value_unstable v then
        sc_record sc (SE_prim (p, vals, v));
      v
    | None -> raise Stage_bail)

(* Mirror [Database.set]: canonicalize at write time (a default
   expression evaluated since the key was built may have staged unions),
   then model the merge. Only union merges are stageable. *)
and stage_set sc table key value =
  let key = Array.map (sc_canon sc) key in
  let value = sc_canon sc value in
  let prior = sc_get sc table key in
  let ov = sc_overlay_tbl sc table in
  match prior with
  | None ->
    sc_record sc (SE_set (table, key, value, None, None));
    Value.Key_tbl.replace ov key (Some value)
  | Some old_v ->
    if Value.equal old_v value then sc_record sc (SE_set (table, key, value, prior, None))
    else (
      match (Table.func table).Schema.merge with
      | Schema.Merge_union -> (
        match (old_v, value) with
        | Value.VId x, Value.VId y -> (
          match sc_union sc x y with
          | Some w ->
            sc_record sc (SE_set (table, key, value, prior, Some w));
            Value.Key_tbl.replace ov key (Some (Value.VId w))
          | None -> raise Stage_bail)
        | _ -> raise Stage_bail)
      | Schema.Merge_panic | Schema.Merge_expr _ -> raise Stage_bail)

and stage_action sc (slots : Value.t array) (a : Compile.caction) =
  match a with
  | Compile.C_set (f, args, value) ->
    let vals = Array.map (stage_expr sc slots) args in
    let v = stage_expr sc slots value in
    stage_set sc (table_of sc.sc_eng f) vals v
  | Compile.C_union (e1, e2) -> (
    let v1 = stage_expr sc slots e1 and v2 = stage_expr sc slots e2 in
    match (sc_canon sc v1, sc_canon sc v2) with
    | Value.VId x, Value.VId y ->
      sc_record sc (SE_union (Value.VId x, Value.VId y, sc_union sc x y))
    | va, vb ->
      if Value.equal va vb then sc_record sc (SE_union (va, vb, None)) else raise Stage_bail)
  | Compile.C_let (slot, e) -> slots.(slot) <- stage_expr sc slots e
  | Compile.C_do e -> ignore (stage_expr sc slots e)
  | Compile.C_panic _ -> raise Stage_bail
  | Compile.C_delete (f, args) ->
    let vals = Array.map (stage_expr sc slots) args in
    let table = table_of sc.sc_eng f in
    let key = Array.map (sc_canon sc) vals in
    sc_record sc (SE_delete (table, key));
    Value.Key_tbl.replace (sc_overlay_tbl sc table) key None

(* Evaluate one match against the frozen database, producing a trace —
   or [None] when anything it needs cannot be modeled off-thread (the
   replay then runs the match serially, reproducing the serial effects
   including any error the actions would raise). *)
let stage_match eng (r : rt_rule) (binding : Value.t array) : staged_match option =
  let sc =
    {
      sc_eng = eng;
      sc_evs = [];
      sc_overlay = Hashtbl.create 4;
      sc_uparent = Hashtbl.create 4;
      sc_usize = Hashtbl.create 4;
      sc_ids = Hashtbl.create 16;
      sc_fresh = 0;
    }
  in
  match
    let crule = r.rr_rule in
    let slots = Array.make crule.Compile.cr_slots Value.VUnit in
    Array.blit binding 0 slots 0 (Array.length binding);
    for i = 0 to Array.length binding - 1 do
      slots.(i) <- sc_canon sc slots.(i)
    done;
    Array.iter (stage_action sc slots) crule.Compile.cr_actions
  with
  | () ->
    Some
      {
        sm_evs = List.rev sc.sc_evs;
        sm_ids = Hashtbl.fold (fun i () acc -> i :: acc) sc.sc_ids [];
      }
  | exception _ -> None

exception Stage_reject

(* Validate a staged trace against the live database: every id relied on
   must still be canonical (checked before anything else), every recorded
   read must come out identical through the trace's own simulated
   effects, and every modeled union winner must still win given current
   class sizes. Returns the trace with placeholders substituted by the
   ids serial allocation will produce and provisional symbols resolved in
   recorded order — exactly where the serial evaluation would intern them.
   Raises [Stage_reject] on any mismatch, before any database mutation. *)
let validate_staged eng (sm : staged_match) : sev list =
  let db = eng.db in
  List.iter (fun i -> if not (Database.is_canonical_id db i) then raise Stage_reject) sm.sm_ids;
  let base_ids = Database.n_ids db in
  if base_ids >= stage_ph_base then raise Stage_reject;
  let phmap = Hashtbl.create 4 in
  List.iter
    (function
      | SE_fresh (_, ph) -> Hashtbl.replace phmap ph (base_ids + Hashtbl.length phmap)
      | _ -> ())
    sm.sm_evs;
  let subst_id i = match Hashtbl.find_opt phmap i with Some j -> j | None -> i in
  let rec subst (v : Value.t) =
    match v with
    | Value.VId i -> Value.VId (subst_id i)
    | Value.VSet xs -> Value.mk_set (List.map subst xs)
    | Value.VVec xs -> Value.VVec (List.map subst xs)
    | _ -> v
  in
  let resolve_v v = Value.map_symbols Symbol.resolve (subst v) in
  (* Simulation of this trace's own effects on top of the live database:
     a local union view and per-table overlays, mirroring the worker's. *)
  let sparent = Hashtbl.create 4 in
  let rec sfind i = match Hashtbl.find_opt sparent i with Some p -> sfind p | None -> i in
  let ssize = Hashtbl.create 4 in
  let size_of i =
    match Hashtbl.find_opt ssize i with
    | Some s -> s
    | None -> if i >= base_ids then 1 else Database.class_size db i
  in
  let sim_union x y =
    if x = y then None
    else begin
      let sx = size_of x and sy = size_of y in
      let w, l = if sx >= sy then (x, y) else (y, x) in
      Hashtbl.replace sparent l w;
      Hashtbl.replace ssize w (sx + sy);
      Some w
    end
  in
  let rec vcanon (v : Value.t) =
    match v with
    | Value.VId i ->
      let r =
        if i >= base_ids then i
        else
          match Database.canon db (Value.VId i) with
          | Value.VId r -> r
          | _ -> raise Stage_reject
      in
      Value.VId (sfind r)
    | Value.VSet xs -> Value.mk_set (List.map vcanon xs)
    | Value.VVec xs -> Value.VVec (List.map vcanon xs)
    | _ -> v
  in
  let overlays = Hashtbl.create 4 in
  let overlay_tbl table =
    let uid = Table.uid table in
    match Hashtbl.find_opt overlays uid with
    | Some t -> t
    | None ->
      let t = Value.Key_tbl.create 8 in
      Hashtbl.replace overlays uid t;
      t
  in
  let sim_get table key =
    match Value.Key_tbl.find_opt (overlay_tbl table) key with
    | Some (Some v) -> Some (vcanon v)
    | Some None -> None
    | None -> (
      match Table.get table key with
      | Some row -> Some (vcanon row.Table.value)
      | None -> None)
  in
  let check_opt got expect =
    match (got, expect) with
    | None, None -> ()
    | Some a, Some b when Value.equal a b -> ()
    | _ -> raise Stage_reject
  in
  let out = ref [] in
  List.iter
    (fun ev ->
      let ev' =
        match ev with
        | SE_prim (p, vals, result) -> (
          (* Re-run with the real values: the impl interns any fresh
             strings for real — exactly where serial evaluation would —
             and the comparison rejects any result the provisional
             numbering ordered differently. Resolve the recorded result
             only after the re-run, so its symbols exist. *)
          let vals = Array.map resolve_v vals in
          match p.Primitives.impl vals with
          | Some v when Value.equal v (resolve_v result) -> SE_prim (p, vals, v)
          | Some _ | None -> raise Stage_reject)
        | SE_fresh (sort, ph) -> SE_fresh (sort, subst_id ph)
        | SE_lookup (table, key, expect) ->
          let key = Array.map resolve_v key in
          let expect = Option.map resolve_v expect in
          check_opt (sim_get table key) expect;
          SE_lookup (table, key, expect)
        | SE_set (table, key, value, prior, winner) ->
          let key = Array.map resolve_v key in
          let value = resolve_v value in
          let prior = Option.map resolve_v prior in
          let winner = Option.map subst_id winner in
          let cur = sim_get table key in
          check_opt cur prior;
          let ov = overlay_tbl table in
          (match (cur, winner) with
           | None, None -> Value.Key_tbl.replace ov key (Some value)
           | Some old_v, None -> if not (Value.equal old_v value) then raise Stage_reject
           | Some (Value.VId x), Some w -> (
             match value with
             | Value.VId y ->
               if sim_union x y <> Some w then raise Stage_reject;
               Value.Key_tbl.replace ov key (Some (Value.VId w))
             | _ -> raise Stage_reject)
           | None, Some _ | Some _, Some _ -> raise Stage_reject);
          SE_set (table, key, value, prior, winner)
        | SE_union (a, b, winner) ->
          let a = resolve_v a and b = resolve_v b in
          let winner = Option.map subst_id winner in
          (match (a, b) with
           | Value.VId x, Value.VId y -> if sim_union x y <> winner then raise Stage_reject
           | va, vb -> if winner <> None || not (Value.equal va vb) then raise Stage_reject);
          SE_union (a, b, winner)
        | SE_delete (table, key) ->
          let key = Array.map resolve_v key in
          Value.Key_tbl.replace (overlay_tbl table) key None;
          SE_delete (table, key)
      in
      out := ev' :: !out)
    sm.sm_evs;
  List.rev !out

(* Commit a validated trace through the ordinary mutators, which
   re-derive change counting, row stamps, proof-forest records and merge
   resolution natively — validation guaranteed each re-derivation lands
   exactly where the trace said it would. *)
let commit_staged eng (evs : sev list) =
  let db = eng.db in
  List.iter
    (fun ev ->
      match ev with
      | SE_lookup _ | SE_prim _ -> ()
      | SE_fresh (sort, predicted) -> (
        match Database.fresh_id db sort with
        | Value.VId i when i = predicted -> ()
        | _ -> error "internal error: staged fresh id diverged from serial allocation order")
      | SE_set (table, key, value, _, _) -> Database.set db table key value
      | SE_union (a, b, _) -> ignore (Database.union db ~reason:eng.current_reason a b)
      | SE_delete (table, key) -> Database.remove db table key)
    evs

(* Replay one match from its staged trace — or fall back to the serial
   applier, which re-derives the serial effects from scratch. *)
let apply_staged_match eng (r : rt_rule) (binding : Value.t array) staged =
  match staged with
  | None ->
    Telemetry.bump c_staged_fallbacks 1;
    apply_match eng r binding
  | Some sm -> (
    match validate_staged eng sm with
    | evs ->
      eng.current_reason <- Proof_forest.Rule r.rr_name;
      Telemetry.bump c_staged_commits 1;
      commit_staged eng evs
    | exception Stage_reject ->
      Telemetry.bump c_staged_fallbacks 1;
      apply_match eng r binding)

(* One rule's slice of the apply phase — all the accounting the serial
   loop does, parameterized by how a single match is applied so the
   serial and staged-replay paths cannot drift apart. *)
let apply_rule eng ~budget_check ~rule_accs ~t0 (ph : phase_times) (r : rt_rule) matches
    apply_one =
  let db = eng.db in
  let rule_t0 = if Telemetry.is_enabled () then Telemetry.now () else 0.0 in
  let n_matches = List.length matches in
  ph.ph_matches <- ph.ph_matches + n_matches;
  Telemetry.bump c_matches n_matches;
  let acc =
    match rule_accs with
    | Some tbl ->
      let acc = rule_acc_for tbl r.rr_name in
      acc.ra_matches <- acc.ra_matches + n_matches;
      Some acc
    | None -> None
  in
  let bytes_before = match acc with Some _ -> Database.modeled_bytes db | None -> 0 in
  List.iteri
    (fun mi binding ->
      let changes_before = Database.change_counter db in
      with_rule_context r (fun () -> apply_one mi binding);
      let delta = Database.change_counter db - changes_before in
      if delta = 0 then Telemetry.bump c_dup 1 else Telemetry.bump c_new delta;
      (match acc with
       | Some acc ->
         if delta = 0 then acc.ra_deduplicated <- acc.ra_deduplicated + 1
         else acc.ra_inserted <- acc.ra_inserted + delta
       | None -> ());
      budget_check ~within_iteration:true)
    matches;
  (match acc with
   | Some acc -> acc.ra_bytes <- acc.ra_bytes + (Database.modeled_bytes db - bytes_before)
   | None -> ());
  r.rr_last_stamp <- t0 + 1;
  if Telemetry.is_enabled () then begin
    Telemetry.hist_record h_rule_matches (float_of_int n_matches);
    Telemetry.hist_record
      (Telemetry.histogram ("rule.apply_s." ^ r.rr_name))
      (Telemetry.now () -. rule_t0)
  end

(* Minimum total matches before the staging fan-out pays for itself. *)
let apply_par_min_matches = 8

(* Fan the apply phase across the pool: workers stage traces against the
   frozen database, then the caller replays every match in discovery
   order — rules in scheduler order, matches in search order, exactly the
   serial loop's order. Sharding by hash(rule name, binding) is purely a
   work partition; it can never affect results, only which domain stages
   which trace. *)
let parallel_apply eng ~jobs ~budget_check ~rule_accs ~t0 (ph : phase_times)
    (to_apply : (rt_rule * Value.t array list) list) =
  let rules = Array.of_list to_apply in
  let bindings = Array.map (fun (_, ms) -> Array.of_list ms) rules in
  let staged = Array.map (fun ms -> Array.make (Array.length ms) None) bindings in
  let pool = Pool.global ~workers:(jobs - 1) in
  Telemetry.record_max c_apply_domains (min jobs (1 + Pool.size pool));
  let n_shards = 8 * jobs in
  let shards = Array.make n_shards [] in
  Array.iteri
    (fun ri (r, _) ->
      let hr = Hashtbl.hash r.rr_name in
      Array.iteri
        (fun mi binding ->
          let h = Array.fold_left (fun h v -> (h * 31) + Value.hash v) hr binding in
          let s = h land max_int mod n_shards in
          shards.(s) <- (ri, mi) :: shards.(s))
        bindings.(ri))
    rules;
  let tasks =
    Array.of_list
      (List.filter_map
         (function [] -> None | cells -> Some (Array.of_list cells))
         (Array.to_list shards))
  in
  (* Primitives may intern fresh strings while staging runs on several
     domains at once; provisional ids keep the real assignment order out
     of the race (see Symbol). Replay resolves committed traces' symbols
     in serial order; fallbacks intern for real directly — both exactly
     where the serial evaluation would have interned. *)
  Symbol.begin_speculative ();
  Fun.protect ~finally:Symbol.clear_speculative (fun () ->
      ignore
        (Pool.run ~participants:(jobs - 1) pool
           (fun cells ->
             Array.iter
               (fun (ri, mi) ->
                 let r, _ = rules.(ri) in
                 staged.(ri).(mi) <- stage_match eng r bindings.(ri).(mi))
               cells)
           tasks);
      Symbol.pause_speculative ();
      Array.iteri
        (fun ri (r, matches) ->
          (* Durability injection point: crash with some rules' staged
             effects committed and the rest still pending. *)
          Fault.hit "engine.apply.staged";
          apply_rule eng ~budget_check ~rule_accs ~t0 ph r matches (fun mi binding ->
              apply_staged_match eng r binding staged.(ri).(mi)))
        rules)

(* ------------------------------------------------------------------ *)
(* Parallel rebuild: sharded stale-row scans                           *)
(* ------------------------------------------------------------------ *)

(* Minimum rows before a table's stale scan is worth a fan-out. *)
let rebuild_par_min_rows = 256

(* Sharded stale-row scan for one repair round (see
   [Database.repair_table]): snapshot the rows, fan the canonicality
   checks over the pool into a per-index flag array, then collect flagged
   rows in reverse iteration order — exactly the list the serial scan
   builds. The union-find is frozen while workers read; all repairs and
   the between-rounds fixpoint check stay serial on the caller. *)
let parallel_stale_scan eng ~jobs table =
  let n = Table.length table in
  if n < rebuild_par_min_rows then None
  else begin
    let db = eng.db in
    let rows = Table.rows_array table in
    let stale = Array.make (Array.length rows) false in
    let pool = Pool.global ~workers:(jobs - 1) in
    Telemetry.record_max c_rebuild_domains (min jobs (1 + Pool.size pool));
    Pool.run_ranges ~participants:(jobs - 1) pool ~n:(Array.length rows) (fun lo hi ->
        for i = lo to hi - 1 do
          let key, value = rows.(i) in
          if not (Array.for_all (Database.is_canon db) key && Database.is_canon db value)
          then stale.(i) <- true
        done);
    let acc = ref [] in
    Array.iteri (fun i flagged -> if flagged then acc := rows.(i) :: !acc) stale;
    Some !acc
  end

let rebuild_database eng ~jobs =
  if jobs > 1 then Database.rebuild ~stale_scan:(parallel_stale_scan eng ~jobs) eng.db
  else begin
    Telemetry.record_max c_rebuild_domains 1;
    Database.rebuild eng.db
  end

(* Fan one iteration's rule×variant search tasks across [jobs] domains.
   Serial pre-phase: plan selection ([plans_for] mutates the per-rule plan
   cache and reads Database.table_stats, which memoizes), then
   [Join.prebuild] warms every full-range cache entry the tasks will want.
   The cache is then frozen and the database is read-only for the whole
   fan-out, so tasks are pure; per-variant buffers are merged back in
   (rule, ascending variant) order, making the result — including match
   order — bit-identical to the serial path regardless of scheduling.
   [budget_check] fires once per rule, like the serial loop. *)
let parallel_search eng ~jobs ~budget_check (eligible : rt_rule list) :
    (rt_rule * Value.t array list) list =
  let cache = if eng.index_caching then Some eng.join_cache else None in
  let rules_variants =
    List.map
      (fun r ->
        let plans = plans_for eng r in
        (r, plans, r.rr_compiled, rule_variants eng r))
      eligible
  in
  let tasks =
    Array.of_list
      (List.concat_map
         (fun (r, plans, compiled, vs) -> List.map (fun v -> (r, plans, compiled, v)) vs)
         rules_variants)
  in
  Array.iter
    (fun (_, plans, _, (j, ranges)) ->
      Join.prebuild eng.db ?cache ~fast_paths:eng.fast_paths plans.(j) ~ranges)
    tasks;
  let pool = Pool.global ~workers:(jobs - 1) in
  Telemetry.record_max c_domains (min jobs (1 + Pool.size pool));
  Option.iter (fun c -> Join.set_frozen c true) cache;
  let results =
    Fun.protect
      ~finally:(fun () -> Option.iter (fun c -> Join.set_frozen c false) cache)
      (fun () ->
        Pool.run ~participants:(jobs - 1) pool
          (fun (r, plans, compiled, v) ->
            with_rule_context r (fun () -> search_variant eng ?cache plans compiled v))
          tasks)
  in
  let idx = ref 0 in
  List.map
    (fun (r, plans, _, vs) ->
      let per_variant =
        List.map
          (fun (j, _) ->
            let vm = results.(!idx) in
            incr idx;
            resolve_variant_matches plans.(j) vm)
          vs
      in
      let matches = merge_variant_matches per_variant in
      budget_check ~within_iteration:true;
      (r, matches))
    rules_variants

let run_one_iteration ?ruleset ?(budget_check = no_budget_check)
    ?(rule_accs : (string, rule_acc) Hashtbl.t option) ?(jobs = 1) ?(pressure = 0) eng
    (ph : phase_times) : bool =
  let in_scope r =
    match ruleset with None -> true | Some rs -> r.rr_ruleset = rs
  in
  (* Durability injection point: a crash here models process death in the
     middle of a long fixpoint run ("mid-run apply"). *)
  Fault.hit "engine.iteration";
  Telemetry.bump c_iterations 1;
  let db = eng.db in
  Database.rebuild db;
  eng.iteration <- eng.iteration + 1;
  (* Tier-2 memory pressure: before searching, ban the not-yet-banned rule
     whose apply phases have grown the modeled footprint the most this run,
     shedding the biggest allocator before the hard stop. Deterministic:
     byte deltas are modeled, ties break by declaration order. *)
  (match rule_accs with
   | Some tbl when pressure >= 2 ->
     let best = ref None in
     List.iter
       (fun r ->
         if in_scope r && r.rr_banned_until <= eng.iteration then
           match Hashtbl.find_opt tbl r.rr_name with
           | Some acc when acc.ra_bytes > 0 -> (
             match !best with
             | Some (_, b) when b >= acc.ra_bytes -> ()
             | Some _ | None -> best := Some (r, acc.ra_bytes))
           | Some _ | None -> ())
       eng.rules;
     (match !best with
      | Some (r, bytes) ->
        let ban_length =
          match eng.scheduler with Backoff { ban_length; _ } -> ban_length | Simple -> 5
        in
        r.rr_banned_until <- eng.iteration + (ban_length lsl r.rr_times_banned);
        r.rr_times_banned <- r.rr_times_banned + 1;
        Telemetry.bump c_pressure_bans 1;
        if Telemetry.is_enabled () then
          Telemetry.instant "engine.memory.pressure"
            [
              ("rule", Telemetry.Json.Str r.rr_name);
              ("reason", Telemetry.Json.Str "highest-byte-growth");
              ("bytes", Telemetry.Json.Int bytes);
              ("banned_until", Telemetry.Json.Int r.rr_banned_until);
            ]
      | None -> ())
   | Some _ | None -> ());
  let t0 = Database.timestamp db in
  let changes0 = Database.change_counter db in
  let log0 = Database.total_log_entries db in
  let cache = eng.join_cache in
  Join.clear_scratch cache;
  let dt_search, searched =
    Telemetry.timed_span "engine.search" (fun () ->
        let eligible =
          List.filter
            (fun r -> in_scope r && r.rr_banned_until <= eng.iteration)
            eng.rules
        in
        (* The database is read-only for the whole search; the one global
           mutation primitives can perform — interning a fresh string — is
           made speculative so both the serial and the parallel path assign
           real ids in the same canonical merge order. Provisional ids
           never survive the phase: buffers are resolved as they merge, and
           the pending table is dropped even on an abort. *)
        Symbol.begin_speculative ();
        Fun.protect ~finally:Symbol.clear_speculative (fun () ->
            if jobs <= 1 then begin
              Telemetry.record_max c_domains 1;
              List.map
                (fun r ->
                  let matches = with_rule_context r (fun () -> search_matches eng ~cache r) in
                  budget_check ~within_iteration:true;
                  (r, matches))
                eligible
            end
            else parallel_search eng ~jobs ~budget_check eligible))
  in
  ph.ph_search <- ph.ph_search +. dt_search;
  Telemetry.hist_record h_search dt_search;
  let to_apply =
    (* Under memory pressure the backoff policy tightens — match limits
       shrink 8x per tier — and applies even when the configured scheduler
       is Simple, so runs degrade to slower-but-bounded before the hard
       memory stop. Pressure is computed from modeled bytes, so the
       tightening is identical at any jobs count. *)
    let effective_scheduler =
      if pressure <= 0 then eng.scheduler
      else begin
        let base = match eng.scheduler with Backoff _ as b -> b | Simple -> backoff_default in
        match base with
        | Backoff { match_limit; ban_length } ->
          Backoff { match_limit = max 1 (match_limit lsr (3 * pressure)); ban_length }
        | Simple -> Simple
      end
    in
    List.filter_map
      (fun (r, matches) ->
        match effective_scheduler with
        | Simple -> Some (r, matches)
        | Backoff { match_limit; ban_length } ->
          let threshold = match_limit lsl r.rr_times_banned in
          if List.length matches > threshold then begin
            r.rr_banned_until <- eng.iteration + (ban_length lsl r.rr_times_banned);
            r.rr_times_banned <- r.rr_times_banned + 1;
            Telemetry.bump c_bans 1;
            if Telemetry.is_enabled () then
              Telemetry.instant "scheduler.ban"
                [
                  ("rule", Telemetry.Json.Str r.rr_name);
                  ( "reason",
                    Telemetry.Json.Str
                      (if pressure > 0 then "memory-pressure" else "match-limit-exceeded") );
                  ("matches", Telemetry.Json.Int (List.length matches));
                  ("threshold", Telemetry.Json.Int threshold);
                  ("banned_until", Telemetry.Json.Int r.rr_banned_until);
                  ("times_banned", Telemetry.Json.Int r.rr_times_banned);
                ];
            None
          end
          else Some (r, matches))
      searched
  in
  Database.bump_timestamp db;
  let total_matches = List.fold_left (fun acc (_, ms) -> acc + List.length ms) 0 to_apply in
  let dt_apply, () =
    Telemetry.timed_span "engine.apply" (fun () ->
        if
          jobs > 1
          && total_matches >= apply_par_min_matches
          && Database.n_ids db < stage_ph_base
        then parallel_apply eng ~jobs ~budget_check ~rule_accs ~t0 ph to_apply
        else begin
          Telemetry.record_max c_apply_domains 1;
          List.iter
            (fun (r, matches) ->
              apply_rule eng ~budget_check ~rule_accs ~t0 ph r matches (fun _ binding ->
                  apply_match eng r binding))
            to_apply
        end)
  in
  eng.current_reason <- Proof_forest.Asserted;
  ph.ph_apply <- ph.ph_apply +. dt_apply;
  Telemetry.hist_record h_apply dt_apply;
  let dt_rebuild, () =
    Telemetry.timed_span "engine.rebuild" (fun () -> rebuild_database eng ~jobs)
  in
  ph.ph_rebuild <- ph.ph_rebuild +. dt_rebuild;
  Telemetry.hist_record h_rebuild dt_rebuild;
  ph.ph_delta <- ph.ph_delta + (Database.total_log_entries db - log0);
  Database.change_counter db > changes0

(* Resolve a requested jobs count: [None] falls back to the session
   default, [0] means one domain per core, and the result is clamped to
   the telemetry shard space (64). *)
let effective_jobs eng jobs =
  let j = Option.value jobs ~default:eng.default_jobs in
  if j < 0 then error "jobs must be non-negative (0 = one per core), got %d" j;
  let j = if j = 0 then Domain.recommended_domain_count () else j in
  max 1 (min j 64)

let run_iterations ?ruleset ?node_limit ?time_limit ?memory_limit ?(until = []) ?jobs eng n =
  let jobs = effective_jobs eng jobs in
  let start_all = Telemetry.now () in
  let stats = ref [] in
  let total = ref 0.0 in
  let rule_accs : (string, rule_acc) Hashtbl.t = Hashtbl.create 16 in
  let bans0 = List.map (fun r -> (r, r.rr_times_banned)) eng.rules in
  (* Budgets are checked cooperatively: between iterations always, and
     within an iteration after every rule search and (throttled) after each
     applied match, so one explosive iteration cannot run away. Deadlines
     read the telemetry clock (monotonic), so a wall-clock jump can neither
     fire a time budget early nor let a run outlive it. The memory budget
     reads the modeled footprint — a pure function of database contents, so
     it trips at the same tick at any jobs count. *)
  let peak_bytes = ref 0 in
  let note_bytes () =
    let b = Database.modeled_bytes eng.db in
    if b > !peak_bytes then peak_bytes := b;
    b
  in
  (* Pressure level against the memory limit: 0 below tier 1, then 1, then
     2 at tier 2. Recomputed between iterations (never mid-iteration, so
     one iteration sees one consistent policy). *)
  let pressure_of bytes =
    match memory_limit with
    | None -> 0
    | Some m ->
      let t1, t2 = eng.pressure_tiers in
      let fb = float_of_int bytes and fm = float_of_int m in
      if fb >= t2 *. fm then 2 else if fb >= t1 *. fm then 1 else 0
  in
  let tick = ref 0 in
  let budget_check ~within_iteration =
    let due =
      if not within_iteration then true
      else begin
        incr tick;
        !tick land 15 = 0
      end
    in
    if due then begin
      (match node_limit with
       | Some k ->
         let rows = Database.total_rows eng.db in
         if rows > k then raise (Stop_run (Node_limit rows))
       | None -> ());
      (match memory_limit with
       | Some m ->
         let b = note_bytes () in
         if b > m then raise (Stop_run (Memory_limit b))
       | None -> ());
      match time_limit with
      | Some s ->
        let dt = Telemetry.now () -. start_all in
        if dt > s then raise (Stop_run (Time_limit dt))
      | None -> ()
    end
  in
  let until_holds () = until <> [] && check_facts eng until in
  let stop = ref Iteration_limit in
  let pressure = ref (pressure_of (note_bytes ())) in
  (try
     if until_holds () then raise (Stop_run Until_satisfied);
     budget_check ~within_iteration:false;
     for i = 1 to n do
       let ph =
         { ph_search = 0.0; ph_apply = 0.0; ph_rebuild = 0.0; ph_matches = 0; ph_delta = 0 }
       in
       let dt, outcome =
         Telemetry.timed_span "engine.iteration" (fun () ->
             let outcome =
               try
                 Ok
                   (run_one_iteration ?ruleset ~budget_check ~rule_accs ~jobs
                      ~pressure:!pressure eng ph)
               with Stop_run r -> Error r
             in
             (* A budget can trip mid-iteration; restore the canonical
                invariant before reporting (partial progress is kept, as in
                egg). *)
             (match outcome with
              | Error _ ->
                eng.current_reason <- Proof_forest.Asserted;
                Database.rebuild eng.db
              | Ok _ -> ());
             outcome)
       in
       total := !total +. dt;
       let bytes_now = note_bytes () in
       let p = pressure_of bytes_now in
       if p <> !pressure && Telemetry.is_enabled () then
         Telemetry.instant "engine.memory.pressure"
           [
             ("level", Telemetry.Json.Int p);
             ("bytes", Telemetry.Json.Int bytes_now);
             ( "limit",
               Telemetry.Json.Int (match memory_limit with Some m -> m | None -> 0) );
           ];
       pressure := p;
       let stat =
         {
           it_index = i;
           it_seconds = dt;
           it_rows = Database.total_rows eng.db;
           it_classes = Database.n_classes eng.db;
           it_changed = (match outcome with Ok c -> c | Error _ -> true);
           it_search_seconds = ph.ph_search;
           it_apply_seconds = ph.ph_apply;
           it_rebuild_seconds = ph.ph_rebuild;
           it_matches = ph.ph_matches;
           it_delta_rows = ph.ph_delta;
         }
       in
       stats := stat :: !stats;
       if Telemetry.is_enabled () then
         Telemetry.instant "engine.iteration.stat"
           [
             ("iter", Telemetry.Json.Int eng.iteration);
             ("rows", Telemetry.Json.Int stat.it_rows);
             ("classes", Telemetry.Json.Int stat.it_classes);
             ("delta_rows", Telemetry.Json.Int stat.it_delta_rows);
             ("matches", Telemetry.Json.Int stat.it_matches);
             ("changed", Telemetry.Json.Bool stat.it_changed);
           ];
       match outcome with
       | Error r -> raise (Stop_run r)
       | Ok changed ->
         if until_holds () then raise (Stop_run Until_satisfied);
         budget_check ~within_iteration:false;
         if (not changed) && not (any_banned eng) then raise (Stop_run Saturated)
     done
   with Stop_run r -> stop := r);
  let rule_stats =
    List.filter_map
      (fun (r, bans_before) ->
        let in_scope =
          match ruleset with None -> true | Some rs -> r.rr_ruleset = rs
        in
        if not in_scope then None
        else begin
          let acc =
            Option.value (Hashtbl.find_opt rule_accs r.rr_name)
              ~default:{ ra_matches = 0; ra_inserted = 0; ra_deduplicated = 0; ra_bytes = 0 }
          in
          Some
            {
              rs_rule = r.rr_name;
              rs_matches = acc.ra_matches;
              rs_inserted = acc.ra_inserted;
              rs_deduplicated = acc.ra_deduplicated;
              rs_bans = r.rr_times_banned - bans_before;
              rs_bytes = acc.ra_bytes;
            }
        end)
      bans0
  in
  if Telemetry.is_enabled () then
    List.iter
      (fun rs ->
        if rs.rs_matches > 0 || rs.rs_bans > 0 then
          Telemetry.instant "rule.stats"
            [
              ("rule", Telemetry.Json.Str rs.rs_rule);
              ("matches", Telemetry.Json.Int rs.rs_matches);
              ("inserted", Telemetry.Json.Int rs.rs_inserted);
              ("deduplicated", Telemetry.Json.Int rs.rs_deduplicated);
              ("bans", Telemetry.Json.Int rs.rs_bans);
            ])
      rule_stats;
  ignore (note_bytes ());
  Telemetry.record_max c_mem_modeled !peak_bytes;
  Telemetry.record_max c_mem_top_heap ((Gc.quick_stat ()).Gc.top_heap_words * (Sys.word_size / 8));
  let report =
    {
      iterations = List.rev !stats;
      stop_reason = !stop;
      rule_stats;
      total_seconds = !total;
      jobs;
      peak_memory_bytes = !peak_bytes;
    }
  in
  (match eng.report_sink with Some sink -> sink := report :: !sink | None -> ());
  report

(* Human-readable report: one summary line, a phase split, and — only when
   at least one rule was searched — a per-rule table. A run over an empty
   or fully-banned ruleset must not print a dangling table header. *)
let pp_run_report fmt (r : run_report) =
  let sum f = List.fold_left (fun acc s -> acc +. f s) 0.0 r.iterations in
  let sum_i f = List.fold_left (fun acc s -> acc + f s) 0 r.iterations in
  Format.fprintf fmt "%d iteration(s) in %.6fs (%s); %d match(es) applied%s@\n"
    (List.length r.iterations) r.total_seconds
    (describe_stop_reason r.stop_reason)
    (sum_i (fun s -> s.it_matches))
    (if r.jobs > 1 then Printf.sprintf "; %d jobs" r.jobs else "");
  if r.iterations <> [] then begin
    let search = sum (fun s -> s.it_search_seconds) in
    let apply = sum (fun s -> s.it_apply_seconds) in
    let rebuild = sum (fun s -> s.it_rebuild_seconds) in
    Format.fprintf fmt "  phases: search %.6fs, apply %.6fs, rebuild %.6fs, other %.6fs@\n"
      search apply rebuild
      (Float.max 0.0 (r.total_seconds -. search -. apply -. rebuild))
  end;
  if r.rule_stats <> [] then begin
    Format.fprintf fmt "  %-28s %10s %10s %8s %6s@\n" "rule" "matches" "inserted" "dedup"
      "bans";
    List.iter
      (fun rs ->
        Format.fprintf fmt "  %-28s %10d %10d %8d %6d@\n" rs.rs_rule rs.rs_matches
          rs.rs_inserted rs.rs_deduplicated rs.rs_bans)
      r.rule_stats
  end

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let total_rows eng = Database.total_rows eng.db
let n_classes eng = Database.n_classes eng.db
let table_size eng name = Table.length (find_table_exn eng name)

let extract_value eng v =
  Database.rebuild eng.db;
  Extract.extract eng.db v

let extract_candidates eng v ~max =
  Database.rebuild eng.db;
  Extract.candidates eng.db v ~max

(* Evaluate a ground expression without inserting anything (used by check
   to report values, per Fig. 3b's `(check (path 1 3)) ;; prints "20"`). *)
let rec ground_value eng (e : Ast.expr) : Value.t option =
  match e with
  | Ast.Lit v -> Some v
  | Ast.Var x -> (
    match Database.find_func eng.db (Symbol.intern x) with
    | Some table when Schema.arity (Table.func table) = 0 -> Database.lookup eng.db table [||]
    | Some _ | None -> None)
  | Ast.Call (fname, args) -> (
    let vals = List.map (ground_value eng) args in
    if List.exists Option.is_none vals then None
    else begin
      let vals = Array.of_list (List.map Option.get vals) in
      match Database.find_func eng.db (Symbol.intern fname) with
      | Some table -> Database.lookup eng.db table vals
      | None -> (
        match Primitives.find fname with
        | Some p -> p.Primitives.impl (Array.map (Database.canon eng.db) vals)
        | None -> None)
    end)

let exec_top_actions eng (actions : Ast.action list) =
  Fault.hit "engine.top-action";
  wrap_compile (fun () ->
      let cas, n_slots = Compile.compile_top_actions (compile_env eng) actions in
      let slots = Array.make (max n_slots 1) Value.VUnit in
      Array.iter (exec_action eng slots) cas;
      Database.rebuild eng.db)

let infer_closed_ty eng e =
  wrap_compile (fun () -> snd (Compile.compile_closed_expr (compile_env eng) e))

let rec run_command_inner eng (cmd : Ast.command) : string list =
  match cmd with
  | Ast.Decl_sort name ->
    declare_sort eng name;
    []
  | Ast.Decl_ruleset name ->
    declare_ruleset eng name;
    []
  | Ast.Run_schedule scheds ->
    let total = ref 0 in
    let resolve_rs = function
      | None -> None
      | Some rs ->
        if List.mem rs eng.rulesets then Some rs
        else error "unknown ruleset %s" rs
    in
    let rec exec (sched : Ast.schedule) : bool (* changed *) =
      match sched with
      | Ast.Sched_run (rs, n) ->
        (* Session-wide budgets also bound schedules; once a budget trips,
           each sub-run stops at its entry check with zero iterations, so
           saturate loops observe "no change" and terminate. *)
        let report =
          run_iterations ?ruleset:(resolve_rs rs) ?node_limit:eng.default_node_limit
            ?time_limit:eng.default_time_limit ?memory_limit:eng.default_memory_limit eng n
        in
        total := !total + List.length report.iterations;
        List.exists (fun s -> s.it_changed) report.iterations
      | Ast.Sched_seq scheds ->
        List.fold_left (fun acc s -> exec s || acc) false scheds
      | Ast.Sched_repeat (n, scheds) ->
        let changed = ref false in
        for _ = 1 to n do
          List.iter (fun s -> if exec s then changed := true) scheds
        done;
        !changed
      | Ast.Sched_saturate scheds ->
        let changed = ref false in
        let continue_ = ref true in
        let fuel = ref eng.run_cap in
        while !continue_ && !fuel > 0 do
          decr fuel;
          let round = List.fold_left (fun acc s -> exec s || acc) false scheds in
          if round then changed := true else continue_ := false
        done;
        !changed
    in
    List.iter (fun s -> ignore (exec s)) scheds;
    [ Printf.sprintf "schedule ran %d iteration(s); %d tuples, %d classes" !total
        (total_rows eng) (n_classes eng) ]
  | Ast.Decl_datatype (name, variants) ->
    declare_datatype eng name variants;
    []
  | Ast.Decl_function decl ->
    declare_function eng decl;
    []
  | Ast.Decl_relation (name, tys) ->
    declare_relation eng name tys;
    []
  | Ast.Add_rule rule ->
    add_rule eng rule;
    []
  | Ast.Add_rewrite { lhs; rhs; conds; ruleset } ->
    add_rewrite eng ~conds ?ruleset lhs rhs;
    []
  | Ast.Define (x, e) ->
    let ty = infer_closed_ty eng e in
    let tyexpr =
      let rec unresolve = function
        | Ty.Set t -> Ast.T_set (unresolve t)
        | Ty.Vec t -> Ast.T_vec (unresolve t)
        | t -> Ast.T_name (Ty.to_string t)
      in
      unresolve ty
    in
    declare_function eng
      {
        Ast.fname = x;
        arg_tys = [];
        ret_ty = tyexpr;
        merge = Ast.Merge_default;
        default = None;
        (* a defined alias must never beat a real term during extraction *)
        cost = Some 1_000_000_000;
      };
    exec_top_actions eng [ Ast.Set (x, [], e) ];
    []
  | Ast.Top_action a ->
    exec_top_actions eng [ a ];
    []
  | Ast.Run spec ->
    (* As in egglog, (run n) runs the default ruleset; named rulesets run
       through (run-schedule ...). Budgets from the command override the
       session-wide defaults (CLI --node-limit / --time-limit). *)
    let n = Option.value spec.Ast.run_limit ~default:eng.run_cap in
    let first_some a b = match a with Some _ -> a | None -> b in
    let node_limit = first_some spec.Ast.run_node_limit eng.default_node_limit in
    let time_limit = first_some spec.Ast.run_time_limit eng.default_time_limit in
    let memory_limit = first_some spec.Ast.run_memory_limit eng.default_memory_limit in
    let report =
      run_iterations ~ruleset:"" ?node_limit ?time_limit ?memory_limit
        ~until:spec.Ast.run_until ?jobs:spec.Ast.run_jobs eng n
    in
    let stop_note =
      match report.stop_reason with
      | Saturated -> " (saturated)"
      | Iteration_limit -> ""
      | (Node_limit _ | Time_limit _ | Memory_limit _ | Until_satisfied) as r ->
        Printf.sprintf " (stopped: %s)" (describe_stop_reason r)
    in
    [ Printf.sprintf "ran %d iteration(s)%s; %d tuples, %d classes"
        (List.length report.iterations) stop_note (total_rows eng) (n_classes eng) ]
  | Ast.Check facts ->
    if check_facts eng facts then begin
      match facts with
      | [ Ast.Holds (Ast.Call (_, _) as e) ] -> (
        match ground_value eng e with
        | Some v when not (Value.equal v Value.VUnit) ->
          [ Printf.sprintf "check passed: %s" (Value.to_string v) ]
        | Some _ | None -> [ "check passed" ])
      | _ -> [ "check passed" ]
    end
    else
      error "check failed: %s"
        (String.concat " " (List.map (Format.asprintf "%a" Ast.pp_fact) facts))
  | Ast.Check_fail facts ->
    if check_facts eng facts then
      error "check unexpectedly passed: %s"
        (String.concat " " (List.map (Format.asprintf "%a" Ast.pp_fact) facts))
    else [ "check failed as expected" ]
  | Ast.Extract (e, variants) ->
    wrap_compile (fun () ->
        let ce, _ = Compile.compile_closed_expr (compile_env eng) e in
        let v = eval_expr eng [||] ce in
        Database.rebuild eng.db;
        if variants <= 1 then begin
          match extract_value eng v with
          | Some { Extract.term; cost } ->
            [ Printf.sprintf "%s : cost %d" (Sexpr.to_string (Extract.term_to_sexp term)) cost ]
          | None -> error "nothing to extract for %s" (Value.to_string v)
        end
        else begin
          match extract_candidates eng v ~max:variants with
          | [] -> error "nothing to extract for %s" (Value.to_string v)
          | terms -> List.map (fun t -> Sexpr.to_string (Extract.term_to_sexp t)) terms
        end)
  | Ast.Explain (e1, e2) ->
    wrap_compile (fun () ->
        let ce1, _ = Compile.compile_closed_expr (compile_env eng) e1 in
        let ce2, _ = Compile.compile_closed_expr (compile_env eng) e2 in
        let v1 = eval_expr eng [||] ce1 and v2 = eval_expr eng [||] ce2 in
        Database.rebuild eng.db;
        if not (Database.are_equal eng.db v1 v2) then
          [ "not equal: no explanation" ]
        else begin
          let describe v =
            match extract_value eng v with
            | Some { Extract.term; _ } -> Sexpr.to_string (Extract.term_to_sexp term)
            | None -> Value.to_string v
          in
          (* Render each endpoint as its extracted term next to the raw id:
             "#4 (Mul a b) = #9 (Shl a 1)  [rule mul-to-shift]". Ids whose
             class yields no extractable term fall back to the bare id. *)
          let endpoint id =
            let raw = Printf.sprintf "#%d" id in
            let d = describe (Value.VId id) in
            if d = raw then raw else Printf.sprintf "%s %s" raw d
          in
          let render steps =
            List.map
              (fun (s : Proof_forest.step) ->
                Format.asprintf "%s = %s  [%a]" (endpoint s.Proof_forest.from_id)
                  (endpoint s.Proof_forest.to_id) Proof_forest.pp_reason s.Proof_forest.why)
              steps
          in
          match Database.explain eng.db v1 v2 with
          | Some (_ :: _ as steps) -> render steps
          | Some [] | None -> (
            (* the two terms resolve to one canonical id; report the union
               events that built the shared class *)
            match Database.class_history eng.db v1 with
            | [] -> [ "identical (no unions involved)" ]
            | steps ->
              Printf.sprintf "equal; the class of %s was built by:" (describe v1)
              :: render steps)
        end)
  | Ast.Push ->
    eng.stack <-
      {
        sn_db = Database.copy eng.db;
        sn_rules = eng.rules;
        sn_rule_states =
          List.map (fun r -> (r.rr_last_stamp, r.rr_times_banned, r.rr_banned_until)) eng.rules;
        sn_iteration = eng.iteration;
        sn_decl_log = eng.decl_log;
      }
      :: eng.stack;
    []
  | Ast.Pop -> (
    match eng.stack with
    | [] -> error "pop: no matching push"
    | snap :: rest ->
      eng.stack <- rest;
      eng.db <- snap.sn_db;
      eng.rules <- snap.sn_rules;
      List.iter2
        (fun r (ls, tb, bu) ->
          r.rr_last_stamp <- ls;
          r.rr_times_banned <- tb;
          r.rr_banned_until <- bu)
        snap.sn_rules snap.sn_rule_states;
      eng.iteration <- snap.sn_iteration;
      eng.decl_log <- snap.sn_decl_log;
      (* The restored tables are fresh incarnations (new uids): cached join
         structures can never hit again, so drop them rather than leak. *)
      Join.clear_all eng.join_cache;
      [])
  | Ast.Print_function (name, n) ->
    let table = find_table_exn eng name in
    let rows = ref [] in
    Table.iter
      (fun key row ->
        if List.length !rows < n then begin
          let args = String.concat " " (Array.to_list (Array.map Value.to_string key)) in
          rows :=
            Printf.sprintf "(%s %s) -> %s" name args (Value.to_string row.Table.value) :: !rows
        end)
      table;
    List.rev !rows
  | Ast.Print_size name -> [ Printf.sprintf "%s: %d" name (table_size eng name) ]
  | Ast.Print_stats ->
    [ Printf.sprintf "%d tuples, %d classes, %d ids" (total_rows eng) (n_classes eng)
        (Database.n_ids eng.db) ]
  | Ast.Simplify (n, e) ->
    (* materialize the term, saturate, extract — in a scratch scope so the
       exploration does not pollute the database *)
    ignore (run_command_inner eng Ast.Push);
    Fun.protect
      ~finally:(fun () -> ignore (run_command_inner eng Ast.Pop))
      (fun () ->
        wrap_compile (fun () ->
            let ce, _ = Compile.compile_closed_expr (compile_env eng) e in
            let v = eval_expr eng [||] ce in
            (* the session budgets bound the exploration too — a simplify
               must not be a way around --node-limit / --time-limit *)
            ignore
              (run_iterations ?node_limit:eng.default_node_limit
                 ?time_limit:eng.default_time_limit ?memory_limit:eng.default_memory_limit
                 eng n);
            match extract_value eng v with
            | Some { Extract.term; cost } ->
              [ Printf.sprintf "%s : cost %d" (Sexpr.to_string (Extract.term_to_sexp term)) cost ]
            | None -> error "nothing to extract for %s" (Value.to_string v)))
  | Ast.Include path ->
    let src =
      try In_channel.with_open_text path In_channel.input_all
      with Sys_error msg -> error "include: %s" msg
    in
    (try List.concat_map (run_command_inner eng) (Frontend.parse_program src) with
     | Frontend.Syntax_error msg -> error "include %s: %s" path msg
     | Sexpr.Parse_error { line; col; message } ->
       error "include %s:%d:%d: %s" path line col message)

(* ------------------------------------------------------------------ *)
(* Transactional command execution                                     *)
(* ------------------------------------------------------------------ *)

(* Everything a failed command could have perturbed. The database copy is
   the expensive part, so it is taken lazily: Database.set_txn_hook fires
   just before the first mutation, when the database is still clean —
   commands that fail before mutating (bad declarations, failed checks,
   unknown names) pay nothing beyond the cheap scalar capture. *)
type txn = {
  tx_db0 : Database.t;  (* the database object at command start *)
  tx_db_saved : Database.t option ref;  (* pre-mutation copy, filled lazily *)
  tx_rules : rt_rule list;
  tx_rule_states : (int * int * int) list;
  tx_iteration : int;
  tx_rule_counter : int;
  tx_rulesets : string list;
  tx_stack : snapshot list;
  tx_merge_exprs : (Symbol.t, Compile.cexpr) Hashtbl.t;
  tx_default_exprs : (Symbol.t, Compile.cexpr) Hashtbl.t;
  tx_decl_log : Ast.command list;
}

(* [deep_stack] additionally copies the databases held by push/pop
   snapshots: an (include ...) can pop into one of them and then mutate it
   through the eng.db alias, which would corrupt the restored stack. *)
let capture_txn ?(deep_stack = false) eng =
  {
    tx_db0 = eng.db;
    tx_db_saved = ref None;
    tx_rules = eng.rules;
    tx_rule_states =
      List.map (fun r -> (r.rr_last_stamp, r.rr_times_banned, r.rr_banned_until)) eng.rules;
    tx_iteration = eng.iteration;
    tx_rule_counter = eng.rule_counter;
    tx_rulesets = eng.rulesets;
    tx_stack =
      (if deep_stack then
         List.map (fun sn -> { sn with sn_db = Database.copy sn.sn_db }) eng.stack
       else eng.stack);
    tx_merge_exprs = Hashtbl.copy eng.merge_exprs;
    tx_default_exprs = Hashtbl.copy eng.default_exprs;
    tx_decl_log = eng.decl_log;
  }

let rollback_txn eng tx =
  (eng.db <-
     (match !(tx.tx_db_saved) with
      | Some saved -> saved  (* the command mutated: restore the clean copy *)
      | None -> tx.tx_db0 (* fast path: it failed before mutating *)));
  eng.rules <- tx.tx_rules;
  List.iter2
    (fun r (ls, tb, bu) ->
      r.rr_last_stamp <- ls;
      r.rr_times_banned <- tb;
      r.rr_banned_until <- bu)
    tx.tx_rules tx.tx_rule_states;
  eng.iteration <- tx.tx_iteration;
  eng.rule_counter <- tx.tx_rule_counter;
  eng.rulesets <- tx.tx_rulesets;
  eng.stack <- tx.tx_stack;
  eng.merge_exprs <- tx.tx_merge_exprs;
  eng.default_exprs <- tx.tx_default_exprs;
  eng.decl_log <- tx.tx_decl_log;
  Join.clear_all eng.join_cache;
  eng.current_reason <- Proof_forest.Asserted

(* Normalize internal failures (merge conflicts, bad unions, primitive
   division by zero, broken join invariants) into the single user-facing
   exception. *)
let user_error (e : exn) : exn =
  match e with
  | Failure msg -> Egglog_error msg
  | Invalid_argument msg -> Egglog_error msg
  | Division_by_zero -> Egglog_error "division by zero"
  | Database.Merge_conflict { func; old_value; new_value } ->
    Egglog_error
      (Printf.sprintf "merge conflict on function %s: %s vs %s (no :merge declared)"
         (Symbol.name func) (Value.to_string old_value) (Value.to_string new_value))
  | Database.Internal_error msg -> Egglog_error (Printf.sprintf "internal error: %s" msg)
  | Join.Internal_error { in_func; detail } ->
    let where =
      match in_func with
      | Some fn -> Printf.sprintf " (function %s)" (Symbol.name fn)
      | None -> ""
    in
    Egglog_error (Printf.sprintf "internal error%s: %s" where detail)
  | e -> e

let run_command eng cmd =
  match cmd with
  (* Read-only commands skip the transaction machinery entirely. *)
  | Ast.Print_function _ | Ast.Print_size _ | Ast.Print_stats -> (
    try run_command_inner eng cmd with e -> raise (user_error e))
  | _ ->
    let deep_stack = match cmd with Ast.Include _ -> true | _ -> false in
    let tx = capture_txn ~deep_stack eng in
    Database.set_txn_hook tx.tx_db0 (fun () ->
        if !(tx.tx_db_saved) = None then tx.tx_db_saved := Some (Database.copy tx.tx_db0));
    Fun.protect
      ~finally:(fun () ->
        Database.clear_txn_hook tx.tx_db0;
        Database.clear_txn_hook eng.db)
      (fun () ->
        try run_command_inner eng cmd
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          rollback_txn eng tx;
          Printexc.raise_with_backtrace (user_error e) bt)

let run_program eng cmds = List.concat_map (run_command eng) cmds

(* ------------------------------------------------------------------ *)
(* Server-side request machinery                                       *)
(* ------------------------------------------------------------------ *)

(* A whole-request transaction: unlike [run_command]'s lazy snapshot
   (whose Database.set_txn_hook slot cannot nest — each inner command
   installs and clears its own), the database copy is taken eagerly, so
   any number of commands can run and fail inside [f] and the rollback
   still restores the exact entry state: database, rules, scheduler
   state, rulesets, push/pop stack (deep-copied) and declaration log. *)
let with_transaction eng f =
  let tx = capture_txn ~deep_stack:true eng in
  tx.tx_db_saved := Some (Database.copy eng.db);
  try f ()
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    rollback_txn eng tx;
    Printexc.raise_with_backtrace (user_error e) bt

let collect_reports eng f =
  let sink = ref [] in
  let previous = eng.report_sink in
  eng.report_sink <- Some sink;
  let result =
    Fun.protect ~finally:(fun () -> eng.report_sink <- previous) f
  in
  (result, List.rev !sink)

let set_session_limits ?node_limit ?time_limit ?memory_limit ?jobs eng () =
  (match jobs with
   | Some j when j < 0 -> error "jobs must be non-negative (0 = one per core), got %d" j
   | _ -> ());
  eng.default_node_limit <- node_limit;
  eng.default_time_limit <- time_limit;
  eng.default_memory_limit <- memory_limit;
  Option.iter (fun j -> eng.default_jobs <- j) jobs

let modeled_bytes eng = Database.modeled_bytes eng.db
