(** Plan compilation: lower cost-ordered query plans to specialized OCaml
    closures, replacing the interpreter's per-tuple dispatch with work done
    once per (plan, delta-variant). This module is the table-level toolkit
    — typed cell readers, hoisted constant checks, per-arity binding loops,
    pre-resolved primitive guards; the lowered evaluators that tie the
    kernels to tries, indexes and the join cache live in {!Join}. *)

type check =
  | Check_const of int * Value.t  (** position must equal the literal *)
  | Check_same of int * int  (** position must equal an earlier position *)

type shape = {
  sh_func : Schema.func;
  sh_checks : check list;
  sh_sources : int array;
      (** row positions feeding the binding path, in variable-depth order *)
  sh_vars : int array;  (** the query var bound at each path level *)
}

val shape_atom : Compile.cquery -> Compile.atom -> shape
(** The per-atom analysis shared by the interpreter and the compiler:
    checks, binding sources and bound variables. One implementation, so
    both evaluators — and the join cache keys derived from it — agree. *)

type filter = Value.t array -> Table.row -> bool

val compile_filter : Schema.func -> check list -> filter
(** Compile an atom's checks into one closure: constants hoisted, unboxed
    integer comparison for i64/bool/sort columns ({!Table.int_reader}),
    Unit-typed columns elided, 0/1/2-check cases composed directly. *)

type binder = {
  bind : Value.t array -> Value.t array -> Table.row -> unit;
      (** [bind env key row] writes the atom's variables into [env] *)
  bind_specialized : bool;  (** false on the arity-5+ generic fallback *)
}

val compile_binder : Schema.func -> vars:int array -> sources:int array -> binder
(** Monomorphic binding loop, hand-specialized for 1-4 sources with every
    column reader resolved at construction; arities above fall back to a
    readers-array loop ([bind_specialized = false]). *)

val classify_prims :
  Compile.cquery -> int array list -> (Compile.prim_app * bool) list
(** Flatten the schedule and classify each primitive's output as bind
    ([true]) or check, given the variables the listed atoms bind. *)

val compile_prims : (Compile.prim_app * bool) list -> unit -> Value.t array -> bool
(** Compile a classified checklist for fully-bound environments. The outer
    [unit ->] instantiates private argument buffers: instantiate once per
    search so concurrent searches of one compiled plan never share state. *)

exception Unbound_prim_arg
(** A primitive argument was unbound — a scheduling bug, never reachable
    through {!Compile.replan}-produced plans. *)

val compile_depth_prims : Compile.prim_app list -> Value.t option array -> int list option
(** Compile one depth's schedule for the generic trie join: option-array
    environment, returns the bound-variable undo list or [None] on guard
    failure (partial bindings already undone) — the interpreter's exact
    contract. Reentrant (no construction-time scratch). *)
