(** The egglog engine: declarations, rule storage, the evaluation loop
    ([F_P = R^∞ ∘ T_P^↑] of §4.2, semi-naïve per §4.3 / Algorithm 1),
    rule scheduling, and command execution.

    Construct with {!create}, feed {!Ast.command}s through {!run_command}
    (or use the {!Egglog} facade for textual programs), or drive the typed
    API ({!eval_call}, {!set_fact}, {!union_values}, {!run_iterations})
    directly — the case-study benchmarks use the latter to skip parsing. *)

type scheduler =
  | Simple
  | Backoff of { match_limit : int; ban_length : int }
      (** egg's BackOff scheduler: a rule producing more than
          [match_limit * 2^times_banned] matches is banned for
          [ban_length * 2^times_banned] iterations. *)

val backoff_default : scheduler

type t

val create :
  ?seminaive:bool ->
  ?scheduler:scheduler ->
  ?fast_paths:bool ->
  ?index_caching:bool ->
  ?compiled_plans:bool ->
  ?node_limit:int ->
  ?time_limit:float ->
  ?memory_limit:int ->
  ?pressure_tiers:float * float ->
  ?jobs:int ->
  unit ->
  t
(** [seminaive:false] gives the paper's egglogNI baseline; [fast_paths] and
    [index_caching] exist for the ablation benchmarks. [compiled_plans]
    (default true) lowers every cached plan to specialized closures
    ({!Join.compile_plan}); [false] — the CLI's [--no-compiled-plans] —
    keeps the interpreter, with byte-identical results either way. [node_limit] /
    [time_limit] / [memory_limit] install session-wide budgets applied to
    every [(run ...)] and [(run-schedule ...)] command (the CLI's
    [--node-limit] / [--time-limit] / [--memory-limit]); per-command
    [:node-limit] / [:time-limit] / [:memory-limit] override them. The
    memory budget is enforced against {!Database.modeled_bytes} — the
    deterministic modeled footprint, never [Gc] statistics — so the same
    program stops at the same iteration on every run. [pressure_tiers]
    (default [(0.7, 0.85)]) are the fractions of the memory limit at which
    the engine starts degrading before the hard stop: at tier 1 the backoff
    scheduler tightens (match limits shrink, and the backoff policy applies
    even under [Simple]); at tier 2 the rule with the highest modeled byte
    growth is additionally banned each iteration. [jobs] (default 1) is the
    session default for the number of domains the search, apply and
    rebuild phases fan out across ([0] = one per core; the CLI's
    [--jobs]); a per-command [:jobs] overrides it. Results are
    bit-identical to [jobs:1] for any value.
    @raise Egglog_error on a negative [jobs] or malformed tiers. *)

val database : t -> Database.t

exception Egglog_error of string
(** Any user-facing failure: static errors, panics, failed primitives in
    actions, merge conflicts. *)

(** {1 Typed API} *)

val declare_sort : t -> string -> unit
val declare_relation : t -> string -> Ast.tyexpr list -> unit
val declare_function : t -> Ast.function_decl -> unit
val declare_datatype : t -> string -> (string * Ast.tyexpr list) list -> unit
val add_rule : t -> Ast.rule -> unit
val add_rewrite : t -> ?conds:Ast.fact list -> ?ruleset:string -> Ast.expr -> Ast.expr -> unit
val declare_ruleset : t -> string -> unit

val eval_call : t -> string -> Value.t list -> Value.t
(** Get-or-default application (§3.3's "get or make-set"). *)

val set_fact : t -> string -> Value.t list -> Value.t -> unit
val union_values : t -> Value.t -> Value.t -> Value.t
val check_facts : t -> Ast.fact list -> bool
val lookup_fact : t -> string -> Value.t list -> Value.t option
val rebuild : t -> unit

val explain_plans : t -> string
(** Deterministic textual dump of every rule's cost-based join plan against
    the current table statistics: atoms with row counts, the chosen
    variable order with cost estimates, the primitive schedule, and the
    order of each semi-naïve delta variant (CLI [--explain-plans]). *)

(** {1 Running} *)

type iteration_stat = {
  it_index : int;  (** 1-based *)
  it_seconds : float;
  it_rows : int;  (** total tuples after the iteration *)
  it_classes : int;
  it_changed : bool;
  it_search_seconds : float;
  it_apply_seconds : float;
  it_rebuild_seconds : float;
  it_matches : int;  (** matches applied *)
  it_delta_rows : int;
      (** tuples (re)stamped during this iteration — the frontier semi-naïve
          evaluation will scan next iteration *)
}

(** Why a run stopped. Budgets are enforced cooperatively: between
    iterations always, and within an iteration after each rule search and
    (throttled) after each applied match, so one explosive iteration cannot
    exhaust memory. A budgeted stop keeps the partial progress (as in egg's
    Runner) and leaves the database rebuilt and usable. *)
type stop_reason =
  | Saturated  (** an iteration changed nothing and no rule is banned *)
  | Iteration_limit  (** ran the requested number of iterations *)
  | Node_limit of int  (** tuple budget tripped; payload = tuples at stop *)
  | Time_limit of float  (** wall-clock budget tripped; payload = elapsed seconds *)
  | Memory_limit of int
      (** modeled byte budget tripped; payload = {!Database.modeled_bytes} at
          stop. Deterministic: the same program trips at the same iteration
          at any jobs count, with byte-identical database state. *)
  | Until_satisfied  (** the [until] facts became derivable *)

val describe_stop_reason : stop_reason -> string

type rule_stat = {
  rs_rule : string;  (** rule name *)
  rs_matches : int;  (** matches applied during this run *)
  rs_inserted : int;
      (** database change events (tuple inserts + unions) performed by the
          rule's actions *)
  rs_deduplicated : int;
      (** matches whose actions changed nothing: semi-naïve duplicates and
          already-derived facts *)
  rs_bans : int;  (** times the scheduler banned the rule during this run *)
  rs_bytes : int;
      (** modeled byte growth of the database attributable to the rule's
          apply phases — what the tier-2 pressure response ranks rules by *)
}
(** Per-rule accounting for one run — enough to diagnose which rule made a
    workload explode, and how much of its matching was wasted. *)

type run_report = {
  iterations : iteration_stat list;  (** in order *)
  stop_reason : stop_reason;
  rule_stats : rule_stat list;  (** in declaration order, searched rules only *)
  total_seconds : float;
  jobs : int;
      (** resolved domain count the run's search/apply/rebuild phases used
          ([>= 1]; the [0] = one-per-core request resolves before it lands
          here) *)
  peak_memory_bytes : int;
      (** maximum modeled database footprint observed during the run (at
          iteration boundaries and throttled budget checks) *)
}

val pp_run_report : Format.formatter -> run_report -> unit
(** Summary line, phase split, and a per-rule table. The rule table is
    omitted entirely when no rule was searched (empty or fully-banned
    ruleset) rather than printing a dangling header. *)

val run_iterations :
  ?ruleset:string ->
  ?node_limit:int ->
  ?time_limit:float ->
  ?memory_limit:int ->
  ?until:Ast.fact list ->
  ?jobs:int ->
  t ->
  int ->
  run_report
(** Run up to [n] iterations, restricted to one named ruleset when given.
    [node_limit] stops once total tuples exceed it; [time_limit] stops after
    that many wall-clock seconds; [memory_limit] stops once the modeled
    database footprint ({!Database.modeled_bytes}) exceeds it, degrading
    through the pressure tiers first; [until] stops as soon as all its facts
    are derivable (checked before the first iteration and after each one).
    [jobs] fans the search, apply and rebuild phases across that many
    domains ([0] = one per core; default: the engine's session setting).
    The database is frozen during each fan-out: search merges per-variant
    match buffers in a fixed (rule, variant, discovery) order; apply
    stages per-match effect traces off-thread and replays them (validated,
    with serial fallback) in discovery order; rebuild shards each repair
    round's stale-row scan and repairs serially. The resulting state and
    report counts are byte-identical to [jobs:1] regardless of
    scheduling; only the timings differ. @raise Egglog_error on a
    negative [jobs]. *)

(** {1 Commands (the textual language)} *)

val run_command : t -> Ast.command -> string list
(** Execute one command; returns its printed outputs (check results,
    extracted terms, …).

    Commands are {e transactional}: if execution raises for any reason (a
    failed check, a mid-run primitive error, a merge conflict, an internal
    invariant violation), the engine is rolled back to its pre-command state
    — database, rules, scheduler state, push/pop stack — before the
    exception is re-raised as {!Egglog_error}. The database snapshot is
    taken lazily at the first mutation, so commands that fail before
    mutating pay no copy. *)

val run_program : t -> Ast.command list -> string list

(** {1 Request machinery (the server)} *)

val with_transaction : t -> (unit -> 'a) -> 'a
(** Run [f] — typically several {!run_command}s plus checks between them —
    as one atomic unit: if it raises, the engine is restored to its exact
    entry state (database, rules, scheduler state, rulesets, push/pop
    stack, declaration log) and the exception is re-raised (normalized to
    {!Egglog_error} where applicable). Unlike the per-command transaction
    the database snapshot is taken eagerly, so even a request that fails
    after several committed inner commands rolls all of them back. *)

val collect_reports : t -> (unit -> 'a) -> 'a * run_report list
(** Run [f] and also return every {!run_report} produced by [run] /
    [run-schedule] / [simplify] commands during it, in execution order —
    how the server detects that a request tripped its node or time budget
    (and must be rolled back) without parsing output strings. Nests. *)

val set_session_limits :
  ?node_limit:int -> ?time_limit:float -> ?memory_limit:int -> ?jobs:int -> t -> unit -> unit
(** Overwrite the session-wide budget and jobs defaults ({!create}'s
    [node_limit]/[time_limit]/[memory_limit]/[jobs]) — the server resets
    these to the request's (clamped) limits before executing it. Omitted
    budgets are {e cleared}, not preserved. @raise Egglog_error on negative
    [jobs]. *)

val modeled_bytes : t -> int
(** {!Database.modeled_bytes} of the engine's current database: the
    deterministic modeled footprint the server's quotas are accounted
    against. O(#tables). *)

(** {1 Introspection} *)

val decl_commands : t -> Ast.command list
(** The committed schema-shaping history, in order, as replayable commands:
    sorts, functions, rules and rulesets, with sugar (datatype, relation,
    rewrite, define) recorded desugared. Running these into a fresh engine
    reproduces the schema and rule set (including deterministic auto-naming)
    without any data; checkpoints persist this list alongside the data dump.
    Tracks rollback and push/pop like the rest of the engine state. *)

val scope_depth : t -> int
(** Number of open [(push)] scopes. Checkpointing is deferred while > 0. *)

val total_rows : t -> int
val n_classes : t -> int
val table_size : t -> string -> int
val extract_value : t -> Value.t -> Extract.result option
val extract_candidates : t -> Value.t -> max:int -> Extract.term list
