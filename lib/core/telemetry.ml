(* See telemetry.mli for the design constraints: global, off by default,
   one-branch no-ops while disabled, monotonic, injectable clock. *)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let escape_string buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float x ->
      if Float.is_finite x then begin
        (* shortest decimal that round-trips; JSON forbids a bare leading
           '.' or trailing '.', which %.17g never produces *)
        let s = Printf.sprintf "%.12g" x in
        Buffer.add_string buf s
      end
      else Buffer.add_string buf "null"
    | Str s -> escape_string buf s
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 128 in
    write buf j;
    Buffer.contents buf

  (* ---- a small recursive-descent parser (for tests and validation) ---- *)

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail fmt = Format.kasprintf (fun m -> raise (Parse_error m)) fmt in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some got when got = c -> advance ()
      | Some got -> fail "expected %c at offset %d, got %c" c !pos got
      | None -> fail "expected %c at offset %d, got end of input" c !pos
    in
    let literal word value =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
        pos := !pos + String.length word;
        value
      end
      else fail "invalid literal at offset %d" !pos
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if !pos >= n then fail "unterminated escape";
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             (match int_of_string_opt ("0x" ^ hex) with
              | None -> fail "bad \\u escape %S" hex
              | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
              | Some code ->
                (* we only ever emit \u00xx for control chars; decode the
                   rest as UTF-8 for robustness *)
                if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end)
           | e -> fail "bad escape \\%c" e);
          go ()
        | c -> Buffer.add_char buf c; go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text in
      if is_float then
        match float_of_string_opt text with
        | Some x -> Float x
        | None -> fail "bad number %S" text
      else begin
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt text with
          | Some x -> Float x
          | None -> fail "bad number %S" text)
      end
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}' at offset %d" !pos
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']' at offset %d" !pos
          in
          items_loop ();
          List (List.rev !items)
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at offset %d" !pos;
    v

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let write_file path j =
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (to_string j);
        Out_channel.output_char oc '\n')
end

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

(* CLOCK_MONOTONIC via bechamel's tiny stub library: nanoseconds as int64,
   noalloc. Wall-clock (gettimeofday) is only ever a display concern. *)
let default_clock () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let clock = ref default_clock
let now () = !clock ()
let set_clock f = clock := f
let use_default_clock () = clock := default_clock

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

let enabled = ref false
let is_enabled () = !enabled

let sink : (string -> unit) option ref = ref None
let origin = ref 0.0
let depth = ref 0

(* Counters are sharded per domain so that pool workers can bump them
   without locks: each counter holds [n_shards] slots, padded to a cache
   line ([stride] words) to avoid false sharing, and a domain writes only
   the slot registered for it via [set_shard] (0 = the main domain).
   Reads (snapshot/value) sum over all shards and only ever run on the
   main domain while no parallel phase is in flight. *)
let n_shards = 64
let stride = 8

let shard_key = Domain.DLS.new_key (fun () -> ref 0)
let set_shard i = Domain.DLS.get shard_key := max 0 (min (n_shards - 1) i)
let current_shard () = !(Domain.DLS.get shard_key)

type counter = { c_name : string; c_slots : int array }

(* The registry itself is cold (a handful of lookups per process, at
   module-init or report time); a mutex keeps stray worker-side [add]
   calls from racing table resizes. *)
let registry_lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  Mutex.lock registry_lock;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
      let c = { c_name = name; c_slots = Array.make (n_shards * stride) 0 } in
      Hashtbl.replace counters name c;
      c
  in
  Mutex.unlock registry_lock;
  c

let bump c n =
  if !enabled then begin
    let s = current_shard () * stride in
    c.c_slots.(s) <- c.c_slots.(s) + n
  end

let add name n = if !enabled then bump (counter name) n

(* Max-gauge for counters like [search.domains_used]: only ever written
   from the main domain, so it owns slot 0 outright. *)
let record_max c n =
  if !enabled then c.c_slots.(0) <- max c.c_slots.(0) n

let counter_value c =
  let total = ref 0 in
  for i = 0 to n_shards - 1 do
    total := !total + c.c_slots.(i * stride)
  done;
  !total

type timing_acc = {
  mutable a_count : int;
  mutable a_total : float;
  mutable a_min : float;
  mutable a_max : float;
}

let timings : (string, timing_acc) Hashtbl.t = Hashtbl.create 64

(* Worker-domain observations can't touch the [timings] hashtable (it
   resizes); they buffer under a lock — observe is off the per-tuple hot
   path — and drain into the table on the main domain at snapshot time.
   The aggregate (count/total/min/max) is order-independent, so deferred
   merging is invisible. *)
let pending_lock = Mutex.create ()
let pending_observes : (string * float) list ref = ref []

let observe_main name dt =
  let acc =
    match Hashtbl.find_opt timings name with
    | Some acc -> acc
    | None ->
      let acc = { a_count = 0; a_total = 0.0; a_min = infinity; a_max = neg_infinity } in
      Hashtbl.replace timings name acc;
      acc
  in
  acc.a_count <- acc.a_count + 1;
  acc.a_total <- acc.a_total +. dt;
  if dt < acc.a_min then acc.a_min <- dt;
  if dt > acc.a_max then acc.a_max <- dt

let observe name dt =
  if !enabled then begin
    if current_shard () = 0 then observe_main name dt
    else begin
      Mutex.lock pending_lock;
      pending_observes := (name, dt) :: !pending_observes;
      Mutex.unlock pending_lock
    end
  end

let drain_pending_observes () =
  Mutex.lock pending_lock;
  let pending = !pending_observes in
  pending_observes := [];
  Mutex.unlock pending_lock;
  List.iter (fun (name, dt) -> observe_main name dt) (List.rev pending)

(* ------------------------------------------------------------------ *)
(* Log-bucketed histograms                                             *)
(* ------------------------------------------------------------------ *)

(* Power-of-two buckets: bucket [b] (1..127) holds values in
   (2^(b-65), 2^(b-64)]; bucket 0 holds everything <= 0. Bucket counts
   are integers, so merging shards is a plain array sum — associative
   and commutative — and quantiles are pure functions of the merged
   buckets: the same observations give byte-identical quantiles no
   matter how they were split across domains. *)
let n_buckets = 128
let bucket_origin = 64

let hist_bucket_of v =
  if v <= 0.0 then 0 (* includes -inf; NaN is dropped before we get here *)
  else if v = infinity then n_buckets - 1
  else begin
    let m, e = Float.frexp v in
    (* v = m * 2^e with m in [0.5, 1); an exact power of two (m = 0.5)
       belongs to the bucket whose upper bound it is *)
    let b = if m = 0.5 then e + bucket_origin - 1 else e + bucket_origin in
    if b < 1 then 1 else if b > n_buckets - 1 then n_buckets - 1 else b
  end

let hist_bucket_le b = if b <= 0 then 0.0 else Float.ldexp 1.0 (b - bucket_origin)

type histogram = {
  (* one row of bucket counts per domain shard, allocated on first record
     from that shard (each domain writes only its own slot) *)
  h_rows : int array option array;
  (* running sum of recorded values, stride-padded like counter slots *)
  h_sums : float array;
}

let hist_create () =
  { h_rows = Array.make n_shards None; h_sums = Array.make (n_shards * stride) 0.0 }

let hists : (string, histogram) Hashtbl.t = Hashtbl.create 16

let histogram name =
  Mutex.lock registry_lock;
  let h =
    match Hashtbl.find_opt hists name with
    | Some h -> h
    | None ->
      let h = hist_create () in
      Hashtbl.replace hists name h;
      h
  in
  Mutex.unlock registry_lock;
  h

let hist_record h v =
  (* NaN observations are dropped at the recording boundary so no
     downstream aggregate or JSON field can ever go non-finite. *)
  if !enabled && not (Float.is_nan v) then begin
    let s = current_shard () in
    let row =
      match h.h_rows.(s) with
      | Some r -> r
      | None ->
        let r = Array.make n_buckets 0 in
        h.h_rows.(s) <- Some r;
        r
    in
    let b = hist_bucket_of v in
    row.(b) <- row.(b) + 1;
    if Float.is_finite v then h.h_sums.(s * stride) <- h.h_sums.(s * stride) +. v
  end

type hist_snap = { hs_count : int; hs_sum : float; hs_buckets : (int * int) list }

(* Merge = sum each bucket over the shards (integer adds, so shard
   partitioning is invisible) then keep the non-empty buckets. Sums run
   in fixed shard order; reads only happen on the main domain while no
   parallel phase is in flight, like counter reads. *)
let hist_snap_of h =
  let merged = Array.make n_buckets 0 in
  let sum = ref 0.0 in
  for s = 0 to n_shards - 1 do
    (match h.h_rows.(s) with
    | None -> ()
    | Some row ->
      for b = 0 to n_buckets - 1 do
        merged.(b) <- merged.(b) + row.(b)
      done);
    sum := !sum +. h.h_sums.(s * stride)
  done;
  let count = ref 0 in
  let buckets = ref [] in
  for b = n_buckets - 1 downto 0 do
    if merged.(b) > 0 then begin
      count := !count + merged.(b);
      buckets := (b, merged.(b)) :: !buckets
    end
  done;
  let sum = if Float.is_finite !sum then !sum else 0.0 in
  { hs_count = !count; hs_sum = sum; hs_buckets = !buckets }

let hist_snap_quantile hs p =
  if hs.hs_count = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (Float.ceil (p *. float_of_int hs.hs_count)) in
      if r < 1 then 1 else if r > hs.hs_count then hs.hs_count else r
    in
    let rec go seen = function
      | [] -> hist_bucket_le (n_buckets - 1)
      | (b, n) :: rest -> if seen + n >= rank then hist_bucket_le b else go (seen + n) rest
    in
    go 0 hs.hs_buckets
  end

let hist_quantile h p = hist_snap_quantile (hist_snap_of h) p

let hist_clear h =
  Array.fill h.h_rows 0 (Array.length h.h_rows) None;
  Array.fill h.h_sums 0 (Array.length h.h_sums) 0.0

let hist_snap_to_json hs =
  let quantile name p acc = (name, Json.Float (hist_snap_quantile hs p)) :: acc in
  Json.Obj
    (("count", Json.Int hs.hs_count)
    :: ("sum", Json.Float hs.hs_sum)
    ::
    (if hs.hs_count = 0 then []
     else
       quantile "p50" 0.5
         (quantile "p90" 0.9
            (quantile "p99" 0.99
               [
                 ( "buckets",
                   Json.List
                     (List.map
                        (fun (b, n) -> Json.List [ Json.Float (hist_bucket_le b); Json.Int n ])
                        hs.hs_buckets) );
               ]))))

let reset () =
  Hashtbl.iter (fun _ c -> Array.fill c.c_slots 0 (Array.length c.c_slots) 0) counters;
  Hashtbl.iter (fun _ h -> hist_clear h) hists;
  Hashtbl.reset timings;
  Mutex.lock pending_lock;
  pending_observes := [];
  Mutex.unlock pending_lock;
  depth := 0

let enable ?sink:s () =
  enabled := true;
  (match s with Some f -> sink := Some f | None -> ());
  origin := now ()

let disable () =
  enabled := false;
  sink := None

(* ------------------------------------------------------------------ *)
(* Flight recorder and trace context                                   *)
(* ------------------------------------------------------------------ *)

(* Ring of the most recent rendered trace lines, captured whenever
   telemetry is enabled — with or without a sink — so a crash always has
   recent history to dump. The ring array is allocated once per capacity
   change and its slots are overwritten in place; pushes share
   [emit_lock] with the sink so dump ordering matches sink ordering. *)
let fr_default_capacity = 512
let fr_slots = ref (Array.make fr_default_capacity "")
let fr_pos = ref 0
let fr_len = ref 0

(* Ambient per-request trace id, set by the daemon around each request.
   A plain atomic is enough: the daemon executes one request at a time,
   and pool workers read the same global. *)
let trace_ctx : string option Atomic.t = Atomic.make None

let current_trace_id () = Atomic.get trace_ctx

let with_trace_id tid f =
  let prev = Atomic.get trace_ctx in
  Atomic.set trace_ctx (Some tid);
  Fun.protect ~finally:(fun () -> Atomic.set trace_ctx prev) f

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

let emit_lock = Mutex.create ()

let fr_push_locked line =
  let cap = Array.length !fr_slots in
  if cap > 0 then begin
    !fr_slots.(!fr_pos) <- line;
    fr_pos := (!fr_pos + 1) mod cap;
    if !fr_len < cap then incr fr_len
  end

let flightrec_configure ~capacity =
  let capacity = max 0 capacity in
  Mutex.lock emit_lock;
  fr_slots := Array.make capacity "";
  fr_pos := 0;
  fr_len := 0;
  Mutex.unlock emit_lock

let flightrec_clear () =
  Mutex.lock emit_lock;
  Array.fill !fr_slots 0 (Array.length !fr_slots) "";
  fr_pos := 0;
  fr_len := 0;
  Mutex.unlock emit_lock

let flightrec_events () =
  Mutex.lock emit_lock;
  let cap = Array.length !fr_slots in
  let out = ref [] in
  (* oldest first: walk [fr_len] slots ending just before [fr_pos] *)
  for i = !fr_len - 1 downto 0 do
    out := !fr_slots.((!fr_pos - 1 - i + (2 * cap)) mod cap) :: !out
  done;
  Mutex.unlock emit_lock;
  List.rev !out

let flightrec_dump ~path =
  let events = flightrec_events () in
  let n = List.length events in
  if n > 0 then
    Out_channel.with_open_text path (fun oc ->
        List.iter
          (fun line ->
            Out_channel.output_string oc line;
            Out_channel.output_char oc '\n')
          events);
  n

let rel t = t -. !origin

let emit_event t kind name fields =
  (* Render whenever anything will observe the line: the sink, or the
     always-on flight recorder (capacity 0 turns the recorder off). When
     telemetry is disabled we never get here at all, so the fully
     disabled path stays one branch at each span/instant call site. *)
  let want_sink = !sink <> None in
  if want_sink || Array.length !fr_slots > 0 then begin
    (* Events from pool workers carry their domain shard so traces stay
       attributable; main-domain events keep the historical schema. The
       ambient trace id, when set, tags every event for its request. *)
    let fields =
      match current_trace_id () with
      | None -> fields
      | Some tid -> fields @ [ ("tid", Json.Str tid) ]
    in
    let fields =
      match current_shard () with 0 -> fields | d -> fields @ [ ("dom", Json.Int d) ]
    in
    let line =
      Json.to_string
        (Json.Obj
           (("t", Json.Float (rel t)) :: ("ev", Json.Str kind) :: ("name", Json.Str name)
           :: fields))
    in
    Mutex.lock emit_lock;
    fr_push_locked line;
    (match !sink with
    | Some f -> ( try f line with e -> Mutex.unlock emit_lock; raise e)
    | None -> ());
    Mutex.unlock emit_lock
  end

let span name f =
  if not !enabled then f ()
  else begin
    let t0 = now () in
    emit_event t0 "b" name [ ("depth", Json.Int !depth) ];
    incr depth;
    let finish () =
      decr depth;
      let t1 = now () in
      observe name (t1 -. t0);
      emit_event t1 "e" name [ ("dur", Json.Float (t1 -. t0)); ("depth", Json.Int !depth) ]
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let timed_span name f =
  if not !enabled then begin
    let t0 = now () in
    let v = f () in
    (now () -. t0, v)
  end
  else begin
    let t0 = now () in
    emit_event t0 "b" name [ ("depth", Json.Int !depth) ];
    incr depth;
    let finish () =
      decr depth;
      let t1 = now () in
      observe name (t1 -. t0);
      emit_event t1 "e" name [ ("dur", Json.Float (t1 -. t0)); ("depth", Json.Int !depth) ];
      t1 -. t0
    in
    match f () with
    | v -> (finish (), v)
    | exception e ->
      ignore (finish ());
      raise e
  end

let instant name fields = if !enabled then emit_event (now ()) "i" name fields

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type timing = { t_count : int; t_total : float; t_min : float; t_max : float }

type snapshot = {
  sn_counters : (string * int) list;
  sn_timings : (string * timing) list;
  sn_hists : (string * hist_snap) list;
}

let snapshot () =
  drain_pending_observes ();
  let cs =
    Hashtbl.fold
      (fun name c acc ->
        let v = counter_value c in
        if v = 0 then acc else (name, v) :: acc)
      counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let ts =
    Hashtbl.fold
      (fun name a acc ->
        (name, { t_count = a.a_count; t_total = a.a_total; t_min = a.a_min; t_max = a.a_max })
        :: acc)
      timings []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let hs =
    Hashtbl.fold
      (fun name h acc ->
        let s = hist_snap_of h in
        if s.hs_count = 0 then acc else (name, s) :: acc)
      hists []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { sn_counters = cs; sn_timings = ts; sn_hists = hs }

let flush_counters () =
  match !sink with
  | None -> ()
  | Some _ ->
    let t = now () in
    let snap = snapshot () in
    List.iter
      (fun (name, v) -> emit_event t "c" name [ ("value", Json.Int v) ])
      snap.sn_counters;
    List.iter
      (fun (name, tm) ->
        emit_event t "h" name
          [
            ("count", Json.Int tm.t_count);
            ("total", Json.Float tm.t_total);
            ("min", Json.Float tm.t_min);
            ("max", Json.Float tm.t_max);
          ])
      snap.sn_timings

(* Timing aggregates are created on the first observation, so count >= 1
   and min/max are finite — but clamp anyway so no emitter can ever print
   a JSON [null] where a number is expected (downstream consumers parse
   these fields as floats). *)
let json_finite x = Json.Float (if Float.is_finite x then x else 0.0)

let snapshot_to_json snap =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) snap.sn_counters));
      ( "timings",
        Json.Obj
          (List.map
             (fun (name, t) ->
               ( name,
                 Json.Obj
                   [
                     ("count", Json.Int t.t_count);
                     ("total_s", json_finite t.t_total);
                     ("min_s", json_finite t.t_min);
                     ("max_s", json_finite t.t_max);
                   ] ))
             snap.sn_timings) );
      ("hists", Json.Obj (List.map (fun (name, h) -> (name, hist_snap_to_json h)) snap.sn_hists));
    ]

let report_to_json snap = Json.to_string (snapshot_to_json snap)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

let prom_name name =
  let buf = Buffer.create (String.length name + 8) in
  Buffer.add_string buf "egglog_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let prom_float x =
  if Float.is_nan x then "NaN"
  else if x = infinity then "+Inf"
  else if x = neg_infinity then "-Inf"
  else Printf.sprintf "%.12g" x

let prometheus_of_snapshot snap =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (name, v) ->
      let m = prom_name name in
      line "# TYPE %s_total counter" m;
      line "%s_total %d" m v)
    snap.sn_counters;
  List.iter
    (fun (name, t) ->
      let m = prom_name name ^ "_seconds" in
      line "# TYPE %s summary" m;
      line "%s_count %d" m t.t_count;
      line "%s_sum %s" m (prom_float (if Float.is_finite t.t_total then t.t_total else 0.0)))
    snap.sn_timings;
  List.iter
    (fun (name, h) ->
      let m = prom_name name in
      line "# TYPE %s histogram" m;
      let cum = ref 0 in
      List.iter
        (fun (b, n) ->
          cum := !cum + n;
          line "%s_bucket{le=\"%s\"} %d" m (prom_float (hist_bucket_le b)) !cum)
        h.hs_buckets;
      line "%s_bucket{le=\"+Inf\"} %d" m h.hs_count;
      line "%s_sum %s" m (prom_float h.hs_sum);
      line "%s_count %d" m h.hs_count)
    snap.sn_hists;
  Buffer.contents buf

let pp_table fmt snap =
  let name_width =
    List.fold_left
      (fun w (name, _) -> max w (String.length name))
      0
      (List.map (fun (n, _) -> (n, ())) snap.sn_counters
      @ List.map (fun (n, _) -> (n, ())) snap.sn_timings)
  in
  let w = max 24 name_width in
  if snap.sn_timings <> [] then begin
    Format.fprintf fmt "%-*s %10s %12s %12s %12s@\n" w "timing" "count" "total" "min" "max";
    List.iter
      (fun (name, t) ->
        Format.fprintf fmt "%-*s %10d %11.6fs %11.6fs %11.6fs@\n" w name t.t_count t.t_total
          t.t_min t.t_max)
      snap.sn_timings
  end;
  if snap.sn_counters <> [] then begin
    if snap.sn_timings <> [] then Format.fprintf fmt "@\n";
    Format.fprintf fmt "%-*s %12s@\n" w "counter" "value";
    List.iter (fun (name, v) -> Format.fprintf fmt "%-*s %12d@\n" w name v) snap.sn_counters
  end
