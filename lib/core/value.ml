type t =
  | VUnit
  | VBool of bool
  | VInt of int
  | VRat of Rat.t
  | VStr of Symbol.t
  | VId of int
  | VSet of t list
  | VVec of t list

let rank = function
  | VUnit -> 0
  | VBool _ -> 1
  | VInt _ -> 2
  | VRat _ -> 3
  | VStr _ -> 4
  | VId _ -> 5
  | VSet _ -> 6
  | VVec _ -> 7

let rec compare a b =
  match (a, b) with
  | VUnit, VUnit -> 0
  | VBool x, VBool y -> Bool.compare x y
  | VInt x, VInt y -> Int.compare x y
  | VRat x, VRat y -> Rat.compare x y
  | VStr x, VStr y -> Symbol.compare x y
  | VId x, VId y -> Int.compare x y
  | VSet x, VSet y -> List.compare compare x y
  | VVec x, VVec y -> List.compare compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let rec hash = function
  | VUnit -> 17
  | VBool b -> if b then 31 else 37
  | VInt i -> i * 0x9e3779b1
  | VRat r -> Rat.hash r
  | VStr s -> Symbol.hash s lxor 0x55555555
  | VId i -> (i * 0x2545f491) lxor 0x0f0f0f0f
  | VSet xs -> List.fold_left (fun acc x -> (acc * 486187739) lxor hash x) 3 xs
  | VVec xs -> List.fold_left (fun acc x -> (acc * 100000007) lxor hash x) 11 xs

let mk_set xs = VSet (List.sort_uniq compare xs)

(* Physical identity is preserved when nothing maps, so callers can use
   [v == map_symbols f v] as a cheap "contained no symbol of interest"
   test. A set whose elements were rewritten is re-canonicalized: element
   order is id order, and the mapping can change relative ids. *)
let rec map_symbols f v =
  match v with
  | VUnit | VBool _ | VInt _ | VRat _ | VId _ -> v
  | VStr s ->
    let s' = f s in
    if Symbol.equal s s' then v else VStr s'
  | VSet xs ->
    let xs' = List.map (map_symbols f) xs in
    if List.for_all2 (fun a b -> a == b) xs xs' then v else mk_set xs'
  | VVec xs ->
    let xs' = List.map (map_symbols f) xs in
    if List.for_all2 (fun a b -> a == b) xs xs' then v else VVec xs'

(* Deterministic modeled size. The constants approximate the OCaml runtime
   representation (words on 64-bit) but the only property that matters is
   that the model is a pure function of the value — independent of the
   allocator, sharing, or GC state — so byte budgets trip at the same
   iteration on every run. *)
let rec modeled_bytes = function
  | VUnit | VBool _ | VInt _ | VId _ -> 8
  | VRat _ -> 32
  | VStr s -> 24 + String.length (Symbol.name s)
  | VSet xs | VVec xs ->
    List.fold_left (fun acc x -> acc + 16 + modeled_bytes x) 24 xs

let set_elements = function
  | VSet xs -> xs
  | VUnit | VBool _ | VInt _ | VRat _ | VStr _ | VId _ | VVec _ ->
    invalid_arg "Value.set_elements"

let rec type_of ~sort_of_id = function
  | VUnit -> Ty.Unit
  | VBool _ -> Ty.Bool
  | VInt _ -> Ty.Int
  | VRat _ -> Ty.Rational
  | VStr _ -> Ty.String
  | VId i -> sort_of_id i
  | VSet [] -> Ty.Set Ty.Unit
  | VSet (x :: _) -> Ty.Set (type_of ~sort_of_id x)
  | VVec [] -> Ty.Vec Ty.Unit
  | VVec (x :: _) -> Ty.Vec (type_of ~sort_of_id x)

let rec pp fmt = function
  | VUnit -> Format.pp_print_string fmt "()"
  | VBool b -> Format.pp_print_bool fmt b
  | VInt i -> Format.pp_print_int fmt i
  | VRat r -> Rat.pp fmt r
  | VStr s -> Format.fprintf fmt "%S" (Symbol.name s)
  | VId i -> Format.fprintf fmt "#%d" i
  | VSet xs ->
    Format.fprintf fmt "{@[<hov 1>%a@]}" (Format.pp_print_list ~pp_sep:Format.pp_print_space pp) xs
  | VVec xs ->
    Format.fprintf fmt "[@[<hov 1>%a@]]" (Format.pp_print_list ~pp_sep:Format.pp_print_space pp) xs

let to_string v = Format.asprintf "%a" pp v

let hash_key (key : t array) =
  let h = ref (Array.length key) in
  Array.iter (fun v -> h := (!h * 31) lxor hash v) key;
  !h land max_int

let equal_key (a : t array) (b : t array) =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (equal a.(i) b.(i) && go (i + 1)) in
  go 0

module Key_tbl = Hashtbl.Make (struct
  type nonrec t = t array

  let equal = equal_key
  let hash = hash_key
end)
