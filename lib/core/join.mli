(** Generic (worst-case optimal) join over per-atom hash tries — the
    execution engine behind e-matching-as-a-relational-query (§5.1).

    Per-atom timestamp windows implement the semi-naïve delta atoms of
    §4.3: variant [j] of a rule restricts atoms before [j] to old rows,
    atom [j] to rows stamped since the rule last ran, and later atoms to
    everything. *)

exception Internal_error of { in_func : Symbol.t option; detail : string }
(** A join invariant was broken (missing table, unbound variable, exhausted
    trie cursor) — a bug in query planning or scope management, not a user
    error. [in_func] names the function symbol involved when known; the
    engine adds the rule name before surfacing it. *)

type stamp_range = { lo : int; hi : int }
(** Rows with [lo <= stamp < hi] participate. *)

val all_rows : stamp_range

type cache
(** Memo for per-atom tries, shared by every rule searched against one
    database snapshot (create one per engine iteration). Keyed by
    (function, projection signature, stamp window), so e.g. every rule whose
    pattern scans [Add] with the same variable shape reuses one trie. *)

val new_cache : unit -> cache

val clear_scratch : cache -> unit
(** Drop the per-iteration (delta/windowed) entries; persistent full-table
    entries stay and are revalidated against table versions — and patched
    forward when the table's log shows append-only growth since the build,
    instead of being rebuilt from scratch. *)

val clear_all : cache -> unit
(** Drop both tiers. Called when the engine replaces its database object
    (pop, transaction rollback): entries for the dead table incarnations
    can never hit again (keys carry {!Table.uid}), so this is memory
    hygiene, not a correctness requirement. *)

val set_frozen : cache -> bool -> unit
(** Put the cache in read-only mode for the parallel search phase: valid
    entries still hit (concurrent hashtable reads are safe with no
    writer), but misses build private structures without storing, and
    stale persistent entries are rebuilt privately instead of patched in
    place. Freeze after {!prebuild}, unfreeze before the apply phase. *)

val prebuild :
  Database.t -> ?cache:cache -> ?fast_paths:bool -> Compile.cquery -> ranges:stamp_range array -> unit
(** Serially warm the full-range cache entries that a {!search} with the
    same arguments would use, so a subsequent frozen parallel search
    services them as hits. No-op without a cache or while frozen.
    Windowed/delta entries are left to the tasks (cheap, private). *)

val search :
  Database.t ->
  ?cache:cache ->
  ?fast_paths:bool ->
  Compile.cquery ->
  ranges:stamp_range array ->
  (Value.t array -> unit) ->
  unit
(** Invoke the callback once per match with the variable binding (indexed
    like [cquery.var_names]; the array is reused, callers must copy).
    [fast_paths:false] forces the generic trie join even for one- and
    two-atom queries (ablation). *)

val exists : Database.t -> Compile.cquery -> bool
(** Any match at all (all rows considered)? *)

(** {2 Compiled plans}

    A plan lowered once to a tree of specialized OCaml closures (see
    {!Plan_compile}): typed column readers, hoisted constant checks,
    per-arity binding loops, pre-resolved primitive guards. A compiled
    plan requests exactly the cache entries, bumps exactly the counters
    and emits matches in exactly the order of the interpreted [search]
    with the same arguments — byte-identical output in both modes, at any
    [--jobs] count. Compile in the engine's serial pre-phase (plan cache);
    one compiled plan may then be searched from several domains (each
    search instantiates its own mutable state). *)

type compiled

val compile_plan : ?fast_paths:bool -> Compile.cquery -> compiled
(** Lower a plan. The lowering mirrors [search]'s dispatch: single-atom
    and two-atom fast paths (when [fast_paths], the default, and every
    atom binds at least one variable), the generic trie join otherwise.
    Atomless queries stay on the interpreter. Bumps the
    [join.compiled_plans] / [join.interp_fallbacks] counter pair. *)

val search_compiled :
  Database.t ->
  ?cache:cache ->
  compiled ->
  ranges:stamp_range array ->
  (Value.t array -> unit) ->
  unit
(** Like {!search}, driving the compiled evaluator. The binding array is
    reused; callers must copy. *)

val is_compiled : compiled -> bool
(** False only for the interpreter fallback (atomless queries). *)

val compiled_descr : compiled -> string
(** One-line description of the chosen lowering, e.g.
    ["compiled single-atom (arity 2, specialized)"]. *)

val describe_lowering : ?fast_paths:bool -> Compile.cquery -> string
(** The description {!compile_plan} would produce, without building
    closures or touching counters — what [--explain-plans] prints. *)
