exception Journal_error of string

let error fmt = Format.kasprintf (fun s -> raise (Journal_error s)) fmt

let magic = "egglog-journal"
let format_version = 1
let header_line seq = Printf.sprintf "%s %d %d\n" magic format_version seq

(* ---- low-level file plumbing ---- *)

let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let fsync_dir path =
  (* make renames durable; directory fsync failing only weakens durability,
     never corrupts, so errors are ignored *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd
  | exception Unix.Unix_error _ -> ()

let atomic_write path content =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd content;
      Unix.fsync fd);
  Sys.rename tmp path;
  fsync_dir path

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> contents
  | exception Sys_error msg -> error "%s" msg

(* ---- scanning ----

   A journal is a header line [egglog-journal 1 <seq>] followed by records

   {v
   r <payload-length> <crc32-hex>\n
   <payload bytes>\n
   v}

   Records are length-framed (payloads may contain newlines) and
   checksummed. A crash during {!append} can leave at most one partial
   record at the end of the file; the scanner stops at the first record that
   is incomplete or fails its checksum and reports everything before it as
   the valid prefix. The header itself is always intact because journal
   creation and {!reset} go through an atomic temp-file + rename. *)

type contents = { seq : int; entries : string list; torn : bool }

type scan = { sc_contents : contents; sc_valid_len : int }

let scan path : scan =
  let data = read_file path in
  let total = String.length data in
  match String.index_opt data '\n' with
  | None -> error "%s: missing or torn journal header" path
  | Some nl -> (
    let line = String.sub data 0 nl in
    match String.split_on_char ' ' line with
    | [ m; version_s; seq_s ] when String.equal m magic -> (
      match (int_of_string_opt version_s, int_of_string_opt seq_s) with
      | Some v, Some seq when v = format_version ->
        let entries = ref [] in
        let pos = ref (nl + 1) in
        let valid = ref (nl + 1) in
        let torn = ref false in
        (try
           while !pos < total do
             match String.index_from_opt data !pos '\n' with
             | None ->
               torn := true;
               raise Exit
             | Some rnl -> (
               let rline = String.sub data !pos (rnl - !pos) in
               match String.split_on_char ' ' rline with
               | [ "r"; len_s; crc_s ] -> (
                 match (int_of_string_opt len_s, Checksum.of_hex crc_s) with
                 | Some len, Some crc when len >= 0 ->
                   let pstart = rnl + 1 in
                   if pstart + len + 1 > total then begin
                     torn := true;
                     raise Exit
                   end;
                   let payload = String.sub data pstart len in
                   if data.[pstart + len] <> '\n' || Checksum.crc32 payload <> crc
                   then begin
                     torn := true;
                     raise Exit
                   end;
                   entries := payload :: !entries;
                   pos := pstart + len + 1;
                   valid := !pos
                 | _ ->
                   torn := true;
                   raise Exit)
               | _ ->
                 torn := true;
                 raise Exit)
           done
         with Exit -> ());
        {
          sc_contents = { seq; entries = List.rev !entries; torn = !torn };
          sc_valid_len = !valid;
        }
      | Some v, Some _ ->
        error "%s: unsupported journal format version %d (this build reads version %d)" path v
          format_version
      | _ -> error "%s: malformed journal header %S" path line)
    | _ -> error "%s: not an egglog journal (bad magic in %S)" path line)

let read path = (scan path).sc_contents

(* ---- the append handle ---- *)

type t = { path : string; mutable fd : Unix.file_descr; mutable closed : bool }

let path t = t.path

let open_at_end path pos =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  ignore (Unix.lseek fd pos Unix.SEEK_SET);
  fd

let create path ~ckpt_seq =
  atomic_write path (header_line ckpt_seq);
  let len = String.length (header_line ckpt_seq) in
  { path; fd = open_at_end path len; closed = false }

let open_append path =
  let { sc_contents; sc_valid_len } = scan path in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  if sc_contents.torn then begin
    (* drop the torn tail for good, so later scans see a clean journal *)
    Unix.ftruncate fd sc_valid_len;
    Unix.fsync fd
  end;
  ignore (Unix.lseek fd sc_valid_len Unix.SEEK_SET);
  ({ path; fd; closed = false }, sc_contents)

let check_open t = if t.closed then error "%s: journal handle is closed" t.path

let c_appends = Telemetry.counter "journal.appends"
let c_append_bytes = Telemetry.counter "journal.append_bytes"
let c_resets = Telemetry.counter "journal.resets"
let h_append = Telemetry.histogram "journal.append_s"

let append t payload =
  check_open t;
  Telemetry.bump c_appends 1;
  Telemetry.bump c_append_bytes (String.length payload);
  let dt, () =
    Telemetry.timed_span "journal.append" @@ fun () ->
  Fault.hit "journal.append.before";
  let hdr =
    Printf.sprintf "r %d %s\n" (String.length payload)
      (Checksum.to_hex (Checksum.crc32 payload))
  in
  if Fault.would_crash "journal.append.torn" then begin
    (* simulate a torn write: part of the record reaches the disk, then the
       process dies mid-append *)
    let full = hdr ^ payload ^ "\n" in
    let cut = String.length hdr + (String.length payload / 2) in
    write_all t.fd (String.sub full 0 cut);
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    Fault.crash "journal.append.torn"
  end;
    write_all t.fd hdr;
    write_all t.fd payload;
    write_all t.fd "\n";
    Unix.fsync t.fd;
    Fault.hit "journal.append.synced"
  in
  Telemetry.hist_record h_append dt

let reset t ~ckpt_seq =
  check_open t;
  Telemetry.bump c_resets 1;
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  atomic_write t.path (header_line ckpt_seq);
  t.fd <- open_at_end t.path (String.length (header_line ckpt_seq))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
