type t = int

(* Interning must be domain-safe: string primitives can intern fresh
   symbols from inside the parallel search phase. The lock only guards
   [intern]; [name] stays lock-free because ids are handed out before the
   lock is released and the per-id [string ref] cells are blitted (not
   recreated) when [names] grows, so a published id always reaches its
   cell through whichever array snapshot the reader holds. *)
let lock = Mutex.create ()
let table : (string, int) Hashtbl.t = Hashtbl.create 256
let names : string ref array ref = ref (Array.init 256 (fun _ -> ref ""))
let count = ref 0

let intern s =
  Mutex.lock lock;
  let i =
    match Hashtbl.find_opt table s with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      if i >= Array.length !names then begin
        let bigger = Array.init (2 * Array.length !names) (fun _ -> ref "") in
        Array.blit !names 0 bigger 0 i;
        names := bigger
      end;
      !names.(i) := s;
      Hashtbl.add table s i;
      i
  in
  Mutex.unlock lock;
  i

let name i = !(!names.(i))
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (i : t) = i
let pp fmt i = Format.pp_print_string fmt (name i)
