type t = int

(* Interning must be domain-safe: string primitives can intern fresh
   symbols from inside the parallel search phase. The lock only guards
   [intern]; [name] stays lock-free because ids are handed out before the
   lock is released and the per-id [string ref] cells are blitted (not
   recreated) when [names] grows, so a published id always reaches its
   cell through whichever array snapshot the reader holds.

   Speculative mode makes the *order* of fresh interns deterministic under
   parallel search: while speculating, a miss is assigned a provisional id
   from a disjoint high range ([spec_base +]) and the global table is left
   untouched. The engine later walks the match buffers in the canonical
   serial order and calls [resolve] on each provisional symbol, so real
   ids are handed out in an order independent of domain scheduling. *)
let lock = Mutex.create ()
let table : (string, int) Hashtbl.t = Hashtbl.create 256
let names : string ref array ref = ref (Array.init 256 (fun _ -> ref ""))
let count = ref 0

let spec_base = 0x4000_0000
let spec_on = ref false
let spec_table : (string, int) Hashtbl.t = Hashtbl.create 64
let spec_names : string ref array ref = ref (Array.init 64 (fun _ -> ref ""))
let spec_count = ref 0

(* Both allocators assume [lock] is held. *)
let alloc_real s =
  match Hashtbl.find_opt table s with
  | Some i -> i
  | None ->
    let i = !count in
    incr count;
    if i >= Array.length !names then begin
      let bigger = Array.init (2 * Array.length !names) (fun _ -> ref "") in
      Array.blit !names 0 bigger 0 i;
      names := bigger
    end;
    !names.(i) := s;
    Hashtbl.add table s i;
    i

let alloc_spec s =
  match Hashtbl.find_opt spec_table s with
  | Some i -> i
  | None ->
    let k = !spec_count in
    incr spec_count;
    if k >= Array.length !spec_names then begin
      let bigger = Array.init (2 * Array.length !spec_names) (fun _ -> ref "") in
      Array.blit !spec_names 0 bigger 0 k;
      spec_names := bigger
    end;
    !spec_names.(k) := s;
    Hashtbl.add spec_table s (spec_base + k);
    spec_base + k

let intern s =
  Mutex.lock lock;
  let i =
    match Hashtbl.find_opt table s with
    | Some i -> i
    | None -> if !spec_on then alloc_spec s else alloc_real s
  in
  Mutex.unlock lock;
  i

let name i = if i >= spec_base then !(!spec_names.(i - spec_base)) else !(!names.(i))

let is_speculative i = i >= spec_base

let begin_speculative () =
  Mutex.lock lock;
  if !spec_on then begin
    Mutex.unlock lock;
    invalid_arg "Symbol.begin_speculative: already speculating"
  end;
  spec_on := true;
  Mutex.unlock lock

let resolve i =
  if i < spec_base then i
  else begin
    Mutex.lock lock;
    let r = alloc_real !(!spec_names.(i - spec_base)) in
    Mutex.unlock lock;
    r
  end

(* Stop assigning provisional ids but keep the pending names so [resolve]
   still works: the apply phase stages on worker domains under speculation,
   then replays on the caller, where any serial re-evaluation (a fallback)
   must intern for real while committed traces still resolve their
   provisional symbols. *)
let pause_speculative () =
  Mutex.lock lock;
  spec_on := false;
  Mutex.unlock lock

let clear_speculative () =
  Mutex.lock lock;
  spec_on := false;
  Hashtbl.reset spec_table;
  spec_count := 0;
  Mutex.unlock lock

let speculating () = !spec_on
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (i : t) = i
let pp fmt i = Format.pp_print_string fmt (name i)
