(* Surface abstract syntax of the egglog language (§3). The frontend parses
   s-expressions into these commands; [Engine] desugars the sugar forms
   (datatype, rewrite, define, relation facts) into the core constructs. *)

type expr =
  | Var of string
  | Lit of Value.t
  | Call of string * expr list

(* A fact in a rule query: either an equation between patterns or a bare
   pattern that must be defined/hold (unit functions, primitive guards). *)
type fact = Eq of expr * expr | Holds of expr

type action =
  | Set of string * expr list * expr  (* (set (f args) v) *)
  | Union of expr * expr
  | Let of string * expr  (* action-local binding *)
  | Do of expr  (* evaluate for effect: populates terms / relation shorthand *)
  | Panic of string
  | Delete of string * expr list  (* extension: remove a row *)

type rule = {
  rule_name : string option;
  query : fact list;
  actions : action list;
  ruleset : string option;  (* None: the default ruleset *)
}

(* Type expressions as written in declarations, e.g. i64 or (Set Ident). *)
type tyexpr = T_name of string | T_set of tyexpr | T_vec of tyexpr

type merge_spec =
  | Merge_default  (* union for sorts, panic for base types *)
  | Merge_expr of expr  (* with [old] and [new] bound *)

type function_decl = {
  fname : string;
  arg_tys : tyexpr list;
  ret_ty : tyexpr;
  merge : merge_spec;
  default : expr option;
  cost : int option;
}

(* Resource budget for a run: every field optional, all enforced
   cooperatively by the engine (see Engine.stop_reason). *)
type run_spec = {
  run_limit : int option;  (* iteration cap; None: engine default *)
  run_node_limit : int option;  (* stop once total tuples exceed this *)
  run_time_limit : float option;  (* stop after this many wall-clock seconds *)
  run_until : fact list;  (* stop as soon as all facts hold; [] = never *)
  run_jobs : int option;  (* search-phase domains; 0 = one per core; None: session default *)
  run_memory_limit : int option;  (* stop once modeled database bytes exceed this *)
}

let plain_run limit =
  { run_limit = limit; run_node_limit = None; run_time_limit = None; run_until = [];
    run_jobs = None; run_memory_limit = None }

(* Run schedules: compose rulesets into saturation strategies. *)
type schedule =
  | Sched_run of string option * int  (* (run <ruleset>? <n>) *)
  | Sched_saturate of schedule list  (* repeat until nothing changes *)
  | Sched_seq of schedule list
  | Sched_repeat of int * schedule list

type command =
  | Decl_sort of string
  | Decl_ruleset of string
  | Decl_datatype of string * (string * tyexpr list) list
  | Decl_function of function_decl
  | Decl_relation of string * tyexpr list
  | Add_rule of rule
  | Add_rewrite of { lhs : expr; rhs : expr; conds : fact list; ruleset : string option }
  | Define of string * expr
  | Top_action of action
  | Run of run_spec  (* limit None: run to saturation (bounded by engine cap) *)
  | Run_schedule of schedule list
  | Check of fact list
  | Check_fail of fact list  (* (fail (check ...)) *)
  | Extract of expr * int  (* number of variants to report (>= 1) *)
  | Simplify of int * expr  (* run n iterations in a scratch scope, extract *)
  | Include of string  (* load another .egg file *)
  | Explain of expr * expr
  | Push
  | Pop
  | Print_function of string * int
  | Print_size of string
  | Print_stats

let rec pp_expr fmt = function
  | Var x -> Format.pp_print_string fmt x
  | Lit v -> Value.pp fmt v
  | Call (f, []) -> Format.fprintf fmt "(%s)" f
  | Call (f, args) ->
    Format.fprintf fmt "(@[<hov 1>%s %a@])" f
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_expr)
      args

let pp_fact fmt = function
  | Eq (a, b) -> Format.fprintf fmt "(= %a %a)" pp_expr a pp_expr b
  | Holds e -> pp_expr fmt e
