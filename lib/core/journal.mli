(** Append-only, fsync'd write-ahead command journal.

    On disk, a journal is a header line

    {v egglog-journal <format-version> <checkpoint-seq> v}

    followed by length-framed, CRC-32-checksummed records, one per
    committed command:

    {v
    r <payload-length> <crc32-hex>\n
    <payload bytes>\n
    v}

    Every {!append} is fsync'd before returning, so a command the journal
    reports as recorded survives a crash. A crash {e during} an append can
    leave at most one partial record at the end of the file; readers detect
    such a torn tail (short record, missing framing, or checksum mismatch),
    drop it, and report it — a torn tail is an expected crash artifact, not
    corruption, and is never fatal.

    The [checkpoint-seq] in the header names the checkpoint generation this
    journal continues from: after writing checkpoint [N], the journal is
    {!reset} to an empty journal with header seq [N]. Journal creation and
    {!reset} write the header via an atomic temp-file + rename, so the
    header itself can never be torn. *)

exception Journal_error of string
(** Unrecoverable problems: unreadable file, bad magic, unsupported format
    version, malformed header. (A torn {e tail} is not an error.) *)

type t
(** An open append handle. *)

type contents = {
  seq : int;  (** checkpoint sequence from the header *)
  entries : string list;  (** valid record payloads, in append order *)
  torn : bool;  (** a partial trailing record was present (and dropped) *)
}

val create : string -> ckpt_seq:int -> t
(** Atomically (re)initialize the file to an empty journal with the given
    checkpoint sequence and open it for appending. *)

val open_append : string -> t * contents
(** Open an existing journal for appending, returning what it held. If the
    file ends in a torn record, the torn bytes are truncated away (the
    returned {!contents} has [torn = true]). *)

val read : string -> contents
(** Read-only scan; does not modify the file (a torn tail is reported but
    left in place). *)

val append : t -> string -> unit
(** Append one record and fsync. When the record's payload has reached the
    disk, the command it encodes is durable. *)

val reset : t -> ckpt_seq:int -> unit
(** Atomically replace the journal with an empty one whose header carries
    [ckpt_seq] — called right after checkpoint [ckpt_seq] lands. *)

val path : t -> string
val close : t -> unit
