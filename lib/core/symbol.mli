(** Globally interned strings. Function names, sort names and string values
    are interned so the hot paths (table keys, trie probes) compare ints. *)

type t = private int

val intern : string -> t
val name : t -> string

(** {1 Speculative interning}

    During a parallel search fan-out, string primitives can intern fresh
    symbols from several domains at once; without care the id assignment
    order — and with it {!compare}, which orders set elements and hence
    canonical dumps — would depend on scheduling. While speculative mode
    is on, a miss gets a {e provisional} id from a disjoint high range and
    the global table is untouched (hits still return their real ids). The
    engine then walks its match buffers in the canonical serial order and
    {!resolve}s each provisional symbol, so real ids are handed out in a
    deterministic order regardless of which domain first saw the string.
    Provisional ids must never escape the search phase. *)

val begin_speculative : unit -> unit
(** Enter speculative mode. @raise Invalid_argument when already on. *)

val pause_speculative : unit -> unit
(** Stop assigning provisional ids (fresh misses intern for real again)
    but keep the pending table alive so {!resolve} still works. Used by
    the staged apply phase: worker-side evaluation runs speculatively, the
    caller-side merge resolves committed traces while serial fallback
    re-evaluation interns directly. {!clear_speculative} still drops
    everything. *)

val clear_speculative : unit -> unit
(** Leave speculative mode and drop all provisional ids (idempotent). *)

val speculating : unit -> bool

val is_speculative : t -> bool
(** True for provisional ids. *)

(** [resolve i] assigns (or looks up) the real id for a provisional
    symbol; identity on real ids. Usable during and after speculative
    mode, until {!clear_speculative} drops the provisional names. *)
val resolve : t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
