(** Canonical database serialization, versioned snapshot files, and
    checkpoint files for the durability layer.

    {2 Canonical dumps}

    {!dump} emits the database as a single s-expression whose bytes depend
    only on the database's {e content}: rows and tables are sorted, and
    e-class ids are renumbered canonically (by iterative color refinement
    over the rows they appear in), so two databases holding the same facts
    modulo a renaming of ids serialize identically — regardless of
    hash-table iteration order, insertion history, union-find representative
    choice or concrete id allocation. Crash recovery relies on this:
    a recovered engine allocates different internal ids than the process it
    mirrors, yet [dump] of both is byte-identical. (When a database has
    genuinely indistinguishable ids the renumbering breaks the tie
    deterministically per-process; for such automorphic ids any choice
    yields the same bytes.)

    {2 On-disk container}

    {!write_snapshot} / {!write_checkpoint} wrap the payload in a versioned
    container — a [magic version] header line, a [length crc32] line, then
    the payload — written to a temp file, fsync'd, and atomically renamed
    into place. Readers verify magic, version, length and checksum and
    raise {!Load_error} with a clear message on any mismatch (including
    pre-versioned legacy files). *)

exception Load_error of string

val dump : Engine.t -> Sexpr.t
(** Rebuilds, then serializes the database (data only — not schema, rules,
    or push/pop stack) in canonical form. *)

val dump_string : Engine.t -> string

val load : Engine.t -> Sexpr.t -> unit
(** Load a dump into an engine whose schema (sorts and functions) is
    already declared but whose database is {e empty} — no ids, no rows.
    Loading into a populated database has no well-defined meaning (id
    remapping could silently alias or duplicate rows), so it raises
    {!Load_error} instead of performing an unspecified merge. Also raises
    on unknown sorts/functions and malformed input. *)

val load_string : Engine.t -> string -> unit

(** {1 Snapshot files} *)

val write_snapshot : Engine.t -> string -> unit
(** Atomic, versioned, checksummed dump-to-file (the CLI's [--dump]). A
    crash mid-write never truncates or corrupts an existing file at the
    destination path. *)

val load_snapshot : Engine.t -> string -> unit
(** Read a {!write_snapshot} file and {!load} it. @raise Load_error on
    magic/version mismatch (e.g. a pre-versioned snapshot), truncation,
    checksum failure, or any {!load} error. *)

(** {1 Checkpoint files}

    A checkpoint persists everything needed to reconstruct an engine:
    the committed schema-shaping command history ({!Engine.decl_commands}),
    the canonical data dump, the count of commands committed so far, and a
    sequence number tying it to the journal generation that follows it. *)

type checkpoint = {
  ck_seq : int;
      (** checkpoint sequence number; the journal generation that follows it
          carries the same number *)
  ck_committed : int;
      (** journal-worthy commands committed before this checkpoint *)
  ck_program : Ast.command list;  (** replayable declarations, in order *)
  ck_database : Sexpr.t;  (** canonical {!dump} *)
}

val write_checkpoint : Engine.t -> path:string -> seq:int -> committed:int -> unit
val read_checkpoint : string -> checkpoint
(** @raise Load_error on any corruption or version mismatch. *)
