let error fmt = Format.kasprintf (fun s -> raise (Journal.Journal_error s)) fmt

type t = {
  engine : Engine.t;
  journal : Journal.t;
  checkpoint_every : int option;
  mutable seq : int;
  mutable committed : int;
  mutable since_ckpt : int;
}

let engine t = t.engine
let committed t = t.committed

let checkpoint_path base seq = Printf.sprintf "%s.ckpt.%d" base seq

(* Read-only commands leave no mark on the database, so recording them
   would only bloat the journal and slow replay. Everything else — even
   commands that happen not to change anything this run, like a [check] —
   is journaled, because replay must reproduce the uninterrupted run's
   command count exactly. *)
let journal_worthy (cmd : Ast.command) =
  match cmd with
  | Ast.Print_function _ | Ast.Print_size _ | Ast.Print_stats -> false
  | _ -> true

let c_checkpoints = Telemetry.counter "checkpoint.writes"
let h_checkpoint = Telemetry.histogram "checkpoint.write_s"

let do_checkpoint t =
  let seq = t.seq + 1 in
  let base = Journal.path t.journal in
  Telemetry.bump c_checkpoints 1;
  let dt, () =
    Telemetry.timed_span "checkpoint.write" (fun () ->
        Serialize.write_checkpoint t.engine ~path:(checkpoint_path base seq) ~seq
          ~committed:t.committed)
  in
  Telemetry.hist_record h_checkpoint dt;
  (* keep the previous checkpoint as a backup for manual recovery; prune
     anything older *)
  let stale = checkpoint_path base (seq - 2) in
  if Sys.file_exists stale then (try Sys.remove stale with Sys_error _ -> ());
  Fault.hit "checkpoint.before-reset";
  Journal.reset t.journal ~ckpt_seq:seq;
  t.seq <- seq;
  t.since_ckpt <- 0

let checkpoint t =
  if Engine.scope_depth t.engine > 0 then
    error "cannot checkpoint inside an open (push) scope";
  do_checkpoint t

let maybe_checkpoint t =
  match t.checkpoint_every with
  | Some n when t.since_ckpt >= n && Engine.scope_depth t.engine = 0 -> do_checkpoint t
  | _ -> ()

let run_command t (cmd : Ast.command) : string list =
  if not (journal_worthy cmd) then Engine.run_command t.engine cmd
  else begin
    (* Render the journal record up front: a command that cannot be printed
       back to concrete syntax (only constructible through the typed API)
       must be rejected before execution, or the journal would silently
       diverge from the state it claims to reproduce. *)
    let text = Frontend.command_to_string cmd in
    (* [Engine.run_command] is transactional — if it raises, the engine
       rolled back and we journal nothing, so the journal records exactly
       the committed history. *)
    let outputs = Engine.run_command t.engine cmd in
    Journal.append t.journal text;
    t.committed <- t.committed + 1;
    t.since_ckpt <- t.since_ckpt + 1;
    maybe_checkpoint t;
    outputs
  end

let run_program t cmds = List.concat_map (run_command t) cmds

(* The server's request path: the request body already executed (inside one
   whole-request transaction) and committed; journal its commands after the
   fact. Must only be called with commands that actually committed on
   [engine t] — journaling anything else would make replay diverge. *)
let append_committed t (cmd : Ast.command) =
  if journal_worthy cmd then begin
    Journal.append t.journal (Frontend.command_to_string cmd);
    t.committed <- t.committed + 1;
    t.since_ckpt <- t.since_ckpt + 1;
    maybe_checkpoint t
  end

let attach engine ~journal_path ~checkpoint_every =
  if Sys.file_exists journal_path then
    error
      "journal %s already exists; pass --recover to resume it, or remove it to start fresh"
      journal_path;
  let journal = Journal.create journal_path ~ckpt_seq:0 in
  { engine; journal; checkpoint_every; seq = 0; committed = 0; since_ckpt = 0 }

(* ---- recovery ---- *)

type recovery_report = {
  rc_checkpoint : int option;
  rc_replayed : int;
  rc_committed : int;
  rc_torn : bool;
  rc_warnings : string list;
}

let command_of_entry entry =
  match Frontend.command_of_sexp (Sexpr.parse_one entry) with
  | [ cmd ] -> cmd
  | _ -> error "journal entry does not encode exactly one command: %s" entry
  | exception Sexpr.Parse_error { message; _ } ->
    error "unparsable journal entry (%s): %s" message entry
  | exception Frontend.Syntax_error msg ->
    error "malformed journal entry (%s): %s" msg entry

let load_checkpoint engine (ck : Serialize.checkpoint) =
  Telemetry.span "recover.load_checkpoint" (fun () ->
      List.iter (fun cmd -> ignore (Engine.run_command engine cmd)) ck.Serialize.ck_program;
      Serialize.load engine ck.Serialize.ck_database)

let recover engine ~journal_path ~checkpoint_every =
  let journal, contents = Journal.open_append journal_path in
  let j_seq = contents.Journal.seq in
  let warnings = ref [] in
  let warn fmt = Format.kasprintf (fun s -> warnings := s :: !warnings) fmt in
  if contents.Journal.torn then
    warn "dropped a torn trailing journal record (crash during append)";
  (* Which checkpoint goes with this journal? Normally generation [j_seq]
     (the journal was reset right after that checkpoint landed). A crash in
     the window between checkpoint rename and journal reset instead leaves a
     newer checkpoint [j_seq + 1] beside a stale journal — the stale entries
     are already folded into that checkpoint, so it wins and the journal is
     reset now. *)
  let next = checkpoint_path journal_path (j_seq + 1) in
  let fresh_start =
    if Sys.file_exists next then begin
      match Serialize.read_checkpoint next with
      | ck when ck.Serialize.ck_seq = j_seq + 1 -> Some ck
      | ck ->
        warn "ignoring %s: header names generation %d, not %d" next ck.Serialize.ck_seq
          (j_seq + 1);
        None
      | exception Serialize.Load_error msg ->
        warn "ignoring unreadable checkpoint %s: %s" next msg;
        None
    end
    else None
  in
  let report =
    match fresh_start with
    | Some ck ->
      load_checkpoint engine ck;
      Journal.reset journal ~ckpt_seq:ck.Serialize.ck_seq;
      {
        rc_checkpoint = Some ck.Serialize.ck_seq;
        rc_replayed = 0;
        rc_committed = ck.Serialize.ck_committed;
        rc_torn = contents.Journal.torn;
        rc_warnings = List.rev !warnings;
      }
    | None ->
      let base_committed, used =
        if j_seq = 0 then (0, None)
        else begin
          let path = checkpoint_path journal_path j_seq in
          match Serialize.read_checkpoint path with
          | ck when ck.Serialize.ck_seq = j_seq ->
            load_checkpoint engine ck;
            (ck.Serialize.ck_committed, Some j_seq)
          | ck ->
            error "%s: header names generation %d, but the journal continues generation %d"
              path ck.Serialize.ck_seq j_seq
          | exception Serialize.Load_error msg ->
            error
              "cannot recover: journal %s continues checkpoint generation %d, but that \
               checkpoint is missing or unreadable (%s)"
              journal_path j_seq msg
        end
      in
      let replayed = ref 0 in
      Telemetry.span "recover.replay" (fun () ->
          List.iter
            (fun entry ->
              ignore (Engine.run_command engine (command_of_entry entry));
              incr replayed)
            contents.Journal.entries);
      Telemetry.add "recover.replayed" !replayed;
      {
        rc_checkpoint = used;
        rc_replayed = !replayed;
        rc_committed = base_committed + !replayed;
        rc_torn = contents.Journal.torn;
        rc_warnings = List.rev !warnings;
      }
  in
  let seq = match report.rc_checkpoint with Some s -> s | None -> 0 in
  let t =
    {
      engine;
      journal;
      checkpoint_every;
      seq;
      committed = report.rc_committed;
      since_ckpt = report.rc_replayed;
    }
  in
  (t, report)

let close t = Journal.close t.journal
