(** Engine telemetry: monotonic-clock spans, named counters and timing
    histograms, and an optional JSONL trace-event sink.

    The paper's whole evaluation (§6) is about {e where time goes} —
    e-matching vs rebuilding vs apply, per-rule match counts, database
    growth across iterations — so every layer of the pipeline reports here:
    the generic join (tuples scanned, index builds/reuses, trie depth),
    the semi-naïve loop (per-phase split, delta sizes, scheduler bans),
    rebuilding (congruence rounds, unions, canonicalized tuples) and the
    durability layer (journal append latency, checkpoint timings).

    Design constraints, mirroring {!Fault}'s injection style:

    - {b Global and off by default.} All recording entry points are no-ops
      behind a single boolean check until {!enable} is called, so the fully
      disabled path costs one predictable branch and allocates nothing.
      Call sites that would have to build a dynamic string or field list
      must guard on {!is_enabled} themselves.
    - {b Monotonic.} {!now} reads CLOCK_MONOTONIC, so wall-clock jumps can
      neither corrupt phase timings nor fire time budgets early. The engine
      uses it for {e all} timing, including [:time-limit] deadlines.
    - {b Deterministic in tests.} {!set_clock} injects a fake clock; every
      timestamp and duration then comes from the injected source. *)

(** A minimal JSON value: enough to print the trace events and bench
    reports this module emits, and to parse them back in tests. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val to_string : t -> string
  (** Compact single-line rendering. Non-finite floats print as [null]
      (JSON has no representation for them). *)

  val parse : string -> t
  (** Parse one JSON document. @raise Parse_error on malformed input or
      trailing garbage. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] on missing field or non-object. *)

  val write_file : string -> t -> unit
  (** Write a document plus trailing newline, atomically enough for bench
      reports (plain create/write/close). *)
end

(** {1 Clock} *)

val now : unit -> float
(** Seconds on the telemetry clock. Monotonic (CLOCK_MONOTONIC) by
    default; the absolute value is meaningless, only differences are.
    Works whether or not telemetry is enabled. *)

val set_clock : (unit -> float) -> unit
(** Replace the clock (tests inject a deterministic fake). *)

val use_default_clock : unit -> unit

(** {1 Lifecycle} *)

val enable : ?sink:(string -> unit) -> unit -> unit
(** Turn recording on. [sink], when given, receives one JSON line per
    trace event (no trailing newline); without it only the aggregate
    counters and timings are maintained. The event-time origin is set to
    [now ()] at each call. *)

val disable : unit -> unit
(** Turn recording off and detach any sink. Aggregates are kept (read
    them with {!snapshot}); {!reset} clears them. *)

val is_enabled : unit -> bool

val reset : unit -> unit
(** Zero all counters and timing aggregates. Existing {!counter} handles
    stay valid. *)

(** {1 Counters and timings} *)

type counter
(** A named monotone counter. Handles are interned by name: create them
    once at module initialisation and {!bump} them from hot loops — a bump
    is one branch plus one add, and a no-op while disabled. *)

val counter : string -> counter
val bump : counter -> int -> unit

val add : string -> int -> unit
(** Convenience for cold paths: [bump (counter name) n]. *)

val record_max : counter -> int -> unit
(** Max-gauge update: the counter's reported value becomes the largest
    [n] ever recorded (e.g. [search.domains_used]). Main domain only. *)

val set_shard : int -> unit
(** Register the calling domain's counter shard. Counters are sharded per
    domain so pool workers can {!bump} without locks; shard [0] is the
    main domain (the default for every domain that never calls this), and
    {!Pool} workers register shard [index + 1] once at domain start.
    {!snapshot} sums the shards; it must only run on the main domain while
    no parallel phase is in flight. Worker-side {!observe} calls are
    buffered and merged at the next {!snapshot}; {!span}/{!instant} and
    the trace sink remain main-domain constructs except that worker
    events, if any, are tagged with a ["dom"] field. *)

val observe : string -> float -> unit
(** Record one observation into the named timing/histogram aggregate
    (count, total, min, max). Spans observe their duration automatically
    under their own name. *)

(** {1 Log-bucketed histograms}

    Deterministic distribution sketches: values land in power-of-two
    buckets (bucket [b] covers [(2^(b-65), 2^(b-64)]]; everything [<= 0]
    lands in bucket 0, [+inf] in the top bucket, NaN is dropped). Bucket
    counts are plain integers sharded per domain exactly like counters,
    so merging shards is an integer array sum — associative and
    commutative — and every quantile is a pure function of the merged
    buckets: the same observations yield byte-identical buckets and
    quantiles no matter how work was split across [--jobs N] domains. *)

type histogram
(** A sharded histogram handle. Like {!counter} handles, registered ones
    are interned by name; {!hist_create} makes a private, unregistered
    instance (per-session daemon latency, bench loops). *)

val histogram : string -> histogram
(** Intern a named histogram in the global registry; it appears in
    {!snapshot} under that name once it has at least one observation. *)

val hist_create : unit -> histogram
(** A fresh histogram outside the registry: never in {!snapshot}, never
    cleared by {!reset}; the caller owns its lifetime. *)

val hist_record : histogram -> float -> unit
(** Record one value. No-op while disabled (one branch); NaN dropped. *)

type hist_snap = {
  hs_count : int;  (** total observations *)
  hs_sum : float;  (** sum of finite observations (display only) *)
  hs_buckets : (int * int) list;
      (** non-empty buckets, ascending [(bucket, count)] *)
}

val hist_snap_of : histogram -> hist_snap
(** Merge the shards. Main domain only, no parallel phase in flight —
    same contract as {!snapshot}. *)

val hist_snap_quantile : hist_snap -> float -> float
(** [hist_snap_quantile hs p] is the upper bound of the bucket holding
    the [ceil (p * count)]-th smallest observation — a power of two, so
    it prints exactly. [0.0] on an empty histogram. *)

val hist_quantile : histogram -> float -> float

val hist_clear : histogram -> unit
(** Zero all shards of one histogram (for unregistered instances;
    registered ones are cleared by {!reset}). *)

val hist_bucket_le : int -> float
(** Upper bound of a bucket index: [2^(b-64)], or [0.0] for bucket 0. *)

val hist_snap_to_json : hist_snap -> Json.t
(** [{"count": n, "sum": s, "p50": ..., "p90": ..., "p99": ...,
    "buckets": [[le, count], ...]}]; quantile and bucket fields are
    omitted when the histogram is empty. All fields are finite. *)

(** {1 Flight recorder and trace context}

    A fixed-size ring of the most recent rendered trace events, captured
    whenever telemetry is enabled — even with no [--trace] sink — so a
    fault always has recent history to dump. While telemetry is disabled
    the recorder costs the same single branch as every other entry
    point. *)

val flightrec_configure : capacity:int -> unit
(** Resize (and clear) the ring. Capacity 0 disables capture. The
    default capacity is 512 events. *)

val flightrec_events : unit -> string list
(** The recorded JSONL lines, oldest first. *)

val flightrec_clear : unit -> unit

val flightrec_dump : path:string -> int
(** Write the ring to [path] as JSONL, oldest first, and return the
    event count. Writes nothing (and creates no file) when empty. *)

val with_trace_id : string -> (unit -> 'a) -> 'a
(** Run the thunk with an ambient trace id: every event emitted inside —
    including from pool worker domains — carries a ["tid"] field. The
    daemon wraps each request in one. Restores the previous id on exit
    (exceptions included). *)

val current_trace_id : unit -> string option

(** {1 Spans and events} *)

val span : string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span: when enabled, emits a begin event
    and an end event (balanced even on exceptions) around it and observes
    the duration; when disabled, calls the thunk directly with zero
    overhead (the clock is not even read). *)

val timed_span : string -> (unit -> 'a) -> float * 'a
(** Like {!span} but always measures and returns the duration, enabled or
    not — for call sites that need the elapsed time regardless (the
    engine's [run_report] phase splits). On exception the span is closed
    and the exception re-raised. *)

val instant : string -> (string * Json.t) list -> unit
(** Emit an instant trace event with extra fields (e.g. a scheduler ban
    with its rule and reason). Dropped unless a sink is attached. Guard
    call sites on {!is_enabled} when building the field list costs. *)

val flush_counters : unit -> unit
(** Emit every counter (["ev":"c"]) and timing aggregate (["ev":"h"]) to
    the sink, e.g. just before closing a trace file. *)

(** {1 Reports} *)

type timing = { t_count : int; t_total : float; t_min : float; t_max : float }

type snapshot = {
  sn_counters : (string * int) list;  (** sorted by name; zero entries omitted *)
  sn_timings : (string * timing) list;  (** sorted by name *)
  sn_hists : (string * hist_snap) list;  (** sorted by name; empty ones omitted *)
}

val snapshot : unit -> snapshot

val snapshot_to_json : snapshot -> Json.t
(** Stable schema: [{"counters": {...}, "timings": {name: {"count": ...,
    "total_s": ..., "min_s": ..., "max_s": ...}}, "hists": {name:
    {...}}}]. Every numeric field is finite: non-finite aggregates are
    clamped (and NaN observations were already dropped at the recording
    boundary), so no emitter downstream ever sees a JSON [null]. *)

val report_to_json : snapshot -> string

val prometheus_of_snapshot : snapshot -> string
(** Prometheus text exposition: counters as [egglog_<name>_total],
    timings as [egglog_<name>_seconds] summaries (count/sum), histograms
    as cumulative [egglog_<name>_bucket{le="..."}] series with [+Inf],
    [_sum] and [_count]. Dots in names become underscores. *)

val pp_table : Format.formatter -> snapshot -> unit
(** Human-readable end-of-run table: timings then counters; prints
    nothing at all for an empty snapshot. *)
