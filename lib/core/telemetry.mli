(** Engine telemetry: monotonic-clock spans, named counters and timing
    histograms, and an optional JSONL trace-event sink.

    The paper's whole evaluation (§6) is about {e where time goes} —
    e-matching vs rebuilding vs apply, per-rule match counts, database
    growth across iterations — so every layer of the pipeline reports here:
    the generic join (tuples scanned, index builds/reuses, trie depth),
    the semi-naïve loop (per-phase split, delta sizes, scheduler bans),
    rebuilding (congruence rounds, unions, canonicalized tuples) and the
    durability layer (journal append latency, checkpoint timings).

    Design constraints, mirroring {!Fault}'s injection style:

    - {b Global and off by default.} All recording entry points are no-ops
      behind a single boolean check until {!enable} is called, so the fully
      disabled path costs one predictable branch and allocates nothing.
      Call sites that would have to build a dynamic string or field list
      must guard on {!is_enabled} themselves.
    - {b Monotonic.} {!now} reads CLOCK_MONOTONIC, so wall-clock jumps can
      neither corrupt phase timings nor fire time budgets early. The engine
      uses it for {e all} timing, including [:time-limit] deadlines.
    - {b Deterministic in tests.} {!set_clock} injects a fake clock; every
      timestamp and duration then comes from the injected source. *)

(** A minimal JSON value: enough to print the trace events and bench
    reports this module emits, and to parse them back in tests. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val to_string : t -> string
  (** Compact single-line rendering. Non-finite floats print as [null]
      (JSON has no representation for them). *)

  val parse : string -> t
  (** Parse one JSON document. @raise Parse_error on malformed input or
      trailing garbage. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] on missing field or non-object. *)

  val write_file : string -> t -> unit
  (** Write a document plus trailing newline, atomically enough for bench
      reports (plain create/write/close). *)
end

(** {1 Clock} *)

val now : unit -> float
(** Seconds on the telemetry clock. Monotonic (CLOCK_MONOTONIC) by
    default; the absolute value is meaningless, only differences are.
    Works whether or not telemetry is enabled. *)

val set_clock : (unit -> float) -> unit
(** Replace the clock (tests inject a deterministic fake). *)

val use_default_clock : unit -> unit

(** {1 Lifecycle} *)

val enable : ?sink:(string -> unit) -> unit -> unit
(** Turn recording on. [sink], when given, receives one JSON line per
    trace event (no trailing newline); without it only the aggregate
    counters and timings are maintained. The event-time origin is set to
    [now ()] at each call. *)

val disable : unit -> unit
(** Turn recording off and detach any sink. Aggregates are kept (read
    them with {!snapshot}); {!reset} clears them. *)

val is_enabled : unit -> bool

val reset : unit -> unit
(** Zero all counters and timing aggregates. Existing {!counter} handles
    stay valid. *)

(** {1 Counters and timings} *)

type counter
(** A named monotone counter. Handles are interned by name: create them
    once at module initialisation and {!bump} them from hot loops — a bump
    is one branch plus one add, and a no-op while disabled. *)

val counter : string -> counter
val bump : counter -> int -> unit

val add : string -> int -> unit
(** Convenience for cold paths: [bump (counter name) n]. *)

val record_max : counter -> int -> unit
(** Max-gauge update: the counter's reported value becomes the largest
    [n] ever recorded (e.g. [search.domains_used]). Main domain only. *)

val set_shard : int -> unit
(** Register the calling domain's counter shard. Counters are sharded per
    domain so pool workers can {!bump} without locks; shard [0] is the
    main domain (the default for every domain that never calls this), and
    {!Pool} workers register shard [index + 1] once at domain start.
    {!snapshot} sums the shards; it must only run on the main domain while
    no parallel phase is in flight. Worker-side {!observe} calls are
    buffered and merged at the next {!snapshot}; {!span}/{!instant} and
    the trace sink remain main-domain constructs except that worker
    events, if any, are tagged with a ["dom"] field. *)

val observe : string -> float -> unit
(** Record one observation into the named timing/histogram aggregate
    (count, total, min, max). Spans observe their duration automatically
    under their own name. *)

(** {1 Spans and events} *)

val span : string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span: when enabled, emits a begin event
    and an end event (balanced even on exceptions) around it and observes
    the duration; when disabled, calls the thunk directly with zero
    overhead (the clock is not even read). *)

val timed_span : string -> (unit -> 'a) -> float * 'a
(** Like {!span} but always measures and returns the duration, enabled or
    not — for call sites that need the elapsed time regardless (the
    engine's [run_report] phase splits). On exception the span is closed
    and the exception re-raised. *)

val instant : string -> (string * Json.t) list -> unit
(** Emit an instant trace event with extra fields (e.g. a scheduler ban
    with its rule and reason). Dropped unless a sink is attached. Guard
    call sites on {!is_enabled} when building the field list costs. *)

val flush_counters : unit -> unit
(** Emit every counter (["ev":"c"]) and timing aggregate (["ev":"h"]) to
    the sink, e.g. just before closing a trace file. *)

(** {1 Reports} *)

type timing = { t_count : int; t_total : float; t_min : float; t_max : float }

type snapshot = {
  sn_counters : (string * int) list;  (** sorted by name; zero entries omitted *)
  sn_timings : (string * timing) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot

val snapshot_to_json : snapshot -> Json.t
(** Stable schema: [{"counters": {...}, "timings": {name: {"count": ...,
    "total_s": ..., "min_s": ..., "max_s": ...}}}]. *)

val report_to_json : snapshot -> string

val pp_table : Format.formatter -> snapshot -> unit
(** Human-readable end-of-run table: timings then counters; prints
    nothing at all for an empty snapshot. *)
