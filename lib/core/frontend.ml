exception Syntax_error of string

let error fmt = Format.kasprintf (fun s -> raise (Syntax_error s)) fmt

let rec expr_of_sexp (s : Sexpr.t) : Ast.expr =
  match s with
  | Sexpr.Int i -> Ast.Lit (Value.VInt i)
  | Sexpr.Rational r -> Ast.Lit (Value.VRat r)
  | Sexpr.String str -> Ast.Lit (Value.VStr (Symbol.intern str))
  | Sexpr.Atom "true" -> Ast.Lit (Value.VBool true)
  | Sexpr.Atom "false" -> Ast.Lit (Value.VBool false)
  | Sexpr.Atom name -> Ast.Var name
  | Sexpr.List (Sexpr.Atom f :: args) -> Ast.Call (f, List.map expr_of_sexp args)
  | Sexpr.List [] -> error "empty application ()"
  | Sexpr.List _ -> error "application head must be a symbol: %s" (Sexpr.to_string s)

let fact_of_sexp (s : Sexpr.t) : Ast.fact =
  match s with
  | Sexpr.List [ Sexpr.Atom "="; a; b ] -> Ast.Eq (expr_of_sexp a, expr_of_sexp b)
  | _ -> Ast.Holds (expr_of_sexp s)

let rec tyexpr_of_sexp (s : Sexpr.t) : Ast.tyexpr =
  match s with
  | Sexpr.Atom name -> Ast.T_name name
  | Sexpr.List [ Sexpr.Atom "Set"; inner ] -> Ast.T_set (tyexpr_of_sexp inner)
  | Sexpr.List [ Sexpr.Atom "Vec"; inner ] -> Ast.T_vec (tyexpr_of_sexp inner)
  | _ -> error "malformed type %s" (Sexpr.to_string s)

let action_of_sexp (s : Sexpr.t) : Ast.action =
  match s with
  | Sexpr.List [ Sexpr.Atom "set"; Sexpr.List (Sexpr.Atom f :: args); value ] ->
    Ast.Set (f, List.map expr_of_sexp args, expr_of_sexp value)
  | Sexpr.List [ Sexpr.Atom "union"; a; b ] -> Ast.Union (expr_of_sexp a, expr_of_sexp b)
  | Sexpr.List [ Sexpr.Atom ("let" | "define"); Sexpr.Atom x; e ] -> Ast.Let (x, expr_of_sexp e)
  | Sexpr.List [ Sexpr.Atom "panic"; Sexpr.String msg ] -> Ast.Panic msg
  | Sexpr.List [ Sexpr.Atom "delete"; Sexpr.List (Sexpr.Atom f :: args) ] ->
    Ast.Delete (f, List.map expr_of_sexp args)
  | other -> Ast.Do (expr_of_sexp other)

(* Keyword arguments at the tail of a declaration: :merge e, :default e,
   :cost n, :when (facts), :name "s". *)
let rec split_keywords acc (items : Sexpr.t list) =
  match items with
  | [] -> (List.rev acc, [])
  | Sexpr.Atom kw :: _ when String.length kw > 0 && kw.[0] = ':' -> (List.rev acc, items)
  | item :: rest -> split_keywords (item :: acc) rest

let rec keywords_of (items : Sexpr.t list) : (string * Sexpr.t) list =
  match items with
  | [] -> []
  | Sexpr.Atom kw :: value :: rest when String.length kw > 0 && kw.[0] = ':' ->
    (kw, value) :: keywords_of rest
  | s :: _ -> error "malformed keyword arguments near %s" (Sexpr.to_string s)

let command_of_sexp (s : Sexpr.t) : Ast.command list =
  match s with
  | Sexpr.List (Sexpr.Atom head :: rest) -> (
    match (head, rest) with
    | "sort", [ Sexpr.Atom name ] -> [ Ast.Decl_sort name ]
    | "datatype", Sexpr.Atom name :: variants ->
      let variant = function
        | Sexpr.List (Sexpr.Atom cname :: args) -> (cname, List.map tyexpr_of_sexp args)
        | v -> error "malformed datatype variant %s" (Sexpr.to_string v)
      in
      [ Ast.Decl_datatype (name, List.map variant variants) ]
    | "function", Sexpr.Atom fname :: Sexpr.List args :: ret :: kw_items ->
      let kws = keywords_of kw_items in
      let merge =
        match List.assoc_opt ":merge" kws with
        | Some e -> Ast.Merge_expr (expr_of_sexp e)
        | None -> Ast.Merge_default
      in
      let default = Option.map expr_of_sexp (List.assoc_opt ":default" kws) in
      let cost =
        match List.assoc_opt ":cost" kws with
        | Some (Sexpr.Int n) -> Some n
        | Some v -> error "malformed :cost %s" (Sexpr.to_string v)
        | None -> None
      in
      [ Ast.Decl_function
          {
            Ast.fname;
            arg_tys = List.map tyexpr_of_sexp args;
            ret_ty = tyexpr_of_sexp ret;
            merge;
            default;
            cost;
          } ]
    | "relation", [ Sexpr.Atom name; Sexpr.List args ] ->
      [ Ast.Decl_relation (name, List.map tyexpr_of_sexp args) ]
    | "ruleset", [ Sexpr.Atom name ] -> [ Ast.Decl_ruleset name ]
    | "rule", Sexpr.List query :: Sexpr.List actions :: kw_items ->
      let kws = keywords_of kw_items in
      let rule_name =
        match List.assoc_opt ":name" kws with
        | Some (Sexpr.String n) | Some (Sexpr.Atom n) -> Some n
        | Some v -> error "malformed :name %s" (Sexpr.to_string v)
        | None -> None
      in
      let ruleset =
        match List.assoc_opt ":ruleset" kws with
        | Some (Sexpr.Atom n) -> Some n
        | Some v -> error "malformed :ruleset %s" (Sexpr.to_string v)
        | None -> None
      in
      [ Ast.Add_rule
          {
            Ast.rule_name;
            query = List.map fact_of_sexp query;
            actions = List.map action_of_sexp actions;
            ruleset;
          } ]
    | "rewrite", lhs :: rhs :: kw_items ->
      let kws = keywords_of kw_items in
      let conds =
        match List.assoc_opt ":when" kws with
        | Some (Sexpr.List facts) -> List.map fact_of_sexp facts
        | Some v -> error "malformed :when %s" (Sexpr.to_string v)
        | None -> []
      in
      let ruleset =
        match List.assoc_opt ":ruleset" kws with
        | Some (Sexpr.Atom n) -> Some n
        | Some v -> error "malformed :ruleset %s" (Sexpr.to_string v)
        | None -> None
      in
      [ Ast.Add_rewrite { lhs = expr_of_sexp lhs; rhs = expr_of_sexp rhs; conds; ruleset } ]
    | "birewrite", lhs :: rhs :: kw_items ->
      let kws = keywords_of kw_items in
      let conds =
        match List.assoc_opt ":when" kws with
        | Some (Sexpr.List facts) -> List.map fact_of_sexp facts
        | Some v -> error "malformed :when %s" (Sexpr.to_string v)
        | None -> []
      in
      let ruleset =
        match List.assoc_opt ":ruleset" kws with
        | Some (Sexpr.Atom n) -> Some n
        | Some v -> error "malformed :ruleset %s" (Sexpr.to_string v)
        | None -> None
      in
      [ Ast.Add_rewrite { lhs = expr_of_sexp lhs; rhs = expr_of_sexp rhs; conds; ruleset };
        Ast.Add_rewrite { lhs = expr_of_sexp rhs; rhs = expr_of_sexp lhs; conds; ruleset } ]
    | ("define" | "let"), [ Sexpr.Atom x; e ] -> [ Ast.Define (x, expr_of_sexp e) ]
    | "run", rest ->
      let limit, kw_items =
        match rest with
        | Sexpr.Int n :: tl -> (Some n, tl)
        | tl -> (None, tl)
      in
      let kws = keywords_of kw_items in
      List.iter
        (fun (kw, _) ->
          match kw with
          | ":until" | ":node-limit" | ":time-limit" | ":jobs" | ":memory-limit" -> ()
          | other -> error "unknown run option %s" other)
        kws;
      let node_limit =
        match List.assoc_opt ":node-limit" kws with
        | Some (Sexpr.Int k) when k >= 0 -> Some k
        | Some v -> error "malformed :node-limit %s (want a non-negative integer)" (Sexpr.to_string v)
        | None -> None
      in
      let time_limit =
        match List.assoc_opt ":time-limit" kws with
        | Some (Sexpr.Int s) when s >= 0 -> Some (float_of_int s)
        | Some (Sexpr.Rational r) when Rat.to_float r >= 0.0 -> Some (Rat.to_float r)
        | Some v -> error "malformed :time-limit %s (want seconds)" (Sexpr.to_string v)
        | None -> None
      in
      let until =
        match List.assoc_opt ":until" kws with
        (* either one fact, or a parenthesized list of facts *)
        | Some (Sexpr.List (Sexpr.List _ :: _) as fs) ->
          (match fs with
           | Sexpr.List items -> List.map fact_of_sexp items
           | _ -> assert false)
        | Some (Sexpr.List (Sexpr.Atom _ :: _) as f) -> [ fact_of_sexp f ]
        | Some v -> error "malformed :until %s (want a fact or a list of facts)" (Sexpr.to_string v)
        | None -> []
      in
      let jobs =
        match List.assoc_opt ":jobs" kws with
        | Some (Sexpr.Int j) when j >= 0 -> Some j
        | Some v ->
          error "malformed :jobs %s (want a non-negative integer; 0 = one per core)"
            (Sexpr.to_string v)
        | None -> None
      in
      let memory_limit =
        match List.assoc_opt ":memory-limit" kws with
        | Some (Sexpr.Int b) when b >= 0 -> Some b
        | Some v ->
          error "malformed :memory-limit %s (want a non-negative byte count)" (Sexpr.to_string v)
        | None -> None
      in
      [ Ast.Run { Ast.run_limit = limit; run_node_limit = node_limit;
                  run_time_limit = time_limit; run_until = until; run_jobs = jobs;
                  run_memory_limit = memory_limit } ]
    | "run-schedule", scheds ->
      let rec sched_of_sexp (s : Sexpr.t) : Ast.schedule =
        match s with
        | Sexpr.List [ Sexpr.Atom "run"; Sexpr.Int n ] -> Ast.Sched_run (None, n)
        | Sexpr.List [ Sexpr.Atom "run"; Sexpr.Atom rs ] -> Ast.Sched_run (Some rs, 1)
        | Sexpr.List [ Sexpr.Atom "run"; Sexpr.Atom rs; Sexpr.Int n ] -> Ast.Sched_run (Some rs, n)
        | Sexpr.List (Sexpr.Atom "saturate" :: inner) ->
          Ast.Sched_saturate (List.map sched_of_sexp inner)
        | Sexpr.List (Sexpr.Atom "seq" :: inner) -> Ast.Sched_seq (List.map sched_of_sexp inner)
        | Sexpr.List (Sexpr.Atom "repeat" :: Sexpr.Int n :: inner) ->
          Ast.Sched_repeat (n, List.map sched_of_sexp inner)
        | Sexpr.Atom rs -> Ast.Sched_run (Some rs, 1)
        | _ -> error "malformed schedule %s" (Sexpr.to_string s)
      in
      [ Ast.Run_schedule (List.map sched_of_sexp scheds) ]
    | "check", facts -> [ Ast.Check (List.map fact_of_sexp facts) ]
    | "fail", [ Sexpr.List (Sexpr.Atom "check" :: facts) ] ->
      [ Ast.Check_fail (List.map fact_of_sexp facts) ]
    | "extract", (e :: kw_items) ->
      let kws = keywords_of kw_items in
      let variants =
        match List.assoc_opt ":variants" kws with
        | Some (Sexpr.Int n) -> max 1 n
        | Some v -> error "malformed :variants %s" (Sexpr.to_string v)
        | None -> 1
      in
      [ Ast.Extract (expr_of_sexp e, variants) ]
    | "simplify", [ Sexpr.Int n; e ] -> [ Ast.Simplify (n, expr_of_sexp e) ]
    | "include", [ Sexpr.String path ] -> [ Ast.Include path ]
    | "print-stats", [] -> [ Ast.Print_stats ]
    | "explain", [ e1; e2 ] -> [ Ast.Explain (expr_of_sexp e1, expr_of_sexp e2) ]
    | "push", [] -> [ Ast.Push ]
    | "pop", [] -> [ Ast.Pop ]
    | "print-function", [ Sexpr.Atom name; Sexpr.Int n ] -> [ Ast.Print_function (name, n) ]
    | "print-size", [ Sexpr.Atom name ] -> [ Ast.Print_size name ]
    | ("set" | "union" | "panic" | "delete"), _ -> [ Ast.Top_action (action_of_sexp s) ]
    | _ -> [ Ast.Top_action (Ast.Do (expr_of_sexp s)) ])
  | _ -> error "expected a command, got %s" (Sexpr.to_string s)

exception Input_too_large of { bytes : int; limit : int }

let parse_program ?max_bytes src =
  (match max_bytes with
   | Some limit when String.length src > limit ->
     raise (Input_too_large { bytes = String.length src; limit })
   | Some _ | None -> ());
  List.concat_map command_of_sexp (Sexpr.parse_string src)

(* ---- printing commands back to concrete syntax ----

   The durability subsystem journals committed commands as text and replays
   them through [command_of_sexp]; the invariant is that for every command
   the parser can produce, [command_of_sexp (sexp_of_command c) = [c]].
   Commands built through the typed API can mention literals that have no
   concrete syntax (ids, sets, vectors, unit); printing those raises
   [Syntax_error] — the journal layer prints before executing, so such a
   command is rejected up front rather than silently dropped from the
   durable history. *)

let sexp_of_lit (v : Value.t) : Sexpr.t =
  match v with
  | Value.VBool true -> Sexpr.Atom "true"
  | Value.VBool false -> Sexpr.Atom "false"
  | Value.VInt i -> Sexpr.Int i
  | Value.VRat r ->
    (* [Rat.pp] prints integral rationals as bare integers, which would
       re-parse as i64; force the n/d form so the literal keeps its type. *)
    if Rat.is_integer r then Sexpr.Atom (Rat.to_string r ^ "/1") else Sexpr.Rational r
  | Value.VStr s -> Sexpr.String (Symbol.name s)
  | Value.VUnit | Value.VId _ | Value.VSet _ | Value.VVec _ ->
    error "literal %s has no concrete syntax" (Value.to_string v)

let rec sexp_of_expr (e : Ast.expr) : Sexpr.t =
  match e with
  | Ast.Var x -> Sexpr.Atom x
  | Ast.Lit v -> sexp_of_lit v
  | Ast.Call (f, args) -> Sexpr.List (Sexpr.Atom f :: List.map sexp_of_expr args)

let sexp_of_fact (f : Ast.fact) : Sexpr.t =
  match f with
  | Ast.Eq (a, b) -> Sexpr.List [ Sexpr.Atom "="; sexp_of_expr a; sexp_of_expr b ]
  | Ast.Holds e -> sexp_of_expr e

let rec sexp_of_tyexpr (t : Ast.tyexpr) : Sexpr.t =
  match t with
  | Ast.T_name n -> Sexpr.Atom n
  | Ast.T_set inner -> Sexpr.List [ Sexpr.Atom "Set"; sexp_of_tyexpr inner ]
  | Ast.T_vec inner -> Sexpr.List [ Sexpr.Atom "Vec"; sexp_of_tyexpr inner ]

let sexp_of_action (a : Ast.action) : Sexpr.t =
  match a with
  | Ast.Set (f, args, v) ->
    Sexpr.List
      [ Sexpr.Atom "set"; Sexpr.List (Sexpr.Atom f :: List.map sexp_of_expr args);
        sexp_of_expr v ]
  | Ast.Union (a, b) -> Sexpr.List [ Sexpr.Atom "union"; sexp_of_expr a; sexp_of_expr b ]
  | Ast.Let (x, e) -> Sexpr.List [ Sexpr.Atom "let"; Sexpr.Atom x; sexp_of_expr e ]
  | Ast.Do e -> sexp_of_expr e
  | Ast.Panic msg -> Sexpr.List [ Sexpr.Atom "panic"; Sexpr.String msg ]
  | Ast.Delete (f, args) ->
    Sexpr.List [ Sexpr.Atom "delete"; Sexpr.List (Sexpr.Atom f :: List.map sexp_of_expr args) ]

(* A float budget re-parses as Int when integral, Rational otherwise; both
   are accepted by the [run] keyword parser and round-trip exactly. *)
let sexp_of_seconds s =
  if Float.is_integer s && Float.abs s < 1e15 then Sexpr.Int (int_of_float s)
  else Sexpr.Rational (Rat.of_float s)

let sexp_of_command (cmd : Ast.command) : Sexpr.t =
  match cmd with
  | Ast.Decl_sort name -> Sexpr.List [ Sexpr.Atom "sort"; Sexpr.Atom name ]
  | Ast.Decl_ruleset name -> Sexpr.List [ Sexpr.Atom "ruleset"; Sexpr.Atom name ]
  | Ast.Decl_datatype (name, variants) ->
    Sexpr.List
      (Sexpr.Atom "datatype" :: Sexpr.Atom name
       :: List.map
            (fun (cname, args) ->
              Sexpr.List (Sexpr.Atom cname :: List.map sexp_of_tyexpr args))
            variants)
  | Ast.Decl_function { fname; arg_tys; ret_ty; merge; default; cost } ->
    let kws =
      (match merge with
       | Ast.Merge_default -> []
       | Ast.Merge_expr e -> [ Sexpr.Atom ":merge"; sexp_of_expr e ])
      @ (match default with
         | None -> []
         | Some e -> [ Sexpr.Atom ":default"; sexp_of_expr e ])
      @ (match cost with None -> [] | Some n -> [ Sexpr.Atom ":cost"; Sexpr.Int n ])
    in
    Sexpr.List
      (Sexpr.Atom "function" :: Sexpr.Atom fname
       :: Sexpr.List (List.map sexp_of_tyexpr arg_tys)
       :: sexp_of_tyexpr ret_ty :: kws)
  | Ast.Decl_relation (name, arg_tys) ->
    Sexpr.List
      [ Sexpr.Atom "relation"; Sexpr.Atom name;
        Sexpr.List (List.map sexp_of_tyexpr arg_tys) ]
  | Ast.Add_rule { rule_name; query; actions; ruleset } ->
    let kws =
      (match rule_name with
       | None -> []
       | Some n -> [ Sexpr.Atom ":name"; Sexpr.String n ])
      @ (match ruleset with
         | None -> []
         | Some rs -> [ Sexpr.Atom ":ruleset"; Sexpr.Atom rs ])
    in
    Sexpr.List
      (Sexpr.Atom "rule"
       :: Sexpr.List (List.map sexp_of_fact query)
       :: Sexpr.List (List.map sexp_of_action actions)
       :: kws)
  | Ast.Add_rewrite { lhs; rhs; conds; ruleset } ->
    let kws =
      (match conds with
       | [] -> []
       | _ -> [ Sexpr.Atom ":when"; Sexpr.List (List.map sexp_of_fact conds) ])
      @ (match ruleset with
         | None -> []
         | Some rs -> [ Sexpr.Atom ":ruleset"; Sexpr.Atom rs ])
    in
    Sexpr.List (Sexpr.Atom "rewrite" :: sexp_of_expr lhs :: sexp_of_expr rhs :: kws)
  | Ast.Define (x, e) -> Sexpr.List [ Sexpr.Atom "define"; Sexpr.Atom x; sexp_of_expr e ]
  | Ast.Top_action a -> sexp_of_action a
  | Ast.Run { run_limit; run_node_limit; run_time_limit; run_until; run_jobs; run_memory_limit }
    ->
    let limit = match run_limit with None -> [] | Some n -> [ Sexpr.Int n ] in
    let kws =
      (match run_node_limit with
       | None -> []
       | Some k -> [ Sexpr.Atom ":node-limit"; Sexpr.Int k ])
      @ (match run_time_limit with
         | None -> []
         | Some s -> [ Sexpr.Atom ":time-limit"; sexp_of_seconds s ])
      @ (match run_jobs with
         | None -> []
         | Some j -> [ Sexpr.Atom ":jobs"; Sexpr.Int j ])
      @ (match run_memory_limit with
         | None -> []
         | Some b -> [ Sexpr.Atom ":memory-limit"; Sexpr.Int b ])
      @
      match run_until with
      | [] -> []
      | [ f ] -> [ Sexpr.Atom ":until"; sexp_of_fact f ]
      | fs -> [ Sexpr.Atom ":until"; Sexpr.List (List.map sexp_of_fact fs) ]
    in
    Sexpr.List ((Sexpr.Atom "run" :: limit) @ kws)
  | Ast.Run_schedule scheds ->
    let rec sexp_of_sched (s : Ast.schedule) : Sexpr.t =
      match s with
      | Ast.Sched_run (None, n) -> Sexpr.List [ Sexpr.Atom "run"; Sexpr.Int n ]
      | Ast.Sched_run (Some rs, n) ->
        Sexpr.List [ Sexpr.Atom "run"; Sexpr.Atom rs; Sexpr.Int n ]
      | Ast.Sched_saturate inner ->
        Sexpr.List (Sexpr.Atom "saturate" :: List.map sexp_of_sched inner)
      | Ast.Sched_seq inner -> Sexpr.List (Sexpr.Atom "seq" :: List.map sexp_of_sched inner)
      | Ast.Sched_repeat (n, inner) ->
        Sexpr.List (Sexpr.Atom "repeat" :: Sexpr.Int n :: List.map sexp_of_sched inner)
    in
    Sexpr.List (Sexpr.Atom "run-schedule" :: List.map sexp_of_sched scheds)
  | Ast.Check facts -> Sexpr.List (Sexpr.Atom "check" :: List.map sexp_of_fact facts)
  | Ast.Check_fail facts ->
    Sexpr.List
      [ Sexpr.Atom "fail"; Sexpr.List (Sexpr.Atom "check" :: List.map sexp_of_fact facts) ]
  | Ast.Extract (e, variants) ->
    Sexpr.List
      [ Sexpr.Atom "extract"; sexp_of_expr e; Sexpr.Atom ":variants"; Sexpr.Int variants ]
  | Ast.Simplify (n, e) -> Sexpr.List [ Sexpr.Atom "simplify"; Sexpr.Int n; sexp_of_expr e ]
  | Ast.Include path -> Sexpr.List [ Sexpr.Atom "include"; Sexpr.String path ]
  | Ast.Explain (a, b) -> Sexpr.List [ Sexpr.Atom "explain"; sexp_of_expr a; sexp_of_expr b ]
  | Ast.Push -> Sexpr.List [ Sexpr.Atom "push" ]
  | Ast.Pop -> Sexpr.List [ Sexpr.Atom "pop" ]
  | Ast.Print_function (name, n) ->
    Sexpr.List [ Sexpr.Atom "print-function"; Sexpr.Atom name; Sexpr.Int n ]
  | Ast.Print_size name -> Sexpr.List [ Sexpr.Atom "print-size"; Sexpr.Atom name ]
  | Ast.Print_stats -> Sexpr.List [ Sexpr.Atom "print-stats" ]

let command_to_string cmd = Sexpr.to_string (sexp_of_command cmd)

(* ---- incremental-input support (the REPL's line reader) ---- *)

type balance = Balanced | Incomplete | Unbalanced

let paren_balance src =
  let depth = ref 0 in
  let state = ref `Code in
  let unbalanced = ref false in
  String.iter
    (fun c ->
      match !state with
      | `Code ->
        if c = '(' then incr depth
        else if c = ')' then begin
          decr depth;
          if !depth < 0 then unbalanced := true
        end
        else if c = '"' then state := `Str
        else if c = ';' then state := `Comment
      | `Str -> if c = '\\' then state := `Esc else if c = '"' then state := `Code
      | `Esc -> state := `Str
      | `Comment -> if c = '\n' then state := `Code)
    src;
  if !unbalanced then Unbalanced
  else if !depth > 0 || !state = `Str || !state = `Esc then Incomplete
  else Balanced

let () = ignore split_keywords
