(** The functional database (§5.1): one {!Table} per declared function plus
    the union-find over uninterpreted-sort ids. All stored values are kept
    canonical; {!rebuild} restores that invariant (and the functional
    dependencies) after unions — this is the paper's [R^∞] operator (§4.2),
    and computes congruence closure when merge behaviour is union. *)

type t

exception Merge_conflict of { func : Symbol.t; old_value : Value.t; new_value : Value.t }
(** A functional-dependency violation on a function whose merge behaviour is
    panic (base-typed, no [:merge]), with the two conflicting outputs. *)

exception Internal_error of string
(** An engine invariant was broken (e.g. a [:merge] function whose evaluator
    hook was never installed); indicates a bug, not a user error. *)

val create : unit -> t

(** {1 Declarations} *)

val declare_sort : t -> Symbol.t -> unit
val is_sort : t -> Symbol.t -> bool
val declare_func : t -> Schema.func -> unit
val find_func : t -> Symbol.t -> Table.t option
val iter_tables : t -> (Table.t -> unit) -> unit

(** [set_merge_hook db f] installs the evaluator used for user [:merge]
    expressions; it receives the function, the old and the new value and
    returns the merged value. Installed once by the engine (the evaluator
    needs the whole engine, so it cannot live here). *)
val set_merge_hook : t -> (Schema.func -> Value.t -> Value.t -> Value.t) -> unit

(** {1 Values} *)

val fresh_id : t -> Symbol.t -> Value.t
(** Allocate a member of the given sort. *)

val sort_of_id : t -> int -> Ty.t
val canon : t -> Value.t -> Value.t
val canon_key : t -> Value.t array -> Value.t array
val are_equal : t -> Value.t -> Value.t -> bool
(** Structural equality modulo the union-find. *)

val is_canon : t -> Value.t -> bool
(** Is the value already in canonical form? A pure read (no path
    compression), so worker domains may call it concurrently while the
    database is frozen — the parallel rebuild scan's per-row check. *)

val is_canonical_id : t -> int -> bool
(** {!is_canon} specialized to a raw id; same read-only guarantee. *)

val class_size : t -> int -> int
(** Class size at a canonical id, read without compression. {!union} picks
    the surviving representative by exactly this size (ties keep the first
    argument's root), which is what the staged apply path uses to model a
    union's winner off-thread before the caller validates and commits it. *)

(** {1 Mutation} *)

val timestamp : t -> int
val bump_timestamp : t -> unit

val change_counter : t -> int
(** Monotone counter of semantic changes (insert, update, union); the engine
    detects saturation by comparing it across an iteration. *)

val lookup : t -> Table.t -> Value.t array -> Value.t option

val set : t -> Table.t -> Value.t array -> Value.t -> unit
(** Insert or merge (per the function's merge behaviour, §3.2). *)

val union : t -> ?reason:Proof_forest.reason -> Value.t -> Value.t -> Value.t
(** Union two ids, recording the justification in the proof forest.
    @raise Invalid_argument on non-id values. *)

val explain : t -> Value.t -> Value.t -> Proof_forest.step list option
(** Why are the two values equal? A chain of recorded union steps
    ([Some []] for identical values), or [None] if they were never made
    equal. Precise when the caller holds the pre-union id handles (the
    typed API); see {!Proof_forest}. *)

val class_history : t -> Value.t -> Proof_forest.step list
(** Every recorded union event in the value's equivalence class — the
    construction trace reported by the textual [(explain …)] command. *)

val remove : t -> Table.t -> Value.t array -> unit

val rebuild : ?stale_scan:(Table.t -> (Value.t array * Value.t) list option) -> t -> unit
(** Restore canonicality and functional dependencies; terminates because each
    round strictly shrinks the database or the number of classes.

    [stale_scan] swaps in an alternative stale-row collector for each
    repair round (the engine passes a pool-sharded scan at [--jobs] > 1).
    The scan must be a pure read returning exactly what the serial
    collection would — the table's stale rows in reverse {!Table.iter}
    order — or [None] to decline (the serial scan then runs). All repair
    mutations and the between-rounds fixpoint check stay serial on the
    caller, so the result is byte-identical with or without a scan. *)

val n_ids : t -> int
val n_classes : t -> int
val total_rows : t -> int

val total_log_entries : t -> int
(** Sum of {!Table.log_length} over all tables; its growth over an
    iteration is the semi-naïve frontier ("delta") size. *)

val modeled_bytes : t -> int
(** Deterministic modeled footprint in bytes: {!Table.modeled_bytes} over
    all tables plus fixed costs per allocated id and per proof-forest edge.
    O(#tables) to query. This — never [Gc] statistics — is what memory
    budgets are enforced against, so the same program hits the same budget
    at the same iteration regardless of jobs count or allocator state. *)

val table_stats : t -> Table.t -> int * int array
(** [(rows, distinct-per-column)] for cost-based join planning; distinct
    counts cover argument columns then the output and are cached against
    the table version. *)

(** {1 Snapshots (push/pop)} *)

val copy : t -> t

(** {1 Transactions}

    [set_txn_hook db f] arms a one-shot hook that fires immediately {e
    before} the first subsequent mutation (insert, union, remove, fresh id,
    declaration, timestamp bump) — at which point the database is still in
    its pre-mutation state, so [f] can take a {!copy} for rollback. Commands
    that fail before mutating never pay for a snapshot. The hook disarms
    itself after firing; {!clear_txn_hook} disarms it explicitly. Copies
    made by {!copy} carry no hook. *)

val set_txn_hook : t -> (unit -> unit) -> unit
val clear_txn_hook : t -> unit
