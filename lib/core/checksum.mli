(** CRC-32 (the IEEE 802.3 polynomial) over strings. Used to frame journal
    records and checkpoint/snapshot payloads so torn or corrupted writes are
    detected at load time instead of silently misloading. *)

val crc32 : string -> int
(** In [0, 0xffffffff]. *)

val to_hex : int -> string
(** Fixed-width lowercase hex, the on-disk form. *)

val of_hex : string -> int option
