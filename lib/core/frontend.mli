(** Textual frontend: s-expressions to {!Ast} commands (the concrete syntax
    of §3). Purely syntactic; name resolution and typing happen in
    {!Compile}/{!Engine}. *)

exception Syntax_error of string

val expr_of_sexp : Sexpr.t -> Ast.expr
val fact_of_sexp : Sexpr.t -> Ast.fact

val command_of_sexp : Sexpr.t -> Ast.command list
(** A single s-expression can desugar to several commands
    (e.g. [birewrite]). *)

val parse_program : string -> Ast.command list
(** @raise Syntax_error or {!Sexpr.Parse_error} on malformed programs. *)

(** Classification of possibly-incomplete input (the REPL's line reader):
    [Incomplete] needs more lines (open parens or an unterminated string);
    [Unbalanced] has a stray [')'] and can never complete. Parens inside
    string literals and [;] line comments do not count. *)
type balance = Balanced | Incomplete | Unbalanced

val paren_balance : string -> balance
