(** Textual frontend: s-expressions to {!Ast} commands (the concrete syntax
    of §3). Purely syntactic; name resolution and typing happen in
    {!Compile}/{!Engine}. *)

exception Syntax_error of string

val expr_of_sexp : Sexpr.t -> Ast.expr
val fact_of_sexp : Sexpr.t -> Ast.fact

val command_of_sexp : Sexpr.t -> Ast.command list
(** A single s-expression can desugar to several commands
    (e.g. [birewrite]). *)

exception Input_too_large of { bytes : int; limit : int }
(** Raised (before any parsing work) when a program exceeds the caller's
    size budget — the daemon's defence against multi-megabyte frames. *)

val parse_program : ?max_bytes:int -> string -> Ast.command list
(** @raise Syntax_error or {!Sexpr.Parse_error} on malformed programs;
    {!Input_too_large} when [max_bytes] is given and the source is longer. *)

(** {1 Printing}

    Inverse of the parser, used by the durability layer to journal committed
    commands as replayable text: for every command the parser can produce,
    [command_of_sexp (sexp_of_command c) = [c]]. *)

val sexp_of_expr : Ast.expr -> Sexpr.t
(** @raise Syntax_error on literals with no concrete syntax (ids, sets,
    vectors, unit), which only the typed API can construct. *)

val sexp_of_fact : Ast.fact -> Sexpr.t
val sexp_of_command : Ast.command -> Sexpr.t

val command_to_string : Ast.command -> string
(** [Sexpr.to_string] of {!sexp_of_command}. *)

(** Classification of possibly-incomplete input (the REPL's line reader):
    [Incomplete] needs more lines (open parens or an unterminated string);
    [Unbalanced] has a stray [')'] and can never complete. Parens inside
    string literals and [;] line comments do not count. *)
type balance = Balanced | Incomplete | Unbalanced

val paren_balance : string -> balance
