(* See pool.mli. Spawn-once domain pool with a chunked work queue:
   batches are published under [mutex] as a new generation; the task
   indices inside a batch are claimed lock-free from an atomic cursor in
   chunks, so the mutex is touched O(1) times per batch per worker while
   the chunk grabs scale with contention, not with task count. *)

let c_tasks = Telemetry.counter "pool.tasks"
let c_steals = Telemetry.counter "pool.steals"
let h_batch = Telemetry.histogram "pool.batch_s"

(* Max workers: telemetry shards are 64 and the caller owns shard 0. *)
let max_workers = 63

type batch = {
  b_run : int -> unit;  (* execute task [i]; must not raise *)
  b_n : int;
  b_chunk : int;
  b_next : int Atomic.t;
  b_participants : int;  (* workers with index >= this sit the batch out *)
}

type t = {
  mutex : Mutex.t;
  work_cond : Condition.t;  (* new generation posted / stop *)
  done_cond : Condition.t;  (* a participant finished *)
  mutable generation : int;
  mutable batch : batch option;
  mutable active : int;  (* participants still draining the current batch *)
  mutable stop : bool;
  mutable n_workers : int;
  mutable domains : unit Domain.t list;
}

let in_task_key = Domain.DLS.new_key (fun () -> ref false)
let in_task () = !(Domain.DLS.get in_task_key)

(* Claim chunks from the cursor until the batch is exhausted. Every grab
   after a participant's first is work it took over from the fair static
   split — count it as a steal. *)
let drain_batch b =
  let first = ref true in
  let continue_ = ref true in
  while !continue_ do
    let start = Atomic.fetch_and_add b.b_next b.b_chunk in
    if start >= b.b_n then continue_ := false
    else begin
      if !first then first := false else Telemetry.bump c_steals 1;
      let stop = min b.b_n (start + b.b_chunk) in
      for i = start to stop - 1 do
        b.b_run i
      done
    end
  done

let worker pool wid () =
  Telemetry.set_shard (wid + 1);
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while (not pool.stop) && pool.generation = !seen do
      Condition.wait pool.work_cond pool.mutex
    done;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      let gen = pool.generation in
      let b = pool.batch in
      Mutex.unlock pool.mutex;
      seen := gen;
      match b with
      | Some b when wid < b.b_participants ->
        drain_batch b;
        Mutex.lock pool.mutex;
        pool.active <- pool.active - 1;
        if pool.active = 0 then Condition.broadcast pool.done_cond;
        Mutex.unlock pool.mutex
      | _ -> ()
    end
  done

let spawn_workers pool extra =
  let base = pool.n_workers in
  let fresh = List.init extra (fun i -> Domain.spawn (worker pool (base + i))) in
  pool.n_workers <- base + extra;
  pool.domains <- pool.domains @ fresh

let create ~workers =
  let workers = max 0 (min workers max_workers) in
  let pool =
    {
      mutex = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      generation = 0;
      batch = None;
      active = 0;
      stop = false;
      n_workers = 0;
      domains = [];
    }
  in
  spawn_workers pool workers;
  pool

let size pool = pool.n_workers

let run ?participants pool f tasks =
  if in_task () then invalid_arg "Pool.run: nested parallel run";
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let workers =
      match participants with
      | None -> pool.n_workers
      | Some p -> max 0 (min p pool.n_workers)
    in
    Telemetry.bump c_tasks n;
    let t_batch0 = if Telemetry.is_enabled () then Telemetry.now () else 0.0 in
    let results : ('b, exn * Printexc.raw_backtrace) result option array = Array.make n None in
    let b_run i =
      (* Each participating domain reads its own DLS cell. *)
      let flag = Domain.DLS.get in_task_key in
      flag := true;
      (match f tasks.(i) with
      | v -> results.(i) <- Some (Ok v)
      | exception e -> results.(i) <- Some (Error (e, Printexc.get_raw_backtrace ())));
      flag := false
    in
    let chunk = max 1 (n / (4 * (workers + 1))) in
    let b = { b_run; b_n = n; b_chunk = chunk; b_next = Atomic.make 0; b_participants = workers } in
    Mutex.lock pool.mutex;
    pool.batch <- Some b;
    pool.generation <- pool.generation + 1;
    pool.active <- workers;
    Condition.broadcast pool.work_cond;
    Mutex.unlock pool.mutex;
    drain_batch b;
    Mutex.lock pool.mutex;
    while pool.active > 0 do
      Condition.wait pool.done_cond pool.mutex
    done;
    pool.batch <- None;
    Mutex.unlock pool.mutex;
    if Telemetry.is_enabled () then
      Telemetry.hist_record h_batch (Telemetry.now () -. t_batch0);
    (* Fail exactly like a serial loop would: on the lowest-index error. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) -> ()
        | None -> assert false)
      results;
    Array.map
      (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
      results
  end

(* Fan a contiguous index space [0, n) across the pool as balanced range
   tasks (a few per participant, so stealing can still even out skew).
   [f lo hi] must be a pure read of shared state over indices [lo, hi);
   results are side effects into caller-owned disjoint slots, which is why
   this returns unit — the apply/rebuild staging paths write per-index
   flags or buffers that the caller then merges in deterministic order. *)
let run_ranges ?participants pool ~n f =
  if n > 0 then begin
    let workers =
      match participants with
      | None -> pool.n_workers
      | Some p -> max 0 (min p pool.n_workers)
    in
    let n_tasks = min n (4 * (workers + 1)) in
    let per = n / n_tasks and rem = n mod n_tasks in
    let ranges =
      Array.init n_tasks (fun i ->
          let lo = (i * per) + min i rem in
          let hi = lo + per + (if i < rem then 1 else 0) in
          (lo, hi))
    in
    ignore (run ?participants pool (fun (lo, hi) -> f lo hi) ranges)
  end

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.work_cond;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- [];
  pool.n_workers <- 0

(* ------------------------------------------------------------------ *)
(* Shared process-wide pool                                            *)
(* ------------------------------------------------------------------ *)

let global_lock = Mutex.create ()
let the_global : t option ref = ref None

let global ~workers =
  let workers = max 0 (min workers max_workers) in
  Mutex.lock global_lock;
  let pool =
    match !the_global with
    | None ->
      let p = create ~workers in
      the_global := Some p;
      p
    | Some p ->
      if workers > p.n_workers then spawn_workers p (workers - p.n_workers);
      p
  in
  Mutex.unlock global_lock;
  pool
