exception Load_error of string

let error fmt = Format.kasprintf (fun s -> raise (Load_error s)) fmt

(* ---- values <-> s-expressions ---- *)

let rec sexp_of_value (v : Value.t) : Sexpr.t =
  match v with
  | Value.VUnit -> Sexpr.List [ Sexpr.Atom "unit" ]
  | Value.VBool b -> Sexpr.Atom (string_of_bool b)
  | Value.VInt i -> Sexpr.Int i
  | Value.VRat r ->
    Sexpr.List [ Sexpr.Atom "rat"; Sexpr.String (Rat.to_string r) ]
  | Value.VStr s -> Sexpr.String (Symbol.name s)
  | Value.VId id -> Sexpr.List [ Sexpr.Atom "id"; Sexpr.Int id ]
  | Value.VSet xs -> Sexpr.List (Sexpr.Atom "set" :: List.map sexp_of_value xs)
  | Value.VVec xs -> Sexpr.List (Sexpr.Atom "vec" :: List.map sexp_of_value xs)

let rec value_of_sexp ~remap (s : Sexpr.t) : Value.t =
  match s with
  | Sexpr.List [ Sexpr.Atom "unit" ] -> Value.VUnit
  | Sexpr.Atom "true" -> Value.VBool true
  | Sexpr.Atom "false" -> Value.VBool false
  | Sexpr.Int i -> Value.VInt i
  | Sexpr.Rational r -> Value.VRat r
  | Sexpr.List [ Sexpr.Atom "rat"; Sexpr.String r ] -> Value.VRat (Rat.of_string r)
  | Sexpr.String str -> Value.VStr (Symbol.intern str)
  | Sexpr.List [ Sexpr.Atom "id"; Sexpr.Int id ] -> remap id
  | Sexpr.List (Sexpr.Atom "set" :: xs) -> Value.mk_set (List.map (value_of_sexp ~remap) xs)
  | Sexpr.List (Sexpr.Atom "vec" :: xs) -> Value.VVec (List.map (value_of_sexp ~remap) xs)
  | _ -> error "malformed value %s" (Sexpr.to_string s)

(* ---- dump ---- *)

let dump (eng : Engine.t) : Sexpr.t =
  Engine.rebuild eng;
  let db = Engine.database eng in
  (* collect every id that appears in the database, with its sort *)
  let ids : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let rec note (v : Value.t) =
    match v with
    | Value.VId id ->
      if not (Hashtbl.mem ids id) then begin
        match Database.sort_of_id db id with
        | Ty.Sort s -> Hashtbl.replace ids id (Symbol.name s)
        | _ -> ()
      end
    | Value.VSet xs | Value.VVec xs -> List.iter note xs
    | Value.VUnit | Value.VBool _ | Value.VInt _ | Value.VRat _ | Value.VStr _ -> ()
  in
  (* The dump is canonical — rows, tables and ids are sorted — so two
     databases with the same contents serialize identically regardless of
     hash-table iteration order or insertion history. Rollback/equivalence
     tests and snapshot diffing rely on this. *)
  let compare_row (k1, v1) (k2, v2) =
    let rec arrays i =
      if i >= Array.length k1 || i >= Array.length k2 then
        Int.compare (Array.length k1) (Array.length k2)
      else
        match Value.compare k1.(i) k2.(i) with 0 -> arrays (i + 1) | c -> c
    in
    match arrays 0 with 0 -> Value.compare v1 v2 | c -> c
  in
  let tables = ref [] in
  Database.iter_tables db (fun table ->
      let func = Table.func table in
      let rows = ref [] in
      Table.iter
        (fun key row ->
          Array.iter note key;
          note row.Table.value;
          rows := (key, row.Table.value) :: !rows)
        table;
      if !rows <> [] then begin
        let sorted = List.sort compare_row !rows in
        let row_sexps =
          List.map
            (fun (key, value) ->
              Sexpr.List
                [
                  Sexpr.List (Array.to_list (Array.map sexp_of_value key));
                  sexp_of_value value;
                ])
            sorted
        in
        tables :=
          ( Symbol.name func.Schema.name,
            Sexpr.List
              (Sexpr.Atom "table" :: Sexpr.Atom (Symbol.name func.Schema.name) :: row_sexps) )
          :: !tables
      end);
  let id_entries =
    Hashtbl.fold (fun id sort acc -> (id, sort) :: acc) ids []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map (fun (id, sort) -> Sexpr.List [ Sexpr.Int id; Sexpr.Atom sort ])
  in
  let table_sexps =
    List.sort (fun (a, _) (b, _) -> String.compare a b) !tables |> List.map snd
  in
  Sexpr.List
    (Sexpr.Atom "database"
     :: Sexpr.List (Sexpr.Atom "ids" :: id_entries)
     :: table_sexps)

let dump_string eng = Sexpr.to_string (dump eng)

(* ---- load ---- *)

let load (eng : Engine.t) (s : Sexpr.t) : unit =
  let db = Engine.database eng in
  match s with
  | Sexpr.List (Sexpr.Atom "database" :: Sexpr.List (Sexpr.Atom "ids" :: id_entries) :: tables) ->
    (* allocate a fresh id per dumped id; the dump is canonical, so the
       partition is implicit in row sharing *)
    let remap_tbl : (int, Value.t) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun entry ->
        match entry with
        | Sexpr.List [ Sexpr.Int id; Sexpr.Atom sort ] ->
          let sym = Symbol.intern sort in
          if not (Database.is_sort db sym) then error "unknown sort %s (re-declare the schema first)" sort;
          Hashtbl.replace remap_tbl id (Database.fresh_id db sym)
        | _ -> error "malformed id entry %s" (Sexpr.to_string entry))
      id_entries;
    let remap id =
      match Hashtbl.find_opt remap_tbl id with
      | Some v -> v
      | None -> error "row references undumped id %d" id
    in
    List.iter
      (fun table_sexp ->
        match table_sexp with
        | Sexpr.List (Sexpr.Atom "table" :: Sexpr.Atom fname :: rows) ->
          let table =
            match Database.find_func db (Symbol.intern fname) with
            | Some t -> t
            | None -> error "unknown function %s (re-declare the schema first)" fname
          in
          List.iter
            (fun row ->
              match row with
              | Sexpr.List [ Sexpr.List key; value ] ->
                let key = Array.of_list (List.map (value_of_sexp ~remap) key) in
                let value = value_of_sexp ~remap value in
                Database.set db table key value
              | _ -> error "malformed row %s" (Sexpr.to_string row))
            rows
        | _ -> error "malformed table %s" (Sexpr.to_string table_sexp))
      tables;
    Database.rebuild db
  | _ -> error "expected (database ...)"

let load_string eng src = load eng (Sexpr.parse_one src)
