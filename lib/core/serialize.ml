exception Load_error of string

let error fmt = Format.kasprintf (fun s -> raise (Load_error s)) fmt

(* ---- values <-> s-expressions ---- *)

let rec sexp_of_value ?(id = fun i -> Sexpr.List [ Sexpr.Atom "id"; Sexpr.Int i ])
    (v : Value.t) : Sexpr.t =
  match v with
  | Value.VUnit -> Sexpr.List [ Sexpr.Atom "unit" ]
  | Value.VBool b -> Sexpr.Atom (string_of_bool b)
  | Value.VInt i -> Sexpr.Int i
  | Value.VRat r ->
    Sexpr.List [ Sexpr.Atom "rat"; Sexpr.String (Rat.to_string r) ]
  | Value.VStr s -> Sexpr.String (Symbol.name s)
  | Value.VId i -> id i
  | Value.VSet xs -> Sexpr.List (Sexpr.Atom "set" :: List.map (sexp_of_value ~id) xs)
  | Value.VVec xs -> Sexpr.List (Sexpr.Atom "vec" :: List.map (sexp_of_value ~id) xs)

let rec value_of_sexp ~remap (s : Sexpr.t) : Value.t =
  match s with
  | Sexpr.List [ Sexpr.Atom "unit" ] -> Value.VUnit
  | Sexpr.Atom "true" -> Value.VBool true
  | Sexpr.Atom "false" -> Value.VBool false
  | Sexpr.Int i -> Value.VInt i
  | Sexpr.Rational r -> Value.VRat r
  | Sexpr.List [ Sexpr.Atom "rat"; Sexpr.String r ] -> Value.VRat (Rat.of_string r)
  | Sexpr.String str -> Value.VStr (Symbol.intern str)
  | Sexpr.List [ Sexpr.Atom "id"; Sexpr.Int id ] -> remap id
  | Sexpr.List (Sexpr.Atom "set" :: xs) -> Value.mk_set (List.map (value_of_sexp ~remap) xs)
  | Sexpr.List (Sexpr.Atom "vec" :: xs) -> Value.VVec (List.map (value_of_sexp ~remap) xs)
  | _ -> error "malformed value %s" (Sexpr.to_string s)

(* ---- canonical id numbering ----

   The dump renumbers e-class ids by {e content}, not by their allocation
   history: two databases holding the same tables modulo a renaming of ids
   serialize to identical bytes. Crash recovery depends on this — a
   recovered engine (checkpoint load + journal replay) allocates different
   concrete ids and different union-find representatives than the
   uninterrupted process it mirrors, yet must produce an identical dump.

   The numbering is computed by color refinement with individualization:
   every id starts colored by its sort, and is repeatedly re-colored by the
   multiset of rows it occurs in (rendered with the current colors, the id
   itself as a hole). When refinement stalls with a class of
   indistinguishable ids, one member is individualized and refinement
   resumes; for ids the refinement cannot split, any choice of member is an
   automorphism of the database in all but adversarially-constructed cases,
   so the emitted bytes do not depend on the choice. *)

let canonical_numbering (rows : (string * Value.t array * Value.t) list)
    ~(sort_of : int -> string) : (int, int) Hashtbl.t =
  let present : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec note (v : Value.t) =
    match v with
    | Value.VId i -> Hashtbl.replace present i ()
    | Value.VSet xs | Value.VVec xs -> List.iter note xs
    | Value.VUnit | Value.VBool _ | Value.VInt _ | Value.VRat _ | Value.VStr _ -> ()
  in
  List.iter
    (fun (_, key, v) ->
      Array.iter note key;
      note v)
    rows;
  let ids = Hashtbl.fold (fun i () acc -> i :: acc) present [] |> List.sort Int.compare in
  let numbering : (int, int) Hashtbl.t = Hashtbl.create (List.length ids) in
  if ids = [] then numbering
  else begin
    let n = List.length ids in
    let color : (int, string) Hashtbl.t = Hashtbl.create n in
    List.iter (fun i -> Hashtbl.replace color i ("s:" ^ sort_of i)) ids;
    (* rows mentioning each id, built once *)
    let occ : (int, (string * Value.t array * Value.t) list ref) Hashtbl.t = Hashtbl.create n in
    List.iter (fun i -> Hashtbl.replace occ i (ref [])) ids;
    List.iter
      (fun ((_, key, v) as row) ->
        let seen : (int, unit) Hashtbl.t = Hashtbl.create 4 in
        let rec mark (x : Value.t) =
          match x with
          | Value.VId i ->
            if not (Hashtbl.mem seen i) then begin
              Hashtbl.replace seen i ();
              let r = Hashtbl.find occ i in
              r := row :: !r
            end
          | Value.VSet xs | Value.VVec xs -> List.iter mark xs
          | Value.VUnit | Value.VBool _ | Value.VInt _ | Value.VRat _ | Value.VStr _ -> ()
        in
        Array.iter mark key;
        mark v)
      rows;
    let render_row ~self (f, key, v) =
      let rec render buf (x : Value.t) =
        match x with
        | Value.VId i ->
          if i = self then Buffer.add_string buf "<*>"
          else begin
            Buffer.add_char buf '<';
            Buffer.add_string buf (Hashtbl.find color i);
            Buffer.add_char buf '>'
          end
        | Value.VSet xs ->
          (* set order is id-number-dependent; render as a sorted multiset of
             member renders so the signature is content-only *)
          let parts =
            List.map
              (fun m ->
                let b = Buffer.create 16 in
                render b m;
                Buffer.contents b)
              xs
            |> List.sort String.compare
          in
          Buffer.add_char buf '{';
          List.iter
            (fun p ->
              Buffer.add_string buf p;
              Buffer.add_char buf ' ')
            parts;
          Buffer.add_char buf '}'
        | Value.VVec xs ->
          Buffer.add_char buf '[';
          List.iter
            (fun m ->
              render buf m;
              Buffer.add_char buf ' ')
            xs;
          Buffer.add_char buf ']'
        | Value.VUnit | Value.VBool _ | Value.VInt _ | Value.VRat _ | Value.VStr _ ->
          Buffer.add_string buf (Value.to_string x)
      in
      let buf = Buffer.create 64 in
      Buffer.add_char buf '(';
      Buffer.add_string buf f;
      Array.iter
        (fun x ->
          Buffer.add_char buf ' ';
          render buf x)
        key;
      Buffer.add_string buf " -> ";
      render buf v;
      Buffer.add_char buf ')';
      Buffer.contents buf
    in
    let distinct_colors () =
      let s : (string, unit) Hashtbl.t = Hashtbl.create n in
      List.iter (fun i -> Hashtbl.replace s (Hashtbl.find color i) ()) ids;
      Hashtbl.length s
    in
    let refine_round () =
      let long : (int * string) list =
        List.map
          (fun i ->
            let sigs =
              List.map (render_row ~self:i) !(Hashtbl.find occ i) |> List.sort String.compare
            in
            (i, Hashtbl.find color i ^ "|" ^ String.concat ";" sigs))
          ids
      in
      (* compress long signatures to dense ranks to keep colors short *)
      let sorted = List.sort_uniq String.compare (List.map snd long) in
      let rank : (string, string) Hashtbl.t = Hashtbl.create n in
      List.iteri (fun k s -> Hashtbl.replace rank s (Printf.sprintf "%06d" k)) sorted;
      List.iter (fun (i, s) -> Hashtbl.replace color i (Hashtbl.find rank s)) long
    in
    let individualize () =
      (* group by color; split the first tied class by marking its member
         with the smallest concrete id *)
      let classes : (string, int list ref) Hashtbl.t = Hashtbl.create n in
      List.iter
        (fun i ->
          let c = Hashtbl.find color i in
          match Hashtbl.find_opt classes c with
          | Some r -> r := i :: !r
          | None -> Hashtbl.replace classes c (ref [ i ]))
        ids;
      let tied =
        Hashtbl.fold (fun c r acc -> if List.length !r > 1 then (c, !r) :: acc else acc) classes []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      match tied with
      | [] -> ()
      | (c, members) :: _ ->
        let m = List.fold_left min (List.hd members) members in
        Hashtbl.replace color m (c ^ "!")
    in
    let continue_ = ref true in
    let classes = ref (distinct_colors ()) in
    while !continue_ do
      refine_round ();
      let classes' = distinct_colors () in
      if classes' = n then continue_ := false
      else if classes' > !classes then classes := classes'
      else begin
        individualize ();
        classes := !classes + 1
      end
    done;
    let in_order =
      List.sort (fun a b -> String.compare (Hashtbl.find color a) (Hashtbl.find color b)) ids
    in
    List.iteri (fun k i -> Hashtbl.replace numbering i k) in_order;
    numbering
  end

(* ---- dump ---- *)

let dump (eng : Engine.t) : Sexpr.t =
  Engine.rebuild eng;
  let db = Engine.database eng in
  (* collect every row and every id that appears in one, with its sort *)
  let sorts : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let rec note (v : Value.t) =
    match v with
    | Value.VId id ->
      if not (Hashtbl.mem sorts id) then begin
        match Database.sort_of_id db id with
        | Ty.Sort s -> Hashtbl.replace sorts id (Symbol.name s)
        | _ -> ()
      end
    | Value.VSet xs | Value.VVec xs -> List.iter note xs
    | Value.VUnit | Value.VBool _ | Value.VInt _ | Value.VRat _ | Value.VStr _ -> ()
  in
  let by_table : (string * (Value.t array * Value.t) list) list ref = ref [] in
  let all_rows : (string * Value.t array * Value.t) list ref = ref [] in
  Database.iter_tables db (fun table ->
      let func = Table.func table in
      let fname = Symbol.name func.Schema.name in
      let rows = ref [] in
      Table.iter
        (fun key row ->
          Array.iter note key;
          note row.Table.value;
          rows := (key, row.Table.value) :: !rows;
          all_rows := (fname, key, row.Table.value) :: !all_rows)
        table;
      if !rows <> [] then by_table := (fname, !rows) :: !by_table);
  (* The dump is canonical — rows, tables and ids are sorted, and ids are
     renumbered by content — so two databases with the same contents
     serialize identically regardless of hash-table iteration order,
     insertion history, union-find representatives or concrete id
     allocation. Rollback/equivalence tests, snapshot diffing and crash
     recovery rely on this. *)
  let numbering =
    canonical_numbering !all_rows ~sort_of:(fun i -> Hashtbl.find sorts i)
  in
  let rec renumber (v : Value.t) : Value.t =
    match v with
    | Value.VId i -> Value.VId (Hashtbl.find numbering i)
    | Value.VSet xs -> Value.mk_set (List.map renumber xs)
    | Value.VVec xs -> Value.VVec (List.map renumber xs)
    | Value.VUnit | Value.VBool _ | Value.VInt _ | Value.VRat _ | Value.VStr _ -> v
  in
  let compare_row (k1, v1) (k2, v2) =
    let rec arrays i =
      if i >= Array.length k1 || i >= Array.length k2 then
        Int.compare (Array.length k1) (Array.length k2)
      else
        match Value.compare k1.(i) k2.(i) with 0 -> arrays (i + 1) | c -> c
    in
    match arrays 0 with 0 -> Value.compare v1 v2 | c -> c
  in
  let plain_id i = Sexpr.List [ Sexpr.Atom "id"; Sexpr.Int i ] in
  let table_sexps =
    List.map
      (fun (fname, rows) ->
        let rows =
          List.map (fun (key, v) -> (Array.map renumber key, renumber v)) rows
          |> List.sort compare_row
        in
        let row_sexps =
          List.map
            (fun (key, value) ->
              Sexpr.List
                [
                  Sexpr.List (Array.to_list (Array.map (sexp_of_value ~id:plain_id) key));
                  sexp_of_value ~id:plain_id value;
                ])
            rows
        in
        (fname, Sexpr.List (Sexpr.Atom "table" :: Sexpr.Atom fname :: row_sexps)))
      !by_table
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map snd
  in
  let id_entries =
    Hashtbl.fold (fun old_id sort acc -> (Hashtbl.find numbering old_id, sort) :: acc) sorts []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map (fun (id, sort) -> Sexpr.List [ Sexpr.Int id; Sexpr.Atom sort ])
  in
  Sexpr.List
    (Sexpr.Atom "database"
     :: Sexpr.List (Sexpr.Atom "ids" :: id_entries)
     :: table_sexps)

let dump_string eng = Sexpr.to_string (dump eng)

(* ---- load ---- *)

let load (eng : Engine.t) (s : Sexpr.t) : unit =
  let db = Engine.database eng in
  (* Loading merges nothing: the target must hold no data (no ids, no rows).
     Declarations are fine — they are required, since a snapshot carries
     only data. Loading into a populated database has no well-defined
     meaning (id remapping could silently alias or duplicate rows), so it is
     an explicit error rather than an unspecified merge. *)
  if Database.n_ids db > 0 || Database.total_rows db > 0 then
    error
      "load into a non-empty database (%d ids, %d rows); load only into a freshly \
       declared engine"
      (Database.n_ids db) (Database.total_rows db);
  match s with
  | Sexpr.List (Sexpr.Atom "database" :: Sexpr.List (Sexpr.Atom "ids" :: id_entries) :: tables) ->
    (* allocate a fresh id per dumped id; the dump is canonical, so the
       partition is implicit in row sharing *)
    let remap_tbl : (int, Value.t) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun entry ->
        match entry with
        | Sexpr.List [ Sexpr.Int id; Sexpr.Atom sort ] ->
          let sym = Symbol.intern sort in
          if not (Database.is_sort db sym) then error "unknown sort %s (re-declare the schema first)" sort;
          Hashtbl.replace remap_tbl id (Database.fresh_id db sym)
        | _ -> error "malformed id entry %s" (Sexpr.to_string entry))
      id_entries;
    let remap id =
      match Hashtbl.find_opt remap_tbl id with
      | Some v -> v
      | None -> error "row references undumped id %d" id
    in
    List.iter
      (fun table_sexp ->
        match table_sexp with
        | Sexpr.List (Sexpr.Atom "table" :: Sexpr.Atom fname :: rows) ->
          let table =
            match Database.find_func db (Symbol.intern fname) with
            | Some t -> t
            | None -> error "unknown function %s (re-declare the schema first)" fname
          in
          List.iter
            (fun row ->
              match row with
              | Sexpr.List [ Sexpr.List key; value ] ->
                let key = Array.of_list (List.map (value_of_sexp ~remap) key) in
                let value = value_of_sexp ~remap value in
                Database.set db table key value
              | _ -> error "malformed row %s" (Sexpr.to_string row))
            rows
        | _ -> error "malformed table %s" (Sexpr.to_string table_sexp))
      tables;
    Database.rebuild db
  | _ -> error "expected (database ...)"

let load_string eng src = load eng (Sexpr.parse_one src)

(* ---- versioned on-disk containers ----

   Snapshots and checkpoints share one container layout:

   {v
   <magic> <format-version>[ <extra>]\n
   <payload-length> <crc32-hex>\n
   <payload bytes>
   v}

   Writes go to [path ^ ".tmp"], are fsync'd, and land with an atomic
   rename, so a crash mid-write can never truncate or corrupt an existing
   file. Reads verify magic, version, length and checksum, turning every
   corruption mode into a clear {!Load_error}. *)

let format_version = 1
let snapshot_magic = "egglog-snapshot"
let checkpoint_magic = "egglog-checkpoint"

let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let fsync_dir path =
  (* Make the rename itself durable. Directory fsync is not supported
     everywhere; failure to sync the directory only weakens durability, it
     never corrupts, so errors are ignored. *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd
  | exception Unix.Unix_error _ -> ()

let write_versioned ~kind ~magic ~extra ~path payload =
  Fault.hit (kind ^ ".before");
  let tmp = path ^ ".tmp" in
  let header =
    Printf.sprintf "%s %d%s\n%d %s\n" magic format_version
      (if extra = "" then "" else " " ^ extra)
      (String.length payload)
      (Checksum.to_hex (Checksum.crc32 payload))
  in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd header;
      write_all fd payload;
      Unix.fsync fd);
  Fault.hit (kind ^ ".unrenamed");
  Sys.rename tmp path;
  fsync_dir path;
  Fault.hit (kind ^ ".renamed")

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> contents
  | exception Sys_error msg -> error "%s" msg

let read_versioned ~magic ~path : string * string =
  let contents = read_file path in
  let fail_line () =
    error "%s is not a versioned %s file (magic mismatch; a pre-versioned snapshot?)" path
      magic
  in
  match String.index_opt contents '\n' with
  | None -> fail_line ()
  | Some nl1 -> (
    let line1 = String.sub contents 0 nl1 in
    match String.split_on_char ' ' line1 with
    | m :: version :: extra when String.equal m magic -> (
      (match int_of_string_opt version with
       | Some v when v = format_version -> ()
       | Some v ->
         error "%s: unsupported %s format version %d (this build reads version %d)" path magic
           v format_version
       | None -> fail_line ());
      match String.index_from_opt contents (nl1 + 1) '\n' with
      | None -> error "%s: truncated header" path
      | Some nl2 -> (
        let line2 = String.sub contents (nl1 + 1) (nl2 - nl1 - 1) in
        match String.split_on_char ' ' line2 with
        | [ len_s; crc_s ] -> (
          match (int_of_string_opt len_s, Checksum.of_hex crc_s) with
          | Some len, Some crc ->
            let body_start = nl2 + 1 in
            let avail = String.length contents - body_start in
            if avail < len then
              error "%s: truncated payload (%d of %d bytes)" path avail len
            else begin
              let payload = String.sub contents body_start len in
              if avail > len then error "%s: trailing garbage after payload" path;
              if Checksum.crc32 payload <> crc then
                error "%s: payload checksum mismatch (corrupted file)" path;
              (String.concat " " extra, payload)
            end
          | _ -> error "%s: malformed payload header %S" path line2)
        | _ -> error "%s: malformed payload header %S" path line2))
    | _ -> fail_line ())

(* ---- snapshot files (the CLI's --dump / --load) ---- *)

let write_snapshot eng path =
  write_versioned ~kind:"snapshot" ~magic:snapshot_magic ~extra:"" ~path
    (dump_string eng ^ "\n")

let load_snapshot eng path =
  let _, payload = read_versioned ~magic:snapshot_magic ~path in
  match Sexpr.parse_one payload with
  | s -> load eng s
  | exception Sexpr.Parse_error { message; _ } ->
    error "%s: unparsable snapshot payload: %s" path message

(* ---- checkpoint files (durability) ---- *)

type checkpoint = {
  ck_seq : int;
  ck_committed : int;
  ck_program : Ast.command list;
  ck_database : Sexpr.t;
}

let write_checkpoint eng ~path ~seq ~committed =
  let program = List.map Frontend.sexp_of_command (Engine.decl_commands eng) in
  let payload =
    Sexpr.to_string
      (Sexpr.List
         [
           Sexpr.Atom "checkpoint";
           Sexpr.List [ Sexpr.Atom "committed"; Sexpr.Int committed ];
           Sexpr.List (Sexpr.Atom "program" :: program);
           dump eng;
         ])
    ^ "\n"
  in
  write_versioned ~kind:"checkpoint" ~magic:checkpoint_magic ~extra:(string_of_int seq) ~path
    payload

let read_checkpoint path =
  let extra, payload = read_versioned ~magic:checkpoint_magic ~path in
  let seq =
    match int_of_string_opt extra with
    | Some s -> s
    | None -> error "%s: malformed checkpoint sequence %S" path extra
  in
  match Sexpr.parse_one payload with
  | Sexpr.List
      [
        Sexpr.Atom "checkpoint";
        Sexpr.List [ Sexpr.Atom "committed"; Sexpr.Int committed ];
        Sexpr.List (Sexpr.Atom "program" :: program);
        db;
      ] ->
    let commands =
      try List.concat_map Frontend.command_of_sexp program
      with Frontend.Syntax_error msg -> error "%s: bad checkpoint program: %s" path msg
    in
    { ck_seq = seq; ck_committed = committed; ck_program = commands; ck_database = db }
  | _ -> error "%s: malformed checkpoint payload" path
  | exception Sexpr.Parse_error { message; _ } ->
    error "%s: unparsable checkpoint payload: %s" path message
