(** egglog: a fixpoint reasoning system unifying Datalog and equality
    saturation (Zhang et al., PLDI 2023), reimplemented in OCaml.

    This module is the library's public face. The typical entry points:

    {[
      let eng = Egglog.Engine.create () in
      let outputs = Egglog.run_string eng {|
        (datatype Math (Num i64) (Add Math Math))
        (rewrite (Add a b) (Add b a))
        (define e (Add (Num 1) (Num 2)))
        (run 3)
        (check (= e (Add (Num 2) (Num 1))))
      |}
    ]}

    or drive {!Engine}'s typed API directly. *)

module Symbol = Symbol
module Ty = Ty
module Value = Value
module Ast = Ast
module Schema = Schema
module Table = Table
module Proof_forest = Proof_forest
module Database = Database
module Primitives = Primitives
module Compile = Compile
module Plan_compile = Plan_compile
module Join = Join
module Pool = Pool
module Extract = Extract
module Engine = Engine
module Frontend = Frontend
module Serialize = Serialize
module Checksum = Checksum
module Fault = Fault
module Telemetry = Telemetry
module Journal = Journal
module Durable = Durable

exception Egglog_error = Engine.Egglog_error

(** Parse and execute a textual egglog program, returning its outputs. *)
let run_string (eng : Engine.t) (src : string) : string list =
  Engine.run_program eng (Frontend.parse_program src)

(** Convenience: fresh engine, run a program, return outputs. *)
let run_program_string ?seminaive ?scheduler ?fast_paths ?index_caching ?compiled_plans
    ?node_limit ?time_limit ?memory_limit ?jobs (src : string) : string list =
  let eng =
    Engine.create ?seminaive ?scheduler ?fast_paths ?index_caching ?compiled_plans ?node_limit
      ?time_limit ?memory_limit ?jobs ()
  in
  run_string eng src
