exception Error of string
exception Unsat

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type arg = A_var of int | A_const of Value.t
type atom = { a_func : Schema.func; a_args : arg array }
type prim_app = { p_prim : Primitives.prim; p_args : arg array; p_out : arg }

type cquery = {
  n_vars : int;
  var_names : string array;
  var_tys : Ty.t array;
  atoms : atom array;
  order : int array;
  var_depth : int array;
  schedule : prim_app list array;
  name_args : (string * arg) list;
      (* user variable name -> surviving variable or constant, after the
         query's equalities are resolved *)
}

type cexpr =
  | C_var of int
  | C_const of Value.t
  | C_func of Schema.func * cexpr array
  | C_prim of Primitives.prim * cexpr array

type caction =
  | C_set of Schema.func * cexpr array * cexpr
  | C_union of cexpr * cexpr
  | C_let of int * cexpr
  | C_do of cexpr
  | C_panic of string
  | C_delete of Schema.func * cexpr array

type crule = { cr_name : string; cr_query : cquery; cr_actions : caction array; cr_slots : int }
type env = { find_func : string -> Schema.func option }

let const_ty v = Value.type_of ~sort_of_id:(fun _ -> assert false) v

(* ------------------------------------------------------------------ *)
(* Query flattening                                                    *)
(* ------------------------------------------------------------------ *)

(* Raw atoms/prims use provisional variable ids; [Eq] facts induce a
   union-find over those ids (plus constant bindings), applied before
   planning. *)
type qstate = {
  env : env;
  names : (string, int) Hashtbl.t;  (* user variable -> raw var *)
  mutable raw_names : string list;  (* reverse order *)
  mutable n_raw : int;
  mutable ratoms : (Schema.func * arg array) list;
  mutable rprims : (Primitives.prim * arg array * arg) list;
  mutable equalities : (arg * arg) list;
}

let fresh_var st name =
  let v = st.n_raw in
  st.n_raw <- v + 1;
  st.raw_names <- name :: st.raw_names;
  v

let named_var st x =
  match Hashtbl.find_opt st.names x with
  | Some v -> v
  | None ->
    let v = fresh_var st x in
    Hashtbl.add st.names x v;
    v

(* Flatten an expression to an argument, emitting atoms/prims. *)
let rec flatten_expr st (e : Ast.expr) : arg =
  match e with
  | Ast.Lit v -> A_const v
  | Ast.Var x -> (
    match Hashtbl.find_opt st.names x with
    | Some v -> A_var v
    | None -> (
      (* a bare name that denotes a declared nullary function is a call *)
      match st.env.find_func x with
      | Some f when Schema.arity f = 0 -> flatten_expr st (Ast.Call (x, []))
      | Some _ | None -> A_var (named_var st x)))
  | Ast.Call (fname, args) -> (
    let flat_args = List.map (flatten_expr st) args in
    match st.env.find_func fname with
    | Some f ->
      if List.length args <> Schema.arity f then
        error "function %s expects %d arguments, got %d" fname (Schema.arity f) (List.length args);
      let out = fresh_var st (Printf.sprintf "$%d" st.n_raw) in
      st.ratoms <- (f, Array.of_list (flat_args @ [ A_var out ])) :: st.ratoms;
      A_var out
    | None -> (
      match Primitives.find fname with
      | Some p ->
        let out = fresh_var st (Printf.sprintf "$%d" st.n_raw) in
        st.rprims <- (p, Array.of_list flat_args, A_var out) :: st.rprims;
        A_var out
      | None -> error "unknown function or primitive %s" fname))

let flatten_fact st (fact : Ast.fact) =
  match fact with
  | Ast.Eq (e1, e2) ->
    let a1 = flatten_expr st e1 and a2 = flatten_expr st e2 in
    st.equalities <- (a1, a2) :: st.equalities
  | Ast.Holds e -> (
    match e with
    | Ast.Call (fname, _) when st.env.find_func fname <> None ->
      (* [Holds (f args)]: require f defined on args; output unconstrained
         except for unit functions, where it is the unit value. *)
      let out = flatten_expr st e in
      let f = Option.get (st.env.find_func fname) in
      if Ty.equal f.ret_ty Ty.Unit then st.equalities <- (out, A_const Value.VUnit) :: st.equalities
    | Ast.Call _ | Ast.Var _ | Ast.Lit _ -> ignore (flatten_expr st e))

(* ------------------------------------------------------------------ *)
(* Equality resolution: union-find over raw vars + constant bindings   *)
(* ------------------------------------------------------------------ *)

let resolve_equalities st =
  let parent = Array.init st.n_raw Fun.id in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let consts : (int, Value.t) Hashtbl.t = Hashtbl.create 8 in
  let bind_const root v =
    match Hashtbl.find_opt consts root with
    | None -> Hashtbl.replace consts root v
    | Some v' -> if not (Value.equal v v') then raise Unsat
  in
  List.iter
    (fun (a1, a2) ->
      match (a1, a2) with
      | A_var x, A_var y ->
        let rx = find x and ry = find y in
        if rx <> ry then begin
          parent.(rx) <- ry;
          (match Hashtbl.find_opt consts rx with
           | Some v ->
             Hashtbl.remove consts rx;
             bind_const ry v
           | None -> ())
        end
      | A_var x, A_const v | A_const v, A_var x -> bind_const (find x) v
      | A_const v1, A_const v2 -> if not (Value.equal v1 v2) then raise Unsat)
    st.equalities;
  (* Make sure merged const bindings ended up on the final roots. *)
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) consts [] in
  Hashtbl.reset consts;
  List.iter (fun (k, v) -> bind_const (find k) v) entries;
  let subst raw =
    let root = find raw in
    match Hashtbl.find_opt consts root with Some v -> A_const v | None -> A_var root
  in
  subst

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)
(* ------------------------------------------------------------------ *)

let count_occurrences ~n_vars (atoms : atom array) =
  let occurrences = Array.make n_vars 0 in
  Array.iter
    (fun atom ->
      let seen = Hashtbl.create 8 in
      Array.iter
        (function
          | A_var v when not (Hashtbl.mem seen v) ->
            Hashtbl.add seen v ();
            occurrences.(v) <- occurrences.(v) + 1
          | A_var _ | A_const _ -> ())
        atom.a_args)
    atoms;
  occurrences

(* Turn a chosen variable [order] into a full plan: per-variable depths plus
   the primitive schedule. Shared by the initial occurrence-based plan, the
   runtime cost-based [replan], and the test-only [reorder]. *)
let finish_plan ~var_names ~var_tys ~(atoms : atom array) ~(prims : prim_app list) ~name_args
    ~(occurrences : int array) ~(order : int array) =
  let n_vars = Array.length var_names in
  let var_depth = Array.make n_vars 0 in
  Array.iteri (fun d v -> var_depth.(v) <- d + 1) order;
  let n_steps = Array.length order in
  (* Schedule primitives: place each at the earliest depth where its inputs
     (and its output, when the output is a join variable) are available. *)
  let schedule = Array.make (n_steps + 1) [] in
  let bound = Array.make n_vars false in
  let remaining = ref prims in
  let place depth =
    let rec loop () =
      let progress = ref false in
      remaining :=
        List.filter
          (fun (p : prim_app) ->
            let arg_ready = function A_const _ -> true | A_var v -> bound.(v) in
            let inputs_ready = Array.for_all arg_ready p.p_args in
            let out_ready =
              match p.p_out with
              | A_const _ -> true
              | A_var v -> bound.(v) || var_depth.(v) = 0 (* computed: will bind now *)
            in
            if inputs_ready && out_ready then begin
              schedule.(depth) <- p :: schedule.(depth);
              (match p.p_out with A_var v -> bound.(v) <- true | A_const _ -> ());
              progress := true;
              false
            end
            else true)
          !remaining;
      if !progress then loop ()
    in
    loop ()
  in
  place 0;
  for d = 0 to n_steps - 1 do
    bound.(order.(d)) <- true;
    place (d + 1)
  done;
  (match !remaining with
   | [] -> ()
   | (p : prim_app) :: _ -> error "cannot schedule primitive %s: some argument is unbound" p.p_prim.pname);
  Array.iteri
    (fun v depth ->
      if depth = 0 && not bound.(v) && occurrences.(v) = 0 then
        error "variable %s is not bound by the query" var_names.(v))
    var_depth;
  (* preserve discovery order inside each depth *)
  let schedule = Array.map List.rev schedule in
  { n_vars; var_names; var_tys; atoms; order; var_depth; schedule; name_args }

let join_vars_of ~n_vars (occurrences : int array) =
  let join_vars = ref [] in
  for v = n_vars - 1 downto 0 do
    if occurrences.(v) > 0 then join_vars := v :: !join_vars
  done;
  !join_vars

let plan ~var_names ~var_tys ~(atoms : atom array) ~(prims : prim_app list) ~name_args =
  let n_vars = Array.length var_names in
  let occurrences = count_occurrences ~n_vars atoms in
  (* Cold-start order, used before any table statistics exist: most shared
     variables first (they constrain the most). The engine replaces this
     with a cost-based [replan] once it can see table cardinalities. *)
  let order =
    List.stable_sort
      (fun a b -> Stdlib.compare occurrences.(b) occurrences.(a))
      (join_vars_of ~n_vars occurrences)
    |> Array.of_list
  in
  finish_plan ~var_names ~var_tys ~atoms ~prims ~name_args ~occurrences ~order

(* ------------------------------------------------------------------ *)
(* Cost-based replanning                                               *)
(* ------------------------------------------------------------------ *)

type atom_card = {
  ac_rows : int;
  ac_distinct : int array;  (* per column: argument columns, then output *)
}

let prims_of (q : cquery) : prim_app list = List.concat (Array.to_list q.schedule)

let distinct_at (c : atom_card) p =
  if p < Array.length c.ac_distinct then max 1 c.ac_distinct.(p) else 1

(* Estimated number of values the cursor for [v] enumerates in atom [ai],
   given the set of already-bound variables: start from the atom's row
   count, divide by the distinct count of every bound or constant column
   (independence assumption), and never exceed the distinct count of the
   column [v] itself sits in. *)
let estimate ~(q : cquery) ~(cards : atom_card array) ~(bound : bool array) ai v =
  let atom = q.atoms.(ai) and c = cards.(ai) in
  let cand = ref (max 1 c.ac_rows) in
  let seen = Hashtbl.create 8 in
  Array.iteri
    (fun p arg ->
      match arg with
      | A_const _ -> cand := max 1 (!cand / distinct_at c p)
      | A_var u when u <> v && bound.(u) && not (Hashtbl.mem seen u) ->
        Hashtbl.add seen u ();
        cand := max 1 (!cand / distinct_at c p)
      | A_var _ -> ())
    atom.a_args;
  let width = ref !cand in
  (try
     Array.iteri
       (fun p arg ->
         match arg with
         | A_var u when u = v ->
           width := distinct_at c p;
           raise Exit
         | A_var _ | A_const _ -> ())
       atom.a_args
   with Exit -> ());
  min !cand !width

(* Greedy cost-based variable ordering: repeatedly pick the unordered join
   variable whose cheapest covering atom enumerates the fewest values under
   the current bound set; break ties toward higher coverage (intersecting
   more atoms prunes more), then toward the smaller variable index so plans
   are deterministic. *)
let replan (q : cquery) ~(cards : atom_card array) : cquery =
  if Array.length cards <> Array.length q.atoms then
    invalid_arg "Compile.replan: cardinality/atom arity mismatch";
  let n_vars = q.n_vars in
  if Array.length q.order <= 1 then q
  else begin
    let occurrences = count_occurrences ~n_vars q.atoms in
    let covering = Array.make n_vars [] in
    Array.iteri
      (fun ai atom ->
        let seen = Hashtbl.create 8 in
        Array.iter
          (function
            | A_var v when not (Hashtbl.mem seen v) ->
              Hashtbl.add seen v ();
              covering.(v) <- ai :: covering.(v)
            | A_var _ | A_const _ -> ())
          atom.a_args)
      q.atoms;
    let bound = Array.make n_vars false in
    let remaining = ref (Array.to_list q.order |> List.sort Stdlib.compare) in
    let order = Array.make (Array.length q.order) 0 in
    let next = ref 0 in
    while !remaining <> [] do
      let best = ref None in
      List.iter
        (fun v ->
          let cost =
            List.fold_left
              (fun acc ai -> min acc (estimate ~q ~cards ~bound ai v))
              max_int covering.(v)
          in
          let key = (cost, -List.length covering.(v), v) in
          match !best with
          | Some (bkey, _) when Stdlib.compare bkey key <= 0 -> ()
          | Some _ | None -> best := Some (key, v))
        !remaining;
      let v = match !best with Some (_, v) -> v | None -> assert false in
      order.(!next) <- v;
      incr next;
      bound.(v) <- true;
      remaining := List.filter (fun u -> u <> v) !remaining
    done;
    finish_plan ~var_names:q.var_names ~var_tys:q.var_tys ~atoms:q.atoms ~prims:(prims_of q)
      ~name_args:q.name_args ~occurrences ~order
  end

let reorder (q : cquery) ~(order : int array) : cquery =
  let sorted a = List.sort Stdlib.compare (Array.to_list a) in
  if sorted order <> sorted q.order then
    invalid_arg "Compile.reorder: order is not a permutation of the query's join variables";
  let occurrences = count_occurrences ~n_vars:q.n_vars q.atoms in
  finish_plan ~var_names:q.var_names ~var_tys:q.var_tys ~atoms:q.atoms ~prims:(prims_of q)
    ~name_args:q.name_args ~occurrences ~order

(* ------------------------------------------------------------------ *)
(* Plan dumps                                                          *)
(* ------------------------------------------------------------------ *)

let pp_plan ?cards ?lowering fmt (q : cquery) =
  let arg_str = function A_var v -> q.var_names.(v) | A_const c -> Value.to_string c in
  Format.fprintf fmt "@[<v>";
  if Array.length q.atoms = 0 then Format.fprintf fmt "atoms: (none)"
  else begin
    Format.fprintf fmt "atoms:";
    Array.iteri
      (fun i atom ->
        let n = Array.length atom.a_args in
        let args = Array.to_list (Array.map arg_str (Array.sub atom.a_args 0 (n - 1))) in
        Format.fprintf fmt "@,  [%d] (%s%s) -> %s" i
          (Symbol.name atom.a_func.Schema.name)
          (String.concat "" (List.map (fun a -> " " ^ a) args))
          (arg_str atom.a_args.(n - 1));
        match cards with
        | Some (cs : atom_card array) -> Format.fprintf fmt "  rows=%d" cs.(i).ac_rows
        | None -> ())
      q.atoms
  end;
  Format.fprintf fmt "@,order:";
  if Array.length q.order = 0 then Format.fprintf fmt " (none)"
  else begin
    match cards with
    | None ->
      Array.iter (fun v -> Format.fprintf fmt " %s" q.var_names.(v)) q.order
    | Some cards ->
      (* Annotate each step with its estimated cursor width under the bound
         set accumulated so far — the quantity the planner minimized. *)
      let bound = Array.make q.n_vars false in
      Array.iter
        (fun v ->
          let cost = ref max_int in
          Array.iteri
            (fun ai atom ->
              if Array.exists (function A_var u -> u = v | A_const _ -> false) atom.a_args
              then cost := min !cost (estimate ~q ~cards ~bound ai v))
            q.atoms;
          Format.fprintf fmt " %s(est=%d)" q.var_names.(v) !cost;
          bound.(v) <- true)
        q.order
  end;
  Array.iteri
    (fun d prims ->
      List.iter
        (fun (p : prim_app) ->
          Format.fprintf fmt "@,  prim@@%d (%s%s) -> %s" d p.p_prim.Primitives.pname
            (String.concat ""
               (List.map (fun a -> " " ^ arg_str a) (Array.to_list p.p_args)))
            (arg_str p.p_out))
        prims)
    q.schedule;
  (match lowering with
  | Some l -> Format.fprintf fmt "@,lowering: %s" l
  | None -> ());
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* Type inference over the flattened query                             *)
(* ------------------------------------------------------------------ *)

let infer_types ~var_names ~(atoms : atom array) ~(prims : prim_app list) =
  let n_vars = Array.length var_names in
  let tys : Ty.t option array = Array.make n_vars None in
  let progress = ref true in
  let assign v ty =
    match tys.(v) with
    | None ->
      tys.(v) <- Some ty;
      progress := true
    | Some t ->
      if not (Ty.equal t ty) then
        error "variable %s has conflicting types %s and %s" var_names.(v) (Ty.to_string t)
          (Ty.to_string ty)
  in
  let check_const v ty =
    if not (Ty.equal (const_ty v) ty) then
      error "literal %s does not have expected type %s" (Value.to_string v) (Ty.to_string ty)
  in
  let apply_arg arg ty =
    match arg with A_var v -> assign v ty | A_const v -> check_const v ty
  in
  let ty_of_arg = function
    | A_const v -> Some (const_ty v)
    | A_var v -> tys.(v)
  in
  while !progress do
    progress := false;
    Array.iter
      (fun atom ->
        let f = atom.a_func in
        Array.iteri
          (fun i arg ->
            let want = if i < Schema.arity f then f.arg_tys.(i) else f.ret_ty in
            match (arg, tys) with
            | A_var v, _ when tys.(v) = None -> assign v want
            | A_var v, _ -> (
              match tys.(v) with
              | Some t when not (Ty.equal t want) ->
                error "variable %s used at type %s but has type %s" var_names.(v)
                  (Ty.to_string want) (Ty.to_string t)
              | _ -> ())
            | A_const c, _ -> check_const c want)
          atom.a_args)
      atoms;
    List.iter
      (fun (p : prim_app) ->
        let args = Array.to_list (Array.map ty_of_arg p.p_args) in
        let ret = ty_of_arg p.p_out in
        match p.p_prim.typer ~args ~ret with
        | Some t -> apply_arg p.p_out t
        | None -> ())
      prims
  done;
  (* Final validation: every variable typed, every primitive resolves. *)
  Array.iteri
    (fun v ty ->
      if ty = None then error "cannot infer the type of variable %s" var_names.(v))
    tys;
  List.iter
    (fun (p : prim_app) ->
      let args = Array.to_list (Array.map ty_of_arg p.p_args) in
      let ret = ty_of_arg p.p_out in
      match p.p_prim.typer ~args ~ret with
      | Some _ -> ()
      | None -> error "primitive %s is applied at unsupported types" p.p_prim.pname)
    prims;
  Array.map Option.get tys

(* ------------------------------------------------------------------ *)
(* Entry: query compilation                                            *)
(* ------------------------------------------------------------------ *)

let compile_query env (facts : Ast.fact list) : cquery =
  let st =
    {
      env;
      names = Hashtbl.create 16;
      raw_names = [];
      n_raw = 0;
      ratoms = [];
      rprims = [];
      equalities = [];
    }
  in
  List.iter (flatten_fact st) facts;
  let subst = resolve_equalities st in
  let subst_arg = function A_var v -> subst v | A_const _ as c -> c in
  (* Renumber surviving raw vars densely. *)
  let renum : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let raw_names = Array.of_list (List.rev st.raw_names) in
  let names_acc = ref [] in
  let var_of_raw raw =
    match Hashtbl.find_opt renum raw with
    | Some v -> v
    | None ->
      let v = Hashtbl.length renum in
      Hashtbl.add renum raw v;
      names_acc := raw_names.(raw) :: !names_acc;
      v
  in
  let final_arg arg =
    match subst_arg arg with A_var raw -> A_var (var_of_raw raw) | A_const _ as c -> c
  in
  let atoms =
    List.rev_map
      (fun (f, args) -> { a_func = f; a_args = Array.map final_arg args })
      st.ratoms
    |> Array.of_list
  in
  let prims =
    List.rev_map
      (fun (p, args, out) ->
        { p_prim = p; p_args = Array.map final_arg args; p_out = final_arg out })
      st.rprims
  in
  let name_args =
    Hashtbl.fold (fun name raw acc -> (name, final_arg (A_var raw)) :: acc) st.names []
  in
  (* A user variable may survive only through [name_args] (e.g. when unified
     with an internal variable): make sure it still owns a slot by touching
     its renumbering through final_arg above; constants need nothing. *)
  let var_names = Array.of_list (List.rev !names_acc) in
  let var_tys = infer_types ~var_names ~atoms ~prims in
  plan ~var_names ~var_tys ~atoms ~prims ~name_args

(* ------------------------------------------------------------------ *)
(* Expression and action compilation                                   *)
(* ------------------------------------------------------------------ *)

type scope = {
  senv : env;
  slots : (string, int) Hashtbl.t;
  sconsts : (string, Value.t) Hashtbl.t;  (* names equated to literals *)
  mutable slot_tys : Ty.t list;  (* reverse order *)
  mutable n_slots : int;
}

let fresh_scope senv =
  { senv; slots = Hashtbl.create 16; sconsts = Hashtbl.create 4; slot_tys = []; n_slots = 0 }

let scope_add scope name ty =
  let slot = scope.n_slots in
  scope.n_slots <- slot + 1;
  scope.slot_tys <- ty :: scope.slot_tys;
  Hashtbl.replace scope.slots name slot;
  slot

let scope_ty scope slot = List.nth scope.slot_tys (scope.n_slots - 1 - slot)

let rec compile_expr scope ?expected (e : Ast.expr) : cexpr * Ty.t =
  let check ty =
    match expected with
    | Some want when not (Ty.equal want ty) ->
      error "expression %s has type %s but %s was expected"
        (Format.asprintf "%a" Ast.pp_expr e)
        (Ty.to_string ty) (Ty.to_string want)
    | Some _ | None -> ()
  in
  match e with
  | Ast.Lit v ->
    let ty = const_ty v in
    check ty;
    (C_const v, ty)
  | Ast.Var x -> (
    match Hashtbl.find_opt scope.slots x with
    | Some slot ->
      let ty = scope_ty scope slot in
      check ty;
      (C_var slot, ty)
    | None -> (
      match Hashtbl.find_opt scope.sconsts x with
      | Some v ->
        let ty = const_ty v in
        check ty;
        (C_const v, ty)
      | None -> (
        match scope.senv.find_func x with
        | Some f when Schema.arity f = 0 ->
          check f.ret_ty;
          (C_func (f, [||]), f.ret_ty)
        | Some _ | None -> error "unbound variable %s" x)))
  | Ast.Call (fname, args) -> (
    match scope.senv.find_func fname with
    | Some f ->
      if List.length args <> Schema.arity f then
        error "function %s expects %d arguments, got %d" fname (Schema.arity f) (List.length args);
      let cargs =
        List.mapi (fun i a -> fst (compile_expr scope ~expected:f.arg_tys.(i) a)) args
      in
      check f.ret_ty;
      (C_func (f, Array.of_list cargs), f.ret_ty)
    | None -> (
      match Primitives.find fname with
      | Some p ->
        let hints = Primitives.arg_hints fname ~ret:expected ~nargs:(List.length args) in
        let compiled =
          List.mapi
            (fun i a ->
              match List.nth_opt hints i with
              | Some (Some expected) -> compile_expr scope ~expected a
              | Some None | None -> compile_expr scope a)
            args
        in
        let arg_tys = List.map (fun (_, t) -> Some t) compiled in
        (match p.typer ~args:arg_tys ~ret:expected with
         | Some ty ->
           check ty;
           (C_prim (p, Array.of_list (List.map fst compiled)), ty)
         | None -> error "primitive %s is applied at unsupported types" fname)
      | None -> error "unknown function or primitive %s" fname))

let compile_action scope (a : Ast.action) : caction =
  match a with
  | Ast.Set (fname, args, value) -> (
    match scope.senv.find_func fname with
    | None -> error "set: unknown function %s" fname
    | Some f ->
      if List.length args <> Schema.arity f then
        error "function %s expects %d arguments, got %d" fname (Schema.arity f) (List.length args);
      let cargs =
        List.mapi (fun i a -> fst (compile_expr scope ~expected:f.arg_tys.(i) a)) args
      in
      let cvalue, _ = compile_expr scope ~expected:f.ret_ty value in
      C_set (f, Array.of_list cargs, cvalue))
  | Ast.Union (e1, e2) ->
    let c1, t1 = compile_expr scope e1 in
    let c2, _ = compile_expr scope ~expected:t1 e2 in
    if not (Ty.is_sort t1) then
      error "union requires values of an uninterpreted sort, got %s" (Ty.to_string t1);
    C_union (c1, c2)
  | Ast.Let (x, e) ->
    let ce, ty = compile_expr scope e in
    let slot = scope_add scope x ty in
    C_let (slot, ce)
  | Ast.Do e ->
    let ce, _ = compile_expr scope e in
    C_do ce
  | Ast.Panic msg -> C_panic msg
  | Ast.Delete (fname, args) -> (
    match scope.senv.find_func fname with
    | None -> error "delete: unknown function %s" fname
    | Some f ->
      let cargs =
        List.mapi (fun i a -> fst (compile_expr scope ~expected:f.arg_tys.(i) a)) args
      in
      C_delete (f, Array.of_list cargs))

let compile_rule env ~name (rule : Ast.rule) : crule =
  let cq = compile_query env rule.query in
  let scope = fresh_scope env in
  (* Query variables occupy the first slots, in order. *)
  Array.iteri
    (fun i vname ->
      let slot = scope_add scope vname cq.var_tys.(i) in
      assert (slot = i))
    cq.var_names;
  (* User names whose class survived under another representative (or was
     bound to a literal) still need to resolve in actions. *)
  List.iter
    (fun (uname, arg) ->
      if not (Hashtbl.mem scope.slots uname) then begin
        match arg with
        | A_var v -> Hashtbl.replace scope.slots uname v
        | A_const c -> Hashtbl.replace scope.sconsts uname c
      end)
    cq.name_args;
  let actions = List.map (compile_action scope) rule.actions in
  { cr_name = name; cr_query = cq; cr_actions = Array.of_list actions; cr_slots = scope.n_slots }

let compile_top_actions env (actions : Ast.action list) =
  let scope = fresh_scope env in
  let cas = List.map (compile_action scope) actions in
  (Array.of_list cas, scope.n_slots)

let compile_closed_expr env ?expected (e : Ast.expr) =
  compile_expr (fresh_scope env) ?expected e

let compile_merge_expr env (f : Schema.func) (e : Ast.expr) =
  let scope = fresh_scope env in
  ignore (scope_add scope "old" f.Schema.ret_ty);
  ignore (scope_add scope "new" f.Schema.ret_ty);
  fst (compile_expr scope ~expected:f.Schema.ret_ty e)
