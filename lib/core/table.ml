type row = { mutable value : Value.t; mutable stamp : int; mutable first_log : int }

type t = {
  func : Schema.func;
  uid : int;  (* identity of this incarnation; fresh on create and copy *)
  data : row Value.Key_tbl.t;
  (* Append-only log of (key, stamp-at-append), nondecreasing in stamp.
     A log entry is current iff the row still exists and its stamp equals
     the entry's: rows re-stamped later appear again further down the log,
     so each surviving row is visited exactly once per range. *)
  mutable log_keys : Value.t array array;
  mutable log_stamps : int array;
  (* The row each entry logged. Removal tombstones the record (stamp goes
     to min_int), so a log walk can test currency with two loads and no
     hashing: entry [i] is current iff [log_rows.(i).stamp = log_stamps.(i)]
     and [log_rows.(i).first_log = i] (the latter collapses the entries a
     same-stamp remove/re-insert leaves behind to the first one — the one
     the hashing walk of [iter_range] fires). *)
  mutable log_rows : row array;
  mutable log_len : int;
  mutable version : int;  (* bumped on any mutation; index-cache validity *)
  mutable removals : int;  (* rows ever removed; nonzero delta = not append-only *)
  mutable value_updates : int;  (* in-place output overwrites of existing rows *)
  mutable distinct_cache : (int * int array) option;  (* version, per-column distincts *)
  mutable bytes : int;  (* modeled footprint, maintained incrementally *)
  (* Keys removed while the log's newest stamp still equals their row's: a
     re-insert at that same stamp must inherit the removed row's [first_log]
     (and its log slot) to keep delta-walk emission positions identical to
     [iter_range]'s first-occurrence rule. Entries are valid only for
     [revivals_stamp]; the table is reset when a removal at a newer stamp
     starts a fresh hazard window. *)
  revivals : int Value.Key_tbl.t;
  mutable revivals_stamp : int;
}

(* Shared sentinel for log slots whose entry can never be current again.
   Never mutated: [remove] tombstones only records that were in [data]. *)
let dead_row = { value = Value.VUnit; stamp = min_int; first_log = -1 }

(* Modeled byte accounting. Each row costs a fixed overhead (hashtable
   bucket, record, key array header) plus the modeled size of its key
   elements and output; each timestamp-log entry costs a fixed slot. The
   constants echo the runtime representation but what matters is that the
   count is a deterministic function of the table contents. *)
let row_overhead = 48
let log_entry_cost = 16

let key_bytes key = Array.fold_left (fun acc v -> acc + Value.modeled_bytes v) 16 key
let row_bytes key value = row_overhead + key_bytes key + Value.modeled_bytes value

let next_uid =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

let create func =
  {
    func;
    uid = next_uid ();
    data = Value.Key_tbl.create 64;
    log_keys = Array.make 16 [||];
    log_stamps = Array.make 16 0;
    log_rows = Array.make 16 dead_row;
    log_len = 0;
    version = 0;
    removals = 0;
    value_updates = 0;
    distinct_cache = None;
    bytes = 0;
    revivals = Value.Key_tbl.create 8;
    revivals_stamp = min_int;
  }

let func t = t.func
let length t = Value.Key_tbl.length t.data
let version t = t.version
let uid t = t.uid
let removals t = t.removals
let value_updates t = t.value_updates

(* Entries ever appended to the timestamp log (inserts + re-stamps). The
   growth of this number over an iteration is exactly the frontier the next
   semi-naïve round will scan, which makes it the right "delta size" to
   report in telemetry. *)
let log_length t = t.log_len
let modeled_bytes t = t.bytes
let get t key = Value.Key_tbl.find_opt t.data key

let log_append t key row stamp =
  if t.log_len >= Array.length t.log_keys then begin
    let cap = 2 * Array.length t.log_keys in
    let keys = Array.make cap [||] and stamps = Array.make cap 0 in
    let rows = Array.make cap dead_row in
    Array.blit t.log_keys 0 keys 0 t.log_len;
    Array.blit t.log_stamps 0 stamps 0 t.log_len;
    Array.blit t.log_rows 0 rows 0 t.log_len;
    t.log_keys <- keys;
    t.log_stamps <- stamps;
    t.log_rows <- rows
  end;
  t.log_keys.(t.log_len) <- key;
  t.log_stamps.(t.log_len) <- stamp;
  t.log_rows.(t.log_len) <- row;
  t.log_len <- t.log_len + 1;
  t.bytes <- t.bytes + log_entry_cost

let set_raw t key value ~stamp =
  match Value.Key_tbl.find_opt t.data key with
  | None ->
    let row = { value; stamp; first_log = t.log_len } in
    (* Same-stamp revival: the key was removed at this stamp after being
       logged; re-attach the fresh record to the original entry so delta
       walks fire it there (where [iter_range]'s dedupe rule fires it). *)
    if t.revivals_stamp = stamp && Value.Key_tbl.length t.revivals > 0 then begin
      match Value.Key_tbl.find_opt t.revivals key with
      | Some fl ->
        row.first_log <- fl;
        t.log_rows.(fl) <- row;
        Value.Key_tbl.remove t.revivals key
      | None -> ()
    end;
    Value.Key_tbl.replace t.data key row;
    t.bytes <- t.bytes + row_bytes key value;
    log_append t key row stamp;
    t.version <- t.version + 1;
    `Inserted
  | Some row ->
    if Value.equal row.value value then `Unchanged
    else begin
      let restamped = row.stamp <> stamp in
      t.bytes <- t.bytes + Value.modeled_bytes value - Value.modeled_bytes row.value;
      row.value <- value;
      row.stamp <- stamp;
      if restamped then begin
        row.first_log <- t.log_len;
        log_append t key row stamp
      end;
      t.version <- t.version + 1;
      t.value_updates <- t.value_updates + 1;
      `Updated
    end

let remove t key =
  match Value.Key_tbl.find_opt t.data key with
  | Some row ->
    Value.Key_tbl.remove t.data key;
    (* A re-insert at the row's own stamp is still possible only while the
       log's newest stamp equals it; remember where the row was first
       logged so a revival keeps its emission position. *)
    if t.log_len > 0 && t.log_stamps.(t.log_len - 1) = row.stamp then begin
      if t.revivals_stamp <> row.stamp then begin
        Value.Key_tbl.reset t.revivals;
        t.revivals_stamp <- row.stamp
      end;
      Value.Key_tbl.replace t.revivals key row.first_log
    end;
    row.stamp <- min_int;  (* tombstone: the row's log entries go dead *)
    (* The log entries the row left behind stay allocated, so only the row
       itself is subtracted; log cost is reclaimed never, like the arrays. *)
    t.bytes <- t.bytes - row_bytes key row.value;
    t.version <- t.version + 1;
    t.removals <- t.removals + 1
  | None -> ()
let iter f t = Value.Key_tbl.iter f t.data
let fold f t init = Value.Key_tbl.fold f t.data init

(* Materialize (key, value) pairs in exactly [iter] order, so a sharded
   scan over the array visits — and reports — rows in the same order a
   serial [iter] would. The array is a point-in-time snapshot of the row
   pointers; callers must not mutate the table while sharing it across
   domains. *)
let rows_array t =
  let n = length t in
  let out = Array.make n ([||], Value.VUnit) in
  let i = ref 0 in
  iter
    (fun key row ->
      out.(!i) <- (key, row.value);
      incr i)
    t;
  out

(* First log index with stamp >= lo (stamps are nondecreasing). *)
let log_lower_bound t lo =
  let left = ref 0 and right = ref t.log_len in
  while !left < !right do
    let mid = (!left + !right) / 2 in
    if t.log_stamps.(mid) < lo then left := mid + 1 else right := mid
  done;
  !left

let entries_since t lo = t.log_len - log_lower_bound t lo

let iter_range t ~lo ~hi f =
  if lo <= 0 then
    Value.Key_tbl.iter (fun key row -> if row.stamp < hi then f key row) t.data
  else begin
    let start = log_lower_bound t lo in
    (* A key removed and re-inserted within one timestamp (rebuild rounds)
       appears twice in the log with the same stamp; dedupe so every
       surviving row is visited exactly once. *)
    let seen = Value.Key_tbl.create (max 16 (t.log_len - start)) in
    for i = start to t.log_len - 1 do
      let s = t.log_stamps.(i) in
      if s < hi then begin
        let key = t.log_keys.(i) in
        match Value.Key_tbl.find_opt t.data key with
        | Some row when row.stamp = s ->
          if not (Value.Key_tbl.mem seen key) then begin
            Value.Key_tbl.replace seen key ();
            f key row
          end
        | Some _ | None -> ()
      end
    done
  end

(* Same visible behaviour as {!iter_range} — same rows, same values, same
   order — but the log walk tests entry currency through the logged row
   pointer instead of hashing every key into [data] and a dedupe table.
   [first_log] pins a same-stamp revival to its original entry, which is
   exactly where [iter_range]'s first-occurrence dedupe fires it. *)
let iter_delta t ~lo ~hi f =
  if lo <= 0 then
    Value.Key_tbl.iter (fun key row -> if row.stamp < hi then f key row) t.data
  else begin
    let start = log_lower_bound t lo in
    for i = start to t.log_len - 1 do
      let s = t.log_stamps.(i) in
      if s < hi then begin
        let row = t.log_rows.(i) in
        if row.stamp = s && row.first_log = i then f t.log_keys.(i) row
      end
    done
  end

let iter_log_suffix t ~from f =
  let from = max 0 from in
  let seen = Value.Key_tbl.create (max 16 (t.log_len - from)) in
  for i = from to t.log_len - 1 do
    let key = t.log_keys.(i) in
    match Value.Key_tbl.find_opt t.data key with
    | Some row when row.stamp = t.log_stamps.(i) ->
      if not (Value.Key_tbl.mem seen key) then begin
        Value.Key_tbl.replace seen key ();
        f key row
      end
    | Some _ | None -> ()
  done

module VTbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* Per-column distinct-value counts (argument columns then the output),
   recomputed lazily and cached against the version: the planner asks for
   them only when a table's size bucket shifts, so the O(rows * columns)
   scan amortizes to nothing on steady-state workloads. *)
let column_distincts t =
  match t.distinct_cache with
  | Some (v, d) when v = t.version -> d
  | Some _ | None ->
    let cols = Schema.arity t.func + 1 in
    let tbls = Array.init cols (fun _ -> VTbl.create 64) in
    Value.Key_tbl.iter
      (fun key row ->
        Array.iteri (fun i v -> VTbl.replace tbls.(i) v ()) key;
        VTbl.replace tbls.(cols - 1) row.value ())
      t.data;
    let d = Array.map VTbl.length tbls in
    t.distinct_cache <- Some (t.version, d);
    d

(* ------------------------------------------------------------------ *)
(* Typed column readers (compiled join plans)                          *)
(* ------------------------------------------------------------------ *)

let column_ty (f : Schema.func) i : Ty.t =
  if i < Schema.arity f then f.Schema.arg_tys.(i) else f.Schema.ret_ty

(* Column [i] of a row is key position [i] when i < arity and the output
   cell otherwise. The position test is resolved here, once per compiled
   closure, so the per-row reader is a direct load. *)
let reader (f : Schema.func) i : Value.t array -> row -> Value.t =
  if i < Schema.arity f then fun key _ -> key.(i) else fun _ row -> row.value

(* Integer payload of a cell in an i64/bool/sort-typed column. The type
   checker guarantees the constructor, so anything else is data corruption,
   not a user error. *)
let int_payload = function
  | Value.VInt n -> n
  | Value.VId n -> n
  | Value.VBool b -> Bool.to_int b
  | Value.VUnit | Value.VRat _ | Value.VStr _ | Value.VSet _ | Value.VVec _ ->
    invalid_arg "Table.int_reader: non-integer payload in typed column"

let int_reader (f : Schema.func) i : (Value.t array -> row -> int) option =
  match column_ty f i with
  | Ty.Int | Ty.Bool | Ty.Sort _ ->
    Some
      (if i < Schema.arity f then fun key _ -> int_payload key.(i)
       else fun _ row -> int_payload row.value)
  | Ty.Unit | Ty.Rational | Ty.String | Ty.Set _ | Ty.Vec _ -> None

let copy t =
  let data = Value.Key_tbl.create (Value.Key_tbl.length t.data) in
  Value.Key_tbl.iter
    (fun k r ->
      Value.Key_tbl.replace data (Array.copy k)
        { value = r.value; stamp = r.stamp; first_log = r.first_log })
    t.data;
  let log_keys = Array.map Fun.id (Array.sub t.log_keys 0 (max 16 t.log_len)) in
  let log_stamps = Array.sub t.log_stamps 0 (max 16 t.log_len) in
  (* Re-point log entries at the copy's row records: entry [i] is live iff
     the copied row for its key says so (same currency rule as the walks). *)
  let log_rows = Array.make (max 16 t.log_len) dead_row in
  for i = 0 to t.log_len - 1 do
    match Value.Key_tbl.find_opt data t.log_keys.(i) with
    | Some r when r.stamp = t.log_stamps.(i) && r.first_log = i -> log_rows.(i) <- r
    | Some _ | None -> ()
  done;
  let revivals = Value.Key_tbl.create (max 8 (Value.Key_tbl.length t.revivals)) in
  Value.Key_tbl.iter (fun k fl -> Value.Key_tbl.replace revivals k fl) t.revivals;
  {
    func = t.func;
    uid = next_uid ();
    data;
    log_keys;
    log_stamps;
    log_rows;
    log_len = t.log_len;
    version = t.version;
    removals = t.removals;
    value_updates = t.value_updates;
    distinct_cache = None;
    bytes = t.bytes;
    revivals;
    revivals_stamp = t.revivals_stamp;
  }
