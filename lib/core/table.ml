type row = { mutable value : Value.t; mutable stamp : int }

type t = {
  func : Schema.func;
  uid : int;  (* identity of this incarnation; fresh on create and copy *)
  data : row Value.Key_tbl.t;
  (* Append-only log of (key, stamp-at-append), nondecreasing in stamp.
     A log entry is current iff the row still exists and its stamp equals
     the entry's: rows re-stamped later appear again further down the log,
     so each surviving row is visited exactly once per range. *)
  mutable log_keys : Value.t array array;
  mutable log_stamps : int array;
  mutable log_len : int;
  mutable version : int;  (* bumped on any mutation; index-cache validity *)
  mutable removals : int;  (* rows ever removed; nonzero delta = not append-only *)
  mutable value_updates : int;  (* in-place output overwrites of existing rows *)
  mutable distinct_cache : (int * int array) option;  (* version, per-column distincts *)
  mutable bytes : int;  (* modeled footprint, maintained incrementally *)
}

(* Modeled byte accounting. Each row costs a fixed overhead (hashtable
   bucket, record, key array header) plus the modeled size of its key
   elements and output; each timestamp-log entry costs a fixed slot. The
   constants echo the runtime representation but what matters is that the
   count is a deterministic function of the table contents. *)
let row_overhead = 48
let log_entry_cost = 16

let key_bytes key = Array.fold_left (fun acc v -> acc + Value.modeled_bytes v) 16 key
let row_bytes key value = row_overhead + key_bytes key + Value.modeled_bytes value

let next_uid =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

let create func =
  {
    func;
    uid = next_uid ();
    data = Value.Key_tbl.create 64;
    log_keys = Array.make 16 [||];
    log_stamps = Array.make 16 0;
    log_len = 0;
    version = 0;
    removals = 0;
    value_updates = 0;
    distinct_cache = None;
    bytes = 0;
  }

let func t = t.func
let length t = Value.Key_tbl.length t.data
let version t = t.version
let uid t = t.uid
let removals t = t.removals
let value_updates t = t.value_updates

(* Entries ever appended to the timestamp log (inserts + re-stamps). The
   growth of this number over an iteration is exactly the frontier the next
   semi-naïve round will scan, which makes it the right "delta size" to
   report in telemetry. *)
let log_length t = t.log_len
let modeled_bytes t = t.bytes
let get t key = Value.Key_tbl.find_opt t.data key

let log_append t key stamp =
  if t.log_len >= Array.length t.log_keys then begin
    let cap = 2 * Array.length t.log_keys in
    let keys = Array.make cap [||] and stamps = Array.make cap 0 in
    Array.blit t.log_keys 0 keys 0 t.log_len;
    Array.blit t.log_stamps 0 stamps 0 t.log_len;
    t.log_keys <- keys;
    t.log_stamps <- stamps
  end;
  t.log_keys.(t.log_len) <- key;
  t.log_stamps.(t.log_len) <- stamp;
  t.log_len <- t.log_len + 1;
  t.bytes <- t.bytes + log_entry_cost

let set_raw t key value ~stamp =
  match Value.Key_tbl.find_opt t.data key with
  | None ->
    Value.Key_tbl.replace t.data key { value; stamp };
    t.bytes <- t.bytes + row_bytes key value;
    log_append t key stamp;
    t.version <- t.version + 1;
    `Inserted
  | Some row ->
    if Value.equal row.value value then `Unchanged
    else begin
      let restamped = row.stamp <> stamp in
      t.bytes <- t.bytes + Value.modeled_bytes value - Value.modeled_bytes row.value;
      row.value <- value;
      row.stamp <- stamp;
      if restamped then log_append t key stamp;
      t.version <- t.version + 1;
      t.value_updates <- t.value_updates + 1;
      `Updated
    end

let remove t key =
  match Value.Key_tbl.find_opt t.data key with
  | Some row ->
    Value.Key_tbl.remove t.data key;
    (* The log entries the row left behind stay allocated, so only the row
       itself is subtracted; log cost is reclaimed never, like the arrays. *)
    t.bytes <- t.bytes - row_bytes key row.value;
    t.version <- t.version + 1;
    t.removals <- t.removals + 1
  | None -> ()
let iter f t = Value.Key_tbl.iter f t.data
let fold f t init = Value.Key_tbl.fold f t.data init

(* Materialize (key, value) pairs in exactly [iter] order, so a sharded
   scan over the array visits — and reports — rows in the same order a
   serial [iter] would. The array is a point-in-time snapshot of the row
   pointers; callers must not mutate the table while sharing it across
   domains. *)
let rows_array t =
  let n = length t in
  let out = Array.make n ([||], Value.VUnit) in
  let i = ref 0 in
  iter
    (fun key row ->
      out.(!i) <- (key, row.value);
      incr i)
    t;
  out

(* First log index with stamp >= lo (stamps are nondecreasing). *)
let log_lower_bound t lo =
  let left = ref 0 and right = ref t.log_len in
  while !left < !right do
    let mid = (!left + !right) / 2 in
    if t.log_stamps.(mid) < lo then left := mid + 1 else right := mid
  done;
  !left

let entries_since t lo = t.log_len - log_lower_bound t lo

let iter_range t ~lo ~hi f =
  if lo <= 0 then
    Value.Key_tbl.iter (fun key row -> if row.stamp < hi then f key row) t.data
  else begin
    let start = log_lower_bound t lo in
    (* A key removed and re-inserted within one timestamp (rebuild rounds)
       appears twice in the log with the same stamp; dedupe so every
       surviving row is visited exactly once. *)
    let seen = Value.Key_tbl.create (max 16 (t.log_len - start)) in
    for i = start to t.log_len - 1 do
      let s = t.log_stamps.(i) in
      if s < hi then begin
        let key = t.log_keys.(i) in
        match Value.Key_tbl.find_opt t.data key with
        | Some row when row.stamp = s ->
          if not (Value.Key_tbl.mem seen key) then begin
            Value.Key_tbl.replace seen key ();
            f key row
          end
        | Some _ | None -> ()
      end
    done
  end

let iter_log_suffix t ~from f =
  let from = max 0 from in
  let seen = Value.Key_tbl.create (max 16 (t.log_len - from)) in
  for i = from to t.log_len - 1 do
    let key = t.log_keys.(i) in
    match Value.Key_tbl.find_opt t.data key with
    | Some row when row.stamp = t.log_stamps.(i) ->
      if not (Value.Key_tbl.mem seen key) then begin
        Value.Key_tbl.replace seen key ();
        f key row
      end
    | Some _ | None -> ()
  done

module VTbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* Per-column distinct-value counts (argument columns then the output),
   recomputed lazily and cached against the version: the planner asks for
   them only when a table's size bucket shifts, so the O(rows * columns)
   scan amortizes to nothing on steady-state workloads. *)
let column_distincts t =
  match t.distinct_cache with
  | Some (v, d) when v = t.version -> d
  | Some _ | None ->
    let cols = Schema.arity t.func + 1 in
    let tbls = Array.init cols (fun _ -> VTbl.create 64) in
    Value.Key_tbl.iter
      (fun key row ->
        Array.iteri (fun i v -> VTbl.replace tbls.(i) v ()) key;
        VTbl.replace tbls.(cols - 1) row.value ())
      t.data;
    let d = Array.map VTbl.length tbls in
    t.distinct_cache <- Some (t.version, d);
    d

let copy t =
  let data = Value.Key_tbl.create (Value.Key_tbl.length t.data) in
  Value.Key_tbl.iter
    (fun k r -> Value.Key_tbl.replace data (Array.copy k) { value = r.value; stamp = r.stamp })
    t.data;
  {
    func = t.func;
    uid = next_uid ();
    data;
    log_keys = Array.map Fun.id (Array.sub t.log_keys 0 (max 16 t.log_len));
    log_stamps = Array.sub t.log_stamps 0 (max 16 t.log_len);
    log_len = t.log_len;
    version = t.version;
    removals = t.removals;
    value_updates = t.value_updates;
    distinct_cache = None;
    bytes = t.bytes;
  }
