(* Plan compilation: lower a cost-ordered query plan (a {!Compile.cquery})
   to specialized OCaml closures, built once per (plan, delta-variant) and
   reused across iterations. The interpreter in {!Join} re-dispatches on
   plan structure per tuple — every row pays a checks-list traversal, a
   position test per cell read, and a symbol-table-resolved primitive call.
   Here all of that is resolved at construction time:

   - cell reads go through {!Table.reader}/{!Table.int_reader}, which fix
     the key-vs-output branch and (for i64/bool/sort columns) the unboxed
     integer representation per column;
   - constant and same-column checks are compiled to direct closures with
     the constant's payload hoisted out of the loop;
   - binding loops are hand-specialized per source arity (1-4), with a
     generic readers-array fallback above;
   - primitive guards are pre-resolved to their [impl] function pointers
     with argument evaluators and bind-vs-check classification fixed up
     front.

   This module holds the table-level toolkit; the lowered evaluators that
   tie these kernels to tries, indexes and the cache live in {!Join}
   (which also keeps the interpreter as reference semantics and as the
   [--no-compiled-plans] escape hatch). *)

type check =
  | Check_const of int * Value.t  (* position must equal the literal *)
  | Check_same of int * int  (* position must equal an earlier position *)

type shape = {
  sh_func : Schema.func;
  sh_checks : check list;
  sh_sources : int array;  (* row positions feeding the binding path, in order *)
  sh_vars : int array;  (* the query var bound at each path level *)
}

(* The per-atom analysis shared by the interpreter and the compiler: which
   row positions must pass checks, and which feed variable bindings, in the
   plan's variable-depth order. One implementation so the two evaluators
   can never disagree on an atom's read set (the join cache keys on it). *)
let shape_atom (q : Compile.cquery) (atom : Compile.atom) : shape =
  let n = Array.length atom.Compile.a_args in
  let first_pos : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let checks = ref [] in
  for i = 0 to n - 1 do
    match atom.Compile.a_args.(i) with
    | Compile.A_const v -> checks := Check_const (i, v) :: !checks
    | Compile.A_var var -> (
      match Hashtbl.find_opt first_pos var with
      | None -> Hashtbl.add first_pos var i
      | Some j -> checks := Check_same (i, j) :: !checks)
  done;
  let distinct = Hashtbl.fold (fun var pos acc -> (var, pos) :: acc) first_pos [] in
  let sorted =
    List.sort
      (fun (v1, _) (v2, _) ->
        Stdlib.compare q.Compile.var_depth.(v1) q.Compile.var_depth.(v2))
      distinct
  in
  {
    sh_func = atom.Compile.a_func;
    sh_checks = List.rev !checks;
    sh_sources = Array.of_list (List.map snd sorted);
    sh_vars = Array.of_list (List.map fst sorted);
  }

(* ------------------------------------------------------------------ *)
(* Row filters: checks compiled with constants hoisted                 *)
(* ------------------------------------------------------------------ *)

type filter = Value.t array -> Table.row -> bool

let no_filter : filter = fun _ _ -> true

let int_const = function
  | Value.VInt n -> Some n
  | Value.VId n -> Some n
  | Value.VBool b -> Some (Bool.to_int b)
  | Value.VUnit | Value.VRat _ | Value.VStr _ | Value.VSet _ | Value.VVec _ -> None

let compile_check (f : Schema.func) (c : check) : filter =
  match c with
  | Check_const (i, v) -> (
    match (Table.int_reader f i, int_const v) with
    | Some r, Some k -> fun key row -> r key row = k
    | _ -> (
      match Table.column_ty f i with
      | Ty.Unit -> no_filter  (* a Unit column holds only VUnit *)
      | _ ->
        let r = Table.reader f i in
        fun key row -> Value.equal (r key row) v))
  | Check_same (i, j) -> (
    match (Table.int_reader f i, Table.int_reader f j) with
    | Some ri, Some rj -> fun key row -> ri key row = rj key row
    | _ -> (
      match (Table.column_ty f i, Table.column_ty f j) with
      | Ty.Unit, Ty.Unit -> no_filter
      | _ ->
        let ri = Table.reader f i and rj = Table.reader f j in
        fun key row -> Value.equal (ri key row) (rj key row)))

let compile_filter (f : Schema.func) (checks : check list) : filter =
  match List.map (compile_check f) checks with
  | [] -> no_filter
  | [ c ] -> c
  | [ c1; c2 ] -> fun key row -> c1 key row && c2 key row
  | cs ->
    let arr = Array.of_list cs in
    let n = Array.length arr in
    fun key row ->
      let ok = ref true and i = ref 0 in
      while !ok && !i < n do
        ok := arr.(!i) key row;
        incr i
      done;
      !ok

(* ------------------------------------------------------------------ *)
(* Binding loops: monomorphic per arity 1-4, generic above             *)
(* ------------------------------------------------------------------ *)

type binder = {
  bind : Value.t array -> Value.t array -> Table.row -> unit;
      (* [bind env key row] writes the atom's variables into [env] *)
  bind_specialized : bool;  (* false on the arity-5+ generic fallback *)
}

let compile_binder (f : Schema.func) ~(vars : int array) ~(sources : int array) : binder =
  let r l = Table.reader f sources.(l) in
  match Array.length sources with
  | 0 -> { bind = (fun _ _ _ -> ()); bind_specialized = true }
  | 1 ->
    let v0 = vars.(0) and r0 = r 0 in
    { bind = (fun env key row -> env.(v0) <- r0 key row); bind_specialized = true }
  | 2 ->
    let v0 = vars.(0) and v1 = vars.(1) and r0 = r 0 and r1 = r 1 in
    {
      bind =
        (fun env key row ->
          env.(v0) <- r0 key row;
          env.(v1) <- r1 key row);
      bind_specialized = true;
    }
  | 3 ->
    let v0 = vars.(0) and v1 = vars.(1) and v2 = vars.(2) in
    let r0 = r 0 and r1 = r 1 and r2 = r 2 in
    {
      bind =
        (fun env key row ->
          env.(v0) <- r0 key row;
          env.(v1) <- r1 key row;
          env.(v2) <- r2 key row);
      bind_specialized = true;
    }
  | 4 ->
    let v0 = vars.(0) and v1 = vars.(1) and v2 = vars.(2) and v3 = vars.(3) in
    let r0 = r 0 and r1 = r 1 and r2 = r 2 and r3 = r 3 in
    {
      bind =
        (fun env key row ->
          env.(v0) <- r0 key row;
          env.(v1) <- r1 key row;
          env.(v2) <- r2 key row;
          env.(v3) <- r3 key row);
      bind_specialized = true;
    }
  | n ->
    let readers = Array.init n r in
    {
      bind =
        (fun env key row ->
          for l = 0 to n - 1 do
            env.(vars.(l)) <- readers.(l) key row
          done);
      bind_specialized = false;
    }

(* ------------------------------------------------------------------ *)
(* Primitive guards: impl pointers and classification pre-resolved     *)
(* ------------------------------------------------------------------ *)

(* Classify each scheduled primitive's output as a bind (first time its
   variable is seen after the atom vars) or a check, in schedule order.
   Shared with the interpreter's fast paths (same classification, so the
   two evaluators agree bit-for-bit on guard semantics). *)
let classify_prims (q : Compile.cquery) (atom_vars : int array list) :
    (Compile.prim_app * bool) list =
  let bound = Array.make q.Compile.n_vars false in
  List.iter (fun vars -> Array.iter (fun v -> bound.(v) <- true) vars) atom_vars;
  List.map
    (fun (p : Compile.prim_app) ->
      match p.Compile.p_out with
      | Compile.A_var v when not bound.(v) ->
        bound.(v) <- true;
        (p, true)
      | Compile.A_var _ | Compile.A_const _ -> (p, false))
    (Array.to_list q.Compile.schedule |> List.concat)

type prim_out = Out_bind of int | Out_check_var of int | Out_check_const of Value.t

type prim_step = {
  st_impl : Value.t array -> Value.t option;  (* direct function pointer *)
  st_args : (Value.t array -> Value.t) array;  (* env -> argument value *)
  st_out : prim_out;
}

let always_true : Value.t array -> bool = fun _ -> true

(* Compile a flat (fully-bound-env) primitive checklist. Returns a maker:
   each instantiation owns private argument buffers, so one compiled plan
   can be searched from several domains concurrently (each search
   instantiates its own runner). The interpreter allocates a fresh args
   array per primitive per row; here the buffer is reused — safe because
   primitive impls never retain their argument array. *)
let compile_prims (prims : (Compile.prim_app * bool) list) : unit -> Value.t array -> bool =
  match prims with
  | [] -> fun () -> always_true
  | _ ->
    let steps =
      Array.of_list
        (List.map
           (fun ((p : Compile.prim_app), binds) ->
             {
               st_impl = p.Compile.p_prim.Primitives.impl;
               st_args =
                 Array.map
                   (function
                     | Compile.A_const v -> fun _ -> v
                     | Compile.A_var v -> fun (env : Value.t array) -> env.(v))
                   p.Compile.p_args;
               st_out =
                 (match (p.Compile.p_out, binds) with
                 | Compile.A_var v, true -> Out_bind v
                 | Compile.A_var v, false -> Out_check_var v
                 | Compile.A_const c, _ -> Out_check_const c);
             })
           prims)
    in
    let n = Array.length steps in
    fun () ->
      let bufs = Array.map (fun st -> Array.make (Array.length st.st_args) Value.VUnit) steps in
      fun env ->
        let ok = ref true and i = ref 0 in
        while !ok && !i < n do
          let st = steps.(!i) in
          let buf = bufs.(!i) in
          for k = 0 to Array.length st.st_args - 1 do
            buf.(k) <- st.st_args.(k) env
          done;
          (match st.st_impl buf with
          | None -> ok := false
          | Some result -> (
            match st.st_out with
            | Out_bind v -> env.(v) <- result
            | Out_check_var v -> ok := Value.equal env.(v) result
            | Out_check_const c -> ok := Value.equal c result));
          incr i
        done;
        !ok

exception Unbound_prim_arg

(* Compile one depth's primitive schedule for the generic trie join, whose
   environment is an option array with undo on guard failure. Pure closures
   (no construction-time scratch), so the result is reentrant; the win over
   the interpreter is the pre-fetched impl pointer and pre-resolved output
   mode. Returns the bound-variable undo list, or None on failure with
   partial bindings already undone — exactly the interpreter's contract. *)
let compile_depth_prims (prims : Compile.prim_app list) :
    Value.t option array -> int list option =
  match prims with
  | [] -> fun _ -> Some []
  | _ ->
    let steps =
      Array.of_list
        (List.map
           (fun (p : Compile.prim_app) ->
             let arg_of =
               Array.map
                 (function
                   | Compile.A_const v -> fun (_ : Value.t option array) -> v
                   | Compile.A_var v -> (
                     fun env ->
                       match env.(v) with Some x -> x | None -> raise Unbound_prim_arg))
                 p.Compile.p_args
             in
             (p.Compile.p_prim.Primitives.impl, arg_of, p.Compile.p_out))
           prims)
    in
    let n = Array.length steps in
    fun env ->
      let rec go acc i =
        if i = n then Some acc
        else begin
          let impl, arg_of, out = steps.(i) in
          let args = Array.map (fun f -> f env) arg_of in
          match impl args with
          | None ->
            List.iter (fun v -> env.(v) <- None) acc;
            None
          | Some result -> (
            match out with
            | Compile.A_const c ->
              if Value.equal c result then go acc (i + 1)
              else begin
                List.iter (fun v -> env.(v) <- None) acc;
                None
              end
            | Compile.A_var v -> (
              match env.(v) with
              | Some existing ->
                if Value.equal existing result then go acc (i + 1)
                else begin
                  List.iter (fun u -> env.(u) <- None) acc;
                  None
                end
              | None ->
                env.(v) <- Some result;
                go (v :: acc) (i + 1)))
        end
      in
      go [] 0
