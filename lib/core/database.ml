exception Merge_conflict of { func : Symbol.t; old_value : Value.t; new_value : Value.t }
exception Internal_error of string

let c_unions = Telemetry.counter "db.unions"
let c_rebuild_rounds = Telemetry.counter "rebuild.rounds"
let c_rebuild_canon = Telemetry.counter "rebuild.tuples_canonicalized"

type t = {
  uf : Union_find.t;
  sorts : (Symbol.t, unit) Hashtbl.t;
  mutable id_sorts : Symbol.t array;  (* id -> declaring sort, dense *)
  funcs : (Symbol.t, Table.t) Hashtbl.t;
  mutable func_order : Symbol.t list;  (* reverse declaration order *)
  mutable timestamp : int;
  mutable changes : int;
  mutable merge_hook : (Schema.func -> Value.t -> Value.t -> Value.t) option;
  mutable txn_hook : (unit -> unit) option;
      (* one-shot: fires just before the first mutation after being armed,
         letting the engine snapshot the still-clean state (transactions) *)
  proofs : Proof_forest.t;
}

let set_txn_hook db f = db.txn_hook <- Some f
let clear_txn_hook db = db.txn_hook <- None

(* Called at the top of every mutator, before anything is written. *)
let touched db =
  match db.txn_hook with
  | Some f ->
    db.txn_hook <- None;
    f ()
  | None -> ()

let dummy_sym = Symbol.intern "<none>"

let create () =
  {
    uf = Union_find.create ();
    sorts = Hashtbl.create 16;
    id_sorts = Array.make 64 dummy_sym;
    funcs = Hashtbl.create 32;
    func_order = [];
    timestamp = 0;
    changes = 0;
    merge_hook = None;
    txn_hook = None;
    proofs = Proof_forest.create ();
  }

let declare_sort db s =
  touched db;
  Hashtbl.replace db.sorts s ()

let is_sort db s = Hashtbl.mem db.sorts s

let declare_func db (f : Schema.func) =
  if Hashtbl.mem db.funcs f.name then
    invalid_arg (Printf.sprintf "function %s is already declared" (Symbol.name f.name));
  touched db;
  Hashtbl.replace db.funcs f.name (Table.create f);
  db.func_order <- f.name :: db.func_order

let find_func db name = Hashtbl.find_opt db.funcs name

let iter_tables db f =
  List.iter (fun name -> f (Hashtbl.find db.funcs name)) (List.rev db.func_order)

let set_merge_hook db hook = db.merge_hook <- Some hook

let fresh_id db sort =
  touched db;
  let id = Union_find.make_set db.uf in
  if id >= Array.length db.id_sorts then begin
    let bigger = Array.make (2 * Array.length db.id_sorts) dummy_sym in
    Array.blit db.id_sorts 0 bigger 0 (Array.length db.id_sorts);
    db.id_sorts <- bigger
  end;
  db.id_sorts.(id) <- sort;
  Value.VId id

let sort_of_id db id = Ty.Sort db.id_sorts.(id)

let rec canon db (v : Value.t) =
  match v with
  | Value.VId i -> Value.VId (Union_find.find db.uf i)
  | Value.VSet xs -> Value.mk_set (List.map (canon db) xs)
  | Value.VVec xs -> Value.VVec (List.map (canon db) xs)
  | Value.VUnit | Value.VBool _ | Value.VInt _ | Value.VRat _ | Value.VStr _ -> v

let canon_key db key = Array.map (canon db) key
let are_equal db a b = Value.equal (canon db a) (canon db b)

let rec is_canon db (v : Value.t) =
  match v with
  | Value.VId i -> Union_find.is_canonical db.uf i
  | Value.VSet xs -> List.for_all (is_canon db) xs
  | Value.VVec xs -> List.for_all (is_canon db) xs
  | Value.VUnit | Value.VBool _ | Value.VInt _ | Value.VRat _ | Value.VStr _ -> true

let timestamp db = db.timestamp

let bump_timestamp db =
  touched db;
  db.timestamp <- db.timestamp + 1
let change_counter db = db.changes

let lookup db table key =
  match Table.get table (canon_key db key) with
  | None -> None
  | Some row -> Some (canon db row.value)

let union db ?(reason = Proof_forest.Asserted) a b =
  match (canon db a, canon db b) with
  | Value.VId x, Value.VId y ->
    if x = y then Value.VId x
    else begin
      touched db;
      db.changes <- db.changes + 1;
      Telemetry.bump c_unions 1;
      Proof_forest.record db.proofs x y reason;
      Value.VId (Union_find.union db.uf x y)
    end
  | va, vb ->
    if Value.equal va vb then va
    else
      invalid_arg
        (Printf.sprintf "union: cannot unify distinct interpreted constants %s and %s"
           (Value.to_string va) (Value.to_string vb))

let resolve_merge db (func : Schema.func) old_v new_v =
  match func.merge with
  | Schema.Merge_union -> union db ~reason:(Proof_forest.Congruence func.name) old_v new_v
  | Schema.Merge_panic ->
    raise (Merge_conflict { func = func.name; old_value = old_v; new_value = new_v })
  | Schema.Merge_expr _ ->
    (match db.merge_hook with
     | Some hook -> hook func old_v new_v
     | None -> raise (Internal_error "merge hook not installed"))

let set db table key value =
  touched db;
  let key = canon_key db key in
  let value = canon db value in
  match Table.get table key with
  | None ->
    (match Table.set_raw table key value ~stamp:db.timestamp with
     | `Inserted -> db.changes <- db.changes + 1
     | `Updated | `Unchanged -> ())
  | Some row ->
    let old_v = canon db row.value in
    if not (Value.equal old_v value) then begin
      let merged = canon db (resolve_merge db (Table.func table) old_v value) in
      (* The merge expression may itself have modified this row (e.g. via
         recursive sets); re-read before writing. *)
      match Table.set_raw table key merged ~stamp:db.timestamp with
      | `Updated -> db.changes <- db.changes + 1
      | `Inserted -> db.changes <- db.changes + 1
      | `Unchanged -> ()
    end

let remove db table key =
  touched db;
  Table.remove table (canon_key db key)

(* One repair round over a table: pull out all rows whose key or value
   mention a non-canonical id, then re-insert them canonically, letting
   [set] resolve the functional-dependency conflicts that canonicalization
   reveals (§4.2, §5.1 "Rebuilding Procedure").

   [stale_scan] lets the engine swap in a sharded scan that fans the
   canonicality checks across worker domains. The scan only finds the
   stale rows; the remove/re-insert repair — where merges and unions
   happen — always runs here, serially, so the resulting union-find and
   table state are identical however the rows were found. A scan
   returning [None] declines the table (too small to be worth a fan-out)
   and must produce the same list this serial collection would:
   rows in {e reverse} [Table.iter] order. *)
let repair_table ?stale_scan db table =
  let stale =
    match (match stale_scan with Some f -> f table | None -> None) with
    | Some rows -> rows
    | None ->
      let acc = ref [] in
      Table.iter
        (fun key row ->
          let key_ok = Array.for_all (is_canon db) key in
          if not (key_ok && is_canon db row.value) then acc := (key, row.value) :: !acc)
        table;
      !acc
  in
  Telemetry.bump c_rebuild_canon (List.length stale);
  List.iter (fun (key, _) -> Table.remove table key) stale;
  List.iter (fun (key, value) -> set db table key value) stale

let total_rows db =
  let n = ref 0 in
  iter_tables db (fun table -> n := !n + Table.length table);
  !n

let rebuild ?stale_scan db =
  (* Only pay for a span (and emit events) when there is repair work: rebuild
     is called after every iteration and is usually a no-op. The fixpoint
     check between rounds is always serial — a round's repairs can dirty the
     union-find again, and the next round must observe that before scanning. *)
  if Union_find.has_dirty db.uf then begin
    let emit = Telemetry.is_enabled () in
    let rows0 = if emit then total_rows db else 0 in
    let classes0 = if emit then Union_find.n_classes db.uf else 0 in
    Telemetry.span "db.rebuild" (fun () ->
        while Union_find.has_dirty db.uf do
          Telemetry.bump c_rebuild_rounds 1;
          Union_find.clear_dirty db.uf;
          iter_tables db (fun table -> repair_table ?stale_scan db table)
        done);
    if emit then
      Telemetry.instant "db.rebuild.stat"
        [
          ("rows_before", Telemetry.Json.Int rows0);
          ("rows_after", Telemetry.Json.Int (total_rows db));
          ("classes_before", Telemetry.Json.Int classes0);
          ("classes_after", Telemetry.Json.Int (Union_find.n_classes db.uf));
        ]
  end

let explain db a b =
  match (canon db a, canon db b) with
  | Value.VId _, Value.VId _ -> (
    match (a, b) with
    | Value.VId x, Value.VId y -> Proof_forest.explain db.proofs x y
    | _ -> None)
  | va, vb -> if Value.equal va vb then Some [] else None

let class_history db v =
  match canon db v with
  | Value.VId root ->
    Proof_forest.edges_in_class db.proofs ~member:root ~find:(Union_find.find db.uf)
  | _ -> []

let n_ids db = Union_find.size db.uf
let n_classes db = Union_find.n_classes db.uf
let is_canonical_id db i = Union_find.is_canonical db.uf i
let class_size db i = Union_find.root_size db.uf i

let total_log_entries db =
  let n = ref 0 in
  iter_tables db (fun table -> n := !n + Table.log_length table);
  !n

(* Modeled footprint: the incrementally-maintained table counters plus a
   fixed cost per allocated id (union-find slot, sort slot, proof-forest
   slot) and per proof edge. A pure function of the database contents, so
   a byte budget trips at the same iteration at any jobs count. *)
let id_cost = 40
let proof_edge_cost = 24

let modeled_bytes db =
  let n =
    ref ((Union_find.size db.uf * id_cost) + (Proof_forest.n_edges db.proofs * proof_edge_cost))
  in
  iter_tables db (fun table -> n := !n + Table.modeled_bytes table);
  !n

(* Cardinality statistics for the cost-based planner: current row count and
   per-column distinct counts (the latter cached inside the table). *)
let table_stats (_db : t) table = (Table.length table, Table.column_distincts table)

let copy db =
  let funcs = Hashtbl.create (Hashtbl.length db.funcs) in
  Hashtbl.iter (fun name table -> Hashtbl.replace funcs name (Table.copy table)) db.funcs;
  {
    uf = Union_find.copy db.uf;
    sorts = Hashtbl.copy db.sorts;
    id_sorts = Array.copy db.id_sorts;
    funcs;
    func_order = db.func_order;
    timestamp = db.timestamp;
    changes = db.changes;
    merge_hook = db.merge_hook;
    txn_hook = None;  (* transactions never follow a copy across a swap *)
    proofs = Proof_forest.copy db.proofs;
  }
