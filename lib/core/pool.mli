(** A reusable pool of OCaml 5 domains for the engine's parallel search
    phase.

    Domains are expensive to spawn (fresh minor heaps, OS threads), so the
    pool spawns its workers once and reuses them across every batch: each
    {!run} posts a generation-stamped batch, wakes the workers, has the
    calling domain participate too, and waits for completion. Work is
    handed out in chunks from a shared atomic cursor (a chunked work
    queue), so fast workers steal the tail of the index space from slow
    ones instead of idling.

    Determinism contract: {!run} returns results indexed exactly like its
    input array — scheduling affects only {e which domain} computes a
    slot, never where the result lands. Tasks must therefore be pure
    reads of shared state (the engine freezes the database for the
    duration). If any task raises, the exception for the {e lowest} task
    index is re-raised on the caller (with its backtrace) after all
    workers have drained, matching the failure order of a serial loop;
    the pool itself stays usable.

    Counters: [pool.tasks] (tasks executed) and [pool.steals] (chunk
    grabs beyond a participant's first — a measure of how uneven the
    per-task costs were). *)

type t

val create : workers:int -> t
(** Spawn a pool with [workers] extra domains (clamped to [0, 63] — the
    telemetry shard space; [0] gives a pool where {!run} degenerates to a
    serial loop on the caller). Worker [i] registers telemetry shard
    [i + 1]. *)

val size : t -> int
(** Number of worker domains (excluding the caller). *)

val run : ?participants:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [run pool f tasks] applies [f] to every element and returns the
    results in input order. The caller always participates;
    [participants] additionally caps how many pool workers do (default:
    all of them) so one shared pool can serve runs with different [:jobs]
    settings. Raises [Invalid_argument] when called from inside a task
    (nested parallel runs would deadlock the worker loop). *)

val in_task : unit -> bool
(** True while the calling domain is executing a pool task. *)

val run_ranges : ?participants:int -> t -> n:int -> (int -> int -> unit) -> unit
(** [run_ranges pool ~n f] splits the index space [0, n) into balanced
    contiguous ranges (a few per participant) and runs [f lo hi] for each
    on the pool. [f] must be a pure read of shared state whose only side
    effects land in caller-owned, per-index-disjoint slots (e.g. a staged
    result buffer); the caller merges them afterwards in whatever
    deterministic order it needs. Same participation, failure and
    nesting rules as {!run}. *)

val shutdown : t -> unit
(** Stop and join all worker domains. The pool must not be used
    afterwards. Only needed by tests; a live pool's workers sleep on a
    condition variable and die with the process. *)

val global : workers:int -> t
(** The process-wide shared pool, grown (never shrunk) to at least
    [workers] worker domains. The engine uses this so that repeatedly
    created engines — e.g. hundreds of randomized test cases — share one
    set of domains instead of leaking a spawn per engine. *)
