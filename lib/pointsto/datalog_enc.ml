(* The three Soufflé-style Steensgaard encodings of Fig. 8, on
   {!Minidatalog}.

   All three share a universe of "abstract locations":
   - a phantom location per variable (the reification of Steensgaard's
     per-variable pointee node, needed because Datalog cannot invent ids);
   - the allocation sites;
   - a field location per (location, field) pair, pre-generated because
     Datalog heads cannot create fresh ids (egglog's TGD-ness, §7).

   Flavours:
   - [Eqrel]: the paper's `eqrel` baseline. vpt keeps *every* equivalent
     location a pointer may point to; equivalence lives in an eqrel
     relation and rules join modulo equivalence. Blow-up by design.
   - [Patched]: the paper's patched cclyzer++: propagate only canonical
     representatives (a Find view of the eqrel), but keep the
     equivalence-closure joins that make the analysis sound.
   - [Cclyzer]: the original cclyzer++ shape: canonical representatives,
     no join modulo equivalence on loads, and no congruence closure over
     contents or fields — fast and semantically unsound (the two bugs the
     paper reports). *)

module D = Minidatalog

type flavor = Eqrel | Cclyzer | Patched

type result = {
  db : D.db;
  vpt : D.rel;
  eql : D.rel;
  outcome : D.outcome;
  seconds : float;
  n_vars : int;
  n_sites : int;
}

(* Location universe. Field locations must be pre-generated (Datalog heads
   cannot invent ids — the tuple-generating power egglog adds, §7); we
   skolemize [field_levels] levels of nesting, which covers the programs
   the generator emits. *)
let phantom v = v
let site_loc ~n_vars s = n_vars + s
let n_base ~n_vars ~n_sites = n_vars + n_sites
let field_levels = 3

let v x = D.V x
let c x = D.C x

let build flavor (p : Ir.program) =
  let { Ir.n_vars; n_sites; n_fields; insts } = p in
  let db = D.create () in
  let allocR = D.relation db "alloc" 2 in
  let copyR = D.relation db "copy" 2 in
  let storeR = D.relation db "store" 2 in
  let loadR = D.relation db "load" 2 in
  let fieldR = D.relation db "field" 3 in
  let phantomR = D.relation db "phantom" 2 in
  let far = D.relation db "fieldAlloc" 3 in
  let vpt = D.relation db "vpt" 2 in
  let pts = D.relation db "pts" 2 in
  let used = D.relation db "usedLoc" 1 in
  let eql = D.eqrel db "eql" in
  (* input facts *)
  Array.iter
    (fun inst ->
      match inst with
      | Ir.Alloc (vr, s) -> D.fact db allocR [| vr; site_loc ~n_vars s |]
      | Ir.Copy (d, s) -> D.fact db copyR [| d; s |]
      | Ir.Store (pp, q) -> D.fact db storeR [| pp; q |]
      | Ir.Load (d, pp) -> D.fact db loadR [| d; pp |]
      | Ir.Field (d, pp, f) -> D.fact db fieldR [| d; pp; f |])
    insts;
  for vr = 0 to n_vars - 1 do
    D.fact db phantomR [| vr; phantom vr |]
  done;
  (* skolemized field locations, [field_levels] levels deep *)
  let next_loc = ref (n_base ~n_vars ~n_sites) in
  let level_start = ref 0 and level_end = ref (n_base ~n_vars ~n_sites) in
  for _level = 1 to field_levels do
    let fresh_start = !next_loc in
    for b = !level_start to !level_end - 1 do
      for f = 0 to n_fields - 1 do
        D.fact db far [| b; f; !next_loc |];
        incr next_loc
      done
    done;
    level_start := fresh_start;
    level_end := !next_loc
  done;
  (* shared structural rules *)
  let canon x out body =
    (* canonical-representative projection, only for Patched/Cclyzer *)
    match flavor with
    | Eqrel -> (out, body @ [ (x, out) ])  (* caller substitutes equality *)
    | Cclyzer | Patched -> (out, body)
  in
  ignore canon;
  let find_or_id x cv body =
    match flavor with
    | Eqrel -> body  (* no canonicalization: use x directly *)
    | Cclyzer | Patched -> body @ [ D.Find (eql, v x, v cv) ]
  in
  let tgt x cv = match flavor with Eqrel -> x | Cclyzer | Patched -> cv in
  (* vpt(v, a0) from the phantom *)
  D.rule db
    ~head:(vpt, [| v "p"; v (tgt "a" "c") |])
    ~body:(find_or_id "a" "c" [ D.Atom (phantomR, [| v "p"; v "a" |]) ]);
  (* alloc *)
  D.rule db
    ~head:(vpt, [| v "p"; v (tgt "a" "c") |])
    ~body:(find_or_id "a" "c" [ D.Atom (allocR, [| v "p"; v "a" |]) ]);
  (* copy *)
  D.rule db
    ~head:(vpt, [| v "d"; v (tgt "a" "c") |])
    ~body:
      (find_or_id "a" "c"
         [ D.Atom (copyR, [| v "d"; v "s" |]); D.Atom (vpt, [| v "s"; v "a" |]) ]);
  (* all pointees of one variable are equivalent *)
  D.rule db
    ~head:(eql, [| v "a"; v "b" |])
    ~body:[ D.Atom (vpt, [| v "p"; v "a" |]); D.Atom (vpt, [| v "p"; v "b" |]) ];
  (* demand: locations actually reached by some pointer *)
  D.rule db
    ~head:(used, [| v "a" |])
    ~body:[ D.Atom (vpt, [| v "p"; v "a" |]) ];
  (* store *)
  D.rule db
    ~head:(pts, [| v (tgt "a" "ca"); v (tgt "b" "cb") |])
    ~body:
      (find_or_id "b" "cb"
         (find_or_id "a" "ca"
            [
              D.Atom (storeR, [| v "p"; v "q" |]);
              D.Atom (vpt, [| v "p"; v "a" |]);
              D.Atom (vpt, [| v "q"; v "b" |]);
            ]));
  (* loads also *define* contents: d's pointee is the contents of p's
     pointee, so record the pts pair (otherwise two loads through
     equivalent pointers with no store in between never unify) *)
  D.rule db
    ~head:(pts, [| v (tgt "a" "ca"); v (tgt "b" "cb") |])
    ~body:
      (find_or_id "b" "cb"
         (find_or_id "a" "ca"
            [
              D.Atom (loadR, [| v "d"; v "p" |]);
              D.Atom (vpt, [| v "p"; v "a" |]);
              D.Atom (vpt, [| v "d"; v "b" |]);
            ]));
  (* load; Eqrel and Patched join modulo equivalence, Cclyzer does not
     (its first unsoundness) *)
  (match flavor with
   | Eqrel | Patched ->
     D.rule db
       ~head:(vpt, [| v "d"; v (tgt "b" "cb") |])
       ~body:
         (find_or_id "b" "cb"
            [
              D.Atom (loadR, [| v "d"; v "p" |]);
              D.Atom (vpt, [| v "p"; v "a" |]);
              D.Atom (eql, [| v "a"; v "a2" |]);
              D.Atom (pts, [| v "a2"; v "b" |]);
            ])
   | Cclyzer ->
     D.rule db
       ~head:(vpt, [| v "d"; v "cb" |])
       ~body:
         [
           D.Atom (loadR, [| v "d"; v "p" |]);
           D.Atom (vpt, [| v "p"; v "a" |]);
           D.Atom (pts, [| v "a"; v "b" |]);
           D.Find (eql, v "b", v "cb");
         ]);
  (* congruence of contents: what equivalent locations contain is
     equivalent. Cclyzer++ missed this (its second unsoundness). *)
  (match flavor with
   | Eqrel | Patched ->
     D.rule db
       ~head:(eql, [| v "b1"; v "b2" |])
       ~body:
         [
           D.Atom (pts, [| v "a1"; v "b1" |]);
           D.Atom (eql, [| v "a1"; v "a2" |]);
           D.Atom (pts, [| v "a2"; v "b2" |]);
         ]
   | Cclyzer -> ());
  (* field address-of *)
  D.rule db
    ~head:(vpt, [| v "d"; v (tgt "fa" "cfa") |])
    ~body:
      (find_or_id "fa" "cfa"
         [
           D.Atom (fieldR, [| v "d"; v "p"; v "f" |]);
           D.Atom (vpt, [| v "p"; v "a" |]);
           D.Atom (far, [| v "a"; v "f"; v "fa" |]);
         ]);
  (* field congruence, demand-driven as in the real encodings (only field
     locations some pointer reaches participate) *)
  (match flavor with
   | Eqrel | Patched ->
     D.rule db
       ~head:(eql, [| v "fa1"; v "fa2" |])
       ~body:
         [
           D.Atom (used, [| v "fa1" |]);
           D.Atom (far, [| v "a1"; v "f"; v "fa1" |]);
           D.Atom (eql, [| v "a1"; v "a2" |]);
           D.Atom (far, [| v "a2"; v "f"; v "fa2" |]);
         ]
   | Cclyzer -> ());
  (db, vpt, eql)

let analyze flavor ?(timeout_s = 20.0) (p : Ir.program) : result =
  let db, vpt, eql = build flavor p in
  let seconds, outcome =
    Egglog.Telemetry.timed_span "pointsto.datalog.run" (fun () -> D.run db ~timeout_s ())
  in
  { db; vpt; eql; outcome; seconds; n_vars = p.Ir.n_vars; n_sites = p.Ir.n_sites }

(* Per-variable may-point-to site sets: all real allocation sites reachable
   from any vpt entry through the equivalence relation. *)
let var_sites (r : result) : int list array =
  let is_site loc = loc >= r.n_vars && loc < r.n_vars + r.n_sites in
  let site_of loc = loc - r.n_vars in
  (* location -> the real sites in its equivalence class *)
  let class_sites : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun cls ->
      let sites = List.filter_map (fun l -> if is_site l then Some (site_of l) else None) cls in
      List.iter (fun l -> Hashtbl.replace class_sites l sites) cls)
    (D.classes r.db r.eql);
  let sites_of loc =
    match Hashtbl.find_opt class_sites loc with
    | Some sites -> sites
    | None -> if is_site loc then [ site_of loc ] else []
  in
  let out = Array.make r.n_vars [] in
  D.iter r.db r.vpt (fun t ->
      let var = t.(0) and loc = t.(1) in
      if var < r.n_vars then out.(var) <- sites_of loc @ out.(var));
  Array.map (fun l -> List.sort_uniq compare l) out

let vpt_size (r : result) = D.size r.db r.vpt
