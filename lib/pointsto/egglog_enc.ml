(* Steensgaard in egglog (§6.1). [vpt] maps each pointer variable to the
   equivalence class of allocations it points to; its functional-dependency
   repair *unifies* the violating ids — exactly the paper's point: declare
   that, and the engine's canonicalization does all the unification and
   congruence.

   This is the measured encoding: rules query the vpt/pts tables (so
   canonicalized rows re-fire rules and semi-naïve evaluation has real
   work to skip), mirroring how the paper's artifact reimplements the
   cclyzer++ rules. *)

let program_text =
  {|
  (sort Alloc)
  (function siteAlloc (i64) Alloc)
  (function fieldAlloc (Alloc i64) Alloc)
  (function vpt (i64) Alloc)   ;; pointer variable -> pointee class
  (function pts (Alloc) Alloc) ;; allocation class -> contents class

  (relation allocI (i64 i64))
  (relation copyI (i64 i64))
  (relation storeI (i64 i64))
  (relation loadI (i64 i64))
  (relation fieldI (i64 i64 i64))

  ;; Pointee classes come into existence where allocations flow (the rules
  ;; are gated on the queried side being defined, so definedness spreads
  ;; hop by hop through the constraint graph — the fixpoint matches the
  ;; reference because unconstrained nodes can never contain a site).
  (rule ((allocI p s)) ((union (vpt p) (siteAlloc s))))
  ;; copy unifies both pointees (Steensgaard is flow-insensitive)
  (rule ((copyI d s) (= a (vpt s))) ((union (vpt d) a)))
  (rule ((copyI d s) (= a (vpt d))) ((union (vpt s) a)))
  (rule ((storeI p q) (= a (vpt p))) ((union (pts a) (vpt q))))
  (rule ((storeI p q) (= b (vpt q))) ((union (pts (vpt p)) b)))
  (rule ((loadI d p) (= a (vpt p))) ((union (vpt d) (pts a))))
  (rule ((loadI d p) (= a (vpt d))) ((union (pts (vpt p)) a)))
  (rule ((fieldI d p f) (= a (vpt p))) ((union (vpt d) (fieldAlloc a f))))
  (rule ((fieldI d p f) (= a (vpt d))) ((union (fieldAlloc (vpt p) f) a)))
  |}

(* Ablation: the even more direct encoding where all flow happens through
   get-or-default in actions and a single rebuild does the whole analysis.
   Used by the bench's ablation mode and the examples. *)
let direct_program_text =
  {|
  (sort Loc)
  (function varLoc (i64) Loc)
  (function siteLoc (i64) Loc)
  (function target (Loc) Loc)
  (function fieldOf (Loc i64) Loc)

  (relation allocI (i64 i64))
  (relation copyI (i64 i64))
  (relation storeI (i64 i64))
  (relation loadI (i64 i64))
  (relation fieldI (i64 i64 i64))

  (rule ((allocI v s)) ((union (target (varLoc v)) (siteLoc s))))
  (rule ((copyI d s)) ((union (target (varLoc d)) (target (varLoc s)))))
  (rule ((storeI p q)) ((union (target (target (varLoc p))) (target (varLoc q)))))
  (rule ((loadI d p)) ((union (target (varLoc d)) (target (target (varLoc p))))))
  (rule ((fieldI d p f)) ((union (target (varLoc d)) (fieldOf (target (varLoc p)) f))))
  |}

let load ?(seminaive = true) ?fast_paths ?index_caching ?compiled_plans ?jobs ?(direct = false)
    (p : Ir.program) =
  let eng = Egglog.Engine.create ~seminaive ?fast_paths ?index_caching ?compiled_plans ?jobs () in
  ignore (Egglog.run_string eng (if direct then direct_program_text else program_text));
  let i n = Egglog.Value.VInt n in
  Array.iter
    (fun inst ->
      match inst with
      | Ir.Alloc (v, s) -> Egglog.Engine.set_fact eng "allocI" [ i v; i s ] Egglog.Value.VUnit
      | Ir.Copy (d, s) -> Egglog.Engine.set_fact eng "copyI" [ i d; i s ] Egglog.Value.VUnit
      | Ir.Store (pp, q) -> Egglog.Engine.set_fact eng "storeI" [ i pp; i q ] Egglog.Value.VUnit
      | Ir.Load (d, pp) -> Egglog.Engine.set_fact eng "loadI" [ i d; i pp ] Egglog.Value.VUnit
      | Ir.Field (d, pp, f) ->
        Egglog.Engine.set_fact eng "fieldI" [ i d; i pp; i f ] Egglog.Value.VUnit)
    p.Ir.insts;
  eng

let analyze ?seminaive ?compiled_plans ?jobs ?direct (p : Ir.program) =
  Egglog.Telemetry.span "pointsto.egglog.run" @@ fun () ->
  let eng = load ?seminaive ?compiled_plans ?jobs ?direct p in
  let report = Egglog.Engine.run_iterations eng 1000 in
  (eng, report)

let try_lookup eng name args =
  try Egglog.Engine.lookup_fact eng name args with Egglog.Engine.Egglog_error _ -> None

(* The pointee class of a variable, under either encoding. *)
let pointee_class eng v =
  match try_lookup eng "vpt" [ Egglog.Value.VInt v ] with
  | Some cls -> Some cls
  | None -> (
    (* direct encoding: target (varLoc v) *)
    match try_lookup eng "varLoc" [ Egglog.Value.VInt v ] with
    | None -> None
    | Some loc -> try_lookup eng "target" [ loc ])

let site_class eng s =
  match try_lookup eng "siteAlloc" [ Egglog.Value.VInt s ] with
  | Some cls -> Some cls
  | None -> try_lookup eng "siteLoc" [ Egglog.Value.VInt s ]

(* Per-variable site sets, for comparison with {!Reference}. *)
let var_sites (p : Ir.program) eng : int list array =
  let db = Egglog.Engine.database eng in
  let canon v = Egglog.Database.canon db v in
  let by_class : (Egglog.Value.t, int list) Hashtbl.t = Hashtbl.create 64 in
  for s = 0 to p.Ir.n_sites - 1 do
    match site_class eng s with
    | Some loc ->
      let key = canon loc in
      Hashtbl.replace by_class key (s :: (try Hashtbl.find by_class key with Not_found -> []))
    | None -> ()
  done;
  Array.init p.Ir.n_vars (fun v ->
      match pointee_class eng v with
      | None -> []
      | Some cls -> (
        match Hashtbl.find_opt by_class (canon cls) with
        | Some sites -> List.sort compare sites
        | None -> []))

let vpt_size (p : Ir.program) eng =
  let n = ref 0 in
  for v = 0 to p.Ir.n_vars - 1 do
    match pointee_class eng v with Some _ -> incr n | None -> ()
  done;
  !n
