(* Andersen-style (subset-based, inclusion) points-to analysis: the precise
   but quadratic alternative §6.1 contrasts Steensgaard against. Two
   implementations: a direct worklist solver (reference) and a Datalog
   encoding on {!Minidatalog} — plain Datalog is a natural fit here, which
   is exactly why the eqrel/unification machinery the paper studies only
   becomes interesting for Steensgaard. *)

module ISet = Set.Make (Int)

(* Location universe: real sites [0, n_sites), then field locations per
   (location, field), allocated on demand. *)
type t = {
  n_sites : int;
  pts : (int, ISet.t) Hashtbl.t;  (* variable -> locations *)
  contents : (int, ISet.t) Hashtbl.t;  (* location -> locations *)
  fields : (int * int, int) Hashtbl.t;  (* (location, field) -> field location *)
  depth : (int, int) Hashtbl.t;  (* field-nesting depth of a location *)
  mutable next_loc : int;
}

let get tbl k = try Hashtbl.find tbl k with Not_found -> ISet.empty

(* Field derivation must be depth-limited or cyclic flows make the
   inclusion analysis diverge through an infinite field tower (the
   standard k-limiting); k = 2 matches the two skolemized levels of the
   Datalog encoding, keeping the two implementations in exact agreement. *)
let max_field_depth = 2

let loc_depth st loc = try Hashtbl.find st.depth loc with Not_found -> 0

let field_loc st base f =
  if loc_depth st base >= max_field_depth then None
  else begin
    match Hashtbl.find_opt st.fields (base, f) with
    | Some loc -> Some loc
    | None ->
      let loc = st.next_loc in
      st.next_loc <- loc + 1;
      Hashtbl.replace st.fields (base, f) loc;
      Hashtbl.replace st.depth loc (loc_depth st base + 1);
      Some loc
  end

let analyze (p : Ir.program) : t =
  let st =
    {
      n_sites = p.Ir.n_sites;
      pts = Hashtbl.create 256;
      contents = Hashtbl.create 256;
      fields = Hashtbl.create 64;
      depth = Hashtbl.create 64;
      next_loc = p.Ir.n_sites;
    }
  in
  (* naive fixpoint: iterate all constraints until nothing changes; fine at
     benchmark scale and obviously correct *)
  let changed = ref true in
  let add tbl k locs =
    let old = get tbl k in
    let merged = ISet.union old locs in
    if not (ISet.equal old merged) then begin
      Hashtbl.replace tbl k merged;
      changed := true
    end
  in
  while !changed do
    changed := false;
    Array.iter
      (fun inst ->
        match inst with
        | Ir.Alloc (v, s) -> add st.pts v (ISet.singleton s)
        | Ir.Copy (d, s) -> add st.pts d (get st.pts s)
        | Ir.Store (pp, q) ->
          ISet.iter (fun a -> add st.contents a (get st.pts q)) (get st.pts pp)
        | Ir.Load (d, pp) ->
          ISet.iter (fun a -> add st.pts d (get st.contents a)) (get st.pts pp)
        | Ir.Field (d, pp, f) ->
          ISet.iter
            (fun a ->
              match field_loc st a f with
              | Some loc -> add st.pts d (ISet.singleton loc)
              | None -> ())
            (get st.pts pp))
      p.Ir.insts
  done;
  st

let var_sites (p : Ir.program) (st : t) : int list array =
  Array.init p.Ir.n_vars (fun v ->
      get st.pts v |> ISet.filter (fun l -> l < st.n_sites) |> ISet.elements)

(* average points-to set size over variables with nonempty sets: the
   precision metric (smaller = more precise) *)
let avg_set_size sites =
  let total = ref 0 and n = ref 0 in
  Array.iter
    (fun l ->
      if l <> [] then begin
        total := !total + List.length l;
        incr n
      end)
    sites;
  if !n = 0 then 0.0 else float_of_int !total /. float_of_int !n

(* ---- the same analysis as plain Datalog (no equivalences needed) ---- *)

let datalog_analyze ?(timeout_s = 60.0) (p : Ir.program) =
  let { Ir.n_vars; n_sites; n_fields; insts } = p in
  let db = Minidatalog.create () in
  let v x = Minidatalog.V x in
  let allocR = Minidatalog.relation db "alloc" 2 in
  let copyR = Minidatalog.relation db "copy" 2 in
  let storeR = Minidatalog.relation db "store" 2 in
  let loadR = Minidatalog.relation db "load" 2 in
  let fieldR = Minidatalog.relation db "field" 3 in
  let far = Minidatalog.relation db "fieldAlloc" 3 in
  let vpt = Minidatalog.relation db "vpt" 2 in
  let pts = Minidatalog.relation db "pts" 2 in
  Array.iter
    (fun inst ->
      match inst with
      | Ir.Alloc (vr, s) -> Minidatalog.fact db allocR [| vr; s |]
      | Ir.Copy (d, s) -> Minidatalog.fact db copyR [| d; s |]
      | Ir.Store (pp, q) -> Minidatalog.fact db storeR [| pp; q |]
      | Ir.Load (d, pp) -> Minidatalog.fact db loadR [| d; pp |]
      | Ir.Field (d, pp, f) -> Minidatalog.fact db fieldR [| d; pp; f |])
    insts;
  (* pre-skolemized field locations, two levels (Datalog cannot invent ids) *)
  let next = ref n_sites in
  let lv1_start = ref 0 and lv1_end = ref n_sites in
  for _ = 1 to 2 do
    let fresh = !next in
    for b = !lv1_start to !lv1_end - 1 do
      for f = 0 to n_fields - 1 do
        Minidatalog.fact db far [| b; f; !next |];
        incr next
      done
    done;
    lv1_start := fresh;
    lv1_end := !next
  done;
  Minidatalog.rule db ~head:(vpt, [| v "p"; v "a" |]) ~body:[ Minidatalog.Atom (allocR, [| v "p"; v "a" |]) ];
  Minidatalog.rule db
    ~head:(vpt, [| v "d"; v "a" |])
    ~body:[ Minidatalog.Atom (copyR, [| v "d"; v "s" |]); Minidatalog.Atom (vpt, [| v "s"; v "a" |]) ];
  Minidatalog.rule db
    ~head:(pts, [| v "a"; v "b" |])
    ~body:
      [
        Minidatalog.Atom (storeR, [| v "p"; v "q" |]);
        Minidatalog.Atom (vpt, [| v "p"; v "a" |]);
        Minidatalog.Atom (vpt, [| v "q"; v "b" |]);
      ];
  Minidatalog.rule db
    ~head:(vpt, [| v "d"; v "b" |])
    ~body:
      [
        Minidatalog.Atom (loadR, [| v "d"; v "p" |]);
        Minidatalog.Atom (vpt, [| v "p"; v "a" |]);
        Minidatalog.Atom (pts, [| v "a"; v "b" |]);
      ];
  Minidatalog.rule db
    ~head:(vpt, [| v "d"; v "fa" |])
    ~body:
      [
        Minidatalog.Atom (fieldR, [| v "d"; v "p"; v "f" |]);
        Minidatalog.Atom (vpt, [| v "p"; v "a" |]);
        Minidatalog.Atom (far, [| v "a"; v "f"; v "fa" |]);
      ];
  let seconds, outcome =
    Egglog.Telemetry.timed_span "pointsto.andersen.run" (fun () ->
        Minidatalog.run db ~timeout_s ())
  in
  let sites = Array.make n_vars [] in
  (match outcome with
   | Minidatalog.Timeout -> ()
   | Minidatalog.Fixpoint _ ->
     Minidatalog.iter db vpt (fun t ->
         if t.(0) < n_vars && t.(1) < n_sites then sites.(t.(0)) <- t.(1) :: sites.(t.(0))));
  (outcome, seconds, Array.map (List.sort_uniq compare) sites)
