(* The Herbie-style improvement loop (§6.2): run equality saturation over
   a benchmark expression, gather candidate programs from the root e-class,
   and keep the most accurate one.

   [Sound] mode runs the guarded ruleset with the interval and not-equals
   analyses; every candidate is genuinely equivalent, so whatever wins is
   kept. [Unsound] mode runs Herbie's unguarded ruleset; saturation may
   derive false equalities, so — like Herbie — every candidate must be
   validated by sampling against the input, and invalid ones discarded
   (wasted search and validation time). *)

type mode = Sound | Unsound

type outcome = {
  bench : Suite.bench;
  mode : mode;
  chosen : Fpexpr.expr;
  bits_before : float;
  bits_after : float;
  seconds : float;
  n_candidates : int;
  n_invalid : int;  (* candidates rejected by validation (unsound mode) *)
}

let iterations = 7
let max_candidates = 40

let c_candidates = Egglog.Telemetry.counter "herbie.candidates"
let c_invalid = Egglog.Telemetry.counter "herbie.candidates_invalid"
let c_retries = Egglog.Telemetry.counter "herbie.unsound_retries"

let train_spec (bench : Suite.bench) = { (Error.default_spec bench.ranges) with seed = 7; n_samples = 64 }
let test_spec (bench : Suite.bench) = { (Error.default_spec bench.ranges) with seed = 99; n_samples = 256 }

(* One equality-saturation run at a given iteration budget, returning the
   candidate programs of the root class. *)
let saturate (mode : mode) (bench : Suite.bench) ~iterations : Fpexpr.expr list =
  Egglog.Telemetry.span "herbie.saturate" @@ fun () ->
  let eng = Egglog.Engine.create ~scheduler:Egglog.Engine.backoff_default () in
  let program =
    match mode with Sound -> Rules.sound_program () | Unsound -> Rules.unsound_program ()
  in
  ignore (Egglog.run_string eng program);
  (match mode with
   | Sound -> ignore (Egglog.run_string eng (Rules.range_facts bench.Suite.ranges))
   | Unsound -> ());
  ignore
    (Egglog.run_string eng
       (Printf.sprintf "(define root %s)" (Rules.expr_to_egglog bench.Suite.expr)));
  (* Herbie bounds EqSat by e-graph size as well as iterations *)
  let node_limit = 30_000 in
  (try
     for _ = 1 to iterations do
       ignore (Egglog.Engine.run_iterations eng 1);
       if Egglog.Engine.total_rows eng > node_limit then raise Exit
     done
   with Exit -> ());
  let root = Egglog.Engine.eval_call eng "root" [] in
  let terms = Egglog.Engine.extract_candidates eng root ~max:max_candidates in
  List.filter_map (fun t -> try Some (Rules.term_to_expr t) with Rules.Bad_term _ -> None) terms

let improve ?(iterations = iterations) (mode : mode) (bench : Suite.bench) : outcome =
  let dt, outcome_no_time = Egglog.Telemetry.timed_span "herbie.improve" @@ fun () ->
  let train = train_spec bench in
  let n_invalid = ref 0 in
  let n_candidates = ref 0 in
  let validated =
    match mode with
    | Sound ->
      let exprs = saturate mode bench ~iterations in
      n_candidates := List.length exprs;
      exprs
    | Unsound ->
      (* Herbie with unsound rules: saturate, validate every candidate by
         sampling; when unsoundness is detected, it cannot keep running
         equality saturation that long — retry with a smaller iteration
         budget (all the previous work is wasted, which is where the
         paper's slowdown comes from). *)
      let rec attempt iters =
        let exprs = saturate mode bench ~iterations:iters in
        n_candidates := List.length exprs;
        let invalid = ref 0 in
        let good =
          List.filter
            (fun e ->
              let ok = Error.equivalent_on train bench.Suite.expr e in
              if not ok then incr invalid;
              ok)
            exprs
        in
        n_invalid := !n_invalid + !invalid;
        if !invalid > 0 && iters > 1 then begin
          Egglog.Telemetry.bump c_retries 1;
          attempt (iters - 1)
        end
        else good
      in
      attempt iterations
  in
  Egglog.Telemetry.bump c_candidates !n_candidates;
  Egglog.Telemetry.bump c_invalid !n_invalid;
  let bits_before = Error.avg_bits (test_spec bench) bench.Suite.expr in
  let scored =
    List.map (fun e -> (Error.avg_bits train e, e)) (bench.Suite.expr :: validated)
  in
  let _, chosen =
    List.fold_left (fun (bb, be) (b, e) -> if b < bb then (b, e) else (bb, be))
      (Float.infinity, bench.Suite.expr)
      scored
  in
  let bits_after = Error.avg_bits (test_spec bench) chosen in
  {
    bench;
    mode;
    chosen;
    bits_before;
    bits_after;
    seconds = 0.0;  (* patched in below, once timed_span hands back [dt] *)
    n_candidates = !n_candidates;
    n_invalid = !n_invalid;
  }
  in
  { outcome_no_time with seconds = dt }
