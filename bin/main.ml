(* The egglog command-line tool: run .egg programs or an interactive REPL
   (the language-based design of §5.2), optionally under a write-ahead
   journal with periodic checkpoints (--journal / --checkpoint-every) and
   crash recovery (--recover). *)

let make_engine ~seminaive ~backoff ~compiled_plans ~node_limit ~time_limit ~memory_limit ~jobs =
  let scheduler = if backoff then Egglog.Engine.backoff_default else Egglog.Engine.Simple in
  Egglog.Engine.create ~seminaive ~scheduler ~compiled_plans ?node_limit ?time_limit
    ?memory_limit ~jobs ()

(* Every mode funnels through one exception ladder so each failure class
   has one message shape and one exit code. A simulated crash (fault
   injection) exits 70 so the recovery harness can tell "crashed as
   scheduled" from both success and real errors. *)
let with_errors ~where f =
  match f () with
  | code -> code
  | exception Egglog.Fault.Crash point ->
    Printf.eprintf "simulated crash at %s\n" point;
    (* leave a post-mortem artifact when the flight recorder saw anything
       (i.e. telemetry was on); the daemon clears the ring after its own
       dump, so this is the batch/REPL fallback, not a duplicate *)
    (let path =
       Printf.sprintf "flightrec-%d.jsonl" (int_of_float (Unix.gettimeofday () *. 1000.))
     in
     match Egglog.Telemetry.flightrec_dump ~path with
     | 0 -> ()
     | n -> Printf.eprintf "flight recorder: %d event(s) dumped to %s\n" n path);
    70
  | exception Egglog.Egglog_error msg ->
    Printf.eprintf "error: %s\n" msg;
    1
  | exception Sexpr.Parse_error { line; col; message } ->
    Printf.eprintf "%s:%d:%d: parse error: %s\n" where line col message;
    1
  | exception Egglog.Frontend.Syntax_error msg ->
    Printf.eprintf "%s: syntax error: %s\n" where msg;
    1
  | exception Egglog.Serialize.Load_error msg ->
    Printf.eprintf "snapshot error: %s\n" msg;
    1
  | exception Egglog.Journal.Journal_error msg ->
    Printf.eprintf "journal error: %s\n" msg;
    1
  | exception Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    1
  (* Catch-all: an internal failure must produce a diagnostic and a clean
     nonzero exit, never an uncaught-exception crash. *)
  | exception e ->
    Printf.eprintf "internal error: %s\n" (Printexc.to_string e);
    1

(* --stats: the engine phase split first — "other" is the iteration time not
   attributed to search/apply/rebuild, so the four lines sum to the total by
   construction — then the generic counter/timing tables. *)
let print_stats () =
  let snap = Egglog.Telemetry.snapshot () in
  let timing name = List.assoc_opt name snap.Egglog.Telemetry.sn_timings in
  (match timing "engine.iteration" with
   | Some it ->
     let phase n =
       match timing n with Some t -> t.Egglog.Telemetry.t_total | None -> 0.0
     in
     let search = phase "engine.search"
     and apply = phase "engine.apply"
     and rebuild = phase "engine.rebuild" in
     let total = it.Egglog.Telemetry.t_total in
     let other = Float.max 0.0 (total -. (search +. apply +. rebuild)) in
     Printf.printf "run phases (%d iteration(s), %.6fs total):\n"
       it.Egglog.Telemetry.t_count total;
     Printf.printf "  search   %9.6fs\n" search;
     Printf.printf "  apply    %9.6fs\n" apply;
     Printf.printf "  rebuild  %9.6fs\n" rebuild;
     Printf.printf "  other    %9.6fs\n" other
   | None -> ());
  Egglog.Telemetry.pp_table Format.std_formatter snap;
  Format.pp_print_flush Format.std_formatter ()

(* Turn telemetry on around the whole program when --trace or --stats asks
   for it, and always flush/close on the way out — including on error paths,
   so a partial trace of a failing run is still on disk to read. *)
let with_telemetry ~trace ~stats f =
  if trace = None && not stats then f ()
  else begin
    let oc = Option.map open_out trace in
    let sink =
      match oc with
      | Some oc -> Some (fun line -> output_string oc line; output_char oc '\n')
      | None -> None
    in
    Egglog.Telemetry.enable ?sink ();
    Fun.protect
      ~finally:(fun () ->
        Egglog.Telemetry.flush_counters ();
        Egglog.Telemetry.disable ();
        Option.iter close_out oc)
      f
  end

let write_dump eng = function
  | Some out_path ->
    Egglog.Serialize.write_snapshot eng out_path;
    Printf.printf "dumped database to %s\n" out_path
  | None -> ()

let print_report (r : Egglog.Durable.recovery_report) =
  List.iter (fun w -> Printf.eprintf "warning: %s\n" w) r.rc_warnings;
  Printf.printf "recovered %d committed command(s): %s, %d replayed from the journal%s\n"
    r.rc_committed
    (match r.rc_checkpoint with
     | Some seq -> Printf.sprintf "checkpoint generation %d" seq
     | None -> "no checkpoint")
    r.rc_replayed
    (if r.rc_torn then "; dropped a torn trailing record" else "")

let run_file ~seminaive ~backoff ~compiled_plans ~node_limit ~time_limit ~memory_limit ~jobs
    ~journal ~checkpoint_every ~load ~dump ~trace ~stats ~explain_plans path =
  with_errors ~where:path (fun () ->
      let eng =
        make_engine ~seminaive ~backoff ~compiled_plans ~node_limit ~time_limit ~memory_limit
          ~jobs
      in
      let src = In_channel.with_open_text path In_channel.input_all in
      let cmds = Egglog.Frontend.parse_program src in
      let outputs =
        with_telemetry ~trace ~stats (fun () ->
            match journal with
            | Some journal_path ->
              let d = Egglog.Durable.attach eng ~journal_path ~checkpoint_every in
              Fun.protect
                ~finally:(fun () -> Egglog.Durable.close d)
                (fun () -> Egglog.Durable.run_program d cmds)
            | None -> Egglog.Engine.run_program eng cmds)
      in
      (* Snapshots carry data, not declarations: FILE must (re)declare the
         schema — and add no data of its own — before the snapshot loads. *)
      (match load with
       | Some snap_path -> Egglog.Serialize.load_snapshot eng snap_path
       | None -> ());
      List.iter print_endline outputs;
      if explain_plans then print_string (Egglog.Engine.explain_plans eng);
      write_dump eng dump;
      if stats then print_stats ();
      0)

let repl ?durable eng =
  Printf.printf "egglog repl — enter commands, ctrl-d to exit\n%!";
  let exec src =
    let cmds = Egglog.Frontend.parse_program src in
    match durable with
    | Some d -> Egglog.Durable.run_program d cmds
    | None -> Egglog.Engine.run_program eng cmds
  in
  let rec loop buffer =
    Printf.printf "%s %!" (if buffer = "" then ">" else "...");
    match In_channel.input_line stdin with
    | None ->
      (match durable with Some d -> Egglog.Durable.close d | None -> ());
      0
    | Some line -> (
      let src = buffer ^ "\n" ^ line in
      (* Parens inside strings and comments do not count; a stray ')'
         resets the buffer with an error instead of evaluating. *)
      match Egglog.Frontend.paren_balance src with
      | Egglog.Frontend.Incomplete -> loop src
      | Egglog.Frontend.Unbalanced ->
        Printf.printf "error: unbalanced ')'\n";
        loop ""
      | Egglog.Frontend.Balanced ->
        (* Commands are transactional, so after any error — including an
           internal one — the engine state is intact and the session can
           continue. A simulated crash is the one exception: it must
           propagate and kill the process, that is its job. *)
        (match exec src with
         | outputs -> List.iter print_endline outputs
         | exception (Egglog.Fault.Crash _ as e) -> raise e
         | exception Egglog.Egglog_error msg -> Printf.printf "error: %s\n" msg
         | exception Sexpr.Parse_error { message; _ } -> Printf.printf "parse error: %s\n" message
         | exception Egglog.Frontend.Syntax_error msg -> Printf.printf "syntax error: %s\n" msg
         | exception Egglog.Journal.Journal_error msg -> Printf.printf "journal error: %s\n" msg
         | exception e -> Printf.printf "internal error: %s\n" (Printexc.to_string e));
        loop "")
  in
  loop ""

let repl_mode ~seminaive ~backoff ~compiled_plans ~node_limit ~time_limit ~memory_limit ~jobs
    ~journal ~checkpoint_every ~recover ~dump ~trace ~stats () =
  with_errors
    ~where:(match journal with Some j -> j | None -> "<repl>")
    (fun () ->
      let eng =
        make_engine ~seminaive ~backoff ~compiled_plans ~node_limit ~time_limit ~memory_limit
          ~jobs
      in
      let session f =
        let code = with_telemetry ~trace ~stats f in
        if stats then print_stats ();
        code
      in
      match journal with
      | None -> session (fun () -> repl eng)
      | Some journal_path when not recover ->
        let d = Egglog.Durable.attach eng ~journal_path ~checkpoint_every in
        session (fun () -> repl ~durable:d eng)
      | Some journal_path ->
        session (fun () ->
            let d, report = Egglog.Durable.recover eng ~journal_path ~checkpoint_every in
            print_report report;
            write_dump eng dump;
            (* Recover-and-exit when scripted (the CI harness dumps and diffs);
               recover-and-continue when a human is attached. *)
            if Unix.isatty Unix.stdin then repl ~durable:d eng
            else begin
              Egglog.Durable.close d;
              0
            end))

(* `egglog serve`: the multi-session daemon. Telemetry is always on (the
   `metrics` op reports it); --trace additionally streams the event log.
   SIGTERM/SIGINT request a graceful drain: the in-flight request finishes
   (or rolls back), queued requests are shed with shutting-down replies,
   durable sessions are checkpointed and closed, the socket file is
   removed, and the process exits 0. A simulated crash (--fault) exits 70
   like every other mode. *)
let serve_daemon ~cfg ~fault ~trace =
  with_errors ~where:"serve" (fun () ->
      (match fault with Some (point, n) -> Egglog.Fault.arm_nth point n | None -> ());
      let oc = Option.map open_out trace in
      let sink =
        Option.map (fun oc line -> output_string oc line; output_char oc '\n') oc
      in
      Egglog.Telemetry.enable ?sink ();
      Fun.protect
        ~finally:(fun () ->
          Egglog.Telemetry.flush_counters ();
          Egglog.Telemetry.disable ();
          Option.iter close_out oc)
        (fun () ->
          let srv = Egglog_server.Serve.create cfg in
          List.iter
            (fun l -> Printf.eprintf "%s\n%!" l)
            (Egglog_server.Serve.recovery_log srv);
          let stop _ = Egglog_server.Serve.request_drain srv in
          ignore (Sys.signal Sys.sigterm (Sys.Signal_handle stop));
          ignore (Sys.signal Sys.sigint (Sys.Signal_handle stop));
          (* a peer that hangs up mid-write must surface as EPIPE, not kill us *)
          ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
          Egglog_server.Serve.run srv;
          0))

let () =
  let open Cmdliner in
  let positive_int ~what =
    let parse s =
      match int_of_string_opt s with
      | Some n when n > 0 -> Ok n
      | Some n -> Error (`Msg (Printf.sprintf "%s must be a positive integer, got %d" what n))
      | None -> Error (`Msg (Printf.sprintf "%s must be a positive integer, got %S" what s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  let positive_float ~what =
    let parse s =
      match float_of_string_opt s with
      | Some x when x > 0.0 -> Ok x
      | Some _ -> Error (`Msg (Printf.sprintf "%s must be a positive number of seconds" what))
      | None -> Error (`Msg (Printf.sprintf "%s must be a number of seconds, got %S" what s))
    in
    Arg.conv (parse, Format.pp_print_float)
  in
  let fault_point =
    let parse s =
      match String.rindex_opt s ':' with
      | Some i when i > 0 -> (
        let point = String.sub s 0 i in
        let n = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt n with
        | Some n when n >= 1 -> Ok (point, n)
        | _ -> Error (`Msg "expected POINT:N with N a positive occurrence index"))
      | _ -> Error (`Msg "expected POINT:N (e.g. journal.append.torn:2)")
    in
    Arg.conv (parse, fun fmt (p, n) -> Format.fprintf fmt "%s:%d" p n)
  in
  let file =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"egglog program to run")
  in
  let no_seminaive =
    Arg.(value & flag & info [ "no-seminaive" ] ~doc:"Disable semi-naïve evaluation (egglogNI)")
  in
  let no_compiled_plans =
    Arg.(value & flag & info [ "no-compiled-plans" ]
           ~doc:"Run joins on the plan interpreter instead of compiling plans to specialized \
                 closures. Escape hatch / ablation baseline: results are byte-identical either \
                 way, only speed changes")
  in
  let backoff =
    Arg.(value & flag & info [ "backoff" ] ~doc:"Use the BackOff rule scheduler (as in egg)")
  in
  let node_limit =
    Arg.(value & opt (some (positive_int ~what:"--node-limit")) None
         & info [ "node-limit" ] ~docv:"N"
             ~doc:"Stop any run once the database exceeds N tuples (per-command :node-limit overrides)")
  in
  let time_limit =
    Arg.(value & opt (some (positive_float ~what:"--time-limit")) None
         & info [ "time-limit" ] ~docv:"SECONDS"
             ~doc:"Stop any run after SECONDS of wall-clock time (per-command :time-limit overrides)")
  in
  let memory_limit =
    Arg.(value & opt (some (positive_int ~what:"--memory-limit")) None
         & info [ "memory-limit" ] ~docv:"BYTES"
             ~doc:"Stop any run once the modeled database footprint exceeds BYTES \
                   (per-command :memory-limit overrides). Deterministic: enforced against \
                   the engine's modeled byte count, not allocator state, so the same \
                   program stops at the same iteration at any --jobs value")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs" ] ~docv:"N"
             ~doc:"Fan the search, apply and rebuild phases of every run across N domains \
                   (0 = one per core; per-command :jobs overrides). Results are \
                   byte-identical to --jobs 1 for any N; only wall-clock time changes")
  in
  let journal =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"JOURNAL"
           ~doc:"Record every committed command to this write-ahead journal (fsync'd per command); recover after a crash with $(b,--recover)")
  in
  let checkpoint_every =
    Arg.(value & opt (some (positive_int ~what:"--checkpoint-every")) None
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"With $(b,--journal): write an atomic checkpoint and truncate the journal after every N committed commands")
  in
  let recover =
    Arg.(value & flag & info [ "recover" ]
           ~doc:"Recover state from $(b,--journal)'s newest checkpoint plus journal replay, report what was restored, then continue (REPL on a terminal, exit otherwise)")
  in
  let fault =
    Arg.(value & opt (some fault_point) None & info [ "fault" ] ~docv:"POINT:N"
           ~doc:"Deterministic fault injection for testing: simulate a crash (exit 70) at the N-th hit of the named injection point, e.g. journal.append.torn:2")
  in
  let load =
    Arg.(value & opt (some string) None & info [ "load" ] ~docv:"SNAPSHOT"
           ~doc:"Load a database snapshot (produced by --dump) after running FILE; FILE must declare the schema and add no data")
  in
  let dump =
    Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"SNAPSHOT"
           ~doc:"Dump the final database to this file (atomic write; versioned, checksummed format)")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE.jsonl"
           ~doc:"Write a structured trace of the run (span begin/end, scheduler decisions, per-iteration and per-rule stats, final counters) to FILE as JSON Lines")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"After the program finishes, print the engine phase split (search/apply/rebuild/other) and all telemetry counters and timings")
  in
  let explain_plans =
    Arg.(value & flag & info [ "explain-plans" ]
           ~doc:"After the program finishes, print each rule's cost-based join plan against the final table statistics: atoms with row counts, the chosen variable order with cost estimates, the primitive schedule, and each semi-naive delta variant's order")
  in
  let main file no_seminaive no_compiled_plans backoff node_limit time_limit memory_limit jobs
      journal checkpoint_every recover fault load dump trace stats explain_plans =
    let seminaive = not no_seminaive in
    let compiled_plans = not no_compiled_plans in
    let usage_error msg =
      Printf.eprintf "egglog: %s\n" msg;
      2
    in
    (match fault with Some (point, n) -> Egglog.Fault.arm_nth point n | None -> ());
    if jobs < 0 then
      usage_error
        (Printf.sprintf "--jobs must be non-negative (0 = one domain per core), got %d" jobs)
    else if journal = None && checkpoint_every <> None then
      usage_error "--checkpoint-every requires --journal"
    else if journal = None && recover then usage_error "--recover requires --journal"
    else if journal <> None && load <> None then
      usage_error "--journal is incompatible with --load (recover the journal instead)"
    else if load <> None && file = None then
      usage_error
        "--load requires FILE: snapshots carry data, not declarations, so FILE must declare \
         the snapshot's schema (and add no data) before the snapshot loads"
    else if recover && file <> None then
      usage_error
        "--recover restores the journaled program's state; it cannot also run FILE (its \
         declarations would clash). Recover on a terminal to continue interactively."
    else
      match file with
      | Some path ->
        run_file ~seminaive ~backoff ~compiled_plans ~node_limit ~time_limit ~memory_limit
          ~jobs ~journal ~checkpoint_every ~load ~dump ~trace ~stats ~explain_plans path
      | None ->
        if explain_plans then usage_error "--explain-plans requires FILE"
        else
          repl_mode ~seminaive ~backoff ~compiled_plans ~node_limit ~time_limit ~memory_limit
            ~jobs ~journal ~checkpoint_every ~recover ~dump ~trace ~stats ()
  in
  let term =
    Term.(
      const main $ file $ no_seminaive $ no_compiled_plans $ backoff $ node_limit
      $ time_limit $ memory_limit $ jobs $ journal $ checkpoint_every $ recover $ fault
      $ load $ dump $ trace $ stats $ explain_plans)
  in
  let serve_cmd =
    let socket =
      Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
             ~doc:"Listen on a Unix-domain socket at PATH (an existing file there is replaced)")
    in
    let stdio =
      Arg.(value & flag & info [ "stdio" ]
             ~doc:"Also serve the protocol on stdin/stdout; with no $(b,--socket), EOF on stdin drains the daemon")
    in
    let data_dir =
      Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"DIR"
             ~doc:"Enable durable sessions: journals live in DIR (created if missing) and are recovered at startup")
    in
    let max_sessions =
      Arg.(value & opt (positive_int ~what:"--max-sessions") 64
           & info [ "max-sessions" ] ~docv:"N" ~doc:"Refuse to open more than N live sessions")
    in
    let queue_limit =
      Arg.(value & opt (positive_int ~what:"--queue-limit") 64
           & info [ "queue-limit" ] ~docv:"N"
               ~doc:"Admission queue bound; requests beyond it are shed with an overload reply")
    in
    let retry_after =
      Arg.(value & opt (positive_int ~what:"--retry-after") 50
           & info [ "retry-after" ] ~docv:"MS" ~doc:"retry_after_ms hint carried by overload sheds")
    in
    let max_input =
      Arg.(value & opt (positive_int ~what:"--max-input-bytes") (4 * 1024 * 1024)
           & info [ "max-input-bytes" ] ~docv:"BYTES"
               ~doc:"Per-frame and per-program size cap; larger input gets a too-large reply")
    in
    let node_cap =
      Arg.(value & opt (positive_int ~what:"--node-limit") 1_000_000
           & info [ "node-limit" ] ~docv:"N"
               ~doc:"Hard per-request tuple budget (and the default); client limits are clamped to it")
    in
    let time_cap =
      Arg.(value & opt (positive_float ~what:"--time-limit") 10.0
           & info [ "time-limit" ] ~docv:"SECONDS"
               ~doc:"Hard per-request wall-clock budget (and the default); client limits are clamped to it")
    in
    let max_jobs =
      Arg.(value & opt (positive_int ~what:"--max-jobs") 4
           & info [ "max-jobs" ] ~docv:"N"
             ~doc:"Cap on per-request parallelism (search, apply and rebuild phases)")
    in
    let session_quota =
      Arg.(value & opt (some (positive_int ~what:"--session-quota")) None
           & info [ "session-quota" ] ~docv:"N"
               ~doc:"Roll back any request that would leave its session holding more than N tuples")
    in
    let session_memory_quota =
      Arg.(value & opt (some (positive_int ~what:"--session-memory-quota")) None
           & info [ "session-memory-quota" ] ~docv:"BYTES"
               ~doc:"Roll back any request that would leave its session holding more than \
                     BYTES modeled bytes; also clamps per-request memory_limit fields")
    in
    let memory_headroom =
      Arg.(value & opt (some (positive_int ~what:"--memory-headroom")) None
           & info [ "memory-headroom" ] ~docv:"BYTES"
               ~doc:"Global cap on the summed modeled bytes of all live sessions: beyond it, \
                     the largest idle sessions are checkpointed and evicted, and requests \
                     that still do not fit are shed with an overload reply")
    in
    let idle_timeout =
      Arg.(value & opt (some (positive_float ~what:"--idle-timeout")) None
           & info [ "idle-timeout" ] ~docv:"SECONDS"
               ~doc:"Evict sessions idle longer than SECONDS (durable sessions are checkpointed and remain recoverable)")
    in
    let serve_checkpoint_every =
      Arg.(value & opt (some (positive_int ~what:"--checkpoint-every")) (Some 64)
           & info [ "checkpoint-every" ] ~docv:"N"
               ~doc:"Checkpoint a durable session's journal after every N committed commands")
    in
    let serve_fault =
      Arg.(value & opt (some fault_point) None & info [ "fault" ] ~docv:"POINT:N"
             ~doc:"Deterministic fault injection: crash (exit 70) at the N-th hit of the named point, e.g. server.request.executed:3")
    in
    let serve_trace =
      Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE.jsonl"
             ~doc:"Stream the server's telemetry event log to FILE as JSON Lines")
    in
    let slow_log =
      Arg.(value & opt (some (positive_int ~what:"--slow-log-ms")) None
           & info [ "slow-log-ms" ] ~docv:"MS"
               ~doc:"Append a JSONL entry (program, budgets, phase breakdown, flight-recorder \
                     tail) for every request taking MS milliseconds or more to \
                     $(i,DIR)/slowlog.jsonl under --data-dir, or stderr without one")
    in
    let serve_main socket stdio data_dir max_sessions queue_limit retry_after max_input
        node_cap time_cap max_jobs session_quota session_memory_quota memory_headroom
        idle_timeout checkpoint_every fault trace slow_log =
      if socket = None && not stdio then begin
        Printf.eprintf "egglog serve: need --socket PATH and/or --stdio\n";
        2
      end
      else
        let cfg =
          {
            Egglog_server.Serve.default_config with
            socket_path = socket;
            use_stdio = stdio;
            data_dir;
            max_sessions;
            queue_limit;
            retry_after_ms = retry_after;
            max_input_bytes = max_input;
            node_limit_cap = node_cap;
            time_limit_cap_ms = int_of_float (time_cap *. 1000.);
            max_jobs;
            session_node_quota = session_quota;
            session_memory_quota;
            memory_headroom;
            idle_timeout_s = idle_timeout;
            checkpoint_every;
            slow_log_ms = slow_log;
          }
        in
        serve_daemon ~cfg ~fault ~trace
    in
    Cmd.v
      (Cmd.info "serve"
         ~doc:"Run the multi-session daemon (JSONL protocol over a Unix socket and/or stdio)")
      Term.(
        const serve_main $ socket $ stdio $ data_dir $ max_sessions $ queue_limit
        $ retry_after $ max_input $ node_cap $ time_cap $ max_jobs $ session_quota
        $ session_memory_quota $ memory_headroom $ idle_timeout $ serve_checkpoint_every
        $ serve_fault $ serve_trace $ slow_log)
  in
  let metrics_cmd =
    let socket =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"SOCKET"
             ~doc:"Unix-domain socket of a running $(b,egglog serve) daemon")
    in
    let format =
      Arg.(value & opt string "prometheus" & info [ "format" ] ~docv:"FORMAT"
             ~doc:"Output format: $(b,prometheus) (text exposition) or $(b,json) (raw metrics reply)")
    in
    let metrics_main socket format =
      if format <> "prometheus" && format <> "json" then begin
        Printf.eprintf "egglog metrics: --format must be prometheus or json\n";
        2
      end
      else
        with_errors ~where:"metrics" @@ fun () ->
        let module J = Egglog.Telemetry.Json in
        let die fmt =
          Format.kasprintf (fun m -> raise (Egglog.Egglog_error m)) fmt
        in
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            (try Unix.connect fd (Unix.ADDR_UNIX socket)
             with Unix.Unix_error (e, _, _) ->
               die "cannot connect to %s: %s" socket (Unix.error_message e));
            let req =
              Printf.sprintf "{\"id\":0,\"op\":\"metrics\",\"format\":%S}\n" format
            in
            let rec write_all off =
              if off < String.length req then
                write_all (off + Unix.write_substring fd req off (String.length req - off))
            in
            write_all 0;
            let buf = Buffer.create 4096 in
            let chunk = Bytes.create 65536 in
            let rec read_reply () =
              if String.contains (Buffer.contents buf) '\n' then ()
              else
                match Unix.read fd chunk 0 (Bytes.length chunk) with
                | 0 -> ()
                | n ->
                  Buffer.add_subbytes buf chunk 0 n;
                  read_reply ()
            in
            read_reply ();
            let line =
              let all = Buffer.contents buf in
              match String.index_opt all '\n' with
              | Some i -> String.sub all 0 i
              | None -> all
            in
            if line = "" then die "empty reply from daemon at %s" socket;
            let reply =
              try J.parse line with J.Parse_error _ -> die "unparseable reply: %s" line
            in
            (match J.member "ok" reply with
             | Some (J.Bool true) -> ()
             | _ -> die "daemon refused the metrics request: %s" line);
            (match format with
             | "prometheus" -> (
               match J.member "prometheus" reply with
               | Some (J.Str text) -> print_string text
               | _ -> die "reply carries no prometheus text: %s" line)
             | _ -> print_endline line);
            0)
    in
    Cmd.v
      (Cmd.info "metrics"
         ~doc:"Scrape a running daemon's metrics over its Unix socket")
      Term.(const metrics_main $ socket $ format)
  in
  let info =
    Cmd.info "egglog" ~doc:"A fixpoint reasoning system unifying Datalog and equality saturation"
  in
  (* Cmd.group would parse any first positional — i.e. the program FILE —
     as a sub-command name, so dispatch on "serve" by hand and keep the
     batch CLI's `egglog FILE.egg` shape intact. *)
  if Array.length Sys.argv > 1 && (Sys.argv.(1) = "serve" || Sys.argv.(1) = "metrics")
  then exit (Cmd.eval' (Cmd.group info [ serve_cmd; metrics_cmd ]))
  else exit (Cmd.eval' (Cmd.v info term))
