(* The egglog command-line tool: run .egg programs or an interactive REPL
   (the language-based design of §5.2). *)

let run_file ~seminaive ~backoff ~node_limit ~time_limit ~load ~dump path =
  let scheduler = if backoff then Egglog.Engine.backoff_default else Egglog.Engine.Simple in
  let eng =
    Egglog.Engine.create ~seminaive ~scheduler ?node_limit ?time_limit ()
  in
  match
    let src = In_channel.with_open_text path In_channel.input_all in
    (* Snapshots carry data, not declarations: FILE must (re)declare the
       schema; the snapshot is loaded after the program runs, ready for
       further sessions. *)
    (match load with
     | Some snap_path ->
       let outputs = Egglog.run_string eng src in
       Egglog.Serialize.load_string eng (In_channel.with_open_text snap_path In_channel.input_all);
       outputs
     | None -> Egglog.run_string eng src)
  with
  | outputs ->
    List.iter print_endline outputs;
    (match dump with
     | Some out_path ->
       Out_channel.with_open_text out_path (fun oc ->
           Out_channel.output_string oc (Egglog.Serialize.dump_string eng));
       Printf.printf "dumped database to %s\n" out_path
     | None -> ());
    0
  | exception Egglog.Egglog_error msg ->
    Printf.eprintf "error: %s\n" msg;
    1
  | exception Sexpr.Parse_error { line; col; message } ->
    Printf.eprintf "%s:%d:%d: parse error: %s\n" path line col message;
    1
  | exception Egglog.Frontend.Syntax_error msg ->
    Printf.eprintf "%s: syntax error: %s\n" path msg;
    1
  | exception Egglog.Serialize.Load_error msg ->
    Printf.eprintf "snapshot error: %s\n" msg;
    1
  | exception Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    1
  (* Catch-all: an internal failure must produce a diagnostic and a clean
     nonzero exit, never an uncaught-exception crash. *)
  | exception e ->
    Printf.eprintf "internal error: %s\n" (Printexc.to_string e);
    1

let repl ~seminaive ~backoff ~node_limit ~time_limit () =
  let scheduler = if backoff then Egglog.Engine.backoff_default else Egglog.Engine.Simple in
  let eng =
    Egglog.Engine.create ~seminaive ~scheduler ?node_limit ?time_limit ()
  in
  Printf.printf "egglog repl — enter commands, ctrl-d to exit\n%!";
  let rec loop buffer =
    Printf.printf "%s %!" (if buffer = "" then ">" else "...");
    match In_channel.input_line stdin with
    | None -> 0
    | Some line -> (
      let src = buffer ^ "\n" ^ line in
      (* Parens inside strings and comments do not count; a stray ')'
         resets the buffer with an error instead of evaluating. *)
      match Egglog.Frontend.paren_balance src with
      | Egglog.Frontend.Incomplete -> loop src
      | Egglog.Frontend.Unbalanced ->
        Printf.printf "error: unbalanced ')'\n";
        loop ""
      | Egglog.Frontend.Balanced ->
        (* Commands are transactional, so after any error — including an
           internal one — the engine state is intact and the session can
           continue. *)
        (match Egglog.run_string eng src with
         | outputs -> List.iter print_endline outputs
         | exception Egglog.Egglog_error msg -> Printf.printf "error: %s\n" msg
         | exception Sexpr.Parse_error { message; _ } -> Printf.printf "parse error: %s\n" message
         | exception Egglog.Frontend.Syntax_error msg -> Printf.printf "syntax error: %s\n" msg
         | exception e -> Printf.printf "internal error: %s\n" (Printexc.to_string e));
        loop "")
  in
  loop ""

let () =
  let open Cmdliner in
  let file =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"egglog program to run")
  in
  let no_seminaive =
    Arg.(value & flag & info [ "no-seminaive" ] ~doc:"Disable semi-naïve evaluation (egglogNI)")
  in
  let backoff =
    Arg.(value & flag & info [ "backoff" ] ~doc:"Use the BackOff rule scheduler (as in egg)")
  in
  let node_limit =
    Arg.(value & opt (some int) None & info [ "node-limit" ] ~docv:"N"
           ~doc:"Stop any run once the database exceeds N tuples (per-command :node-limit overrides)")
  in
  let time_limit =
    Arg.(value & opt (some float) None & info [ "time-limit" ] ~docv:"SECONDS"
           ~doc:"Stop any run after SECONDS of wall-clock time (per-command :time-limit overrides)")
  in
  let load =
    Arg.(value & opt (some string) None & info [ "load" ] ~docv:"SNAPSHOT"
           ~doc:"Load a database snapshot (produced by --dump) after running FILE")
  in
  let dump =
    Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"SNAPSHOT"
           ~doc:"Dump the final database to this file")
  in
  let main file no_seminaive backoff node_limit time_limit load dump =
    let seminaive = not no_seminaive in
    match file with
    | Some path -> run_file ~seminaive ~backoff ~node_limit ~time_limit ~load ~dump path
    | None -> repl ~seminaive ~backoff ~node_limit ~time_limit ()
  in
  let term =
    Term.(const main $ file $ no_seminaive $ backoff $ node_limit $ time_limit $ load $ dump)
  in
  let info =
    Cmd.info "egglog" ~doc:"A fixpoint reasoning system unifying Datalog and equality saturation"
  in
  exit (Cmd.eval' (Cmd.v info term))
