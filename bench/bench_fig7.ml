(* Fig. 7: performance of egglog vs egglogNI vs egg on the math workload.
   All three systems are seeded with egg's math test-suite terms and run
   under the BackOff scheduler on the analysis-free ruleset (§5.3).

   We report, per iteration, the e-graph size (e-nodes / math tuples) and
   cumulative wall-clock time, then the paper's two headline numbers:
   the speedup of egglogNI and egglog over egg at comparable e-graph
   sizes. Each system is run [reps] times; per-iteration times are
   medians. *)

type series = { label : string; sizes : int array; cum_seconds : float array }

let median xs =
  let sorted = List.sort compare xs in
  List.nth sorted (List.length sorted / 2)

let run_egg ~iters () =
  let eg = Egraph.create () in
  List.iter (fun term -> ignore (Egraph.add_term eg term)) (Math_suite.egg_seed_terms ());
  let stats = Egraph.run eg ~scheduler:Egraph.backoff_default (Math_suite.egg_rewrites ()) iters in
  List.map (fun (s : Egraph.iter_stat) -> (s.is_nodes, s.is_seconds)) stats.Egraph.iters

let math_tables =
  [ "Num"; "Var"; "Add"; "Sub"; "Mul"; "Div"; "Pow"; "Ln"; "Sqrt"; "Diff"; "Integral" ]

let run_egglog ?(compiled_plans = true) ~seminaive ~jobs ~iters () =
  let eng =
    Egglog.Engine.create ~seminaive ~scheduler:Egglog.Engine.backoff_default ~compiled_plans ~jobs
      ()
  in
  ignore (Egglog.run_string eng (Math_suite.egglog_program ()));
  let report = Egglog.Engine.run_iterations eng iters in
  (* report sizes as math tuples so they are comparable with egg e-nodes *)
  let cum = ref 0 in
  ignore cum;
  List.map
    (fun (s : Egglog.Engine.iteration_stat) -> (s.it_rows, s.it_seconds))
    report.Egglog.Engine.iterations
  |> fun stats ->
  (* it_rows counts all tuples incl. defines; subtract the seed aliases *)
  let alias_rows = List.length Math_suite.seeds in
  List.map (fun (rows, dt) -> (rows - alias_rows, dt)) stats

let collect label ~reps runner ~iters =
  let runs = List.init reps (fun _ -> runner ~iters ()) in
  let len = List.fold_left (fun acc r -> min acc (List.length r)) max_int runs in
  let sizes = Array.make len 0 and cum_seconds = Array.make len 0.0 in
  let cum = ref 0.0 in
  for i = 0 to len - 1 do
    let at_i = List.map (fun r -> List.nth r i) runs in
    sizes.(i) <- fst (List.hd at_i);
    cum := !cum +. median (List.map snd at_i);
    cum_seconds.(i) <- !cum
  done;
  { label; sizes; cum_seconds }

(* Per-phase profile: the seminaive workload run in its own telemetry
   region, reporting wall seconds spent in each engine phase. Emitted for
   jobs 1 and a parallel jobs value side by side so the envelope carries
   the serial-vs-parallel split (and CI can gate on the parallel apply +
   rebuild tail without rerunning anything). *)
let phase_names = [ "engine.search"; "engine.apply"; "engine.rebuild" ]

let phase_profile ?compiled_plans ~jobs ~iters () =
  Egglog.Telemetry.reset ();
  Egglog.Telemetry.enable ();
  ignore (run_egglog ?compiled_plans ~seminaive:true ~jobs ~iters ());
  Egglog.Telemetry.disable ();
  let snap = Egglog.Telemetry.snapshot () in
  List.map
    (fun name ->
      ( name,
        match List.assoc_opt name snap.Egglog.Telemetry.sn_timings with
        | Some t -> t.Egglog.Telemetry.t_total
        | None -> 0.0 ))
    phase_names

let phases_json phases =
  Egglog.Telemetry.Json.Obj
    (List.map (fun (name, s) -> (name, Egglog.Telemetry.Json.Float s)) phases)

let print_phase_split ~parallel_jobs serial parallel =
  Printf.printf "\nper-phase seconds, serial vs jobs=%d:\n" parallel_jobs;
  List.iter2
    (fun (name, s) (_, p) ->
      Printf.printf "  %-16s %8.4fs -> %8.4fs (%.2fx)\n" name s p
        (if p > 0.0 then s /. p else nan))
    serial parallel

(* Time a system needs to first reach [size], linearly interpolated. *)
let time_to_size (s : series) size =
  let n = Array.length s.sizes in
  let rec go i =
    if i >= n then None
    else if s.sizes.(i) >= size then
      if i = 0 then Some s.cum_seconds.(0)
      else begin
        let s0 = float_of_int s.sizes.(i - 1) and s1 = float_of_int s.sizes.(i) in
        let t0 = s.cum_seconds.(i - 1) and t1 = s.cum_seconds.(i) in
        let frac = (float_of_int size -. s0) /. (s1 -. s0) in
        Some (t0 +. (frac *. (t1 -. t0)))
      end
    else go (i + 1)
  in
  go 0

let run ?(iters = 40) ?(reps = 3) ?(jobs = 1) ?(compiled_plans = true) () =
  Printf.printf "=== Fig. 7: egglog vs egglogNI vs egg (math suite, BackOff) ===\n";
  Printf.printf
    "iterations=%d repetitions=%d jobs=%d compiled-plans=%b (median per-iteration times)\n%!"
    iters reps jobs compiled_plans;
  (* Collect engine counters over the whole measured region; the snapshot
     lands in BENCH_fig7.json so a regression in e.g. tuples scanned is
     visible without rerunning under --trace. *)
  Egglog.Telemetry.reset ();
  Egglog.Telemetry.enable ();
  let egg = collect "egg" ~reps (fun ~iters () -> run_egg ~iters ()) ~iters in
  let ni =
    collect "egglogNI" ~reps
      (fun ~iters () -> run_egglog ~compiled_plans ~seminaive:false ~jobs ~iters ())
      ~iters
  in
  let sn =
    collect "egglog" ~reps
      (fun ~iters () -> run_egglog ~compiled_plans ~seminaive:true ~jobs ~iters ())
      ~iters
  in
  Egglog.Telemetry.disable ();
  let telemetry = Egglog.Telemetry.snapshot_to_json (Egglog.Telemetry.snapshot ()) in
  (* Serial-vs-parallel phase split, in its own telemetry regions (the main
     snapshot above is already taken). *)
  let parallel_jobs = if jobs > 1 then jobs else 4 in
  let serial_phases = phase_profile ~compiled_plans ~jobs:1 ~iters () in
  let parallel_phases = phase_profile ~compiled_plans ~jobs:parallel_jobs ~iters () in
  Egglog.Telemetry.reset ();
  Printf.printf "%6s  %22s  %22s  %22s\n" "iter" "egg (nodes, cum s)" "egglogNI (tuples, s)"
    "egglog (tuples, s)";
  let len = min (Array.length egg.sizes) (min (Array.length ni.sizes) (Array.length sn.sizes)) in
  for i = 0 to len - 1 do
    if i < 5 || (i + 1) mod 5 = 0 then
      Printf.printf "%6d  %12d %9.3f  %12d %9.3f  %12d %9.3f\n" (i + 1) egg.sizes.(i)
        egg.cum_seconds.(i) ni.sizes.(i) ni.cum_seconds.(i) sn.sizes.(i) sn.cum_seconds.(i)
  done;
  (* Speedups at the largest e-graph size all three systems reached
     (BackOff ban timing makes the final sizes drift apart slightly). *)
  let final s = s.sizes.(Array.length s.sizes - 1) in
  let target = min (final egg) (min (final ni) (final sn)) in
  let egg_time = Option.get (time_to_size egg target) in
  Printf.printf "\ncommon target size: %d e-nodes; egg needs %.3fs\n" target egg_time;
  let ni_time = time_to_size ni target and sn_time = time_to_size sn target in
  (match ni_time with
   | Some t ->
     Printf.printf "egglogNI reaches %d tuples in %.3fs -> %.2fx speedup over egg (paper: 3.34x)\n"
       target t (egg_time /. t)
   | None -> Printf.printf "egglogNI never reached %d tuples in %d iterations\n" target iters);
  (match sn_time with
   | Some t ->
     Printf.printf "egglog   reaches %d tuples in %.3fs -> %.2fx speedup over egg (paper: 9.27x)\n"
       target t (egg_time /. t)
   | None -> Printf.printf "egglog never reached %d tuples in %d iterations\n" target iters);
  let egg_final_size = final egg in
  let sn_final = sn.sizes.(Array.length sn.sizes - 1) in
  Printf.printf
    "egglog final e-graph: %d tuples (vs egg %d): larger space explored, as in the paper\n%!"
    sn_final egg_final_size;
  print_phase_split ~parallel_jobs serial_phases parallel_phases;
  let module J = Egglog.Telemetry.Json in
  let series_json s =
    J.Obj
      [
        ("label", J.Str s.label);
        ("sizes", Bench_report.int_array s.sizes);
        ("cum_seconds", Bench_report.float_array s.cum_seconds);
      ]
  in
  let speedup = function
    | Some t when t > 0.0 -> J.Float (egg_time /. t)
    | Some _ | None -> J.Null
  in
  Bench_report.write ~telemetry ~bench:"fig7"
    ~params:
      (J.Obj
         [
           ("iters", J.Int iters);
           ("reps", J.Int reps);
           ("jobs", J.Int jobs);
           ("compiled_plans", J.Bool compiled_plans);
         ])
    ~data:
      (J.Obj
         [
           ("series", J.List (List.map series_json [ egg; ni; sn ]));
           ("target_size", J.Int target);
           ("egg_seconds_to_target", J.Float egg_time);
           ("speedup_egglogNI_over_egg", speedup ni_time);
           ("speedup_egglog_over_egg", speedup sn_time);
           ( "phase_profile",
             J.Obj
               [
                 ("parallel_jobs", J.Int parallel_jobs);
                 ("serial", phases_json serial_phases);
                 ("parallel", phases_json parallel_phases);
               ] );
         ])
    ()
