(* Fig. 8: Steensgaard points-to — egglog vs egglogNI vs three Soufflé-style
   encodings (eqrel / cclyzer++ / patched), on growing synthetic programs
   standing in for the postgresql-9.5.2 modules, with the paper's 20 s
   timeout.

   Expected shape (paper): eqrel times out on all but the smallest inputs;
   patched is sound but slow (egglog ~4.96x faster); cclyzer++ is faster
   but unsound (reports different results) and still times out on the
   largest inputs; egglog beats egglogNI (~1.59x). *)

module P = Pointsto

let timeout_s = 20.0

type cell = Time of float | Timeout_cell

let pp_cell = function
  | Time t -> Printf.sprintf "%8.3fs" t
  | Timeout_cell -> "       T/O"

let checksum sites =
  Array.fold_left
    (fun acc l -> List.fold_left (fun acc s -> (acc * 31) lxor (s + 1) land 0xFFFFFF) (acc * 7) l)
    17 sites

let run_egglog ?compiled_plans ~seminaive ~jobs p =
  let t0 = Egglog.Telemetry.now () in
  let eng, _report = P.Egglog_enc.analyze ?compiled_plans ~seminaive ~jobs p in
  let dt = Egglog.Telemetry.now () -. t0 in
  if dt > timeout_s then (Timeout_cell, None)
  else (Time dt, Some (checksum (P.Egglog_enc.var_sites p eng)))

let run_datalog flavor p =
  let r = P.Datalog_enc.analyze flavor ~timeout_s p in
  match r.P.Datalog_enc.outcome with
  | Minidatalog.Timeout -> (Timeout_cell, None)
  | Minidatalog.Fixpoint _ -> (Time r.P.Datalog_enc.seconds, Some (checksum (P.Datalog_enc.var_sites r)))

let geo_mean = function
  | [] -> nan
  | ratios ->
    exp (List.fold_left (fun acc r -> acc +. log r) 0.0 ratios /. float_of_int (List.length ratios))

module J = Egglog.Telemetry.Json

let cell_json (c, sum) =
  J.Obj
    [
      ("seconds", match c with Time t -> J.Float t | Timeout_cell -> J.Null);
      ("timeout", J.Bool (c = Timeout_cell));
      ("checksum", match sum with Some s -> J.Int s | None -> J.Null);
    ]

let run ?sizes ?ni_sizes ?(jobs = 1) ?(compiled_plans = true) ~full () =
  Printf.printf
    "\n=== Fig. 8: Steensgaard points-to (timeout %.0fs, jobs %d, compiled-plans %b) ===\n%!"
    timeout_s jobs compiled_plans;
  let sizes =
    match sizes with
    | Some s -> s
    | None -> if full then [ 4; 8; 16; 32; 64; 128; 256; 512; 1024 ] else [ 4; 8; 16; 32; 64; 128 ]
  in
  Printf.printf "%6s %7s  %10s %10s %10s %10s %10s  %s\n" "size" "insts" "egglog" "egglogNI"
    "eqrel" "cclyzer++" "patched" "result";
  Egglog.Telemetry.reset ();
  Egglog.Telemetry.enable ();
  let speedups_patched = ref [] and speedups_cc = ref [] and speedups_ni = ref [] in
  let rows =
    List.map
      (fun size ->
        let p = P.Progen.generate ~size ~seed:1 () in
        let ref_sum = checksum (P.Reference.var_sites p (P.Reference.analyze p)) in
        let sn = run_egglog ~compiled_plans ~seminaive:true ~jobs p in
        let ni = run_egglog ~compiled_plans ~seminaive:false ~jobs p in
        let eq = run_datalog P.Datalog_enc.Eqrel p in
        let cc = run_datalog P.Datalog_enc.Cclyzer p in
        let pa = run_datalog P.Datalog_enc.Patched p in
        let verdict (label, (_, sum)) =
          match sum with
          | None -> ""
          | Some s -> if s = ref_sum then "" else Printf.sprintf "%s:UNSOUND " label
        in
        let systems =
          [ ("egglog", sn); ("NI", ni); ("eqrel", eq); ("cclyzer", cc); ("patched", pa) ]
        in
        let result = String.concat "" (List.map verdict systems) in
        let result = if result = "" then "all-finishers-sound-except-noted" else result in
        Printf.printf "%6d %7d  %s %s %s %s %s  %s\n%!" size
          (Array.length p.P.Ir.insts)
          (pp_cell (fst sn)) (pp_cell (fst ni)) (pp_cell (fst eq)) (pp_cell (fst cc))
          (pp_cell (fst pa)) result;
        (match (fst sn, fst pa) with
         | Time a, Time b when a > 0.0005 -> speedups_patched := (b /. a) :: !speedups_patched
         | _ -> ());
        (match (fst sn, fst cc) with
         | Time a, Time b when a > 0.0005 -> speedups_cc := (b /. a) :: !speedups_cc
         | _ -> ());
        (match (fst sn, fst ni) with
         | Time a, Time b when a > 0.0005 -> speedups_ni := (b /. a) :: !speedups_ni
         | _ -> ());
        let sound (_, sum) =
          match sum with Some s -> J.Bool (s = ref_sum) | None -> J.Null
        in
        J.Obj
          [
            ("size", J.Int size);
            ("insts", J.Int (Array.length p.P.Ir.insts));
            ("reference_checksum", J.Int ref_sum);
            ( "systems",
              J.Obj
                (List.map
                   (fun (label, r) ->
                     ( label,
                       match cell_json r with
                       | J.Obj fields -> J.Obj (fields @ [ ("sound", sound r) ])
                       | j -> j ))
                   systems) );
          ])
      sizes
  in
  Printf.printf "\ngeomean speedup of egglog over patched : %6.2fx (paper: 4.96x, not counting timeouts)\n"
    (geo_mean !speedups_patched);
  Printf.printf "geomean speedup of egglog over cclyzer++: %6.2fx (paper: 1.94x)\n"
    (geo_mean !speedups_cc);
  ignore !speedups_ni;
  (* The egglog-vs-egglogNI comparison needs sizes where the engines do
     real work; the Souffle baselines cannot reach them, so run the two
     egglog variants alone at larger scale. *)
  let ni_sizes =
    match ni_sizes with
    | Some s -> s
    | None -> if full then [ 1000; 3000; 10000 ] else [ 1000; 3000 ]
  in
  let ni_rows = ref [] in
  let ni_speedups =
    List.filter_map
      (fun size ->
        let p = P.Progen.generate ~size ~seed:1 () in
        match
          ( run_egglog ~compiled_plans ~seminaive:true ~jobs p,
            run_egglog ~compiled_plans ~seminaive:false ~jobs p )
        with
        | (Time a, _), (Time b, _) ->
          Printf.printf "%6d %7d  egglog %.3fs vs egglogNI %.3fs\n" size
            (Array.length p.P.Ir.insts) a b;
          ni_rows :=
            J.Obj
              [
                ("size", J.Int size);
                ("insts", J.Int (Array.length p.P.Ir.insts));
                ("egglog_seconds", J.Float a);
                ("egglogNI_seconds", J.Float b);
              ]
            :: !ni_rows;
          Some (b /. a)
        | _ -> None)
      ni_sizes
  in
  Printf.printf "geomean speedup of egglog over egglogNI : %6.2fx (paper: 1.59x)\n%!"
    (geo_mean ni_speedups);
  Egglog.Telemetry.disable ();
  let telemetry = Egglog.Telemetry.snapshot_to_json (Egglog.Telemetry.snapshot ()) in
  (* Serial-vs-parallel phase split on the largest egglog-only input, each
     run in its own telemetry region (the main snapshot is already taken). *)
  let parallel_jobs = if jobs > 1 then jobs else 4 in
  let profile_size = List.fold_left max 0 ni_sizes in
  let profile_prog = P.Progen.generate ~size:profile_size ~seed:1 () in
  let phase_profile ~jobs =
    Egglog.Telemetry.reset ();
    Egglog.Telemetry.enable ();
    ignore (P.Egglog_enc.analyze ~compiled_plans ~seminaive:true ~jobs profile_prog);
    Egglog.Telemetry.disable ();
    let snap = Egglog.Telemetry.snapshot () in
    List.map
      (fun name ->
        ( name,
          match List.assoc_opt name snap.Egglog.Telemetry.sn_timings with
          | Some t -> t.Egglog.Telemetry.t_total
          | None -> 0.0 ))
      [ "engine.search"; "engine.apply"; "engine.rebuild" ]
  in
  let serial_phases = phase_profile ~jobs:1 in
  let parallel_phases = phase_profile ~jobs:parallel_jobs in
  Egglog.Telemetry.reset ();
  Printf.printf "per-phase seconds at size %d, serial vs jobs=%d:\n" profile_size parallel_jobs;
  List.iter2
    (fun (name, s) (_, p) ->
      Printf.printf "  %-16s %8.4fs -> %8.4fs (%.2fx)\n" name s p
        (if p > 0.0 then s /. p else nan))
    serial_phases parallel_phases;
  let phases_json phases = J.Obj (List.map (fun (name, s) -> (name, J.Float s)) phases) in
  let geo label = function
    | [] -> (label, J.Null)
    | rs -> (label, J.Float (geo_mean rs))
  in
  Bench_report.write ~telemetry ~bench:"fig8"
    ~params:
      (J.Obj
         [
           ("timeout_seconds", J.Float timeout_s);
           ("full", J.Bool full);
           ("jobs", J.Int jobs);
           ("compiled_plans", J.Bool compiled_plans);
           ("sizes", J.List (List.map (fun s -> J.Int s) sizes));
         ])
    ~data:
      (J.Obj
         [
           ("rows", J.List rows);
           ("ni_rows", J.List (List.rev !ni_rows));
           ( "geomean_speedups",
             J.Obj
               [
                 geo "egglog_over_patched" !speedups_patched;
                 geo "egglog_over_cclyzer" !speedups_cc;
                 geo "egglog_over_egglogNI" ni_speedups;
               ] );
           ( "phase_profile",
             J.Obj
               [
                 ("size", J.Int profile_size);
                 ("parallel_jobs", J.Int parallel_jobs);
                 ("serial", phases_json serial_phases);
                 ("parallel", phases_json parallel_phases);
               ] );
         ])
    ()

(* CI smoke: two tiny sizes plus one NI comparison point; exercises every
   reporting path (table, soundness verdicts, JSON) in well under a second. *)
let run_smoke ?jobs ?compiled_plans () =
  run ~sizes:[ 4; 8 ] ~ni_sizes:[ 200 ] ?jobs ?compiled_plans ~full:false ()
