(* Bechamel micro-benchmarks for the engine's hot paths: union-find,
   congruence rebuilding, relational e-matching vs backtracking e-matching
   (the §5.1 query-engine claim), and the bignum substrate. *)

open Bechamel
open Toolkit

let uf_bench () =
  let n = 4096 in
  Staged.stage (fun () ->
      let uf = Union_find.create () in
      let ids = Array.init n (fun _ -> Union_find.make_set uf) in
      for i = 0 to n - 2 do
        ignore (Union_find.union uf ids.(i) ids.(i + 1))
      done;
      for i = 0 to n - 1 do
        ignore (Union_find.find uf ids.(i))
      done)

(* Congruence closure via rebuild: chain of f-applications, then union the
   two ends and canonicalize. *)
let rebuild_bench () =
  Staged.stage (fun () ->
      let eng = Egglog.Engine.create () in
      ignore
        (Egglog.run_string eng
           {| (sort V) (function f (V) V) (function x () V) (function y () V) |});
      let fx = ref (Egglog.Engine.eval_call eng "x" []) in
      let fy = ref (Egglog.Engine.eval_call eng "y" []) in
      for _ = 1 to 64 do
        fx := Egglog.Engine.eval_call eng "f" [ !fx ];
        fy := Egglog.Engine.eval_call eng "f" [ !fy ]
      done;
      ignore
        (Egglog.Engine.union_values eng
           (Egglog.Engine.eval_call eng "x" [])
           (Egglog.Engine.eval_call eng "y" []));
      Egglog.Engine.rebuild eng)

(* Prepared e-graphs for the matching comparison. *)
let prepared_egglog () =
  let eng = Egglog.Engine.create ~scheduler:Egglog.Engine.backoff_default () in
  ignore (Egglog.run_string eng (Math_suite.egglog_program ()));
  ignore (Egglog.Engine.run_iterations eng 8);
  eng

let prepared_egg () =
  let eg = Egraph.create () in
  List.iter (fun term -> ignore (Egraph.add_term eg term)) (Math_suite.egg_seed_terms ());
  ignore (Egraph.run eg ~scheduler:Egraph.backoff_default (Math_suite.egg_rewrites ()) 8);
  eg

let relational_ematch_bench () =
  let eng = prepared_egglog () in
  let facts =
    [ Egglog.Ast.Eq
        ( Egglog.Ast.Var "root",
          Egglog.Ast.Call ("Mul", [ Egglog.Ast.Var "a"; Egglog.Ast.Call ("Add", [ Egglog.Ast.Var "b"; Egglog.Ast.Var "c" ]) ]) ) ]
  in
  Staged.stage (fun () -> ignore (Egglog.Engine.check_facts eng facts))

let backtracking_ematch_bench () =
  let eg = prepared_egg () in
  let pat = Egraph.pattern_of_string "(* ?a (+ ?b ?c))" in
  Staged.stage (fun () -> ignore (Egraph.ematch eg pat))

(* The join kernel in isolation: one 3-atom triangle join over a fixed
   edge relation, run through the compiled closures and through the plan
   interpreter on a warm structure cache — so the pair measures the
   per-tuple binding loop, not trie construction. *)
let triangle_query () =
  let eng = Egglog.Engine.create () in
  ignore (Egglog.run_string eng "(relation e (i64 i64))");
  let n = 150 in
  for i = 0 to n - 1 do
    Egglog.Engine.set_fact eng "e"
      [ Egglog.Value.VInt i; Egglog.Value.VInt ((i + 1) mod n) ]
      Egglog.Value.VUnit;
    Egglog.Engine.set_fact eng "e"
      [ Egglog.Value.VInt i; Egglog.Value.VInt (i * 7 mod n) ]
      Egglog.Value.VUnit
  done;
  let db = Egglog.Engine.database eng in
  let env =
    {
      Egglog.Compile.find_func =
        (fun name ->
          Option.map Egglog.Table.func (Egglog.Database.find_func db (Egglog.Symbol.intern name)));
    }
  in
  let v s = Egglog.Ast.Var s in
  let atom a b = Egglog.Ast.Holds (Egglog.Ast.Call ("e", [ v a; v b ])) in
  let q = Egglog.Compile.compile_query env [ atom "x" "y"; atom "y" "z"; atom "z" "x" ] in
  (db, q)

let join_triangle_bench ~compiled () =
  let db, q = triangle_query () in
  let ranges = Array.make 3 Egglog.Join.all_rows in
  let cache = Egglog.Join.new_cache () in
  if compiled then begin
    let cp = Egglog.Join.compile_plan q in
    Egglog.Join.search_compiled db ~cache cp ~ranges (fun _ -> ());
    Staged.stage (fun () -> Egglog.Join.search_compiled db ~cache cp ~ranges (fun _ -> ()))
  end
  else begin
    Egglog.Join.search db ~cache q ~ranges (fun _ -> ());
    Staged.stage (fun () -> Egglog.Join.search db ~cache q ~ranges (fun _ -> ()))
  end

let bigint_bench () =
  let a = Bigint.of_string "123456789123456789123456789123456789" in
  let b = Bigint.of_string "987654321987654321987654321" in
  Staged.stage (fun () ->
      let p = Bigint.mul a b in
      ignore (Bigint.divmod p b))

let rat_bench () =
  let a = Rat.of_ints 355 113 and b = Rat.of_ints 22 7 in
  Staged.stage (fun () -> ignore (Rat.add (Rat.mul a b) (Rat.div a b)))

let tests () =
  Test.make_grouped ~name:"micro" ~fmt:"%s/%s"
    [
      Test.make ~name:"union-find-4k" (uf_bench ());
      Test.make ~name:"congruence-rebuild-128" (rebuild_bench ());
      Test.make ~name:"ematch-relational" (relational_ematch_bench ());
      Test.make ~name:"ematch-backtracking" (backtracking_ematch_bench ());
      Test.make ~name:"join-triangle-compiled" (join_triangle_bench ~compiled:true ());
      Test.make ~name:"join-triangle-interpreted" (join_triangle_bench ~compiled:false ());
      Test.make ~name:"bigint-mul-divmod" (bigint_bench ());
      Test.make ~name:"rat-arith" (rat_bench ());
    ]

let run ?(quota = 0.5) () =
  Printf.printf "=== Micro-benchmarks (bechamel, ns/run) ===\n%!";
  (* Telemetry stays OFF here on purpose: these numbers are the baseline for
     the "disabled telemetry costs nothing" claim, so the measured region
     must exercise the disabled path. *)
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results [] in
  let rows = List.sort compare rows in
  let module J = Egglog.Telemetry.Json in
  let data_rows =
    List.map
      (fun (name, ols_result) ->
        let est =
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            Printf.printf "  %-34s %12.1f ns/run\n" name est;
            J.Float est
          | _ ->
            Printf.printf "  %-34s (no estimate)\n" name;
            J.Null
        in
        J.Obj [ ("name", J.Str name); ("ns_per_run", est) ])
      rows
  in
  print_newline ();
  Bench_report.write ~bench:"micro"
    ~params:(J.Obj [ ("quota_seconds", J.Float quota) ])
    ~data:(J.List data_rows) ()
