(* Machine-readable benchmark reports. Every bench entry point writes a
   BENCH_<name>.json next to the printed table so CI (and plotting scripts)
   never scrape stdout. The envelope is schema-stable:

   {v
   { "schema": "egglog-bench", "version": 2,
     "bench": "<name>", "params": {...}, "data": ...,
     "telemetry": { "counters": {...}, "timings": {...}, "hists": {...} } }
   v}

   [data]'s shape is per-bench, but the envelope keys, their types and the
   telemetry snapshot layout are a contract: bump [schema_version] when any
   of them change. v2 added the "hists" key (log-bucketed histograms with
   bucket-derived p50/p90/p99) to the telemetry snapshot; v1 consumers
   keying on {"counters","timings"} must allow it. *)

module J = Egglog.Telemetry.Json

let schema_version = 2

let envelope ~bench ~params ~data ~telemetry =
  J.Obj
    [
      ("schema", J.Str "egglog-bench");
      ("version", J.Int schema_version);
      ("bench", J.Str bench);
      ("params", params);
      ("data", data);
      ("telemetry", telemetry);
    ]

(* Write BENCH_<bench>.json in the current directory. [telemetry] defaults
   to whatever the global collector has accumulated — benches that want a
   meaningful snapshot enable + reset around their measured region;
   bench_micro deliberately keeps telemetry off (it measures the disabled
   path) and embeds an empty snapshot. *)
let write ?telemetry ~bench ~params ~data () =
  let telemetry =
    match telemetry with
    | Some t -> t
    | None -> Egglog.Telemetry.snapshot_to_json (Egglog.Telemetry.snapshot ())
  in
  let path = Printf.sprintf "BENCH_%s.json" bench in
  J.write_file path (envelope ~bench ~params ~data ~telemetry);
  Printf.printf "wrote %s\n%!" path

let float_array xs = J.List (Array.to_list (Array.map (fun x -> J.Float x) xs))
let int_array xs = J.List (Array.to_list (Array.map (fun x -> J.Int x) xs))
