(* Benchmark harness: one entry per figure in the paper's evaluation, plus
   bechamel micro-benchmarks for the engine's hot paths (§5.3). Each figure
   bench also writes a machine-readable BENCH_<name>.json (see
   {!Bench_report}) so CI validates results without scraping stdout.

     dune exec bench/main.exe            -- run everything (reduced sizes)
     dune exec bench/main.exe -- fig7    -- just one figure
     dune exec bench/main.exe -- smoke   -- tiny parameters for CI
     dune exec bench/main.exe -- full    -- paper-scale parameters (slow)
*)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let smoke = List.mem "smoke" args in
  let full = List.mem "full" args in
  if smoke then begin
    (* CI gate: exercise every reporting path in seconds, not minutes. *)
    Bench_micro.run ~quota:0.05 ();
    Bench_fig7.run ~iters:5 ~reps:1 ();
    Bench_fig8.run_smoke ()
  end
  else begin
    let want name = args = [] || List.mem name args || full in
    if want "micro" then Bench_micro.run ();
    if want "fig7" then
      if full then Bench_fig7.run ~iters:60 ~reps:5 () else Bench_fig7.run ~iters:35 ~reps:3 ();
    if want "fig8" then Bench_fig8.run ~full ();
    if want "fig11" || want "fig12" then Bench_herbie.run ~full ();
    if want "ablation" then Bench_ablation.run ~full ()
  end;
  print_endline "\nAll requested benchmarks finished."
