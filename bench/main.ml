(* Benchmark harness: one entry per figure in the paper's evaluation, plus
   bechamel micro-benchmarks for the engine's hot paths (§5.3). Each figure
   bench also writes a machine-readable BENCH_<name>.json (see
   {!Bench_report}) so CI validates results without scraping stdout.

     dune exec bench/main.exe            -- run everything (reduced sizes)
     dune exec bench/main.exe -- fig7    -- just one figure
     dune exec bench/main.exe -- smoke   -- tiny parameters for CI
     dune exec bench/main.exe -- full    -- paper-scale parameters (slow)

   [--jobs N] (or --jobs=N) fans the engine benches' search phases across
   N domains (0 = one per core); results are bit-identical to --jobs 1, so
   the jobs-matrix CI job compares envelopes across values.

   [--no-compiled-plans] runs the engine benches on the plan interpreter
   instead of the compiled closures (same flag as the CLI); results are
   byte-identical, so CI benches both modes and compares envelopes. *)

let usage_error msg =
  Printf.eprintf "bench: %s\n" msg;
  exit 2

(* Strip --jobs from the argument list so figure selection ([want] below)
   still sees only figure names. *)
let rec split_jobs acc = function
  | [] -> (List.rev acc, 1)
  | "--jobs" :: v :: rest ->
    (match int_of_string_opt v with
     | Some j when j >= 0 -> (List.rev_append acc rest, j)
     | _ -> usage_error (Printf.sprintf "--jobs wants a non-negative integer, got %S" v))
  | [ "--jobs" ] -> usage_error "--jobs wants a value (0 = one domain per core)"
  | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
    let v = String.sub a 7 (String.length a - 7) in
    (match int_of_string_opt v with
     | Some j when j >= 0 -> (List.rev_append acc rest, j)
     | _ -> usage_error (Printf.sprintf "--jobs wants a non-negative integer, got %S" v))
  | a :: rest -> split_jobs (a :: acc) rest

let () =
  let args, jobs = split_jobs [] (Array.to_list Sys.argv |> List.tl) in
  let compiled_plans = not (List.mem "--no-compiled-plans" args) in
  let args = List.filter (fun a -> a <> "--no-compiled-plans") args in
  let smoke = List.mem "smoke" args in
  let full = List.mem "full" args in
  if smoke then begin
    (* CI gate: exercise every reporting path in seconds, not minutes. *)
    Bench_micro.run ~quota:0.05 ();
    Bench_fig7.run ~iters:5 ~reps:1 ~jobs ~compiled_plans ();
    Bench_fig8.run_smoke ~jobs ~compiled_plans ();
    Bench_serve.run_smoke ()
  end
  else begin
    let want name = args = [] || List.mem name args || full in
    if want "micro" then Bench_micro.run ();
    if want "fig7" then
      if full then Bench_fig7.run ~iters:60 ~reps:5 ~jobs ~compiled_plans ()
      else Bench_fig7.run ~iters:35 ~reps:3 ~jobs ~compiled_plans ();
    if want "fig8" then Bench_fig8.run ~jobs ~compiled_plans ~full ();
    if want "fig11" || want "fig12" then Bench_herbie.run ~full ();
    if want "ablation" then Bench_ablation.run ~full ();
    if want "serve" then Bench_serve.run ()
  end;
  print_endline "\nAll requested benchmarks finished."
