(* Ablations over the engine's design choices (the knobs DESIGN.md calls
   out): semi-naïve evaluation, the single/two-atom join fast paths, and
   cross-iteration index caching. Each configuration runs the Fig. 7 math
   workload and the Steensgaard workload; times are wall clock for a fixed
   iteration budget. *)

type config = {
  label : string;
  seminaive : bool;
  fast_paths : bool;
  index_caching : bool;
}

let configs =
  [
    { label = "full engine"; seminaive = true; fast_paths = true; index_caching = true };
    { label = "no fast paths"; seminaive = true; fast_paths = false; index_caching = true };
    { label = "no index cache"; seminaive = true; fast_paths = true; index_caching = false };
    { label = "naive (egglogNI)"; seminaive = false; fast_paths = true; index_caching = true };
    { label = "naive, no fast paths"; seminaive = false; fast_paths = false; index_caching = true };
  ]

let run_math (c : config) ~iters =
  let eng =
    Egglog.Engine.create ~seminaive:c.seminaive ~fast_paths:c.fast_paths
      ~index_caching:c.index_caching ~scheduler:Egglog.Engine.backoff_default ()
  in
  ignore (Egglog.run_string eng (Math_suite.egglog_program ()));
  let t0 = Egglog.Telemetry.now () in
  ignore (Egglog.Engine.run_iterations eng iters);
  (Egglog.Telemetry.now () -. t0, Egglog.Engine.total_rows eng)

let run_pointsto (c : config) ~size =
  let p = Pointsto.Progen.generate ~size ~seed:1 () in
  let t0 = Egglog.Telemetry.now () in
  let eng =
    Pointsto.Egglog_enc.load ~seminaive:c.seminaive ~fast_paths:c.fast_paths
      ~index_caching:c.index_caching p
  in
  ignore (Egglog.Engine.run_iterations eng 1000);
  (Egglog.Telemetry.now () -. t0, Egglog.Engine.total_rows eng)

let run ~full () =
  let iters = if full then 35 else 25 in
  let size = if full then 3000 else 1000 in
  Printf.printf "\n=== Ablations (math: %d iterations; points-to: size %d) ===\n%!" iters size;
  Printf.printf "%-22s %16s %16s\n" "configuration" "math (s, rows)" "points-to (s)";
  List.iter
    (fun c ->
      let mt, mrows = run_math c ~iters in
      let pt, _ = run_pointsto c ~size in
      Printf.printf "%-22s %8.3fs %7d %10.3fs\n%!" c.label mt mrows pt)
    configs
