(* Daemon throughput and latency: a real Serve loop on its own domain, a
   real Unix socket, a warm session, and a stream of small run requests —
   measured per-request so the envelope reports requests/sec and p50/p99
   latency at --jobs 1 and 4 (the per-request search parallelism cap the
   client asks for). A final overload phase floods a small admission queue
   and asserts the shed is immediate: bounded queue, bounded tail.

   Writes BENCH_serve.json (p50/p99 are log-bucket upper bounds from the
   telemetry histogram, not sorted raw samples):
   { "runs": [ {"jobs", "requests", "rps", "p50_ms", "p99_ms"}, ... ],
     "overload": {"burst", "queue_limit", "executed", "sheds", "elapsed_ms"} } *)

module E = Egglog
module S = Egglog_server
module J = E.Telemetry.Json

let fresh_dir () =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "egglog_bench_serve_%d_%d" (Unix.getpid ()) (int_of_float (Unix.gettimeofday () *. 1000.) mod 100000))
  in
  Unix.mkdir d 0o755;
  d

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let rpc c fields =
  output_string c.oc (J.to_string (J.Obj fields));
  output_char c.oc '\n';
  flush c.oc;
  J.parse (input_line c.ic)

let is_ok r = J.member "ok" r = Some (J.Bool true)

let run_req ~id ~session ~jobs program =
  [
    ("id", J.Int id);
    ("op", J.Str "run");
    ("session", J.Str session);
    ("program", J.Str program);
    ("jobs", J.Int jobs);
  ]

(* Latency quantiles come from a private log-bucketed histogram (the same
   machinery the daemon reports), not from sorting raw samples: the bucket
   upper bound is deterministic for a given set of samples, and the JSON
   is byte-stable across runs that land in the same buckets. *)
let hist_quantiles h =
  let snap = E.Telemetry.hist_snap_of h in
  let q p = E.Telemetry.hist_snap_quantile snap p *. 1000.0 in
  (q 0.50, q 0.99)

let warm_prog =
  "(relation edge (i64 i64)) (relation path (i64 i64))\n\
   (rule ((edge x y)) ((path x y)))\n\
   (rule ((path x y) (edge y z)) ((path x z)))\n\
   (edge 0 1) (edge 1 2) (edge 2 3) (edge 3 4) (run 8)"

(* one small request on the warm session: one (mostly deduplicated) fact
   plus a short run — steady-state work, bounded growth *)
let step_prog i = Printf.sprintf "(edge %d %d) (run 1)" (i mod 16) ((i + 1) mod 16)

let with_server ~tune f =
  let dir = fresh_dir () in
  let sock = Filename.concat dir "s.sock" in
  let cfg = tune { S.Serve.default_config with socket_path = Some sock } in
  let srv = S.Serve.create cfg in
  let dom = Domain.spawn (fun () -> S.Serve.run srv) in
  Fun.protect
    ~finally:(fun () ->
      S.Serve.request_drain srv;
      Domain.join dom;
      (try Sys.remove sock with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f sock)

let measure_stream ~jobs ~n sock =
  let c = connect sock in
  let session = Printf.sprintf "bench-j%d" jobs in
  let r = rpc c (run_req ~id:0 ~session ~jobs warm_prog) in
  if not (is_ok r) then failwith "bench_serve: warmup request failed";
  let h = E.Telemetry.hist_create () in
  let t_start = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    let t0 = Unix.gettimeofday () in
    let r = rpc c (run_req ~id:(i + 1) ~session ~jobs (step_prog i)) in
    if not (is_ok r) then failwith "bench_serve: stream request failed";
    E.Telemetry.hist_record h (Unix.gettimeofday () -. t0)
  done;
  let elapsed = Unix.gettimeofday () -. t_start in
  close_client c;
  let p50, p99 = hist_quantiles h in
  let rps = float_of_int n /. elapsed in
  Printf.printf "  jobs %d: %d requests, %8.0f req/s, p50 %6.3f ms, p99 %6.3f ms\n%!"
    jobs n rps p50 p99;
  J.Obj
    [
      ("jobs", J.Int jobs);
      ("requests", J.Int n);
      ("rps", J.Float rps);
      ("p50_ms", J.Float p50);
      ("p99_ms", J.Float p99);
    ]

let measure_overload ~burst ~queue_limit sock =
  let c = connect sock in
  ignore (rpc c (run_req ~id:0 ~session:"flood" ~jobs:1 warm_prog));
  let t0 = Unix.gettimeofday () in
  for i = 1 to burst do
    output_string c.oc
      (J.to_string
         (J.Obj [ ("id", J.Int i); ("op", J.Str "stats"); ("session", J.Str "flood") ]));
    output_char c.oc '\n'
  done;
  flush c.oc;
  let executed = ref 0 and sheds = ref 0 in
  for _ = 1 to burst do
    let r = J.parse (input_line c.ic) in
    if is_ok r then incr executed else incr sheds
  done;
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  close_client c;
  if !sheds = 0 then failwith "bench_serve: overload burst was never shed";
  if elapsed_ms > 5000.0 then failwith "bench_serve: shed was not immediate";
  Printf.printf "  overload: burst %d over queue %d -> %d executed, %d shed in %.1f ms\n%!"
    burst queue_limit !executed !sheds elapsed_ms;
  J.Obj
    [
      ("burst", J.Int burst);
      ("queue_limit", J.Int queue_limit);
      ("executed", J.Int !executed);
      ("sheds", J.Int !sheds);
      ("elapsed_ms", J.Float elapsed_ms);
    ]

let run ?(n = 400) () =
  Printf.printf "\n== serve: daemon request stream ==\n%!";
  E.Telemetry.reset ();
  E.Telemetry.enable ();
  let queue_limit = 4 in
  let runs, overload =
    with_server ~tune:(fun c -> { c with S.Serve.queue_limit }) (fun sock ->
        let runs = List.map (fun jobs -> measure_stream ~jobs ~n sock) [ 1; 4 ] in
        let overload = measure_overload ~burst:64 ~queue_limit sock in
        (runs, overload))
  in
  E.Telemetry.disable ();
  Bench_report.write ~bench:"serve"
    ~params:(J.Obj [ ("n", J.Int n); ("queue_limit", J.Int queue_limit) ])
    ~data:(J.Obj [ ("runs", J.List runs); ("overload", overload) ])
    ()

let run_smoke () = run ~n:60 ()
