(** A classic egg-style equality-saturation engine (Willsey et al. 2021):
    hash-consed e-nodes, union-find over e-classes, deferred rebuilding,
    backtracking e-matching, and the BackOff rule scheduler.

    This is the paper's [egg] baseline for the Fig. 7 micro-benchmark,
    reimplemented in OCaml so the egglog-vs-egg comparison is
    engine-vs-engine inside one runtime. It also supports a built-in
    integer constant-folding e-class analysis, the canonical example of
    egg's (single) analysis slot. *)

type op = Op of string | Lit of int

type term = T of op * term list

type pattern = P_var of string | P_app of op * pattern list

type subst = (string * int) list

type rewrite = { rw_name : string; lhs : pattern; rhs : pattern }

exception Parse_error of string

val term_of_string : string -> term
(** Parse an s-expression term such as ["(+ x (pow y 2))"]. Integer atoms
    become {!Lit} leaves, other atoms nullary {!Op} nodes. *)

val pattern_of_string : string -> pattern
(** As {!term_of_string}, but atoms starting with [?] are pattern
    variables. *)

val rewrite_of_strings : name:string -> string -> string -> rewrite

type t

val create : ?const_ops:(string * (int list -> int option)) list -> unit -> t
(** [const_ops] enables the constant-folding analysis: for each listed
    operator, a partial evaluator over child constants. *)

val add_term : t -> term -> int
val add_node : t -> op -> int list -> int
val union : t -> int -> int -> int
val find : t -> int -> int
val equiv : t -> int -> int -> bool
val rebuild : t -> unit

val n_nodes : t -> int
(** Canonical (hash-consed) e-nodes — egg's reported e-graph size. *)

val n_classes : t -> int

val class_const : t -> int -> int option
(** Constant-folding analysis data of a class, when enabled. *)

val ematch : t -> pattern -> (int * subst) list
(** All matches of the pattern, as (matched class, substitution). *)

val instantiate : t -> pattern -> subst -> int

(** {1 Equality-saturation runner} *)

type scheduler = Simple | Backoff of { match_limit : int; ban_length : int }

val backoff_default : scheduler

type iter_stat = {
  is_index : int;
  is_nodes : int;
  is_classes : int;
  is_seconds : float;
  is_applied : int;  (** matches applied this iteration *)
}

type run_stats = { iters : iter_stat list; saturated : bool; total_seconds : float }

val run : t -> ?scheduler:scheduler -> ?node_limit:int -> rewrite list -> int -> run_stats

(** {1 Extraction} *)

val extract : t -> int -> (term * int) option
(** Smallest (ast-size) term of a class. *)

val term_to_string : term -> string

val audit : t -> string list
(** Invariant violations after a rebuild (empty when healthy): every
    hashcons key canonical, one entry per canonical node, class node lists
    canonical and in sync with the hashcons. For tests. *)
