type op = Op of string | Lit of int
type term = T of op * term list
type pattern = P_var of string | P_app of op * pattern list
type subst = (string * int) list
type rewrite = { rw_name : string; lhs : pattern; rhs : pattern }

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let op_of_atom s =
  match int_of_string_opt s with Some i -> Lit i | None -> Op s

let rec term_of_sexp (s : Sexpr.t) : term =
  match s with
  | Sexpr.Int i -> T (Lit i, [])
  | Sexpr.Atom a -> T (op_of_atom a, [])
  | Sexpr.List (Sexpr.Atom f :: args) -> T (Op f, List.map term_of_sexp args)
  | _ -> raise (Parse_error (Sexpr.to_string s))

let term_of_string s = term_of_sexp (Sexpr.parse_one s)

let rec pattern_of_sexp (s : Sexpr.t) : pattern =
  match s with
  | Sexpr.Int i -> P_app (Lit i, [])
  | Sexpr.Atom a when String.length a > 0 && a.[0] = '?' ->
    P_var (String.sub a 1 (String.length a - 1))
  | Sexpr.Atom a -> P_app (op_of_atom a, [])
  | Sexpr.List (Sexpr.Atom f :: args) -> P_app (Op f, List.map pattern_of_sexp args)
  | _ -> raise (Parse_error (Sexpr.to_string s))

let pattern_of_string s = pattern_of_sexp (Sexpr.parse_one s)

let rewrite_of_strings ~name lhs rhs =
  { rw_name = name; lhs = pattern_of_string lhs; rhs = pattern_of_string rhs }

let rec term_to_string (T (op, args)) =
  let head = match op with Op s -> s | Lit i -> string_of_int i in
  match args with
  | [] -> head
  | _ -> "(" ^ head ^ " " ^ String.concat " " (List.map term_to_string args) ^ ")"

(* ------------------------------------------------------------------ *)
(* The e-graph                                                         *)
(* ------------------------------------------------------------------ *)

type node = { op : op; args : int array }

module Node_tbl = Hashtbl.Make (struct
  type t = node

  let equal a b = a.op = b.op && Array.length a.args = Array.length b.args
                  && Array.for_all2 Int.equal a.args b.args

  let hash n =
    let h = ref (Hashtbl.hash n.op) in
    Array.iter (fun c -> h := (!h * 31) lxor c) n.args;
    !h land max_int
end)

type eclass = {
  mutable nodes : node list;
  mutable parents : (node * int) list;
  mutable const : int option;  (* constant-folding analysis data *)
}

type t = {
  uf : Union_find.t;
  hashcons : int Node_tbl.t;
  classes : (int, eclass) Hashtbl.t;
  const_ops : (string, int list -> int option) Hashtbl.t;
  mutable dirty : int list;  (* classes to repair during rebuild *)
  mutable pending_analysis : int list;
}

let create ?(const_ops = []) () =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (name, f) -> Hashtbl.replace tbl name f) const_ops;
  {
    uf = Union_find.create ();
    hashcons = Node_tbl.create 256;
    classes = Hashtbl.create 256;
    const_ops = tbl;
    dirty = [];
    pending_analysis = [];
  }

let find eg id = Union_find.find eg.uf id
let equiv eg a b = find eg a = find eg b
let get_class eg id = Hashtbl.find eg.classes (find eg id)
let canon_node eg n = { n with args = Array.map (find eg) n.args }
let n_nodes eg = Node_tbl.length eg.hashcons
let n_classes eg = Union_find.n_classes eg.uf
let class_const eg id = (get_class eg id).const

(* Evaluate the analysis for a single node from its children's data. *)
let analysis_make eg (n : node) : int option =
  match n.op with
  | Lit i -> Some i
  | Op name -> (
    match Hashtbl.find_opt eg.const_ops name with
    | None -> None
    | Some f ->
      let child_data = Array.map (fun c -> (get_class eg c).const) n.args in
      if Array.for_all Option.is_some child_data then
        f (Array.to_list (Array.map Option.get child_data))
      else None)

(* Forward declaration dance: union and analysis update recurse. *)
let rec add_node eg op args =
  let n = canon_node eg { op; args = Array.of_list args } in
  match Node_tbl.find_opt eg.hashcons n with
  | Some id -> find eg id
  | None ->
    let id = Union_find.make_set eg.uf in
    Hashtbl.replace eg.classes id { nodes = [ n ]; parents = []; const = None };
    Node_tbl.replace eg.hashcons n id;
    Array.iter
      (fun child ->
        let c = get_class eg child in
        c.parents <- (n, id) :: c.parents)
      n.args;
    update_analysis eg id n;
    id

and update_analysis eg id n =
  match analysis_make eg n with
  | None -> ()
  | Some v -> (
    let cls = get_class eg id in
    match cls.const with
    | Some v' when v' = v -> ()
    | Some _ | None ->
      cls.const <- Some v;
      (* modify: materialize the constant in the class, as egg's math
         analysis does, enabling constant folding without a rule *)
      let lit_id = add_node eg (Lit v) [] in
      ignore (union eg id lit_id))

and union eg a b =
  let ra = find eg a and rb = find eg b in
  if ra = rb then ra
  else begin
    let ca = Hashtbl.find eg.classes ra and cb = Hashtbl.find eg.classes rb in
    let w = Union_find.union eg.uf ra rb in
    let winner, loser_cls = if w = ra then (ca, cb) else (cb, ca) in
    let loser_id = if w = ra then rb else ra in
    winner.nodes <- loser_cls.nodes @ winner.nodes;
    winner.parents <- loser_cls.parents @ winner.parents;
    (match (winner.const, loser_cls.const) with
     | None, Some v -> winner.const <- Some v
     | Some v1, Some v2 when v1 <> v2 ->
       failwith
         (Printf.sprintf "egraph: analysis conflict %d vs %d (unsound rules?)" v1 v2)
     | _ -> ());
    Hashtbl.remove eg.classes loser_id;
    eg.dirty <- w :: eg.dirty;
    w
  end

let add_term eg t =
  let rec go (T (op, args)) = add_node eg op (List.map go args) in
  go t

(* ------------------------------------------------------------------ *)
(* Rebuilding (deferred, as in egg §3)                                 *)
(* ------------------------------------------------------------------ *)

let repair eg id =
  let id0 = find eg id in
  let cls = Hashtbl.find eg.classes id0 in
  (* Re-canonicalize parents; congruent parents collapse via union. *)
  let parents = cls.parents in
  cls.parents <- [];
  let seen = Node_tbl.create (List.length parents + 1) in
  List.iter
    (fun (pnode, pcls) ->
      Node_tbl.remove eg.hashcons pnode;
      let pn = canon_node eg pnode in
      match Node_tbl.find_opt seen pn with
      | Some other -> ignore (union eg other (find eg pcls))
      | None -> Node_tbl.replace seen pn (find eg pcls))
    parents;
  Node_tbl.iter
    (fun pn pcls ->
      let pcls = find eg pcls in
      (match Node_tbl.find_opt eg.hashcons pn with
       | Some existing -> if find eg existing <> pcls then ignore (union eg existing pcls)
       | None -> Node_tbl.replace eg.hashcons pn pcls);
      (* Re-register the canonical form on EVERY child class (not just the
         repaired one): a later union of any child must be able to find and
         remove this hashcons entry, else stale keys leak. *)
      let pcls = find eg pcls in
      Array.iter
        (fun child ->
          let c = get_class eg child in
          c.parents <- (pn, pcls) :: c.parents)
        pn.args;
      (* analysis data may now flow upward through this parent *)
      eg.pending_analysis <- pcls :: eg.pending_analysis)
    seen;
  let cls = Hashtbl.find eg.classes (find eg id0) in
  (* dedupe own nodes *)
  let node_set = Node_tbl.create (List.length cls.nodes) in
  List.iter (fun n -> Node_tbl.replace node_set (canon_node eg n) ()) cls.nodes;
  cls.nodes <- Node_tbl.fold (fun n () acc -> n :: acc) node_set []

let rebuild eg =
  while eg.dirty <> [] || eg.pending_analysis <> [] do
    let todo = eg.dirty in
    eg.dirty <- [];
    let seen = Hashtbl.create 16 in
    List.iter
      (fun id ->
        let id = find eg id in
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.replace seen id ();
          repair eg id
        end)
      todo;
    let pending = eg.pending_analysis in
    eg.pending_analysis <- [];
    List.iter
      (fun id ->
        let id = find eg id in
        let cls = Hashtbl.find eg.classes id in
        List.iter (fun n -> update_analysis eg id n) cls.nodes)
      pending
  done

(* ------------------------------------------------------------------ *)
(* E-matching (backtracking, as in egg)                                *)
(* ------------------------------------------------------------------ *)

let rec match_pattern eg (pat : pattern) (cls : int) (s : subst) : subst list =
  match pat with
  | P_var x -> (
    match List.assoc_opt x s with
    | Some bound -> if find eg bound = find eg cls then [ s ] else []
    | None -> [ (x, find eg cls) :: s ])
  | P_app (op, ps) ->
    let cls = get_class eg cls in
    List.concat_map
      (fun (n : node) ->
        if n.op = op && Array.length n.args = List.length ps then begin
          let rec go i ps substs =
            match ps with
            | [] -> substs
            | p :: rest ->
              let substs' =
                List.concat_map (fun s -> match_pattern eg p n.args.(i) s) substs
              in
              go (i + 1) rest substs'
          in
          go 0 ps [ s ]
        end
        else [])
      cls.nodes

let ematch eg pat =
  match pat with
  | P_var _ -> invalid_arg "ematch: top-level pattern variable"
  | P_app _ ->
    Hashtbl.fold
      (fun id _cls acc ->
        if Union_find.is_canonical eg.uf id then
          List.rev_append
            (List.map (fun s -> (id, s)) (match_pattern eg pat id []))
            acc
        else acc)
      eg.classes []

let rec instantiate eg (pat : pattern) (s : subst) : int =
  match pat with
  | P_var x -> (
    match List.assoc_opt x s with
    | Some id -> find eg id
    | None -> invalid_arg ("instantiate: unbound pattern variable ?" ^ x))
  | P_app (op, ps) -> add_node eg op (List.map (fun p -> instantiate eg p s) ps)

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

type scheduler = Simple | Backoff of { match_limit : int; ban_length : int }

let backoff_default = Backoff { match_limit = 1000; ban_length = 5 }

type iter_stat = {
  is_index : int;
  is_nodes : int;
  is_classes : int;
  is_seconds : float;
  is_applied : int;
}

type run_stats = { iters : iter_stat list; saturated : bool; total_seconds : float }

type rule_state = { mutable times_banned : int; mutable banned_until : int }

let run eg ?(scheduler = Simple) ?(node_limit = max_int) rewrites n =
  let states = List.map (fun _ -> { times_banned = 0; banned_until = 0 }) rewrites in
  let stats = ref [] in
  let total = ref 0.0 in
  let saturated = ref false in
  (try
     for iter = 1 to n do
       let t_start = Unix.gettimeofday () in
       let nodes_before = n_nodes eg and classes_before = n_classes eg in
       let searched =
         List.map2
           (fun rw st ->
             if st.banned_until >= iter then (rw, st, None)
             else (rw, st, Some (ematch eg rw.lhs)))
           rewrites states
       in
       let applied = ref 0 in
       List.iter
         (fun (rw, st, matches) ->
           match matches with
           | None -> ()
           | Some matches -> (
             match scheduler with
             | Backoff { match_limit; ban_length }
               when List.length matches > match_limit lsl st.times_banned ->
               st.banned_until <- iter + (ban_length lsl st.times_banned);
               st.times_banned <- st.times_banned + 1
             | Backoff _ | Simple ->
               List.iter
                 (fun (cls, s) ->
                   let rhs_id = instantiate eg rw.rhs s in
                   ignore (union eg cls rhs_id);
                   incr applied)
                 matches))
         searched;
       rebuild eg;
       let dt = Unix.gettimeofday () -. t_start in
       total := !total +. dt;
       stats :=
         {
           is_index = iter;
           is_nodes = n_nodes eg;
           is_classes = n_classes eg;
           is_seconds = dt;
           is_applied = !applied;
         }
         :: !stats;
       let banned_pending = List.exists (fun st -> st.banned_until >= iter + 1) states in
       if n_nodes eg = nodes_before && n_classes eg = classes_before && not banned_pending
       then begin
         saturated := true;
         raise Exit
       end;
       if n_nodes eg > node_limit then raise Exit
     done
   with Exit -> ());
  { iters = List.rev !stats; saturated = !saturated; total_seconds = !total }

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

let extract eg id =
  let id = find eg id in
  let best : (int, int * node) Hashtbl.t = Hashtbl.create 64 in
  let progress = ref true in
  while !progress do
    progress := false;
    Hashtbl.iter
      (fun cid cls ->
        if Union_find.is_canonical eg.uf cid then
          List.iter
            (fun (n : node) ->
              let cost = ref (Some 1) in
              Array.iter
                (fun c ->
                  match (!cost, Hashtbl.find_opt best (find eg c)) with
                  | Some acc, Some (child_cost, _) -> cost := Some (acc + child_cost)
                  | _, None -> cost := None
                  | None, _ -> ())
                n.args;
              match !cost with
              | None -> ()
              | Some total -> (
                match Hashtbl.find_opt best cid with
                | Some (existing, _) when existing <= total -> ()
                | Some _ | None ->
                  Hashtbl.replace best cid (total, n);
                  progress := true))
            cls.nodes)
      eg.classes
  done;
  let rec build cid =
    match Hashtbl.find_opt best (find eg cid) with
    | None -> None
    | Some (_, n) ->
      let args =
        Array.fold_right
          (fun c acc ->
            match acc with
            | None -> None
            | Some rest -> ( match build c with Some t -> Some (t :: rest) | None -> None))
          n.args (Some [])
      in
      (match args with Some args -> Some (T (n.op, args)) | None -> None)
  in
  match Hashtbl.find_opt best id with
  | None -> None
  | Some (cost, _) -> ( match build id with Some t -> Some (t, cost) | None -> None)

(* ------------------------------------------------------------------ *)
(* Invariant audit (testing aid)                                       *)
(* ------------------------------------------------------------------ *)

let node_to_string (n : node) =
  let head = match n.op with Op s -> s | Lit i -> string_of_int i in
  Printf.sprintf "%s(%s)" head
    (String.concat "," (Array.to_list (Array.map string_of_int n.args)))

let audit eg =
  let problems = ref [] in
  let report fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  Node_tbl.iter
    (fun n cls ->
      if not (Array.for_all (Union_find.is_canonical eg.uf) n.args) then
        report "hashcons key not canonical: %s" (node_to_string n);
      if not (Hashtbl.mem eg.classes (find eg cls)) then
        report "hashcons %s maps to missing class %d" (node_to_string n) cls)
    eg.hashcons;
  (* every class node must re-canonicalize to a hashcons entry in the class *)
  Hashtbl.iter
    (fun id cls ->
      if not (Union_find.is_canonical eg.uf id) then
        report "class table holds non-canonical id %d" id
      else
        List.iter
          (fun n ->
            let cn = canon_node eg n in
            match Node_tbl.find_opt eg.hashcons cn with
            | None -> report "class %d node %s missing from hashcons" id (node_to_string cn)
            | Some owner ->
              if find eg owner <> id then
                report "class %d node %s hashconsed to class %d" id (node_to_string cn)
                  (find eg owner))
          cls.nodes)
    eg.classes;
  (* hashcons entry count must equal deduped canonical nodes *)
  let distinct = Node_tbl.create 256 in
  Hashtbl.iter
    (fun id cls ->
      if Union_find.is_canonical eg.uf id then
        List.iter (fun n -> Node_tbl.replace distinct (canon_node eg n) ()) cls.nodes)
    eg.classes;
  if Node_tbl.length distinct <> Node_tbl.length eg.hashcons then
    report "hashcons has %d entries but classes hold %d distinct nodes"
      (Node_tbl.length eg.hashcons) (Node_tbl.length distinct);
  List.rev !problems
