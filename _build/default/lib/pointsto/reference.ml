(* Hand-written Steensgaard points-to analysis (Steensgaard 1996): the
   ground truth the encodings are validated against. Near-linear:
   union-find over location nodes, one pass over the instructions, with
   recursive unification of targets and field maps. *)

type info = {
  mutable tgt : int option;  (* the single pointee class, if any *)
  mutable flds : (int * int) list;  (* field -> field node *)
}

type t = {
  uf : Union_find.t;
  info : (int, info) Hashtbl.t;  (* canonical root -> class info *)
  n_vars : int;
}

let node_info st n =
  let r = Union_find.find st.uf n in
  match Hashtbl.find_opt st.info r with
  | Some i -> i
  | None ->
    let i = { tgt = None; flds = [] } in
    Hashtbl.replace st.info r i;
    i

let fresh_node st =
  let n = Union_find.make_set st.uf in
  n

(* Unify two location classes, merging their targets and field maps
   (worklist to keep the recursion shallow). *)
let unify st a b =
  let wl = ref [ (a, b) ] in
  while !wl <> [] do
    match !wl with
    | [] -> ()
    | (a, b) :: rest ->
      wl := rest;
      let ra = Union_find.find st.uf a and rb = Union_find.find st.uf b in
      if ra <> rb then begin
        let ia = node_info st ra and ib = node_info st rb in
        let w = Union_find.union st.uf ra rb in
        let winner, loser = if w = ra then (ia, ib) else (ib, ia) in
        (match (winner.tgt, loser.tgt) with
         | Some t1, Some t2 -> wl := (t1, t2) :: !wl
         | None, Some t -> winner.tgt <- Some t
         | _, None -> ());
        List.iter
          (fun (f, n) ->
            match List.assoc_opt f winner.flds with
            | Some n' -> wl := (n, n') :: !wl
            | None -> winner.flds <- (f, n) :: winner.flds)
          loser.flds;
        Hashtbl.remove st.info (if w = ra then rb else ra);
        Hashtbl.replace st.info w winner
      end
  done

let target st n =
  let i = node_info st n in
  match i.tgt with
  | Some t -> t
  | None ->
    let t = fresh_node st in
    i.tgt <- Some t;
    t

let field st n f =
  let i = node_info st n in
  match List.assoc_opt f i.flds with
  | Some fn -> fn
  | None ->
    let fn = fresh_node st in
    i.flds <- (f, fn) :: i.flds;
    fn

let analyze (p : Ir.program) : t =
  let uf = Union_find.create () in
  (* nodes 0..n_vars-1 are variables; n_vars..n_vars+n_sites-1 are sites *)
  for _ = 1 to p.Ir.n_vars + p.Ir.n_sites do
    ignore (Union_find.make_set uf)
  done;
  let st = { uf; info = Hashtbl.create 256; n_vars = p.Ir.n_vars } in
  let var v = v in
  let site s = p.Ir.n_vars + s in
  Array.iter
    (fun inst ->
      match inst with
      | Ir.Alloc (v, s) -> unify st (target st (var v)) (site s)
      | Ir.Copy (d, s) -> unify st (target st (var d)) (target st (var s))
      | Ir.Store (pq, q) -> unify st (target st (target st (var pq))) (target st (var q))
      | Ir.Load (d, pq) -> unify st (target st (var d)) (target st (target st (var pq)))
      | Ir.Field (d, pq, f) -> unify st (target st (var d)) (field st (target st (var pq)) f))
    p.Ir.insts;
  st

(* ---- results ---- *)

(* For each variable, the set of allocation sites it may point to (sorted);
   the cross-system comparison key. *)
let var_sites (p : Ir.program) (st : t) : int list array =
  (* sites grouped by class *)
  let by_class : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  for s = 0 to p.Ir.n_sites - 1 do
    let r = Union_find.find st.uf (p.Ir.n_vars + s) in
    Hashtbl.replace by_class r (s :: (try Hashtbl.find by_class r with Not_found -> []))
  done;
  Array.init p.Ir.n_vars (fun v ->
      let i = node_info st v in
      match i.tgt with
      | None -> []
      | Some t -> (
        let r = Union_find.find st.uf t in
        match Hashtbl.find_opt by_class r with
        | Some sites -> List.sort compare sites
        | None -> []))

(* Number of (variable, canonical pointee class) pairs: the "size of the
   computed points-to relation" in canonicalized form. *)
let vpt_size (p : Ir.program) (st : t) =
  let n = ref 0 in
  for v = 0 to p.Ir.n_vars - 1 do
    match (node_info st v).tgt with Some _ -> incr n | None -> ()
  done;
  !n
