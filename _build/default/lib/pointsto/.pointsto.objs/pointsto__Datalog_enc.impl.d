lib/pointsto/datalog_enc.ml: Array Hashtbl Ir List Minidatalog Unix
