lib/pointsto/andersen.ml: Array Hashtbl Int Ir List Minidatalog Set Unix
