lib/pointsto/reference.ml: Array Hashtbl Ir List Union_find
