lib/pointsto/ir.ml: Array Format
