lib/pointsto/egglog_enc.ml: Array Egglog Hashtbl Ir List
