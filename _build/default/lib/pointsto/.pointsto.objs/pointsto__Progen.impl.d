lib/pointsto/progen.ml: Array Ir List Random
