(* A miniature LLVM-like pointer IR: exactly the instruction shapes a
   Steensgaard analysis interprets (§6.1). Variables and allocation sites
   are dense integers. *)

type inst =
  | Alloc of int * int  (* v = &site *)
  | Copy of int * int  (* d = s *)
  | Store of int * int  (* *p = q *)
  | Load of int * int  (* d = *p *)
  | Field of int * int * int  (* d = &(p->f) *)

type program = {
  n_vars : int;
  n_sites : int;
  n_fields : int;
  insts : inst array;
}

let pp_inst fmt = function
  | Alloc (v, s) -> Format.fprintf fmt "v%d = &h%d" v s
  | Copy (d, s) -> Format.fprintf fmt "v%d = v%d" d s
  | Store (p, q) -> Format.fprintf fmt "*v%d = v%d" p q
  | Load (d, p) -> Format.fprintf fmt "v%d = *v%d" d p
  | Field (d, p, f) -> Format.fprintf fmt "v%d = &(v%d->f%d)" d p f

let validate (p : program) =
  Array.for_all
    (fun inst ->
      let var v = v >= 0 && v < p.n_vars in
      match inst with
      | Alloc (v, s) -> var v && s >= 0 && s < p.n_sites
      | Copy (a, b) | Store (a, b) | Load (a, b) -> var a && var b
      | Field (d, q, f) -> var d && var q && f >= 0 && f < p.n_fields)
    p.insts
