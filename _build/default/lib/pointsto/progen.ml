(* Seeded synthetic program generator: the substitute for the
   postgresql-9.5.2 modules of Fig. 8 (we have no proprietary-scale LLVM
   bitcode in this environment).

   What matters for Steensgaard performance is the instruction mix and the
   sharing structure of the pointer graph, not the source text: long copy
   chains (locals and argument passing), heap indirection through
   loads/stores (data structures), field accesses on fresh allocations,
   and occasional long-range copies that force large unifications. The
   generator reproduces those knobs; scaling [size] plays the role of
   analysing ever larger modules. *)

type profile = {
  vars_per_size : int;
  sites_per_size : int;
  n_fields : int;
  alloc_frac : float;
  copy_frac : float;
  store_frac : float;
  load_frac : float;  (* remainder becomes Field *)
}

(* Mix loosely modelled on C systems code: copies dominate, then
   loads/stores, then allocations, with some field address-taking. *)
let default_profile =
  {
    vars_per_size = 10;
    sites_per_size = 2;
    n_fields = 3;
    alloc_frac = 0.12;
    copy_frac = 0.46;
    store_frac = 0.16;
    load_frac = 0.18;
  }

let generate ?(profile = default_profile) ~size ~seed () : Ir.program =
  let rand = Random.State.make [| seed; size |] in
  let n_vars = max 4 (profile.vars_per_size * size) in
  let n_sites = max 2 (profile.sites_per_size * size) in
  let n_insts = 12 * size in
  let var () = Random.State.int rand n_vars in
  (* Locality: most copies connect nearby variables, as locals within one
     function would; a few long-range ones model cross-module flow. *)
  let nearby v =
    if Random.State.float rand 1.0 < 0.9 then begin
      let w = v + Random.State.int rand 20 - 10 in
      max 0 (min (n_vars - 1) w)
    end
    else var ()
  in
  (* Field instructions draw their base from variables that received a
     fresh allocation, keeping field nesting shallow (as gep on a malloc
     result is in real code). *)
  let alloc_vars = ref [] in
  let insts =
    Array.init n_insts (fun _ ->
        let r = Random.State.float rand 1.0 in
        if r < profile.alloc_frac || !alloc_vars = [] then begin
          let v = var () in
          alloc_vars := v :: !alloc_vars;
          Ir.Alloc (v, Random.State.int rand n_sites)
        end
        else if r < profile.alloc_frac +. profile.copy_frac then begin
          let s = var () in
          Ir.Copy (nearby s, s)
        end
        else if r < profile.alloc_frac +. profile.copy_frac +. profile.store_frac then
          Ir.Store (var (), var ())
        else if
          r < profile.alloc_frac +. profile.copy_frac +. profile.store_frac +. profile.load_frac
        then Ir.Load (var (), var ())
        else begin
          let bases = !alloc_vars in
          let base = List.nth bases (Random.State.int rand (List.length bases)) in
          Ir.Field (var (), base, Random.State.int rand profile.n_fields)
        end)
  in
  { Ir.n_vars; n_sites; n_fields = profile.n_fields; insts }
