(** A small Soufflé-flavoured Datalog engine: the substrate for the paper's
    Fig. 8 baselines (§6.1).

    Feature set modelled on what the Steensgaard encodings need:
    - plain relations with semi-naïve evaluation and hash-join indexes;
    - [eqrel] relations (Nappa et al. 2019): union-find-backed equivalence
      relations whose {e enumeration} behaves like the full quadratic set of
      pairs — joining over one is the "join modulo equivalence" the paper
      shows to be disastrous;
    - a [find] view of an eqrel (the canonical-representative trick of the
      cclyzer++/patched encodings); representatives are snapshots, so
      tuples derived from stale representatives persist, as in Datalog;
    - choice-domain relations (Hu et al. 2021): a functional dependency
      where the first derived tuple per key group wins.

    Tuples are arrays of nonnegative ints (callers intern their symbols). *)

type db
type rel

val create : unit -> db

val relation : db -> string -> int -> rel
val eqrel : db -> string -> rel
(** Binary, union-find backed. *)

val choice : db -> string -> int -> keys:int list -> rel
(** Plain relation with a first-wins functional dependency on the given
    key positions. *)

val fact : db -> rel -> int array -> unit
(** Assert a tuple (for an eqrel: a pair to merge). *)

type term = V of string | C of int

type atom =
  | Atom of rel * term array  (** positive occurrence; for eqrel: pair membership *)
  | Find of rel * term * term  (** [Find (r, x, c)]: c is x's current representative *)

val rule : db -> head:rel * term array -> body:atom list -> unit
(** @raise Invalid_argument on arity/variable errors. *)

type outcome = Fixpoint of int  (** iterations *) | Timeout

val run : db -> ?max_iters:int -> ?timeout_s:float -> unit -> outcome

val size : db -> rel -> int
(** Plain/choice: number of tuples. Eqrel: number of {e pairs} in the
    equivalence closure (the quadratic count Soufflé reports). *)

val mem : db -> rel -> int array -> bool
val iter : db -> rel -> (int array -> unit) -> unit
(** Plain/choice relations only. *)

val classes : db -> rel -> int list list
(** Eqrel only: the partition (members grouped by class). *)
