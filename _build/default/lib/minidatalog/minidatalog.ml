type tuple = int array

module TTbl = Hashtbl.Make (struct
  type t = tuple

  let equal a b = Array.length a = Array.length b && Array.for_all2 Int.equal a b

  let hash t =
    let h = ref (Array.length t) in
    Array.iter (fun v -> h := (!h * 31) lxor v) t;
    !h land max_int
end)

(* ------------------------------------------------------------------ *)
(* Relations                                                           *)
(* ------------------------------------------------------------------ *)

type eq_state = {
  uf : Union_find.t;
  nodes : (int, int) Hashtbl.t;  (* element -> uf node *)
  elems : (int, int) Hashtbl.t;  (* uf node -> element *)
  members : (int, int list) Hashtbl.t;  (* root node -> member elements *)
  mutable eq_changed : bool;  (* merged something this iteration *)
}

type kind =
  | Plain
  | Choice of int list  (* key positions *)
  | Eq of eq_state

type rel = {
  rid : int;
  rname : string;
  arity : int;
  kind : kind;
  data : unit TTbl.t;
  mutable delta : tuple list;  (* inserted during the previous iteration *)
  mutable pending : tuple list;  (* derived this iteration, not yet visible *)
  groups : unit TTbl.t;  (* choice: claimed keys *)
  mutable version : int;
  indexes : (int, tuple list TTbl.t) Hashtbl.t;  (* bound-position mask -> index *)
  mutable index_version : int;
}

type term = V of string | C of int
type atom = Atom of rel * term array | Find of rel * term * term

type crule = { head : rel * term array; body : atom list }

type db = {
  mutable rels : rel list;
  mutable rules : crule list;
  mutable next_rid : int;
}

type outcome = Fixpoint of int | Timeout

exception Timed_out

let create () = { rels = []; rules = []; next_rid = 0 }

let mk_rel db name arity kind =
  let r =
    {
      rid = db.next_rid;
      rname = name;
      arity;
      kind;
      data = TTbl.create 64;
      delta = [];
      pending = [];
      groups = TTbl.create 16;
      version = 0;
      indexes = Hashtbl.create 4;
      index_version = -1;
    }
  in
  db.next_rid <- db.next_rid + 1;
  db.rels <- r :: db.rels;
  r

let relation db name arity = mk_rel db name arity Plain

let eqrel db name =
  mk_rel db name 2
    (Eq
       {
         uf = Union_find.create ();
         nodes = Hashtbl.create 64;
         elems = Hashtbl.create 64;
         members = Hashtbl.create 64;
         eq_changed = false;
       })

let choice db name arity ~keys =
  List.iter (fun k -> if k < 0 || k >= arity then invalid_arg "choice: bad key position") keys;
  mk_rel db name arity (Choice keys)

(* ---- eqrel internals ---- *)

let eq_node st elem =
  match Hashtbl.find_opt st.nodes elem with
  | Some n -> n
  | None ->
    let n = Union_find.make_set st.uf in
    Hashtbl.replace st.nodes elem n;
    Hashtbl.replace st.elems n elem;
    Hashtbl.replace st.members n [ elem ];
    n

let eq_merge st a b =
  let na = eq_node st a and nb = eq_node st b in
  let ra = Union_find.find st.uf na and rb = Union_find.find st.uf nb in
  if ra <> rb then begin
    let w = Union_find.union st.uf ra rb in
    let l = if w = ra then rb else ra in
    let ms = Hashtbl.find st.members l @ Hashtbl.find st.members w in
    Hashtbl.replace st.members w ms;
    Hashtbl.remove st.members l;
    st.eq_changed <- true
  end

let eq_registered st elem = Hashtbl.mem st.nodes elem

let eq_equiv st a b =
  match (Hashtbl.find_opt st.nodes a, Hashtbl.find_opt st.nodes b) with
  | Some na, Some nb -> Union_find.equiv st.uf na nb
  | _ -> false

let eq_members st elem =
  match Hashtbl.find_opt st.nodes elem with
  | None -> []
  | Some n -> Hashtbl.find st.members (Union_find.find st.uf n)

(* Deterministic canonical representative: smallest member element; an
   unregistered element represents itself. *)
let eq_find st elem =
  match Hashtbl.find_opt st.nodes elem with
  | None -> elem
  | Some n ->
    List.fold_left min max_int (Hashtbl.find st.members (Union_find.find st.uf n))

let eq_all_elems st = Hashtbl.fold (fun elem _ acc -> elem :: acc) st.nodes []

(* ------------------------------------------------------------------ *)
(* Facts and rules                                                     *)
(* ------------------------------------------------------------------ *)

let insert_now r (t : tuple) =
  match r.kind with
  | Eq st ->
    if Array.length t <> 2 then invalid_arg "eqrel fact must be binary";
    eq_merge st t.(0) t.(1)
  | Plain | Choice _ ->
    if TTbl.mem r.data t then ()
    else begin
      let admit =
        match r.kind with
        | Choice keys ->
          let key = Array.of_list (List.map (fun k -> t.(k)) keys) in
          if TTbl.mem r.groups key then false
          else begin
            TTbl.replace r.groups key ();
            true
          end
        | Plain | Eq _ -> true
      in
      if admit then begin
        TTbl.replace r.data t ();
        r.delta <- t :: r.delta;
        let was_current = r.index_version = r.version in
        r.version <- r.version + 1;
        if was_current then begin
          (* keep existing indexes in sync instead of rebuilding them *)
          Hashtbl.iter
            (fun mask idx ->
              let positions =
                List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init r.arity Fun.id)
              in
              let key = Array.of_list (List.map (fun i -> t.(i)) positions) in
              let existing = try TTbl.find idx key with Not_found -> [] in
              TTbl.replace idx key (t :: existing))
            r.indexes;
          r.index_version <- r.version
        end
      end
    end

let fact _db r t =
  if Array.length t <> r.arity then invalid_arg "fact: arity mismatch";
  insert_now r t

let rule db ~head ~body =
  let hrel, hterms = head in
  if Array.length hterms <> hrel.arity then invalid_arg "rule: head arity mismatch";
  List.iter
    (function
      | Atom (r, ts) -> if Array.length ts <> r.arity then invalid_arg "rule: body arity mismatch"
      | Find (r, _, _) -> (
        match r.kind with Eq _ -> () | Plain | Choice _ -> invalid_arg "Find needs an eqrel"))
    body;
  (* head variables must occur in the body *)
  let body_vars =
    List.concat_map
      (function
        | Atom (_, ts) -> List.filter_map (function V x -> Some x | C _ -> None) (Array.to_list ts)
        | Find (_, x, c) ->
          List.filter_map (function V v -> Some v | C _ -> None) [ x; c ])
      body
  in
  Array.iter
    (function
      | V x when not (List.mem x body_vars) -> invalid_arg ("rule: unbound head variable " ^ x)
      | V _ | C _ -> ())
    hterms;
  db.rules <- { head; body } :: db.rules

(* ------------------------------------------------------------------ *)
(* Indexes for plain/choice relations                                  *)
(* ------------------------------------------------------------------ *)

let index_for r mask =
  (* mask bit i set = position i is bound *)
  if r.index_version <> r.version then begin
    Hashtbl.reset r.indexes;
    r.index_version <- r.version
  end;
  match Hashtbl.find_opt r.indexes mask with
  | Some idx -> idx
  | None ->
    let idx = TTbl.create (TTbl.length r.data) in
    let positions = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init r.arity Fun.id) in
    TTbl.iter
      (fun t () ->
        let key = Array.of_list (List.map (fun i -> t.(i)) positions) in
        let existing = try TTbl.find idx key with Not_found -> [] in
        TTbl.replace idx key (t :: existing))
      r.data;
    Hashtbl.replace r.indexes mask idx;
    idx

(* ------------------------------------------------------------------ *)
(* Rule evaluation                                                     *)
(* ------------------------------------------------------------------ *)

type env = (string, int) Hashtbl.t

let term_value env = function
  | C c -> Some c
  | V x -> Hashtbl.find_opt env x

(* Iterate matches of one atom under env, calling k with extended env.
   [source]: `All uses the relation's data, `Delta its last-iteration delta. *)
let match_atom ~(deadline : float) ~budget env atom source k =
  let tick () =
    decr budget;
    if !budget <= 0 then begin
      budget := 100_000;
      if Unix.gettimeofday () > deadline then raise Timed_out
    end
  in
  match atom with
  | Find (r, x, c) -> (
    let st = match r.kind with Eq st -> st | Plain | Choice _ -> assert false in
    match term_value env x with
    | None -> invalid_arg "Find: subject must be bound by an earlier atom"
    | Some xv -> (
      let root = eq_find st xv in
      match term_value env c with
      | Some cv -> if cv = root then k ()
      | None ->
        (match c with
         | V name ->
           Hashtbl.replace env name root;
           k ();
           Hashtbl.remove env name
         | C _ -> assert false)))
  | Atom (r, ts) -> (
    match r.kind with
    | Eq st -> (
      (* Enumerating an eqrel behaves like the quadratic pair set. *)
      let bind term value body =
        match term with
        | C c -> if c = value then body ()
        | V x -> (
          match Hashtbl.find_opt env x with
          | Some v -> if v = value then body ()
          | None ->
            Hashtbl.replace env x value;
            body ();
            Hashtbl.remove env x)
      in
      match (term_value env ts.(0), term_value env ts.(1)) with
      | Some a, Some b -> if eq_equiv st a b then k ()
      | Some a, None ->
        if eq_registered st a then
          List.iter (fun m -> tick (); bind ts.(1) m k) (eq_members st a)
      | None, Some b ->
        if eq_registered st b then
          List.iter (fun m -> tick (); bind ts.(0) m k) (eq_members st b)
      | None, None ->
        List.iter
          (fun a ->
            bind ts.(0) a (fun () ->
                List.iter (fun m -> tick (); bind ts.(1) m k) (eq_members st a)))
          (eq_all_elems st))
    | Plain | Choice _ -> (
      let try_tuple t =
        tick ();
        (* unify tuple with terms, extending env *)
        let rec go i bound =
          if i >= Array.length ts then begin
            k ();
            List.iter (Hashtbl.remove env) bound
          end
          else begin
            match ts.(i) with
            | C c -> if t.(i) = c then go (i + 1) bound else List.iter (Hashtbl.remove env) bound
            | V x -> (
              match Hashtbl.find_opt env x with
              | Some v -> if t.(i) = v then go (i + 1) bound else List.iter (Hashtbl.remove env) bound
              | None ->
                Hashtbl.replace env x t.(i);
                go (i + 1) (x :: bound))
          end
        in
        go 0 []
      in
      match source with
      | `Delta -> List.iter try_tuple r.delta
      | `All ->
        (* mask of bound positions *)
        let mask = ref 0 and key = ref [] in
        Array.iteri
          (fun i t ->
            match term_value env t with
            | Some v ->
              mask := !mask lor (1 lsl i);
              key := v :: !key
            | None -> ())
          ts;
        if !mask = 0 then TTbl.iter (fun t () -> try_tuple t) r.data
        else begin
          let idx = index_for r !mask in
          let key = Array.of_list (List.rev !key) in
          match TTbl.find_opt idx key with
          | Some tuples -> List.iter try_tuple tuples
          | None -> ()
        end))

let eval_rule ~deadline ~budget (rule : crule) ~(delta_pos : int option) =
  let env : env = Hashtbl.create 16 in
  let hrel, hterms = rule.head in
  let derive () =
    let t =
      Array.map
        (fun term ->
          match term_value env term with
          | Some v -> v
          | None -> invalid_arg "unbound head variable at runtime")
        hterms
    in
    match hrel.kind with
    | Eq st -> eq_merge st t.(0) t.(1)
    | Plain | Choice _ ->
      if not (TTbl.mem hrel.data t) then hrel.pending <- t :: hrel.pending
  in
  (* Order: the delta atom first (it drives), then the remaining atoms in
     written order (encodings are written so this order is sensible). *)
  let body = Array.of_list rule.body in
  let order =
    match delta_pos with
    | None -> List.init (Array.length body) Fun.id
    | Some j -> j :: List.filter (fun i -> i <> j) (List.init (Array.length body) Fun.id)
  in
  let rec loop = function
    | [] -> derive ()
    | i :: rest ->
      let source = if delta_pos = Some i then `Delta else `All in
      match_atom ~deadline ~budget env body.(i) source (fun () -> loop rest)
  in
  loop order

let run db ?(max_iters = 10_000) ?(timeout_s = 3600.0) () =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let budget = ref 100_000 in
  let rules = List.rev db.rules in
  let eq_of r = match r.kind with Eq st -> Some st | Plain | Choice _ -> None in
  let rule_mentions_eq rule =
    List.exists
      (function Atom (r, _) | Find (r, _, _) -> eq_of r <> None)
      rule.body
  in
  try
    let iters = ref 0 in
    let continue = ref true in
    let first = ref true in
    (* eq change from the *previous* iteration *)
    let eq_changed_prev = ref false in
    while !continue && !iters < max_iters do
      incr iters;
      if Unix.gettimeofday () > deadline then raise Timed_out;
      List.iter (fun r -> match eq_of r with Some st -> st.eq_changed <- false | None -> ()) db.rels;
      List.iter
        (fun rule ->
          if !first then eval_rule ~deadline ~budget rule ~delta_pos:None
          else begin
            (* semi-naïve: one variant per plain body atom with a nonempty
               delta; plus a full pass when an eqrel the rule reads changed *)
            List.iteri
              (fun i atom ->
                match atom with
                | Atom (r, _) when eq_of r = None && r.delta <> [] ->
                  eval_rule ~deadline ~budget rule ~delta_pos:(Some i)
                | Atom _ | Find _ -> ())
              rule.body;
            if !eq_changed_prev && rule_mentions_eq rule then
              eval_rule ~deadline ~budget rule ~delta_pos:None
          end)
        rules;
      first := false;
      (* promote pending tuples *)
      let changed = ref false in
      List.iter
        (fun r ->
          r.delta <- [];
          List.iter
            (fun t ->
              let before = TTbl.length r.data in
              insert_now r t;
              if TTbl.length r.data > before then changed := true)
            (List.rev r.pending);
          r.pending <- [])
        db.rels;
      eq_changed_prev :=
        List.exists (fun r -> match eq_of r with Some st -> st.eq_changed | None -> false) db.rels;
      if !eq_changed_prev then changed := true;
      if not !changed then continue := false
    done;
    Fixpoint !iters
  with Timed_out -> Timeout

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let size _db r =
  match r.kind with
  | Plain | Choice _ -> TTbl.length r.data
  | Eq st ->
    Hashtbl.fold (fun _root ms acc -> acc + (List.length ms * List.length ms)) st.members 0

let mem _db r t =
  match r.kind with
  | Plain | Choice _ -> TTbl.mem r.data t
  | Eq st -> Array.length t = 2 && eq_equiv st t.(0) t.(1)

let iter _db r f =
  match r.kind with
  | Plain | Choice _ -> TTbl.iter (fun t () -> f t) r.data
  | Eq _ -> invalid_arg "iter: eqrel"

let classes _db r =
  match r.kind with
  | Eq st -> Hashtbl.fold (fun _root ms acc -> ms :: acc) st.members []
  | Plain | Choice _ -> invalid_arg "classes: not an eqrel"
