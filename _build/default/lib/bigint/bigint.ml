(* Sign-magnitude bignums over base-2^30 limbs (little-endian int arrays,
   no trailing zero limb; zero is the empty array with sign 0). Limbs fit
   in 30 bits so a limb product fits in OCaml's 63-bit native int. *)

let base_bits = 30
let base = 1 lsl base_bits
let limb_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let check_invariant x =
  let n = Array.length x.mag in
  (if x.sign = 0 then n = 0 else n > 0 && x.mag.(n - 1) <> 0)
  && Array.for_all (fun l -> 0 <= l && l < base) x.mag

let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

(* Magnitude of a strictly positive native int. *)
let mag_of_pos m =
  let rec limbs acc m = if m = 0 then acc else limbs ((m land limb_mask) :: acc) (m lsr base_bits) in
  Array.of_list (List.rev (limbs [] m))

let of_int n =
  if n = 0 then zero
  else if n > 0 then normalize 1 (mag_of_pos n)
  else if n > min_int then normalize (-1) (mag_of_pos (-n))
  else begin
    (* |min_int| = max_int + 1 is not a representable positive int. *)
    let mag = mag_of_pos max_int in
    let carry = ref 1 in
    let mag = Array.append mag [| 0 |] in
    Array.iteri
      (fun i l ->
        let s = l + !carry in
        mag.(i) <- s land limb_mask;
        carry := s lsr base_bits)
      mag;
    normalize (-1) mag
  end

let one = of_int 1
let minus_one = of_int (-1)
let is_zero x = x.sign = 0
let sign x = x.sign
let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x
let is_even x = x.sign = 0 || x.mag.(0) land 1 = 0

(* Magnitude comparison: |a| vs |b|. *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0

let hash x =
  let h = ref (x.sign + 0x9e3779b9) in
  Array.iter (fun l -> h := (!h * 31) lxor l) x.mag;
  !h land max_int

(* |a| + |b| *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr base_bits
  done;
  assert (!carry = 0);
  r

(* |a| - |b|, requires |a| >= |b| *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else begin
    match cmp_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sign (sub_mag a.mag b.mag)
    | _ -> normalize b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else begin
    let la = Array.length a.mag and lb = Array.length b.mag in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.mag.(i) in
      for j = 0 to lb - 1 do
        let p = (ai * b.mag.(j)) + r.(i + j) + !carry in
        r.(i + j) <- p land limb_mask;
        carry := p lsr base_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    normalize (a.sign * b.sign) r
  end

let shift_left x k =
  if x.sign = 0 || k = 0 then x
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length x.mag in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = x.mag.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land limb_mask);
      r.(i + limb_shift + 1) <- v lsr base_bits
    done;
    normalize x.sign r
  end

let num_bits_mag mag =
  let n = Array.length mag in
  if n = 0 then 0
  else begin
    let top = mag.(n - 1) in
    let rec width w v = if v = 0 then w else width (w + 1) (v lsr 1) in
    ((n - 1) * base_bits) + width 0 top
  end

let nth_bit mag i =
  let limb = i / base_bits and off = i mod base_bits in
  if limb >= Array.length mag then 0 else (mag.(limb) lsr off) land 1

(* Fast path: magnitude divided by a single limb. *)
let divmod_limb mag d =
  let n = Array.length mag in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl base_bits) lor mag.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

(* Binary long division on magnitudes: returns (q, r) with |a| = q*|b| + r.
   O(bits(a) * limbs(b)); fine at the sizes exact rationals reach here. *)
let divmod_mag a b =
  let bits = num_bits_mag a in
  let q = Array.make (Array.length a) 0 in
  let r = ref [||] in
  (* r := 2r + bit, as a mutable small magnitude *)
  for i = bits - 1 downto 0 do
    let shifted = (normalize 1 (Array.copy !r)) in
    let doubled = shift_left shifted 1 in
    let bit = nth_bit a i in
    let next =
      if bit = 1 then add_mag doubled.mag [| 1 |]
      else if doubled.sign = 0 then [||]
      else doubled.mag
    in
    let next = (normalize 1 next).mag in
    if cmp_mag next b >= 0 then begin
      r := sub_mag next b;
      r := (normalize 1 !r).mag;
      q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
    end
    else r := next
  done;
  (q, !r)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else if cmp_mag a.mag b.mag < 0 then (zero, a)
  else begin
    let qmag, rmag =
      if Array.length b.mag = 1 then begin
        let q, r = divmod_limb a.mag b.mag.(0) in
        (q, if r = 0 then [||] else [| r |])
      end
      else divmod_mag a.mag b.mag
    in
    let q = normalize (a.sign * b.sign) qmag in
    let r = normalize a.sign rmag in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

(* Halve a magnitude in place-ish (fresh array). *)
let half_mag mag =
  let n = Array.length mag in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = n - 1 downto 0 do
    let v = (mag.(i) lor (!carry lsl base_bits)) in
    r.(i) <- v lsr 1;
    carry := v land 1
  done;
  r

let half x = if x.sign = 0 then x else normalize x.sign (half_mag x.mag)

(* Stein's binary gcd: subtraction and halving only — much faster than
   Euclid here because our long division is bit-by-bit. *)
let gcd a b =
  let a = abs a and b = abs b in
  if is_zero a then b
  else if is_zero b then a
  else begin
    let shift = ref 0 in
    let a = ref a and b = ref b in
    while is_even !a && is_even !b do
      a := half !a;
      b := half !b;
      incr shift
    done;
    while is_even !a do
      a := half !a
    done;
    (* invariant: a odd *)
    while not (is_zero !b) do
      while is_even !b do
        b := half !b
      done;
      if cmp_mag !a.mag !b.mag > 0 then begin
        let t = !a in
        a := !b;
        b := t
      end;
      b := sub !b !a
    done;
    shift_left !a !shift
  end

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc base n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc base) (mul base base) (n lsr 1)
    else go acc (mul base base) (n lsr 1)
  in
  go one x n

let to_int x =
  (* Accumulate on the negative side so min_int round-trips. *)
  let rec go acc i =
    if i < 0 then Some acc
    else begin
      let shifted = acc * base in
      if shifted / base <> acc then None
      else begin
        let v = shifted - x.mag.(i) in
        if v > shifted then None else go v (i - 1)
      end
    end
  in
  match go 0 (Array.length x.mag - 1) with
  | None -> None
  | Some negv -> if x.sign >= 0 then (if negv = min_int then None else Some (-negv)) else Some negv

let to_float x =
  let f = Array.fold_right (fun limb acc -> (acc *. 1073741824.0) +. float_of_int limb) x.mag 0.0 in
  if x.sign < 0 then -.f else f

let chunk_base = 1_000_000_000 (* < 2^30, so it is a valid single limb *)

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let chunk = ref 0 and chunk_len = ref 0 in
  let flush () =
    if !chunk_len > 0 then begin
      let scale = int_of_float (10.0 ** float_of_int !chunk_len) in
      acc := add (mul !acc (of_int scale)) (of_int !chunk);
      chunk := 0;
      chunk_len := 0
    end
  in
  for i = start to len - 1 do
    match s.[i] with
    | '0' .. '9' ->
      chunk := (!chunk * 10) + (Char.code s.[i] - Char.code '0');
      incr chunk_len;
      if !chunk_len = 9 then flush ()
    | c -> invalid_arg (Printf.sprintf "Bigint.of_string: bad character %C" c)
  done;
  flush ();
  if negative then neg !acc else !acc

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go mag =
      let q, r = divmod_limb mag chunk_base in
      let q = (normalize 1 q).mag in
      if Array.length q = 0 then Buffer.add_string buf (string_of_int r)
      else begin
        go q;
        Buffer.add_string buf (Printf.sprintf "%09d" r)
      end
    in
    go x.mag;
    (if x.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

let pp fmt x = Format.pp_print_string fmt (to_string x)

let () = ignore check_invariant
