(** Arbitrary-precision signed integers.

    Sign-magnitude representation over base-[2^30] limbs. Implemented in-repo
    because the sealed environment has no zarith; egglog's [Rational] base
    type (and the interval analysis of the Herbie case study) needs exact,
    overflow-free arithmetic. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val to_int : t -> int option
(** [to_int x] is [Some n] when [x] fits in a native [int]. *)

val of_string : string -> t
(** Parse an optionally ['-']-prefixed decimal numeral.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val sign : t -> int
(** [-1], [0] or [1]. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Truncated division: [divmod a b = (q, r)] with [a = q*b + r],
    [|r| < |b|] and [r] carrying the sign of [a].
    @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Non-negative greatest common divisor; [gcd zero zero = zero]. *)

val pow : t -> int -> t
(** [pow x n] for [n >= 0]. @raise Invalid_argument on negative exponent. *)

val shift_left : t -> int -> t
val is_zero : t -> bool
val is_even : t -> bool

val to_float : t -> float
(** Nearest-double approximation (may overflow to infinity). *)

val pp : Format.formatter -> t -> unit
