(* Runtime declarations of egglog functions: signature plus the merge and
   default behaviours of §3.2-§3.4. *)

type merge =
  | Merge_union  (* sort output: union the conflicting ids (congruence) *)
  | Merge_expr of Ast.expr  (* evaluate with [old]/[new] bound *)
  | Merge_panic  (* base-type output without :merge *)

type default =
  | Default_fresh  (* sort output: make-set, the "get or make-set" of §3.3 *)
  | Default_expr of Ast.expr
  | Default_panic  (* base types crash on lookup of an undefined entry *)

type func = {
  name : Symbol.t;
  arg_tys : Ty.t array;
  ret_ty : Ty.t;
  merge : merge;
  default : default;
  cost : int;  (* extraction cost of one application node *)
  is_relation : bool;  (* declared with (relation ...): printed without |-> *)
}

let arity f = Array.length f.arg_tys
