type t = int

let table : (string, int) Hashtbl.t = Hashtbl.create 256
let names : string ref array ref = ref (Array.init 256 (fun _ -> ref ""))
let count = ref 0

let intern s =
  match Hashtbl.find_opt table s with
  | Some i -> i
  | None ->
    let i = !count in
    incr count;
    if i >= Array.length !names then begin
      let bigger = Array.init (2 * Array.length !names) (fun _ -> ref "") in
      Array.blit !names 0 bigger 0 i;
      names := bigger
    end;
    !names.(i) := s;
    Hashtbl.add table s i;
    i

let name i = !(!names.(i))
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (i : t) = i
let pp fmt i = Format.pp_print_string fmt (name i)
