(** Database snapshots as s-expressions: persist a saturated database and
    reload it into an engine with the same declarations (ids are remapped,
    the equivalence relation and every table row are preserved).

    The snapshot holds only {e data} — sorts of ids, the partition, table
    rows — not declarations or rules; reload into an engine whose schema
    was re-declared (typically by re-running the program's header). *)

val dump : Engine.t -> Sexpr.t
val dump_string : Engine.t -> string

exception Load_error of string

val load : Engine.t -> Sexpr.t -> unit
(** @raise Load_error on malformed input or schema mismatch. *)

val load_string : Engine.t -> string -> unit
