(** Term extraction (§3.4): find the cheapest term represented by an
    e-class. Cost of an application node is the function's [:cost]
    (default 1) plus the costs of its children; interpreted constants are
    free. Computed as a bottom-up fixpoint over all functions whose output
    is an uninterpreted sort. *)

type term = T_app of Symbol.t * term list | T_const of Value.t

val term_to_sexp : term -> Sexpr.t
val pp_term : Format.formatter -> term -> unit

type result = { term : term; cost : int }

val extract : Database.t -> Value.t -> result option
(** [None] when the class contains no extractable term (e.g. a fresh id
    never used as a constructor output). Non-id values extract to
    themselves with cost 0. *)

val candidates : Database.t -> Value.t -> max:int -> term list
(** Distinct representatives of the class: one term per e-node in the
    class (children extracted min-cost), cheapest first, at most [max].
    Used by optimizers that select among equivalent programs by an
    external metric (e.g. the Herbie pipeline's accuracy search). *)
