lib/core/proof_forest.ml: Array Format List Symbol
