lib/core/extract.ml: Array Database Hashtbl List Schema Sexpr Symbol Table Ty Value
