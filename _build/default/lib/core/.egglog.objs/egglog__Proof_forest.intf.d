lib/core/proof_forest.mli: Format Symbol
