lib/core/primitives.ml: Fun Hashtbl Int List Rat String Symbol Ty Value
