lib/core/symbol.ml: Array Format Hashtbl Stdlib
