lib/core/schema.ml: Array Ast Symbol Ty
