lib/core/ast.ml: Format Value
