lib/core/primitives.mli: Ty Value
