lib/core/serialize.ml: Array Database Engine Format Hashtbl List Rat Schema Sexpr Symbol Table Ty Value
