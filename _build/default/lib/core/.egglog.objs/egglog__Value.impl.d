lib/core/value.ml: Array Bool Format Hashtbl Int List Rat Stdlib Symbol Ty
