lib/core/compile.mli: Ast Primitives Schema Ty Value
