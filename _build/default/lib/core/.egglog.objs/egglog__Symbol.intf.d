lib/core/symbol.mli: Format
