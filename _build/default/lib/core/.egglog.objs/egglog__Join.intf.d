lib/core/join.mli: Compile Database Value
