lib/core/frontend.ml: Ast Format List Option Sexpr String Symbol Value
