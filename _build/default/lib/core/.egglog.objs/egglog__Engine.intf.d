lib/core/engine.mli: Ast Database Extract Value
