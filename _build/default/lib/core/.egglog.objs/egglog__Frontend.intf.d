lib/core/frontend.mli: Ast Sexpr
