lib/core/serialize.mli: Engine Sexpr
