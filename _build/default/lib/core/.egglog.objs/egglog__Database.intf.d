lib/core/database.mli: Proof_forest Schema Symbol Table Ty Value
