lib/core/engine.ml: Array Ast Compile Database Extract Format Frontend Fun Hashtbl In_channel Join List Option Primitives Printf Proof_forest Schema Sexpr String Symbol Table Ty Unix Value
