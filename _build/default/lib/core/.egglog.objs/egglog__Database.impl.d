lib/core/database.ml: Array Hashtbl List Printf Proof_forest Schema Symbol Table Ty Union_find Value
