lib/core/value.mli: Format Hashtbl Rat Symbol Ty
