lib/core/ty.ml: Format Stdlib Symbol
