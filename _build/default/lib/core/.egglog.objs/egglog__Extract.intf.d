lib/core/extract.mli: Database Format Sexpr Symbol Value
