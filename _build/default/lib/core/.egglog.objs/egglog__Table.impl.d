lib/core/table.ml: Array Fun Schema Value
