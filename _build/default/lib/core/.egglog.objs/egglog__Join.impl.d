lib/core/join.ml: Array Buffer Compile Database Hashtbl Int List Option Primitives Printf Schema Stdlib String Symbol Table Value
