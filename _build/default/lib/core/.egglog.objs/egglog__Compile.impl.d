lib/core/compile.ml: Array Ast Format Fun Hashtbl List Option Primitives Printf Schema Stdlib Ty Value
