lib/core/table.mli: Schema Value
