lib/core/ty.mli: Format Symbol
