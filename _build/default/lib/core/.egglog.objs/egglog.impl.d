lib/core/egglog.ml: Ast Compile Database Engine Extract Frontend Join Primitives Proof_forest Schema Serialize Symbol Table Ty Value
