(** Globally interned strings. Function names, sort names and string values
    are interned so the hot paths (table keys, trie probes) compare ints. *)

type t = private int

val intern : string -> t
val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
