(** egglog types: base types, user-declared uninterpreted sorts (§3.3), and
    the [Set] container used by the lambda-calculus pearl (Appendix A.2). *)

type t =
  | Unit
  | Bool
  | Int  (** the paper's [i64] base type *)
  | Rational
  | String
  | Sort of Symbol.t  (** user-declared uninterpreted sort *)
  | Set of t  (** canonical finite-set container *)
  | Vec of t  (** ordered container *)

val equal : t -> t -> bool
val compare : t -> t -> int

val is_sort : t -> bool
(** True exactly for values living in the union-find (unifiable). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
