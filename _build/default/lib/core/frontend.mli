(** Textual frontend: s-expressions to {!Ast} commands (the concrete syntax
    of §3). Purely syntactic; name resolution and typing happen in
    {!Compile}/{!Engine}. *)

exception Syntax_error of string

val expr_of_sexp : Sexpr.t -> Ast.expr
val fact_of_sexp : Sexpr.t -> Ast.fact

val command_of_sexp : Sexpr.t -> Ast.command list
(** A single s-expression can desugar to several commands
    (e.g. [birewrite]). *)

val parse_program : string -> Ast.command list
(** @raise Syntax_error or {!Sexpr.Parse_error} on malformed programs. *)
