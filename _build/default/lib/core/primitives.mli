(** Built-in operations over base types (§5.2): i64 and rational arithmetic,
    comparisons-as-guards, and the canonical set container.

    A primitive that "fails" (comparison guard that does not hold, division
    by zero) yields [None]; in a query this filters the match, in an action
    the engine raises. Result typing is demand-driven: [typer] may consult
    the expected result type (needed for e.g. [(set-empty)]). *)

type prim = {
  pname : string;
  typer : args:Ty.t option list -> ret:Ty.t option -> Ty.t option;
      (** Result type given (partially known) argument types and the expected
          result type; [None] when not yet determinable or ill-typed. *)
  impl : Value.t array -> Value.t option;
}

val find : string -> prim option
val is_primitive : string -> bool
val all_names : unit -> string list

val arg_hints : string -> ret:Ty.t option -> nargs:int -> Ty.t option list
(** Expected argument types given the expected result type, used when
    compiling actions bottom-up (e.g. the element type of the sets flowing
    into [set-insert]). Empty list when no hint applies. *)
