(** The egglog engine: declarations, rule storage, the evaluation loop
    ([F_P = R^∞ ∘ T_P^↑] of §4.2, semi-naïve per §4.3 / Algorithm 1),
    rule scheduling, and command execution.

    Construct with {!create}, feed {!Ast.command}s through {!run_command}
    (or use the {!Egglog} facade for textual programs), or drive the typed
    API ({!eval_call}, {!set_fact}, {!union_values}, {!run_iterations})
    directly — the case-study benchmarks use the latter to skip parsing. *)

type scheduler =
  | Simple
  | Backoff of { match_limit : int; ban_length : int }
      (** egg's BackOff scheduler: a rule producing more than
          [match_limit * 2^times_banned] matches is banned for
          [ban_length * 2^times_banned] iterations. *)

val backoff_default : scheduler

type t

val create :
  ?seminaive:bool -> ?scheduler:scheduler -> ?fast_paths:bool -> ?index_caching:bool -> unit -> t
(** [seminaive:false] gives the paper's egglogNI baseline; [fast_paths] and
    [index_caching] exist for the ablation benchmarks. *)

val database : t -> Database.t

exception Egglog_error of string
(** Any user-facing failure: static errors, panics, failed primitives in
    actions, merge conflicts. *)

(** {1 Typed API} *)

val declare_sort : t -> string -> unit
val declare_relation : t -> string -> Ast.tyexpr list -> unit
val declare_function : t -> Ast.function_decl -> unit
val declare_datatype : t -> string -> (string * Ast.tyexpr list) list -> unit
val add_rule : t -> Ast.rule -> unit
val add_rewrite : t -> ?conds:Ast.fact list -> ?ruleset:string -> Ast.expr -> Ast.expr -> unit
val declare_ruleset : t -> string -> unit

val eval_call : t -> string -> Value.t list -> Value.t
(** Get-or-default application (§3.3's "get or make-set"). *)

val set_fact : t -> string -> Value.t list -> Value.t -> unit
val union_values : t -> Value.t -> Value.t -> Value.t
val check_facts : t -> Ast.fact list -> bool
val lookup_fact : t -> string -> Value.t list -> Value.t option
val rebuild : t -> unit

(** {1 Running} *)

type iteration_stat = {
  it_index : int;  (** 1-based *)
  it_seconds : float;
  it_rows : int;  (** total tuples after the iteration *)
  it_classes : int;
  it_changed : bool;
  it_search_seconds : float;
  it_apply_seconds : float;
  it_rebuild_seconds : float;
  it_matches : int;  (** matches applied *)
}

type run_report = {
  iterations : iteration_stat list;  (** in order *)
  saturated : bool;
  total_seconds : float;
}

val run_iterations : ?ruleset:string -> t -> int -> run_report
(** Restrict to one named ruleset when given. *)

(** {1 Commands (the textual language)} *)

val run_command : t -> Ast.command -> string list
(** Execute one command; returns its printed outputs (check results,
    extracted terms, …). *)

val run_program : t -> Ast.command list -> string list

(** {1 Introspection} *)

val total_rows : t -> int
val n_classes : t -> int
val table_size : t -> string -> int
val extract_value : t -> Value.t -> Extract.result option
val extract_candidates : t -> Value.t -> max:int -> Extract.term list
