type prim = {
  pname : string;
  typer : args:Ty.t option list -> ret:Ty.t option -> Ty.t option;
  impl : Value.t array -> Value.t option;
}

let registry : (string, prim) Hashtbl.t = Hashtbl.create 64
let register p = Hashtbl.replace registry p.pname p
let find name = Hashtbl.find_opt registry name
let is_primitive name = Hashtbl.mem registry name
let all_names () = Hashtbl.fold (fun k _ acc -> k :: acc) registry []

(* Downward expectation propagation for container-polymorphic primitives:
   without this, (set-insert (set-empty) x) cannot type its inner call. *)
let arg_hints name ~ret ~nargs =
  let elem = match ret with Some (Ty.Set t) -> Some t | _ -> None in
  let velem = match ret with Some (Ty.Vec t) -> Some t | _ -> None in
  match (name, nargs) with
  | ("set-insert" | "set-remove"), 2 -> [ ret; elem ]
  | ("set-union" | "set-intersect" | "set-diff"), 2 -> [ ret; ret ]
  | "set-singleton", 1 -> [ elem ]
  | "vec-push", 2 -> [ ret; velem ]
  | "vec-append", 2 -> [ ret; ret ]
  | "vec-of", 1 -> [ velem ]
  | ("min" | "max" | "+" | "-" | "*" | "/"), 2 -> [ ret; ret ]
  | "-", 1 | "abs", 1 -> [ ret ]
  | _ -> []

(* ---- typer helpers ---- *)

(* Numeric: all arguments share one numeric type, result is the same. *)
let numeric_typer ~arity ~args ~ret =
  if List.length args <> arity then None
  else begin
    let known = List.filter_map Fun.id args in
    let candidates = (match ret with Some t -> t :: known | None -> known) in
    match candidates with
    | [] -> None
    | t :: rest ->
      if List.for_all (Ty.equal t) rest && (Ty.equal t Ty.Int || Ty.equal t Ty.Rational)
         && List.length known = arity
      then Some t
      else None
  end

(* Numeric comparison guard: two equal numeric args, Unit result. *)
let cmp_typer ~args ~ret:_ =
  match args with
  | [ Some a; Some b ] when Ty.equal a b && (Ty.equal a Ty.Int || Ty.equal a Ty.Rational) ->
    Some Ty.Unit
  | _ -> None

let fixed tys result ~args ~ret:_ =
  if List.length args = List.length tys
     && List.for_all2 (fun got want -> match got with Some t -> Ty.equal t want | None -> false) args tys
  then Some result
  else None

(* ---- impl helpers ---- *)

let int2 f = function
  | [| Value.VInt a; Value.VInt b |] -> f a b
  | _ -> None

let rat2 f = function
  | [| Value.VRat a; Value.VRat b |] -> f a b
  | _ -> None

let num2 ~int ~rat args =
  match int2 int args with Some _ as r -> r | None -> rat2 rat args

let guard b = if b then Some Value.VUnit else None

(* ---- arithmetic ---- *)

let () =
  register
    {
      pname = "+";
      typer = (fun ~args ~ret -> numeric_typer ~arity:2 ~args ~ret);
      impl =
        num2
          ~int:(fun a b -> Some (Value.VInt (a + b)))
          ~rat:(fun a b -> Some (Value.VRat (Rat.add a b)));
    };
  register
    {
      pname = "*";
      typer = (fun ~args ~ret -> numeric_typer ~arity:2 ~args ~ret);
      impl =
        num2
          ~int:(fun a b -> Some (Value.VInt (a * b)))
          ~rat:(fun a b -> Some (Value.VRat (Rat.mul a b)));
    };
  register
    {
      pname = "-";
      typer =
        (fun ~args ~ret ->
          match List.length args with
          | 1 -> numeric_typer ~arity:1 ~args ~ret
          | _ -> numeric_typer ~arity:2 ~args ~ret);
      impl =
        (function
        | [| Value.VInt a |] -> Some (Value.VInt (-a))
        | [| Value.VRat a |] -> Some (Value.VRat (Rat.neg a))
        | [| Value.VInt a; Value.VInt b |] -> Some (Value.VInt (a - b))
        | [| Value.VRat a; Value.VRat b |] -> Some (Value.VRat (Rat.sub a b))
        | _ -> None);
    };
  register
    {
      pname = "/";
      typer = (fun ~args ~ret -> numeric_typer ~arity:2 ~args ~ret);
      impl =
        num2
          ~int:(fun a b -> if b = 0 then None else Some (Value.VInt (a / b)))
          ~rat:(fun a b -> if Rat.sign b = 0 then None else Some (Value.VRat (Rat.div a b)));
    };
  register
    {
      pname = "%";
      typer = (fun ~args ~ret -> fixed [ Ty.Int; Ty.Int ] Ty.Int ~args ~ret);
      impl = int2 (fun a b -> if b = 0 then None else Some (Value.VInt (a mod b)));
    };
  register
    {
      pname = "<<";
      typer = (fun ~args ~ret -> fixed [ Ty.Int; Ty.Int ] Ty.Int ~args ~ret);
      impl = int2 (fun a b -> if b < 0 || b > 62 then None else Some (Value.VInt (a lsl b)));
    };
  register
    {
      pname = ">>";
      typer = (fun ~args ~ret -> fixed [ Ty.Int; Ty.Int ] Ty.Int ~args ~ret);
      impl = int2 (fun a b -> if b < 0 || b > 62 then None else Some (Value.VInt (a asr b)));
    };
  register
    {
      pname = "min";
      typer = (fun ~args ~ret -> numeric_typer ~arity:2 ~args ~ret);
      impl =
        num2
          ~int:(fun a b -> Some (Value.VInt (min a b)))
          ~rat:(fun a b -> Some (Value.VRat (Rat.min a b)));
    };
  register
    {
      pname = "max";
      typer = (fun ~args ~ret -> numeric_typer ~arity:2 ~args ~ret);
      impl =
        num2
          ~int:(fun a b -> Some (Value.VInt (max a b)))
          ~rat:(fun a b -> Some (Value.VRat (Rat.max a b)));
    };
  register
    {
      pname = "abs";
      typer = (fun ~args ~ret -> numeric_typer ~arity:1 ~args ~ret);
      impl =
        (function
        | [| Value.VInt a |] -> Some (Value.VInt (abs a))
        | [| Value.VRat a |] -> Some (Value.VRat (Rat.abs a))
        | _ -> None);
    };
  register
    {
      pname = "to-rat";
      typer = (fun ~args ~ret -> fixed [ Ty.Int ] Ty.Rational ~args ~ret);
      impl = (function [| Value.VInt a |] -> Some (Value.VRat (Rat.of_int a)) | _ -> None);
    }

(* ---- comparison guards ---- *)

let () =
  let cmp name test =
    register
      {
        pname = name;
        typer = cmp_typer;
        impl =
          (function
          | [| Value.VInt a; Value.VInt b |] -> guard (test (Int.compare a b))
          | [| Value.VRat a; Value.VRat b |] -> guard (test (Rat.compare a b))
          | _ -> None);
      }
  in
  cmp "<" (fun c -> c < 0);
  cmp "<=" (fun c -> c <= 0);
  cmp ">" (fun c -> c > 0);
  cmp ">=" (fun c -> c >= 0);
  register
    {
      pname = "!=";
      typer =
        (fun ~args ~ret:_ ->
          match args with [ Some a; Some b ] when Ty.equal a b -> Some Ty.Unit | _ -> None);
      impl =
        (function [| a; b |] -> guard (not (Value.equal a b)) | _ -> None);
    }

(* ---- booleans ---- *)

let () =
  let bool2 name f =
    register
      {
        pname = name;
        typer = (fun ~args ~ret -> fixed [ Ty.Bool; Ty.Bool ] Ty.Bool ~args ~ret);
        impl =
          (function
          | [| Value.VBool a; Value.VBool b |] -> Some (Value.VBool (f a b))
          | _ -> None);
      }
  in
  bool2 "and" ( && );
  bool2 "or" ( || );
  register
    {
      pname = "not";
      typer = (fun ~args ~ret -> fixed [ Ty.Bool ] Ty.Bool ~args ~ret);
      impl = (function [| Value.VBool a |] -> Some (Value.VBool (not a)) | _ -> None);
    }

(* ---- strings ---- *)

let () =
  register
    {
      pname = "str-cat";
      typer = (fun ~args ~ret -> fixed [ Ty.String; Ty.String ] Ty.String ~args ~ret);
      impl =
        (function
        | [| Value.VStr a; Value.VStr b |] ->
          Some (Value.VStr (Symbol.intern (Symbol.name a ^ Symbol.name b)))
        | _ -> None);
    }

(* ---- sets ---- *)

let set_elem_ty = function Some (Ty.Set t) -> Some t | _ -> None

let () =
  register
    {
      pname = "set-empty";
      typer =
        (fun ~args ~ret ->
          match (args, ret) with [], Some (Ty.Set _ as t) -> Some t | _ -> None);
      impl = (function [||] -> Some (Value.VSet []) | _ -> None);
    };
  register
    {
      pname = "set-singleton";
      typer =
        (fun ~args ~ret ->
          match args with
          | [ Some t ] -> Some (Ty.Set t)
          | [ None ] -> (match set_elem_ty ret with Some _ -> ret | None -> None)
          | _ -> None);
      impl = (function [| x |] -> Some (Value.mk_set [ x ]) | _ -> None);
    };
  register
    {
      pname = "set-insert";
      typer =
        (fun ~args ~ret ->
          match args with
          | [ Some (Ty.Set t); Some u ] when Ty.equal t u -> Some (Ty.Set t)
          | [ Some (Ty.Set t); None ] -> Some (Ty.Set t)
          | [ None; Some t ] -> (
            match ret with Some (Ty.Set u) when Ty.equal t u -> ret | _ -> None)
          | _ -> None);
      impl =
        (function
        | [| Value.VSet xs; x |] -> Some (Value.mk_set (x :: xs))
        | _ -> None);
    };
  let setop name f =
    register
      {
        pname = name;
        typer =
          (fun ~args ~ret ->
            match args with
            | [ Some (Ty.Set t); Some (Ty.Set u) ] when Ty.equal t u -> Some (Ty.Set t)
            | [ Some (Ty.Set t); None ] | [ None; Some (Ty.Set t) ] -> Some (Ty.Set t)
            | [ None; None ] -> (match ret with Some (Ty.Set _) -> ret | _ -> None)
            | _ -> None);
        impl =
          (function
          | [| Value.VSet xs; Value.VSet ys |] -> Some (Value.mk_set (f xs ys))
          | _ -> None);
      }
  in
  setop "set-union" (fun xs ys -> xs @ ys);
  setop "set-intersect" (fun xs ys -> List.filter (fun x -> List.exists (Value.equal x) ys) xs);
  setop "set-diff" (fun xs ys -> List.filter (fun x -> not (List.exists (Value.equal x) ys)) xs);
  register
    {
      pname = "set-remove";
      typer =
        (fun ~args ~ret:_ ->
          match args with
          | [ Some (Ty.Set t); Some u ] when Ty.equal t u -> Some (Ty.Set t)
          | [ Some (Ty.Set t); None ] -> Some (Ty.Set t)
          | _ -> None);
      impl =
        (function
        | [| Value.VSet xs; x |] ->
          Some (Value.VSet (List.filter (fun y -> not (Value.equal x y)) xs))
        | _ -> None);
    };
  let member name want =
    register
      {
        pname = name;
        typer =
          (fun ~args ~ret:_ ->
            match args with
            | [ Some (Ty.Set t); Some u ] when Ty.equal t u -> Some Ty.Unit
            | [ Some (Ty.Set _); None ] | [ None; Some _ ] -> None
            | _ -> None);
        impl =
          (function
          | [| Value.VSet xs; x |] -> guard (List.exists (Value.equal x) xs = want)
          | _ -> None);
      }
  in
  member "set-contains" true;
  member "set-not-contains" false;
  register
    {
      pname = "set-length";
      typer =
        (fun ~args ~ret:_ ->
          match args with [ Some (Ty.Set _) ] -> Some Ty.Int | _ -> None);
      impl = (function [| Value.VSet xs |] -> Some (Value.VInt (List.length xs)) | _ -> None);
    }

(* ---- vecs ---- *)

let vec_elem_ty = function Some (Ty.Vec t) -> Some t | _ -> None

let () =
  register
    {
      pname = "vec-empty";
      typer =
        (fun ~args ~ret ->
          match (args, ret) with [], Some (Ty.Vec _ as t) -> Some t | _ -> None);
      impl = (function [||] -> Some (Value.VVec []) | _ -> None);
    };
  register
    {
      pname = "vec-of";
      typer =
        (fun ~args ~ret ->
          match args with
          | [ Some t ] -> Some (Ty.Vec t)
          | [ None ] -> (match vec_elem_ty ret with Some _ -> ret | None -> None)
          | _ -> None);
      impl = (function [| x |] -> Some (Value.VVec [ x ]) | _ -> None);
    };
  register
    {
      pname = "vec-push";
      typer =
        (fun ~args ~ret ->
          match args with
          | [ Some (Ty.Vec t); Some u ] when Ty.equal t u -> Some (Ty.Vec t)
          | [ Some (Ty.Vec t); None ] -> Some (Ty.Vec t)
          | [ None; Some t ] -> (
            match ret with Some (Ty.Vec u) when Ty.equal t u -> ret | _ -> None)
          | _ -> None);
      impl =
        (function [| Value.VVec xs; x |] -> Some (Value.VVec (xs @ [ x ])) | _ -> None);
    };
  register
    {
      pname = "vec-append";
      typer =
        (fun ~args ~ret ->
          match args with
          | [ Some (Ty.Vec t); Some (Ty.Vec u) ] when Ty.equal t u -> Some (Ty.Vec t)
          | [ Some (Ty.Vec t); None ] | [ None; Some (Ty.Vec t) ] -> Some (Ty.Vec t)
          | [ None; None ] -> (match ret with Some (Ty.Vec _) -> ret | _ -> None)
          | _ -> None);
      impl =
        (function
        | [| Value.VVec xs; Value.VVec ys |] -> Some (Value.VVec (xs @ ys))
        | _ -> None);
    };
  register
    {
      pname = "vec-get";
      typer =
        (fun ~args ~ret:_ ->
          match args with [ Some (Ty.Vec t); Some Ty.Int ] -> Some t | _ -> None);
      impl =
        (function
        | [| Value.VVec xs; Value.VInt i |] -> List.nth_opt xs i
        | _ -> None);
    };
  register
    {
      pname = "vec-length";
      typer =
        (fun ~args ~ret:_ ->
          match args with [ Some (Ty.Vec _) ] -> Some Ty.Int | _ -> None);
      impl = (function [| Value.VVec xs |] -> Some (Value.VInt (List.length xs)) | _ -> None);
    };
  let vec_member name want =
    register
      {
        pname = name;
        typer =
          (fun ~args ~ret:_ ->
            match args with
            | [ Some (Ty.Vec t); Some u ] when Ty.equal t u -> Some Ty.Unit
            | _ -> None);
        impl =
          (function
          | [| Value.VVec xs; x |] -> guard (List.exists (Value.equal x) xs = want)
          | _ -> None);
      }
  in
  vec_member "vec-contains" true;
  vec_member "vec-not-contains" false

(* ---- more strings ---- *)

let () =
  register
    {
      pname = "str-length";
      typer = (fun ~args ~ret -> fixed [ Ty.String ] Ty.Int ~args ~ret);
      impl =
        (function
        | [| Value.VStr s |] -> Some (Value.VInt (String.length (Symbol.name s)))
        | _ -> None);
    };
  register
    {
      pname = "to-string";
      typer =
        (fun ~args ~ret:_ ->
          match args with
          | [ Some (Ty.Int | Ty.Rational | Ty.Bool) ] -> Some Ty.String
          | _ -> None);
      impl =
        (function
        | [| Value.VInt i |] -> Some (Value.VStr (Symbol.intern (string_of_int i)))
        | [| Value.VRat r |] -> Some (Value.VStr (Symbol.intern (Rat.to_string r)))
        | [| Value.VBool b |] -> Some (Value.VStr (Symbol.intern (string_of_bool b)))
        | _ -> None);
    };
  register
    {
      pname = "str-lt";
      typer = (fun ~args ~ret -> fixed [ Ty.String; Ty.String ] Ty.Unit ~args ~ret);
      impl =
        (function
        | [| Value.VStr a; Value.VStr b |] ->
          guard (String.compare (Symbol.name a) (Symbol.name b) < 0)
        | _ -> None);
    }
