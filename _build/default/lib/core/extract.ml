type term = T_app of Symbol.t * term list | T_const of Value.t

let rec term_to_sexp = function
  | T_const (Value.VInt i) -> Sexpr.Int i
  | T_const (Value.VRat r) -> Sexpr.Rational r
  | T_const (Value.VStr s) -> Sexpr.String (Symbol.name s)
  | T_const v -> Sexpr.Atom (Value.to_string v)
  | T_app (f, []) -> Sexpr.List [ Sexpr.Atom (Symbol.name f) ]
  | T_app (f, args) -> Sexpr.List (Sexpr.Atom (Symbol.name f) :: List.map term_to_sexp args)

let pp_term fmt t = Sexpr.pp fmt (term_to_sexp t)

type result = { term : term; cost : int }

(* Best-known construction of each e-class: cost, constructor, arguments. *)
type best = { b_cost : int; b_func : Schema.func; b_key : Value.t array }

let compute_best db =
  let best : (int, best) Hashtbl.t = Hashtbl.create 256 in
  let cost_of_value v =
    match v with
    | Value.VId id -> (
      match Hashtbl.find_opt best id with Some b -> Some b.b_cost | None -> None)
    | Value.VUnit | Value.VBool _ | Value.VInt _ | Value.VRat _ | Value.VStr _ | Value.VSet _
    | Value.VVec _ ->
      Some 0
  in
  let progress = ref true in
  while !progress do
    progress := false;
    Database.iter_tables db (fun table ->
        let func = Table.func table in
        if Ty.is_sort func.Schema.ret_ty then
          Table.iter
            (fun key row ->
              match row.Table.value with
              | Value.VId out_id ->
                let rec sum acc i =
                  if i >= Array.length key then Some acc
                  else begin
                    match cost_of_value key.(i) with
                    | None -> None
                    | Some c -> sum (acc + c) (i + 1)
                  end
                in
                (match sum func.Schema.cost 0 with
                 | None -> ()
                 | Some total -> (
                   match Hashtbl.find_opt best out_id with
                   | Some b when b.b_cost <= total -> ()
                   | Some _ | None ->
                     Hashtbl.replace best out_id { b_cost = total; b_func = func; b_key = key };
                     progress := true))
              | Value.VUnit | Value.VBool _ | Value.VInt _ | Value.VRat _ | Value.VStr _
              | Value.VSet _ | Value.VVec _ -> ())
            table)
  done;
  best

let extract db value =
  match Database.canon db value with
  | Value.VId id ->
    let best = compute_best db in
    let rec build v =
      match v with
      | Value.VId id -> (
        match Hashtbl.find_opt best id with
        | None -> None
        | Some b -> (
          let args =
            Array.fold_right
              (fun arg acc ->
                match acc with
                | None -> None
                | Some rest -> (
                  match build arg with Some t -> Some (t :: rest) | None -> None))
              b.b_key (Some [])
          in
          match args with
          | Some args -> Some (T_app (b.b_func.Schema.name, args))
          | None -> None))
      | other -> Some (T_const other)
    in
    (match Hashtbl.find_opt best id with
     | None -> None
     | Some b -> (
       match build (Value.VId id) with
       | Some term -> Some { term; cost = b.b_cost }
       | None -> None))
  | other -> Some { term = T_const other; cost = 0 }

let candidates db value ~max:max_candidates =
  match Database.canon db value with
  | Value.VId id ->
    let best = compute_best db in
    let rec build v =
      match v with
      | Value.VId id -> (
        match Hashtbl.find_opt best id with
        | None -> None
        | Some b -> (
          let args =
            Array.fold_right
              (fun arg acc ->
                match acc with
                | None -> None
                | Some rest -> (
                  match build arg with Some t -> Some (t :: rest) | None -> None))
              b.b_key (Some [])
          in
          match args with
          | Some args -> Some (T_app (b.b_func.Schema.name, args))
          | None -> None))
      | other -> Some (T_const other)
    in
    let acc = ref [] in
    Database.iter_tables db (fun table ->
        let func = Table.func table in
        if Ty.is_sort func.Schema.ret_ty then
          Table.iter
            (fun key row ->
              match Database.canon db row.Table.value with
              | Value.VId out when out = id -> (
                let args =
                  Array.fold_right
                    (fun arg rest ->
                      match rest with
                      | None -> None
                      | Some rest -> (
                        match build (Database.canon db arg) with
                        | Some t -> Some (t :: rest)
                        | None -> None))
                    key (Some [])
                in
                match args with
                | Some args ->
                  let cost =
                    Array.fold_left
                      (fun acc arg ->
                        match Database.canon db arg with
                        | Value.VId cid -> (
                          match Hashtbl.find_opt best cid with
                          | Some b -> acc + b.b_cost
                          | None -> acc)
                        | _ -> acc)
                      func.Schema.cost key
                  in
                  acc := (cost, T_app (func.Schema.name, args)) :: !acc
                | None -> ())
              | _ -> ())
            table);
    let sorted = List.sort (fun (c1, _) (c2, _) -> compare c1 c2) !acc in
    let rec dedupe seen = function
      | [] -> []
      | (_, t) :: rest ->
        if List.mem t seen then dedupe seen rest else t :: dedupe (t :: seen) rest
    in
    let all = dedupe [] sorted in
    let rec take n = function [] -> [] | x :: xs -> if n = 0 then [] else x :: take (n - 1) xs in
    take max_candidates all
  | other -> [ T_const other ]
