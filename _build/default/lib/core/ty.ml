type t = Unit | Bool | Int | Rational | String | Sort of Symbol.t | Set of t | Vec of t

let rec equal a b =
  match (a, b) with
  | Unit, Unit | Bool, Bool | Int, Int | Rational, Rational | String, String -> true
  | Sort s1, Sort s2 -> Symbol.equal s1 s2
  | Set t1, Set t2 -> equal t1 t2
  | Vec t1, Vec t2 -> equal t1 t2
  | (Unit | Bool | Int | Rational | String | Sort _ | Set _ | Vec _), _ -> false

let rec compare a b =
  let rank = function
    | Unit -> 0
    | Bool -> 1
    | Int -> 2
    | Rational -> 3
    | String -> 4
    | Sort _ -> 5
    | Set _ -> 6
    | Vec _ -> 7
  in
  match (a, b) with
  | Sort s1, Sort s2 -> Symbol.compare s1 s2
  | Set t1, Set t2 -> compare t1 t2
  | Vec t1, Vec t2 -> compare t1 t2
  | _ -> Stdlib.compare (rank a) (rank b)

let is_sort = function
  | Sort _ -> true
  | Unit | Bool | Int | Rational | String | Set _ | Vec _ -> false

let rec to_string = function
  | Unit -> "Unit"
  | Bool -> "bool"
  | Int -> "i64"
  | Rational -> "Rational"
  | String -> "String"
  | Sort s -> Symbol.name s
  | Set t -> "(Set " ^ to_string t ^ ")"
  | Vec t -> "(Vec " ^ to_string t ^ ")"

let pp fmt t = Format.pp_print_string fmt (to_string t)
