(** S-expressions: the concrete syntax of the egglog language (§3).

    Atoms distinguish symbols, string literals, integers and rationals at
    the lexical level so the frontend does not need to re-parse numerals. *)

type t =
  | Atom of string  (** bare symbol, including keywords like [:merge] *)
  | String of string  (** double-quoted literal, unescaped *)
  | Int of int
  | Rational of Rat.t  (** [n/d] or decimal [i.f] numerals *)
  | List of t list

exception Parse_error of { line : int; col : int; message : string }

val parse_string : string -> t list
(** All toplevel s-expressions in the input. Comments run from [;] to end of
    line. @raise Parse_error on malformed input. *)

val parse_one : string -> t
(** Exactly one toplevel expression. @raise Parse_error otherwise. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
