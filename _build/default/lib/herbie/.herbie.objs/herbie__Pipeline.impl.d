lib/herbie/pipeline.ml: Egglog Error Float Fpexpr List Printf Rules Suite Unix
