lib/herbie/rules.ml: Bigint Egglog Fpexpr List Printf Rat String
