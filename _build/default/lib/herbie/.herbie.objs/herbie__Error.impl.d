lib/herbie/error.ml: Dd Float Fpexpr Int64 List Random
