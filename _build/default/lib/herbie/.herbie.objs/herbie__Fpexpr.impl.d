lib/herbie/fpexpr.ml: Bigint Dd Float List Printf Rat
