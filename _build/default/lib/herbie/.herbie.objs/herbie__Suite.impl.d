lib/herbie/suite.ml: Fpexpr List
