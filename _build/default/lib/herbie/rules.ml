(* Rewrite rules and analyses for the Herbie case study (§6.2).

   Two rulesets over the same [M] datatype:
   - [unsound]: Herbie's classic ruleset — aggressive rewrites with no
     guards (x/x -> 1, sqrt(x^2) -> x, the difference-of-cubes rule of
     Fig. 9b, …). Saturation can derive false equalities; the pipeline
     must validate results by sampling and discard them, as Herbie does.
   - [sound]: the same aggressive rewrites, but guarded by egglog-resident
     analyses: an interval analysis ([lo]/[hi] with max/min merges, Fig. 10)
     and a not-equals analysis ([neq]) derived from intervals and from
     injectivity facts — the paper's two cooperating analyses. *)

let datatype =
  {|
  (datatype M
    (RNum Rational)
    (RVar String)
    (RAdd M M)
    (RSub M M)
    (RMul M M)
    (RDiv M M)
    (RNeg M)
    (RSqrt M)
    (RCbrt M)
    (RFma M M M))
  |}

(* Rules sound without any analysis (equal as real functions wherever the
   left-hand side is defined). *)
let base_rules =
  {|
  (rewrite (RAdd a b) (RAdd b a))
  (rewrite (RMul a b) (RMul b a))
  (rewrite (RAdd (RAdd a b) c) (RAdd a (RAdd b c)))
  (rewrite (RMul (RMul a b) c) (RMul a (RMul b c)))
  (rewrite (RSub a b) (RAdd a (RNeg b)))
  (rewrite (RAdd a (RNeg b)) (RSub a b))
  (rewrite (RNeg (RNeg a)) a)
  (rewrite (RNeg (RSub a b)) (RSub b a))
  (rewrite (RMul a (RAdd b c)) (RAdd (RMul a b) (RMul a c)))
  (rewrite (RAdd (RMul a b) (RMul a c)) (RMul a (RAdd b c)))
  (rewrite (RSub (RMul a b) (RMul a c)) (RMul a (RSub b c)))
  (rewrite (RAdd (RMul a b) c) (RFma a b c))
  (rewrite (RFma a b c) (RAdd (RMul a b) c))
  (rewrite (RAdd a (RNum 0/1)) a)
  (rewrite (RMul a (RNum 1/1)) a)
  (rewrite (RMul a (RNum 0/1)) (RNum 0/1))
  (rewrite (RDiv a (RNum 1/1)) a)
  (rewrite (RSub a a) (RNum 0/1))
  (rewrite (RSub (RAdd a b) a) b)
  (rewrite (RSub (RAdd a b) b) a)
  (rewrite (RSub (RSub p q) p) (RNeg q))
  (rewrite (RAdd (RNeg b) c) (RSub c b))
  ;; constant folding (exact rationals)
  (rewrite (RAdd (RNum x) (RNum y)) (RNum (+ x y)))
  (rewrite (RSub (RNum x) (RNum y)) (RNum (- x y)))
  (rewrite (RMul (RNum x) (RNum y)) (RNum (* x y)))
  (rewrite (RNeg (RNum x)) (RNum (- x)))
  (rewrite (RDiv (RNum x) (RNum y)) (RNum (/ x y)) :when ((!= y 0/1)))
  ;; roots
  (rewrite (RMul (RSqrt x) (RSqrt x)) x)
  (rewrite (RMul (RCbrt x) (RMul (RCbrt x) (RCbrt x))) x)
  (rewrite (RCbrt (RMul x (RMul x x))) x)
  ;; (x+y)(x-y) = x^2 - y^2
  (rewrite (RMul (RAdd x y) (RSub x y)) (RSub (RMul x x) (RMul y y)))
  (rewrite (RSub (RMul x x) (RMul y y)) (RMul (RAdd x y) (RSub x y)))
  |}

(* The aggressive rewrites. [guard] interpolates a :when clause (sound
   mode) or nothing (unsound mode). *)
let risky_rules ~guarded =
  let w conds = if guarded then Printf.sprintf " :when (%s)" conds else "" in
  String.concat "\n"
    [
      (* x/x -> 1 (needs x != 0) *)
      Printf.sprintf "(rewrite (RDiv x x) (RNum 1/1)%s)" (w "(nonzero x)");
      (* (a*b)/b -> a (needs b != 0) *)
      Printf.sprintf "(rewrite (RDiv (RMul a b) b) a%s)" (w "(nonzero b)");
      (* Fig. 9a: (a*b)/c -> a/(c/b) (needs b != 0) *)
      Printf.sprintf "(rewrite (RDiv (RMul a b) c) (RDiv a (RDiv c b))%s)" (w "(nonzero b)");
      (* sqrt(x^2) -> x (needs x >= 0) *)
      Printf.sprintf "(rewrite (RSqrt (RMul x x)) x%s)" (w "(nonneg x)");
      (* sqrt cancellation: sqrt p - sqrt q -> (p-q)/(sqrt p + sqrt q)
         (needs p > 0 so the denominator is nonzero) *)
      Printf.sprintf
        "(rewrite (RSub (RSqrt p) (RSqrt q)) (RDiv (RSub p q) (RAdd (RSqrt p) (RSqrt q)))%s)"
        (w "(pos p)");
      (* combine fractions (needs both denominators nonzero) *)
      Printf.sprintf
        "(rewrite (RSub (RDiv p a) (RDiv q b)) (RDiv (RSub (RMul p b) (RMul q a)) (RMul a b))%s)"
        (w "(nonzero a) (nonzero b)");
      (* conjugate: sqrt d - b -> (d - b^2)/(sqrt d + b) (needs b > 0) *)
      Printf.sprintf
        "(rewrite (RSub (RSqrt d) b) (RDiv (RSub d (RMul b b)) (RAdd (RSqrt d) b))%s)"
        (w "(pos b)");
      (* Fig. 9b: difference of cubes (needs x != y, hence not both zero) *)
      Printf.sprintf
        "(rewrite (RSub x y) (RDiv (RSub (RMul x (RMul x x)) (RMul y (RMul y y))) (RAdd (RMul x x) (RAdd (RMul x y) (RMul y y))))%s)"
        (w "(neq x y)");
    ]

(* Interval analysis (Fig. 10) and the not-equals analysis built on it. *)
let analyses =
  {|
  (function lo (M) Rational :merge (max old new))
  (function hi (M) Rational :merge (min old new))
  (relation nonzero (M))
  (relation nonneg (M))
  (relation pos (M))
  (relation neq (M M))

  ;; constants are their own bounds
  (rule ((= e (RNum n))) ((set (lo e) n) (set (hi e) n)))
  ;; addition
  (rule ((= e (RAdd a b)) (= (lo a) la) (= (lo b) lb)) ((set (lo e) (+ la lb))))
  (rule ((= e (RAdd a b)) (= (hi a) ha) (= (hi b) hb)) ((set (hi e) (+ ha hb))))
  ;; subtraction
  (rule ((= e (RSub a b)) (= (lo a) la) (= (hi b) hb)) ((set (lo e) (- la hb))))
  (rule ((= e (RSub a b)) (= (hi a) ha) (= (lo b) lb)) ((set (hi e) (- ha lb))))
  ;; negation
  (rule ((= e (RNeg a)) (= (hi a) ha)) ((set (lo e) (- ha))))
  (rule ((= e (RNeg a)) (= (lo a) la)) ((set (hi e) (- la))))
  ;; multiplication: min/max over the corner products. Bounds past 1e30
  ;; are not propagated (sound widening) or repeated interval products
  ;; would grow rationals with exponentially many digits.
  (rule ((= e (RMul a b)) (= (lo a) la) (= (hi a) ha) (= (lo b) lb) (= (hi b) hb)
         (<= (abs la) 1000000000000000000000000000000/1)
         (<= (abs ha) 1000000000000000000000000000000/1)
         (<= (abs lb) 1000000000000000000000000000000/1)
         (<= (abs hb) 1000000000000000000000000000000/1))
        ((set (lo e) (min (min (* la lb) (* la hb)) (min (* ha lb) (* ha hb))))
         (set (hi e) (max (max (* la lb) (* la hb)) (max (* ha lb) (* ha hb))))))
  ;; division with a strictly positive divisor (same widening)
  (rule ((= e (RDiv a b)) (= (lo a) la) (= (hi a) ha) (= (lo b) lb) (= (hi b) hb) (> lb 0/1)
         (<= (abs la) 1000000000000000000000000000000/1)
         (<= (abs ha) 1000000000000000000000000000000/1)
         (<= (abs hb) 1000000000000000000000000000000/1))
        ((set (lo e) (min (min (/ la lb) (/ la hb)) (min (/ ha lb) (/ ha hb))))
         (set (hi e) (max (max (/ la lb) (/ la hb)) (max (/ ha lb) (/ ha hb))))))
  ;; square roots are nonnegative (Fig. 10), and bounded by max(1, x)
  (rule ((= e (RSqrt x))) ((set (lo e) 0/1)))
  (rule ((= e (RSqrt x)) (= (lo x) lx) (>= lx 1/1)) ((set (lo e) 1/1)))
  (rule ((= e (RSqrt x)) (= (hi x) hx) (>= hx 1/1)) ((set (hi e) hx)))
  (rule ((= e (RSqrt x)) (= (hi x) hx) (<= hx 1/1) (>= hx 0/1)) ((set (hi e) 1/1)))
  ;; cube roots preserve sign and are bounded by max(1, |x|)
  (rule ((= e (RCbrt x)) (= (lo x) lx) (>= lx 0/1)) ((set (lo e) 0/1)))
  (rule ((= e (RCbrt x)) (= (lo x) lx) (>= lx 1/1)) ((set (lo e) 1/1)))
  (rule ((= e (RCbrt x)) (= (hi x) hx) (>= hx 1/1)) ((set (hi e) hx)))
  (rule ((= e (RCbrt x)) (= (hi x) hx) (<= hx 0/1)) ((set (hi e) 0/1)))

  ;; sign facts from intervals
  (rule ((= (lo e) l) (> l 0/1)) ((nonzero e) (pos e) (nonneg e)))
  (rule ((= (lo e) l) (>= l 0/1)) ((nonneg e)))
  (rule ((= (hi e) h) (< h 0/1)) ((nonzero e)))

  ;; not-equals from disjoint intervals
  (rule ((= (lo a) la) (= (hi b) hb) (> la hb)) ((neq a b) (neq b a)))
  ;; syntactic offset: x + c != x for c != 0
  (rule ((= e (RAdd x (RNum c))) (!= c 0/1)) ((neq e x) (neq x e)))
  ;; injectivity (the paper's a != b  =>  root a != root b), on demand
  (rule ((neq a b) (= ca (RCbrt a)) (= cb (RCbrt b))) ((neq ca cb)))
  (rule ((neq a b) (nonneg a) (nonneg b) (= sa (RSqrt a)) (= sb (RSqrt b))) ((neq sa sb)))
  |}

let sound_program () = String.concat "\n" [ datatype; analyses; base_rules; risky_rules ~guarded:true ]
let unsound_program () = String.concat "\n" [ datatype; base_rules; risky_rules ~guarded:false ]

(* ---- expression <-> egglog syntax ---- *)

let rec expr_to_egglog (e : Fpexpr.expr) : string =
  match e with
  | Fpexpr.Num r ->
    (* always print n/d so the token lexes as a Rational, never an i64 *)
    Printf.sprintf "(RNum %s/%s)" (Bigint.to_string (Rat.num r)) (Bigint.to_string (Rat.den r))
  | Fpexpr.Var x -> Printf.sprintf "(RVar \"%s\")" x
  | Fpexpr.Add (a, b) -> Printf.sprintf "(RAdd %s %s)" (expr_to_egglog a) (expr_to_egglog b)
  | Fpexpr.Sub (a, b) -> Printf.sprintf "(RSub %s %s)" (expr_to_egglog a) (expr_to_egglog b)
  | Fpexpr.Mul (a, b) -> Printf.sprintf "(RMul %s %s)" (expr_to_egglog a) (expr_to_egglog b)
  | Fpexpr.Div (a, b) -> Printf.sprintf "(RDiv %s %s)" (expr_to_egglog a) (expr_to_egglog b)
  | Fpexpr.Neg a -> Printf.sprintf "(RNeg %s)" (expr_to_egglog a)
  | Fpexpr.Sqrt a -> Printf.sprintf "(RSqrt %s)" (expr_to_egglog a)
  | Fpexpr.Cbrt a -> Printf.sprintf "(RCbrt %s)" (expr_to_egglog a)
  | Fpexpr.Fma (a, b, c) ->
    Printf.sprintf "(RFma %s %s %s)" (expr_to_egglog a) (expr_to_egglog b) (expr_to_egglog c)

exception Bad_term of string

let rec term_to_expr (t : Egglog.Extract.term) : Fpexpr.expr =
  match t with
  | Egglog.Extract.T_const (Egglog.Value.VRat r) -> Fpexpr.Num r
  | Egglog.Extract.T_const (Egglog.Value.VStr s) -> Fpexpr.Var (Egglog.Symbol.name s)
  | Egglog.Extract.T_const v -> raise (Bad_term (Egglog.Value.to_string v))
  | Egglog.Extract.T_app (f, args) -> (
    match (Egglog.Symbol.name f, List.map term_to_expr args) with
    | "RNum", [ Fpexpr.Num _ as n ] -> n
    | "RVar", [ Fpexpr.Var _ as v ] -> v
    | "RAdd", [ a; b ] -> Fpexpr.Add (a, b)
    | "RSub", [ a; b ] -> Fpexpr.Sub (a, b)
    | "RMul", [ a; b ] -> Fpexpr.Mul (a, b)
    | "RDiv", [ a; b ] -> Fpexpr.Div (a, b)
    | "RNeg", [ a ] -> Fpexpr.Neg a
    | "RSqrt", [ a ] -> Fpexpr.Sqrt a
    | "RCbrt", [ a ] -> Fpexpr.Cbrt a
    | "RFma", [ a; b; c ] -> Fpexpr.Fma (a, b, c)
    | name, _ -> raise (Bad_term name))

(* Variable range facts for the sound mode's interval analysis. *)
let range_facts (ranges : (string * float * float) list) : string =
  ranges
  |> List.map (fun (x, lo, hi) ->
         let rat f =
           let r = Rat.of_float f in
           Printf.sprintf "%s/%s" (Bigint.to_string (Rat.num r)) (Bigint.to_string (Rat.den r))
         in
         Printf.sprintf "(set (lo (RVar \"%s\")) %s)\n(set (hi (RVar \"%s\")) %s)" x (rat lo) x
           (rat hi))
  |> String.concat "\n"
