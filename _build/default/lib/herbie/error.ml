(* Herbie's accuracy metric: average bits of error over sampled points.
   The error at one point is log2 of the distance, in representable
   doubles (ULPs, via the ordinal encoding), between the double-precision
   result and the correctly-rounded true result (double-double oracle). *)

(* Monotone ordinal encoding of doubles: ordering floats = ordering ints. *)
let ordinal (f : float) : int64 =
  let bits = Int64.bits_of_float f in
  if Int64.compare bits 0L < 0 then Int64.sub Int64.min_int bits else bits

let ulps_between a b =
  let oa = ordinal a and ob = ordinal b in
  Int64.to_float (Int64.abs (Int64.sub oa ob))

let bits_at_point ~approx ~exact =
  if Float.is_nan exact || Float.is_nan approx then
    if Float.is_nan exact = Float.is_nan approx then 0.0 else 64.0
  else if exact = approx then 0.0
  else begin
    let ulps = ulps_between approx exact in
    Float.min 64.0 (Float.log2 (1.0 +. ulps))
  end

type spec = { ranges : (string * float * float) list; n_samples : int; seed : int }

let default_spec ranges = { ranges; n_samples = 256; seed = 1 }

(* Log-uniform sampling within a same-sign [lo, hi] interval, the usual
   way to cover many binades as Herbie's sampler does. *)
let sample_same_sign rand lo hi =
  if lo >= 0.0 then begin
    let llo = Float.log (Float.max lo 1e-300) and lhi = Float.log (Float.max hi 1e-300) in
    Float.exp (llo +. Random.State.float rand (Float.max 0.0 (lhi -. llo)))
  end
  else begin
    let llo = Float.log (Float.max (-.hi) 1e-300) and lhi = Float.log (Float.max (-.lo) 1e-300) in
    -.Float.exp (llo +. Random.State.float rand (Float.max 0.0 (lhi -. llo)))
  end

let sample_value_fix rand lo hi =
  if lo >= 0.0 || hi <= 0.0 then sample_same_sign rand lo hi
  else if Random.State.bool rand then sample_same_sign rand 1e-12 hi
  else sample_same_sign rand lo (-1e-12)

let points (spec : spec) : (string -> float) list =
  let rand = Random.State.make [| spec.seed |] in
  List.init spec.n_samples (fun _ ->
      let assignment =
        List.map (fun (x, lo, hi) -> (x, sample_value_fix rand lo hi)) spec.ranges
      in
      fun x -> List.assoc x assignment)

(* Average bits of error of [e] over the spec's sample points. Points where
   the true result is not finite are skipped (outside the benchmark's
   domain), as Herbie does. *)
let avg_bits (spec : spec) (e : Fpexpr.expr) : float =
  let total = ref 0.0 and n = ref 0 in
  List.iter
    (fun env ->
      let exact_dd = Fpexpr.eval_dd env e in
      if Dd.is_finite exact_dd && not (Dd.is_nan exact_dd) then begin
        let exact = Dd.to_float exact_dd in
        let approx = Fpexpr.eval_double env e in
        total := !total +. bits_at_point ~approx ~exact;
        incr n
      end)
    (points spec);
  if !n = 0 then 0.0 else !total /. float_of_int !n

(* Are two expressions equal as real functions on the sampled domain?
   Used to detect unsound rewrites, Herbie-style. *)
let equivalent_on (spec : spec) (a : Fpexpr.expr) (b : Fpexpr.expr) : bool =
  List.for_all
    (fun env ->
      let va = Fpexpr.eval_dd env a and vb = Fpexpr.eval_dd env b in
      let fa = Dd.to_float va and fb = Dd.to_float vb in
      if Float.is_nan fa || Float.is_nan fb then Float.is_nan fa = Float.is_nan fb
      else if fa = fb then true
      else begin
        let denom = Float.max (Float.abs fa) (Float.abs fb) in
        Float.abs (fa -. fb) /. denom < 1e-12
      end)
    (points spec)
