(* Floating-point expression language for the Herbie case study (§6.2):
   real-valued expressions evaluated both in double precision (what a user
   program would compute) and in double-double precision (the oracle used
   to score accuracy, standing in for Herbie's MPFR-backed evaluator). *)

type expr =
  | Num of Rat.t
  | Var of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Neg of expr
  | Sqrt of expr
  | Cbrt of expr
  | Fma of expr * expr * expr  (* a*b + c, fused *)

let rec eval_double env (e : expr) : float =
  match e with
  | Num r -> Rat.to_float r
  | Var x -> env x
  | Add (a, b) -> eval_double env a +. eval_double env b
  | Sub (a, b) -> eval_double env a -. eval_double env b
  | Mul (a, b) -> eval_double env a *. eval_double env b
  | Div (a, b) -> eval_double env a /. eval_double env b
  | Neg a -> -.eval_double env a
  | Sqrt a -> Float.sqrt (eval_double env a)
  | Cbrt a -> Float.cbrt (eval_double env a)
  | Fma (a, b, c) -> Float.fma (eval_double env a) (eval_double env b) (eval_double env c)

let rec eval_dd env (e : expr) : Dd.t =
  match e with
  | Num r -> Dd.div (Dd.of_float (Bigint.to_float (Rat.num r))) (Dd.of_float (Bigint.to_float (Rat.den r)))
  | Var x -> Dd.of_float (env x)
  | Add (a, b) -> Dd.add (eval_dd env a) (eval_dd env b)
  | Sub (a, b) -> Dd.sub (eval_dd env a) (eval_dd env b)
  | Mul (a, b) -> Dd.mul (eval_dd env a) (eval_dd env b)
  | Div (a, b) -> Dd.div (eval_dd env a) (eval_dd env b)
  | Neg a -> Dd.neg (eval_dd env a)
  | Sqrt a -> Dd.sqrt (eval_dd env a)
  | Cbrt a -> Dd.cbrt (eval_dd env a)
  | Fma (a, b, c) -> Dd.fma (eval_dd env a) (eval_dd env b) (eval_dd env c)

let rec size = function
  | Num _ | Var _ -> 1
  | Neg a | Sqrt a | Cbrt a -> 1 + size a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> 1 + size a + size b
  | Fma (a, b, c) -> 1 + size a + size b + size c

let rec vars = function
  | Num _ -> []
  | Var x -> [ x ]
  | Neg a | Sqrt a | Cbrt a -> vars a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> vars a @ vars b
  | Fma (a, b, c) -> vars a @ vars b @ vars c

let var_names e = List.sort_uniq compare (vars e)

let rec to_string = function
  | Num r -> Rat.to_string r
  | Var x -> x
  | Add (a, b) -> Printf.sprintf "(+ %s %s)" (to_string a) (to_string b)
  | Sub (a, b) -> Printf.sprintf "(- %s %s)" (to_string a) (to_string b)
  | Mul (a, b) -> Printf.sprintf "(* %s %s)" (to_string a) (to_string b)
  | Div (a, b) -> Printf.sprintf "(/ %s %s)" (to_string a) (to_string b)
  | Neg a -> Printf.sprintf "(neg %s)" (to_string a)
  | Sqrt a -> Printf.sprintf "(sqrt %s)" (to_string a)
  | Cbrt a -> Printf.sprintf "(cbrt %s)" (to_string a)
  | Fma (a, b, c) -> Printf.sprintf "(fma %s %s %s)" (to_string a) (to_string b) (to_string c)

(* convenience constructors *)
let num i = Num (Rat.of_int i)
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a b = Div (a, b)
let sq a = Mul (a, a)
let cube a = Mul (a, Mul (a, a))
