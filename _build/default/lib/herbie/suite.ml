(* The benchmark suite for the Herbie case study: ~30 floating-point
   expressions modelled on Herbie's own suite (FPBench and the classic
   Hamming examples), substituting for the paper's 289-program suite.
   Includes the benchmarks the paper names: the sqrt/cbrt cancellations
   (§6.2's √(x+1)−√x and ∛(v+1)−∛v), the 9x⁴−y²(y²−2) outlier, the
   quadratic formula, plus division/cancellation variants. *)

open Fpexpr

type bench = {
  name : string;
  expr : Fpexpr.expr;
  ranges : (string * float * float) list;  (* variable preconditions *)
}

let x = Var "x"
let y = Var "y"
let v = Var "v"
let a = Var "a"
let b = Var "b"
let c = Var "c"
let eps = Var "eps"

let benches : bench list =
  [
    (* --- the paper's named examples --- *)
    { name = "sqrt-cancel"; expr = Sqrt (x + num 1) - Sqrt x; ranges = [ ("x", 1.0, 1e15) ] };
    { name = "cbrt-cancel"; expr = Cbrt (v + num 1) - Cbrt v; ranges = [ ("v", 1.0, 1e15) ] };
    {
      name = "9x4-y2y2-2";
      expr = (num 9 * sq (sq x)) - (sq y * (sq y - num 2));
      ranges = [ ("x", 0.5, 2.0); ("y", 1e6, 1e8) ];
    };
    {
      name = "quadratic-root";
      expr = (Neg b + Sqrt (sq b - (num 4 * a * c))) / (num 2 * a);
      ranges = [ ("a", 0.1, 10.0); ("b", 1e4, 1e8); ("c", 0.1, 10.0) ];
    };
    (* --- cancellation family --- *)
    { name = "1-cos-like"; expr = (num 1 / (x + num 1)) - (num 1 / x); ranges = [ ("x", 1e3, 1e12) ] };
    { name = "recip-diff"; expr = (num 1 / x) - (num 1 / (x + eps)); ranges = [ ("x", 1.0, 1e6); ("eps", 1e-12, 1e-6) ] };
    { name = "sq-diff"; expr = sq (x + num 1) - sq x; ranges = [ ("x", 1e6, 1e12) ] };
    { name = "sq-diff-vars"; expr = sq x - sq y; ranges = [ ("x", 1e7, 1e8); ("y", 1e7, 1e8) ] };
    { name = "sqrt-sub-vars"; expr = Sqrt x - Sqrt y; ranges = [ ("x", 1e10, 1e12); ("y", 1e10, 1e12) ] };
    { name = "x-over-sum"; expr = x / (x + y); ranges = [ ("x", 1e-8, 1e-6); ("y", 1e6, 1e8) ] };
    { name = "sum-times-diff"; expr = (x + y) * (x - y); ranges = [ ("x", 1e7, 1e8); ("y", 1e7, 1e8) ] };
    { name = "fma-candidate"; expr = (x * y) + c; ranges = [ ("x", 1e7, 1e8); ("y", -1e8, -1e7); ("c", 0.1, 10.0) ] };
    (* --- division / cancellation with guards (Fig. 9a shapes) --- *)
    { name = "mul-div-cancel"; expr = x * y / y; ranges = [ ("y", 1e-8, 1e8); ("x", 0.5, 2.0) ] };
    { name = "div-self"; expr = (x + num 1) / (x + num 1); ranges = [ ("x", 1.0, 1e10) ] };
    { name = "frac-a-bc"; expr = a * b / c; ranges = [ ("a", 1e-4, 1e4); ("b", 1e-160, 1e-150); ("c", 1e-160, 1e-150) ] };
    { name = "ratio-shift"; expr = (x + num 2) / (x + num 1); ranges = [ ("x", 1e8, 1e14) ] };
    (* --- sqrt/cbrt algebra --- *)
    { name = "sqrt-square"; expr = Sqrt (sq x); ranges = [ ("x", 1e-4, 1e4) ] };
    { name = "sqrt-square-neg"; expr = Sqrt (sq x); ranges = [ ("x", -1e4, -1e-4) ] };
    { name = "sqrt-prod"; expr = Sqrt x * Sqrt x; ranges = [ ("x", 1e-8, 1e8) ] };
    { name = "cbrt-cube"; expr = Cbrt (cube x); ranges = [ ("x", -1e4, 1e4) ] };
    { name = "sqrt-sum-cancel"; expr = Sqrt (x + y) - Sqrt x; ranges = [ ("x", 1e12, 1e14); ("y", 0.1, 10.0) ] };
    (* --- polynomial shapes --- *)
    { name = "horner3"; expr = (((a * x) + b) * x) + c; ranges = [ ("a", 0.5, 2.0); ("b", 0.5, 2.0); ("c", 0.5, 2.0); ("x", 1e6, 1e8) ] };
    { name = "expand-binomial"; expr = sq (x + y) - (num 2 * x * y) - sq y; ranges = [ ("x", 1e-6, 1e-4); ("y", 1e5, 1e7) ] };
    { name = "cube-diff"; expr = cube (x + num 1) - cube x; ranges = [ ("x", 1e5, 1e7) ] };
    { name = "poly-cancel"; expr = (x * (x + num 1)) - sq x; ranges = [ ("x", 1e8, 1e12) ] };
    { name = "triple-prod"; expr = x * y * (num 1 / x); ranges = [ ("x", 1e-140, 1e-120); ("y", 0.5, 2.0) ] };
    (* --- mixed --- *)
    { name = "midpoint"; expr = (x + y) / num 2; ranges = [ ("x", 1e300, 1e307); ("y", 1e300, 1e307) ] };
    { name = "neg-chain"; expr = Neg (Neg (x - y)); ranges = [ ("x", 1.0, 2.0); ("y", 1.0, 2.0) ] };
    { name = "add-zero-ish"; expr = (x + y) - y; ranges = [ ("x", 1e-8, 1e-6); ("y", 1e8, 1e10) ] };
    { name = "scaled-cancel"; expr = (num 2 * x) - x - x; ranges = [ ("x", 1e8, 1e12) ] };
    (* --- zero-crossing ranges: the interval analysis cannot prove the
       guards, but the rewrites happen to be safe on the sampled domain —
       the cases where Herbie's unsound ruleset wins (Fig. 11's right
       tail) --- *)
    { name = "cancel-crossing"; expr = x * y / y; ranges = [ ("y", -1e8, 1e8); ("x", 1e7, 1e8) ] };
    { name = "div-self-crossing"; expr = ((x * y) / (x * y)) + (x - x); ranges = [ ("x", -1e4, 1e4); ("y", -1e4, 1e4) ] };
    { name = "sqrt-sq-crossing"; expr = Sqrt (sq x) * (y / x); ranges = [ ("x", 1e-8, 1e8); ("y", -2.0, 2.0) ] };
    { name = "frac-combine-crossing"; expr = (num 1 / x) - (num 1 / (x + num 1)); ranges = [ ("x", -1e12, -1e3) ] };
    { name = "triple-prod-crossing"; expr = x * y * (num 1 / x); ranges = [ ("x", -1e-120, 1e-120); ("y", 0.5, 2.0) ] };
  ]

let find name = List.find (fun bench -> bench.name = name) benches
