(** A small egglog-backed expression optimizer — a downstream application
    of the kind the paper's introduction motivates (program optimization
    by equality saturation with a cost-aware extraction).

    The IR is straight-line integer arithmetic over input arguments. The
    optimizer runs equality saturation with algebraic identities,
    constant folding (as rules over the [i64] base type) and strength
    reduction, then extracts the cheapest equivalent expression under a
    latency-style cost model ([:cost] per operator: multiplies are
    expensive, shifts and adds are cheap). *)

type expr =
  | Const of int
  | Arg of int  (** the n-th input *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Neg of expr
  | Shl of expr * int  (** left shift by a constant *)

val eval : expr -> int array -> int
(** @raise Invalid_argument on an out-of-range argument index. *)

val cost : expr -> int
(** The latency-model cost the optimizer minimizes. *)

val to_string : expr -> string

val optimize : ?iterations:int -> expr -> expr
(** Equality-saturate and extract the cheapest equivalent expression.
    Semantics-preserving on all inputs (property-tested). *)

val rules_program : string
(** The egglog program (datatype + rewrite rules) the optimizer runs —
    exposed for inspection and the examples. *)
