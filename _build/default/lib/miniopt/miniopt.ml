type expr =
  | Const of int
  | Arg of int
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Neg of expr
  | Shl of expr * int

let rec eval e (args : int array) =
  match e with
  | Const c -> c
  | Arg i ->
    if i < 0 || i >= Array.length args then invalid_arg "Miniopt.eval: argument index";
    args.(i)
  | Add (a, b) -> eval a args + eval b args
  | Sub (a, b) -> eval a args - eval b args
  | Mul (a, b) -> eval a args * eval b args
  | Neg a -> -eval a args
  | Shl (a, k) -> eval a args lsl k

(* Latency-flavoured cost model; mirrored by the :cost declarations. *)
let rec cost = function
  | Const _ | Arg _ -> 1
  | Add (a, b) | Sub (a, b) -> 1 + cost a + cost b
  | Mul (a, b) -> 4 + cost a + cost b
  | Neg a -> 1 + cost a
  | Shl (a, _) -> 1 + cost a

let rec to_string = function
  | Const c -> string_of_int c
  | Arg i -> Printf.sprintf "a%d" i
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (to_string a) (to_string b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (to_string a) (to_string b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (to_string a) (to_string b)
  | Neg a -> Printf.sprintf "(- %s)" (to_string a)
  | Shl (a, k) -> Printf.sprintf "(%s << %d)" (to_string a) k

(* The :cost of an operator node is its own latency; children add up by
   extraction. Leaf costs are the default 1. *)
let rules_program =
  {|
  (sort E)
  (function KConst (i64) E)
  (function KArg (i64) E)
  (function KAdd (E E) E)
  (function KSub (E E) E)
  (function KMul (E E) E :cost 4)
  (function KNeg (E) E)
  (function KShl (E i64) E)

  ;; normalization and algebra
  (rewrite (KAdd a b) (KAdd b a))
  (rewrite (KAdd (KAdd a b) c) (KAdd a (KAdd b c)))
  (rewrite (KMul a b) (KMul b a))
  (rewrite (KMul (KMul a b) c) (KMul a (KMul b c)))
  (rewrite (KSub a b) (KAdd a (KNeg b)))
  (rewrite (KAdd a (KNeg b)) (KSub a b))
  (rewrite (KNeg (KNeg a)) a)
  (rewrite (KMul a (KAdd b c)) (KAdd (KMul a b) (KMul a c)))
  (rewrite (KAdd (KMul a b) (KMul a c)) (KMul a (KAdd b c)))

  ;; identities
  (rewrite (KAdd a (KConst 0)) a)
  (rewrite (KMul a (KConst 1)) a)
  (rewrite (KMul a (KConst 0)) (KConst 0))
  (rewrite (KSub a a) (KConst 0))
  (rewrite (KShl a 0) a)
  (rewrite (KMul a (KConst -1)) (KNeg a))

  ;; constant folding via i64 primitives
  (rewrite (KAdd (KConst x) (KConst y)) (KConst (+ x y)))
  (rewrite (KSub (KConst x) (KConst y)) (KConst (- x y)))
  (rewrite (KMul (KConst x) (KConst y)) (KConst (* x y)))
  (rewrite (KNeg (KConst x)) (KConst (- x)))
  (rewrite (KShl (KConst x) k) (KConst (<< x k)) :when ((>= k 0) (<= k 30)))

  ;; strength reduction: multiply by a power of two is a shift; x+x too
  (rewrite (KMul a (KConst 2)) (KShl a 1))
  (rewrite (KMul a (KConst 4)) (KShl a 2))
  (rewrite (KMul a (KConst 8)) (KShl a 3))
  (rewrite (KMul a (KConst 16)) (KShl a 4))
  (rewrite (KAdd a a) (KShl a 1))
  (rewrite (KShl (KShl a j) k) (KShl a (+ j k)) :when ((<= (+ j k) 30)))
  ;; 2^k * shifted constants: x*3 = (x<<1)+x, x*5 = (x<<2)+x, x*9 = (x<<3)+x
  (rewrite (KMul a (KConst 3)) (KAdd (KShl a 1) a))
  (rewrite (KMul a (KConst 5)) (KAdd (KShl a 2) a))
  (rewrite (KMul a (KConst 9)) (KAdd (KShl a 3) a))
  |}

let rec to_egglog = function
  | Const c -> Printf.sprintf "(KConst %d)" c
  | Arg i -> Printf.sprintf "(KArg %d)" i
  | Add (a, b) -> Printf.sprintf "(KAdd %s %s)" (to_egglog a) (to_egglog b)
  | Sub (a, b) -> Printf.sprintf "(KSub %s %s)" (to_egglog a) (to_egglog b)
  | Mul (a, b) -> Printf.sprintf "(KMul %s %s)" (to_egglog a) (to_egglog b)
  | Neg a -> Printf.sprintf "(KNeg %s)" (to_egglog a)
  | Shl (a, k) -> Printf.sprintf "(KShl %s %d)" (to_egglog a) k

exception Bad_term of string

let rec of_term (t : Egglog.Extract.term) : expr =
  match t with
  | Egglog.Extract.T_app (f, args) -> (
    match (Egglog.Symbol.name f, args) with
    | "KConst", [ Egglog.Extract.T_const (Egglog.Value.VInt c) ] -> Const c
    | "KArg", [ Egglog.Extract.T_const (Egglog.Value.VInt i) ] -> Arg i
    | "KAdd", [ a; b ] -> Add (of_term a, of_term b)
    | "KSub", [ a; b ] -> Sub (of_term a, of_term b)
    | "KMul", [ a; b ] -> Mul (of_term a, of_term b)
    | "KNeg", [ a ] -> Neg (of_term a)
    | "KShl", [ a; Egglog.Extract.T_const (Egglog.Value.VInt k) ] -> Shl (of_term a, k)
    | name, _ -> raise (Bad_term name))
  | Egglog.Extract.T_const v -> raise (Bad_term (Egglog.Value.to_string v))

let optimize ?(iterations = 8) (e : expr) : expr =
  let eng = Egglog.Engine.create ~scheduler:Egglog.Engine.backoff_default () in
  ignore (Egglog.run_string eng rules_program);
  ignore (Egglog.run_string eng (Printf.sprintf "(define root %s)" (to_egglog e)));
  ignore (Egglog.Engine.run_iterations eng iterations);
  let root = Egglog.Engine.eval_call eng "root" [] in
  match Egglog.Engine.extract_value eng root with
  | Some { Egglog.Extract.term; _ } ->
    let optimized = of_term term in
    if cost optimized < cost e then optimized else e
  | None -> e
