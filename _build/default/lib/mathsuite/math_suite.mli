(** The Fig. 7 workload: the analysis-free subset of egg's [math] rewrite
    suite plus its seed terms, rendered both as {!Egraph} rewrites and as an
    egglog program so all three systems (egg, egglog, egglogNI) grow the
    same e-graph. Rules needing e-class analyses (x/x -> 1 when x != 0,
    pow0, …) are excluded, exactly as in §5.3. *)

val rules : (string * string * string) list
(** (name, lhs, rhs) in egg's [?var] pattern syntax. *)

val seeds : string list
(** Start terms from egg's math test suite. *)

val egg_rewrites : unit -> Egraph.rewrite list
val egg_seed_terms : unit -> Egraph.term list

val egglog_prelude : string
(** The [Math] datatype declaration. *)

val egglog_rules : unit -> string
(** The rewrites, translated to egglog [(rewrite …)] commands. *)

val egglog_seeds : unit -> string
(** [(define seedN …)] commands for the seed terms. *)

val egglog_program : unit -> string
(** Prelude + rules + seeds, ready to feed an engine. *)

val to_egglog : Sexpr.t -> string
(** Translate one egg-syntax pattern/term ([?a] variables, integer leaves,
    free symbols) to egglog concrete syntax. *)
