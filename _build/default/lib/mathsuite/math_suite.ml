let rules =
  [
    ("comm-add", "(+ ?a ?b)", "(+ ?b ?a)");
    ("comm-mul", "(* ?a ?b)", "(* ?b ?a)");
    ("assoc-add", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)");
    ("assoc-mul", "(* ?a (* ?b ?c))", "(* (* ?a ?b) ?c)");
    ("sub-canon", "(- ?a ?b)", "(+ ?a (* -1 ?b))");
    ("zero-add", "(+ ?a 0)", "?a");
    ("zero-mul", "(* ?a 0)", "0");
    ("one-mul", "(* ?a 1)", "?a");
    ("cancel-sub", "(- ?a ?a)", "0");
    ("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))");
    ("factor", "(+ (* ?a ?b) (* ?a ?c))", "(* ?a (+ ?b ?c))");
    ("pow-mul", "(* (pow ?a ?b) (pow ?a ?c))", "(pow ?a (+ ?b ?c))");
    ("pow1", "(pow ?x 1)", "?x");
    ("pow2", "(pow ?x 2)", "(* ?x ?x)");
    ("d-add", "(d ?x (+ ?a ?b))", "(+ (d ?x ?a) (d ?x ?b))");
    ("d-mul", "(d ?x (* ?a ?b))", "(+ (* ?a (d ?x ?b)) (* ?b (d ?x ?a)))");
    ("i-one", "(i 1 ?x)", "?x");
    ("i-sum", "(i (+ ?f ?g) ?x)", "(+ (i ?f ?x) (i ?g ?x))");
    ("i-dif", "(i (- ?f ?g) ?x)", "(- (i ?f ?x) (i ?g ?x))");
    ("i-parts", "(i (* ?a ?b) ?x)", "(- (* ?a (i ?b ?x)) (i (* (d ?x ?a) (i ?b ?x)) ?x))");
  ]

let seeds =
  [
    "(+ 1 (- a (* (- 2 1) a)))";
    "(* (+ x 3) (+ x 1))";
    "(+ (* y (+ x y)) (* x (+ x y)))";
    "(pow (+ x 1) 2)";
    "(d x (+ 1 (* 2 x)))";
    "(d x (- (pow x 3) (* 7 (pow x 2))))";
    "(i (+ x x) x)";
    "(/ 1 (- (/ (+ 1 (sqrt five)) 2) (/ (- 1 (sqrt five)) 2)))";
  ]

let egg_rewrites () =
  List.map (fun (name, lhs, rhs) -> Egraph.rewrite_of_strings ~name lhs rhs) rules

let egg_seed_terms () = List.map Egraph.term_of_string seeds

let egglog_prelude =
  {|
  (datatype Math
    (Num i64)
    (Var String)
    (Add Math Math)
    (Sub Math Math)
    (Mul Math Math)
    (Div Math Math)
    (Pow Math Math)
    (Ln Math)
    (Sqrt Math)
    (Diff Math Math)
    (Integral Math Math))
  |}

let ctor_of_op = function
  | "+" -> "Add"
  | "-" -> "Sub"
  | "*" -> "Mul"
  | "/" -> "Div"
  | "pow" -> "Pow"
  | "ln" -> "Ln"
  | "sqrt" -> "Sqrt"
  | "d" -> "Diff"
  | "i" -> "Integral"
  | op -> failwith ("math_suite: unknown operator " ^ op)

(* Translate an egg-syntax pattern/term to egglog concrete syntax:
   ?a -> variable a; integer n -> (Num n); free symbol x -> (Var "x"). *)
let rec to_egglog (s : Sexpr.t) : string =
  match s with
  | Sexpr.Int n -> Printf.sprintf "(Num %d)" n
  | Sexpr.Atom a when String.length a > 0 && a.[0] = '?' -> String.sub a 1 (String.length a - 1)
  | Sexpr.Atom a -> Printf.sprintf "(Var \"%s\")" a
  | Sexpr.List (Sexpr.Atom op :: args) ->
    Printf.sprintf "(%s %s)" (ctor_of_op op) (String.concat " " (List.map to_egglog args))
  | _ -> failwith ("math_suite: cannot translate " ^ Sexpr.to_string s)

let egglog_rules () =
  rules
  |> List.map (fun (name, lhs, rhs) ->
         ignore name;
         Printf.sprintf "(rewrite %s %s)"
           (to_egglog (Sexpr.parse_one lhs))
           (to_egglog (Sexpr.parse_one rhs)))
  |> String.concat "\n"

let egglog_seeds () =
  seeds
  |> List.mapi (fun i s ->
         Printf.sprintf "(define seed%d %s)" i (to_egglog (Sexpr.parse_one s)))
  |> String.concat "\n"

let egglog_program () =
  String.concat "\n" [ egglog_prelude; egglog_rules (); egglog_seeds () ]
