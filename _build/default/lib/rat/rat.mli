(** Exact rationals over {!Bigint}, always in lowest terms with a positive
    denominator. Backing for egglog's [Rational] base type and the interval
    analysis of the Herbie case study (§6.2). *)

type t

val zero : t
val one : t
val minus_one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] normalizes sign and reduces by the gcd.
    @raise Division_by_zero when [den] is zero. *)

val of_int : int -> t
val of_ints : int -> int -> t
val num : t -> Bigint.t
val den : t -> Bigint.t

val of_string : string -> t
(** Accepts ["n"], ["n/d"], and decimal ["i.f"] forms. *)

val to_string : t -> string

val of_float : float -> t
(** Exact conversion of a finite double. @raise Invalid_argument on nan/inf. *)

val to_float : t -> float

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val sign : t -> int
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero on a zero divisor. *)

val inv : t -> t
val min : t -> t -> t
val max : t -> t -> t
val pow : t -> int -> t

val floor : t -> Bigint.t
val ceil : t -> Bigint.t

val is_integer : t -> bool
val pp : Format.formatter -> t -> unit
