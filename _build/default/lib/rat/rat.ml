(* Rationals kept in lowest terms, denominator strictly positive. *)

module B = Bigint

type t = { n : B.t; d : B.t }

let make n d =
  if B.is_zero d then raise Division_by_zero;
  if B.is_zero n then { n = B.zero; d = B.one }
  else begin
    let g = B.gcd n d in
    let n = B.div n g and d = B.div d g in
    if B.sign d < 0 then { n = B.neg n; d = B.neg d } else { n; d }
  end

let zero = { n = B.zero; d = B.one }
let one = { n = B.one; d = B.one }
let minus_one = { n = B.minus_one; d = B.one }
let of_int i = { n = B.of_int i; d = B.one }
let of_ints n d = make (B.of_int n) (B.of_int d)
let num x = x.n
let den x = x.d
let sign x = B.sign x.n
let neg x = { x with n = B.neg x.n }
let abs x = { x with n = B.abs x.n }
let add a b = make (B.add (B.mul a.n b.d) (B.mul b.n a.d)) (B.mul a.d b.d)
let sub a b = add a (neg b)
let mul a b = make (B.mul a.n b.n) (B.mul a.d b.d)

let inv x =
  if B.is_zero x.n then raise Division_by_zero;
  if B.sign x.n < 0 then { n = B.neg x.d; d = B.neg x.n } else { n = x.d; d = x.n }

let div a b = mul a (inv b)
let compare a b = B.compare (B.mul a.n b.d) (B.mul b.n a.d)
let equal a b = B.equal a.n b.n && B.equal a.d b.d
let hash x = (B.hash x.n * 65599) lxor B.hash x.d
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let pow x k =
  if k >= 0 then { n = B.pow x.n k; d = B.pow x.d k }
  else inv { n = B.pow x.n (-k); d = B.pow x.d (-k) }

let floor x =
  let q, r = B.divmod x.n x.d in
  if B.sign r < 0 then B.sub q B.one else q

let ceil x =
  let q, r = B.divmod x.n x.d in
  if B.sign r > 0 then B.add q B.one else q

let is_integer x = B.equal x.d B.one

let to_string x =
  if is_integer x then B.to_string x.n else B.to_string x.n ^ "/" ^ B.to_string x.d

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    make (B.of_string (String.sub s 0 i)) (B.of_string (String.sub s (i + 1) (String.length s - i - 1)))
  | None ->
    (match String.index_opt s '.' with
     | None -> { n = B.of_string s; d = B.one }
     | Some i ->
       let int_part = String.sub s 0 i in
       let frac = String.sub s (i + 1) (String.length s - i - 1) in
       let negative = String.length int_part > 0 && int_part.[0] = '-' in
       let scale = B.pow (B.of_int 10) (String.length frac) in
       let ipart = if int_part = "" || int_part = "-" then B.zero else B.of_string int_part in
       let fpart = if frac = "" then B.zero else B.of_string frac in
       let mag = B.add (B.mul (B.abs ipart) scale) fpart in
       make (if negative then B.neg mag else mag) scale)

let of_float f =
  if Float.is_nan f || Float.is_integer f = false && Float.abs f = Float.infinity then
    invalid_arg "Rat.of_float: not finite";
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    invalid_arg "Rat.of_float: not finite";
  let mant, exp = Float.frexp f in
  (* mant * 2^53 is an exact integer for any finite double *)
  let m = Int64.of_float (Float.ldexp mant 53) in
  let e = exp - 53 in
  let mi = B.of_string (Int64.to_string m) in
  if e >= 0 then make (B.shift_left mi e) B.one else make mi (B.shift_left B.one (-e))

let to_float x = B.to_float x.n /. B.to_float x.d
let pp fmt x = Format.pp_print_string fmt (to_string x)
