(* Classic error-free transformations (Dekker/Knuth): two_sum and two_prod
   compute exact rounding errors of float ops; chaining them yields ~106-bit
   arithmetic out of pairs of doubles. *)

type t = { hi : float; lo : float }

let zero = { hi = 0.0; lo = 0.0 }
let one = { hi = 1.0; lo = 0.0 }
let of_float f = { hi = f; lo = 0.0 }
let of_int i = of_float (float_of_int i)
let to_float x = x.hi +. x.lo

(* Knuth two_sum: s + e = a + b exactly. *)
let two_sum a b =
  let s = a +. b in
  let bb = s -. a in
  let e = (a -. (s -. bb)) +. (b -. bb) in
  (s, e)

(* Fast two_sum, requires |a| >= |b|. *)
let quick_two_sum a b =
  let s = a +. b in
  let e = b -. (s -. a) in
  (s, e)

(* two_prod via Stdlib fma: p + e = a * b exactly. *)
let two_prod a b =
  let p = a *. b in
  let e = Float.fma a b (-.p) in
  (p, e)

let add x y =
  let s, e = two_sum x.hi y.hi in
  let e = e +. x.lo +. y.lo in
  let hi, lo = quick_two_sum s e in
  { hi; lo }

let neg x = { hi = -.x.hi; lo = -.x.lo }
let sub x y = add x (neg y)

let mul x y =
  let p, e = two_prod x.hi y.hi in
  let e = e +. (x.hi *. y.lo) +. (x.lo *. y.hi) in
  let hi, lo = quick_two_sum p e in
  { hi; lo }

let div x y =
  let q1 = x.hi /. y.hi in
  (* refine with two Newton-ish corrections *)
  let r = sub x (mul (of_float q1) y) in
  let q2 = r.hi /. y.hi in
  let r2 = sub r (mul (of_float q2) y) in
  let q3 = r2.hi /. y.hi in
  let hi, lo = quick_two_sum q1 q2 in
  let s, e = two_sum hi q3 in
  { hi = s; lo = lo +. e }

let abs x = if x.hi < 0.0 || (x.hi = 0.0 && x.lo < 0.0) then neg x else x

let sqrt x =
  if x.hi < 0.0 then of_float Float.nan
  else if x.hi = 0.0 then zero
  else begin
    (* y0 = double sqrt; one Newton step in dd: y = y0 + (x - y0^2)/(2 y0) *)
    let y0 = Stdlib.sqrt x.hi in
    let y0d = of_float y0 in
    let diff = sub x (mul y0d y0d) in
    let corr = diff.hi /. (2.0 *. y0) in
    let hi, lo = quick_two_sum y0 corr in
    { hi; lo }
  end

let cbrt x =
  if x.hi = 0.0 then zero
  else begin
    let y0 = Float.cbrt x.hi in
    let y0d = of_float y0 in
    (* Newton: y <- y - (y^3 - x) / (3 y^2) *)
    let y2 = mul y0d y0d in
    let diff = sub (mul y2 y0d) x in
    let denom = 3.0 *. y0 *. y0 in
    let corr = diff.hi /. denom in
    let hi, lo = quick_two_sum y0 (-.corr) in
    { hi; lo }
  end

let fma a b c = add (mul a b) c

let pow_int x n =
  let rec go acc b n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc b) (mul b b) (n lsr 1)
    else go acc (mul b b) (n lsr 1)
  in
  if n >= 0 then go one x n else div one (go one x (-n))

let compare x y = Float.compare (to_float x) (to_float y)
let is_nan x = Float.is_nan x.hi || Float.is_nan x.lo
let is_finite x = Float.is_finite x.hi && Float.is_finite x.lo
let pp fmt x = Format.fprintf fmt "%.17g%+.17g" x.hi x.lo
