(** Double-double (compensated) arithmetic: each value is an unevaluated sum
    [hi +. lo] of two doubles with [|lo| <= ulp(hi)/2], giving roughly
    106 bits of significand.

    Used as the high-precision reference evaluator when measuring the
    floating-point error of candidate programs in the Herbie case study —
    a stand-in for the MPFR-backed oracle the paper's Herbie uses. 106 bits
    is ample to score 53-bit double computations. *)

type t = { hi : float; lo : float }

val zero : t
val one : t
val of_float : float -> t
val to_float : t -> float
val of_int : int -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val abs : t -> t
val sqrt : t -> t
(** Nan for negative inputs, matching IEEE. *)

val cbrt : t -> t
val fma : t -> t -> t -> t
(** [fma a b c = a*b + c] evaluated without intermediate rounding beyond
    double-double precision. *)

val pow_int : t -> int -> t
val compare : t -> t -> int
val is_nan : t -> bool
val is_finite : t -> bool
val pp : Format.formatter -> t -> unit
