test/test_miniopt.ml: Alcotest List Miniopt QCheck2 QCheck_alcotest
