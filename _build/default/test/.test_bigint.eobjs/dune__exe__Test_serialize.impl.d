test/test_serialize.ml: Alcotest Egglog List Option Printf QCheck2 QCheck_alcotest
