test/test_minidatalog.ml: Alcotest Array List Minidatalog Random
