test/test_dd.mli:
