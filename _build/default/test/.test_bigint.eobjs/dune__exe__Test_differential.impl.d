test/test_differential.ml: Alcotest Array Egglog Egraph Format Hashtbl List Math_suite Minidatalog Option Printf QCheck2 QCheck_alcotest Random Sexpr String
