test/test_pointsto.ml: Alcotest Array List Minidatalog Pointsto Printf String
