test/test_proofs.mli:
