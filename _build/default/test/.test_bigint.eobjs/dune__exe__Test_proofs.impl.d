test/test_proofs.ml: Alcotest Array Egglog List Printf QCheck2 QCheck_alcotest String
