test/test_dd.ml: Alcotest Dd Float List QCheck2 QCheck_alcotest Rat
