test/test_minidatalog.mli:
