test/test_engine_props.ml: Alcotest Egglog List Printf QCheck2 QCheck_alcotest Sexpr
