test/test_engine_props.mli:
