test/test_pearls.ml: Alcotest Egglog List Minidatalog String
