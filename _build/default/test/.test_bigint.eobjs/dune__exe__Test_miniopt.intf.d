test/test_miniopt.mli:
