test/test_sexpr.ml: Alcotest List QCheck2 QCheck_alcotest Rat Sexpr
