test/test_rat.ml: Alcotest Bigint List QCheck2 QCheck_alcotest Rat
