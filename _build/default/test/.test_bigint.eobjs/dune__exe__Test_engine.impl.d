test/test_engine.ml: Alcotest Buffer Egglog List Printf QCheck2 QCheck_alcotest String
