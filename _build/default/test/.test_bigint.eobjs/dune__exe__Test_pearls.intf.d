test/test_pearls.mli:
