test/test_unionfind.ml: Alcotest Array Fun List QCheck2 QCheck_alcotest Union_find
