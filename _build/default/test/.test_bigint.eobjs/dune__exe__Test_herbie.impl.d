test/test_herbie.ml: Alcotest Dd Egglog Float Herbie List Printf Rat
