test/test_herbie.mli:
