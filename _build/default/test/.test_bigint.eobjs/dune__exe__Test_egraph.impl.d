test/test_egraph.ml: Alcotest Egglog Egraph List Math_suite QCheck2 QCheck_alcotest Random
