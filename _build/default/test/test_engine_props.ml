(* Deeper engine properties: extraction soundness and cost consistency,
   nested push/pop, planner behaviour on adversarial queries, scheduler
   bookkeeping, and the i64/Rational primitive algebra. *)

module E = Egglog

let math_schema =
  {| (datatype M (Num i64) (Var String) (Add M M) (Mul M M) (Neg M)) |}

let gen_term_src =
  QCheck2.Gen.(
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 0 then
              oneof
                [
                  map (fun i -> Printf.sprintf "(Num %d)" i) (int_range (-5) 5);
                  map (fun i -> Printf.sprintf "(Var \"v%d\")" i) (int_bound 2);
                ]
            else
              oneof
                [
                  map (fun i -> Printf.sprintf "(Num %d)" i) (int_range (-5) 5);
                  map2 (fun a b -> Printf.sprintf "(Add %s %s)" a b) (self (n / 2)) (self (n / 2));
                  map2 (fun a b -> Printf.sprintf "(Mul %s %s)" a b) (self (n / 2)) (self (n / 2));
                  map (fun a -> Printf.sprintf "(Neg %s)" a) (self (n - 1));
                ])
          (min n 5)))

(* recompute the ast-size cost of an extracted term *)
let rec term_cost (t : E.Extract.term) =
  match t with
  | E.Extract.T_const _ -> 0
  | E.Extract.T_app (_, args) -> 1 + List.fold_left (fun acc a -> acc + term_cost a) 0 args

let prop_extraction_sound_and_consistent =
  QCheck2.Test.make ~name:"extraction: term is equal to root, cost consistent, minimal vs variants"
    ~count:60 gen_term_src (fun src ->
      let eng = E.Engine.create () in
      ignore (E.run_string eng math_schema);
      ignore (E.run_string eng (Printf.sprintf "(define root %s)" src));
      ignore
        (E.run_string eng
           {|
        (rewrite (Add a b) (Add b a))
        (rewrite (Neg (Neg a)) a)
        (rewrite (Add (Num x) (Num y)) (Num (+ x y)))
        (rewrite (Mul (Num x) (Num y)) (Num (* x y)))
        (run 4)
      |});
      let root = E.Engine.eval_call eng "root" [] in
      match E.Engine.extract_value eng root with
      | None -> false
      | Some { E.Extract.term; cost } ->
        (* 1. reported cost equals the term's recomputed cost *)
        let consistent = term_cost term = cost in
        (* 2. the extracted term is in the root's class *)
        let printed = Sexpr.to_string (E.Extract.term_to_sexp term) in
        let sound =
          E.Engine.check_facts eng
            [ E.Ast.Eq (E.Ast.Var "root", E.Frontend.expr_of_sexp (Sexpr.parse_one printed)) ]
        in
        (* 3. no enumerated variant beats it (excluding the root alias,
           whose declared :cost is prohibitive but whose naive ast-size
           recomputation here would be 1) *)
        let variants = E.Engine.extract_candidates eng root ~max:64 in
        let is_alias = function
          | E.Extract.T_app (f, []) when E.Symbol.name f = "root" -> true
          | _ -> false
        in
        let minimal =
          List.for_all (fun v -> is_alias v || term_cost v >= cost) variants
        in
        consistent && sound && minimal)

let prop_push_pop_nesting =
  QCheck2.Test.make ~name:"nested push/pop restores sizes exactly" ~count:60
    QCheck2.Gen.(list_size (int_range 1 8) (int_range 0 2))
    (fun script ->
      let eng = E.Engine.create () in
      ignore (E.run_string eng "(sort V) (function mk (i64) V) (relation r (i64))");
      let counter = ref 0 in
      let stack = ref [] in
      let snapshot () = (E.Engine.total_rows eng, E.Engine.n_classes eng) in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | 0 ->
            ignore (E.run_string eng "(push)");
            stack := snapshot () :: !stack
          | 1 ->
            incr counter;
            ignore (E.Engine.eval_call eng "mk" [ E.Value.VInt !counter ]);
            E.Engine.set_fact eng "r" [ E.Value.VInt !counter ] E.Value.VUnit
          | _ -> (
            match !stack with
            | [] -> ()
            | saved :: rest ->
              ignore (E.run_string eng "(pop)");
              stack := rest;
              if snapshot () <> saved then ok := false))
        script;
      !ok)

let test_planner_handles_cartesian () =
  (* disconnected atoms = cross product; must still be correct *)
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng
       {|
      (relation a (i64))
      (relation b (i64))
      (relation pair (i64 i64))
      (rule ((a x) (b y)) ((pair x y)))
      (a 1) (a 2) (a 3)
      (b 10) (b 20)
      (run)
    |});
  Alcotest.(check int) "3x2 pairs" 6 (E.Engine.table_size eng "pair")

let test_planner_shared_var_chain () =
  (* a chain query where the middle variable is the most selective *)
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng
       {|
      (relation e (i64 i64))
      (relation tri (i64 i64 i64))
      (rule ((e x y) (e y z) (e z x)) ((tri x y z)))
      (e 1 2) (e 2 3) (e 3 1)
      (e 4 5) (e 5 4)
      (run)
    |});
  (* the 3-cycle in each rotation *)
  Alcotest.(check int) "triangles" 3 (E.Engine.table_size eng "tri")

let test_self_join_nonlinear () =
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng
       {|
      (relation e (i64 i64))
      (relation dup (i64))
      (rule ((e x x)) ((dup x)))
      (e 1 1) (e 1 2) (e 2 2)
      (run)
    |});
  Alcotest.(check int) "self loops" 2 (E.Engine.table_size eng "dup")

let test_backoff_unbans () =
  (* after a ban expires the rule fires again and reaches the fixpoint *)
  let eng = E.Engine.create ~scheduler:(E.Engine.Backoff { match_limit = 1; ban_length = 1 }) () in
  ignore
    (E.run_string eng
       {|
      (relation n (i64))
      (rule ((n x) (< x 6)) ((n (+ x 1))))
      (n 0)
    |});
  let report = E.Engine.run_iterations eng 60 in
  ignore report;
  Alcotest.(check int) "reaches 7 numbers despite bans" 7 (E.Engine.table_size eng "n")

let test_i64_primitive_algebra () =
  let outputs =
    E.run_program_string
      {|
      (function v (String) i64 :merge new)
      (set (v "shl") (<< 3 4))
      (set (v "shr") (>> -16 2))
      (set (v "mod") (% 17 5))
      (set (v "abs") (abs -9))
      (check (= (v "shl") 48))
      (check (= (v "shr") -4))
      (check (= (v "mod") 2))
      (check (= (v "abs") 9))
    |}
  in
  Alcotest.(check int) "all pass" 4 (List.length outputs)

let test_rational_algebra () =
  let outputs =
    E.run_program_string
      {|
      (function v (String) Rational :merge new)
      (set (v "sum") (+ 1/3 1/6))
      (set (v "prod") (* 2/3 9/4))
      (set (v "div") (/ 1/2 1/8))
      (set (v "neg") (- 0/1 22/7))
      (check (= (v "sum") 1/2))
      (check (= (v "prod") 3/2))
      (check (= (v "div") 4/1))
      (check (= (v "neg") (- 22/7)))
    |}
  in
  Alcotest.(check int) "all pass" 4 (List.length outputs)

let prop_run_is_idempotent_at_fixpoint =
  QCheck2.Test.make ~name:"running past saturation changes nothing" ~count:40
    QCheck2.Gen.(list_size (int_range 0 12) (pair (int_bound 5) (int_bound 5)))
    (fun edges ->
      let eng = E.Engine.create () in
      ignore
        (E.run_string eng
           {|
          (relation edge (i64 i64))
          (relation path (i64 i64))
          (rule ((edge x y)) ((path x y)))
          (rule ((path x y) (edge y z)) ((path x z)))
        |});
      List.iter
        (fun (a, b) -> E.Engine.set_fact eng "edge" [ E.Value.VInt a; E.Value.VInt b ] E.Value.VUnit)
        edges;
      ignore (E.Engine.run_iterations eng 50);
      let before = (E.Engine.total_rows eng, E.Engine.n_classes eng) in
      ignore (E.Engine.run_iterations eng 10);
      (E.Engine.total_rows eng, E.Engine.n_classes eng) = before)

let () =
  Alcotest.run "engine-props"
    [
      ( "planner",
        [
          Alcotest.test_case "cartesian product" `Quick test_planner_handles_cartesian;
          Alcotest.test_case "triangle query" `Quick test_planner_shared_var_chain;
          Alcotest.test_case "nonlinear self join" `Quick test_self_join_nonlinear;
        ] );
      ( "scheduling",
        [ Alcotest.test_case "backoff unbans" `Quick test_backoff_unbans ] );
      ( "primitives",
        [
          Alcotest.test_case "i64 algebra" `Quick test_i64_primitive_algebra;
          Alcotest.test_case "rational algebra" `Quick test_rational_algebra;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_extraction_sound_and_consistent;
            prop_push_pop_nesting;
            prop_run_is_idempotent_at_fixpoint;
          ] );
    ]
