(* Unit + property tests for exact rationals. *)

module R = Rat

let r = R.of_ints
let check_r msg expected actual = Alcotest.(check string) msg expected (R.to_string actual)

let test_normalization () =
  check_r "reduce" "1/2" (r 2 4);
  check_r "sign" "-1/2" (r 1 (-2));
  check_r "integer" "3" (r 6 2);
  check_r "zero" "0" (r 0 17);
  Alcotest.check_raises "zero den" Division_by_zero (fun () -> ignore (r 1 0))

let test_arith () =
  check_r "add" "5/6" (R.add (r 1 2) (r 1 3));
  check_r "sub" "1/6" (R.sub (r 1 2) (r 1 3));
  check_r "mul" "1/6" (R.mul (r 1 2) (r 1 3));
  check_r "div" "3/2" (R.div (r 1 2) (r 1 3));
  check_r "neg" "-5" (R.neg (R.of_int 5));
  check_r "inv" "-2" (R.inv (r 1 (-2)));
  check_r "pow" "8/27" (R.pow (r 2 3) 3);
  check_r "pow neg" "9/4" (R.pow (r 2 3) (-2))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (R.compare (r 1 3) (r 1 2) < 0);
  Alcotest.(check bool) "-1/2 < 1/3" true (R.compare (r (-1) 2) (r 1 3) < 0);
  check_r "min" "1/3" (R.min (r 1 2) (r 1 3));
  check_r "max" "1/2" (R.max (r 1 2) (r 1 3))

let test_floor_ceil () =
  Alcotest.(check string) "floor 7/2" "3" (Bigint.to_string (R.floor (r 7 2)));
  Alcotest.(check string) "ceil 7/2" "4" (Bigint.to_string (R.ceil (r 7 2)));
  Alcotest.(check string) "floor -7/2" "-4" (Bigint.to_string (R.floor (r (-7) 2)));
  Alcotest.(check string) "ceil -7/2" "-3" (Bigint.to_string (R.ceil (r (-7) 2)));
  Alcotest.(check string) "floor int" "5" (Bigint.to_string (R.floor (R.of_int 5)))

let test_strings () =
  check_r "parse frac" "22/7" (R.of_string "22/7");
  check_r "parse int" "-4" (R.of_string "-4");
  check_r "parse decimal" "3/2" (R.of_string "1.5");
  check_r "parse neg decimal" "-1/8" (R.of_string "-0.125");
  check_r "parse .5" "1/2" (R.of_string "0.5")

let test_of_float () =
  check_r "of_float 0.5" "1/2" (R.of_float 0.5);
  check_r "of_float 0.25" "1/4" (R.of_float 0.25);
  Alcotest.(check (float 0.0)) "roundtrip pi-ish" 3.141592653589793
    (R.to_float (R.of_float 3.141592653589793))

let rat_gen =
  QCheck2.Gen.(
    map2
      (fun n d -> r n d)
      (int_range (-10000) 10000)
      (oneof [ int_range 1 10000; int_range (-10000) (-1) ]))

let prop_add_comm =
  QCheck2.Test.make ~name:"rat add commutative" ~count:300 (QCheck2.Gen.pair rat_gen rat_gen)
    (fun (a, b) -> R.equal (R.add a b) (R.add b a))

let prop_field =
  QCheck2.Test.make ~name:"rat a * (1/a) = 1" ~count:300 rat_gen (fun a ->
      if R.sign a = 0 then true else R.equal (R.mul a (R.inv a)) R.one)

let prop_distrib =
  QCheck2.Test.make ~name:"rat distributivity" ~count:300
    (QCheck2.Gen.triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) -> R.equal (R.mul a (R.add b c)) (R.add (R.mul a b) (R.mul a c)))

let prop_compare_consistent =
  QCheck2.Test.make ~name:"rat compare consistent with sub sign" ~count:300
    (QCheck2.Gen.pair rat_gen rat_gen)
    (fun (a, b) -> R.compare a b = R.sign (R.sub a b))

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"rat to_string/of_string roundtrip" ~count:300 rat_gen (fun a ->
      R.equal a (R.of_string (R.to_string a)))

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ prop_add_comm; prop_field; prop_distrib; prop_compare_consistent; prop_string_roundtrip ]
  in
  Alcotest.run "rat"
    [
      ( "unit",
        [
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "of_float" `Quick test_of_float;
        ] );
      ("properties", props);
    ]
