(* Database snapshots: dump a saturated database, reload into a fresh
   engine with the same schema, and observe identical behaviour. *)

module E = Egglog

let schema =
  {|
  (datatype Math (Num i64) (Var String) (Add Math Math))
  (relation edge (i64 i64))
  (function best (i64) i64 :merge (max old new))
  (function tags (i64) (Set String) :merge (set-union old new))
  |}

let test_roundtrip_tables () =
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng
       (schema
       ^ {|
    (edge 1 2) (edge 2 3)
    (set (best 0) 5) (set (best 0) 9) (set (best 1) 2)
    (set (tags 0) (set-singleton "a"))
    (set (tags 0) (set-singleton "b"))
    (Add (Num 1) (Var "x")) ;; materialize a term
  |}));
  let snapshot = E.Serialize.dump_string eng in
  let eng2 = E.Engine.create () in
  ignore (E.run_string eng2 schema);
  E.Serialize.load_string eng2 snapshot;
  Alcotest.(check int) "edge size" 2 (E.Engine.table_size eng2 "edge");
  Alcotest.(check (option string)) "lattice value preserved" (Some "9")
    (Option.map E.Value.to_string (E.Engine.lookup_fact eng2 "best" [ E.Value.VInt 0 ]));
  (match E.Engine.lookup_fact eng2 "tags" [ E.Value.VInt 0 ] with
   | Some (E.Value.VSet elems) -> Alcotest.(check int) "set merged" 2 (List.length elems)
   | _ -> Alcotest.fail "tags missing");
  Alcotest.(check int) "same total rows" (E.Engine.total_rows eng)
    (E.Engine.total_rows eng2)

let test_roundtrip_equivalences () =
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng
       (schema
       ^ {|
    (union (Add (Num 1) (Num 2)) (Add (Num 2) (Num 1)))
    (run 1)
  |}));
  let snapshot = E.Serialize.dump_string eng in
  let eng2 = E.Engine.create () in
  ignore (E.run_string eng2 schema);
  E.Serialize.load_string eng2 snapshot;
  (* terms that were equal stay equal; congruence still works *)
  Alcotest.(check bool) "a = b survives" true
    (E.Engine.check_facts eng2
       [ E.Ast.Eq
           ( E.Ast.Call ("Add", [ E.Ast.Call ("Num", [ E.Ast.Lit (E.Value.VInt 1) ]); E.Ast.Call ("Num", [ E.Ast.Lit (E.Value.VInt 2) ]) ]),
             E.Ast.Call ("Add", [ E.Ast.Call ("Num", [ E.Ast.Lit (E.Value.VInt 2) ]); E.Ast.Call ("Num", [ E.Ast.Lit (E.Value.VInt 1) ]) ]) ) ]);
  Alcotest.(check int) "same classes" (E.Engine.n_classes eng) (E.Engine.n_classes eng2)

let test_resaturation_after_load () =
  (* rules added after loading continue from the snapshot *)
  let eng = E.Engine.create () in
  ignore (E.run_string eng (schema ^ {| (edge 1 2) (edge 2 3) (edge 3 4) |}));
  let snapshot = E.Serialize.dump_string eng in
  let eng2 = E.Engine.create () in
  ignore (E.run_string eng2 schema);
  E.Serialize.load_string eng2 snapshot;
  ignore
    (E.run_string eng2
       {|
    (relation path (i64 i64))
    (rule ((edge x y)) ((path x y)))
    (rule ((path x y) (edge y z)) ((path x z)))
    (run)
    (check (path 1 4))
  |});
  Alcotest.(check int) "closure computed" 6 (E.Engine.table_size eng2 "path")

let test_load_errors () =
  let eng = E.Engine.create () in
  (match E.Serialize.load_string eng "(database (ids (0 Nope)))" with
   | exception E.Serialize.Load_error _ -> ()
   | () -> Alcotest.fail "expected unknown-sort error");
  match E.Serialize.load_string eng "(not-a-database)" with
  | exception E.Serialize.Load_error _ -> ()
  | () -> Alcotest.fail "expected shape error"

let prop_roundtrip_random =
  QCheck2.Test.make ~name:"dump/load roundtrip on random math e-graphs" ~count:40
    QCheck2.Gen.(list_size (int_range 1 6) (int_range 0 5))
    (fun nums ->
      let eng = E.Engine.create () in
      ignore (E.run_string eng schema);
      List.iteri
        (fun _i n ->
          ignore
            (E.run_string eng
               (Printf.sprintf "(Add (Num %d) (Add (Num %d) (Var \"v\")))" n (n + 1))))
        nums;
      ignore (E.run_string eng "(rewrite (Add a b) (Add b a)) (run 3)");
      let snapshot = E.Serialize.dump_string eng in
      let eng2 = E.Engine.create () in
      ignore (E.run_string eng2 schema);
      E.Serialize.load_string eng2 snapshot;
      E.Engine.total_rows eng = E.Engine.total_rows eng2
      && E.Engine.n_classes eng = E.Engine.n_classes eng2)

let () =
  Alcotest.run "serialize"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "tables" `Quick test_roundtrip_tables;
          Alcotest.test_case "equivalences" `Quick test_roundtrip_equivalences;
          Alcotest.test_case "resaturation" `Quick test_resaturation_after_load;
          Alcotest.test_case "errors" `Quick test_load_errors;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_roundtrip_random ]);
    ]
