(* The egglog-backed expression optimizer: strength reduction, folding,
   and a semantics-preservation property. *)

module M = Miniopt

let a0 = M.Arg 0
let a1 = M.Arg 1
let c n = M.Const n

let check_opt msg input expected_str =
  let out = M.optimize input in
  Alcotest.(check string) msg expected_str (M.to_string out)

let test_strength_reduction () =
  check_opt "x*2 -> shift" (M.Mul (a0, c 2)) "(a0 << 1)";
  check_opt "x*8 -> shift" (M.Mul (a0, c 8)) "(a0 << 3)";
  check_opt "8*x -> shift (commuted)" (M.Mul (c 8, a0)) "(a0 << 3)";
  check_opt "x+x -> shift" (M.Add (a0, a0)) "(a0 << 1)";
  (* x*16 via nested shifts from x*2*8 *)
  check_opt "(x*2)*8 -> one shift" (M.Mul (M.Mul (a0, c 2), c 8)) "(a0 << 4)"

let test_multiply_by_three () =
  let out = M.optimize (M.Mul (a0, c 3)) in
  Alcotest.(check bool) "x*3 becomes shift+add" true (M.cost out < M.cost (M.Mul (a0, c 3)));
  Alcotest.(check bool) "shape is shift plus add" true
    (List.mem (M.to_string out) [ "((a0 << 1) + a0)"; "(a0 + (a0 << 1))" ])

let test_folding_and_identities () =
  check_opt "constants fold" (M.Add (c 2, M.Mul (c 3, c 4))) "14";
  check_opt "x*1" (M.Mul (a0, c 1)) "a0";
  check_opt "x+0" (M.Add (a0, c 0)) "a0";
  check_opt "x-x" (M.Sub (a1, a1)) "0";
  check_opt "x*0 swallows work" (M.Mul (M.Mul (a0, a1), c 0)) "0";
  check_opt "double negation" (M.Neg (M.Neg a0)) "a0"

let test_combined () =
  (* (x + 0) * (2 * 2): fold to x*4 then shift *)
  check_opt "pipeline" (M.Mul (M.Add (a0, c 0), M.Mul (c 2, c 2))) "(a0 << 2)";
  (* a*b + a*c with b+c constant-foldable: factor then fold then reduce *)
  check_opt "factor + fold"
    (M.Add (M.Mul (a0, c 3), M.Mul (a0, c 5)))
    "(a0 << 3)"

let test_cost_never_increases () =
  let exprs =
    [
      M.Mul (a0, a1);
      M.Add (M.Mul (a0, c 7), a1);
      M.Sub (M.Shl (a0, 2), M.Neg a1);
      M.Mul (M.Add (a0, a1), M.Sub (a0, a1));
    ]
  in
  List.iter
    (fun e ->
      let out = M.optimize e in
      Alcotest.(check bool) (M.to_string e ^ " not worsened") true (M.cost out <= M.cost e))
    exprs

(* random expression generator *)
let gen_expr =
  QCheck2.Gen.(
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 0 then
              oneof
                [ map (fun c -> M.Const c) (int_range (-20) 20); map (fun i -> M.Arg i) (int_bound 2) ]
            else
              oneof
                [
                  map (fun c -> M.Const c) (int_range (-20) 20);
                  map (fun i -> M.Arg i) (int_bound 2);
                  map2 (fun a b -> M.Add (a, b)) (self (n / 2)) (self (n / 2));
                  map2 (fun a b -> M.Sub (a, b)) (self (n / 2)) (self (n / 2));
                  map2 (fun a b -> M.Mul (a, b)) (self (n / 2)) (self (n / 2));
                  map (fun a -> M.Neg a) (self (n - 1));
                  map2 (fun a k -> M.Shl (a, k)) (self (n - 1)) (int_bound 3);
                ])
          (min n 5)))

let prop_semantics_preserved =
  QCheck2.Test.make ~name:"optimize preserves evaluation on random inputs" ~count:150
    QCheck2.Gen.(pair gen_expr (array_size (pure 3) (int_range (-50) 50)))
    (fun (e, args) ->
      let out = M.optimize ~iterations:5 e in
      M.eval e args = M.eval out args && M.cost out <= M.cost e)

let () =
  Alcotest.run "miniopt"
    [
      ( "rewrites",
        [
          Alcotest.test_case "strength reduction" `Quick test_strength_reduction;
          Alcotest.test_case "multiply by 3" `Quick test_multiply_by_three;
          Alcotest.test_case "folding" `Quick test_folding_and_identities;
          Alcotest.test_case "combined" `Quick test_combined;
          Alcotest.test_case "cost monotone" `Quick test_cost_never_increases;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_semantics_preserved ]);
    ]
