(* The Soufflé-style baseline engine: plain semi-naïve Datalog, eqrel
   relations with their quadratic enumeration, find views and choice. *)

module D = Minidatalog

let test_transitive_closure () =
  let db = D.create () in
  let edge = D.relation db "edge" 2 in
  let path = D.relation db "path" 2 in
  D.rule db ~head:(path, [| D.V "x"; D.V "y" |]) ~body:[ D.Atom (edge, [| D.V "x"; D.V "y" |]) ];
  D.rule db
    ~head:(path, [| D.V "x"; D.V "z" |])
    ~body:[ D.Atom (path, [| D.V "x"; D.V "y" |]); D.Atom (edge, [| D.V "y"; D.V "z" |]) ];
  List.iter (fun (a, b) -> D.fact db edge [| a; b |]) [ (1, 2); (2, 3); (3, 4) ];
  (match D.run db () with
   | D.Fixpoint _ -> ()
   | D.Timeout -> Alcotest.fail "unexpected timeout");
  Alcotest.(check int) "path size" 6 (D.size db path);
  Alcotest.(check bool) "1->4" true (D.mem db path [| 1; 4 |]);
  Alcotest.(check bool) "no 4->1" false (D.mem db path [| 4; 1 |])

let test_semi_naive_matches_naive () =
  (* same fixpoint regardless of seeding order; randomized edges *)
  let run_tc edges =
    let db = D.create () in
    let edge = D.relation db "edge" 2 in
    let path = D.relation db "path" 2 in
    D.rule db ~head:(path, [| D.V "x"; D.V "y" |]) ~body:[ D.Atom (edge, [| D.V "x"; D.V "y" |]) ];
    D.rule db
      ~head:(path, [| D.V "x"; D.V "z" |])
      ~body:[ D.Atom (path, [| D.V "x"; D.V "y" |]); D.Atom (edge, [| D.V "y"; D.V "z" |]) ];
    List.iter (fun (a, b) -> D.fact db edge [| a; b |]) edges;
    ignore (D.run db ());
    D.size db path
  in
  let naive_tc edges =
    (* reference: floyd-warshall style closure *)
    let n = 10 in
    let reach = Array.make_matrix n n false in
    List.iter (fun (a, b) -> reach.(a).(b) <- true) edges;
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
        done
      done
    done;
    let c = ref 0 in
    Array.iter (Array.iter (fun b -> if b then incr c)) reach;
    !c
  in
  let rand = Random.State.make [| 42 |] in
  for _ = 1 to 50 do
    let edges =
      List.init
        (Random.State.int rand 20)
        (fun _ -> (Random.State.int rand 10, Random.State.int rand 10))
    in
    Alcotest.(check int) "tc sizes agree" (naive_tc edges) (run_tc edges)
  done

let test_eqrel_basics () =
  let db = D.create () in
  let eql = D.eqrel db "eql" in
  D.fact db eql [| 1; 2 |];
  D.fact db eql [| 2; 3 |];
  D.fact db eql [| 10; 11 |];
  Alcotest.(check bool) "1~3" true (D.mem db eql [| 1; 3 |]);
  Alcotest.(check bool) "1!~10" false (D.mem db eql [| 1; 10 |]);
  (* quadratic pair count: 3^2 + 2^2 *)
  Alcotest.(check int) "pairs" 13 (D.size db eql);
  let parts = D.classes db eql |> List.map (List.sort compare) |> List.sort compare in
  Alcotest.(check (list (list int))) "partition" [ [ 1; 2; 3 ]; [ 10; 11 ] ] parts

let test_eqrel_in_rules () =
  (* vpt(v, a), propagate through equivalence: the join-modulo-equivalence
     pattern from §6.1 *)
  let db = D.create () in
  let vpt = D.relation db "vpt" 2 in
  let eql = D.eqrel db "eql" in
  let out = D.relation db "out" 2 in
  D.rule db
    ~head:(out, [| D.V "v"; D.V "b" |])
    ~body:[ D.Atom (vpt, [| D.V "v"; D.V "a" |]); D.Atom (eql, [| D.V "a"; D.V "b" |]) ];
  D.fact db vpt [| 100; 1 |];
  D.fact db eql [| 1; 2 |];
  D.fact db eql [| 2; 3 |];
  ignore (D.run db ());
  Alcotest.(check int) "out enumerates the class" 3 (D.size db out);
  Alcotest.(check bool) "out(100,3)" true (D.mem db out [| 100; 3 |])

let test_eqrel_derived_head () =
  (* deriving into an eqrel head builds the closure incrementally *)
  let db = D.create () in
  let link = D.relation db "link" 2 in
  let eql = D.eqrel db "eql" in
  D.rule db
    ~head:(eql, [| D.V "x"; D.V "y" |])
    ~body:[ D.Atom (link, [| D.V "x"; D.V "y" |]) ];
  (* congruence-ish: if x~y then their successors (x+10, y+10) unify too *)
  let succ = D.relation db "succ" 2 in
  D.rule db
    ~head:(eql, [| D.V "sx"; D.V "sy" |])
    ~body:
      [
        D.Atom (eql, [| D.V "x"; D.V "y" |]);
        D.Atom (succ, [| D.V "x"; D.V "sx" |]);
        D.Atom (succ, [| D.V "y"; D.V "sy" |]);
      ];
  D.fact db link [| 1; 2 |];
  D.fact db succ [| 1; 11 |];
  D.fact db succ [| 2; 12 |];
  D.fact db succ [| 11; 21 |];
  D.fact db succ [| 12; 22 |];
  ignore (D.run db ());
  Alcotest.(check bool) "11~12" true (D.mem db eql [| 11; 12 |]);
  Alcotest.(check bool) "21~22 (two levels)" true (D.mem db eql [| 21; 22 |])

let test_find_view () =
  let db = D.create () in
  let eql = D.eqrel db "eql" in
  let inp = D.relation db "inp" 1 in
  let canon = D.relation db "canon" 2 in
  D.rule db
    ~head:(canon, [| D.V "x"; D.V "c" |])
    ~body:[ D.Atom (inp, [| D.V "x" |]); D.Find (eql, D.V "x", D.V "c") ];
  D.fact db inp [| 5 |];
  D.fact db inp [| 9 |];
  D.fact db eql [| 5; 3 |];
  ignore (D.run db ());
  Alcotest.(check bool) "canonical is the min member" true (D.mem db canon [| 5; 3 |]);
  Alcotest.(check bool) "unregistered is self" true (D.mem db canon [| 9; 9 |])

let test_choice () =
  let db = D.create () in
  let pick = D.choice db "pick" 2 ~keys:[ 0 ] in
  D.fact db pick [| 1; 10 |];
  D.fact db pick [| 1; 20 |];
  D.fact db pick [| 2; 30 |];
  Alcotest.(check int) "one per key" 2 (D.size db pick);
  Alcotest.(check bool) "first wins" true (D.mem db pick [| 1; 10 |]);
  Alcotest.(check bool) "second rejected" false (D.mem db pick [| 1; 20 |])

let test_timeout () =
  (* an eqrel-enumeration blowup must hit the timeout, as in Fig. 8 *)
  let db = D.create () in
  let eql = D.eqrel db "eql" in
  let pairs = D.relation db "pairs" 2 in
  D.rule db
    ~head:(pairs, [| D.V "x"; D.V "y" |])
    ~body:[ D.Atom (eql, [| D.V "x"; D.V "y" |]) ];
  (* one big class: enumerating it is quadratic *)
  for i = 1 to 3000 do
    D.fact db eql [| 0; i |]
  done;
  match D.run db ~timeout_s:0.05 () with
  | D.Timeout -> ()
  | D.Fixpoint _ ->
    (* machines differ; accept fixpoint but then the size must be the full
       quadratic enumeration *)
    Alcotest.(check int) "quadratic" (3001 * 3001) (D.size db eql)

let test_static_errors () =
  let db = D.create () in
  let r = D.relation db "r" 2 in
  (match D.rule db ~head:(r, [| D.V "x"; D.V "y" |]) ~body:[ D.Atom (r, [| D.V "x"; D.V "x" |]) ] with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "expected unbound head variable error");
  match D.fact db r [| 1 |] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected arity error"

let () =
  Alcotest.run "minidatalog"
    [
      ( "plain",
        [
          Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
          Alcotest.test_case "semi-naive = reference" `Quick test_semi_naive_matches_naive;
          Alcotest.test_case "static errors" `Quick test_static_errors;
        ] );
      ( "eqrel",
        [
          Alcotest.test_case "basics" `Quick test_eqrel_basics;
          Alcotest.test_case "join modulo equivalence" `Quick test_eqrel_in_rules;
          Alcotest.test_case "derived heads" `Quick test_eqrel_derived_head;
          Alcotest.test_case "find view" `Quick test_find_view;
          Alcotest.test_case "timeout" `Quick test_timeout;
        ] );
      ("choice", [ Alcotest.test_case "first wins" `Quick test_choice ]);
    ]
