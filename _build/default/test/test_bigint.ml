(* Unit + property tests for the arbitrary-precision integers. *)

module B = Bigint

let bi = B.of_int
let check_b msg expected actual = Alcotest.(check string) msg expected (B.to_string actual)

let test_of_to_int () =
  List.iter
    (fun n ->
      Alcotest.(check (option int))
        (Printf.sprintf "roundtrip %d" n)
        (Some n)
        (B.to_int (bi n)))
    [ 0; 1; -1; 42; -42; 1 lsl 29; (1 lsl 30) - 1; 1 lsl 30; 1 lsl 31; max_int; min_int; min_int + 1 ]

let test_to_string () =
  check_b "zero" "0" B.zero;
  check_b "one" "1" B.one;
  check_b "neg" "-17" (bi (-17));
  check_b "big" "1152921504606846976" (B.mul (bi (1 lsl 30)) (bi (1 lsl 30)));
  check_b "max_int" (string_of_int max_int) (bi max_int);
  check_b "min_int" (string_of_int min_int) (bi min_int)

let test_of_string () =
  check_b "parse small" "12345" (B.of_string "12345");
  check_b "parse neg" "-987654321" (B.of_string "-987654321");
  check_b "parse 30 digits" "123456789012345678901234567890"
    (B.of_string "123456789012345678901234567890");
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty string") (fun () ->
      ignore (B.of_string ""));
  (match B.of_string "12a" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected Invalid_argument")

let test_arith_basics () =
  check_b "add carry" "1073741824" (B.add (bi ((1 lsl 30) - 1)) B.one);
  check_b "sub borrow" "1073741823" (B.sub (bi (1 lsl 30)) B.one);
  check_b "mul sign" "-6" (B.mul (bi 2) (bi (-3)));
  check_b "pow" "1024" (B.pow (bi 2) 10);
  check_b "pow big" "1267650600228229401496703205376" (B.pow (bi 2) 100);
  check_b "shift" "2147483648" (B.shift_left B.one 31)

let test_divmod () =
  let q, r = B.divmod (bi 17) (bi 5) in
  check_b "q" "3" q;
  check_b "r" "2" r;
  let q, r = B.divmod (bi (-17)) (bi 5) in
  check_b "q neg" "-3" q;
  check_b "r neg" "-2" r;
  let big = B.pow (bi 10) 40 in
  let q, r = B.divmod big (B.of_string "123456789123456789") in
  Alcotest.(check bool) "reconstruct" true
    (B.equal big (B.add (B.mul q (B.of_string "123456789123456789")) r));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (B.divmod B.one B.zero))

let test_gcd () =
  check_b "gcd" "6" (B.gcd (bi 54) (bi 24));
  check_b "gcd neg" "6" (B.gcd (bi (-54)) (bi 24));
  check_b "gcd zero" "7" (B.gcd B.zero (bi 7));
  check_b "gcd big" "1" (B.gcd (B.pow (bi 2) 101) (B.pow (bi 3) 61))

let test_compare () =
  Alcotest.(check bool) "lt" true (B.compare (bi (-5)) (bi 3) < 0);
  Alcotest.(check bool) "big vs small" true (B.compare (B.pow (bi 10) 30) (bi max_int) > 0);
  Alcotest.(check bool) "neg big" true (B.compare (B.neg (B.pow (bi 10) 30)) (bi min_int) < 0)

let test_to_float () =
  Alcotest.(check (float 1e-6)) "to_float small" 123456.0 (B.to_float (bi 123456));
  Alcotest.(check (float 1e9)) "to_float 2^62" (Float.ldexp 1.0 62) (B.to_float (bi min_int |> B.neg))

(* ---- properties ---- *)

let small_int = QCheck2.Gen.int_range (-1_000_000_000) 1_000_000_000
let any_int = QCheck2.Gen.oneof [ small_int; QCheck2.Gen.int ]

let prop_add_matches_int =
  QCheck2.Test.make ~name:"bigint add matches int on safe range" ~count:500
    QCheck2.Gen.(pair small_int small_int)
    (fun (a, b) -> B.to_int (B.add (bi a) (bi b)) = Some (a + b))

let prop_mul_matches_int =
  QCheck2.Test.make ~name:"bigint mul matches int on safe range" ~count:500
    QCheck2.Gen.(pair (int_range (-100000) 100000) (int_range (-100000) 100000))
    (fun (a, b) -> B.to_int (B.mul (bi a) (bi b)) = Some (a * b))

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"bigint to_string/of_string roundtrip" ~count:500 any_int (fun a ->
      B.equal (bi a) (B.of_string (B.to_string (bi a))))

let prop_divmod_invariant =
  QCheck2.Test.make ~name:"bigint a = q*b + r, |r| < |b|" ~count:500
    QCheck2.Gen.(triple any_int any_int (int_range 1 12))
    (fun (a, b, k) ->
      let a = B.mul (bi a) (B.pow (bi 7) k) and b = bi b in
      if B.is_zero b then QCheck2.assume_fail ()
      else begin
        let q, r = B.divmod a b in
        B.equal a (B.add (B.mul q b) r)
        && B.compare (B.abs r) (B.abs b) < 0
        && (B.is_zero r || B.sign r = B.sign a)
      end)

let prop_gcd_divides =
  QCheck2.Test.make ~name:"bigint gcd divides both" ~count:300
    QCheck2.Gen.(pair any_int any_int)
    (fun (a, b) ->
      if a = 0 && b = 0 then true
      else begin
        let g = B.gcd (bi a) (bi b) in
        B.is_zero (B.rem (bi a) g) && B.is_zero (B.rem (bi b) g)
      end)

let prop_mul_assoc =
  QCheck2.Test.make ~name:"bigint mul associative" ~count:300
    QCheck2.Gen.(triple any_int any_int any_int)
    (fun (a, b, c) ->
      B.equal (B.mul (bi a) (B.mul (bi b) (bi c))) (B.mul (B.mul (bi a) (bi b)) (bi c)))

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_add_matches_int;
        prop_mul_matches_int;
        prop_string_roundtrip;
        prop_divmod_invariant;
        prop_gcd_divides;
        prop_mul_assoc;
      ]
  in
  Alcotest.run "bigint"
    [
      ( "unit",
        [
          Alcotest.test_case "of_int/to_int" `Quick test_of_to_int;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "arith" `Quick test_arith_basics;
          Alcotest.test_case "divmod" `Quick test_divmod;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "to_float" `Quick test_to_float;
        ] );
      ("properties", props);
    ]
