(* Steensgaard analyses (§6.1): the egglog encoding, the reference
   hand-written analysis, and the Soufflé-style encodings must agree
   (except cclyzer++, which is unsound by construction). *)

module Ir = Pointsto.Ir
module Progen = Pointsto.Progen
module Reference = Pointsto.Reference
module Egglog_enc = Pointsto.Egglog_enc
module Datalog_enc = Pointsto.Datalog_enc
module Andersen = Pointsto.Andersen

let sites_to_string sets =
  String.concat ";"
    (Array.to_list
       (Array.map (fun l -> "[" ^ String.concat "," (List.map string_of_int l) ^ "]") sets))

let tiny_program =
  (* v0 = &h0; v1 = &h1; v2 = v0; *v2 = v1; v3 = *v0; v4 = &h2 *)
  {
    Ir.n_vars = 5;
    n_sites = 3;
    n_fields = 2;
    insts =
      [|
        Ir.Alloc (0, 0); Ir.Alloc (1, 1); Ir.Copy (2, 0); Ir.Store (2, 1); Ir.Load (3, 0);
        Ir.Alloc (4, 2);
      |];
  }

let test_reference_tiny () =
  let st = Reference.analyze tiny_program in
  let sites = Reference.var_sites tiny_program st in
  Alcotest.(check (list int)) "v0 -> h0" [ 0 ] sites.(0);
  Alcotest.(check (list int)) "v2 -> h0 (copy)" [ 0 ] sites.(2);
  Alcotest.(check (list int)) "v3 -> h1 (through store/load)" [ 1 ] sites.(3);
  Alcotest.(check (list int)) "v4 -> h2 (independent)" [ 2 ] sites.(4)

let test_reference_unification () =
  (* one pointer to two allocs unifies them *)
  let p =
    {
      Ir.n_vars = 3;
      n_sites = 2;
      n_fields = 1;
      insts = [| Ir.Alloc (0, 0); Ir.Alloc (0, 1); Ir.Alloc (1, 0) |];
    }
  in
  let st = Reference.analyze p in
  let sites = Reference.var_sites p st in
  Alcotest.(check (list int)) "v0 sees both" [ 0; 1 ] sites.(0);
  Alcotest.(check (list int)) "v1 dragged in (h0 ~ h1)" [ 0; 1 ] sites.(1);
  Alcotest.(check (list int)) "v2 nothing" [] sites.(2)

let test_reference_store_before_alloc () =
  (* *p = q before p has an allocation: unification must still link them *)
  let p =
    {
      Ir.n_vars = 5;
      n_sites = 2;
      n_fields = 1;
      insts =
        [|
          Ir.Copy (1, 0);  (* p2 = p1 *)
          Ir.Store (0, 2);  (* *p1 = q *)
          Ir.Load (3, 1);  (* d = *p2 *)
          Ir.Alloc (3, 0);  (* d = &h0 *)
          Ir.Alloc (2, 1);  (* q = &h1 *)
        |];
    }
  in
  let st = Reference.analyze p in
  let sites = Reference.var_sites p st in
  Alcotest.(check (list int)) "d and q unified -> both sites" [ 0; 1 ] sites.(3);
  Alcotest.(check (list int)) "q too" [ 0; 1 ] sites.(2)

let test_egglog_matches_reference () =
  let rand_programs =
    List.concat_map
      (fun size -> List.map (fun seed -> Progen.generate ~size ~seed ()) [ 1; 2; 3; 4 ])
      [ 2; 4; 8 ]
  in
  List.iteri
    (fun i p ->
      Alcotest.(check bool) "valid program" true (Ir.validate p);
      let ref_sites = Reference.var_sites p (Reference.analyze p) in
      let eng, _report = Egglog_enc.analyze p in
      let egg_sites = Egglog_enc.var_sites p eng in
      Alcotest.(check string)
        (Printf.sprintf "program %d egglog = reference" i)
        (sites_to_string ref_sites) (sites_to_string egg_sites))
    rand_programs

let test_egglog_ni_matches () =
  let p = Progen.generate ~size:6 ~seed:7 () in
  let ref_sites = Reference.var_sites p (Reference.analyze p) in
  let eng, _ = Egglog_enc.analyze ~seminaive:false p in
  Alcotest.(check string) "egglogNI = reference" (sites_to_string ref_sites)
    (sites_to_string (Egglog_enc.var_sites p eng))

let datalog_sites flavor p =
  let r = Datalog_enc.analyze flavor ~timeout_s:60.0 p in
  (match r.Datalog_enc.outcome with
   | Minidatalog.Fixpoint _ -> ()
   | Minidatalog.Timeout -> Alcotest.fail "datalog encoding timed out on a test-size program");
  Datalog_enc.var_sites r

let test_eqrel_encoding_sound () =
  List.iter
    (fun (size, seed) ->
      let p = Progen.generate ~size ~seed () in
      let ref_sites = Reference.var_sites p (Reference.analyze p) in
      Alcotest.(check string)
        (Printf.sprintf "eqrel = reference (size %d seed %d)" size seed)
        (sites_to_string ref_sites)
        (sites_to_string (datalog_sites Datalog_enc.Eqrel p)))
    [ (2, 1); (2, 2); (3, 3) ]

let test_patched_encoding_sound () =
  List.iter
    (fun (size, seed) ->
      let p = Progen.generate ~size ~seed () in
      let ref_sites = Reference.var_sites p (Reference.analyze p) in
      Alcotest.(check string)
        (Printf.sprintf "patched = reference (size %d seed %d)" size seed)
        (sites_to_string ref_sites)
        (sites_to_string (datalog_sites Datalog_enc.Patched p)))
    [ (2, 1); (2, 2); (3, 3); (4, 4); (6, 5) ]

let test_cclyzer_unsound () =
  (* cclyzer++ must be an under-approximation: never more sites than the
     reference, and strictly fewer where its missing contents-congruence
     bites (two stores through the same pointer and no healing load —
     the congruence bug the paper reports). *)
  let double_store =
    {
      Ir.n_vars = 4;
      n_sites = 3;
      n_fields = 1;
      insts =
        [|
          Ir.Alloc (0, 0);  (* p = &h0 *)
          Ir.Alloc (1, 1);  (* q1 = &h1 *)
          Ir.Alloc (2, 2);  (* q2 = &h2 *)
          Ir.Store (0, 1);  (* *p = q1 *)
          Ir.Store (0, 2);  (* *p = q2: reference unifies h1 ~ h2 *)
        |];
    }
  in
  let ref_sites = Reference.var_sites double_store (Reference.analyze double_store) in
  Alcotest.(check (list int)) "reference unifies q1's sites" [ 1; 2 ] ref_sites.(1);
  let cc_sites = datalog_sites Datalog_enc.Cclyzer double_store in
  Alcotest.(check (list int)) "cclyzer misses the unification" [ 1 ] cc_sites.(1);
  (* patched fixes exactly this *)
  let patched_sites = datalog_sites Datalog_enc.Patched double_store in
  Alcotest.(check (list int)) "patched agrees with reference" [ 1; 2 ] patched_sites.(1);
  (* and on random programs cclyzer never over-approximates *)
  List.iter
    (fun seed ->
      let p = Progen.generate ~size:6 ~seed () in
      let ref_sites = Reference.var_sites p (Reference.analyze p) in
      let cc_sites = datalog_sites Datalog_enc.Cclyzer p in
      Array.iteri
        (fun v sites ->
          List.iter
            (fun s ->
              if not (List.mem s ref_sites.(v)) then
                Alcotest.failf "cclyzer derived v%d -> h%d not in reference" v s)
            sites)
        cc_sites)
    [ 1; 2; 3; 4; 5 ]


let test_andersen_refines_steensgaard () =
  (* Andersen (subset-based) must be at least as precise as Steensgaard
     (unification-based): per-variable site sets are subsets, and on most
     programs strictly smaller somewhere (§6.1's precision trade-off). *)
  let strictly_finer = ref false in
  List.iter
    (fun seed ->
      let p = Progen.generate ~size:5 ~seed () in
      let steens = Reference.var_sites p (Reference.analyze p) in
      let anders = Andersen.var_sites p (Andersen.analyze p) in
      Array.iteri
        (fun v a_sites ->
          List.iter
            (fun s ->
              if not (List.mem s steens.(v)) then
                Alcotest.failf "andersen v%d -> h%d missing from steensgaard" v s)
            a_sites;
          if List.length a_sites < List.length steens.(v) then strictly_finer := true)
        anders)
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "strictly more precise somewhere" true !strictly_finer

let test_andersen_datalog_matches_reference () =
  List.iter
    (fun (size, seed) ->
      let p = Progen.generate ~size ~seed () in
      let direct = Andersen.var_sites p (Andersen.analyze p) in
      let outcome, _, datalog = Andersen.datalog_analyze p in
      (match outcome with
       | Minidatalog.Fixpoint _ -> ()
       | Minidatalog.Timeout -> Alcotest.fail "andersen datalog timed out");
      Alcotest.(check string)
        (Printf.sprintf "andersen datalog = direct (size %d seed %d)" size seed)
        (sites_to_string direct) (sites_to_string datalog))
    [ (2, 1); (3, 2); (5, 3); (8, 4) ]

let test_generator_determinism () =
  let p1 = Progen.generate ~size:5 ~seed:9 () in
  let p2 = Progen.generate ~size:5 ~seed:9 () in
  Alcotest.(check bool) "same seed same program" true (p1 = p2);
  let p3 = Progen.generate ~size:5 ~seed:10 () in
  Alcotest.(check bool) "different seed different program" true (p1 <> p3)

let () =
  Alcotest.run "pointsto"
    [
      ( "reference",
        [
          Alcotest.test_case "tiny" `Quick test_reference_tiny;
          Alcotest.test_case "unification" `Quick test_reference_unification;
          Alcotest.test_case "store before alloc" `Quick test_reference_store_before_alloc;
        ] );
      ( "egglog",
        [
          Alcotest.test_case "matches reference" `Quick test_egglog_matches_reference;
          Alcotest.test_case "NI matches too" `Quick test_egglog_ni_matches;
        ] );
      ( "datalog-encodings",
        [
          Alcotest.test_case "eqrel sound" `Quick test_eqrel_encoding_sound;
          Alcotest.test_case "patched sound" `Quick test_patched_encoding_sound;
          Alcotest.test_case "cclyzer unsound" `Quick test_cclyzer_unsound;
        ] );
      ( "andersen",
        [
          Alcotest.test_case "refines steensgaard" `Quick test_andersen_refines_steensgaard;
          Alcotest.test_case "datalog = direct" `Quick test_andersen_datalog_matches_reference;
        ] );
      ("generator", [ Alcotest.test_case "determinism" `Quick test_generator_determinism ]);
    ]
