(* Differential testing: the same computation run through independent
   implementations must agree.

   - generic join (with its single-atom / two-atom fast paths and caches)
     vs. brute-force query evaluation;
   - the egglog engine vs. the Soufflé-style minidatalog on pure Datalog;
   - the egglog engine vs. the egg-style e-graph on random rewriting;
   - database invariants (canonical keys, functional dependency, rebuild
     idempotence) after random workloads. *)

module E = Egglog

(* ------------------------------------------------------------------ *)
(* Generic join vs brute force                                         *)
(* ------------------------------------------------------------------ *)

let domain = 6

(* A random database over relations r1(i64), r2(i64 i64), r3(i64 i64 i64). *)
let random_db rand =
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng "(relation r1 (i64)) (relation r2 (i64 i64)) (relation r3 (i64 i64 i64))");
  let v () = E.Value.VInt (Random.State.int rand domain) in
  for _ = 1 to 4 do
    E.Engine.set_fact eng "r1" [ v () ] E.Value.VUnit
  done;
  for _ = 1 to 10 do
    E.Engine.set_fact eng "r2" [ v (); v () ] E.Value.VUnit
  done;
  for _ = 1 to 12 do
    E.Engine.set_fact eng "r3" [ v (); v (); v () ] E.Value.VUnit
  done;
  eng

let var_pool = [ "a"; "b"; "c"; "d" ]

let random_query rand : E.Ast.fact list * string list =
  let used = ref [] in
  let term () =
    if Random.State.int rand 4 = 0 then E.Ast.Lit (E.Value.VInt (Random.State.int rand domain))
    else begin
      let x = List.nth var_pool (Random.State.int rand (List.length var_pool)) in
      if not (List.mem x !used) then used := x :: !used;
      E.Ast.Var x
    end
  in
  let atom () =
    match Random.State.int rand 3 with
    | 0 -> E.Ast.Holds (E.Ast.Call ("r1", [ term () ]))
    | 1 -> E.Ast.Holds (E.Ast.Call ("r2", [ term (); term () ]))
    | _ -> E.Ast.Holds (E.Ast.Call ("r3", [ term (); term (); term () ]))
  in
  let n_atoms = 1 + Random.State.int rand 3 in
  let atoms = List.init n_atoms (fun _ -> atom ()) in
  (* a guard over variables the atoms bound *)
  let guards =
    if !used = [] || Random.State.int rand 2 = 0 then []
    else begin
      let x = List.nth !used (Random.State.int rand (List.length !used)) in
      let y = List.nth !used (Random.State.int rand (List.length !used)) in
      let op = if Random.State.bool rand then "<" else "!=" in
      [ E.Ast.Holds (E.Ast.Call (op, [ E.Ast.Var x; E.Ast.Var y ])) ]
    end
  in
  (atoms @ guards, List.sort compare !used)

(* Brute force: try every assignment of the query variables. *)
let brute_force eng (facts : E.Ast.fact list) (vars : string list) : string list =
  let db = E.Engine.database eng in
  let rec eval env (e : E.Ast.expr) : E.Value.t option =
    match e with
    | E.Ast.Lit v -> Some v
    | E.Ast.Var x -> Some (E.Value.VInt (List.assoc x env))
    | E.Ast.Call (f, args) -> (
      let vals = List.map (eval env) args in
      if List.exists Option.is_none vals then None
      else begin
        let vals = Array.of_list (List.map Option.get vals) in
        match E.Database.find_func db (E.Symbol.intern f) with
        | Some table -> E.Database.lookup db table vals
        | None -> (
          match E.Primitives.find f with
          | Some p -> p.E.Primitives.impl vals
          | None -> None)
      end)
  in
  let holds env fact =
    match fact with
    | E.Ast.Eq (e1, e2) -> (
      match (eval env e1, eval env e2) with
      | Some v1, Some v2 -> E.Value.equal v1 v2
      | _ -> false)
    | E.Ast.Holds e -> eval env e <> None
  in
  let results = ref [] in
  let rec assign env = function
    | [] ->
      if List.for_all (holds env) facts then
        results :=
          String.concat ","
            (List.map (fun (x, v) -> Printf.sprintf "%s=%d" x v) (List.sort compare env))
          :: !results
    | x :: rest ->
      for v = 0 to domain - 1 do
        assign ((x, v) :: env) rest
      done
  in
  assign [] vars;
  List.sort compare !results

let join_results eng (facts : E.Ast.fact list) (vars : string list) : string list =
  let db = E.Engine.database eng in
  let env =
    {
      E.Compile.find_func =
        (fun name ->
          match E.Database.find_func db (E.Symbol.intern name) with
          | Some t -> Some (E.Table.func t)
          | None -> None);
    }
  in
  match E.Compile.compile_query env facts with
  | exception E.Compile.Unsat -> []
  | q ->
    let acc = ref [] in
    let name_slot name =
      let rec find i = if q.E.Compile.var_names.(i) = name then i else find (i + 1) in
      find 0
    in
    (* user variables may live under an alias after equality resolution *)
    let slot_of name =
      match List.assoc_opt name q.E.Compile.name_args with
      | Some (E.Compile.A_var v) -> `Slot v
      | Some (E.Compile.A_const c) -> `Const c
      | None -> `Slot (name_slot name)
    in
    let ranges = Array.make (Array.length q.E.Compile.atoms) E.Join.all_rows in
    E.Join.search db q ~ranges (fun binding ->
        let line =
          String.concat ","
            (List.map
               (fun x ->
                 let v =
                   match slot_of x with `Slot s -> binding.(s) | `Const c -> c
                 in
                 match v with
                 | E.Value.VInt i -> Printf.sprintf "%s=%d" x i
                 | other -> Printf.sprintf "%s=%s" x (E.Value.to_string other))
               vars)
        in
        acc := line :: !acc);
    List.sort_uniq compare !acc

let prop_join_matches_brute_force =
  QCheck2.Test.make ~name:"generic join = brute force on random queries" ~count:200
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let eng = random_db rand in
      let facts, vars = random_query rand in
      match join_results eng facts vars with
      | exception E.Compile.Error _ -> QCheck2.assume_fail ()
      | got ->
        let want = List.sort_uniq compare (brute_force eng facts vars) in
        if got <> want then
          QCheck2.Test.fail_reportf "query %s:@.got  %s@.want %s"
            (String.concat " " (List.map (Format.asprintf "%a" E.Ast.pp_fact) facts))
            (String.concat ";" got) (String.concat ";" want)
        else true)

(* ------------------------------------------------------------------ *)
(* egglog vs minidatalog on pure Datalog                               *)
(* ------------------------------------------------------------------ *)

let tc_with_engines edges =
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng
       {|
      (relation edge (i64 i64))
      (relation path (i64 i64))
      (relation same_gen (i64 i64))
      (rule ((edge x y)) ((path x y)))
      (rule ((path x y) (edge y z)) ((path x z)))
      (rule ((edge p x) (edge p y)) ((same_gen x y)))
      (rule ((same_gen x y) (edge x a) (edge y b)) ((same_gen a b)))
    |});
  List.iter
    (fun (a, b) ->
      E.Engine.set_fact eng "edge" [ E.Value.VInt a; E.Value.VInt b ] E.Value.VUnit)
    edges;
  ignore (E.Engine.run_iterations eng 100);
  let d = Minidatalog.create () in
  let edge = Minidatalog.relation d "edge" 2 in
  let path = Minidatalog.relation d "path" 2 in
  let same_gen = Minidatalog.relation d "same_gen" 2 in
  let v x = Minidatalog.V x in
  Minidatalog.rule d ~head:(path, [| v "x"; v "y" |]) ~body:[ Minidatalog.Atom (edge, [| v "x"; v "y" |]) ];
  Minidatalog.rule d
    ~head:(path, [| v "x"; v "z" |])
    ~body:[ Minidatalog.Atom (path, [| v "x"; v "y" |]); Minidatalog.Atom (edge, [| v "y"; v "z" |]) ];
  Minidatalog.rule d
    ~head:(same_gen, [| v "x"; v "y" |])
    ~body:[ Minidatalog.Atom (edge, [| v "p"; v "x" |]); Minidatalog.Atom (edge, [| v "p"; v "y" |]) ];
  Minidatalog.rule d
    ~head:(same_gen, [| v "a"; v "b" |])
    ~body:
      [
        Minidatalog.Atom (same_gen, [| v "x"; v "y" |]);
        Minidatalog.Atom (edge, [| v "x"; v "a" |]);
        Minidatalog.Atom (edge, [| v "y"; v "b" |]);
      ];
  List.iter (fun (a, b) -> Minidatalog.fact d edge [| a; b |]) edges;
  ignore (Minidatalog.run d ());
  ( (E.Engine.table_size eng "path", E.Engine.table_size eng "same_gen"),
    (Minidatalog.size d path, Minidatalog.size d same_gen) )

let prop_egglog_matches_minidatalog =
  QCheck2.Test.make ~name:"egglog = minidatalog on Datalog programs" ~count:60
    QCheck2.Gen.(list_size (int_range 0 18) (pair (int_range 0 7) (int_range 0 7)))
    (fun edges ->
      let egglog_sizes, datalog_sizes = tc_with_engines edges in
      egglog_sizes = datalog_sizes)

(* ------------------------------------------------------------------ *)
(* egglog vs the egg-style e-graph on random rewriting                 *)
(* ------------------------------------------------------------------ *)

let all_math_rules = Math_suite.rules

let prop_egglog_matches_egraph =
  QCheck2.Test.make ~name:"egglog(NI) = egg on random seeds/rules" ~count:40
    QCheck2.Gen.(
      pair (int_bound 1_000_000) (list_size (int_range 2 6) (int_bound (List.length all_math_rules - 1))))
    (fun (seed, rule_idxs) ->
      let rand = Random.State.make [| seed |] in
      let rules = List.sort_uniq compare rule_idxs |> List.map (List.nth all_math_rules) in
      (* a couple of random seed terms from the suite *)
      let seeds =
        List.filteri (fun i _ -> (i + seed) mod 3 = 0) Math_suite.seeds
        |> fun l -> if l = [] then [ List.hd Math_suite.seeds ] else l
      in
      ignore rand;
      let eg = Egraph.create () in
      List.iter (fun s -> ignore (Egraph.add_term eg (Egraph.term_of_string s))) seeds;
      let rws =
        List.map (fun (name, lhs, rhs) -> Egraph.rewrite_of_strings ~name lhs rhs) rules
      in
      ignore (Egraph.run eg rws 4);
      let eng = E.Engine.create ~seminaive:false () in
      ignore (E.run_string eng Math_suite.egglog_prelude);
      List.iter
        (fun (name, lhs, rhs) ->
          ignore name;
          ignore
            (E.run_string eng
               (Printf.sprintf "(rewrite %s %s)"
                  (Math_suite.to_egglog (Sexpr.parse_one lhs))
                  (Math_suite.to_egglog (Sexpr.parse_one rhs)))))
        rules;
      List.iteri
        (fun i s ->
          ignore
            (E.run_string eng
               (Printf.sprintf "(define s%d %s)" i (Math_suite.to_egglog (Sexpr.parse_one s)))))
        seeds;
      ignore (E.Engine.run_iterations eng 4);
      let tuples =
        List.fold_left
          (fun acc f -> acc + E.Engine.table_size eng f)
          0
          [ "Num"; "Var"; "Add"; "Sub"; "Mul"; "Div"; "Pow"; "Ln"; "Sqrt"; "Diff"; "Integral" ]
      in
      Egraph.n_nodes eg = tuples && Egraph.n_classes eg = E.Engine.n_classes eng)

(* ------------------------------------------------------------------ *)
(* Database invariants after random workloads                         *)
(* ------------------------------------------------------------------ *)

let check_db_invariants eng =
  let db = E.Engine.database eng in
  let ok = ref true in
  E.Database.iter_tables db (fun table ->
      E.Table.iter
        (fun key row ->
          (* canonical keys and values *)
          let canon_key = E.Database.canon_key db key in
          if not (Array.for_all2 E.Value.equal key canon_key) then ok := false;
          if not (E.Value.equal row.E.Table.value (E.Database.canon db row.E.Table.value)) then
            ok := false)
        table);
  (* rebuild must be a no-op on a rebuilt database *)
  let changes = E.Database.change_counter db in
  let rows = E.Database.total_rows db in
  E.Database.rebuild db;
  if E.Database.change_counter db <> changes || E.Database.total_rows db <> rows then ok := false;
  !ok

let prop_db_invariants =
  QCheck2.Test.make ~name:"canonical db + idempotent rebuild after random ops" ~count:60
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let eng = E.Engine.create () in
      ignore
        (E.run_string eng
           {|
          (sort V)
          (function mk (i64) V)
          (function f (V V) V)
          (function measure (V) i64 :merge (max old new))
        |});
      let nodes = ref [] in
      for i = 0 to 9 do
        nodes := E.Engine.eval_call eng "mk" [ E.Value.VInt i ] :: !nodes
      done;
      let pick () = List.nth !nodes (Random.State.int rand (List.length !nodes)) in
      for _ = 1 to 40 do
        match Random.State.int rand 4 with
        | 0 -> nodes := E.Engine.eval_call eng "f" [ pick (); pick () ] :: !nodes
        | 1 -> ignore (E.Engine.union_values eng (pick ()) (pick ()))
        | 2 -> E.Engine.set_fact eng "measure" [ pick () ] (E.Value.VInt (Random.State.int rand 100))
        | _ -> E.Engine.rebuild eng
      done;
      E.Engine.rebuild eng;
      check_db_invariants eng)

let prop_congruence_vs_egraph =
  (* random unions over a term universe: the engine's rebuild and the
     e-graph's congruence closure must induce the same partition sizes *)
  QCheck2.Test.make ~name:"congruence closure = egraph on random unions" ~count:60
    QCheck2.Gen.(list_size (int_range 0 15) (pair (int_bound 9) (int_bound 9)))
    (fun unions ->
      let eng = E.Engine.create () in
      ignore (E.run_string eng "(sort V) (function mk (i64) V) (function g (V) V)");
      let base = Array.init 5 (fun i -> E.Engine.eval_call eng "mk" [ E.Value.VInt i ]) in
      let eg2 = Egraph.create () in
      let mk i = Egraph.add_term eg2 (Egraph.term_of_string (Printf.sprintf "(mk %d)" i)) in
      let base2 = Array.init 5 mk in
      let g2 = Array.map (fun b -> Egraph.add_node eg2 (Egraph.Op "g") [ b ]) base2 in
      let eg_univ = Array.append base2 g2 in
      let egg_univ =
        Array.append base (Array.map (fun v -> E.Engine.eval_call eng "g" [ v ]) base)
      in
      List.iter
        (fun (a, b) ->
          ignore (Egraph.union eg2 eg_univ.(a) eg_univ.(b));
          ignore (E.Engine.union_values eng egg_univ.(a) egg_univ.(b)))
        unions;
      Egraph.rebuild eg2;
      E.Engine.rebuild eng;
      (* compare the partitions over the universe *)
      let partition_sig find univ =
        let reps = Array.map find univ in
        let canon = Hashtbl.create 16 in
        Array.iter
          (fun r -> if not (Hashtbl.mem canon r) then Hashtbl.add canon r (Hashtbl.length canon))
          reps;
        Array.to_list (Array.map (Hashtbl.find canon) reps)
      in
      let egg_sig =
        partition_sig
          (fun v -> E.Value.to_string (E.Database.canon (E.Engine.database eng) v))
          egg_univ
      in
      let eg_sig = partition_sig (fun id -> string_of_int (Egraph.find eg2 id)) eg_univ in
      egg_sig = eg_sig)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_join_matches_brute_force;
        prop_egglog_matches_minidatalog;
        prop_egglog_matches_egraph;
        prop_db_invariants;
        prop_congruence_vs_egraph;
      ]
  in
  Alcotest.run "differential" [ ("properties", props) ]
