(* Union-find invariants, including the merge log the rebuilder relies on. *)

module U = Union_find

let test_basic () =
  let uf = U.create () in
  let a = U.make_set uf and b = U.make_set uf and c = U.make_set uf in
  Alcotest.(check bool) "fresh distinct" false (U.equiv uf a b);
  ignore (U.union uf a b);
  Alcotest.(check bool) "a~b" true (U.equiv uf a b);
  Alcotest.(check bool) "a!~c" false (U.equiv uf a c);
  ignore (U.union uf b c);
  Alcotest.(check bool) "transitive" true (U.equiv uf a c);
  Alcotest.(check int) "one class" 1 (U.n_classes uf)

let test_union_returns_winner () =
  let uf = U.create () in
  let a = U.make_set uf and b = U.make_set uf in
  let w = U.union uf a b in
  Alcotest.(check bool) "winner canonical" true (U.is_canonical uf w);
  Alcotest.(check int) "find a" w (U.find uf a);
  Alcotest.(check int) "find b" w (U.find uf b);
  Alcotest.(check int) "idempotent union" w (U.union uf a b)

let test_dirty_log () =
  let uf = U.create () in
  let a = U.make_set uf and b = U.make_set uf and c = U.make_set uf in
  Alcotest.(check bool) "clean initially" false (U.has_dirty uf);
  ignore (U.union uf a b);
  ignore (U.union uf a c);
  Alcotest.(check int) "two losers logged" 2 (List.length (U.dirty uf));
  List.iter
    (fun loser -> Alcotest.(check bool) "loser not canonical" false (U.is_canonical uf loser))
    (U.dirty uf);
  U.clear_dirty uf;
  Alcotest.(check bool) "cleared" false (U.has_dirty uf);
  ignore (U.union uf a b);
  Alcotest.(check bool) "no-op union logs nothing" false (U.has_dirty uf)

let test_copy_isolation () =
  let uf = U.create () in
  let a = U.make_set uf and b = U.make_set uf in
  let snapshot = U.copy uf in
  ignore (U.union uf a b);
  Alcotest.(check bool) "original merged" true (U.equiv uf a b);
  Alcotest.(check bool) "snapshot untouched" false (U.equiv snapshot a b)

let test_growth () =
  let uf = U.create () in
  let ids = Array.init 10_000 (fun _ -> U.make_set uf) in
  Alcotest.(check int) "all allocated" 10_000 (U.size uf);
  Array.iteri (fun i id -> Alcotest.(check int) "dense ids" i id) ids;
  for i = 1 to 9_999 do
    ignore (U.union uf ids.(0) ids.(i))
  done;
  Alcotest.(check int) "single class" 1 (U.n_classes uf)

(* Property: union-find equivalence matches a naive partition refinement. *)
let prop_matches_naive =
  QCheck2.Test.make ~name:"union-find matches naive partition" ~count:200
    QCheck2.Gen.(list_size (int_range 0 60) (pair (int_range 0 19) (int_range 0 19)))
    (fun unions ->
      let uf = Union_find.create () in
      let ids = Array.init 20 (fun _ -> Union_find.make_set uf) in
      let naive = Array.init 20 Fun.id in
      let naive_find i =
        let rec go i = if naive.(i) = i then i else go naive.(i) in
        go i
      in
      List.iter
        (fun (a, b) ->
          ignore (Union_find.union uf ids.(a) ids.(b));
          let ra = naive_find a and rb = naive_find b in
          if ra <> rb then naive.(ra) <- rb)
        unions;
      let ok = ref true in
      for i = 0 to 19 do
        for j = 0 to 19 do
          let uf_eq = Union_find.equiv uf ids.(i) ids.(j) in
          let nv_eq = naive_find i = naive_find j in
          if uf_eq <> nv_eq then ok := false
        done
      done;
      !ok)

let prop_class_count =
  QCheck2.Test.make ~name:"n_classes = n - effective unions" ~count:200
    QCheck2.Gen.(list_size (int_range 0 40) (pair (int_range 0 14) (int_range 0 14)))
    (fun unions ->
      let uf = Union_find.create () in
      let ids = Array.init 15 (fun _ -> Union_find.make_set uf) in
      let effective = ref 0 in
      List.iter
        (fun (a, b) ->
          if not (Union_find.equiv uf ids.(a) ids.(b)) then incr effective;
          ignore (Union_find.union uf ids.(a) ids.(b)))
        unions;
      Union_find.n_classes uf = 15 - !effective)

let () =
  let props = List.map QCheck_alcotest.to_alcotest [ prop_matches_naive; prop_class_count ] in
  Alcotest.run "union_find"
    [
      ( "unit",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "winner" `Quick test_union_returns_winner;
          Alcotest.test_case "dirty log" `Quick test_dirty_log;
          Alcotest.test_case "copy isolation" `Quick test_copy_isolation;
          Alcotest.test_case "growth" `Quick test_growth;
        ] );
      ("properties", props);
    ]
