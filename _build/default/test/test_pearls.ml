(* The appendix's "egglog pearls" (Figs. 13-19): functional programming
   via fresh ids, lambda-calculus analyses, Hindley-Milner unification,
   equation solving, proof datatypes, and matrix/Kronecker reasoning. *)

let run_ok msg src =
  match Egglog.run_program_string src with
  | outputs -> outputs
  | exception Egglog.Egglog_error e -> Alcotest.failf "%s: %s" msg e

(* ---- Fig. 13b: tree size, demand-free thanks to fresh ids ---- *)

let test_tree_size () =
  let outputs =
    run_ok "tree_size"
      {|
      (datatype Tree (Leaf) (Node Tree Tree))
      (datatype Expr (EAdd Expr Expr) (ENum i64))
      (function tree_size (Tree) Expr)
      ;; compute tree size symbolically
      (rewrite (tree_size (Node t1 t2)) (EAdd (tree_size t1) (tree_size t2)))
      ;; evaluate the symbolic expression
      (rewrite (EAdd (ENum n) (ENum m)) (ENum (+ n m)))
      (union (tree_size (Leaf)) (ENum 1))
      ;; compute size for a particular tree
      (define two (tree_size (Node (Leaf) (Leaf))))
      (run 6)
      (check (= two (ENum 2)))
      (define five (tree_size (Node (Node (Leaf) (Leaf)) (Node (Leaf) (Node (Leaf) (Leaf))))))
      (run 8)
      (check (= five (ENum 5)))
      (extract five)
    |}
  in
  Alcotest.(check bool) "extracts the numeral" true
    (List.exists (fun s -> s = "(ENum 5) : cost 1") outputs)


(* ---- Fig. 13a vs 13b: the demand transformation egglog makes redundant ---- *)

let test_tree_size_datalog_demand () =
  (* The Soufflé version (Fig. 13a): computing tree_size bottom-up diverges
     without a manual demand relation, because the full relation is
     infinite. Trees are pre-skolemized ids (Datalog cannot invent them):
     0 = Leaf, 1 = Node(0,0), 2 = Node(1,0), 3 = Node(1,1). *)
  let module D = Minidatalog in
  let db = D.create () in
  let node = D.relation db "node" 3 in  (* node(t, left, right) *)
  let leaf = D.relation db "leaf" 1 in
  let demand = D.relation db "demand" 1 in
  let size = D.relation db "size" 2 in
  D.fact db leaf [| 0 |];
  D.fact db node [| 1; 0; 0 |];
  D.fact db node [| 2; 1; 0 |];
  D.fact db node [| 3; 1; 1 |];
  (* demand flows root-to-leaves *)
  D.rule db
    ~head:(demand, [| D.V "l" |])
    ~body:[ D.Atom (demand, [| D.V "t" |]); D.Atom (node, [| D.V "t"; D.V "l"; D.V "r" |]) ];
  D.rule db
    ~head:(demand, [| D.V "r" |])
    ~body:[ D.Atom (demand, [| D.V "t" |]); D.Atom (node, [| D.V "t"; D.V "l"; D.V "r" |]) ];
  (* sizes flow leaves-to-root, but only for demanded trees. There is no
     arithmetic in minidatalog, so sizes are tabulated pairs we join on;
     enumerate possible (s1, s2, s) sum triples for this universe. *)
  let sum = D.relation db "sum" 3 in
  for s1 = 1 to 7 do
    for s2 = 1 to 7 do
      if s1 + s2 <= 15 then D.fact db sum [| s1; s2; s1 + s2 + 1 |]
    done
  done;
  D.rule db
    ~head:(size, [| D.V "t"; D.C 1 |])
    ~body:[ D.Atom (demand, [| D.V "t" |]); D.Atom (leaf, [| D.V "t" |]) ];
  D.rule db
    ~head:(size, [| D.V "t"; D.V "s" |])
    ~body:
      [
        D.Atom (demand, [| D.V "t" |]);
        D.Atom (node, [| D.V "t"; D.V "l"; D.V "r" |]);
        D.Atom (size, [| D.V "l"; D.V "s1" |]);
        D.Atom (size, [| D.V "r"; D.V "s2" |]);
        D.Atom (sum, [| D.V "s1"; D.V "s2"; D.V "s" |]);
      ];
  (* the demand: size of tree 3 = Node(Node(Leaf,Leaf), Node(Leaf,Leaf)) *)
  D.fact db demand [| 3 |];
  ignore (D.run db ());
  Alcotest.(check bool) "size(3) = 7" true (D.mem db size [| 3; 7 |]);
  (* crucially, undemanded trees were never computed *)
  Alcotest.(check bool) "no stray demand" false (D.mem db demand [| 2 |]);
  Alcotest.(check bool) "size(2) not computed" false (D.mem db size [| 2; 5 |])

(* ---- Fig. 14: free variables and capture-avoiding substitution ---- *)

let test_lambda_free_vars () =
  ignore
    (run_ok "free vars"
       {|
      (datatype Term
        (Val i64)
        (TVar String)
        (Lam String Term)
        (App Term Term)
        (Let String Term Term))
      (function free (Term) (Set String) :merge (set-intersect old new))

      (rule ((= e (Val v))) ((set (free e) (set-empty))))
      (rule ((= e (TVar v))) ((set (free e) (set-singleton v))))
      (rule ((= e (Lam var body)) (= (free body) fv))
            ((set (free e) (set-remove fv var))))
      (rule ((= e (App e1 e2)) (= (free e1) fv1) (= (free e2) fv2))
            ((set (free e) (set-union fv1 fv2))))
      (rule ((= e (Let var e1 e2)) (= (free e1) fv1) (= (free e2) fv2))
            ((set (free e) (set-union fv2 (set-remove fv1 var)))))

      ;; \x. (y x)
      (define t1 (Lam "x" (App (TVar "y") (TVar "x"))))
      (run 5)
      (check (= (free t1) (set-singleton "y")))

      ;; rewriting x*... shrinking free sets: x - x ~ 0 via union
      (define t2 (App (TVar "x") (TVar "x")))
      (run 2)
      (union t2 (Val 0))
      (run 3)
      (check (= (free t2) (set-empty)))
    |})

let test_capture_avoiding_subst () =
  (* Identifiers are a datatype lifting strings or skolem terms, exactly as
     the appendix describes, so fresh names are just constructor calls. *)
  ignore
    (run_ok "subst"
       {|
      ;; Term and Ident are mutually recursive: declare the sorts first,
      ;; constructors are just functions into them (datatype is sugar)
      (sort Term)
      (sort Ident)
      (function Val (i64) Term)
      (function TVar (Ident) Term)
      (function Lam (Ident Term) Term)
      (function App (Term Term) Term)
      (function IName (String) Ident)
      (function IFresh (Term) Ident)
      (function free (Term) (Set Ident) :merge (set-intersect old new))
      (function subst (Ident Term Term) Term)

      (rule ((= e (Val v))) ((set (free e) (set-empty))))
      (rule ((= e (TVar v))) ((set (free e) (set-singleton v))))
      (rule ((= e (Lam var body)) (= (free body) fv))
            ((set (free e) (set-remove fv var))))
      (rule ((= e (App e1 e2)) (= (free e1) fv1) (= (free e2) fv2))
            ((set (free e) (set-union fv1 fv2))))

      (rewrite (subst v e2 (TVar v)) e2)
      (rewrite (subst v e2 (TVar w)) (TVar w) :when ((!= v w)))
      (rewrite (subst v e2 (Val n)) (Val n))
      (rewrite (subst v e2 (App a b)) (App (subst v e2 a) (subst v e2 b)))
      ;; [e2/v]\v.e1 = \v.e1
      (rewrite (subst v e2 (Lam v e1)) (Lam v e1))
      ;; [e2/v2]\v1.e1 = \v1.[e2/v2]e1 when v1 not free in e2
      (rewrite (subst v2 e2 (Lam v1 e1)) (Lam v1 (subst v2 e2 e1))
               :when ((!= v1 v2) (= (free e2) fv) (set-not-contains fv v1)))
      ;; otherwise rename with a skolemized fresh identifier
      (rule ((= expr (subst v2 e2 (Lam v1 e1)))
             (!= v1 v2)
             (= (free e2) fv)
             (set-contains fv v1))
            ((let v3 (IFresh expr))
             (union expr (Lam v3 (subst v2 e2 (subst v1 (TVar v3) e1))))))

      ;; [(y)/x](\z. x z) --> \z. y z
      (define s1 (subst (IName "x") (TVar (IName "y"))
                        (Lam (IName "z") (App (TVar (IName "x")) (TVar (IName "z"))))))
      (run 8)
      (check (= s1 (Lam (IName "z") (App (TVar (IName "y")) (TVar (IName "z"))))))

      ;; capture case: [(z)/x](\z. x) must NOT become \z. z
      (define s2 (subst (IName "x") (TVar (IName "z")) (Lam (IName "z") (TVar (IName "x")))))
      (run 8)
      (fail (check (= s2 (Lam (IName "z") (TVar (IName "z"))))))
      ;; instead it renamed the binder and substituted under it
      (check (= (free s2) (set-singleton (IName "z"))))
    |})


(* ---- Fig. 15: STLC type inference with contexts ---- *)

let test_stlc_typing () =
  ignore
    (run_ok "stlc"
       {|
      (datatype Type
        (TInt)
        (TArr Type Type))
      (sort Expr)
      (sort Ctx)
      (function ENum (i64) Expr)
      (function EVar (String) Expr)
      (function ELam (String Type Expr) Expr)
      (function EApp (Expr Expr) Expr)
      (function CNil () Ctx)
      (function CCons (String Type Ctx) Ctx)

      (function typeof (Ctx Expr) Type)
      (function lookup (Ctx String) Type)

      ;; context lookup
      (rewrite (lookup (CCons x t ctx) x) t)
      (rewrite (lookup (CCons y t ctx) x) (lookup ctx x) :when ((!= x y)))

      ;; numbers and variables
      (rewrite (typeof ctx (ENum n)) (TInt))
      (rewrite (typeof ctx (EVar x)) (lookup ctx x))

      ;; lambda: typeof in the extended context, result is an arrow
      (rewrite (typeof ctx (ELam x t1 e)) (TArr t1 (typeof (CCons x t1 ctx) e)))

      ;; application: populate demand for subexpressions, then combine
      (rule ((= (typeof ctx (EApp f e)) t2))
            ((typeof ctx f) (typeof ctx e)))
      (rule ((= (typeof ctx (EApp f e)) t)
             (= (typeof ctx f) (TArr t1 t2))
             (= (typeof ctx e) t1))
            ((union t t2)))

      ;; ((\x:Int. x) 5) : Int
      (define prog (EApp (ELam "x" (TInt) (EVar "x")) (ENum 5)))
      (define ty (typeof (CNil) prog))
      (run 8)
      (check (= ty (TInt)))

      ;; \f:Int->Int. \y:Int. (f y)  :  (Int->Int) -> Int -> Int
      (define prog2 (ELam "f" (TArr (TInt) (TInt)) (ELam "y" (TInt) (EApp (EVar "f") (EVar "y")))))
      (define ty2 (typeof (CNil) prog2))
      (run 10)
      (check (= ty2 (TArr (TArr (TInt) (TInt)) (TArr (TInt) (TInt)))))

      ;; shadowing: \x:Int. \x:Int->Int. x has the inner type
      (define prog3 (ELam "x" (TInt) (ELam "x" (TArr (TInt) (TInt)) (EVar "x"))))
      (define ty3 (typeof (CNil) prog3))
      (run 10)
      (check (= ty3 (TArr (TInt) (TArr (TArr (TInt) (TInt)) (TArr (TInt) (TInt))))))
    |})

(* ---- Fig. 16 (subset): Hindley-Milner style unification ---- *)

let test_hm_unification () =
  ignore
    (run_ok "unification"
       {|
      (datatype Type
        (TInt)
        (TBool)
        (TArrow Type Type)
        (TMeta String))

      ;; injectivity: unifying arrows unifies the pieces
      (rule ((= (TArrow fr1 to1) (TArrow fr2 to2)))
            ((union fr1 fr2) (union to1 to2)))

      ;; occurs check
      (relation occurs-check (String Type))
      (relation occurs-fail (String))
      (rule ((= (TMeta x) (TArrow fr to)))
            ((occurs-check x fr) (occurs-check x to)))
      (rule ((occurs-check x (TArrow fr to)))
            ((occurs-check x fr) (occurs-check x to)))
      (rule ((occurs-check x (TMeta x)))
            ((occurs-fail x)))

      ;; unify a -> b with Int -> (Bool -> Int)
      (union (TArrow (TMeta "a") (TMeta "b")) (TArrow (TInt) (TArrow (TBool) (TInt))))
      (run 5)
      (check (= (TMeta "a") (TInt)))
      (check (= (TMeta "b") (TArrow (TBool) (TInt))))
      (fail (check (occurs-fail "a")))
    |});
  (* occurs check fires on a = a -> a *)
  ignore
    (run_ok "occurs"
       {|
      (datatype Type (TInt) (TArrow Type Type) (TMeta String))
      (rule ((= (TArrow fr1 to1) (TArrow fr2 to2)))
            ((union fr1 fr2) (union to1 to2)))
      (relation occurs-check (String Type))
      (relation occurs-fail (String))
      (rule ((= (TMeta x) (TArrow fr to)))
            ((occurs-check x fr) (occurs-check x to)))
      (rule ((occurs-check x (TArrow fr to)))
            ((occurs-check x fr) (occurs-check x to)))
      (rule ((occurs-check x (TMeta x)))
            ((occurs-fail x)))
      (union (TMeta "a") (TArrow (TMeta "a") (TInt)))
      (run 5)
      (check (occurs-fail "a"))
    |})

(* ---- Fig. 17: equation solving ---- *)

let test_equation_solving () =
  let outputs =
    run_ok "equations"
      {|
      (datatype Expr
        (EAdd Expr Expr)
        (EMul Expr Expr)
        (ENeg Expr)
        (ENum i64)
        (EVar String))

      (rewrite (EAdd x y) (EAdd y x))
      (rewrite (EAdd (EAdd x y) z) (EAdd x (EAdd y z)))
      (rewrite (EAdd (EMul y x) (EMul z x)) (EMul (EAdd y z) x))
      (rewrite (EVar x) (EMul (ENum 1) (EVar x)))
      (rewrite (EAdd (ENum x) (ENum y)) (ENum (+ x y)))
      (rewrite (ENeg (ENum n)) (ENum (- n)))
      (rewrite (EAdd (ENeg x) x) (ENum 0))

      ;; isolate variables by rewriting the entire equation
      (rule ((= (EAdd x y) z)) ((union (EAdd z (ENeg y)) x)))
      (rule ((= (EMul (ENum x) y) (ENum z)) (= (% z x) 0))
            ((union (ENum (/ z x)) y)))

      ;; system: z + y = 6 ; 2z = y
      (set (EAdd (EVar "z") (EVar "y")) (ENum 6))
      (set (EAdd (EVar "z") (EVar "z")) (EVar "y"))
      (run 6)
      (extract (EVar "y"))
      (extract (EVar "z"))
    |}
  in
  Alcotest.(check bool) "y = 4" true (List.exists (String.equal "(ENum 4) : cost 1") outputs);
  Alcotest.(check bool) "z = 2" true (List.exists (String.equal "(ENum 2) : cost 1") outputs)

(* ---- Fig. 18: proof datatypes with proof irrelevance ---- *)

let test_proof_datatype () =
  let outputs =
    run_ok "proofs"
      {|
      (datatype Proof
        (Trans i64 Proof)
        (Edge i64 i64))
      (function path (i64 i64) Proof)
      (relation edge (i64 i64))

      (rule ((edge x y)) ((set (path x y) (Edge x y))))
      (rule ((edge x y) (= p (path y z))) ((set (path x z) (Trans x p))))

      (edge 1 2)
      (edge 2 3)
      (edge 1 3)
      (run)
      (extract (path 1 3))
    |}
  in
  (* both a direct edge proof and a transitive proof exist; extraction
     returns the smaller (the direct edge) *)
  Alcotest.(check (list string)) "smallest proof"
    [ "(Edge 1 3) : cost 1" ]
    (List.filter (fun s -> String.length s > 0 && s.[0] = '(') outputs)

(* ---- Fig. 19: matrices with dimension-guarded Kronecker rules ---- *)

let test_kronecker () =
  ignore
    (run_ok "kronecker"
       {|
      (datatype MExpr
        (MMul MExpr MExpr)
        (Kron MExpr MExpr)
        (MVar String))
      (datatype Dim
        (Times Dim Dim)
        (NamedDim String)
        (Lit i64))

      (function nrows (MExpr) Dim)
      (function ncols (MExpr) Dim)

      ;; dimensions of compound expressions
      (rewrite (nrows (Kron A B)) (Times (nrows A) (nrows B)))
      (rewrite (ncols (Kron A B)) (Times (ncols A) (ncols B)))
      (rewrite (nrows (MMul A B)) (nrows A))
      (rewrite (ncols (MMul A B)) (ncols B))
      ;; reasoning about dimensionality is itself rewriting
      (rewrite (Times a (Times b c)) (Times (Times a b) c))
      (rewrite (Times (Lit i) (Lit j)) (Lit (* i j)))
      (rewrite (Times a b) (Times b a))

      ;; the guarded optimization: (A (x) B)(C (x) D) = AC (x) BD needs dims to align
      (rewrite (MMul (Kron A B) (Kron C D)) (Kron (MMul A C) (MMul B D))
               :when ((= (ncols A) (nrows C)) (= (ncols B) (nrows D))))

      ;; set up dimensions: A: n x m, C: m x n, B: 2x3, D: 3x2
      (set (nrows (MVar "A")) (NamedDim "n"))
      (set (ncols (MVar "A")) (NamedDim "m"))
      (set (nrows (MVar "C")) (NamedDim "m"))
      (set (ncols (MVar "C")) (NamedDim "n"))
      (set (nrows (MVar "B")) (Lit 2))
      (set (ncols (MVar "B")) (Lit 3))
      (set (nrows (MVar "D")) (Lit 3))
      (set (ncols (MVar "D")) (Lit 2))

      (define good (MMul (Kron (MVar "A") (MVar "B")) (Kron (MVar "C") (MVar "D"))))
      (define bad  (MMul (Kron (MVar "A") (MVar "B")) (Kron (MVar "D") (MVar "C"))))
      (run 8)
      (check (= good (Kron (MMul (MVar "A") (MVar "C")) (MMul (MVar "B") (MVar "D")))))
      (fail (check (= bad (Kron (MMul (MVar "A") (MVar "D")) (MMul (MVar "B") (MVar "C"))))))
    |})

let () =
  Alcotest.run "pearls"
    [
      ( "appendix",
        [
          Alcotest.test_case "fig13b tree size (egglog)" `Quick test_tree_size;
          Alcotest.test_case "fig13a tree size (datalog demand)" `Quick test_tree_size_datalog_demand;
          Alcotest.test_case "fig14 free variables" `Quick test_lambda_free_vars;
          Alcotest.test_case "fig14 capture-avoiding subst" `Quick test_capture_avoiding_subst;
          Alcotest.test_case "fig15 STLC typing" `Quick test_stlc_typing;
          Alcotest.test_case "fig16 HM unification" `Quick test_hm_unification;
          Alcotest.test_case "fig17 equation solving" `Quick test_equation_solving;
          Alcotest.test_case "fig18 proof datatype" `Quick test_proof_datatype;
          Alcotest.test_case "fig19 kronecker" `Quick test_kronecker;
        ] );
    ]
