(* Double-double arithmetic: check it is meaningfully more precise than
   double — it is the high-precision oracle for the Herbie case study. *)

let test_exact_sum_error () =
  (* 0.1 + 0.2 in dd is closer to exact 0.3 than the double sum. *)
  let dd = Dd.add (Dd.of_float 0.1) (Dd.of_float 0.2) in
  let exact = Rat.add (Rat.of_float 0.1) (Rat.of_float 0.2) in
  let dd_err = Float.abs (Rat.to_float exact -. Dd.to_float dd) in
  Alcotest.(check bool) "dd sum of floats is the float sum rounded" true (dd_err < 1e-16);
  (* but the lo component captures the rounding error exactly *)
  let reconstructed = Rat.add (Rat.of_float dd.Dd.hi) (Rat.of_float dd.Dd.lo) in
  Alcotest.(check bool) "hi+lo is exactly the real sum" true (Rat.equal reconstructed exact)

let test_mul_exact () =
  let a = 1.0 +. (1.0 /. 1024.0) and b = 1.0 -. (1.0 /. 1024.0) in
  let dd = Dd.mul (Dd.of_float a) (Dd.of_float b) in
  let exact = Rat.mul (Rat.of_float a) (Rat.of_float b) in
  let reconstructed = Rat.add (Rat.of_float dd.Dd.hi) (Rat.of_float dd.Dd.lo) in
  Alcotest.(check bool) "two_prod keeps the product exact" true (Rat.equal reconstructed exact)

let test_cancellation () =
  (* sqrt(x+1) - sqrt(x) at large x: doubles cancel catastrophically,
     dd keeps ~16 extra digits. *)
  let x = 1e15 in
  let naive = sqrt (x +. 1.0) -. sqrt x in
  let dd = Dd.sub (Dd.sqrt (Dd.add (Dd.of_float x) Dd.one)) (Dd.sqrt (Dd.of_float x)) in
  let accurate = 1.0 /. (sqrt (x +. 1.0) +. sqrt x) in
  let naive_err = Float.abs (naive -. accurate) /. accurate in
  let dd_err = Float.abs (Dd.to_float dd -. accurate) /. accurate in
  Alcotest.(check bool) "naive is visibly wrong" true (naive_err > 1e-10);
  Alcotest.(check bool) "dd is much closer" true (dd_err < naive_err /. 1e4)

let test_div () =
  let q = Dd.div (Dd.of_int 1) (Dd.of_int 3) in
  let prod = Dd.mul q (Dd.of_int 3) in
  Alcotest.(check bool) "1/3 * 3 ~ 1 to dd precision" true
    (Float.abs (Dd.to_float (Dd.sub prod Dd.one)) < 1e-30)

let test_sqrt_cbrt () =
  let s = Dd.sqrt (Dd.of_int 2) in
  let back = Dd.mul s s in
  Alcotest.(check bool) "sqrt2^2 ~ 2" true (Float.abs (Dd.to_float back -. 2.0) < 1e-30);
  let c = Dd.cbrt (Dd.of_int 2) in
  let back = Dd.mul c (Dd.mul c c) in
  Alcotest.(check bool) "cbrt2^3 ~ 2" true (Float.abs (Dd.to_float back -. 2.0) < 1e-28);
  Alcotest.(check bool) "sqrt(-1) is nan" true (Dd.is_nan (Dd.sqrt (Dd.of_int (-1))));
  let c = Dd.cbrt (Dd.of_int (-8)) in
  Alcotest.(check (float 1e-14)) "cbrt(-8) = -2" (-2.0) (Dd.to_float c)

let test_pow_int () =
  Alcotest.(check (float 0.0)) "pow 2^10" 1024.0 (Dd.to_float (Dd.pow_int (Dd.of_int 2) 10));
  Alcotest.(check (float 1e-18)) "pow 2^-2" 0.25 (Dd.to_float (Dd.pow_int (Dd.of_int 2) (-2)))

let finite_float =
  QCheck2.Gen.(map (fun (m, e) -> Float.ldexp m e) (pair (float_range (-1.0) 1.0) (int_range (-60) 60)))

let prop_add_vs_rat =
  QCheck2.Test.make ~name:"dd add exactly matches rational add" ~count:300
    (QCheck2.Gen.pair finite_float finite_float)
    (fun (a, b) ->
      let dd = Dd.add (Dd.of_float a) (Dd.of_float b) in
      let exact = Rat.add (Rat.of_float a) (Rat.of_float b) in
      (* hi+lo should represent the exact sum when no overflow occurred *)
      Rat.equal (Rat.add (Rat.of_float dd.Dd.hi) (Rat.of_float dd.Dd.lo)) exact)

let prop_mul_vs_rat =
  QCheck2.Test.make ~name:"dd mul error stays within 2^-100 relative" ~count:300
    (QCheck2.Gen.pair finite_float finite_float)
    (fun (a, b) ->
      let dd = Dd.mul (Dd.of_float a) (Dd.of_float b) in
      let exact = Rat.mul (Rat.of_float a) (Rat.of_float b) in
      if Rat.sign exact = 0 then Dd.to_float dd = 0.0
      else begin
        let approx = Rat.add (Rat.of_float dd.Dd.hi) (Rat.of_float dd.Dd.lo) in
        let rel = Rat.to_float (Rat.abs (Rat.div (Rat.sub approx exact) exact)) in
        rel < Float.ldexp 1.0 (-99)
      end)

let () =
  let props = List.map QCheck_alcotest.to_alcotest [ prop_add_vs_rat; prop_mul_vs_rat ] in
  Alcotest.run "dd"
    [
      ( "unit",
        [
          Alcotest.test_case "exact sum" `Quick test_exact_sum_error;
          Alcotest.test_case "exact product" `Quick test_mul_exact;
          Alcotest.test_case "cancellation" `Quick test_cancellation;
          Alcotest.test_case "division" `Quick test_div;
          Alcotest.test_case "sqrt/cbrt" `Quick test_sqrt_cbrt;
          Alcotest.test_case "pow_int" `Quick test_pow_int;
        ] );
      ("properties", props);
    ]
