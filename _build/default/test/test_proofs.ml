(* Explanation generation (the §7 "proof problem" future direction):
   the proof forest, id-level explanations through the typed API, and the
   textual (explain ...) command. *)

module E = Egglog
module PF = Egglog.Proof_forest

let test_forest_basic () =
  let t = PF.create () in
  PF.record t 0 1 PF.Asserted;
  PF.record t 1 2 (PF.Rule "r");
  (match PF.explain t 0 2 with
   | Some steps -> Alcotest.(check int) "two steps" 2 (List.length steps)
   | None -> Alcotest.fail "expected a chain");
  (match PF.explain t 0 0 with
   | Some [] -> ()
   | _ -> Alcotest.fail "identical ids explain to []");
  match PF.explain t 0 5 with
  | None -> ()
  | Some _ -> Alcotest.fail "disconnected ids have no chain"

let test_forest_reroot () =
  (* unions in arbitrary order still connect everything *)
  let t = PF.create () in
  PF.record t 0 1 PF.Asserted;
  PF.record t 2 3 PF.Asserted;
  PF.record t 1 3 (PF.Rule "bridge");
  List.iter
    (fun (a, b) ->
      match PF.explain t a b with
      | Some steps ->
        Alcotest.(check bool)
          (Printf.sprintf "chain %d-%d connects" a b)
          true
          (steps <> [] || a = b);
        (* the chain must be contiguous *)
        let rec contiguous cur = function
          | [] -> cur = b
          | (s : PF.step) :: rest ->
            Alcotest.(check int) "step starts where previous ended" cur s.PF.from_id;
            contiguous s.PF.to_id rest
        in
        Alcotest.(check bool) "ends at target" true (contiguous a steps)
      | None -> Alcotest.failf "no chain %d-%d" a b)
    [ (0, 3); (3, 0); (0, 2); (1, 2) ]

let test_id_level_explanations () =
  (* hold pre-union handles via the typed API: the chain is precise *)
  let eng = E.Engine.create () in
  ignore (E.run_string eng "(sort V) (function mk (i64) V)");
  let a = E.Engine.eval_call eng "mk" [ E.Value.VInt 1 ] in
  let b = E.Engine.eval_call eng "mk" [ E.Value.VInt 2 ] in
  let c = E.Engine.eval_call eng "mk" [ E.Value.VInt 3 ] in
  let db = E.Engine.database eng in
  Alcotest.(check bool) "not yet equal" true (E.Database.explain db a b = None);
  ignore (E.Engine.union_values eng a b);
  ignore (E.Engine.union_values eng b c);
  (match E.Database.explain db a c with
   | Some steps ->
     (* unions record edges between canonical-at-the-time ids, so the chain
        may be shortened; it must exist and be non-empty *)
     Alcotest.(check bool) "a=c has a non-empty chain" true (List.length steps >= 1)
   | None -> Alcotest.fail "expected chain");
  (* congruence reasons appear when rebuilding repairs a function *)
  ignore (E.run_string eng "(function g (V) V)");
  let d = E.Engine.eval_call eng "mk" [ E.Value.VInt 10 ] in
  let e = E.Engine.eval_call eng "mk" [ E.Value.VInt 11 ] in
  let gd = E.Engine.eval_call eng "g" [ d ] in
  let ge = E.Engine.eval_call eng "g" [ e ] in
  ignore (E.Engine.union_values eng d e);
  E.Engine.rebuild eng;
  (match E.Database.explain db gd ge with
   | Some steps ->
     Alcotest.(check bool) "mentions congruence of g" true
       (List.exists
          (fun (s : PF.step) ->
            match s.PF.why with
            | PF.Congruence f -> E.Symbol.name f = "g"
            | _ -> false)
          steps)
   | None -> Alcotest.fail "g(d)=g(e) must have a proof")

let test_rule_reasons () =
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng
       {|
      (datatype M (X) (Y))
      (rule ((= a (X))) ((union a (Y))) :name "x-is-y")
    |});
  let x = E.Engine.eval_call eng "X" [] in
  let y = E.Engine.eval_call eng "Y" [] in
  ignore (E.Engine.run_iterations eng 2);
  match E.Database.explain (E.Engine.database eng) x y with
  | Some steps ->
    Alcotest.(check bool) "justified by the named rule" true
      (List.exists
         (fun (s : PF.step) -> match s.PF.why with PF.Rule "x-is-y" -> true | _ -> false)
         steps)
  | None -> Alcotest.fail "x=y must have a proof"

let test_explain_command () =
  let outputs =
    Egglog.run_program_string
      {|
      (datatype M (A) (B) (C))
      (union (A) (B))
      (rule ((= x (B))) ((union x (C))) :name "to-c")
      (run 2)
      (explain (A) (C))
    |}
  in
  let joined = String.concat "\n" outputs in
  let has needle =
    let nh = String.length joined and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub joined i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions the rule" true (has "rule to-c");
  Alcotest.(check bool) "mentions the assertion" true (has "asserted")

let test_explain_not_equal () =
  let outputs =
    Egglog.run_program_string
      {| (datatype M (A) (B)) (explain (A) (B)) |}
  in
  Alcotest.(check (list string)) "reports inequality" [ "not equal: no explanation" ] outputs

let test_explain_survives_push_pop () =
  let outputs =
    Egglog.run_program_string
      {|
      (datatype M (A) (B))
      (push)
      (union (A) (B))
      (pop)
      (explain (A) (B))
    |}
  in
  Alcotest.(check (list string)) "popped union is forgotten" [ "not equal: no explanation" ]
    outputs

let prop_random_unions_explainable =
  QCheck2.Test.make ~name:"every derived equality has an explanation" ~count:100
    QCheck2.Gen.(list_size (int_range 0 20) (pair (int_bound 9) (int_bound 9)))
    (fun unions ->
      let eng = E.Engine.create () in
      ignore (E.run_string eng "(sort V) (function mk (i64) V)");
      let handles = Array.init 10 (fun i -> E.Engine.eval_call eng "mk" [ E.Value.VInt i ]) in
      List.iter (fun (a, b) -> ignore (E.Engine.union_values eng handles.(a) handles.(b))) unions;
      E.Engine.rebuild eng;
      let db = E.Engine.database eng in
      let ok = ref true in
      for i = 0 to 9 do
        for j = 0 to 9 do
          let equal = E.Database.are_equal db handles.(i) handles.(j) in
          let explained =
            match E.Database.explain db handles.(i) handles.(j) with
            | Some _ -> true
            | None -> false
          in
          if equal <> explained then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "proofs"
    [
      ( "forest",
        [
          Alcotest.test_case "basic chains" `Quick test_forest_basic;
          Alcotest.test_case "rerooting" `Quick test_forest_reroot;
        ] );
      ( "engine",
        [
          Alcotest.test_case "id-level explanations" `Quick test_id_level_explanations;
          Alcotest.test_case "rule reasons" `Quick test_rule_reasons;
          Alcotest.test_case "explain command" `Quick test_explain_command;
          Alcotest.test_case "not equal" `Quick test_explain_not_equal;
          Alcotest.test_case "push/pop" `Quick test_explain_survives_push_pop;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_random_unions_explainable ] );
    ]
