(* Lexer/parser for the egglog concrete syntax. *)

let parse_one = Sexpr.parse_one

let test_atoms () =
  Alcotest.(check bool) "symbol" true (Sexpr.equal (parse_one "foo") (Sexpr.Atom "foo"));
  Alcotest.(check bool) "int" true (Sexpr.equal (parse_one "42") (Sexpr.Int 42));
  Alcotest.(check bool) "neg int" true (Sexpr.equal (parse_one "-42") (Sexpr.Int (-42)));
  Alcotest.(check bool) "plus sign int" true (Sexpr.equal (parse_one "+7") (Sexpr.Int 7));
  Alcotest.(check bool) "minus alone is a symbol" true (Sexpr.equal (parse_one "-") (Sexpr.Atom "-"));
  Alcotest.(check bool) "rational" true
    (Sexpr.equal (parse_one "22/7") (Sexpr.Rational (Rat.of_ints 22 7)));
  Alcotest.(check bool) "decimal" true
    (Sexpr.equal (parse_one "1.5") (Sexpr.Rational (Rat.of_ints 3 2)));
  Alcotest.(check bool) "keyword stays atom" true (Sexpr.equal (parse_one ":merge") (Sexpr.Atom ":merge"));
  Alcotest.(check bool) "operator with digits" true (Sexpr.equal (parse_one "1+") (Sexpr.Atom "1+"))

let test_strings () =
  Alcotest.(check bool) "string" true (Sexpr.equal (parse_one {|"hello"|}) (Sexpr.String "hello"));
  Alcotest.(check bool) "escapes" true
    (Sexpr.equal (parse_one {|"a\nb\"c"|}) (Sexpr.String "a\nb\"c"));
  (match parse_one {|"unterminated|} with
   | exception Sexpr.Parse_error _ -> ()
   | _ -> Alcotest.fail "expected parse error")

let test_lists () =
  let e = parse_one "(rule ((edge x y)) ((path x y)))" in
  match e with
  | Sexpr.List [ Sexpr.Atom "rule"; Sexpr.List [ _ ]; Sexpr.List [ _ ] ] -> ()
  | _ -> Alcotest.fail "unexpected shape"

let test_comments () =
  let es = Sexpr.parse_string ";; comment\n(a) ; trailing\n(b)" in
  Alcotest.(check int) "two exprs" 2 (List.length es)

let test_errors () =
  let expect_error s =
    match Sexpr.parse_string s with
    | exception Sexpr.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected parse error on " ^ s)
  in
  expect_error "(";
  expect_error ")";
  expect_error "(a))"

let test_positions () =
  match Sexpr.parse_string "(a\n  (b" with
  | exception Sexpr.Parse_error { line; _ } -> Alcotest.(check int) "line" 2 line
  | _ -> Alcotest.fail "expected parse error"

let test_print_roundtrip () =
  let progs =
    [
      "(datatype Math (Num i64) (Add Math Math))";
      "(rule ((= (path x y) len)) ((set (path x y) len)))";
      {|(check (= e (Var "x")))|};
      "(set (edge 1 2) 22/7)";
    ]
  in
  List.iter
    (fun p ->
      let e = parse_one p in
      let e' = parse_one (Sexpr.to_string e) in
      Alcotest.(check bool) ("roundtrip " ^ p) true (Sexpr.equal e e'))
    progs

(* Random sexpr generator for print/parse roundtripping. *)
let gen_sexpr =
  QCheck2.Gen.(
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 0 then
              oneof
                [
                  map (fun i -> Sexpr.Int i) (int_range (-1000) 1000);
                  map (fun s -> Sexpr.Atom ("s" ^ string_of_int s)) (int_range 0 50);
                  map (fun s -> Sexpr.String ("str" ^ string_of_int s)) (int_range 0 50);
                  map2
                    (fun n d ->
                      (* an integer-valued rational prints as an int token *)
                      let r = Rat.of_ints n d in
                      if Rat.is_integer r then Sexpr.Int n else Sexpr.Rational r)
                    (int_range (-50) 50) (int_range 1 50);
                ]
            else map (fun xs -> Sexpr.List xs) (list_size (int_range 0 4) (self (n / 2))))
          (min n 6)))

let prop_print_parse_roundtrip =
  QCheck2.Test.make ~name:"print/parse roundtrip" ~count:300 gen_sexpr (fun e ->
      Sexpr.equal e (Sexpr.parse_one (Sexpr.to_string e)))

let () =
  Alcotest.run "sexpr"
    [
      ( "unit",
        [
          Alcotest.test_case "atoms" `Quick test_atoms;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "lists" `Quick test_lists;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "positions" `Quick test_positions;
          Alcotest.test_case "roundtrip" `Quick test_print_roundtrip;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_print_parse_roundtrip ]);
    ]
