(* The egg-style baseline: hashcons/congruence invariants, e-matching,
   extraction, analyses — and the crucial parity check that egg and
   egglogNI grow the same e-graph on the Fig. 7 workload. *)

let t = Egraph.term_of_string
let p = Egraph.pattern_of_string

let test_hashcons () =
  let eg = Egraph.create () in
  let a = Egraph.add_term eg (t "(+ x y)") in
  let b = Egraph.add_term eg (t "(+ x y)") in
  Alcotest.(check int) "same term same class" (Egraph.find eg a) (Egraph.find eg b);
  let c = Egraph.add_term eg (t "(+ y x)") in
  Alcotest.(check bool) "different terms differ" false (Egraph.equiv eg a c)

let test_congruence () =
  let eg = Egraph.create () in
  let fa = Egraph.add_term eg (t "(f a)") in
  let fb = Egraph.add_term eg (t "(f b)") in
  let a = Egraph.add_term eg (t "a") in
  let b = Egraph.add_term eg (t "b") in
  Alcotest.(check bool) "f(a) != f(b)" false (Egraph.equiv eg fa fb);
  ignore (Egraph.union eg a b);
  Egraph.rebuild eg;
  Alcotest.(check bool) "f(a) = f(b) after union" true (Egraph.equiv eg fa fb)

let test_congruence_chain () =
  (* f^3(x)=x, f^5(x)=x |- f(x)=x *)
  let eg = Egraph.create () in
  let x = Egraph.add_term eg (t "x") in
  let rec f n id = if n = 0 then id else f (n - 1) (Egraph.add_node eg (Egraph.Op "f") [ id ]) in
  let f3 = f 3 x and f5 = f 5 x in
  ignore (Egraph.union eg f3 x);
  ignore (Egraph.union eg f5 x);
  Egraph.rebuild eg;
  let f1 = f 1 x in
  Alcotest.(check bool) "f(x)=x" true (Egraph.equiv eg f1 x)

let test_ematch () =
  let eg = Egraph.create () in
  ignore (Egraph.add_term eg (t "(+ (g a) (g a))"));
  ignore (Egraph.add_term eg (t "(+ (g a) (g b))"));
  let matches = Egraph.ematch eg (p "(+ ?x ?x)") in
  Alcotest.(check int) "one nonlinear match" 1 (List.length matches);
  let matches = Egraph.ematch eg (p "(+ ?x ?y)") in
  Alcotest.(check int) "two linear matches" 2 (List.length matches)

let test_ematch_modulo () =
  let eg = Egraph.create () in
  ignore (Egraph.add_term eg (t "(+ (g a) (g b))"));
  let a = Egraph.add_term eg (t "a") and b = Egraph.add_term eg (t "b") in
  Alcotest.(check int) "no match yet" 0 (List.length (Egraph.ematch eg (p "(+ ?x ?x)")));
  ignore (Egraph.union eg a b);
  Egraph.rebuild eg;
  Alcotest.(check int) "match modulo equality" 1 (List.length (Egraph.ematch eg (p "(+ ?x ?x)")))

let test_run_and_extract () =
  let eg = Egraph.create () in
  let root = Egraph.add_term eg (t "(+ (* a 2) (* a 0))") in
  let rws =
    [
      Egraph.rewrite_of_strings ~name:"zero-mul" "(* ?a 0)" "0";
      Egraph.rewrite_of_strings ~name:"zero-add" "(+ ?a 0)" "?a";
    ]
  in
  let stats = Egraph.run eg rws 10 in
  Alcotest.(check bool) "saturated" true stats.Egraph.saturated;
  match Egraph.extract eg root with
  | Some (term, cost) ->
    Alcotest.(check string) "simplified" "(* a 2)" (Egraph.term_to_string term);
    Alcotest.(check int) "cost" 3 cost
  | None -> Alcotest.fail "no term extracted"

let test_const_folding_analysis () =
  let eg =
    Egraph.create
      ~const_ops:
        [
          ("+", fun xs -> match xs with [ a; b ] -> Some (a + b) | _ -> None);
          ("*", fun xs -> match xs with [ a; b ] -> Some (a * b) | _ -> None);
        ]
      ()
  in
  let root = Egraph.add_term eg (t "(+ (* 2 3) 4)") in
  Egraph.rebuild eg;
  Alcotest.(check (option int)) "folded to 10" (Some 10) (Egraph.class_const eg root);
  (match Egraph.extract eg root with
   | Some (term, _) -> Alcotest.(check string) "extracts 10" "10" (Egraph.term_to_string term)
   | None -> Alcotest.fail "no term");
  (* analysis must also flow through unions *)
  let v = Egraph.add_term eg (t "v") in
  let expr = Egraph.add_term eg (t "(+ v 1)") in
  ignore (Egraph.union eg v (Egraph.add_term eg (t "5")));
  Egraph.rebuild eg;
  Alcotest.(check (option int)) "v+1 folds after union" (Some 6) (Egraph.class_const eg expr)

let test_backoff_bans_explosive () =
  let eg = Egraph.create () in
  ignore (Egraph.add_term eg (t "(+ a (+ b (+ c (+ d e))))"));
  let rws =
    [
      Egraph.rewrite_of_strings ~name:"comm" "(+ ?a ?b)" "(+ ?b ?a)";
      Egraph.rewrite_of_strings ~name:"assoc" "(+ ?a (+ ?b ?c))" "(+ (+ ?a ?b) ?c)";
    ]
  in
  let unlimited = Egraph.run eg rws 6 in
  let eg2 = Egraph.create () in
  ignore (Egraph.add_term eg2 (t "(+ a (+ b (+ c (+ d e))))"));
  let limited =
    Egraph.run eg2 ~scheduler:(Egraph.Backoff { match_limit = 4; ban_length = 2 }) rws 6
  in
  let last stats = (List.hd (List.rev stats.Egraph.iters)).Egraph.is_nodes in
  Alcotest.(check bool) "backoff grows less" true (last limited <= last unlimited)

(* ---- parity: egg vs egglogNI on the Fig. 7 workload ---- *)

let egglog_math_tuples eng =
  List.fold_left
    (fun acc f -> acc + Egglog.Engine.table_size eng f)
    0
    [ "Num"; "Var"; "Add"; "Sub"; "Mul"; "Div"; "Pow"; "Ln"; "Sqrt"; "Diff"; "Integral" ]

let test_parity_with_egglog () =
  (* Run 6 iterations of the shared ruleset on both engines and compare
     e-graph sizes per iteration: e-nodes must match tuples exactly. *)
  let eg = Egraph.create () in
  List.iter (fun term -> ignore (Egraph.add_term eg term)) (Math_suite.egg_seed_terms ());
  let eng = Egglog.Engine.create ~seminaive:false () in
  ignore (Egglog.run_string eng (Math_suite.egglog_program ()));
  let egg_sizes = ref [] in
  let egglog_sizes = ref [] in
  for _ = 1 to 6 do
    let stats = Egraph.run eg (Math_suite.egg_rewrites ()) 1 in
    (match stats.Egraph.iters with
     | [ s ] -> egg_sizes := s.Egraph.is_nodes :: !egg_sizes
     | _ -> Alcotest.fail "expected one iteration");
    ignore (Egglog.Engine.run_iterations eng 1);
    egglog_sizes := egglog_math_tuples eng :: !egglog_sizes
  done;
  Alcotest.(check (list int)) "same growth" (List.rev !egg_sizes) (List.rev !egglog_sizes)


(* random workloads must leave the e-graph with clean invariants *)
let prop_audit_clean =
  QCheck2.Test.make ~name:"invariants hold after random rewriting" ~count:40
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 4))
    (fun (seed, iters) ->
      let rand = Random.State.make [| seed |] in
      let eg = Egraph.create () in
      (* random seed terms from the suite *)
      List.iteri
        (fun i term -> if (i + seed) mod 2 = 0 then ignore (Egraph.add_term eg term))
        (Math_suite.egg_seed_terms ());
      if Egraph.n_classes eg = 0 then ignore (Egraph.add_term eg (t "(+ x y)"));
      (* a random subset of the rules *)
      let rules =
        List.filteri (fun i _ -> Random.State.bool rand || i = 0) (Math_suite.egg_rewrites ())
      in
      ignore (Egraph.run eg rules iters);
      (* plus some random unions between existing classes *)
      let a = Egraph.add_term eg (t "x") and b = Egraph.add_term eg (t "y") in
      ignore (Egraph.union eg a b);
      Egraph.rebuild eg;
      Egraph.audit eg = [])

let () =
  Alcotest.run "egraph"
    [
      ( "core",
        [
          Alcotest.test_case "hashcons" `Quick test_hashcons;
          Alcotest.test_case "congruence" `Quick test_congruence;
          Alcotest.test_case "congruence chain" `Quick test_congruence_chain;
        ] );
      ( "ematch",
        [
          Alcotest.test_case "patterns" `Quick test_ematch;
          Alcotest.test_case "modulo equality" `Quick test_ematch_modulo;
        ] );
      ( "runner",
        [
          Alcotest.test_case "run+extract" `Quick test_run_and_extract;
          Alcotest.test_case "const folding" `Quick test_const_folding_analysis;
          Alcotest.test_case "backoff" `Quick test_backoff_bans_explosive;
        ] );
      ("parity", [ Alcotest.test_case "egg = egglogNI growth" `Quick test_parity_with_egglog ]);
      ("invariants", [ QCheck_alcotest.to_alcotest prop_audit_clean ]);
    ]
