(* Quickstart: egglog as a Datalog (Fig. 3) and as an EqSat engine (Fig. 4).

   Run with:  dune exec examples/quickstart.exe *)

let section title = Printf.printf "\n== %s ==\n%!" title

let run title src =
  section title;
  print_endline (String.trim src);
  print_endline "-- output --";
  List.iter (fun line -> Printf.printf "  %s\n" line) (Egglog.run_program_string src)

let () =
  run "Transitive closure (Fig. 3a)"
    {|
    (relation edge (i64 i64))
    (relation path (i64 i64))
    (rule ((edge x y)) ((path x y)))
    (rule ((path x y) (edge y z)) ((path x z)))
    (edge 1 2) (edge 2 3) (edge 3 4)
    (run)
    (check (path 1 4))
    (print-size path)
    |};

  run "Shortest path with the min lattice (Fig. 3b)"
    {|
    (function edge (i64 i64) i64)
    (function path (i64 i64) i64 :merge (min old new))
    (rule ((= (edge x y) len)) ((set (path x y) len)))
    (rule ((= (path x y) xy) (= (edge y z) yz)) ((set (path x z) (+ xy yz))))
    (set (edge 1 2) 10)
    (set (edge 2 3) 10)
    (set (edge 1 3) 30)
    (run)
    (check (path 1 3))
    |};

  run "Node contraction by unification (Fig. 4a)"
    {|
    (sort Node)
    (function mk (i64) Node)
    (relation edge (Node Node))
    (relation path (Node Node))
    (rule ((edge x y)) ((path x y)))
    (rule ((path x y) (edge y z)) ((path x z)))
    (edge (mk 1) (mk 2))
    (edge (mk 2) (mk 3))
    (edge (mk 5) (mk 6))
    (union (mk 3) (mk 5))
    (run)
    (check (path (mk 1) (mk 6)))
    |};

  run "Equality saturation (Fig. 4b)"
    {|
    (datatype Math (Num i64) (Var String) (Add Math Math) (Mul Math Math))
    (define expr1 (Mul (Num 2) (Add (Var "x") (Num 3))))
    (define expr2 (Add (Num 6) (Mul (Num 2) (Var "x"))))
    (rewrite (Add a b) (Add b a))
    (rewrite (Mul a (Add b c)) (Add (Mul a b) (Mul a c)))
    (rewrite (Add (Num a) (Num b)) (Num (+ a b)))
    (rewrite (Mul (Num a) (Num b)) (Num (* a b)))
    (run 10)
    (check (= expr1 expr2))
    (extract expr1)
    |};

  section "Same engine, typed API";
  let eng = Egglog.Engine.create () in
  Egglog.Engine.declare_relation eng "edge" [ Egglog.Ast.T_name "i64"; Egglog.Ast.T_name "i64" ];
  Egglog.Engine.declare_relation eng "path" [ Egglog.Ast.T_name "i64"; Egglog.Ast.T_name "i64" ];
  Egglog.Engine.add_rule eng
    {
      Egglog.Ast.rule_name = None;
      query = [ Egglog.Ast.Holds (Egglog.Ast.Call ("edge", [ Egglog.Ast.Var "x"; Egglog.Ast.Var "y" ])) ];
      actions = [ Egglog.Ast.Do (Egglog.Ast.Call ("path", [ Egglog.Ast.Var "x"; Egglog.Ast.Var "y" ])) ];
      ruleset = None;
    };
  List.iter
    (fun (a, b) ->
      Egglog.Engine.set_fact eng "edge"
        [ Egglog.Value.VInt a; Egglog.Value.VInt b ]
        Egglog.Value.VUnit)
    [ (10, 20); (20, 30) ];
  let report = Egglog.Engine.run_iterations eng 10 in
  Printf.printf "saturated after %d iterations; path has %d tuples\n"
    (List.length report.Egglog.Engine.iterations)
    (Egglog.Engine.table_size eng "path")
