(* Making floating-point programs more accurate with sound rewriting
   (§6.2, the Herbie case study).

   Run with:  dune exec examples/fp_accuracy.exe *)

module H = Herbie

let show name =
  let bench = H.Suite.find name in
  Printf.printf "\n== %s ==\n" name;
  Printf.printf "input:  %s\n" (H.Fpexpr.to_string bench.H.Suite.expr);
  Printf.printf "ranges: %s\n"
    (String.concat ", "
       (List.map (fun (x, lo, hi) -> Printf.sprintf "%s in [%g, %g]" x lo hi) bench.H.Suite.ranges));
  let sound = H.Pipeline.improve H.Pipeline.Sound bench in
  let unsound = H.Pipeline.improve H.Pipeline.Unsound bench in
  Printf.printf "error before:          %6.2f bits\n" sound.H.Pipeline.bits_before;
  Printf.printf "sound analysis:        %6.2f bits in %.3fs -> %s\n" sound.H.Pipeline.bits_after
    sound.H.Pipeline.seconds
    (H.Fpexpr.to_string sound.H.Pipeline.chosen);
  Printf.printf "unsound ruleset:       %6.2f bits in %.3fs (%d candidates rejected) -> %s\n"
    unsound.H.Pipeline.bits_after unsound.H.Pipeline.seconds unsound.H.Pipeline.n_invalid
    (H.Fpexpr.to_string unsound.H.Pipeline.chosen)

let () =
  print_endline "The rewrites are guarded by egglog-resident analyses: an interval";
  print_endline "analysis (lo/hi with max/min merges, Fig. 10) and a not-equals";
  print_endline "analysis derived from it — multiple analyses cooperating, which a";
  print_endline "single-analysis EqSat framework cannot express compositionally.";
  List.iter show
    [ "sqrt-cancel"; "cbrt-cancel"; "expand-binomial"; "sqrt-square-neg"; "cancel-crossing" ]
