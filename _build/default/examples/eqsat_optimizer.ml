(* An equality-saturation term optimizer on egg's math workload (Fig. 7's
   subject), showing rewriting, scheduling, extraction — and the same
   e-graph growth as the bundled egg-style baseline.

   Run with:  dune exec examples/eqsat_optimizer.exe *)

let () =
  print_endline "== optimize some arithmetic with equality saturation ==";
  let eng = Egglog.Engine.create ~scheduler:Egglog.Engine.backoff_default () in
  ignore (Egglog.run_string eng (Math_suite.egglog_prelude ^ Math_suite.egglog_rules ()));
  let optimize src =
    let outputs =
      Egglog.run_string eng
        (Printf.sprintf "(push) (define target %s) (run 8) (extract target) (pop)" src)
    in
    List.iter
      (fun line ->
        if String.length line > 0 && line.[0] = '(' then
          Printf.printf "  %-52s ->  %s\n" src line)
      outputs
  in
  optimize {|(Add (Mul (Num 0) (Var "x")) (Mul (Var "y") (Num 1)))|};
  optimize {|(Add (Num 1) (Sub (Var "a") (Mul (Sub (Num 2) (Num 1)) (Var "a"))))|};
  optimize {|(Pow (Add (Var "x") (Num 0)) (Num 2))|};
  optimize {|(Diff (Var "x") (Add (Num 1) (Mul (Num 2) (Var "x"))))|};

  print_endline "\n== egglog and the egg-style baseline grow the same e-graph ==";
  let eg = Egraph.create () in
  List.iter (fun t -> ignore (Egraph.add_term eg t)) (Math_suite.egg_seed_terms ());
  let eng = Egglog.Engine.create ~seminaive:false () in
  ignore (Egglog.run_string eng (Math_suite.egglog_program ()));
  Printf.printf "%6s %14s %14s\n" "iter" "egg e-nodes" "egglog tuples";
  for i = 1 to 5 do
    ignore (Egraph.run eg (Math_suite.egg_rewrites ()) 1);
    ignore (Egglog.Engine.run_iterations eng 1);
    let tuples =
      List.fold_left
        (fun acc f -> acc + Egglog.Engine.table_size eng f)
        0
        [ "Num"; "Var"; "Add"; "Sub"; "Mul"; "Div"; "Pow"; "Ln"; "Sqrt"; "Diff"; "Integral" ]
    in
    Printf.printf "%6d %14d %14d\n" i (Egraph.n_nodes eg) tuples
  done
