(* Unification-based algorithms beyond EqSat (§3.5 and Appendix A.3):
   Hindley-Milner-style type unification with an occurs check, written as
   a handful of egglog rules — the engine's congruence closure is the
   unification machinery.

   Run with:  dune exec examples/type_inference.exe *)

let prelude =
  {|
  (datatype Type
    (TInt)
    (TBool)
    (TArrow Type Type)
    (TMeta String))

  ;; Unification: equating two arrows equates the pieces (injectivity).
  (rule ((= (TArrow fr1 to1) (TArrow fr2 to2)))
        ((union fr1 fr2) (union to1 to2)))

  ;; Occurs check as a separate, composable analysis.
  (relation occurs-check (String Type))
  (relation occurs-fail (String))
  (rule ((= (TMeta x) (TArrow fr to))) ((occurs-check x fr) (occurs-check x to)))
  (rule ((occurs-check x (TArrow fr to))) ((occurs-check x fr) (occurs-check x to)))
  (rule ((occurs-check x (TMeta x))) ((occurs-fail x)))
  |}

let run_case title body =
  Printf.printf "\n== %s ==\n" title;
  print_endline (String.trim body);
  print_endline "-- output --";
  match Egglog.run_program_string (prelude ^ body) with
  | outputs -> List.iter (Printf.printf "  %s\n") outputs
  | exception Egglog.Egglog_error msg -> Printf.printf "  error: %s\n" msg

let () =
  run_case "solve  a -> b  ==  Int -> (Bool -> Int)"
    {|
    (union (TArrow (TMeta "a") (TMeta "b")) (TArrow (TInt) (TArrow (TBool) (TInt))))
    (run 5)
    (check (= (TMeta "a") (TInt)))
    (check (= (TMeta "b") (TArrow (TBool) (TInt))))
    (extract (TMeta "b"))
    |};
  run_case "chained metavariables:  a -> a  ==  b -> Int"
    {|
    (union (TArrow (TMeta "a") (TMeta "a")) (TArrow (TMeta "b") (TInt)))
    (run 5)
    (check (= (TMeta "a") (TInt)))
    (check (= (TMeta "b") (TInt)))
    |};
  run_case "occurs check rejects  a == a -> Int"
    {|
    (union (TMeta "a") (TArrow (TMeta "a") (TInt)))
    (run 5)
    (check (occurs-fail "a"))
    |}
