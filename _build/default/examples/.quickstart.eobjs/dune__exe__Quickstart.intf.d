examples/quickstart.mli:
