examples/eqsat_optimizer.mli:
