examples/pointsto_analysis.ml: Array Egglog Format List Minidatalog Pointsto Printf String Unix
