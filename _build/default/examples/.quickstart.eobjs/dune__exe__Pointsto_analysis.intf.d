examples/pointsto_analysis.mli:
