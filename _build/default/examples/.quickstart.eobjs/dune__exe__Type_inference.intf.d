examples/type_inference.mli:
