examples/type_inference.ml: Egglog List Printf String
