examples/quickstart.ml: Egglog List Printf String
