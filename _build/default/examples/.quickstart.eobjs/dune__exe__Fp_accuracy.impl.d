examples/fp_accuracy.ml: Herbie List Printf String
