examples/eqsat_optimizer.ml: Egglog Egraph List Math_suite Printf String
