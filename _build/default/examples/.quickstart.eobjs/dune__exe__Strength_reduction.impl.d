examples/strength_reduction.ml: Array Miniopt Printf String
