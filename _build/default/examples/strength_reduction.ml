(* A compiler peephole/strength-reduction pass built on egglog: equality
   saturation over algebraic + folding + strength-reduction rules, then
   cost-aware extraction under a latency model (multiplies cost 4, shifts
   and adds cost 1).

   Run with:  dune exec examples/strength_reduction.exe *)

let show e =
  let out = Miniopt.optimize e in
  Printf.printf "  %-34s (cost %2d)  ->  %-22s (cost %2d)\n" (Miniopt.to_string e)
    (Miniopt.cost e) (Miniopt.to_string out) (Miniopt.cost out)

let () =
  print_endline "== the ruleset ==";
  print_endline (String.trim Miniopt.rules_program);
  print_endline "\n== optimizations found by saturation + extraction ==";
  let a0 = Miniopt.Arg 0 and a1 = Miniopt.Arg 1 in
  let c n = Miniopt.Const n in
  show (Miniopt.Mul (a0, c 8));
  show (Miniopt.Mul (a0, c 3));
  show (Miniopt.Add (a0, a0));
  show (Miniopt.Mul (Miniopt.Add (a0, c 0), Miniopt.Mul (c 2, c 2)));
  show (Miniopt.Add (Miniopt.Mul (a0, c 3), Miniopt.Mul (a0, c 5)));
  show (Miniopt.Sub (Miniopt.Mul (a0, a1), Miniopt.Mul (a0, a1)));
  show (Miniopt.Mul (Miniopt.Mul (a0, c 2), c 8));
  (* sanity: the optimized form computes the same thing *)
  let e = Miniopt.Mul (Miniopt.Add (a0, a1), c 16) in
  let out = Miniopt.optimize e in
  let args = [| 7; -3 |] in
  Printf.printf "\nsemantics preserved: %s = %s on %s -> %b\n" (Miniopt.to_string e)
    (Miniopt.to_string out)
    (Printf.sprintf "[%d;%d]" args.(0) args.(1))
    (Miniopt.eval e args = Miniopt.eval out args)
