(* Figs. 11 & 12: Herbie with egglog's sound analyses vs Herbie's unsound
   ruleset, across the FP benchmark suite.

   Fig. 11 plots the distribution of (average bits of error with the
   unsound rules) - (with the sound analysis): negative = sound analysis
   found the more accurate program. Fig. 12 plots the distribution of the
   runtime differences; the paper reports the sound analysis being faster
   overall (73.91 vs 81.91 minutes) because unsound results waste search
   and must be detected and discarded. *)

let histogram ~label ~unit values =
  let buckets =
    [ (neg_infinity, -10.0); (-10.0, -1.0); (-1.0, -0.1); (-0.1, 0.1); (0.1, 1.0); (1.0, 10.0);
      (10.0, infinity) ]
  in
  Printf.printf "%s (unsound - sound, %s):\n" label unit;
  List.iter
    (fun (lo, hi) ->
      let n = List.length (List.filter (fun v -> v >= lo && v < hi) values) in
      let bar = String.make (min 60 (n * 3)) '#' in
      Printf.printf "  [%8s, %8s): %3d %s\n"
        (if lo = neg_infinity then "-inf" else Printf.sprintf "%g" lo)
        (if hi = infinity then "+inf" else Printf.sprintf "%g" hi)
        n bar)
    buckets

let run ~full () =
  let iterations = if full then 8 else 7 in
  Printf.printf "\n=== Figs. 11 & 12: Herbie sound analysis vs unsound ruleset ===\n";
  Printf.printf "%d benchmarks, %d EqSat iterations each\n%!" (List.length Herbie.Suite.benches)
    iterations;
  let results =
    List.map
      (fun bench ->
        let s = Herbie.Pipeline.improve ~iterations Herbie.Pipeline.Sound bench in
        let u = Herbie.Pipeline.improve ~iterations Herbie.Pipeline.Unsound bench in
        (bench, s, u))
      Herbie.Suite.benches
  in
  Printf.printf "%-22s %8s %8s %8s | %8s %8s | %s\n" "benchmark" "before" "sound" "unsound"
    "t-sound" "t-unsnd" "invalid-candidates";
  List.iter
    (fun ((bench : Herbie.Suite.bench), (s : Herbie.Pipeline.outcome), (u : Herbie.Pipeline.outcome)) ->
      Printf.printf "%-22s %8.2f %8.2f %8.2f | %7.3fs %7.3fs | %d\n" bench.Herbie.Suite.name
        s.bits_before s.bits_after u.bits_after s.seconds u.seconds u.n_invalid)
    results;
  let err_diffs = List.map (fun (_, s, u) -> u.Herbie.Pipeline.bits_after -. s.Herbie.Pipeline.bits_after) results in
  let time_diffs = List.map (fun (_, s, u) -> u.Herbie.Pipeline.seconds -. s.Herbie.Pipeline.seconds) results in
  print_newline ();
  histogram ~label:"Fig. 11 - accuracy difference" ~unit:"bits of error" err_diffs;
  let sound_better = List.length (List.filter (fun d -> d > 0.05) err_diffs) in
  let unsound_better = List.length (List.filter (fun d -> d < -0.05) err_diffs) in
  Printf.printf
    "sound analysis more accurate on %d benchmarks, unsound on %d (paper: 104 vs 135 of 289)\n\n"
    sound_better unsound_better;
  histogram ~label:"Fig. 12 - runtime difference" ~unit:"seconds" time_diffs;
  let t_sound = List.fold_left (fun a (_, s, _) -> a +. s.Herbie.Pipeline.seconds) 0.0 results in
  let t_unsound = List.fold_left (fun a (_, _, u) -> a +. u.Herbie.Pipeline.seconds) 0.0 results in
  Printf.printf "total: sound %.2fs vs unsound %.2fs (paper: 73.91 vs 81.91 minutes)\n%!" t_sound
    t_unsound
