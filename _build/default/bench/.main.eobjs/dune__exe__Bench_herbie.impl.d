bench/bench_herbie.ml: Herbie List Printf String
