bench/bench_fig8.ml: Array List Minidatalog Pointsto Printf String Unix
