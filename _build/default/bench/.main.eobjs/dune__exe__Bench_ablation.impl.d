bench/bench_ablation.ml: Egglog List Math_suite Pointsto Printf Unix
