bench/main.mli:
