bench/main.ml: Array Bench_ablation Bench_fig7 Bench_fig8 Bench_herbie Bench_micro List Sys
