bench/bench_fig7.ml: Array Egglog Egraph List Math_suite Option Printf
