bench/bench_micro.ml: Analyze Array Bechamel Benchmark Bigint Egglog Egraph Hashtbl Instance List Math_suite Measure Printf Rat Staged Test Time Toolkit Union_find
