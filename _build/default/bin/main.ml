(* The egglog command-line tool: run .egg programs or an interactive REPL
   (the language-based design of §5.2). *)

let run_file ~seminaive ~backoff ~load ~dump path =
  let scheduler = if backoff then Egglog.Engine.backoff_default else Egglog.Engine.Simple in
  let eng = Egglog.Engine.create ~seminaive ~scheduler () in
  let src = In_channel.with_open_text path In_channel.input_all in
  match
    (* Snapshots carry data, not declarations: FILE must (re)declare the
       schema; the snapshot is loaded after the program runs, ready for
       further sessions. *)
    (match load with
     | Some snap_path ->
       let outputs = Egglog.run_string eng src in
       Egglog.Serialize.load_string eng (In_channel.with_open_text snap_path In_channel.input_all);
       outputs
     | None -> Egglog.run_string eng src)
  with
  | outputs ->
    List.iter print_endline outputs;
    (match dump with
     | Some out_path ->
       Out_channel.with_open_text out_path (fun oc ->
           Out_channel.output_string oc (Egglog.Serialize.dump_string eng));
       Printf.printf "dumped database to %s\n" out_path
     | None -> ());
    0
  | exception Egglog.Egglog_error msg ->
    Printf.eprintf "error: %s\n" msg;
    1
  | exception Sexpr.Parse_error { line; col; message } ->
    Printf.eprintf "%s:%d:%d: parse error: %s\n" path line col message;
    1
  | exception Egglog.Frontend.Syntax_error msg ->
    Printf.eprintf "%s: syntax error: %s\n" path msg;
    1
  | exception Egglog.Serialize.Load_error msg ->
    Printf.eprintf "snapshot error: %s\n" msg;
    1

let repl ~seminaive ~backoff () =
  let scheduler = if backoff then Egglog.Engine.backoff_default else Egglog.Engine.Simple in
  let eng = Egglog.Engine.create ~seminaive ~scheduler () in
  Printf.printf "egglog repl — enter commands, ctrl-d to exit\n%!";
  let rec loop buffer =
    Printf.printf "%s %!" (if buffer = "" then ">" else "...");
    match In_channel.input_line stdin with
    | None -> 0
    | Some line -> (
      let src = buffer ^ "\n" ^ line in
      (* Keep reading until the parens balance. *)
      let depth =
        String.fold_left
          (fun d c -> if c = '(' then d + 1 else if c = ')' then d - 1 else d)
          0 src
      in
      if depth > 0 then loop src
      else begin
        (match Egglog.run_string eng src with
         | outputs -> List.iter print_endline outputs
         | exception Egglog.Egglog_error msg -> Printf.printf "error: %s\n" msg
         | exception Sexpr.Parse_error { message; _ } -> Printf.printf "parse error: %s\n" message
         | exception Egglog.Frontend.Syntax_error msg -> Printf.printf "syntax error: %s\n" msg);
        loop ""
      end)
  in
  loop ""

let () =
  let open Cmdliner in
  let file =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"egglog program to run")
  in
  let no_seminaive =
    Arg.(value & flag & info [ "no-seminaive" ] ~doc:"Disable semi-naïve evaluation (egglogNI)")
  in
  let backoff =
    Arg.(value & flag & info [ "backoff" ] ~doc:"Use the BackOff rule scheduler (as in egg)")
  in
  let load =
    Arg.(value & opt (some string) None & info [ "load" ] ~docv:"SNAPSHOT"
           ~doc:"Load a database snapshot (produced by --dump) after running FILE")
  in
  let dump =
    Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"SNAPSHOT"
           ~doc:"Dump the final database to this file")
  in
  let main file no_seminaive backoff load dump =
    let seminaive = not no_seminaive in
    match file with
    | Some path -> run_file ~seminaive ~backoff ~load ~dump path
    | None -> repl ~seminaive ~backoff ()
  in
  let term = Term.(const main $ file $ no_seminaive $ backoff $ load $ dump) in
  let info =
    Cmd.info "egglog" ~doc:"A fixpoint reasoning system unifying Datalog and equality saturation"
  in
  exit (Cmd.eval' (Cmd.v info term))
