(* Unit and fuzz coverage for compiled join plans (Join.compile_plan /
   Plan_compile): the specialization boundaries (per-arity binders vs the
   generic fallback, fast paths vs the trie join, the atomless interpreter
   fallback), hoisted constant/same-column checks, pre-resolved primitive
   guards, a plan-shape fuzzer pinning the compiled evaluator to the
   interpreter on random databases, and a regression that a real workload
   (the fig7 math suite) actually compiles its plans. *)

module E = Egglog

let test_seed =
  match Sys.getenv_opt "EGGLOG_TEST_SEED" with
  | None -> 0x5eed2026
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> failwith (Printf.sprintf "EGGLOG_TEST_SEED must be an integer, got %S" s))

let to_alcotest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| test_seed |]) t

let compile_env db =
  {
    E.Compile.find_func =
      (fun name -> Option.map E.Table.func (E.Database.find_func db (E.Symbol.intern name)));
  }

let interp_multiset db ?cache ?(fast_paths = true) q ~ranges =
  let acc = ref [] in
  E.Join.search db ?cache ~fast_paths q ~ranges (fun binding ->
      acc := String.concat "," (Array.to_list (Array.map E.Value.to_string binding)) :: !acc);
  List.sort compare !acc

let compiled_multiset db ?cache ?(fast_paths = true) q ~ranges =
  let cp = E.Join.compile_plan ~fast_paths q in
  let acc = ref [] in
  E.Join.search_compiled db ?cache cp ~ranges (fun binding ->
      acc := String.concat "," (Array.to_list (Array.map E.Value.to_string binding)) :: !acc);
  List.sort compare !acc

(* Fresh engine with relations r0..r(n-1) of the given arities. *)
let setup arities =
  let eng = E.Engine.create () in
  let decls =
    String.concat "\n"
      (List.mapi
         (fun i a ->
           Printf.sprintf "(relation r%d (%s))" i
             (String.concat " " (List.init a (fun _ -> "i64"))))
         arities)
  in
  if decls <> "" then ignore (E.run_string eng decls);
  eng

let insert eng rel vals =
  E.Engine.set_fact eng rel (List.map (fun v -> E.Value.VInt v) vals) E.Value.VUnit

let v name = E.Ast.Var name
let lit n = E.Ast.Lit (E.Value.VInt n)
let holds rel args = E.Ast.Holds (E.Ast.Call (rel, args))
let query db facts = E.Compile.compile_query (compile_env db) facts
let all n = Array.make n E.Join.all_rows

(* ------------------------------------------------------------------ *)
(* Specialization boundaries                                           *)
(* ------------------------------------------------------------------ *)

(* Single-atom plans binding 1-4 variables take the hand-specialized
   binder; 5+ falls back to the generic readers loop. Both report it, and
   describe_lowering (what --explain-plans prints) agrees with the built
   plan's description. *)
let test_binder_arity_boundary () =
  List.iter
    (fun k ->
      let eng = setup [ k ] in
      let db = E.Engine.database eng in
      let q = query db [ holds "r0" (List.init k (fun i -> v (Printf.sprintf "x%d" i))) ] in
      let cp = E.Join.compile_plan q in
      let expect =
        Printf.sprintf "compiled single-atom (arity %d, %s)" k
          (if k <= 4 then "specialized" else "generic binder")
      in
      Alcotest.(check bool) (Printf.sprintf "arity %d is compiled" k) true (E.Join.is_compiled cp);
      Alcotest.(check string) (Printf.sprintf "arity %d descr" k) expect (E.Join.compiled_descr cp);
      Alcotest.(check string)
        (Printf.sprintf "arity %d describe_lowering" k)
        expect (E.Join.describe_lowering q))
    [ 1; 2; 3; 4; 5 ]

(* The boundary decides by bound variables, not schema arity: an arity-5
   atom whose columns repeat one variable binds a single variable and
   stays specialized. *)
let test_binder_counts_vars_not_columns () =
  let eng = setup [ 5 ] in
  let db = E.Engine.database eng in
  let q = query db [ holds "r0" [ v "x"; v "x"; v "x"; v "x"; v "x" ] ] in
  Alcotest.(check string)
    "repeated-variable atom stays specialized" "compiled single-atom (arity 1, specialized)"
    (E.Join.describe_lowering q)

let test_two_atom_and_generic_lowering () =
  let eng = setup [ 2; 5; 1 ] in
  let db = E.Engine.database eng in
  let two =
    query db
      [
        holds "r0" [ v "a"; v "b" ];
        holds "r1" [ v "a"; v "b"; v "c"; v "d"; v "e" ];
      ]
  in
  Alcotest.(check string)
    "mixed two-atom lowering" "compiled two-atom (arities 2+5, specialized/generic binder)"
    (E.Join.describe_lowering two);
  let three =
    query db [ holds "r0" [ v "a"; v "b" ]; holds "r2" [ v "a" ]; holds "r2" [ v "b" ] ]
  in
  Alcotest.(check string)
    "three atoms go generic" "compiled generic (3 atoms)" (E.Join.describe_lowering three);
  let one = query db [ holds "r0" [ v "a"; v "b" ] ] in
  Alcotest.(check string)
    "fast paths off forces the generic lowering" "compiled generic (1 atoms)"
    (E.Join.describe_lowering ~fast_paths:false one)

(* Atomless (pure primitive) queries stay on the interpreter — and the
   fallback still yields the interpreter's exact bindings. *)
let test_atomless_interpreter_fallback () =
  let eng = setup [] in
  let db = E.Engine.database eng in
  let q = query db [ E.Ast.Eq (E.Ast.Call ("+", [ lit 1; lit 2 ]), v "s") ] in
  let cp = E.Join.compile_plan q in
  Alcotest.(check bool) "not compiled" false (E.Join.is_compiled cp);
  Alcotest.(check string) "fallback descr" "interpreter (no atoms)" (E.Join.compiled_descr cp);
  Alcotest.(check (list string))
    "fallback yields the interpreter's bindings"
    (interp_multiset db q ~ranges:(all 0))
    (compiled_multiset db q ~ranges:(all 0));
  Alcotest.(check (list string)) "which is the computed sum" [ "3" ]
    (compiled_multiset db q ~ranges:(all 0))

(* ------------------------------------------------------------------ *)
(* Hoisted checks and pre-resolved primitives                          *)
(* ------------------------------------------------------------------ *)

let test_constant_check_hoisting () =
  let eng = setup [ 2 ] in
  let db = E.Engine.database eng in
  insert eng "r0" [ 1; 2 ];
  insert eng "r0" [ 1; 3 ];
  insert eng "r0" [ 2; 2 ];
  let const_q = query db [ holds "r0" [ lit 1; v "x" ] ] in
  Alcotest.(check (list string)) "constant column filters" [ "2"; "3" ]
    (compiled_multiset db const_q ~ranges:(all 1));
  let same_q = query db [ holds "r0" [ v "x"; v "x" ] ] in
  Alcotest.(check (list string)) "same-column check filters" [ "2" ]
    (compiled_multiset db same_q ~ranges:(all 1));
  (* a fully-constant atom binds nothing and emits one empty match per row *)
  let ground_hit = query db [ holds "r0" [ lit 2; lit 2 ] ] in
  Alcotest.(check (list string)) "ground atom present" [ "" ]
    (compiled_multiset db ground_hit ~ranges:(all 1));
  let ground_miss = query db [ holds "r0" [ lit 2; lit 3 ] ] in
  Alcotest.(check (list string)) "ground atom absent" []
    (compiled_multiset db ground_miss ~ranges:(all 1))

let test_prim_guard_resolution () =
  let eng = setup [ 1 ] in
  let db = E.Engine.database eng in
  List.iter (fun i -> insert eng "r0" [ i ]) [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  (* the guard's output is an internal variable (bound to unit) — it rides
     along in the binding array *)
  let guard = query db [ holds "r0" [ v "x" ]; holds "<" [ v "x"; lit 4 ] ] in
  Alcotest.(check (list string)) "guard prunes" [ "1,()"; "2,()"; "3,()" ]
    (compiled_multiset db guard ~ranges:(all 1));
  Alcotest.(check (list string)) "guard agrees with the interpreter"
    (interp_multiset db guard ~ranges:(all 1))
    (compiled_multiset db guard ~ranges:(all 1));
  let binder =
    query db
      [ holds "r0" [ v "x" ]; E.Ast.Eq (E.Ast.Call ("+", [ v "x"; lit 10 ]), v "s") ]
  in
  Alcotest.(check (list string)) "binder computes"
    [ "1,11"; "2,12"; "3,13"; "4,14"; "5,15"; "6,16"; "7,17"; "8,18" ]
    (compiled_multiset db binder ~ranges:(all 1));
  let never =
    query db [ holds "r0" [ v "x" ]; E.Ast.Eq (E.Ast.Call ("+", [ v "x"; lit 1 ]), v "x") ]
  in
  Alcotest.(check (list string)) "never-true guard yields nothing" []
    (compiled_multiset db never ~ranges:(all 1))

(* ------------------------------------------------------------------ *)
(* Plan-shape fuzzer: compiled == interpreted on random databases      *)
(* ------------------------------------------------------------------ *)

type shape = {
  sp_arities : int list;  (* relation arities: r0, r1, ... *)
  sp_rows : (int * int list) list;  (* (table pick, raw column values) *)
  sp_atoms : (int * [ `V of int | `C of int ] list) list;
  sp_windows : int list;  (* per-atom stamp-window picks *)
}

let gen_shape =
  QCheck2.Gen.(
    let arg = oneof [ map (fun i -> `V i) (int_bound 5); map (fun c -> `C c) (int_bound 3) ] in
    map
      (fun ((arities, rows), (atoms, windows)) ->
        { sp_arities = arities; sp_rows = rows; sp_atoms = atoms; sp_windows = windows })
      (pair
         (pair
            (list_size (int_range 1 2) (int_range 1 5))
            (list_size (int_range 0 14) (pair (int_bound 1) (list_repeat 5 (int_bound 3)))))
         (pair
            (list_size (int_range 1 3) (pair (int_bound 1) (list_repeat 6 arg)))
            (list_repeat 3 (int_bound 4)))))

let check_shape sp =
  let n_rels = List.length sp.sp_arities in
  let eng = setup sp.sp_arities in
  let db = E.Engine.database eng in
  (* rows land in two stamped batches so delta windows are non-trivial *)
  let rows =
    List.map
      (fun (pick, raw) ->
        let pick = pick mod n_rels in
        let a = List.nth sp.sp_arities pick in
        (Printf.sprintf "r%d" pick, List.filteri (fun i _ -> i < a) raw))
      sp.sp_rows
  in
  let split = List.length rows / 2 in
  List.iteri (fun i (rel, vals) -> if i < split then insert eng rel vals) rows;
  E.Database.bump_timestamp db;
  let t1 = E.Database.timestamp db in
  List.iteri (fun i (rel, vals) -> if i >= split then insert eng rel vals) rows;
  E.Database.bump_timestamp db;
  let facts =
    List.map
      (fun (pick, specs) ->
        let pick = pick mod n_rels in
        let a = List.nth sp.sp_arities pick in
        let expr_of = function
          | `V i -> v (Printf.sprintf "x%d" i)
          | `C c -> lit c
        in
        holds (Printf.sprintf "r%d" pick)
          (List.filteri (fun i _ -> i < a) specs |> List.map expr_of))
      sp.sp_atoms
  in
  match query db facts with
  | exception E.Compile.Unsat -> true
  | exception E.Compile.Error _ -> true
  | q ->
    let n_atoms = Array.length q.E.Compile.atoms in
    let ranges =
      Array.init n_atoms (fun i ->
          match List.nth sp.sp_windows (i mod List.length sp.sp_windows) with
          | 4 -> { E.Join.lo = t1; hi = max_int }
          | _ -> E.Join.all_rows)
    in
    let expected = interp_multiset db q ~ranges in
    let cache = E.Join.new_cache () in
    E.Join.compiled_descr (E.Join.compile_plan q) = E.Join.describe_lowering q
    && interp_multiset db ~cache q ~ranges = expected
    && compiled_multiset db ~cache q ~ranges = expected
    && compiled_multiset db q ~ranges = expected
    && compiled_multiset db ~fast_paths:false q ~ranges = expected

let prop_shape_fuzz =
  QCheck2.Test.make
    ~name:"plan-shape fuzz: compiled == interpreted (random shapes, windows, shared cache)"
    ~count:300 gen_shape check_shape

(* ------------------------------------------------------------------ *)
(* A real workload compiles its plans                                  *)
(* ------------------------------------------------------------------ *)

let test_fig7_compiles_plans () =
  E.Telemetry.reset ();
  E.Telemetry.enable ();
  let eng = E.Engine.create () in
  ignore (E.run_string eng (Math_suite.egglog_program ()));
  ignore (E.Engine.run_iterations eng 3);
  E.Telemetry.disable ();
  let snap = E.Telemetry.snapshot () in
  let get name = try List.assoc name snap.E.Telemetry.sn_counters with Not_found -> 0 in
  Alcotest.(check bool) "join.compiled_plans > 0" true (get "join.compiled_plans" > 0);
  Alcotest.(check int) "no interpreter fallbacks on fig7" 0 (get "join.interp_fallbacks");
  Alcotest.(check int)
    "every built plan compiled" (get "join.plans_built") (get "join.compiled_plans");
  E.Telemetry.reset ()

let () =
  Printf.printf "property-test seed: %d (override with EGGLOG_TEST_SEED=<n>)\n%!" test_seed;
  try
    Alcotest.run ~and_exit:false "compiled-plans"
      [
        ( "specialization boundaries",
          [
            Alcotest.test_case "binder arity 1-4 vs generic fallback" `Quick
              test_binder_arity_boundary;
            Alcotest.test_case "boundary counts variables, not columns" `Quick
              test_binder_counts_vars_not_columns;
            Alcotest.test_case "two-atom and generic lowerings" `Quick
              test_two_atom_and_generic_lowering;
            Alcotest.test_case "atomless interpreter fallback" `Quick
              test_atomless_interpreter_fallback;
          ] );
        ( "specialized checks",
          [
            Alcotest.test_case "constant-check hoisting" `Quick test_constant_check_hoisting;
            Alcotest.test_case "primitive guard resolution" `Quick test_prim_guard_resolution;
          ] );
        ("fuzz", [ to_alcotest prop_shape_fuzz ]);
        ( "workload",
          [ Alcotest.test_case "fig7 compiles its plans" `Quick test_fig7_compiles_plans ] );
      ]
  with e ->
    Printf.eprintf "\nproperty failure: reproduce with EGGLOG_TEST_SEED=%d\n%!" test_seed;
    raise e
