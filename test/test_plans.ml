(* Golden tests for the --explain-plans dump (Engine.explain_plans): the
   format is deterministic by design — atoms in declaration order, cost
   estimates recomputed from current table statistics, one delta-variant
   order line per atom — so any planner change that shifts an ordering or
   estimate must update these fixtures consciously. *)

module E = Egglog

let check_plans name program expected =
  let eng = E.Engine.create () in
  ignore (E.run_string eng program);
  Alcotest.(check string) name expected (E.Engine.explain_plans eng)

let test_transitive_closure () =
  check_plans "path program plans"
    {|
      (relation edge (i64 i64))
      (relation path (i64 i64))
      (rule ((edge x y)) ((path x y)))
      (rule ((path x y) (edge y z)) ((path x z)))
      (edge 1 2) (edge 2 3) (edge 3 4)
      (run 10)
    |}
    "rule rule_1 (ruleset default)\n\
    \  atoms:\n\
    \    [0] (edge x y) -> ()  rows=3\n\
    \  order: x(est=3) y(est=1)\n\
    \  lowering: compiled single-atom (arity 2, specialized)\n\
    \  delta[0] (0 rows) order: x y  [compiled single-atom (arity 2, specialized)]\n\
     rule rule_2 (ruleset default)\n\
    \  atoms:\n\
    \    [0] (path x y) -> ()  rows=6\n\
    \    [1] (edge y z) -> ()  rows=3\n\
    \  order: y(est=3) z(est=1) x(est=2)\n\
    \  lowering: compiled two-atom (arities 2+2, specialized/specialized)\n\
    \  delta[0] (0 rows) order: y z x  [compiled two-atom (arities 2+2, specialized/specialized)]\n\
    \  delta[1] (0 rows) order: y z x  [compiled two-atom (arities 2+2, specialized/specialized)]\n"

let test_rewrite_rule () =
  (* a rewrite compiles to a single atom whose output is an internal
     variable; the planner binds the (most selective) output column first *)
  check_plans "commutativity rewrite plan"
    {|
      (datatype M (Num i64) (Add M M))
      (rewrite (Add a b) (Add b a))
      (define e (Add (Num 1) (Num 2)))
      (run 2)
    |}
    "rule rule_1 (ruleset default)\n\
    \  atoms:\n\
    \    [0] (Add a b) -> $3  rows=2\n\
    \  order: $3(est=1) a(est=2) b(est=1)\n\
    \  lowering: compiled single-atom (arity 3, specialized)\n\
    \  delta[0] (0 rows) order: a b $3  [compiled single-atom (arity 3, specialized)]\n"

let test_triangle_with_guard () =
  (* three-way cyclic join plus a primitive guard scheduled once its input
     is bound *)
  check_plans "triangle query plan"
    {|
      (relation e (i64 i64))
      (relation tri (i64 i64 i64))
      (rule ((e x y) (e y z) (e z x) (< x 10)) ((tri x y z)))
      (e 1 2) (e 2 3) (e 3 1) (e 4 5) (e 5 4)
      (run)
    |}
    "rule rule_1 (ruleset default)\n\
    \  atoms:\n\
    \    [0] (e x y) -> ()  rows=5\n\
    \    [1] (e y z) -> ()  rows=5\n\
    \    [2] (e z x) -> ()  rows=5\n\
    \  order: z(est=5) x(est=1) y(est=1)\n\
    \    prim@2 (< x 10) -> $6\n\
    \  lowering: compiled generic (3 atoms)\n\
    \  delta[0] (0 rows) order: x z y  [compiled generic (3 atoms)]\n\
    \  delta[1] (0 rows) order: z x y  [compiled generic (3 atoms)]\n\
    \  delta[2] (0 rows) order: z x y  [compiled generic (3 atoms)]\n"

let test_compiled_plans_disabled () =
  (* with --no-compiled-plans every lowering line reports the interpreter *)
  let eng = E.Engine.create ~compiled_plans:false () in
  ignore
    (E.run_string eng
       {|
      (relation edge (i64 i64))
      (rule ((edge x y)) ((edge y x)))
      (edge 1 2)
      (run 1)
    |});
  Alcotest.(check string)
    "interpreter lowering"
    "rule rule_1 (ruleset default)\n\
    \  atoms:\n\
    \    [0] (edge x y) -> ()  rows=2\n\
    \  order: x(est=2) y(est=1)\n\
    \  lowering: interpreter (compiled plans disabled)\n\
    \  delta[0] (1 rows) order: x y  [interpreter (compiled plans disabled)]\n"
    (E.Engine.explain_plans eng)

let test_atomless_rule () =
  check_plans "rule with no atoms"
    {|
      (relation seed (i64))
      (rule () ((seed 1)))
    |}
    "rule rule_1 (ruleset default)\n  (no atoms)\n"

let test_no_rules () = check_plans "no rules, empty dump" "(relation r (i64))" ""

let () =
  Alcotest.run "plans"
    [
      ( "explain-plans goldens",
        [
          Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
          Alcotest.test_case "rewrite rule" `Quick test_rewrite_rule;
          Alcotest.test_case "triangle with guard" `Quick test_triangle_with_guard;
          Alcotest.test_case "compiled plans disabled" `Quick test_compiled_plans_disabled;
          Alcotest.test_case "atomless rule" `Quick test_atomless_rule;
          Alcotest.test_case "no rules" `Quick test_no_rules;
        ] );
    ]
