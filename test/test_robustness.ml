(* Resource governance and fault containment: budgets + stop reasons
   (node/time/:until), transactional commands (rollback to a bit-identical
   pre-command state on any failure), structured errors, and the REPL's
   paren-balance reader. *)

module E = Egglog

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let run_ok eng src =
  try Ok (E.run_string eng src) with E.Egglog_error msg -> Error msg

let expect_ok eng msg src =
  match run_ok eng src with
  | Ok outputs -> outputs
  | Error e -> Alcotest.failf "%s: unexpected error: %s" msg e

let expect_error eng msg src =
  match run_ok eng src with
  | Ok _ -> Alcotest.failf "%s: expected an error" msg
  | Error e -> e

(* A deliberately explosive ruleset: commutativity + associativity churn the
   e-graph while a counting rule keeps injecting fresh leaves, so the
   database grows without bound and only a budget can stop the run. *)
let explosive_header =
  {|
    (datatype Math (Num i64) (Add Math Math))
    (birewrite (Add (Add a b) c) (Add a (Add b c)))
    (rewrite (Add a b) (Add b a))
    (rule ((= e (Num n))) ((Num (+ n 1)) (Num (* n 2))))
    (define seed (Add (Num 1) (Add (Num 2) (Num 3))))
  |}

let stop_reason_testable =
  Alcotest.testable
    (fun fmt r -> Format.pp_print_string fmt (E.Engine.describe_stop_reason r))
    ( = )

(* ---- budgets ---- *)

let test_node_limit () =
  let eng = E.Engine.create () in
  ignore (expect_ok eng "setup" explosive_header);
  let report = E.Engine.run_iterations ~node_limit:400 eng 1_000 in
  (match report.E.Engine.stop_reason with
   | E.Engine.Node_limit rows -> Alcotest.(check bool) "reported rows over limit" true (rows > 400)
   | r -> Alcotest.failf "expected Node_limit, got %s" (E.Engine.describe_stop_reason r));
  (* the budget is cooperative, not exact, but it must not run away: a single
     unchecked explosive iteration would be orders of magnitude larger *)
  Alcotest.(check bool) "stayed near the budget" true (E.Engine.total_rows eng < 40_000);
  (* the engine is still usable: the database is rebuilt and consistent *)
  ignore (expect_ok eng "still usable" "(check (= seed (Add (Num 1) (Add (Num 2) (Num 3)))))")

let test_node_limit_syntax () =
  let eng = E.Engine.create () in
  ignore (expect_ok eng "setup" explosive_header);
  let outputs = expect_ok eng "run" "(run 1000 :node-limit 400)" in
  Alcotest.(check bool)
    "mentions node limit"
    true
    (match outputs with
     | [ line ] ->
       String.length line > 0
       && contains line "(stopped: node limit"
     | _ -> false)


let test_time_limit () =
  let eng = E.Engine.create () in
  ignore (expect_ok eng "setup" explosive_header);
  let report = E.Engine.run_iterations ~time_limit:0.05 eng 1_000_000 in
  match report.E.Engine.stop_reason with
  | E.Engine.Time_limit dt -> Alcotest.(check bool) "elapsed over limit" true (dt > 0.05)
  | r -> Alcotest.failf "expected Time_limit, got %s" (E.Engine.describe_stop_reason r)

let test_rule_stats () =
  let eng = E.Engine.create () in
  ignore (expect_ok eng "setup" explosive_header);
  let report = E.Engine.run_iterations ~node_limit:400 eng 1_000 in
  let total = List.fold_left (fun acc s -> acc + s.E.Engine.rs_matches) 0 report.E.Engine.rule_stats in
  Alcotest.(check bool) "some rule matched" true (total > 0);
  Alcotest.(check int) "four rules reported (birewrite = 2)" 4
    (List.length report.E.Engine.rule_stats)

(* :until stops exactly when the fact becomes derivable: the number of
   iterations must equal the first iteration after which a step-by-step
   reference run can derive it. *)
let reach_header =
  {|
    (relation edge (i64 i64)) (relation path (i64 i64))
    (rule ((edge x y)) ((path x y)))
    (rule ((path x y) (edge y z)) ((path x z)))
    (edge 1 2) (edge 2 3) (edge 3 4) (edge 4 5) (edge 5 6)
  |}

let first_iteration_deriving ~seminaive facts =
  let eng = E.Engine.create ~seminaive () in
  ignore (expect_ok eng "setup" reach_header);
  let rec go i =
    if i > 50 then Alcotest.fail "never derived"
    else if E.Engine.check_facts eng facts then i
    else begin
      ignore (E.Engine.run_iterations eng 1);
      go (i + 1)
    end
  in
  go 0

let test_until_exact () =
  let facts = [ E.Ast.Holds (E.Ast.Call ("path", [ E.Ast.Lit (E.Value.VInt 1); E.Ast.Lit (E.Value.VInt 6) ])) ] in
  let reference = first_iteration_deriving ~seminaive:true facts in
  Alcotest.(check bool) "needs several iterations" true (reference > 1);
  let eng = E.Engine.create () in
  ignore (expect_ok eng "setup" reach_header);
  let report = E.Engine.run_iterations ~until:facts eng 50 in
  Alcotest.check stop_reason_testable "until satisfied" E.Engine.Until_satisfied
    report.E.Engine.stop_reason;
  Alcotest.(check int) "stopped exactly when derivable" reference
    (List.length report.E.Engine.iterations);
  Alcotest.(check bool) "fact holds" true (E.Engine.check_facts eng facts)

let test_until_satisfied_at_entry () =
  let eng = E.Engine.create () in
  ignore (expect_ok eng "setup" reach_header);
  let facts = [ E.Ast.Holds (E.Ast.Call ("edge", [ E.Ast.Lit (E.Value.VInt 1); E.Ast.Lit (E.Value.VInt 2) ])) ] in
  let report = E.Engine.run_iterations ~until:facts eng 50 in
  Alcotest.check stop_reason_testable "until satisfied" E.Engine.Until_satisfied
    report.E.Engine.stop_reason;
  Alcotest.(check int) "zero iterations" 0 (List.length report.E.Engine.iterations)

(* Theorem 4.1 extended to budgeted runs: semi-naïve and naïve evaluation
   agree on the database at the Until_satisfied stop. *)
let test_until_modes_agree () =
  let facts = [ E.Ast.Holds (E.Ast.Call ("path", [ E.Ast.Lit (E.Value.VInt 1); E.Ast.Lit (E.Value.VInt 6) ])) ] in
  let run_mode seminaive =
    let eng = E.Engine.create ~seminaive () in
    ignore (expect_ok eng "setup" reach_header);
    let report = E.Engine.run_iterations ~until:facts eng 50 in
    (eng, report)
  in
  let eng_sn, report_sn = run_mode true in
  let eng_ni, report_ni = run_mode false in
  Alcotest.check stop_reason_testable "both until-satisfied" report_sn.E.Engine.stop_reason
    report_ni.E.Engine.stop_reason;
  Alcotest.(check int) "same iteration count"
    (List.length report_sn.E.Engine.iterations)
    (List.length report_ni.E.Engine.iterations);
  Alcotest.(check int) "same path size" (E.Engine.table_size eng_sn "path")
    (E.Engine.table_size eng_ni "path");
  Alcotest.(check string) "same database" (E.Serialize.dump_string eng_sn)
    (E.Serialize.dump_string eng_ni)

let test_until_textual () =
  let eng = E.Engine.create () in
  ignore (expect_ok eng "setup" reach_header);
  let outputs = expect_ok eng "run until" "(run 50 :until (path 1 6))" in
  Alcotest.(check bool) "mentions until" true
    (match outputs with
     | [ line ] -> contains line "until condition satisfied"
     | _ -> false);
  ignore (expect_ok eng "holds" "(check (path 1 6))")

let test_run_option_errors () =
  let eng = E.Engine.create () in
  let syntax_error src =
    match E.run_string eng src with
    | _ -> Alcotest.failf "expected a syntax error for %s" src
    | exception E.Frontend.Syntax_error _ -> ()
  in
  syntax_error "(run 5 :nodes 100)";
  syntax_error "(run 5 :node-limit x)";
  syntax_error "(run 5 :time-limit \"soon\")";
  syntax_error "(run 5 :memory-limit x)";
  syntax_error "(run 5 :memory-limit -3)";
  syntax_error "(run 5 :until 3)"

(* Session-wide budgets (CLI --node-limit) bound schedules too, and
   saturate loops terminate once the budget trips. *)
let test_schedule_under_budget () =
  let outputs =
    E.run_program_string ~node_limit:400
      (explosive_header ^ "(run-schedule (saturate (run 1)))")
  in
  Alcotest.(check bool) "schedule terminated" true
    (match List.rev outputs with
     | last :: _ -> contains last "schedule ran"
     | [] -> false)

(* ---- memory governance ---- *)

let test_memory_limit () =
  let eng = E.Engine.create () in
  ignore (expect_ok eng "setup" explosive_header);
  let report = E.Engine.run_iterations ~memory_limit:50_000 eng 1_000 in
  (match report.E.Engine.stop_reason with
   | E.Engine.Memory_limit bytes ->
     Alcotest.(check bool) "reported bytes over limit" true (bytes > 50_000);
     Alcotest.(check bool) "peak covers the stop" true
       (report.E.Engine.peak_memory_bytes >= bytes)
   | r -> Alcotest.failf "expected Memory_limit, got %s" (E.Engine.describe_stop_reason r));
  (* cooperative, not exact — but one unchecked explosive iteration would
     overshoot by orders of magnitude *)
  Alcotest.(check bool) "stayed near the budget" true (E.Engine.modeled_bytes eng < 5_000_000);
  ignore (expect_ok eng "still usable" "(check (= seed (Add (Num 1) (Add (Num 2) (Num 3)))))")

(* The acceptance criterion for deterministic governance: the budget is
   enforced against modeled bytes (a pure function of database contents),
   so the same program trips at the same iteration with byte-identical
   state at any jobs count — allocator and scheduling never leak in. *)
let test_memory_limit_deterministic_across_jobs () =
  let run jobs =
    let eng = E.Engine.create () in
    ignore (expect_ok eng "setup" explosive_header);
    let report = E.Engine.run_iterations ~memory_limit:50_000 ~jobs eng 1_000 in
    (report, E.Serialize.dump_string eng)
  in
  let r1, d1 = run 1 in
  let r4, d4 = run 4 in
  Alcotest.check stop_reason_testable "same stop (same byte payload)" r1.E.Engine.stop_reason
    r4.E.Engine.stop_reason;
  Alcotest.(check int) "same iteration count"
    (List.length r1.E.Engine.iterations)
    (List.length r4.E.Engine.iterations);
  Alcotest.(check int) "same modeled peak" r1.E.Engine.peak_memory_bytes
    r4.E.Engine.peak_memory_bytes;
  Alcotest.(check string) "byte-identical dumps" d1 d4

let test_memory_limit_syntax () =
  let eng = E.Engine.create () in
  ignore (expect_ok eng "setup" explosive_header);
  let outputs = expect_ok eng "run" "(run 1000 :memory-limit 50000)" in
  Alcotest.(check bool) "mentions memory limit" true
    (match outputs with
     | [ line ] -> contains line "(stopped: memory limit"
     | _ -> false)

let test_memory_limit_roundtrip () =
  match E.Frontend.parse_program "(run 10 :node-limit 7 :memory-limit 4096)" with
  | [ cmd ] ->
    let printed = Sexpr.to_string (E.Frontend.sexp_of_command cmd) in
    Alcotest.(check bool) "prints :memory-limit" true (contains printed ":memory-limit 4096");
    Alcotest.(check bool) "round-trips" true
      (E.Frontend.command_of_sexp (E.Frontend.sexp_of_command cmd) = [ cmd ])
  | _ -> Alcotest.fail "expected one command"

(* Pressure tiers fire before the hard stop: with tiers set low, the
   scheduler starts banning the biggest byte-growers (visible as rs_bans
   with per-rule rs_bytes attribution) while the run keeps going. *)
let test_memory_pressure_degrades () =
  let eng = E.Engine.create ~pressure_tiers:(0.05, 0.1) () in
  ignore (expect_ok eng "setup" explosive_header);
  let report = E.Engine.run_iterations ~memory_limit:500_000 eng 40 in
  let bans = List.fold_left (fun acc s -> acc + s.E.Engine.rs_bans) 0 report.E.Engine.rule_stats in
  let bytes = List.fold_left (fun acc s -> acc + s.E.Engine.rs_bytes) 0 report.E.Engine.rule_stats in
  Alcotest.(check bool) "pressure banned at least one rule" true (bans > 0);
  Alcotest.(check bool) "byte growth attributed to rules" true (bytes > 0);
  Alcotest.(check bool) "peak tracked" true (report.E.Engine.peak_memory_bytes > 0)

let test_modeled_bytes_exact_after_rollback () =
  let eng = E.Engine.create () in
  ignore
    (expect_ok eng "setup"
       {|
         (relation p (i64)) (relation q (i64))
         (rule ((p x)) ((q x) (panic "boom")))
         (p 1) (p 2)
       |});
  let before = E.Engine.modeled_bytes eng in
  Alcotest.(check bool) "nonzero footprint" true (before > 0);
  ignore (expect_error eng "fails" "(run 1)");
  (* the model is part of engine state: rollback restores it exactly, so
     quota accounting never drifts across failed requests *)
  Alcotest.(check int) "modeled bytes restored exactly" before (E.Engine.modeled_bytes eng);
  ignore (expect_ok eng "grows on insert" "(p 3)");
  Alcotest.(check bool) "insert grows the model" true (E.Engine.modeled_bytes eng > before)

(* ---- transactional commands ---- *)

(* State fingerprint: serialized database + check results + extraction. *)
let fingerprint eng probes =
  let dump = E.Serialize.dump_string eng in
  let checks =
    List.map
      (fun src -> match run_ok eng src with Ok outs -> String.concat "|" outs | Error e -> "err:" ^ e)
      probes
  in
  dump ^ "##" ^ String.concat "&&" checks

let test_rollback_mid_run_failure () =
  let eng = E.Engine.create () in
  ignore
    (expect_ok eng "setup"
       {|
         (relation p (i64)) (relation q (i64))
         (rule ((p x)) ((q x)))                       ; applied first: mutates
         (rule ((p x)) ((panic "boom")))              ; applied second: fails
         (p 1) (p 2) (p 3)
       |});
  let probes = [ "(print-size q)"; "(check (p 2))" ] in
  let before = fingerprint eng probes in
  let err = expect_error eng "run fails" "(run 5)" in
  Alcotest.(check bool) "panic surfaced" true (contains err "boom");
  Alcotest.(check string) "state rolled back bit-identically" before (fingerprint eng probes);
  (* and the session stays usable *)
  ignore (expect_ok eng "usable" "(p 4) (check (p 4))")

let test_rollback_merge_conflict () =
  let eng = E.Engine.create () in
  ignore (expect_ok eng "setup" "(function f (i64) i64) (set (f 0) 1)");
  let probes = [ "(check (= (f 0) 1))" ] in
  let before = fingerprint eng probes in
  let err = expect_error eng "conflict" "(set (f 0) 2)" in
  Alcotest.(check bool) "structured merge error" true
    (contains err "merge conflict on function f");
  Alcotest.(check string) "rolled back" before (fingerprint eng probes)

let test_rollback_primitive_failure () =
  let eng = E.Engine.create () in
  ignore
    (expect_ok eng "setup"
       {|
         (function acc (i64) i64 :merge new)
         (relation seen (i64))
         (rule ((seen x)) ((set (acc x) (* x 2))))
         (rule ((seen x)) ((set (acc (+ x 100)) (/ 1 (- x x)))))  ; div by zero
         (seen 7)
       |});
  let before = fingerprint eng [ "(print-stats)" ] in
  let err = expect_error eng "run fails" "(run 3)" in
  Alcotest.(check bool) "division by zero surfaced" true
    (contains err "division by zero" || contains err "failed on");
  Alcotest.(check string) "rolled back" before (fingerprint eng [ "(print-stats)" ])

let test_rollback_under_nested_push () =
  let eng = E.Engine.create () in
  ignore
    (expect_ok eng "setup"
       {|
         (relation p (i64)) (relation q (i64))
         (rule ((p x)) ((q x)))
         (rule ((q x)) ((panic "nested boom")))
         (push)
         (p 1)
         (push)
         (p 2)
       |});
  let probes = [ "(print-size p)"; "(print-size q)" ] in
  let before = fingerprint eng probes in
  ignore (expect_error eng "fails" "(run 5)");
  Alcotest.(check string) "rolled back inside nested scopes" before (fingerprint eng probes);
  (* both pops still restore their snapshots *)
  ignore (expect_ok eng "pop inner" "(pop) (check (p 1)) (fail (check (p 2)))");
  ignore (expect_ok eng "pop outer" "(pop) (fail (check (p 1)))")

let test_failed_declaration_keeps_schema_clean () =
  let eng = E.Engine.create () in
  ignore (expect_ok eng "setup" "(sort S)");
  (* datatype fails late: the sort is declared, then a variant references an
     unknown type — the whole declaration must unwind *)
  let _err = expect_error eng "bad datatype" "(datatype T (Mk Nonexistent))" in
  ignore (expect_ok eng "T reusable" "(datatype T (Mk i64)) (define t (Mk 3)) (check (= t (Mk 3)))")

let test_pop_on_empty_stack_is_safe () =
  let eng = E.Engine.create () in
  ignore (expect_ok eng "setup" "(relation p (i64)) (p 1)");
  let before = fingerprint eng [ "(print-size p)" ] in
  ignore (expect_error eng "pop fails" "(pop)");
  Alcotest.(check string) "unchanged" before (fingerprint eng [ "(print-size p)" ]);
  ignore (expect_ok eng "usable" "(check (p 1))")

let test_failed_check_rolls_back_side_effects () =
  (* a check on a get-or-default function would otherwise insert fresh ids *)
  let eng = E.Engine.create () in
  ignore (expect_ok eng "setup" "(datatype M (Mk i64)) (sort S) (function g (M) S)");
  let before = E.Serialize.dump_string eng in
  ignore (expect_error eng "check fails" "(check (= (Mk 1) (Mk 2)))");
  Alcotest.(check string) "no residue" before (E.Serialize.dump_string eng)

(* ---- REPL paren-balance reader ---- *)

let balance_testable =
  Alcotest.testable
    (fun fmt b ->
      Format.pp_print_string fmt
        (match b with
         | E.Frontend.Balanced -> "Balanced"
         | E.Frontend.Incomplete -> "Incomplete"
         | E.Frontend.Unbalanced -> "Unbalanced"))
    ( = )

let test_paren_balance () =
  let check msg expected src =
    Alcotest.check balance_testable msg expected (E.Frontend.paren_balance src)
  in
  check "complete command" E.Frontend.Balanced "(check (p 1))";
  check "open paren" E.Frontend.Incomplete "(rule ((p x))";
  check "paren in string literal" E.Frontend.Balanced {|(panic "(")|};
  check "open paren in string does not hang" E.Frontend.Balanced {|(include "dir(1)/f.egg")|};
  check "unterminated string wants more input" E.Frontend.Incomplete {|(panic "oops|};
  check "escaped quote stays in string" E.Frontend.Incomplete {|(panic "a\"b|};
  check "paren in comment ignored" E.Frontend.Balanced "(p 1) ; (unclosed\n";
  check "comment ends at newline" E.Frontend.Incomplete "; (\n(p 1";
  check "stray close paren" E.Frontend.Unbalanced "(p 1))";
  check "stray close after balanced" E.Frontend.Unbalanced ")";
  check "empty input" E.Frontend.Balanced ""

(* ---- structured errors ---- *)

let test_structured_merge_conflict_payload () =
  let db = E.Database.create () in
  let f =
    {
      E.Schema.name = E.Symbol.intern "cnt";
      arg_tys = [| E.Ty.Int |];
      ret_ty = E.Ty.Int;
      merge = E.Schema.Merge_panic;
      default = E.Schema.Default_panic;
      cost = 1;
      is_relation = false;
    }
  in
  E.Database.declare_func db f;
  let table = Option.get (E.Database.find_func db (E.Symbol.intern "cnt")) in
  E.Database.set db table [| E.Value.VInt 0 |] (E.Value.VInt 1);
  match E.Database.set db table [| E.Value.VInt 0 |] (E.Value.VInt 2) with
  | () -> Alcotest.fail "expected Merge_conflict"
  | exception E.Database.Merge_conflict { func; old_value; new_value } ->
    Alcotest.(check string) "function name" "cnt" (E.Symbol.name func);
    Alcotest.(check bool) "payload values" true
      (old_value = E.Value.VInt 1 && new_value = E.Value.VInt 2)

let test_run_command_normalizes_internal_errors () =
  (* through the command layer the same failure is a plain Egglog_error *)
  let eng = E.Engine.create () in
  ignore (expect_ok eng "setup" "(function cnt (i64) i64) (set (cnt 0) 1)");
  let err = expect_error eng "conflict" "(set (cnt 0) 2)" in
  Alcotest.(check bool) "carries function name" true (contains err "cnt")

let () =
  Alcotest.run "robustness"
    [
      ( "budgets",
        [
          Alcotest.test_case "node limit stops an explosive ruleset" `Quick test_node_limit;
          Alcotest.test_case "node limit via (run :node-limit)" `Quick test_node_limit_syntax;
          Alcotest.test_case "time limit stops an explosive ruleset" `Quick test_time_limit;
          Alcotest.test_case "per-rule match statistics" `Quick test_rule_stats;
          Alcotest.test_case "until stops exactly when derivable" `Quick test_until_exact;
          Alcotest.test_case "until satisfied at entry" `Quick test_until_satisfied_at_entry;
          Alcotest.test_case "seminaive and naive agree at until-stop" `Quick test_until_modes_agree;
          Alcotest.test_case "until via textual syntax" `Quick test_until_textual;
          Alcotest.test_case "malformed run options are rejected" `Quick test_run_option_errors;
          Alcotest.test_case "schedules respect session budgets" `Quick test_schedule_under_budget;
        ] );
      ( "memory",
        [
          Alcotest.test_case "memory limit stops an explosive ruleset" `Quick test_memory_limit;
          Alcotest.test_case "memory stop is deterministic across jobs" `Quick
            test_memory_limit_deterministic_across_jobs;
          Alcotest.test_case "memory limit via (run :memory-limit)" `Quick
            test_memory_limit_syntax;
          Alcotest.test_case ":memory-limit round-trips through the printer" `Quick
            test_memory_limit_roundtrip;
          Alcotest.test_case "pressure tiers degrade before the stop" `Quick
            test_memory_pressure_degrades;
          Alcotest.test_case "rollback restores the byte model exactly" `Quick
            test_modeled_bytes_exact_after_rollback;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "mid-run failure rolls back" `Quick test_rollback_mid_run_failure;
          Alcotest.test_case "merge conflict rolls back" `Quick test_rollback_merge_conflict;
          Alcotest.test_case "primitive failure rolls back" `Quick test_rollback_primitive_failure;
          Alcotest.test_case "rollback under nested push/pop" `Quick test_rollback_under_nested_push;
          Alcotest.test_case "failed declaration unwinds" `Quick
            test_failed_declaration_keeps_schema_clean;
          Alcotest.test_case "pop on empty stack is safe" `Quick test_pop_on_empty_stack_is_safe;
          Alcotest.test_case "failed check leaves no residue" `Quick
            test_failed_check_rolls_back_side_effects;
        ] );
      ( "repl",
        [ Alcotest.test_case "paren balance: strings, comments, strays" `Quick test_paren_balance ] );
      ( "errors",
        [
          Alcotest.test_case "merge conflict carries context" `Quick
            test_structured_merge_conflict_payload;
          Alcotest.test_case "command layer normalizes errors" `Quick
            test_run_command_normalizes_internal_errors;
        ] );
    ]
