(* The daemon fault harness: drives a REAL `egglog serve` subprocess the
   way CI does — concurrent sessions with mixed well-formed, malformed,
   over-budget and abusive traffic, a SIGTERM mid-load, a restart, and a
   --fault crash — and checks the whole robustness contract from outside:

   - every frame gets a reply (never a hang, never a silently dead conn)
   - survivor sessions dump byte-for-byte equal to serial single-session
     reference runs done in-process with the library
   - overload sheds carry retry_after_ms and replies stay prompt
   - SIGTERM mid-load exits 0 and removes the socket file
   - a restart recovers every durable session byte-identically
   - --fault server.request.executed:N exits 70 and recovery drops
     exactly the un-journaled request
   - under --session-memory-quota a session allocating without bound is
     refused with typed budget/quota replies while concurrent sessions
     stay (and recover) byte-identical
   - the server trace (--trace) has balanced span begin/end events

   Usage: server_harness MAIN_EXE [SCRATCH_DIR] [JOBS]
   JOBS > 1 sends every well-formed run request with that per-request
   fan-out; all byte-identity checks still compare against serial
   references. Exit 0 on success, 1 on any failure (diagnoses on stderr). *)

module E = Egglog
module Json = E.Telemetry.Json

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "FAIL: %s\n%!" msg)
    fmt

let pass fmt = Printf.ksprintf (fun msg -> Printf.printf "ok: %s\n%!" msg) fmt

(* ---- client plumbing ---- *)

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect_retry sock =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () -> { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () > deadline then failwith "server socket never appeared";
      Unix.sleepf 0.05;
      go ()
  in
  go ()

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let obj fields = Json.to_string (Json.Obj fields)

let rpc c fields =
  send c (obj fields);
  Json.parse (input_line c.ic)

let is_ok r = Json.member "ok" r = Some (Json.Bool true)

let err_kind r =
  match Json.member "error" r with
  | Some e -> (match Json.member "kind" e with Some (Json.Str s) -> s | _ -> "?")
  | None -> "?"

(* Per-request parallelism (the jobs-matrix CI job sets this to 4 via the
   optional JOBS argv): every well-formed run request asks the daemon for
   this fan-out, and every byte-identity check below still compares against
   serial in-process reference runs — the determinism contract end to end
   through the server. *)
let req_jobs = ref 1

let run_req ?(id = 1) ~session program =
  [
    ("id", Json.Int id);
    ("op", Json.Str "run");
    ("session", Json.Str session);
    ("program", Json.Str program);
  ]
  @ (if !req_jobs > 1 then [ ("jobs", Json.Int !req_jobs) ] else [])

let open_durable c session =
  rpc c
    [
      ("id", Json.Int 0);
      ("op", Json.Str "open-session");
      ("session", Json.Str session);
      ("durable", Json.Bool true);
    ]

let dump_of c session =
  let r = rpc c [ ("id", Json.Int 99); ("op", Json.Str "dump"); ("session", Json.Str session) ] in
  match Json.member "dump" r with Some (Json.Str s) -> Some s | _ -> None

(* ---- server subprocess ---- *)

type server = { pid : int; sock : string }

let start_server ?(extra = []) main_exe dir =
  let sock = Filename.concat dir "s.sock" in
  let args =
    [ main_exe; "serve"; "--socket"; sock; "--data-dir"; Filename.concat dir "data";
      "--queue-limit"; "8"; "--trace"; Filename.concat dir "server-trace.jsonl" ]
    @ extra
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let log =
    Unix.openfile (Filename.concat dir "server.log")
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let pid = Unix.create_process main_exe (Array.of_list args) devnull log log in
  Unix.close devnull;
  Unix.close log;
  { pid; sock }

let wait_exit sv =
  match Unix.waitpid [] sv.pid with
  | _, Unix.WEXITED code -> code
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) -> 1000 + s

(* ---- reference runs (serial, in-process) ---- *)

let reference_dump programs =
  let eng = E.Engine.create () in
  List.iter (fun p -> ignore (E.Engine.run_program eng (E.Frontend.parse_program p))) programs;
  E.Serialize.dump_string eng

let good_prog i =
  Printf.sprintf
    "(relation edge (i64 i64)) (relation path (i64 i64))\n\
     (rule ((edge x y)) ((path x y)))\n\
     (rule ((path x y) (edge y z)) ((path x z)))\n\
     (edge %d %d) (edge %d %d) (edge %d %d) (run 6)"
    i (i + 1) (i + 1) (i + 2) (i + 2) (i + 3)

let bomb =
  "(datatype T (L) (N T T)) (rule ((= x (N a b))) ((N x x))) (N (L) (L)) (run 100000)"

let abusive_lines session =
  [
    "utter garbage";
    "{\"id\": 1}";
    obj [ ("id", Json.Int 2); ("op", Json.Str "frobnicate") ];
    obj (run_req ~id:3 ~session "((((((((");
    obj (run_req ~id:4 ~session "(no-such-thing 1)");
    obj (("node_limit", Json.Int 200) :: run_req ~id:5 ~session bomb);
    obj [ ("id", Json.Int 6); ("op", Json.Str "dump"); ("session", Json.Str "../../oops") ];
    obj [ ("id", Json.Int 7); ("op", Json.Str "run"); ("session", Json.Str session) ];
  ]

(* ---- phases ---- *)

(* N concurrent sessions: good ones build state, the evil one attacks.
   Every domain checks its own replies; good dumps are compared to serial
   references afterwards. *)
let phase_concurrent sv =
  let n_good = 3 in
  let good i =
    let c = connect_retry sv.sock in
    let session = Printf.sprintf "good-%d" i in
    let r0 = open_durable c session in
    let r1 = rpc c (run_req ~id:1 ~session (good_prog i)) in
    let ok = is_ok r0 && is_ok r1 in
    let dump = dump_of c session in
    close_client c;
    (session, ok, dump)
  in
  let evil () =
    let c = connect_retry sv.sock in
    let replies =
      List.map
        (fun line ->
          send c line;
          match input_line c.ic with
          | reply -> Some (Json.parse reply)
          | exception End_of_file -> None)
        (abusive_lines "evil")
    in
    close_client c;
    replies
  in
  let good_doms = List.init n_good (fun i -> Domain.spawn (fun () -> good i)) in
  let evil_dom = Domain.spawn evil in
  let evil_replies = Domain.join evil_dom in
  List.iter
    (fun r ->
      match r with
      | None -> fail "abusive frame killed the connection (no reply)"
      | Some r when is_ok r -> fail "abusive frame was accepted"
      | Some _ -> ())
    evil_replies;
  pass "evil session: %d abusive frames, %d typed error replies"
    (List.length evil_replies)
    (List.length (List.filter (fun r -> r <> None) evil_replies));
  List.iteri
    (fun i dom ->
      let session, ok, dump = Domain.join dom in
      if not ok then fail "%s: request failed" session
      else
        match dump with
        | Some d when d = reference_dump [ good_prog i ] ->
          pass "%s: dump byte-identical to the serial reference" session
        | Some _ -> fail "%s: dump differs from the serial reference" session
        | None -> fail "%s: no dump" session)
    good_doms

(* one connection, a pipelined burst far over the queue bound: everything
   answered, sheds carry the retry hint, and the whole exchange is fast
   (bounded queue => bounded latency; the tail must not stretch) *)
let phase_overload sv =
  let c = connect_retry sv.sock in
  let n = 100 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to n do
    (* idempotent work: re-running it can never fail, so every non-ok
       reply in the burst must be an admission shed *)
    output_string c.oc
      (obj [ ("id", Json.Int i); ("op", Json.Str "stats"); ("session", Json.Str "burst") ]);
    output_char c.oc '\n'
  done;
  flush c.oc;
  let replies = List.init n (fun _ -> Json.parse (input_line c.ic)) in
  let elapsed = Unix.gettimeofday () -. t0 in
  close_client c;
  let oks = List.length (List.filter is_ok replies) in
  let sheds = List.filter (fun r -> not (is_ok r)) replies in
  let bad_shed =
    List.exists
      (fun r ->
        err_kind r <> "overload"
        || (match Json.member "error" r with
           | Some e -> Json.member "retry_after_ms" e = None
           | None -> true))
      sheds
  in
  if List.length replies <> n then fail "overload: %d/%d replies" (List.length replies) n
  else if oks < 1 then fail "overload: nothing executed"
  else if List.length sheds < 1 then fail "overload: nothing shed (queue bound not enforced)"
  else if bad_shed then fail "overload: shed without overload kind + retry_after_ms"
  else if elapsed > 30.0 then fail "overload: burst took %.1fs (unbounded tail?)" elapsed
  else
    pass "overload: %d executed, %d shed with retry-after, %.2fs for the burst" oks
      (List.length sheds) elapsed

(* SIGTERM while a client is mid-stream: the daemon finishes or sheds,
   exits 0, removes its socket; the client sees clean EOF or typed
   shutting-down replies, never a hang *)
let phase_sigterm_drain sv =
  let c = connect_retry sv.sock in
  let streamer =
    Domain.spawn (fun () ->
        let sent = ref 0 in
        (try
           for i = 1 to 500 do
             send c (obj (run_req ~id:i ~session:"drainload" "(relation w (i64)) (w 1)"));
             incr sent
           done
         with Sys_error _ | Unix.Unix_error _ -> ());
        !sent)
  in
  Unix.sleepf 0.2;
  Unix.kill sv.pid Sys.sigterm;
  let code = wait_exit sv in
  let _sent = Domain.join streamer in
  (* drain every reply still in flight; EOF must come promptly *)
  let replies = ref 0 in
  (try
     while true do
       ignore (input_line c.ic);
       incr replies
     done
   with End_of_file | Sys_error _ -> ());
  close_client c;
  if code <> 0 then fail "SIGTERM drain exited %d, want 0" code
  else pass "SIGTERM mid-load: exit 0, %d replies delivered before EOF" !replies;
  if Sys.file_exists sv.sock then fail "orphaned socket file after drain"
  else pass "socket file removed on drain"

(* restart: every durable session must come back byte-identical *)
let phase_restart main_exe dir =
  let sv = start_server main_exe dir in
  let c = connect_retry sv.sock in
  for i = 0 to 2 do
    let session = Printf.sprintf "good-%d" i in
    match dump_of c session with
    | Some d when d = reference_dump [ good_prog i ] ->
      pass "%s: recovered byte-identical after restart" session
    | Some _ -> fail "%s: recovered dump differs" session
    | None -> fail "%s: not recovered" session
  done;
  close_client c;
  Unix.kill sv.pid Sys.sigterm;
  let code = wait_exit sv in
  if code <> 0 then fail "restart server exited %d on SIGTERM" code

(* --fault: a simulated crash between commit and journal append must exit
   70, leave a parseable flight-recorder artifact whose spans balance and
   whose tail names the crashing request, and recovery must drop exactly
   the un-journaled request *)
let phase_crash_fault main_exe dir =
  let data = Filename.concat dir "data" in
  let flightrecs () =
    Array.to_list (try Sys.readdir data with Sys_error _ -> [||])
    |> List.filter (String.starts_with ~prefix:"flightrec-")
  in
  let before = flightrecs () in
  let sv = start_server ~extra:[ "--fault"; "server.request.executed:2" ] main_exe dir in
  let c = connect_retry sv.sock in
  ignore (open_durable c "crashy");
  let r1 = rpc c (run_req ~id:1 ~session:"crashy" (good_prog 50)) in
  if not (is_ok r1) then fail "crashy seed request failed: %s" (err_kind r1);
  (* trace ids are sequential: the crashing request gets the successor of
     the last acknowledged one *)
  let crash_tid =
    match Json.member "trace_id" r1 with
    | Some (Json.Str t) ->
      Some (Printf.sprintf "t-%06d" (1 + int_of_string (String.sub t 2 (String.length t - 2))))
    | _ ->
      fail "crashy reply carries no trace_id";
      None
  in
  (* hit 2 of server.request.executed: this one commits, never journals *)
  send c (obj (run_req ~id:2 ~session:"crashy" "(edge 90 91) (run 3)"));
  let got_reply = match input_line c.ic with _ -> true | exception End_of_file -> false in
  close_client c;
  let code = wait_exit sv in
  if got_reply then fail "crash fault: request was acknowledged across the crash";
  if code <> 70 then fail "crash fault: exit %d, want 70" code
  else pass "simulated crash exits 70, request unacknowledged";
  (match List.filter (fun f -> not (List.mem f before)) (flightrecs ()) with
   | [] -> fail "crash fault: no flight-recorder artifact in %s" data
   | artifact :: _ ->
     let events =
       In_channel.with_open_text (Filename.concat data artifact) In_channel.input_lines
       |> List.filter_map (fun l ->
              match Json.parse l with
              | j -> Some j
              | exception Json.Parse_error _ ->
                fail "flightrec line is not JSON: %s" l;
                None)
     in
     if events = [] then fail "crash fault: flightrec artifact is empty";
     let begins = List.length (List.filter (fun e -> Json.member "ev" e = Some (Json.Str "b")) events) in
     let ends = List.length (List.filter (fun e -> Json.member "ev" e = Some (Json.Str "e")) events) in
     if begins <> ends then
       fail "crash fault: flightrec spans imbalanced (%d begins, %d ends)" begins ends;
     (match crash_tid with
      | Some tid when List.exists (fun e -> Json.member "tid" e = Some (Json.Str tid)) events ->
        pass "crash left a balanced flightrec artifact naming request %s" tid
      | Some tid -> fail "crash fault: flightrec tail lacks the crashing trace id %s" tid
      | None -> ()));
  let sv2 = start_server main_exe dir in
  let c2 = connect_retry sv2.sock in
  (match dump_of c2 "crashy" with
   | Some d when d = reference_dump [ good_prog 50 ] ->
     pass "crashy: recovery dropped exactly the un-journaled request"
   | Some _ -> fail "crashy: recovered state is wrong"
   | None -> fail "crashy: not recovered");
  close_client c2;
  Unix.kill sv2.pid Sys.sigterm;
  ignore (wait_exit sv2)

(* memory governance, end to end: a server started with a per-session
   byte quota refuses a session that tries to grow without bound — every
   attempt gets a typed budget/quota reply and a rollback — while a
   concurrent durable session is untouched, stays byte-identical to the
   serial reference, and still recovers byte-identically after a
   restart. *)
let phase_memory_governance main_exe dir =
  let mdir = Filename.concat dir "mem" in
  if not (Sys.file_exists mdir) then Unix.mkdir mdir 0o755;
  let extra =
    [ "--session-memory-quota"; "65536"; "--memory-headroom"; "1000000" ]
  in
  let sv = start_server ~extra main_exe mdir in
  let c = connect_retry sv.sock in
  ignore (open_durable c "steady");
  let r = rpc c (run_req ~id:1 ~session:"steady" (good_prog 7)) in
  if not (is_ok r) then fail "memory: steady seed request failed: %s" (err_kind r);
  (* multi-rule explosion: a generator rule plus assoc/comm rewrites
     overshoots the pressure tiers and must hit the hard byte budget *)
  let mem_bomb =
    "(datatype Math (Num i64) (Add Math Math))\n\
     (birewrite (Add (Add a b) c) (Add a (Add b c)))\n\
     (rewrite (Add a b) (Add b a))\n\
     (rule ((= e (Num n))) ((Num (+ n 1)) (Num (* n 2))))\n\
     (define seed (Add (Num 1) (Add (Num 2) (Num 3))))\n\
     (run 100000)"
  in
  let hog = connect_retry sv.sock in
  let kinds =
    List.init 3 (fun i ->
        let r = rpc hog (run_req ~id:(10 + i) ~session:"hog" mem_bomb) in
        if is_ok r then "ok" else err_kind r)
  in
  let alive = is_ok (rpc hog [ ("id", Json.Int 20); ("op", Json.Str "ping") ]) in
  close_client hog;
  if List.mem "ok" kinds then
    fail "memory: unbounded growth was not refused (replies: %s)" (String.concat "," kinds)
  else if List.exists (fun k -> k <> "budget" && k <> "quota") kinds then
    fail "memory: hog got untyped refusals (replies: %s)" (String.concat "," kinds)
  else pass "memory: hog refused every time with typed replies (%s)" (String.concat "," kinds);
  if not alive then fail "memory: daemon did not survive the hog";
  (match dump_of c "steady" with
   | Some d when d = reference_dump [ good_prog 7 ] ->
     pass "memory: steady session byte-identical beside the hog"
   | Some _ -> fail "memory: steady dump differs beside the hog"
   | None -> fail "memory: steady has no dump");
  close_client c;
  Unix.kill sv.pid Sys.sigterm;
  let code = wait_exit sv in
  if code <> 0 then fail "memory: drain exited %d, want 0" code;
  (* restart: the governed server's durable session recovers byte-identically *)
  let sv2 = start_server ~extra main_exe mdir in
  let c2 = connect_retry sv2.sock in
  (match dump_of c2 "steady" with
   | Some d when d = reference_dump [ good_prog 7 ] ->
     pass "memory: steady recovered byte-identical after restart"
   | Some _ -> fail "memory: steady recovered dump differs"
   | None -> fail "memory: steady not recovered");
  close_client c2;
  Unix.kill sv2.pid Sys.sigterm;
  ignore (wait_exit sv2)

(* observability, from outside: replies carry trace ids, the prometheus
   exposition parses, and dump-flightrec returns the recent trace tail *)
let phase_observability sv =
  let c = connect_retry sv.sock in
  let r = rpc c (run_req ~id:1 ~session:"obs" (good_prog 30)) in
  if not (is_ok r) then fail "observability seed request failed: %s" (err_kind r);
  (match Json.member "trace_id" r with
   | Some (Json.Str _) -> pass "replies carry trace ids"
   | _ -> fail "reply lacks a trace_id");
  (* prometheus exposition: every non-comment line is name{labels} value *)
  let m =
    rpc c
      [ ("id", Json.Int 2); ("op", Json.Str "metrics"); ("format", Json.Str "prometheus") ]
  in
  (match Json.member "prometheus" m with
   | Some (Json.Str text) ->
     let bad = ref 0 in
     List.iter
       (fun line ->
         if line <> "" && not (String.starts_with ~prefix:"# " line) then begin
           match String.rindex_opt line ' ' with
           | None ->
             incr bad;
             fail "prometheus line lacks a value: %S" line
           | Some i ->
             let name = String.sub line 0 i in
             let value = String.sub line (i + 1) (String.length line - i - 1) in
             if float_of_string_opt value = None then begin
               incr bad;
               fail "prometheus sample value unparseable: %S" line
             end;
             let base =
               match String.index_opt name '{' with
               | Some j -> String.sub name 0 j
               | None -> name
             in
             if
               base = ""
               || not
                    (String.for_all
                       (fun ch ->
                         (ch >= 'a' && ch <= 'z')
                         || (ch >= 'A' && ch <= 'Z')
                         || ch = '_' || ch = ':'
                         || (ch >= '0' && ch <= '9'))
                       base)
             then begin
               incr bad;
               fail "bad prometheus metric name: %S" base
             end
         end)
       (String.split_on_char '\n' text);
     let has sub =
       let n = String.length text and m = String.length sub in
       let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
       go 0
     in
     if not (has "egglog_server_live_sessions") then
       fail "prometheus output lacks egglog_server_live_sessions";
     if not (has "egglog_session_requests_total{session=\"obs\"}") then
       fail "prometheus output lacks the per-session request counter";
     if !bad = 0 then pass "prometheus exposition parses (%d bytes)" (String.length text)
   | _ -> fail "metrics format=prometheus carries no text");
  (* on-demand flight recorder dump *)
  let d = rpc c [ ("id", Json.Int 3); ("op", Json.Str "dump-flightrec") ] in
  (match (Json.member "events" d, Json.member "path" d) with
   | Some (Json.List (_ :: _ as events)), Some (Json.Str path) ->
     if Sys.file_exists path then
       pass "dump-flightrec: %d events, artifact at %s" (List.length events)
         (Filename.basename path)
     else fail "dump-flightrec artifact %s missing" path
   | _ -> fail "dump-flightrec reply incomplete: %s" (Json.to_string d));
  close_client c

(* the server trace must have balanced span begin/end events per name *)
let phase_trace_balance dir =
  let path = Filename.concat dir "server-trace.jsonl" in
  if not (Sys.file_exists path) then fail "no server trace at %s" path
  else begin
    let tbl = Hashtbl.create 16 in
    In_channel.with_open_text path (fun ic ->
        try
          while true do
            let line = input_line ic in
            match Json.parse line with
            | j -> (
              match (Json.member "ev" j, Json.member "name" j) with
              | Some (Json.Str "b"), Some (Json.Str name) ->
                Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name))
              | Some (Json.Str "e"), Some (Json.Str name) ->
                Hashtbl.replace tbl name (Option.value ~default:0 (Hashtbl.find_opt tbl name) - 1)
              | _ -> ())
            | exception Json.Parse_error _ -> fail "trace line is not JSON: %s" line
          done
        with End_of_file -> ());
    let imbalanced = Hashtbl.fold (fun n d acc -> if d <> 0 then (n, d) :: acc else acc) tbl [] in
    match imbalanced with
    | [] -> pass "server trace spans balanced (%d span names)" (Hashtbl.length tbl)
    | l ->
      List.iter (fun (n, d) -> fail "trace span imbalance: %s (%+d)" n d) l
  end

let () =
  let main_exe =
    if Array.length Sys.argv < 2 then (
      prerr_endline "usage: server_harness MAIN_EXE [SCRATCH_DIR] [JOBS]";
      exit 2)
    else Sys.argv.(1)
  in
  let dir =
    if Array.length Sys.argv > 2 then Sys.argv.(2)
    else
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "egglog_harness_%d" (Unix.getpid ()))
  in
  if Array.length Sys.argv > 3 then begin
    match int_of_string_opt Sys.argv.(3) with
    | Some j when j >= 1 -> req_jobs := j
    | _ ->
      prerr_endline "JOBS must be a positive integer";
      exit 2
  end;
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let sv = start_server main_exe dir in
  phase_concurrent sv;
  phase_overload sv;
  phase_observability sv;
  phase_sigterm_drain sv;
  phase_restart main_exe dir;
  phase_crash_fault main_exe dir;
  phase_memory_governance main_exe dir;
  phase_trace_balance dir;
  if !failures > 0 then begin
    Printf.eprintf "%d failure(s)\n%!" !failures;
    exit 1
  end
  else print_endline "server harness: all checks passed"
