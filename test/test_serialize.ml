(* Database snapshots: dump a saturated database, reload into a fresh
   engine with the same schema, and observe identical behaviour. *)

module E = Egglog

let schema =
  {|
  (datatype Math (Num i64) (Var String) (Add Math Math))
  (relation edge (i64 i64))
  (function best (i64) i64 :merge (max old new))
  (function tags (i64) (Set String) :merge (set-union old new))
  |}

let test_roundtrip_tables () =
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng
       (schema
       ^ {|
    (edge 1 2) (edge 2 3)
    (set (best 0) 5) (set (best 0) 9) (set (best 1) 2)
    (set (tags 0) (set-singleton "a"))
    (set (tags 0) (set-singleton "b"))
    (Add (Num 1) (Var "x")) ;; materialize a term
  |}));
  let snapshot = E.Serialize.dump_string eng in
  let eng2 = E.Engine.create () in
  ignore (E.run_string eng2 schema);
  E.Serialize.load_string eng2 snapshot;
  Alcotest.(check int) "edge size" 2 (E.Engine.table_size eng2 "edge");
  Alcotest.(check (option string)) "lattice value preserved" (Some "9")
    (Option.map E.Value.to_string (E.Engine.lookup_fact eng2 "best" [ E.Value.VInt 0 ]));
  (match E.Engine.lookup_fact eng2 "tags" [ E.Value.VInt 0 ] with
   | Some (E.Value.VSet elems) -> Alcotest.(check int) "set merged" 2 (List.length elems)
   | _ -> Alcotest.fail "tags missing");
  Alcotest.(check int) "same total rows" (E.Engine.total_rows eng)
    (E.Engine.total_rows eng2)

let test_roundtrip_equivalences () =
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng
       (schema
       ^ {|
    (union (Add (Num 1) (Num 2)) (Add (Num 2) (Num 1)))
    (run 1)
  |}));
  let snapshot = E.Serialize.dump_string eng in
  let eng2 = E.Engine.create () in
  ignore (E.run_string eng2 schema);
  E.Serialize.load_string eng2 snapshot;
  (* terms that were equal stay equal; congruence still works *)
  Alcotest.(check bool) "a = b survives" true
    (E.Engine.check_facts eng2
       [ E.Ast.Eq
           ( E.Ast.Call ("Add", [ E.Ast.Call ("Num", [ E.Ast.Lit (E.Value.VInt 1) ]); E.Ast.Call ("Num", [ E.Ast.Lit (E.Value.VInt 2) ]) ]),
             E.Ast.Call ("Add", [ E.Ast.Call ("Num", [ E.Ast.Lit (E.Value.VInt 2) ]); E.Ast.Call ("Num", [ E.Ast.Lit (E.Value.VInt 1) ]) ]) ) ]);
  Alcotest.(check int) "same classes" (E.Engine.n_classes eng) (E.Engine.n_classes eng2)

let test_resaturation_after_load () =
  (* rules added after loading continue from the snapshot *)
  let eng = E.Engine.create () in
  ignore (E.run_string eng (schema ^ {| (edge 1 2) (edge 2 3) (edge 3 4) |}));
  let snapshot = E.Serialize.dump_string eng in
  let eng2 = E.Engine.create () in
  ignore (E.run_string eng2 schema);
  E.Serialize.load_string eng2 snapshot;
  ignore
    (E.run_string eng2
       {|
    (relation path (i64 i64))
    (rule ((edge x y)) ((path x y)))
    (rule ((path x y) (edge y z)) ((path x z)))
    (run)
    (check (path 1 4))
  |});
  Alcotest.(check int) "closure computed" 6 (E.Engine.table_size eng2 "path")

let test_load_errors () =
  let eng = E.Engine.create () in
  (match E.Serialize.load_string eng "(database (ids (0 Nope)))" with
   | exception E.Serialize.Load_error _ -> ()
   | () -> Alcotest.fail "expected unknown-sort error");
  match E.Serialize.load_string eng "(not-a-database)" with
  | exception E.Serialize.Load_error _ -> ()
  | () -> Alcotest.fail "expected shape error"

let prop_roundtrip_random =
  QCheck2.Test.make ~name:"dump/load roundtrip on random math e-graphs" ~count:40
    QCheck2.Gen.(list_size (int_range 1 6) (int_range 0 5))
    (fun nums ->
      let eng = E.Engine.create () in
      ignore (E.run_string eng schema);
      List.iteri
        (fun _i n ->
          ignore
            (E.run_string eng
               (Printf.sprintf "(Add (Num %d) (Add (Num %d) (Var \"v\")))" n (n + 1))))
        nums;
      ignore (E.run_string eng "(rewrite (Add a b) (Add b a)) (run 3)");
      let snapshot = E.Serialize.dump_string eng in
      let eng2 = E.Engine.create () in
      ignore (E.run_string eng2 schema);
      E.Serialize.load_string eng2 snapshot;
      E.Engine.total_rows eng = E.Engine.total_rows eng2
      && E.Engine.n_classes eng = E.Engine.n_classes eng2)

(* ---- canonical bytes over every base value type ----

   The dump renumbers ids by content, so it must be byte-stable under both
   a reload (fresh id allocation) and a different insertion order (different
   union-find representatives). The ops below are all order-independent at
   the content level — relations cannot conflict, [f_int] merges with
   [max], unions close the same equivalence — so applying them in any order
   must serialize to the same bytes. *)

let value_schema =
  {|
  (sort S)
  (function mk (i64) S)
  (function link (S S) S)
  (function f_int (i64) i64 :merge (max old new))
  (relation r_str (String String))
  (relation r_rat (Rational Rational))
  (relation r_unit (i64))
  |}

type op =
  | OInt of int * int
  | OStr of string * string
  | ORat of (int * int) * (int * int)
  | OUnit of int
  | OMk of int
  | OLink of int * int
  | OUnion of int * int

let apply_op eng op =
  let v x = E.Value.VInt x in
  let s x = E.Value.VStr (E.Symbol.intern x) in
  let q (n, d) = E.Value.VRat (Rat.of_ints n d) in
  let mk k = E.Engine.eval_call eng "mk" [ v k ] in
  match op with
  | OInt (k, x) -> E.Engine.set_fact eng "f_int" [ v k ] (v x)
  | OStr (a, b) -> E.Engine.set_fact eng "r_str" [ s a; s b ] E.Value.VUnit
  | ORat (a, b) -> E.Engine.set_fact eng "r_rat" [ q a; q b ] E.Value.VUnit
  | OUnit k -> E.Engine.set_fact eng "r_unit" [ v k ] E.Value.VUnit
  | OMk k -> ignore (mk k)
  | OLink (a, b) -> ignore (E.Engine.eval_call eng "link" [ mk a; mk b ])
  | OUnion (a, b) -> ignore (E.Engine.union_values eng (mk a) (mk b))

let gen_op =
  let open QCheck2.Gen in
  let small = int_range 0 7 in
  (* arbitrary bytes, including quotes, backslashes and control characters:
     the printer escapes them and the reader must bring them back *)
  let str = string_size (int_range 0 6) ~gen:(map Char.chr (int_range 0 255)) in
  let rat = pair (int_range (-20) 20) (int_range 1 9) in
  oneof
    [
      map2 (fun k x -> OInt (k, x)) small (int_range (-50) 50);
      map2 (fun a b -> OStr (a, b)) str str;
      map2 (fun a b -> ORat (a, b)) rat rat;
      map (fun k -> OUnit k) small;
      map (fun k -> OMk k) small;
      map2 (fun a b -> OLink (a, b)) small small;
      map2 (fun a b -> OUnion (a, b)) small small;
    ]

let engine_with ops order =
  let eng = E.Engine.create () in
  ignore (E.run_string eng value_schema);
  List.iter (apply_op eng) (order ops);
  eng

let show_op = function
  | OInt (k, x) -> Printf.sprintf "OInt(%d,%d)" k x
  | OStr (a, b) -> Printf.sprintf "OStr(%S,%S)" a b
  | ORat ((a, b), (c, d)) -> Printf.sprintf "ORat(%d/%d,%d/%d)" a b c d
  | OUnit k -> Printf.sprintf "OUnit(%d)" k
  | OMk k -> Printf.sprintf "OMk(%d)" k
  | OLink (a, b) -> Printf.sprintf "OLink(%d,%d)" a b
  | OUnion (a, b) -> Printf.sprintf "OUnion(%d,%d)" a b

let show_ops ops = String.concat "; " (List.map show_op ops)

let prop_dump_load_dump_bytes =
  QCheck2.Test.make ~name:"dump -> load -> dump is byte-identical" ~count:100
    ~print:show_ops
    QCheck2.Gen.(list_size (int_range 1 25) gen_op)
    (fun ops ->
      let eng = engine_with ops Fun.id in
      let d1 = E.Serialize.dump_string eng in
      let eng2 = E.Engine.create () in
      ignore (E.run_string eng2 value_schema);
      E.Serialize.load_string eng2 d1;
      String.equal d1 (E.Serialize.dump_string eng2))

let prop_dump_order_independent =
  QCheck2.Test.make ~name:"dump bytes independent of insertion order" ~count:100
    QCheck2.Gen.(list_size (int_range 1 25) gen_op)
    (fun ops ->
      String.equal
        (E.Serialize.dump_string (engine_with ops Fun.id))
        (E.Serialize.dump_string (engine_with ops List.rev)))

(* ---- versioned snapshot files ---- *)

let with_temp f =
  let path = Filename.temp_file "egglog_snap" ".snap" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let contains ~substr msg =
  let n = String.length substr and m = String.length msg in
  let rec go i = i + n <= m && (String.equal (String.sub msg i n) substr || go (i + 1)) in
  go 0

let expect_load_error ~substr f =
  match f () with
  | () -> Alcotest.failf "expected Load_error mentioning %S" substr
  | exception E.Serialize.Load_error msg ->
    if not (contains ~substr msg) then
      Alcotest.failf "Load_error %S does not mention %S" msg substr

let populated_engine () =
  let eng = E.Engine.create () in
  ignore (E.run_string eng (value_schema ^ {| (r_unit 1) (r_unit 2) |}));
  List.iter (apply_op eng) [ OUnion (0, 1); OInt (0, 42); OStr ("a", "b") ];
  eng

let test_snapshot_file_roundtrip () =
  with_temp (fun path ->
      let eng = populated_engine () in
      E.Serialize.write_snapshot eng path;
      let eng2 = E.Engine.create () in
      ignore (E.run_string eng2 value_schema);
      E.Serialize.load_snapshot eng2 path;
      Alcotest.(check string) "same canonical bytes" (E.Serialize.dump_string eng)
        (E.Serialize.dump_string eng2))

let test_snapshot_rejects_legacy () =
  with_temp (fun path ->
      let eng = populated_engine () in
      (* a pre-versioned snapshot: the bare dump text, no header *)
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (E.Serialize.dump_string eng));
      let eng2 = E.Engine.create () in
      ignore (E.run_string eng2 value_schema);
      expect_load_error ~substr:"magic" (fun () -> E.Serialize.load_snapshot eng2 path))

let test_snapshot_rejects_future_version () =
  with_temp (fun path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "egglog-snapshot 999\n3 00000000\nxyz");
      let eng = E.Engine.create () in
      expect_load_error ~substr:"version" (fun () -> E.Serialize.load_snapshot eng path))

let test_snapshot_rejects_corruption () =
  with_temp (fun path ->
      let eng = populated_engine () in
      E.Serialize.write_snapshot eng path;
      let bytes = In_channel.with_open_bin path In_channel.input_all in
      (* flip one payload byte; the checksum must catch it *)
      let b = Bytes.of_string bytes in
      let i = Bytes.length b - 2 in
      Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
      let eng2 = E.Engine.create () in
      ignore (E.run_string eng2 value_schema);
      expect_load_error ~substr:"checksum" (fun () -> E.Serialize.load_snapshot eng2 path);
      (* truncation is caught by the length field *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub bytes 0 (String.length bytes - 5)));
      expect_load_error ~substr:"truncated" (fun () -> E.Serialize.load_snapshot eng2 path))

let test_load_requires_empty () =
  let eng = populated_engine () in
  let snapshot = E.Serialize.dump_string (populated_engine ()) in
  expect_load_error ~substr:"non-empty" (fun () -> E.Serialize.load_string eng snapshot)

let () =
  Alcotest.run "serialize"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "tables" `Quick test_roundtrip_tables;
          Alcotest.test_case "equivalences" `Quick test_roundtrip_equivalences;
          Alcotest.test_case "resaturation" `Quick test_resaturation_after_load;
          Alcotest.test_case "errors" `Quick test_load_errors;
        ] );
      ( "files",
        [
          Alcotest.test_case "snapshot file roundtrip" `Quick test_snapshot_file_roundtrip;
          Alcotest.test_case "legacy format rejected" `Quick test_snapshot_rejects_legacy;
          Alcotest.test_case "future version rejected" `Quick test_snapshot_rejects_future_version;
          Alcotest.test_case "corruption rejected" `Quick test_snapshot_rejects_corruption;
          Alcotest.test_case "load requires empty db" `Quick test_load_requires_empty;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip_random;
          QCheck_alcotest.to_alcotest prop_dump_load_dump_bytes;
          QCheck_alcotest.to_alcotest prop_dump_order_independent;
        ] );
    ]
