(* End-to-end tests of the egglog engine against the paper's examples
   (Figs. 1, 3, 4) and the semantics of §4 (congruence, rebuilding,
   merge expressions, semi-naïve equivalence). *)

let run = Egglog.run_program_string

let run_ok ?seminaive ?scheduler src =
  try Ok (Egglog.run_program_string ?seminaive ?scheduler src)
  with Egglog.Egglog_error msg -> Error msg

let expect_ok msg src =
  match run_ok src with
  | Ok outputs -> outputs
  | Error e -> Alcotest.failf "%s: unexpected error: %s" msg e

let expect_error msg src =
  match run_ok src with
  | Ok _ -> Alcotest.failf "%s: expected an error" msg
  | Error e -> e

(* ---- Fig. 3a: reachability ---- *)

let test_reachability () =
  let outputs =
    expect_ok "reachability"
      {|
      (relation edge (i64 i64))
      (relation path (i64 i64))
      (rule ((edge x y)) ((path x y)))
      (rule ((path x y) (edge y z)) ((path x z)))
      (edge 1 2) (edge 2 3) (edge 3 4)
      (run)
      (check (path 1 4))
      (fail (check (path 4 1)))
      (print-size path)
    |}
  in
  Alcotest.(check (list string))
    "outputs"
    [ "ran 4 iteration(s) (saturated); 9 tuples, 0 classes"; "check passed";
      "check failed as expected"; "path: 6" ]
    outputs

(* ---- Fig. 3b: shortest path with the min lattice ---- *)

let test_shortest_path () =
  let outputs =
    expect_ok "shortest path"
      {|
      (function edge (i64 i64) i64)
      (function path (i64 i64) i64 :merge (min old new))
      (rule ((= (edge x y) len)) ((set (path x y) len)))
      (rule ((= (path x y) xy) (= (edge y z) yz)) ((set (path x z) (+ xy yz))))
      (set (edge 1 2) 10) (set (edge 2 3) 10) (set (edge 1 3) 30)
      (run)
      (check (path 1 3))
    |}
  in
  Alcotest.(check string) "prints 20" "check passed: 20" (List.nth outputs 1)

(* ---- Fig. 4a: node contraction via unification ---- *)

let test_node_contraction () =
  let outputs =
    expect_ok "node contraction"
      {|
      (sort Node)
      (function mk (i64) Node)
      (relation edge (Node Node))
      (relation path (Node Node))
      (rule ((edge x y)) ((path x y)))
      (rule ((path x y) (edge y z)) ((path x z)))
      (edge (mk 1) (mk 2))
      (edge (mk 2) (mk 3))
      (edge (mk 5) (mk 6))
      (fail (check (path (mk 1) (mk 6))))
      (union (mk 3) (mk 5))
      (run)
      (check (edge (mk 3) (mk 6)))
      (check (path (mk 1) (mk 6)))
    |}
  in
  Alcotest.(check int) "all checks pass" 4 (List.length outputs)

(* ---- Fig. 4b: basic equality saturation ---- *)

let test_basic_eqsat () =
  let outputs =
    expect_ok "basic eqsat"
      {|
      (datatype Math (Num i64) (Var String) (Add Math Math) (Mul Math Math))
      (define expr1 (Mul (Num 2) (Add (Var "x") (Num 3))))
      (define expr2 (Add (Num 6) (Mul (Num 2) (Var "x"))))
      (rewrite (Add a b) (Add b a))
      (rewrite (Mul a (Add b c)) (Add (Mul a b) (Mul a c)))
      (rewrite (Add (Num a) (Num b)) (Num (+ a b)))
      (rewrite (Mul (Num a) (Num b)) (Num (* a b)))
      (run 10)
      (check (= expr1 expr2))
    |}
  in
  Alcotest.(check bool) "proved" true (List.exists (String.equal "check passed") outputs)

(* ---- congruence closure (§3.4, §5.1) ---- *)

let test_congruence () =
  (* f^3(x)=x and f^5(x)=x imply f(x)=x: a classic congruence test *)
  let outputs =
    expect_ok "f3 f5"
      {|
      (sort V)
      (function f (V) V)
      (sort Names)
      (function x () V)
      (union (f (f (f (x)))) (x))
      (union (f (f (f (f (f (x)))))) (x))
      (run 5)
      (check (= (f (x)) (x)))
    |}
  in
  Alcotest.(check bool) "f(x)=x derived" true (List.exists (String.equal "check passed") outputs)

let test_merge_cascade () =
  (* Unioning arguments must cascade through functional dependencies. *)
  let outputs =
    expect_ok "cascade"
      {|
      (sort V)
      (function g (i64) V)
      (function h (V) V)
      (define h1 (h (g 1)))
      (define h2 (h (g 2)))
      (fail (check (= h1 h2)))
      (union (g 1) (g 2))
      (run 1)
      (check (= h1 h2))
    |}
  in
  Alcotest.(check bool) "h(g1)=h(g2)" true (List.exists (String.equal "check passed") outputs)

(* ---- merge expressions beyond lattices ---- *)

let test_merge_expr_max () =
  let outputs =
    expect_ok "max merge"
      {|
      (function best () i64 :merge (max old new))
      (set (best) 3)
      (set (best) 10)
      (set (best) 7)
      (check (best))
    |}
  in
  Alcotest.(check string) "kept max" "check passed: 10" (List.hd outputs)

let test_merge_panic () =
  let err =
    expect_error "no merge on base type"
      {|
      (function f () i64)
      (set (f) 1)
      (set (f) 2)
    |}
  in
  Alcotest.(check bool) "mentions conflict" true
    (String.length err > 0 && String.exists (fun _ -> true) err)

(* ---- defaults: get-or-make-set (§3.3) ---- *)

let test_default_fresh () =
  let eng = Egglog.Engine.create () in
  ignore
    (Egglog.run_string eng {| (sort Node) (function mk (i64) Node) |});
  let v1 = Egglog.Engine.eval_call eng "mk" [ Egglog.Value.VInt 1 ] in
  let v1' = Egglog.Engine.eval_call eng "mk" [ Egglog.Value.VInt 1 ] in
  let v2 = Egglog.Engine.eval_call eng "mk" [ Egglog.Value.VInt 2 ] in
  Alcotest.(check bool) "same input same id" true (Egglog.Value.equal v1 v1');
  Alcotest.(check bool) "distinct inputs distinct ids" false (Egglog.Value.equal v1 v2)

let test_default_expr () =
  let outputs =
    expect_ok "default expr"
      {|
      (function counter (i64) i64 :default 0 :merge (max old new))
      (rule ((= (counter 5) c)) ((set (counter 5) (+ c 1))))
      (counter 5)
      (run 3)
      (check (counter 5))
    |}
  in
  Alcotest.(check string) "incremented to 3" "check passed: 3" (List.nth outputs 1)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_default_panic () =
  let err = expect_error "lookup of base type without default" {|
      (function f (i64) i64)
      (f 3)
    |} in
  Alcotest.(check bool) "error mentions not defined" true (contains_substring err "not defined")

(* ---- primitives ---- *)

let test_primitive_guards () =
  let outputs =
    expect_ok "guards"
      {|
      (relation num (i64))
      (relation big (i64))
      (rule ((num x) (> x 10)) ((big x)))
      (num 5) (num 15) (num 11)
      (run)
      (print-size big)
      (fail (check (big 5)))
      (check (big 15))
    |}
  in
  Alcotest.(check string) "two bigs" "big: 2" (List.nth outputs 1)

let test_primitive_computation_in_query () =
  let outputs =
    expect_ok "computed vars"
      {|
      (relation num (i64))
      (relation double (i64 i64))
      (rule ((num x) (= y (* x 2))) ((double x y)))
      (num 3) (num 4)
      (run)
      (check (double 3 6))
      (check (double 4 8))
      (fail (check (double 3 7)))
    |}
  in
  Alcotest.(check int) "checks" 4 (List.length outputs)

let test_neq_guard () =
  let outputs =
    expect_ok "!= on ids"
      {|
      (sort V)
      (function mk (i64) V)
      (relation distinct (V V))
      (rule ((= a (mk x)) (= b (mk y)) (!= a b)) ((distinct a b)))
      (mk 1) (mk 2)
      (run 2)
      (check (distinct (mk 1) (mk 2)))
      (fail (check (distinct (mk 1) (mk 1))))
    |}
  in
  ignore outputs;
  (* after unioning, the distinct fact involving them must collapse *)
  let outputs2 =
    expect_ok "!= respects union"
      {|
      (sort V)
      (function mk (i64) V)
      (relation r (V))
      (rule ((= a (mk x)) (= b (mk y)) (!= a b)) ((r a)))
      (mk 1)
      (union (mk 1) (mk 2))
      (run 2)
      (print-size r)
    |}
  in
  Alcotest.(check string) "no distinct pair exists" "r: 0" (List.nth outputs2 1)

let test_rational_primitives () =
  let outputs =
    expect_ok "rationals"
      {|
      (function v () Rational :merge (max old new))
      (set (v) 1/3)
      (set (v) 1/4)
      (check (v))
      (function w () Rational :merge (+ old new))
      (set (w) 1/3)
      (set (w) 1/6)
      (check (w))
    |}
  in
  Alcotest.(check string) "max kept 1/3" "check passed: 1/3" (List.nth outputs 0);
  Alcotest.(check string) "sum is 1/2" "check passed: 1/2" (List.nth outputs 1)

(* ---- set containers ---- *)

let test_sets () =
  let outputs =
    expect_ok "sets"
      {|
      (function fv (i64) (Set i64) :merge (set-intersect old new))
      (set (fv 0) (set-insert (set-insert (set-empty) 1) 2))
      (set (fv 0) (set-insert (set-insert (set-empty) 2) 3))
      (rule ((= (fv 0) s) (set-contains s 2)) ((set (fv 1) s)))
      (run)
      (check (= (fv 0) (set-singleton 2)))
      (check (fv 1))
    |}
  in
  Alcotest.(check bool) "intersection" true (List.exists (String.equal "check passed") outputs)

(* ---- checks, push/pop, delete ---- *)

let test_push_pop () =
  let outputs =
    expect_ok "push/pop"
      {|
      (sort V)
      (function mk (i64) V)
      (push)
      (union (mk 1) (mk 2))
      (check (= (mk 1) (mk 2)))
      (pop)
      (fail (check (= (mk 1) (mk 2))))
    |}
  in
  Alcotest.(check int) "both outputs" 2 (List.length outputs)

let test_delete () =
  let outputs =
    expect_ok "delete"
      {|
      (relation r (i64))
      (r 1)
      (check (r 1))
      (delete (r 1))
      (fail (check (r 1)))
    |}
  in
  Alcotest.(check int) "outputs" 2 (List.length outputs)

let test_ground_check_no_insert () =
  (* A failing check must not insert the term it mentions. *)
  let outputs =
    expect_ok "check does not insert"
      {|
      (datatype M (Num i64) (Add M M))
      (define e (Num 1))
      (fail (check (= e (Add (Num 1) (Num 1)))))
      (fail (check (Add (Num 1) (Num 1))))
    |}
  in
  Alcotest.(check int) "outputs" 2 (List.length outputs)

(* ---- static errors ---- *)

let test_type_errors () =
  let e1 = expect_error "arity" {| (relation r (i64)) (rule ((r x y)) ((r x))) |} in
  let e2 = expect_error "type clash" {|
    (relation r (i64))
    (relation s (String))
    (rule ((r x) (s x)) ((r x))) |} in
  let e3 = expect_error "unbound action var" {| (relation r (i64)) (rule ((r x)) ((r y))) |} in
  let e4 = expect_error "unknown function" {| (rule ((nope x)) ((nope x))) |} in
  let e5 = expect_error "union base types" {| (sort V) (rule ((= x 1)) ((union x x))) |} in
  List.iter
    (fun e -> Alcotest.(check bool) "nonempty error" true (String.length e > 0))
    [ e1; e2; e3; e4; e5 ]

let test_unsat_query () =
  let outputs = expect_ok "unsat check fails cleanly" {|
      (relation r (i64))
      (fail (check (= 1 2)))
    |} in
  Alcotest.(check int) "output" 1 (List.length outputs)


let test_rulesets_and_schedules () =
  let outputs =
    expect_ok "rulesets"
      {|
      (ruleset fold)
      (ruleset comm)
      (datatype M (Num i64) (Add M M))
      (rewrite (Add (Num a) (Num b)) (Num (+ a b)) :ruleset fold)
      (rewrite (Add a b) (Add b a) :ruleset comm)
      (define e (Add (Num 1) (Add (Num 2) (Num 3))))
      (run-schedule (saturate (run fold 1)))
      ;; folding alone computed e, but never commuted anything
      (check (= e (Num 6)))
      (fail (check (= (Add (Num 3) (Num 2)) (Num 5))))
      ;; now let commutativity create the flipped terms, then fold them
      (run-schedule (repeat 2 (run comm 1) (saturate (run fold 1))))
      (check (= (Add (Num 3) (Num 2)) (Num 5)))
    |}
  in
  Alcotest.(check bool) "three checks and two schedule reports" true (List.length outputs = 5)

let test_ruleset_errors () =
  let e1 = expect_error "unknown ruleset" {|
    (relation r (i64))
    (rule ((r x)) ((r x)) :ruleset nope) |} in
  let e2 = expect_error "duplicate ruleset" {| (ruleset a) (ruleset a) |} in
  List.iter (fun e -> Alcotest.(check bool) "reported" true (String.length e > 0)) [ e1; e2 ]

let test_run_default_excludes_named_rulesets () =
  (* (run n) runs only the default ruleset, as in egglog; named rulesets
     run through (run-schedule ...) *)
  let outputs =
    expect_ok "default run"
      {|
      (ruleset special)
      (relation a (i64))
      (relation b (i64))
      (rule ((a x)) ((b x)) :ruleset special)
      (a 1)
      (run 3)
      (fail (check (b 1)))
      (run-schedule (run special 2))
      (check (b 1))
    |}
  in
  Alcotest.(check bool) "scoping respected" true (List.length outputs = 4)

(* ---- semi-naïve = naïve (Theorem 4.1) ---- *)

let tc_program edges =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "(relation edge (i64 i64)) (relation path (i64 i64))";
  Buffer.add_string buf "(rule ((edge x y)) ((path x y)))";
  Buffer.add_string buf "(rule ((path x y) (edge y z)) ((path x z)))";
  List.iter (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "(edge %d %d)" a b)) edges;
  Buffer.add_string buf "(run 50)";
  Buffer.contents buf

let count_path outputs =
  ignore outputs;
  ()

let prop_seminaive_equals_naive_datalog =
  QCheck2.Test.make ~name:"semi-naive = naive (transitive closure)" ~count:60
    QCheck2.Gen.(list_size (int_range 0 25) (pair (int_range 0 9) (int_range 0 9)))
    (fun edges ->
      let size mode =
        let eng = Egglog.Engine.create ~seminaive:mode () in
        ignore (Egglog.run_string eng (tc_program edges));
        Egglog.Engine.table_size eng "path"
      in
      size true = size false)

let eqsat_program seeds =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "(datatype M (Num i64) (Add M M) (Mul M M))";
  Buffer.add_string buf "(rewrite (Add a b) (Add b a))";
  Buffer.add_string buf "(rewrite (Add (Add a b) c) (Add a (Add b c)))";
  Buffer.add_string buf "(rewrite (Mul a (Add b c)) (Add (Mul a b) (Mul a c)))";
  Buffer.add_string buf "(rewrite (Add (Num a) (Num b)) (Num (+ a b)))";
  List.iteri
    (fun i s -> Buffer.add_string buf (Printf.sprintf "(define seed%d %s)" i s))
    seeds;
  Buffer.add_string buf "(run 4)";
  Buffer.contents buf

let gen_term =
  QCheck2.Gen.(
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 0 then map (fun i -> Printf.sprintf "(Num %d)" i) (int_range 0 3)
            else
              oneof
                [
                  map (fun i -> Printf.sprintf "(Num %d)" i) (int_range 0 3);
                  map2 (fun a b -> Printf.sprintf "(Add %s %s)" a b) (self (n / 2)) (self (n / 2));
                  map2 (fun a b -> Printf.sprintf "(Mul %s %s)" a b) (self (n / 2)) (self (n / 2));
                ])
          (min n 4)))

let prop_seminaive_equals_naive_eqsat =
  QCheck2.Test.make ~name:"semi-naive = naive (eqsat tuples and classes)" ~count:30
    QCheck2.Gen.(list_size (int_range 1 3) gen_term)
    (fun seeds ->
      let stats mode =
        let eng = Egglog.Engine.create ~seminaive:mode () in
        ignore (Egglog.run_string eng (eqsat_program seeds));
        (Egglog.Engine.total_rows eng, Egglog.Engine.n_classes eng)
      in
      stats true = stats false)

(* ---- extraction ---- *)

let test_extract_optimal () =
  let outputs =
    expect_ok "extraction picks the cheaper representative"
      {|
      (datatype M (Num i64) (Add M M) (Mul M M))
      (define e (Add (Num 1) (Add (Num 1) (Add (Num 1) (Num 0)))))
      (rewrite (Add (Num a) (Num b)) (Num (+ a b)))
      (run 5)
      (extract e)
    |}
  in
  Alcotest.(check string) "constant folded" "(Num 3) : cost 1" (List.nth outputs 1)

let test_extract_cost_attr () =
  let outputs =
    expect_ok "respects :cost"
      {|
      (sort M)
      (function cheap () M)
      (function pricey () M :cost 100)
      (union (cheap) (pricey))
      (extract (pricey))
    |}
  in
  Alcotest.(check string) "picks cheap" "(cheap) : cost 1" (List.hd outputs)

(* ---- schedulers ---- *)

let test_backoff_bans () =
  (* An explosive rule gets banned under BackOff but not under Simple. *)
  let src =
    {|
    (datatype M (Num i64) (Add M M))
    (define e (Add (Num 1) (Num 2)))
    (rewrite (Add a b) (Add b a))
    (rewrite (Add a b) (Add (Add a b) (Num 0)))
    (run 5)
  |}
  in
  (* mainly: it must terminate and stay consistent under both *)
  let eng1 = Egglog.Engine.create ~scheduler:Egglog.Engine.Simple () in
  ignore (Egglog.run_string eng1 src);
  let eng2 = Egglog.Engine.create ~scheduler:(Egglog.Engine.Backoff { match_limit = 2; ban_length = 2 }) () in
  ignore (Egglog.run_string eng2 src);
  Alcotest.(check bool) "backoff explores less" true
    (Egglog.Engine.total_rows eng2 <= Egglog.Engine.total_rows eng1)

let test_saturation_detection () =
  let eng = Egglog.Engine.create () in
  ignore
    (Egglog.run_string eng
       {|
      (relation edge (i64 i64)) (relation path (i64 i64))
      (rule ((edge x y)) ((path x y)))
      (rule ((path x y) (edge y z)) ((path x z)))
      (edge 1 2) (edge 2 3)
    |});
  let report = Egglog.Engine.run_iterations eng 100 in
  Alcotest.(check bool) "saturates early" true (List.length report.Egglog.Engine.iterations < 10);
  Alcotest.(check bool) "flag set" true
    (report.Egglog.Engine.stop_reason = Egglog.Engine.Saturated)


(* ---- containers and newer commands ---- *)

let test_vectors () =
  let outputs =
    expect_ok "vectors"
      {|
      (function route (i64) (Vec i64) :merge new)
      (set (route 0) (vec-push (vec-push (vec-empty) 7) 8))
      (check (= (vec-length (route 0)) 2))
      (check (= (vec-get (route 0) 0) 7))
      (check (vec-contains (route 0) 8))
      (check (vec-not-contains (route 0) 9))
      (check (= (vec-append (vec-of 1) (vec-of 2)) (vec-push (vec-of 1) 2)))
    |}
  in
  Alcotest.(check int) "all checks" 5 (List.length outputs)

let test_string_primitives () =
  let outputs =
    expect_ok "strings"
      {|
      (function name () String :merge new)
      (set (name) (str-cat "foo" "bar"))
      (check (= (name) "foobar"))
      (check (= (str-length (name)) 6))
      (check (str-lt "abc" "abd"))
      (check (= (to-string 42) "42"))
    |}
  in
  Alcotest.(check int) "all checks" 4 (List.length outputs)

let test_simplify_command () =
  let outputs =
    expect_ok "simplify"
      {|
      (datatype M (Num i64) (Add M M))
      (rewrite (Add (Num a) (Num b)) (Num (+ a b)))
      (simplify 5 (Add (Num 20) (Add (Num 1) (Num 1))))
      (print-stats)
    |}
  in
  Alcotest.(check string) "folded" "(Num 22) : cost 1" (List.hd outputs);
  (* the scratch scope was popped: only declarations remain *)
  Alcotest.(check bool) "db not polluted" true
    (contains_substring (List.nth outputs 1) "0 tuples")

let test_extract_variants () =
  let outputs =
    expect_ok "variants"
      {|
      (datatype M (Num i64) (Add M M))
      (rewrite (Add a b) (Add b a))
      (define e (Add (Num 1) (Num 2)))
      (run 3)
      (extract e :variants 5)
    |}
  in
  let terms = List.filter (fun s -> String.length s > 0 && s.[0] = '(') outputs in
  Alcotest.(check bool) "several variants" true (List.length terms >= 2);
  Alcotest.(check bool) "commuted form present" true
    (List.mem "(Add (Num 2) (Num 1))" terms)

let test_merge_new_keeps_latest () =
  let outputs =
    expect_ok "merge new"
      {|
      (function latest () i64 :merge new)
      (set (latest) 1)
      (set (latest) 2)
      (set (latest) 3)
      (check (latest))
    |}
  in
  Alcotest.(check string) "latest wins" "check passed: 3" (List.hd outputs)

let () =
  ignore count_path;
  ignore run;
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ prop_seminaive_equals_naive_datalog; prop_seminaive_equals_naive_eqsat ]
  in
  Alcotest.run "engine"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "fig3a reachability" `Quick test_reachability;
          Alcotest.test_case "fig3b shortest path" `Quick test_shortest_path;
          Alcotest.test_case "fig4a node contraction" `Quick test_node_contraction;
          Alcotest.test_case "fig4b basic eqsat" `Quick test_basic_eqsat;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "congruence" `Quick test_congruence;
          Alcotest.test_case "merge cascade" `Quick test_merge_cascade;
          Alcotest.test_case "merge max" `Quick test_merge_expr_max;
          Alcotest.test_case "merge panic" `Quick test_merge_panic;
          Alcotest.test_case "default fresh" `Quick test_default_fresh;
          Alcotest.test_case "default expr" `Quick test_default_expr;
          Alcotest.test_case "default panic" `Quick test_default_panic;
        ] );
      ( "primitives",
        [
          Alcotest.test_case "guards" `Quick test_primitive_guards;
          Alcotest.test_case "computed vars" `Quick test_primitive_computation_in_query;
          Alcotest.test_case "!= and union" `Quick test_neq_guard;
          Alcotest.test_case "rationals" `Quick test_rational_primitives;
          Alcotest.test_case "sets" `Quick test_sets;
        ] );
      ( "commands",
        [
          Alcotest.test_case "push/pop" `Quick test_push_pop;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "check no insert" `Quick test_ground_check_no_insert;
          Alcotest.test_case "type errors" `Quick test_type_errors;
          Alcotest.test_case "unsat query" `Quick test_unsat_query;
        ] );
      ( "extraction",
        [
          Alcotest.test_case "optimal" `Quick test_extract_optimal;
          Alcotest.test_case "cost attr" `Quick test_extract_cost_attr;
          Alcotest.test_case "variants" `Quick test_extract_variants;
        ] );
      ( "features",
        [
          Alcotest.test_case "vectors" `Quick test_vectors;
          Alcotest.test_case "strings" `Quick test_string_primitives;
          Alcotest.test_case "simplify" `Quick test_simplify_command;
          Alcotest.test_case "merge new" `Quick test_merge_new_keeps_latest;
          Alcotest.test_case "rulesets" `Quick test_rulesets_and_schedules;
          Alcotest.test_case "ruleset errors" `Quick test_ruleset_errors;
          Alcotest.test_case "schedule scoping" `Quick test_run_default_excludes_named_rulesets;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "backoff" `Quick test_backoff_bans;
          Alcotest.test_case "saturation" `Quick test_saturation_detection;
        ] );
      ("properties", props);
    ]
