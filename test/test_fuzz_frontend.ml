(* Adversarial-input fuzzing of the reader and parser (the daemon feeds
   them untrusted bytes). The contract: for ANY input, parsing either
   returns commands or raises exactly one of the structured errors —
   Sexpr.Parse_error, Frontend.Syntax_error, Frontend.Input_too_large —
   with no Stack_overflow, no stray Failure/Invalid_argument/Division_by_
   zero, and no crash. paren_balance must be total. *)

module E = Egglog

let structured f =
  match f () with
  | _ -> true
  | exception Sexpr.Parse_error _ -> true
  | exception E.Frontend.Syntax_error _ -> true
  | exception E.Frontend.Input_too_large _ -> true
  | exception _ -> false

let parses_structurally src = structured (fun () -> E.Frontend.parse_program src)

(* ---- generators ---- *)

let gen_bytes =
  QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_bound 200))

(* inputs biased toward the parser's own surface: parens, quotes, digits,
   escapes, comments — far denser in edge cases than uniform bytes *)
let gen_parserish =
  QCheck2.Gen.(
    let token =
      oneof
        [
          return "(";
          return ")";
          return "\"";
          return "\\";
          return ";";
          return "\n";
          return " ";
          return "-";
          return "/";
          return ".";
          return "123456789123456789123456789";
          return "x";
          return "\000";
          return "(run";
          return ":node-limit";
          return "1/0";
          return "1e999";
        ]
    in
    map (String.concat "") (list_size (int_bound 60) token))

let fuzz_case name gen =
  QCheck2.Test.make ~count:2000 ~name gen (fun src -> parses_structurally src)

let fuzz_random_bytes = fuzz_case "random bytes parse structurally" gen_bytes
let fuzz_parserish = fuzz_case "parser-shaped soup parses structurally" gen_parserish

let fuzz_paren_balance =
  QCheck2.Test.make ~count:2000 ~name:"paren_balance is total" gen_bytes (fun src ->
      match E.Frontend.paren_balance src with
      | E.Frontend.Balanced | E.Frontend.Incomplete | E.Frontend.Unbalanced -> true)

(* ---- directed edge cases the fuzzers found or nearly found ---- *)

let check_structured name src =
  Alcotest.(check bool) name true (parses_structurally src)

let test_deep_nesting () =
  (* beyond the recursion bound: a structured error, not Stack_overflow *)
  let deep n = String.make n '(' ^ "x" ^ String.make n ')' in
  check_structured "100k parens" (deep 100_000);
  (match E.Frontend.parse_program (deep 100_000) with
   | _ -> Alcotest.fail "100k nesting should be refused"
   | exception Sexpr.Parse_error { message; _ } ->
     Alcotest.(check bool) "mentions nesting" true
       (String.length message > 0)
   | exception _ -> Alcotest.fail "wrong error class for deep nesting");
  (* under the bound, a genuinely nested expression still parses *)
  let rec nest n = if n = 0 then "x" else "(f " ^ nest (n - 1) ^ ")" in
  match E.Frontend.parse_program ("(union a " ^ nest 100 ^ ")") with
  | [ _ ] -> ()
  | _ -> Alcotest.fail "shallow nesting should parse"
  | exception e -> Alcotest.failf "shallow nesting raised %s" (Printexc.to_string e)

let test_unterminated_string () =
  check_structured "unterminated string" "(f \"abc";
  check_structured "unterminated escape" "(f \"abc\\";
  check_structured "string with NUL" "(f \"a\000b\")"

let test_nul_bytes () =
  check_structured "bare NUL" "\000";
  check_structured "NUL in list" "(f \000)";
  match E.Frontend.parse_program "(f \000)" with
  | _ -> Alcotest.fail "NUL should be refused"
  | exception Sexpr.Parse_error { message; _ } ->
    Alcotest.(check bool) "diagnosis names the NUL" true
      (String.length message > 0 && message <> "unexpected end of input")
  | exception _ -> Alcotest.fail "wrong error class for NUL"

let test_huge_atoms () =
  let huge = String.make (3 * 1024 * 1024) 'a' in
  (match E.Frontend.parse_program ("(relation " ^ huge ^ " (i64))") with
   | _ -> ()
   | exception e -> Alcotest.failf "multi-megabyte atom raised %s" (Printexc.to_string e));
  (* with a size cap the input is refused up front, with the typed error *)
  match E.Frontend.parse_program ~max_bytes:1024 huge with
  | _ -> Alcotest.fail "max_bytes should refuse huge input"
  | exception E.Frontend.Input_too_large { bytes; limit } ->
    Alcotest.(check int) "reported limit" 1024 limit;
    Alcotest.(check bool) "reported size" true (bytes > 1024)
  | exception e -> Alcotest.failf "wrong error class: %s" (Printexc.to_string e)

let test_numeric_edges () =
  check_structured "out-of-range int literal" "(f 123456789123456789123456789)";
  check_structured "zero denominator" "(f 1/0)";
  check_structured "negative zero denominator" "(f -1/0)";
  check_structured "lonely minus" "(f -)";
  check_structured "float soup" "(f 1e999 .5. 1.2.3)";
  (* well-formed numbers still parse *)
  match E.Frontend.parse_program "(relation r (i64)) (r 42)" with
  | [ _; _ ] -> ()
  | _ -> Alcotest.fail "plain numbers should parse"
  | exception e -> Alcotest.failf "plain numbers raised %s" (Printexc.to_string e)

let () =
  Alcotest.run "fuzz-frontend"
    [
      ( "fuzz",
        List.map QCheck_alcotest.to_alcotest
          [ fuzz_random_bytes; fuzz_parserish; fuzz_paren_balance ] );
      ( "directed",
        [
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
          Alcotest.test_case "unterminated strings" `Quick test_unterminated_string;
          Alcotest.test_case "NUL bytes" `Quick test_nul_bytes;
          Alcotest.test_case "huge atoms" `Quick test_huge_atoms;
          Alcotest.test_case "numeric edges" `Quick test_numeric_edges;
        ] );
    ]
